(* The serving subsystem: memo-cache key injectivity, byte-identical
   cache hits across backends and pool sizes, batching/coalescing,
   LRU bounds, backpressure, deadlines, the persistent domain pool and
   the wire protocol. *)

module E = Ggpu_serve.Engine
module P = Ggpu_serve.Proto
module K = Ggpu_serve.Key
module L = Ggpu_serve.Lru
module W = Ggpu_serve.Workload
module C = Ggpu_fgpu.Config
module Pool = Ggpu_par.Parallel.Pool
module Json = Ggpu_obs.Json

let counter engine name =
  Option.value ~default:0
    (Ggpu_obs.Metrics.find_counter (E.metrics engine) name)

let req ?deadline_ms ?tech ~id kind = P.mk_request ?deadline_ms ?tech ~id kind
let sim ~kernel ~cus ~size = P.Sim { kernel; cus; size }
let perf ~kernel ~cus ~size = P.Perf { kernel; cus; size }
let synth ~cus ~freq_mhz = P.Synth { cus; freq_mhz }

let key_exn r =
  match E.key_of_request r with
  | Ok k -> k
  | Error msg -> Alcotest.failf "expected a key, got error: %s" msg

(* --- keys ---------------------------------------------------------------- *)

let test_key_perturbations () =
  let base = req ~id:1 (sim ~kernel:"copy" ~cus:2 ~size:256) in
  let distinct what a b =
    Alcotest.(check bool)
      (what ^ " changes the key") false
      (String.equal (key_exn a) (key_exn b))
  in
  distinct "cus" base (req ~id:1 (sim ~kernel:"copy" ~cus:4 ~size:256));
  distinct "kernel" base (req ~id:1 (sim ~kernel:"vec_mul" ~cus:2 ~size:256));
  distinct "size" base (req ~id:1 (sim ~kernel:"copy" ~cus:2 ~size:1024));
  distinct "kind" base (req ~id:1 (perf ~kernel:"copy" ~cus:2 ~size:256));
  (* the id is NOT part of any key; neither is the tech of a sim —
     simulation is technology-agnostic, so 65nm and 28nm sims share one
     cached result by design *)
  Alcotest.(check string)
    "id never enters the key" (key_exn base)
    (key_exn (req ~id:999 (sim ~kernel:"copy" ~cus:2 ~size:256)));
  Alcotest.(check string)
    "tech never enters a sim key" (key_exn base)
    (key_exn (req ~tech:"28nm" ~id:1 (sim ~kernel:"copy" ~cus:2 ~size:256)));
  let sbase = req ~id:1 (synth ~cus:2 ~freq_mhz:590) in
  distinct "synth freq" sbase (req ~id:1 (synth ~cus:2 ~freq_mhz:667));
  distinct "synth cus" sbase (req ~id:1 (synth ~cus:4 ~freq_mhz:590));
  distinct "synth tech" sbase
    (req ~tech:"28nm" ~id:1 (synth ~cus:2 ~freq_mhz:590));
  distinct "synth vs sim" sbase base;
  (* pmu stride is part of a perf key, never of a sim key *)
  let p = req ~id:1 (perf ~kernel:"copy" ~cus:2 ~size:256) in
  Alcotest.(check bool)
    "perf stride changes the key" false
    (String.equal
       (Result.get_ok (E.key_of_request ~pmu_stride:64 p))
       (Result.get_ok (E.key_of_request ~pmu_stride:128 p)))

let test_key_cache_config () =
  let with_cache cache = { C.default with C.cache } in
  let k cache =
    K.sim ~config:(with_cache cache) ~kernel:"copy" ~global_size:256
      ~local_size:64
  in
  let base = C.default.C.cache in
  let distinct what cache =
    Alcotest.(check bool)
      (what ^ " changes the key") false
      (String.equal (k base) (k cache))
  in
  distinct "cache size" { base with C.size_bytes = base.C.size_bytes * 2 };
  distinct "line words" { base with C.line_words = base.C.line_words * 2 };
  distinct "cache ports" { base with C.ports = base.C.ports + 1 };
  distinct "hit latency" { base with C.hit_latency = base.C.hit_latency + 1 }

let test_key_digest () =
  let key = key_exn (req ~id:1 (sim ~kernel:"copy" ~cus:1 ~size:256)) in
  let hex = K.hash_hex key in
  Alcotest.(check int) "digest is 16 hex chars" 16 (String.length hex);
  String.iter
    (fun c ->
      Alcotest.(check bool) "hex digit" true
        ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
    hex;
  for shards = 1 to 9 do
    let s = K.shard ~shards key in
    Alcotest.(check bool) "shard in range" true (s >= 0 && s < shards)
  done

(* qcheck: the sim key is injective on (geometry, cache, axi, kernel) —
   two configurations produce the same key iff they are the same
   configuration. *)
let kernels = [| "copy"; "vec_mul"; "fir"; "mat_mul" |]

let key_params_gen =
  QCheck.Gen.(
    map
      (fun ((cus, kb), ((line, ports), (axi, k))) ->
        (cus, kb, line, ports, axi, k))
      (pair
         (pair (int_range 1 8) (oneofl [ 8; 16; 32 ]))
         (pair
            (pair (oneofl [ 4; 8 ]) (oneofl [ 1; 2; 4 ]))
            (pair (int_range 1 4) (int_range 0 3)))))

let key_params =
  QCheck.make
    ~print:(fun (cus, kb, line, ports, axi, k) ->
      Printf.sprintf "cus=%d kb=%d line=%d ports=%d axi=%d kernel=%s" cus kb
        line ports axi kernels.(k))
    key_params_gen

let config_of (cus, kb, line, ports, axi, _) =
  {
    (C.with_cus C.default cus) with
    C.cache =
      {
        C.default.C.cache with
        C.size_bytes = kb * 1024;
        line_words = line;
        ports;
      };
    axi = { C.default.C.axi with C.data_ports = axi };
  }

let key_of (_, _, _, _, _, k) config =
  K.sim ~config ~kernel:kernels.(k) ~global_size:256 ~local_size:64

let key_injective =
  QCheck.Test.make ~count:500 ~name:"sim key injective on config"
    (QCheck.pair key_params key_params)
    (fun (a, b) ->
      String.equal (key_of a (config_of a)) (key_of b (config_of b)) = (a = b))

(* --- lru ----------------------------------------------------------------- *)

let test_lru () =
  let l = L.create ~capacity:2 in
  Alcotest.(check int) "capacity" 2 (L.capacity l);
  Alcotest.(check int) "evicts nothing below capacity" 0 (L.add l "a" 1);
  Alcotest.(check int) "evicts nothing at capacity" 0 (L.add l "b" 2);
  (* touch a so b becomes the LRU victim *)
  Alcotest.(check (option int)) "find a" (Some 1) (L.find l "a");
  Alcotest.(check int) "evicts one above capacity" 1 (L.add l "c" 3);
  Alcotest.(check (option int)) "b evicted" None (L.find l "b");
  Alcotest.(check (option int)) "a survived" (Some 1) (L.find l "a");
  Alcotest.(check int) "length bounded" 2 (L.length l);
  Alcotest.(check int) "replace does not evict" 0 (L.add l "a" 10);
  Alcotest.(check (option int)) "replaced value" (Some 10) (L.find l "a");
  Alcotest.(check bool) "mru first" true
    (fst (List.hd (L.to_alist l)) = "a");
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Lru.create: capacity < 1") (fun () ->
      ignore (L.create ~capacity:0))

(* --- engine: byte-identity ----------------------------------------------- *)

let done_result (r : P.response) =
  (match r.P.status with
  | P.Done -> ()
  | P.Failed msg -> Alcotest.failf "request failed: %s" msg
  | _ -> Alcotest.fail "request not Done");
  r.P.result

let test_cold_warm_identical () =
  let engine = E.create () in
  List.iter
    (fun kind ->
      let cold = E.process engine [ req ~id:1 kind ] in
      let warm = E.process engine [ req ~id:2 kind ] in
      match (cold, warm) with
      | [ c ], [ w ] ->
          Alcotest.(check bool) "cold is uncached" false c.P.cached;
          Alcotest.(check bool) "warm is cached" true w.P.cached;
          Alcotest.(check string)
            "cache hit bytes == cold bytes" (done_result c) (done_result w);
          Alcotest.(check string) "same key digest" c.P.key w.P.key;
          Alcotest.(check bool) "payload non-empty" true
            (String.length c.P.result > 0)
      | _ -> Alcotest.fail "one response per request")
    [
      sim ~kernel:"copy" ~cus:2 ~size:256;
      perf ~kernel:"copy" ~cus:2 ~size:256;
      synth ~cus:1 ~freq_mhz:500;
    ];
  Alcotest.(check int) "three misses" 3 (counter engine "serve.cache.miss");
  Alcotest.(check int) "three hits" 3 (counter engine "serve.cache.hit")

let test_backends_identical () =
  let engine_of backend =
    E.create ~config:{ E.default_config with E.backend } ()
  in
  let thr = engine_of Ggpu_fgpu.Gpu.Threaded in
  let int_ = engine_of Ggpu_fgpu.Gpu.Interp in
  List.iter
    (fun kind ->
      let a = E.process thr [ req ~id:1 kind ] in
      let b = E.process int_ [ req ~id:1 kind ] in
      Alcotest.(check string)
        "threaded and interp payload bytes identical"
        (done_result (List.hd a))
        (done_result (List.hd b)))
    [
      sim ~kernel:"vec_mul" ~cus:2 ~size:256;
      sim ~kernel:"div_int" ~cus:1 ~size:256;
      perf ~kernel:"copy" ~cus:2 ~size:256;
    ]

let test_pool_sizes_identical () =
  let batch =
    [
      req ~id:1 (sim ~kernel:"copy" ~cus:1 ~size:256);
      req ~id:2 (sim ~kernel:"vec_mul" ~cus:2 ~size:256);
      req ~id:3 (synth ~cus:1 ~freq_mhz:500);
      req ~id:4 (perf ~kernel:"fir" ~cus:2 ~size:256);
      req ~id:5 (sim ~kernel:"copy" ~cus:1 ~size:256) (* dup of 1 *);
    ]
  in
  let serial = E.process (E.create ()) batch in
  let pool = Pool.create ~domains:3 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let engine = E.create ~pool () in
  Alcotest.(check int) "pool size visible" 3 (E.pool_size engine);
  let parallel = E.process engine batch in
  List.iter2
    (fun (s : P.response) (p : P.response) ->
      Alcotest.(check int) "responses in arrival order" s.P.id p.P.id;
      Alcotest.(check string) "payload bytes identical" s.P.result p.P.result)
    serial parallel;
  Alcotest.(check int)
    "duplicate coalesced, not recomputed" 1
    (counter engine "serve.cache.coalesced");
  Alcotest.(check bool) "coalesced reply marked cached" true
    (List.nth parallel 4).P.cached

let test_batch_shares_artifacts () =
  let engine = E.create () in
  let responses =
    E.process engine
      [
        req ~id:1 (synth ~cus:1 ~freq_mhz:500);
        req ~id:2 (synth ~cus:1 ~freq_mhz:590);
        req ~id:3 (sim ~kernel:"copy" ~cus:1 ~size:256);
        req ~id:4 (perf ~kernel:"copy" ~cus:1 ~size:256);
      ]
  in
  List.iter (fun r -> ignore (done_result r)) responses;
  (* one base netlist serves both synth targets; one compilation serves
     sim and perf of the same kernel *)
  Alcotest.(check int) "one base built" 1 (counter engine "serve.netlist.build");
  Alcotest.(check int) "base reused" 1 (counter engine "serve.netlist.reuse");
  Alcotest.(check int) "one kernel compiled" 1
    (counter engine "serve.kernel.compile");
  Alcotest.(check int) "compilation reused" 1
    (counter engine "serve.kernel.reuse")

(* --- engine: bounds and failure modes ------------------------------------ *)

let test_eviction () =
  let engine =
    E.create
      ~config:{ E.default_config with E.cache_capacity = 2; shards = 1 }
      ()
  in
  let one id kernel = req ~id (sim ~kernel ~cus:1 ~size:256) in
  ignore (E.process engine [ one 1 "copy" ]);
  ignore (E.process engine [ one 2 "vec_mul" ]);
  ignore (E.process engine [ one 3 "fir" ]);
  Alcotest.(check int) "one eviction" 1 (counter engine "serve.cache.eviction");
  (* copy was the LRU entry, so it is gone and misses again *)
  let r = List.hd (E.process engine [ one 4 "copy" ]) in
  Alcotest.(check bool) "evicted key misses" false r.P.cached;
  Alcotest.(check int) "4 misses total" 4 (counter engine "serve.cache.miss")

let test_backpressure () =
  let engine =
    E.create ~config:{ E.default_config with E.queue_capacity = 2 } ()
  in
  let r id = req ~id (sim ~kernel:"copy" ~cus:1 ~size:256) in
  Alcotest.(check bool) "first queued" true (E.submit engine (r 1) = `Queued);
  Alcotest.(check bool) "second queued" true (E.submit engine (r 2) = `Queued);
  (match E.submit engine (r 3) with
  | `Rejected ms -> Alcotest.(check bool) "retry hint positive" true (ms > 0)
  | `Queued -> Alcotest.fail "third must be rejected");
  Alcotest.(check int) "rejection counted" 1 (counter engine "serve.rejected");
  Alcotest.(check int) "queue drained" 2 (List.length (E.step engine));
  (* process synthesises the rejection inline, in input order *)
  let responses = E.process engine [ r 1; r 2; r 3 ] in
  match (List.nth responses 2).P.status with
  | P.Rejected { retry_after_ms } ->
      Alcotest.(check bool) "inline retry hint" true (retry_after_ms > 0)
  | _ -> Alcotest.fail "third response must be Rejected"

let test_deadline () =
  let engine = E.create () in
  let r =
    req ~deadline_ms:0 ~id:1 (sim ~kernel:"copy" ~cus:1 ~size:256)
  in
  Alcotest.(check bool) "queued" true (E.submit engine r = `Queued);
  Unix.sleepf 0.005;
  (match (List.hd (E.step engine)).P.status with
  | P.Expired -> ()
  | _ -> Alcotest.fail "overdue request must expire");
  Alcotest.(check int) "expiry counted" 1 (counter engine "serve.expired");
  (* a generous deadline is not triggered *)
  let ok =
    E.process engine
      [ req ~deadline_ms:60_000 ~id:2 (sim ~kernel:"copy" ~cus:1 ~size:256) ]
  in
  ignore (done_result (List.hd ok))

let test_failures () =
  let engine = E.create () in
  let failed kind_or_tech r =
    match (List.hd (E.process engine [ r ])).P.status with
    | P.Failed msg ->
        Alcotest.(check bool)
          (kind_or_tech ^ " failure has a message")
          true
          (String.length msg > 0)
    | _ -> Alcotest.failf "%s must fail" kind_or_tech
  in
  failed "unknown kernel" (req ~id:1 (sim ~kernel:"nope" ~cus:1 ~size:256));
  failed "unknown tech"
    (req ~tech:"7nm" ~id:2 (sim ~kernel:"copy" ~cus:1 ~size:256));
  failed "out-of-range cus" (req ~id:3 (sim ~kernel:"copy" ~cus:99 ~size:256));
  failed "unreachable frequency" (req ~id:4 (synth ~cus:1 ~freq_mhz:5000));
  Alcotest.(check int) "failures counted" 4 (counter engine "serve.failed");
  Alcotest.(check (option (float 0.)))
    "failures never enter the hit rate" None (E.hit_rate engine)

(* --- pool ---------------------------------------------------------------- *)

let test_pool_semantics () =
  let pool = Pool.create ~domains:3 () in
  Alcotest.(check int) "size" 3 (Pool.size pool);
  let xs = List.init 100 Fun.id in
  let doubled = Pool.map pool (fun x -> 2 * x) xs in
  Alcotest.(check (list int)) "order preserved" (List.map (fun x -> 2 * x) xs)
    doubled;
  (* same workers serve a second job *)
  let strings = Pool.map pool string_of_int xs in
  Alcotest.(check string) "reused pool works" "42" (List.nth strings 42);
  (* first failure in input order, like sequential map *)
  Alcotest.check_raises "first failure re-raised" (Failure "item 3") (fun () ->
      ignore
        (Pool.map pool
           (fun x ->
             if x >= 3 then failwith (Printf.sprintf "item %d" x) else x)
           xs));
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "map after shutdown raises"
    (Invalid_argument "Parallel.Pool.map: pool is shut down") (fun () ->
      ignore (Pool.map pool Fun.id [ 1; 2 ]))

(* --- workload + protocol ------------------------------------------------- *)

let test_workload () =
  let a = W.mix ~seed:7 ~n:200 () in
  let b = W.mix ~seed:7 ~n:200 () in
  Alcotest.(check bool) "same seed, same mix" true (a = b);
  Alcotest.(check bool) "different seed, different mix" false
    (a = W.mix ~seed:8 ~n:200 ());
  Alcotest.(check (list int)) "ids are 1..n" (List.init 200 succ)
    (List.map (fun (r : P.request) -> r.P.id) a);
  let count pred = List.length (List.filter pred a) in
  let sims = count (fun r -> match r.P.kind with P.Sim _ -> true | _ -> false) in
  let synths =
    count (fun r -> match r.P.kind with P.Synth _ -> true | _ -> false)
  in
  let perfs =
    count (fun r -> match r.P.kind with P.Perf _ -> true | _ -> false)
  in
  Alcotest.(check bool) "all kinds present" true
    (sims > 0 && synths > 0 && perfs > 0);
  Alcotest.(check int) "kinds partition the mix" 200 (sims + synths + perfs);
  Alcotest.(check bool) "mix stays within the key universe" true
    (W.universe > 0);
  (* every request in the mix resolves to a valid key *)
  List.iter (fun r -> ignore (key_exn r)) a

let test_proto_roundtrip () =
  let reqs =
    [
      req ~id:1 (synth ~cus:2 ~freq_mhz:667);
      req ~tech:"28nm" ~id:42 (sim ~kernel:"copy" ~cus:4 ~size:1024);
      req ~deadline_ms:250 ~id:7 (perf ~kernel:"fir" ~cus:1 ~size:256);
    ]
  in
  List.iter
    (fun r ->
      match P.incoming_of_line (P.request_to_line r) with
      | Ok (P.Req r') ->
          Alcotest.(check bool) "request round-trips" true (r = r')
      | Ok (P.Control _) -> Alcotest.fail "parsed as control"
      | Error msg -> Alcotest.failf "parse error: %s" msg)
    reqs;
  List.iter
    (fun c ->
      match P.incoming_of_line (P.control_to_line c) with
      | Ok (P.Control c') ->
          Alcotest.(check bool) "control round-trips" true (c = c')
      | _ -> Alcotest.fail "control did not round-trip")
    [ P.Ping; P.Stats; P.Shutdown; P.Dump; P.Telemetry ];
  (* the wire carries an optional trace context; both fields must be
     present for it to parse back (a lone field is advisory) *)
  let traced =
    P.mk_request
      ~trace:{ P.trace_id = "t0001.00002a"; span_id = "s00002a" }
      ~id:11
      (sim ~kernel:"copy" ~cus:2 ~size:256)
  in
  (match P.incoming_of_line (P.request_to_line traced) with
  | Ok (P.Req r') ->
      Alcotest.(check bool) "trace context round-trips" true (traced = r')
  | _ -> Alcotest.fail "traced request did not round-trip");
  let payload =
    Json.to_string
      (Json.Obj [ ("kind", Json.String "sim"); ("cycles", Json.Int 123) ])
  in
  let resp =
    { P.id = 9; status = P.Done; cached = true; key = "00ff00ff00ff00ff";
      result = payload }
  in
  (match P.response_of_line (P.response_to_line resp) with
  | Ok r' ->
      Alcotest.(check bool) "response round-trips" true (resp = r');
      Alcotest.(check string) "payload bytes preserved" payload r'.P.result
  | Error msg -> Alcotest.failf "response parse error: %s" msg);
  List.iter
    (fun status ->
      let resp = { P.id = 1; status; cached = false; key = ""; result = "" } in
      match P.response_of_line (P.response_to_line resp) with
      | Ok r' -> Alcotest.(check bool) "status round-trips" true (resp = r')
      | Error msg -> Alcotest.failf "status parse error: %s" msg)
    [ P.Rejected { retry_after_ms = 50 }; P.Expired; P.Failed "boom" ]

(* the wire line of a cache hit is byte-identical to the cold one,
   end to end through the response encoder *)
let test_wire_bytes_identical () =
  let engine = E.create () in
  let kind = sim ~kernel:"copy" ~cus:1 ~size:256 in
  let cold = List.hd (E.process engine [ req ~id:5 kind ]) in
  let warm = List.hd (E.process engine [ req ~id:5 kind ]) in
  Alcotest.(check string)
    "only the cached flag differs on the wire"
    (P.response_to_line { cold with P.cached = true })
    (P.response_to_line warm)

(* --- telemetry ----------------------------------------------------------- *)

(* Each served request lands one observation in its kind's latency
   histogram. *)
let test_latency_histograms () =
  let engine = E.create () in
  ignore
    (E.process engine
       [
         req ~id:1 (sim ~kernel:"copy" ~cus:1 ~size:256);
         req ~id:2 (sim ~kernel:"copy" ~cus:1 ~size:256);
         req ~id:3 (synth ~cus:1 ~freq_mhz:590);
         req ~id:4 (perf ~kernel:"copy" ~cus:1 ~size:256);
       ]);
  let total name =
    match Ggpu_obs.Metrics.find_histogram (E.metrics engine) name with
    | Some h -> Ggpu_obs.Metrics.hist_total h
    | None -> Alcotest.failf "missing histogram %s" name
  in
  Alcotest.(check int) "sim observations" 2 (total "serve.latency.sim");
  Alcotest.(check int) "synth observations" 1 (total "serve.latency.synth");
  Alcotest.(check int) "perf observations" 1 (total "serve.latency.perf")

(* qcheck: a multiset of latency observations partitioned across K
   registries merges bit-identically to a single registry, for any K
   and any assignment — why `bench serve` and `serve stats` can never
   disagree on a percentile. *)
let hist_merge_partition_invariant =
  let kinds =
    [| "serve.latency.sim"; "serve.latency.synth"; "serve.latency.perf" |]
  in
  QCheck.Test.make ~count:100
    ~name:"latency histograms merge partition-invariantly"
    QCheck.(
      pair
        (small_list (pair (int_bound 2) (int_bound 20_000_000)))
        (int_range 1 8))
    (fun (obs, k) ->
      let observe reg (kind_ix, v) =
        Ggpu_obs.Metrics.observe
          (Ggpu_obs.Metrics.histogram ~buckets:E.latency_buckets reg
             kinds.(kind_ix))
          v
      in
      let reference = Ggpu_obs.Metrics.create () in
      List.iter (observe reference) obs;
      let parts = Array.init k (fun _ -> Ggpu_obs.Metrics.create ()) in
      List.iteri (fun i o -> observe parts.(i mod k) o) obs;
      let merged =
        Ggpu_obs.Metrics.merge_all
          (Array.to_list (Array.map Ggpu_obs.Metrics.snapshot parts))
      in
      Ggpu_obs.Metrics.equal_snapshot
        (Ggpu_obs.Metrics.snapshot reference)
        merged)

let span_names { E.spans; _ } =
  List.map (fun e -> e.Ggpu_obs.Trace.name) spans

(* The engine's span groups reflect each request's actual path: a miss
   executes, a hit stops at the probe, a coalesced duplicate records
   the coalesce and shares the first requester's execute span. *)
let test_step_traced_groups () =
  let engine = E.create () in
  let kind = sim ~kernel:"copy" ~cus:1 ~size:256 in
  ignore (E.submit engine (req ~id:1 kind));
  (match E.step_traced engine with
  | [ ({ E.resp; _ } as g) ] ->
      Alcotest.(check bool) "served" true (resp.P.status = P.Done);
      List.iter
        (fun n ->
          Alcotest.(check bool) (n ^ " present") true
            (List.mem n (span_names g)))
        [ "serve.queue"; "serve.probe"; "serve.batch"; "serve.execute" ]
  | groups -> Alcotest.failf "expected one group, got %d" (List.length groups));
  ignore (E.submit engine (req ~id:2 kind));
  (match E.step_traced engine with
  | [ g ] ->
      Alcotest.(check (list string))
        "hit stops at the probe"
        [ "serve.queue"; "serve.probe" ]
        (span_names g)
  | _ -> Alcotest.fail "expected one group");
  let k2 = sim ~kernel:"copy" ~cus:2 ~size:256 in
  ignore (E.submit engine (req ~id:3 k2));
  ignore (E.submit engine (req ~id:4 k2));
  (match E.step_traced engine with
  | [ g1; g2 ] ->
      Alcotest.(check bool) "first executes" true
        (List.mem "serve.execute" (span_names g1));
      Alcotest.(check bool) "dup coalesces" true
        (List.mem "serve.coalesce" (span_names g2));
      Alcotest.(check bool) "dup shares the execute span" true
        (List.mem "serve.execute" (span_names g2))
  | groups ->
      Alcotest.failf "expected two groups, got %d" (List.length groups));
  (* a wire trace context shows up as args on the request's own spans *)
  ignore
    (E.submit engine
       (P.mk_request
          ~trace:{ P.trace_id = "tfeed.000001"; span_id = "s000001" }
          ~id:5 kind));
  match E.step_traced engine with
  | [ { E.spans; _ } ] ->
      List.iter
        (fun e ->
          Alcotest.(check (option string))
            (e.Ggpu_obs.Trace.name ^ " carries the trace id")
            (Some "tfeed.000001")
            (List.assoc_opt "trace_id" e.Ggpu_obs.Trace.args))
        spans
  | _ -> Alcotest.fail "expected one group"

(* All spans the engine hands the recorder validate as a Chrome trace
   document, and rendering the same groups twice is byte-identical —
   the dump-determinism the daemon's dump control relies on. *)
let test_span_groups_render_deterministically () =
  let engine = E.create () in
  ignore (E.submit engine (req ~id:1 (sim ~kernel:"copy" ~cus:1 ~size:256)));
  ignore (E.submit engine (req ~id:2 (synth ~cus:1 ~freq_mhz:590)));
  let events =
    List.concat_map (fun { E.spans; _ } -> spans) (E.step_traced engine)
    |> List.sort_uniq compare
  in
  let doc = Ggpu_obs.Trace.events_to_json events in
  (match Ggpu_obs.Trace.validate_json doc with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "span group invalid: %s" msg);
  Alcotest.(check string)
    "rendering is deterministic"
    (Json.to_string doc)
    (Json.to_string (Ggpu_obs.Trace.events_to_json events))

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "serve",
      [
        Alcotest.test_case "key perturbations" `Quick test_key_perturbations;
        Alcotest.test_case "key cache config" `Quick test_key_cache_config;
        Alcotest.test_case "key digest" `Quick test_key_digest;
        qcheck key_injective;
        Alcotest.test_case "lru" `Quick test_lru;
        Alcotest.test_case "cold/warm byte-identical" `Quick
          test_cold_warm_identical;
        Alcotest.test_case "backends byte-identical" `Quick
          test_backends_identical;
        Alcotest.test_case "pool sizes byte-identical" `Quick
          test_pool_sizes_identical;
        Alcotest.test_case "batch shares artifacts" `Quick
          test_batch_shares_artifacts;
        Alcotest.test_case "lru eviction" `Quick test_eviction;
        Alcotest.test_case "backpressure" `Quick test_backpressure;
        Alcotest.test_case "deadline expiry" `Quick test_deadline;
        Alcotest.test_case "failure statuses" `Quick test_failures;
        Alcotest.test_case "pool semantics" `Quick test_pool_semantics;
        Alcotest.test_case "workload mix" `Quick test_workload;
        Alcotest.test_case "proto round-trips" `Quick test_proto_roundtrip;
        Alcotest.test_case "wire bytes identical" `Quick
          test_wire_bytes_identical;
        Alcotest.test_case "latency histograms" `Quick
          test_latency_histograms;
        qcheck hist_merge_partition_invariant;
        Alcotest.test_case "step_traced span groups" `Quick
          test_step_traced_groups;
        Alcotest.test_case "span groups render deterministically" `Quick
          test_span_groups_render_deterministically;
      ] );
  ]
