(* Property tests for the incremental timing engine: after every DSE
   edit the engine report must be bit-identical to a full recomputation
   (same floats, same endpoint census, same worst path cell by cell).
   The edits come from a real [Dse.explore] run, replayed one at a time
   on a fresh netlist with an engine attached. *)

open Ggpu_tech
open Ggpu_synth
open Ggpu_core

let tech = Tech.default_65nm

let check_reports_identical msg (eng : Timing.report) (full : Timing.report) =
  Alcotest.(check (float 0.0))
    (msg ^ ": max_delay_ns")
    full.Timing.max_delay_ns eng.Timing.max_delay_ns;
  Alcotest.(check (float 0.0))
    (msg ^ ": fmax_mhz")
    full.Timing.fmax_mhz eng.Timing.fmax_mhz;
  Alcotest.(check int)
    (msg ^ ": endpoint_count")
    full.Timing.endpoint_count eng.Timing.endpoint_count;
  let name c = Ggpu_hw.Cell.name c in
  Alcotest.(check string)
    (msg ^ ": launch")
    (name full.Timing.worst.Timing.launch)
    (name eng.Timing.worst.Timing.launch);
  Alcotest.(check string)
    (msg ^ ": capture")
    (name full.Timing.worst.Timing.capture)
    (name eng.Timing.worst.Timing.capture);
  Alcotest.(check (list string))
    (msg ^ ": through")
    (List.map name full.Timing.worst.Timing.through)
    (List.map name eng.Timing.worst.Timing.through);
  Alcotest.(check (float 0.0))
    (msg ^ ": path delay")
    full.Timing.worst.Timing.delay_ns eng.Timing.worst.Timing.delay_ns

(* Replay each edit of a converged 667 MHz map one at a time, checking
   engine-vs-full identity after every step. *)
let check_bit_identity ~num_cus () =
  let edits =
    let nl = Ggpu_rtlgen.Generate.generate_cus ~num_cus in
    let result =
      Dse.explore tech nl ~num_cus ~period_ns:(1000.0 /. 667.0)
    in
    result.Dse.map.Map.edits
  in
  Alcotest.(check bool) "map has edits" true (List.length edits > 0);
  let nl = Ggpu_rtlgen.Generate.generate_cus ~num_cus in
  let engine = Timing.make_engine tech nl in
  check_reports_identical "initial" (Timing.engine_analyse engine)
    (Timing.analyse tech nl);
  List.iteri
    (fun i edit ->
      Map.apply_edit nl edit;
      check_reports_identical
        (Printf.sprintf "after edit %d (%s)" i (Map.edit_to_string edit))
        (Timing.engine_analyse engine)
        (Timing.analyse tech nl))
    edits;
  let stats = Timing.engine_stats engine in
  Alcotest.(check int) "one full recompute" 1 stats.Timing.full_recomputes;
  Alcotest.(check bool) "incremental updates happened" true
    (stats.Timing.incremental_updates > 0)

let test_bit_identity_1cu () = check_bit_identity ~num_cus:1 ()
let test_bit_identity_8cu () = check_bit_identity ~num_cus:8 ()

(* The planner itself must converge to the same answer with and without
   the engine. *)
let test_dse_incremental_matches_full () =
  let run ~incremental =
    let nl = Ggpu_rtlgen.Generate.generate_cus ~num_cus:2 in
    Dse.explore ~incremental tech nl ~num_cus:2 ~period_ns:(1000.0 /. 667.0)
  in
  let inc = run ~incremental:true and full = run ~incremental:false in
  Alcotest.(check int) "iterations" full.Dse.iterations inc.Dse.iterations;
  Alcotest.(check (list string))
    "same edits"
    (List.map Map.edit_to_string full.Dse.map.Map.edits)
    (List.map Map.edit_to_string inc.Dse.map.Map.edits);
  check_reports_identical "final report" inc.Dse.final full.Dse.final

(* [Netlist.copy] must hand the flow an independent netlist: editing the
   copy leaves the base untouched, and DSE on a copy converges exactly
   as on a fresh elaboration. *)
let test_netlist_copy_independent () =
  let base = Ggpu_rtlgen.Generate.generate_cus ~num_cus:1 in
  let before = Ggpu_hw.Netlist.stats base in
  let copy = Ggpu_hw.Netlist.copy base in
  let result =
    Dse.explore tech copy ~num_cus:1 ~period_ns:(1000.0 /. 667.0)
  in
  Alcotest.(check bool) "dse edited the copy" true
    (List.length result.Dse.map.Map.edits > 0);
  let after = Ggpu_hw.Netlist.stats base in
  Alcotest.(check int) "base macros untouched"
    before.Ggpu_hw.Netlist.macro_count after.Ggpu_hw.Netlist.macro_count;
  Alcotest.(check int) "base ffs untouched" before.Ggpu_hw.Netlist.ff_bits
    after.Ggpu_hw.Netlist.ff_bits;
  let fresh = Ggpu_rtlgen.Generate.generate_cus ~num_cus:1 in
  let fresh_result =
    Dse.explore tech fresh ~num_cus:1 ~period_ns:(1000.0 /. 667.0)
  in
  Alcotest.(check (list string))
    "copy and fresh converge identically"
    (List.map Map.edit_to_string fresh_result.Dse.map.Map.edits)
    (List.map Map.edit_to_string result.Dse.map.Map.edits)

let suite =
  [
    ( "incremental",
      [
        Alcotest.test_case "engine bit-identical, 1 CU" `Quick
          test_bit_identity_1cu;
        Alcotest.test_case "engine bit-identical, 8 CU" `Slow
          test_bit_identity_8cu;
        Alcotest.test_case "dse incremental matches full" `Quick
          test_dse_incremental_matches_full;
        Alcotest.test_case "netlist copy is independent" `Quick
          test_netlist_copy_independent;
      ] );
  ]
