(* Golden per-kernel cycle counts for the G-GPU simulator.

   Runs the full 7-kernel suite at 1 CU and 4 CU and asserts the exact
   [Stats.to_assoc] of every run against values recorded from the
   pre-optimisation scheduler (PR 3 tree), re-pinned once in PR 6 when
   the event heap adopted a value-deterministic (time, cu_id) tie-break
   (only the 4-CU `cycles` entries moved; every other counter is
   unchanged), and re-pinned once more when the superopt peephole pass
   landed: mined mov-coalescing rules delete one 8-beat instruction
   from the inner loop of mat_mul/fir/xcorr/parallel_sel, so cycles,
   wf/lane instruction counts and vu_busy drop 5.5-7.7% on those four
   kernels (each row's pre-peephole cycles are recorded alongside);
   every memory-system counter (loads, stores, line_requests, cache
   hits/misses, axi_words) is bit-identical, as the pass never touches
   a memory instruction.  copy/vec_mul/div_int have no rewritable
   window and kept their exact rows.  The simulator hot path is free to
   change shape, but any drift in cycle counts or counters — i.e. any
   observable timing-model change — fails this test.  Sizes match
   `gpuplanner run --kernel K --size S` after [round_size].
   Regenerate rows with `dune exec bench/golden_dump.exe`.

   Every case runs under a matrix of (backend x domains) execution
   combinations — the threaded-code engine and the CU-parallel split
   must hit the same table, bit for bit.  CI can pin a single extra
   combination via GGPU_GOLDEN_BACKEND / GGPU_GOLDEN_DOMAINS, which
   replaces the default matrix for that run. *)

open Ggpu_kernels
open Ggpu_fgpu

(* (kernel, size, cus, stats in Stats.to_assoc order:
   cycles; wf_instructions; lane_instructions; divergent_issues; loads;
   stores; line_requests; cache_hits; cache_misses; evictions;
   axi_words; barriers; workgroups; vu_busy_cycles) *)
let golden =
  [
    (* pre-peephole: 36748 cycles, -5.57% *)
    ( "mat_mul", 1024, 1,
      [ 34700; 4336; 277504; 0; 512; 16; 1344; 1200; 144; 0; 2304; 0; 16; 34688 ] );
    (* pre-peephole: 9280 cycles, -5.52% *)
    ( "mat_mul", 1024, 4,
      [ 8768; 4336; 277504; 0; 512; 16; 1344; 1200; 144; 0; 2304; 0; 16; 34688 ] );
    (* pre-peephole: 3072 cycles (no rewrite fired) *)
    ( "copy", 2048, 1,
      [ 3072; 384; 24576; 0; 32; 32; 256; 0; 256; 0; 4096; 0; 8; 3072 ] );
    (* pre-peephole: 1004 cycles (no rewrite fired) *)
    ( "copy", 2048, 4,
      [ 1004; 384; 24576; 0; 32; 32; 256; 0; 256; 0; 4096; 0; 8; 3072 ] );
    (* pre-peephole: 4096 cycles (no rewrite fired) *)
    ( "vec_mul", 2048, 1,
      [ 4096; 512; 32768; 0; 64; 32; 384; 0; 384; 0; 6144; 0; 8; 4096 ] );
    (* pre-peephole: 1260 cycles (no rewrite fired) *)
    ( "vec_mul", 2048, 4,
      [ 1260; 512; 32768; 0; 64; 32; 384; 0; 384; 0; 6144; 0; 8; 4096 ] );
    (* pre-peephole: 28300 cycles, -7.24% *)
    ( "fir", 1024, 1,
      [ 26252; 3280; 209920; 0; 512; 16; 1584; 1454; 130; 0; 2080; 0; 8; 26240 ] );
    (* pre-peephole: 7146 cycles, -7.16% *)
    ( "fir", 1024, 4,
      [ 6634; 3280; 209920; 0; 512; 16; 1584; 1454; 130; 0; 2080; 0; 8; 26240 ] );
    (* pre-peephole: 67584 cycles (no rewrite fired) *)
    ( "div_int", 1024, 1,
      [ 67584; 256; 16384; 0; 32; 16; 192; 0; 192; 0; 3072; 0; 4; 67584 ] );
    (* pre-peephole: 17048 cycles (no rewrite fired) *)
    ( "div_int", 1024, 4,
      [ 17048; 256; 16384; 0; 32; 16; 192; 0; 192; 0; 3072; 0; 4; 67584 ] );
    (* pre-peephole: 426816 cycles, -7.68% *)
    ( "xcorr", 512, 1,
      [ 394048; 49256; 3152384; 0; 8192; 8; 24352; 24224; 128; 0; 2048; 0; 4; 394048 ] );
    (* pre-peephole: 107018 cycles, -7.62% *)
    ( "xcorr", 512, 4,
      [ 98868; 49256; 3152384; 0; 8192; 8; 24352; 24224; 128; 0; 2048; 0; 4; 394048 ] );
    (* pre-peephole: 491644 cycles, -6.58% (divergent_issues halve: the
       coalesced mov sat inside the divergent region) *)
    ( "parallel_sel", 512, 1,
      [ 459298; 57411; 3546368; 3963; 4104; 8; 4350; 4286; 64; 0; 1024; 0; 4; 459288 ] );
    (* pre-peephole: 123057 cycles, -6.61% *)
    ( "parallel_sel", 512, 4,
      [ 114919; 57411; 3546368; 3963; 4104; 8; 4350; 4286; 64; 0; 1024; 0; 4; 459288 ] );
  ]

let stat_names =
  [
    "cycles"; "wf_instructions"; "lane_instructions"; "divergent_issues";
    "loads"; "stores"; "line_requests"; "cache_hits"; "cache_misses";
    "evictions"; "axi_words"; "barriers"; "workgroups"; "vu_busy_cycles";
  ]

let run_golden ~backend ~domains (name, size, cus, expected) () =
  let w = Suite.find name in
  let size = w.Suite.round_size size in
  let compiled = Codegen_fgpu.compile w.Suite.kernel in
  let args = w.Suite.mk_args ~size in
  let global_size = w.Suite.global_size ~size in
  let local_size = min w.Suite.local_size size in
  let config = Config.with_cus Config.default cus in
  let result =
    Run_fgpu.run ~config ~backend ~domains compiled ~args ~global_size
      ~local_size ()
  in
  (* results must still be correct, not just timed identically *)
  let got = Run_fgpu.output result w.Suite.output_buffer in
  let want = w.Suite.expected ~size args in
  Alcotest.(check bool)
    (Printf.sprintf "%s/%dcu output" name cus)
    true
    (Array.length got = Array.length want
    && Array.for_all2 (fun a b -> Int32.equal a b) got want);
  let assoc = Stats.to_assoc result.Run_fgpu.stats in
  let expected_assoc = List.combine stat_names expected in
  List.iter2
    (fun (k, v) (k', v') ->
      Alcotest.(check string)
        (Printf.sprintf "%s/%dcu field order" name cus)
        k' k;
      Alcotest.(check int) (Printf.sprintf "%s/%dcu %s" name cus k) v' v)
    assoc expected_assoc

(* Default (backend, domains) execution matrix; CI overrides it with a
   single pinned combination via the environment to exercise e.g.
   `threaded x 4 domains` as a dedicated step. *)
let combos =
  match (Sys.getenv_opt "GGPU_GOLDEN_BACKEND", Sys.getenv_opt "GGPU_GOLDEN_DOMAINS") with
  | None, None -> [ (Gpu.Interp, 1); (Gpu.Threaded, 1); (Gpu.Threaded, 4) ]
  | b, d ->
      let backend =
        match b with
        | None -> Gpu.Threaded
        | Some s -> (
            match Gpu.backend_of_string s with
            | Some backend -> backend
            | None ->
                failwith
                  (Printf.sprintf "GGPU_GOLDEN_BACKEND: unknown backend %S" s))
      in
      let domains = match d with None -> 1 | Some s -> int_of_string s in
      [ (backend, domains) ]

let suite =
  [
    ( "golden-cycles",
      List.concat_map
        (fun (backend, domains) ->
          List.map
            (fun ((name, size, cus, _) as case) ->
              Alcotest.test_case
                (Printf.sprintf "%s size=%d cus=%d [%s/%dd]" name size cus
                   (Gpu.backend_name backend) domains)
                `Slow
                (run_golden ~backend ~domains case))
            golden)
        combos );
  ]
