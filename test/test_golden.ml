(* Golden per-kernel cycle counts for the G-GPU simulator.

   Runs the full 7-kernel suite at 1 CU and 4 CU and asserts the exact
   [Stats.to_assoc] of every run against values recorded from the
   pre-optimisation scheduler (PR 3 tree).  The simulator hot path is
   free to change shape, but any drift in cycle counts or counters —
   i.e. any observable timing-model change — fails this test.  Sizes
   match `gpuplanner run --kernel K --size S` after [round_size]. *)

open Ggpu_kernels
open Ggpu_fgpu

(* (kernel, size, cus, stats in Stats.to_assoc order:
   cycles; wf_instructions; lane_instructions; divergent_issues; loads;
   stores; line_requests; cache_hits; cache_misses; evictions;
   axi_words; barriers; workgroups; vu_busy_cycles) *)
let golden =
  [
    ( "mat_mul", 1024, 1,
      [ 36748; 4592; 293888; 0; 512; 16; 1344; 1200; 144; 0; 2304; 0; 16; 36736 ] );
    ( "mat_mul", 1024, 4,
      [ 9288; 4592; 293888; 0; 512; 16; 1344; 1200; 144; 0; 2304; 0; 16; 36736 ] );
    ( "copy", 2048, 1,
      [ 3072; 384; 24576; 0; 32; 32; 256; 0; 256; 0; 4096; 0; 8; 3072 ] );
    ( "copy", 2048, 4,
      [ 1004; 384; 24576; 0; 32; 32; 256; 0; 256; 0; 4096; 0; 8; 3072 ] );
    ( "vec_mul", 2048, 1,
      [ 4096; 512; 32768; 0; 64; 32; 384; 0; 384; 0; 6144; 0; 8; 4096 ] );
    ( "vec_mul", 2048, 4,
      [ 1260; 512; 32768; 0; 64; 32; 384; 0; 384; 0; 6144; 0; 8; 4096 ] );
    ( "fir", 1024, 1,
      [ 28300; 3536; 226304; 0; 512; 16; 1584; 1454; 130; 0; 2080; 0; 8; 28288 ] );
    ( "fir", 1024, 4,
      [ 7154; 3536; 226304; 0; 512; 16; 1584; 1454; 130; 0; 2080; 0; 8; 28288 ] );
    ( "div_int", 1024, 1,
      [ 67584; 256; 16384; 0; 32; 16; 192; 0; 192; 0; 3072; 0; 4; 67584 ] );
    ( "div_int", 1024, 4,
      [ 17040; 256; 16384; 0; 32; 16; 192; 0; 192; 0; 3072; 0; 4; 67584 ] );
    ( "xcorr", 512, 1,
      [ 426816; 53352; 3414528; 0; 8192; 8; 24352; 24224; 128; 0; 2048; 0; 4; 426816 ] );
    ( "xcorr", 512, 4,
      [ 107051; 53352; 3414528; 0; 8192; 8; 24352; 24224; 128; 0; 2048; 0; 4; 426816 ] );
    ( "parallel_sel", 512, 1,
      [ 491644; 61454; 3677184; 7926; 4104; 8; 4350; 4286; 64; 0; 1024; 0; 4; 491632 ] );
    ( "parallel_sel", 512, 4,
      [ 123039; 61454; 3677184; 7926; 4104; 8; 4350; 4286; 64; 0; 1024; 0; 4; 491632 ] );
  ]

let stat_names =
  [
    "cycles"; "wf_instructions"; "lane_instructions"; "divergent_issues";
    "loads"; "stores"; "line_requests"; "cache_hits"; "cache_misses";
    "evictions"; "axi_words"; "barriers"; "workgroups"; "vu_busy_cycles";
  ]

let run_golden (name, size, cus, expected) () =
  let w = Suite.find name in
  let size = w.Suite.round_size size in
  let compiled = Codegen_fgpu.compile w.Suite.kernel in
  let args = w.Suite.mk_args ~size in
  let global_size = w.Suite.global_size ~size in
  let local_size = min w.Suite.local_size size in
  let config = Config.with_cus Config.default cus in
  let result =
    Run_fgpu.run ~config compiled ~args ~global_size ~local_size ()
  in
  (* results must still be correct, not just timed identically *)
  let got = Run_fgpu.output result w.Suite.output_buffer in
  let want = w.Suite.expected ~size args in
  Alcotest.(check bool)
    (Printf.sprintf "%s/%dcu output" name cus)
    true
    (Array.length got = Array.length want
    && Array.for_all2 (fun a b -> Int32.equal a b) got want);
  let assoc = Stats.to_assoc result.Run_fgpu.stats in
  let expected_assoc = List.combine stat_names expected in
  List.iter2
    (fun (k, v) (k', v') ->
      Alcotest.(check string)
        (Printf.sprintf "%s/%dcu field order" name cus)
        k' k;
      Alcotest.(check int) (Printf.sprintf "%s/%dcu %s" name cus k) v' v)
    assoc expected_assoc

let suite =
  [
    ( "golden-cycles",
      List.map
        (fun ((name, size, cus, _) as case) ->
          Alcotest.test_case
            (Printf.sprintf "%s size=%d cus=%d" name size cus)
            `Slow (run_golden case))
        golden );
  ]
