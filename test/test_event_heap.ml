(* Property tests for the discrete-event scheduler's binary min-heap. *)

(* A scripted sequence of heap operations: [Push t] inserts time [t],
   [Pop] removes the minimum (ignored when the heap is empty). *)
type op = Push of int | Pop

let op_gen =
  QCheck.Gen.(
    frequency
      [ (3, map (fun t -> Push t) (int_bound 10_000)); (2, return Pop) ])

let op_print = function Push t -> Printf.sprintf "Push %d" t | Pop -> "Pop"

let ops_arb =
  QCheck.make ~print:QCheck.Print.(list op_print) QCheck.Gen.(list_size (int_bound 200) op_gen)

let prop_pop_sorted =
  QCheck.Test.make ~name:"event_heap pop yields non-decreasing times"
    ~count:200
    QCheck.(list_of_size Gen.(int_bound 300) (int_bound 10_000))
    (fun times ->
      let h = Ggpu_fgpu.Event_heap.create ~dummy:0 in
      List.iteri (fun i t -> Ggpu_fgpu.Event_heap.push h t i) times;
      let prev = ref min_int in
      let ok = ref true in
      for _ = 1 to List.length times do
        let t, _ = Ggpu_fgpu.Event_heap.pop h in
        if t < !prev then ok := false;
        prev := t
      done;
      !ok && Ggpu_fgpu.Event_heap.is_empty h)

(* Drive the heap and a sorted-list model through the same random op
   sequence; every pop must agree on the minimum time. *)
let prop_model =
  QCheck.Test.make ~name:"event_heap matches sorted-list model" ~count:200
    ops_arb (fun ops ->
      let h = Ggpu_fgpu.Event_heap.create ~dummy:0 in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Push t ->
              Ggpu_fgpu.Event_heap.push h t t;
              model := List.sort compare (t :: !model);
              Ggpu_fgpu.Event_heap.length h = List.length !model
          | Pop -> (
              match !model with
              | [] -> (
                  match Ggpu_fgpu.Event_heap.pop h with
                  | exception Ggpu_fgpu.Event_heap.Empty -> true
                  | _ -> false)
              | m :: rest ->
                  let t, _ = Ggpu_fgpu.Event_heap.pop h in
                  model := rest;
                  t = m))
        ops)

let prop_is_empty =
  QCheck.Test.make ~name:"event_heap is_empty iff length = 0" ~count:200
    ops_arb (fun ops ->
      let h = Ggpu_fgpu.Event_heap.create ~dummy:0 in
      List.for_all
        (fun op ->
          (match op with
          | Push t -> Ggpu_fgpu.Event_heap.push h t t
          | Pop -> ( try ignore (Ggpu_fgpu.Event_heap.pop h) with
                     | Ggpu_fgpu.Event_heap.Empty -> ()));
          Ggpu_fgpu.Event_heap.is_empty h
          = (Ggpu_fgpu.Event_heap.length h = 0))
        ops)

let suite =
  [
    ( "event_heap",
      [
        QCheck_alcotest.to_alcotest prop_pop_sorted;
        QCheck_alcotest.to_alcotest prop_model;
        QCheck_alcotest.to_alcotest prop_is_empty;
      ] );
  ]
