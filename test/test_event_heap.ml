(* Property tests for the discrete-event scheduler's binary min-heap. *)

(* A scripted sequence of heap operations: [Push t] inserts time [t],
   [Pop] removes the minimum (ignored when the heap is empty). *)
type op = Push of int | Pop

let op_gen =
  QCheck.Gen.(
    frequency
      [ (3, map (fun t -> Push t) (int_bound 10_000)); (2, return Pop) ])

let op_print = function Push t -> Printf.sprintf "Push %d" t | Pop -> "Pop"

let ops_arb =
  QCheck.make ~print:QCheck.Print.(list op_print) QCheck.Gen.(list_size (int_bound 200) op_gen)

let prop_pop_sorted =
  QCheck.Test.make ~name:"event_heap pop yields non-decreasing times"
    ~count:200
    QCheck.(list_of_size Gen.(int_bound 300) (int_bound 10_000))
    (fun times ->
      let h = Ggpu_fgpu.Event_heap.create ~dummy:0 in
      List.iteri (fun i t -> Ggpu_fgpu.Event_heap.push h t i) times;
      let prev = ref min_int in
      let ok = ref true in
      for _ = 1 to List.length times do
        let t, _ = Ggpu_fgpu.Event_heap.pop h in
        if t < !prev then ok := false;
        prev := t
      done;
      !ok && Ggpu_fgpu.Event_heap.is_empty h)

(* Drive the heap and a sorted-list model through the same random op
   sequence; every pop must agree on the minimum time. *)
let prop_model =
  QCheck.Test.make ~name:"event_heap matches sorted-list model" ~count:200
    ops_arb (fun ops ->
      let h = Ggpu_fgpu.Event_heap.create ~dummy:0 in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Push t ->
              Ggpu_fgpu.Event_heap.push h t t;
              model := List.sort compare (t :: !model);
              Ggpu_fgpu.Event_heap.length h = List.length !model
          | Pop -> (
              match !model with
              | [] -> (
                  match Ggpu_fgpu.Event_heap.pop h with
                  | exception Ggpu_fgpu.Event_heap.Empty -> true
                  | _ -> false)
              | m :: rest ->
                  let t, _ = Ggpu_fgpu.Event_heap.pop h in
                  model := rest;
                  t = m))
        ops)

let prop_is_empty =
  QCheck.Test.make ~name:"event_heap is_empty iff length = 0" ~count:200
    ops_arb (fun ops ->
      let h = Ggpu_fgpu.Event_heap.create ~dummy:0 in
      List.for_all
        (fun op ->
          (match op with
          | Push t -> Ggpu_fgpu.Event_heap.push h t t
          | Pop -> ( try ignore (Ggpu_fgpu.Event_heap.pop h) with
                     | Ggpu_fgpu.Event_heap.Empty -> ()));
          Ggpu_fgpu.Event_heap.is_empty h
          = (Ggpu_fgpu.Event_heap.length h = 0))
        ops)

(* The scheduler's stale-entry protocol: a payload may be re-pushed
   with a newer time without removing the old entry; on pop, an entry
   whose time disagrees with the payload's current time is discarded.
   Drive that protocol with random interleaved push/update/pop and
   check that the *valid* pops come out in non-decreasing time order
   and never before the payload's current time. *)
let prop_stale_min_order =
  QCheck.Test.make ~name:"event_heap stale-entry protocol preserves min-order"
    ~count:200
    QCheck.(
      pair (int_range 1 8)
        (list_of_size Gen.(int_bound 300) (pair (int_bound 7) (int_bound 1000))))
    (fun (n_payloads, ops) ->
      (* the stock int shrinker can walk below the generator's range *)
      let n_payloads = max 1 n_payloads in
      let h = Ggpu_fgpu.Event_heap.create ~dummy:(-1) in
      let current = Array.make n_payloads (-1) in
      (* interleave: even steps push/update a payload, odd steps pop.
         Arming times come off a monotone clock, as simulation times
         do — the protocol does not serve pops in time order if old
         entries can be re-armed into the past. *)
      let clock = ref 0 in
      let prev = ref min_int in
      let ok = ref true in
      List.iteri
        (fun i (p, dt) ->
          let p = p mod n_payloads in
          if i land 1 = 0 then begin
            (* re-arm payload [p] at a newer time; the old heap entry,
               if any, goes stale *)
            clock := !clock + dt;
            let t = max current.(p) !clock in
            current.(p) <- t;
            Ggpu_fgpu.Event_heap.push h t p
          end
          else
            match Ggpu_fgpu.Event_heap.pop h with
            | exception Ggpu_fgpu.Event_heap.Empty -> ()
            | t, p ->
                if t = current.(p) then begin
                  (* valid entry: must be served in global time order *)
                  if t < !prev then ok := false;
                  prev := t;
                  current.(p) <- -1
                end
                else if t > current.(p) && current.(p) >= 0 then
                  (* an entry newer than the payload's own clock cannot
                     exist: updates only move time forward *)
                  ok := false)
        ops;
      !ok)

let prop_clear =
  QCheck.Test.make ~name:"event_heap clear resets and allows reuse" ~count:200
    ops_arb (fun ops ->
      let h = Ggpu_fgpu.Event_heap.create ~dummy:0 in
      List.iter
        (function
          | Push t -> Ggpu_fgpu.Event_heap.push h t t
          | Pop -> (
              try ignore (Ggpu_fgpu.Event_heap.pop h)
              with Ggpu_fgpu.Event_heap.Empty -> ()))
        ops;
      Ggpu_fgpu.Event_heap.clear h;
      Ggpu_fgpu.Event_heap.is_empty h
      && Ggpu_fgpu.Event_heap.length h = 0
      && (match Ggpu_fgpu.Event_heap.pop h with
         | exception Ggpu_fgpu.Event_heap.Empty -> true
         | _ -> false)
      &&
      (* a cleared heap behaves like a fresh one *)
      (Ggpu_fgpu.Event_heap.push h 7 7;
       Ggpu_fgpu.Event_heap.push h 3 3;
       fst (Ggpu_fgpu.Event_heap.pop h) = 3))

let suite =
  [
    ( "event_heap",
      [
        QCheck_alcotest.to_alcotest prop_pop_sorted;
        QCheck_alcotest.to_alcotest prop_model;
        QCheck_alcotest.to_alcotest prop_is_empty;
        QCheck_alcotest.to_alcotest prop_stale_min_order;
        QCheck_alcotest.to_alcotest prop_clear;
      ] );
  ]
