(* Encode/decode round-trip tests for both ISAs, plus assembler label
   resolution. *)

open Ggpu_isa

(* --- FGPU ISA --------------------------------------------------------- *)

let fgpu_samples =
  Fgpu_isa.
    [
      Alu (Add, 1, 2, 3);
      Alu (Sltu, 31, 0, 30);
      Alui (Add, 5, 6, -7l);
      Alui (Or, 5, 6, 0xFFFFl);
      Alui (Sll, 7, 8, 2l);
      Lui (9, 0xABCDl);
      Li (10, -32768l);
      Lw (11, 12, 16);
      Sw (13, 14, -4);
      Branch (Ne, 1, 2, -5);
      Branch (Geu, 3, 4, 100);
      Jump 12345;
      Special (Lid, 15);
      Special (Gsize, 16);
      Barrier;
      Ret;
    ]

let test_fgpu_roundtrip () =
  List.iter
    (fun insn ->
      let decoded = Fgpu_isa.decode (Fgpu_isa.encode insn) in
      if decoded <> insn then
        Alcotest.failf "roundtrip failed: %s -> %s" (Fgpu_isa.to_string insn)
          (Fgpu_isa.to_string decoded))
    fgpu_samples

let gen_fgpu_insn =
  let open QCheck.Gen in
  let reg = int_range 0 31 in
  let reg_nz = int_range 1 31 in
  let imm = map Int32.of_int (int_range (-32768) 32767) in
  let uimm = map Int32.of_int (int_range 0 65535) in
  let alu_op =
    oneofl
      Fgpu_isa.
        [ Add; Sub; Mul; Div; Rem; And; Or; Xor; Sll; Srl; Sra; Slt; Sltu ]
  in
  let arith_op =
    oneofl Fgpu_isa.[ Add; Sub; Mul; Div; Rem; Sll; Srl; Sra; Slt; Sltu ]
  in
  let logic_op = oneofl Fgpu_isa.[ And; Or; Xor ] in
  let cond = oneofl Fgpu_isa.[ Eq; Ne; Lt; Ge; Ltu; Geu ] in
  let special = oneofl Fgpu_isa.[ Lid; Wgid; Wgoff; Wgsize; Gsize ] in
  oneof
    [
      map (fun ((op, rd), (rs1, rs2)) -> Fgpu_isa.Alu (op, rd, rs1, rs2))
        (pair (pair alu_op reg) (pair reg reg));
      (* rs1 <> 0 so the Alui does not decode as the Li pseudo-form *)
      map (fun ((op, rd), (rs1, imm)) -> Fgpu_isa.Alui (op, rd, rs1, imm))
        (pair (pair arith_op reg) (pair reg_nz imm));
      map (fun ((op, rd), (rs1, imm)) -> Fgpu_isa.Alui (op, rd, rs1, imm))
        (pair (pair logic_op reg) (pair reg_nz uimm));
      map (fun (rd, imm) -> Fgpu_isa.Li (rd, imm)) (pair reg imm);
      map (fun (rd, (rs1, off)) -> Fgpu_isa.Lw (rd, rs1, off))
        (pair reg (pair reg (int_range (-32768) 32767)));
      map (fun (rd, (rs1, off)) -> Fgpu_isa.Sw (rd, rs1, off))
        (pair reg (pair reg (int_range (-32768) 32767)));
      map (fun ((c, rs1), (rs2, off)) -> Fgpu_isa.Branch (c, rs1, rs2, off))
        (pair (pair cond reg) (pair reg (int_range (-32768) 32767)));
      map (fun t -> Fgpu_isa.Jump t) (int_range 0 ((1 lsl 26) - 1));
      map (fun (sp, rd) -> Fgpu_isa.Special (sp, rd)) (pair special reg);
      return Fgpu_isa.Barrier;
      return Fgpu_isa.Ret;
    ]

let prop_fgpu_roundtrip =
  QCheck.Test.make ~name:"fgpu encode/decode roundtrip" ~count:1000
    (QCheck.make ~print:Fgpu_isa.to_string gen_fgpu_insn)
    (fun insn -> Fgpu_isa.decode (Fgpu_isa.encode insn) = insn)

let test_fgpu_asm_labels () =
  let open Fgpu_asm in
  let program =
    assemble
      [
        Label "start";
        I (Fgpu_isa.Special (Fgpu_isa.Lid, 1));
        Branch_to (Fgpu_isa.Eq, 1, 0, "end");
        I (Fgpu_isa.Alui (Fgpu_isa.Add, 2, 2, 1l));
        Jump_to "start";
        Label "end";
        I Fgpu_isa.Ret;
      ]
  in
  Alcotest.(check int) "length" 5 (Array.length program);
  (match program.(1) with
  | Fgpu_isa.Branch (Fgpu_isa.Eq, 1, 0, off) ->
      (* branch at pc=1 targets "end" at 4: offset = 4 - 2 = 2 *)
      Alcotest.(check int) "branch offset" 2 off
  | insn -> Alcotest.failf "unexpected %s" (Fgpu_isa.to_string insn));
  match program.(3) with
  | Fgpu_isa.Jump 0 -> ()
  | insn -> Alcotest.failf "unexpected %s" (Fgpu_isa.to_string insn)

let test_fgpu_asm_wide_li () =
  let program =
    Fgpu_asm.assemble [ Fgpu_asm.Li32 (3, 0x12345678l) ]
  in
  Alcotest.(check int) "expanded to 2" 2 (Array.length program);
  match (program.(0), program.(1)) with
  | Fgpu_isa.Lui (3, hi), Fgpu_isa.Alui (Fgpu_isa.Or, 3, 3, lo) ->
      Alcotest.(check int32) "hi" 0x1234l hi;
      Alcotest.(check int32) "lo" 0x5678l lo
  | _ -> Alcotest.fail "expected lui/ori pair"

let test_fgpu_asm_duplicate_label () =
  match Fgpu_asm.assemble [ Fgpu_asm.Label "a"; Fgpu_asm.Label "a" ] with
  | _ -> Alcotest.fail "expected duplicate-label error"
  | exception Fgpu_asm.Asm_error _ -> ()

(* --- RV32 ------------------------------------------------------------- *)

let rv32_samples =
  Rv32.
    [
      Lui (1, 0xFFFFFl);
      Auipc (2, 1l);
      Jal (1, -2048);
      Jalr (1, 2, 16);
      Beq (1, 2, -4);
      Bge (3, 4, 4094);
      Bltu (5, 6, -4096);
      Lw (7, 8, 2047);
      Sw (9, 10, -2048);
      Addi (11, 12, -1l);
      Sltiu (13, 14, 100l);
      Slli (15, 16, 31);
      Srai (17, 18, 1);
      Add (19, 20, 21);
      Sub (22, 23, 24);
      Mul (25, 26, 27);
      Div (28, 29, 30);
      Remu (31, 0, 1);
      Ecall;
    ]

let test_rv32_roundtrip () =
  List.iter
    (fun insn ->
      let decoded = Rv32.decode (Rv32.encode insn) in
      if decoded <> insn then
        Alcotest.failf "roundtrip failed: %s -> %s" (Rv32.to_string insn)
          (Rv32.to_string decoded))
    rv32_samples

let gen_rv32_insn =
  let open QCheck.Gen in
  let reg = int_range 0 31 in
  let imm12 = map Int32.of_int (int_range (-2048) 2047) in
  let off12 = int_range (-2048) 2047 in
  let boff = map (fun v -> v * 2) (int_range (-2048) 2047) in
  let joff = map (fun v -> v * 2) (int_range (-524288) 524287) in
  let uimm = map Int32.of_int (int_range 0 0xFFFFF) in
  let sh = int_range 0 31 in
  let r3 op = map (fun ((d, a), b) -> op d a b) (pair (pair reg reg) reg) in
  oneof
    [
      map (fun (rd, imm) -> Rv32.Lui (rd, imm)) (pair reg uimm);
      map (fun (rd, imm) -> Rv32.Auipc (rd, imm)) (pair reg uimm);
      map (fun (rd, off) -> Rv32.Jal (rd, off)) (pair reg joff);
      map (fun ((rd, rs1), off) -> Rv32.Jalr (rd, rs1, off))
        (pair (pair reg reg) off12);
      map (fun ((a, b), off) -> Rv32.Beq (a, b, off)) (pair (pair reg reg) boff);
      map (fun ((a, b), off) -> Rv32.Bgeu (a, b, off)) (pair (pair reg reg) boff);
      map (fun ((rd, rs1), off) -> Rv32.Lw (rd, rs1, off))
        (pair (pair reg reg) off12);
      map (fun ((rs2, rs1), off) -> Rv32.Sw (rs2, rs1, off))
        (pair (pair reg reg) off12);
      map (fun ((rd, rs1), imm) -> Rv32.Addi (rd, rs1, imm))
        (pair (pair reg reg) imm12);
      map (fun ((rd, rs1), imm) -> Rv32.Andi (rd, rs1, imm))
        (pair (pair reg reg) imm12);
      map (fun ((rd, rs1), s) -> Rv32.Slli (rd, rs1, s))
        (pair (pair reg reg) sh);
      map (fun ((rd, rs1), s) -> Rv32.Srai (rd, rs1, s))
        (pair (pair reg reg) sh);
      r3 (fun d a b -> Rv32.Add (d, a, b));
      r3 (fun d a b -> Rv32.Sub (d, a, b));
      r3 (fun d a b -> Rv32.Xor (d, a, b));
      r3 (fun d a b -> Rv32.Mul (d, a, b));
      r3 (fun d a b -> Rv32.Div (d, a, b));
      r3 (fun d a b -> Rv32.Remu (d, a, b));
    ]

let prop_rv32_roundtrip =
  QCheck.Test.make ~name:"rv32 encode/decode roundtrip" ~count:1000
    (QCheck.make ~print:Rv32.to_string gen_rv32_insn)
    (fun insn -> Rv32.decode (Rv32.encode insn) = insn)

let test_rv32_asm_labels () =
  let open Rv32_asm in
  let program =
    assemble
      [
        I (Rv32.Addi (5, 0, 0l));
        Label "loop";
        I (Rv32.Addi (5, 5, 1l));
        Blt_to (5, 6, "loop");
        I Rv32.Ecall;
      ]
  in
  Alcotest.(check int) "length" 4 (Array.length program);
  match program.(2) with
  | Rv32.Blt (5, 6, off) -> Alcotest.(check int) "offset" (-4) off
  | insn -> Alcotest.failf "unexpected %s" (Rv32.to_string insn)

let test_rv32_li32_split () =
  (* the LUI/ADDI split must reconstruct the constant for tricky values
     where the low 12 bits are >= 0x800 *)
  List.iter
    (fun imm ->
      let program = Rv32_asm.assemble [ Rv32_asm.Li32 (1, imm) ] in
      let value =
        Array.fold_left
          (fun acc insn ->
            match insn with
            | Rv32.Lui (_, hi) -> Int32.shift_left hi 12
            | Rv32.Addi (_, _, lo) -> Int32.add acc lo
            | _ -> Alcotest.fail "unexpected instruction in li32")
          0l program
      in
      Alcotest.(check int32)
        (Printf.sprintf "li32 %ld" imm)
        imm value)
    [ 0l; 1l; -1l; 0x800l; 0xFFFl; 0x7FFFF800l; -2048l; -2049l; Int32.min_int; Int32.max_int ]

(* --- I32: native-int arithmetic vs the Int32 reference ----------------- *)

(* The simulator's hot path computes on native ints in I32's canonical
   sign-extended representation; every operator must agree with plain
   Int32 arithmetic on all inputs, including the overflow and shift
   corner cases. *)
let i32_arb =
  QCheck.make
    ~print:(fun v -> Int32.to_string v)
    QCheck.Gen.(
      frequency
        [
          (4, map Int32.of_int (int_bound 0xFFFF));
          (4, map (fun i -> Int32.of_int (-i)) (int_bound 0xFFFF));
          (2, map Int32.of_int int);
          (1, oneofl [ 0l; 1l; -1l; Int32.min_int; Int32.max_int ]);
        ])

let prop_i32_matches_int32 =
  let open Ggpu_isa in
  QCheck.Test.make ~name:"I32 ops match Int32 reference" ~count:2000
    QCheck.(pair i32_arb i32_arb)
    (fun (a32, b32) ->
      let a = I32.of_int32 a32 and b = I32.of_int32 b32 in
      let eq name got ref32 =
        if I32.to_int32 got <> ref32 then
          QCheck.Test.fail_reportf "%s: %ld op %ld -> %ld, expected %ld" name
            a32 b32 (I32.to_int32 got) ref32
        else true
      in
      let sh = Int32.to_int (Int32.logand b32 31l) in
      eq "add" (I32.add a b) (Int32.add a32 b32)
      && eq "sub" (I32.sub a b) (Int32.sub a32 b32)
      && eq "mul" (I32.mul a b) (Int32.mul a32 b32)
      && eq "and" (a land b) (Int32.logand a32 b32)
      && eq "or" (a lor b) (Int32.logor a32 b32)
      && eq "xor" (a lxor b) (Int32.logxor a32 b32)
      && eq "sll" (I32.sll a b) (Int32.shift_left a32 sh)
      && eq "srl" (I32.srl a b) (Int32.shift_right_logical a32 sh)
      && eq "sra" (I32.sra a b) (Int32.shift_right a32 sh)
      && compare a b = Int32.compare a32 b32
      && I32.ult a b
         = (Int32.unsigned_compare a32 b32 < 0)
      &&
      (* RISC-V M corner cases: x/0 = -1, min/-1 = min, x rem 0 = x *)
      let div_ref =
        if b32 = 0l then -1l
        else if a32 = Int32.min_int && b32 = -1l then Int32.min_int
        else Int32.div a32 b32
      and rem_ref =
        if b32 = 0l then a32
        else if a32 = Int32.min_int && b32 = -1l then 0l
        else Int32.rem a32 b32
      in
      eq "div" (I32.div_signed a b) div_ref
      && eq "rem" (I32.rem_signed a b) rem_ref)

let prop_i32_canonical =
  let open Ggpu_isa in
  QCheck.Test.make ~name:"I32 results stay canonical (sx is idempotent)"
    ~count:2000
    QCheck.(pair i32_arb i32_arb)
    (fun (a32, b32) ->
      let a = I32.of_int32 a32 and b = I32.of_int32 b32 in
      List.for_all
        (fun v -> I32.sx v = v)
        [
          I32.add a b; I32.sub a b; I32.mul a b; I32.sll a b; I32.srl a b;
          I32.sra a b; I32.div_signed a b; I32.rem_signed a b;
          a land b; a lor b; a lxor b;
        ])

let suite =
  [
    ( "isa",
      [
        QCheck_alcotest.to_alcotest prop_i32_matches_int32;
        QCheck_alcotest.to_alcotest prop_i32_canonical;
        Alcotest.test_case "fgpu roundtrip samples" `Quick test_fgpu_roundtrip;
        Alcotest.test_case "fgpu asm labels" `Quick test_fgpu_asm_labels;
        Alcotest.test_case "fgpu asm wide li" `Quick test_fgpu_asm_wide_li;
        Alcotest.test_case "fgpu asm duplicate label" `Quick
          test_fgpu_asm_duplicate_label;
        Alcotest.test_case "rv32 roundtrip samples" `Quick test_rv32_roundtrip;
        Alcotest.test_case "rv32 asm labels" `Quick test_rv32_asm_labels;
        Alcotest.test_case "rv32 li32 split" `Quick test_rv32_li32_split;
        QCheck_alcotest.to_alcotest prop_fgpu_roundtrip;
        QCheck_alcotest.to_alcotest prop_rv32_roundtrip;
      ] );
  ]
