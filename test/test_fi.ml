(* Tests for the ggpu_fi fault-injection subsystem: outcome taxonomy
   coverage, serial-vs-parallel determinism, and golden-run fidelity
   under the watchdog. *)

open Ggpu_kernels
module Campaign = Ggpu_fi.Campaign
module Fault = Ggpu_fi.Fault

let classes_of (r : Campaign.report) =
  List.sort_uniq compare
    (List.map
       (fun (t : Campaign.trial) ->
         match t.Campaign.outcome with
         | Fault.Masked -> `Masked
         | Fault.Sdc -> `Sdc
         | Fault.Due _ -> `Due
         | Fault.Hang -> `Hang)
       r.Campaign.trials)

(* The paper-style campaign: >=1000 trials over copy and div_int on
   both machines must surface every outcome class.  Single upsets in
   straight-line GPU kernels cannot livelock (no backward branches), so
   the Hang class comes from the RV32 per-work-item loop. *)
let test_all_outcome_classes () =
  let campaigns =
    [
      Campaign.run ~target:(Campaign.Ggpu 4) ~workload:Suite.copy ~size:512
        ~trials:1000 ~seed:42 ();
      Campaign.run ~target:(Campaign.Ggpu 4) ~workload:Suite.div_int ~size:512
        ~trials:1000 ~seed:42 ();
      Campaign.run ~target:Campaign.Rv32 ~workload:Suite.copy ~size:512
        ~trials:1000 ~seed:42 ();
      Campaign.run ~target:Campaign.Rv32 ~workload:Suite.div_int ~size:512
        ~trials:1000 ~seed:42 ();
    ]
  in
  let seen = List.sort_uniq compare (List.concat_map classes_of campaigns) in
  Alcotest.(check int) "all four outcome classes" 4 (List.length seen);
  List.iter
    (fun r ->
      Alcotest.(check int) "trial count" 1000 (Campaign.total_of r.Campaign.total);
      (* every campaign individually must show both masked and visible
         outcomes, or the sampler is broken *)
      Alcotest.(check bool) "some masked" true (r.Campaign.total.Campaign.masked > 0);
      Alcotest.(check bool) "some visible" true
        (Campaign.avf r.Campaign.total > 0.0))
    campaigns;
  let gpu_hangs =
    List.filter (fun r -> r.Campaign.target <> Campaign.Rv32) campaigns
    |> List.fold_left (fun n r -> n + r.Campaign.total.Campaign.hang) 0
  in
  Alcotest.(check int) "straight-line GPU kernels cannot hang" 0 gpu_hangs

(* Fixed seed => bit-identical trial list, serial or fanned out. *)
let test_serial_parallel_identical () =
  let run domains =
    Campaign.run ~domains ~target:(Campaign.Ggpu 2) ~workload:Suite.copy
      ~size:256 ~trials:200 ~seed:7 ()
  in
  let serial = run 1 and parallel = run 4 in
  Alcotest.(check string)
    "signatures identical"
    (Campaign.signature serial)
    (Campaign.signature parallel);
  Alcotest.(check bool) "trial lists identical" true
    (serial.Campaign.trials = parallel.Campaign.trials)

let test_rv32_serial_parallel_identical () =
  let run domains =
    Campaign.run ~domains ~target:Campaign.Rv32 ~workload:Suite.div_int
      ~size:128 ~trials:100 ~seed:9 ()
  in
  let serial = run 1 and parallel = run 3 in
  Alcotest.(check bool) "trial lists identical" true
    (serial.Campaign.trials = parallel.Campaign.trials)

(* The watchdog and injection hooks must be pure observers: a golden
   (no-fault) run under a generous watchdog reproduces the exact cycle
   count and output of a bare run. *)
let test_golden_run_unchanged_gpu () =
  let w = Suite.copy in
  let size = 512 in
  let args = w.Suite.mk_args ~size in
  let compiled = Codegen_fgpu.compile w.Suite.kernel in
  let config = Ggpu_fgpu.Config.with_cus Ggpu_fgpu.Config.default 4 in
  let launch ?max_cycles ?inject () =
    Run_fgpu.run ~config ?max_cycles ?inject compiled ~args
      ~global_size:(w.Suite.global_size ~size)
      ~local_size:(min w.Suite.local_size size)
      ()
  in
  let bare = launch () in
  let watched = launch ~max_cycles:1_000_000 () in
  let noop = launch ~max_cycles:1_000_000 ~inject:(bare.Run_fgpu.stats.Ggpu_fgpu.Stats.cycles / 2, fun _ -> ()) () in
  Alcotest.(check int) "watchdog run cycles"
    bare.Run_fgpu.stats.Ggpu_fgpu.Stats.cycles
    watched.Run_fgpu.stats.Ggpu_fgpu.Stats.cycles;
  Alcotest.(check int) "no-op inject cycles"
    bare.Run_fgpu.stats.Ggpu_fgpu.Stats.cycles
    noop.Run_fgpu.stats.Ggpu_fgpu.Stats.cycles;
  Alcotest.(check bool) "outputs identical" true
    (Run_fgpu.output bare w.Suite.output_buffer
    = Run_fgpu.output watched w.Suite.output_buffer)

let test_golden_run_unchanged_rv32 () =
  let w = Suite.copy in
  let size = 256 in
  let args = w.Suite.mk_args ~size in
  let compiled = Codegen_rv32.compile w.Suite.kernel in
  let launch ?max_cycles ?inject () =
    Run_rv32.run ?max_cycles ?inject compiled ~args
      ~global_size:(w.Suite.global_size ~size)
      ~local_size:(min w.Suite.local_size size)
      ()
  in
  let bare = launch () in
  let watched = launch ~max_cycles:100_000_000 () in
  let noop = launch ~max_cycles:100_000_000 ~inject:(100, fun _ -> ()) () in
  Alcotest.(check int) "watchdog run cycles"
    bare.Run_rv32.stats.Ggpu_riscv.Cpu.cycles
    watched.Run_rv32.stats.Ggpu_riscv.Cpu.cycles;
  Alcotest.(check int) "no-op inject cycles"
    bare.Run_rv32.stats.Ggpu_riscv.Cpu.cycles
    noop.Run_rv32.stats.Ggpu_riscv.Cpu.cycles;
  Alcotest.(check bool) "outputs identical" true
    (Run_rv32.output bare w.Suite.output_buffer
    = Run_rv32.output watched w.Suite.output_buffer)

(* A tight watchdog must fire as Hang classification fuel, not crash
   the campaign: every trial of a factor-0 campaign still classifies. *)
let test_watchdog_fires () =
  let r =
    Campaign.run ~target:Campaign.Rv32 ~workload:Suite.copy ~size:128
      ~trials:50 ~seed:3 ()
  in
  Alcotest.(check int) "all trials classified" 50
    (Campaign.total_of r.Campaign.total);
  match
    Run_rv32.run ~max_cycles:10
      (Codegen_rv32.compile Suite.copy.Suite.kernel)
      ~args:(Suite.copy.Suite.mk_args ~size:128)
      ~global_size:128 ~local_size:128 ()
  with
  | _ -> Alcotest.fail "expected watchdog timeout"
  | exception Ggpu_riscv.Cpu.Watchdog_timeout _ -> ()

let test_gpu_watchdog_fires () =
  match
    Run_fgpu.run ~max_cycles:10
      (Codegen_fgpu.compile Suite.copy.Suite.kernel)
      ~args:(Suite.copy.Suite.mk_args ~size:256)
      ~global_size:256 ~local_size:256 ()
  with
  | _ -> Alcotest.fail "expected watchdog timeout"
  | exception Ggpu_fgpu.Gpu.Watchdog_timeout _ -> ()

let suite =
  [
    ( "fi",
      [
        Alcotest.test_case "1000-trial campaigns cover all outcome classes"
          `Slow test_all_outcome_classes;
        Alcotest.test_case "serial = parallel (gpu)" `Quick
          test_serial_parallel_identical;
        Alcotest.test_case "serial = parallel (rv32)" `Quick
          test_rv32_serial_parallel_identical;
        Alcotest.test_case "golden run unchanged under watchdog (gpu)" `Quick
          test_golden_run_unchanged_gpu;
        Alcotest.test_case "golden run unchanged under watchdog (rv32)" `Quick
          test_golden_run_unchanged_rv32;
        Alcotest.test_case "watchdog fires (rv32)" `Quick test_watchdog_fires;
        Alcotest.test_case "watchdog fires (gpu)" `Quick
          test_gpu_watchdog_fires;
      ] );
  ]
