(* Tests for the GPUPlanner core: the DSE converges to each paper
   frequency with the right kinds of edits, maps replay deterministically,
   the flow derates the 8-CU design after layout, and the spec check
   reports violations. *)

open Ggpu_tech
open Ggpu_synth
open Ggpu_core

let tech = Tech.default_65nm

let explore_fresh ~num_cus ~freq_mhz =
  let nl = Ggpu_rtlgen.Generate.generate_cus ~num_cus in
  let result =
    Dse.explore tech nl ~num_cus ~period_ns:(1000.0 /. float_of_int freq_mhz)
  in
  (nl, result)

let test_dse_500_needs_nothing () =
  let _, result = explore_fresh ~num_cus:1 ~freq_mhz:500 in
  Alcotest.(check int) "no edits" 0 (List.length result.Dse.map.Map.edits)

let test_dse_590_divides_memories () =
  let _, result = explore_fresh ~num_cus:1 ~freq_mhz:590 in
  let map = result.Dse.map in
  Alcotest.(check bool) "has divisions" true (Map.divisions map > 0);
  Alcotest.(check int) "no pipelines at 590" 0 (Map.pipelines map);
  (* the first division must target the register file - the paper's
     non-optimised critical path *)
  match map.Map.edits with
  | Map.Split_words { cell_name; _ } :: _ ->
      Alcotest.(check bool)
        (Printf.sprintf "first edit on regfile, got %s" cell_name)
        true
        (String.length cell_name >= 11
        && String.sub cell_name (String.length cell_name - 7) 7 = "regfile")
  | edit :: _ ->
      Alcotest.failf "unexpected first edit: %s" (Map.edit_to_string edit)
  | [] -> Alcotest.fail "empty map"

let test_dse_667_divides_and_pipelines () =
  let _, result = explore_fresh ~num_cus:1 ~freq_mhz:667 in
  let map = result.Dse.map in
  Alcotest.(check bool) "has divisions" true (Map.divisions map > 0);
  Alcotest.(check bool) "has pipelines (on-demand)" true (Map.pipelines map > 0)

let test_dse_timing_met () =
  List.iter
    (fun freq_mhz ->
      let _, result = explore_fresh ~num_cus:2 ~freq_mhz in
      let period_ns = 1000.0 /. float_of_int freq_mhz in
      Alcotest.(check bool)
        (Printf.sprintf "meets %d MHz" freq_mhz)
        true
        (Timing.meets result.Dse.final ~period_ns))
    [ 500; 590; 667 ]

let test_dse_macro_counts_match_paper () =
  (* Table I #Memory column: 51 -> 65-71 at 590/667 (paper: 68/71) *)
  let count ~freq_mhz =
    let nl, _ = explore_fresh ~num_cus:1 ~freq_mhz in
    (Ggpu_hw.Netlist.stats nl).Ggpu_hw.Netlist.macro_count
  in
  let m590 = count ~freq_mhz:590 and m667 = count ~freq_mhz:667 in
  Alcotest.(check bool)
    (Printf.sprintf "590 macros %d in [60, 75]" m590)
    true
    (m590 >= 60 && m590 <= 75);
  Alcotest.(check bool)
    (Printf.sprintf "667 macros %d in [65, 80]" m667)
    true
    (m667 >= 65 && m667 <= 80);
  Alcotest.(check bool) "667 >= 590" true (m667 >= m590)

let test_dse_unreachable_frequency () =
  match explore_fresh ~num_cus:1 ~freq_mhz:2000 with
  | _ -> Alcotest.fail "expected Cannot_meet"
  | exception Dse.Cannot_meet _ -> ()

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_dse_division_only_hits_logic_wall () =
  (* without pipelining, 667 MHz dies on a logic-dominated path that no
     memory division can fix *)
  let nl = Ggpu_rtlgen.Generate.generate_cus ~num_cus:1 in
  match Dse.explore ~strategy:Dse.Division_only tech nl ~num_cus:1 ~period_ns:1.5 with
  | _ -> Alcotest.fail "expected Cannot_meet"
  | exception Dse.Cannot_meet { detail; _ } ->
      Alcotest.(check bool)
        (Printf.sprintf "detail names the unfixable path: %s" detail)
        true
        (contains detail "unfixable path")

let test_dse_pipeline_only_never_divides () =
  (* 1.9 ns sits between the unedited worst path (~1.98 ns) and the
     macro clk-to-q floor that only division can break, so pipelining
     alone both has to act and can converge *)
  let nl = Ggpu_rtlgen.Generate.generate_cus ~num_cus:1 in
  let result =
    Dse.explore ~strategy:Dse.Pipeline_only tech nl ~num_cus:1 ~period_ns:1.9
  in
  Alcotest.(check bool) "made progress" true
    (List.length result.Dse.map.Map.edits > 0);
  List.iter
    (function
      | Map.Pipeline _ -> ()
      | edit ->
          Alcotest.failf "pipeline-only emitted %s" (Map.edit_to_string edit))
    result.Dse.map.Map.edits

let test_dse_full_strategy_staging () =
  (* the paper's staging: divisions alone reach 590 MHz; 667 MHz needs
     divisions plus on-demand pipelining *)
  let explore freq_mhz =
    let nl = Ggpu_rtlgen.Generate.generate_cus ~num_cus:1 in
    Dse.explore ~strategy:Dse.Full tech nl ~num_cus:1
      ~period_ns:(1000.0 /. float_of_int freq_mhz)
  in
  let r590 = explore 590 in
  Alcotest.(check bool) "590: divisions" true (Map.divisions r590.Dse.map > 0);
  Alcotest.(check int) "590: no pipelines" 0 (Map.pipelines r590.Dse.map);
  let r667 = explore 667 in
  Alcotest.(check bool) "667: divisions" true (Map.divisions r667.Dse.map > 0);
  Alcotest.(check bool) "667: pipelines" true (Map.pipelines r667.Dse.map > 0)

let test_map_replay_reproduces_design () =
  let nl1, result = explore_fresh ~num_cus:1 ~freq_mhz:667 in
  let nl2 = Ggpu_rtlgen.Generate.generate_cus ~num_cus:1 in
  Map.apply nl2 result.Dse.map;
  let s1 = Ggpu_hw.Netlist.stats nl1 and s2 = Ggpu_hw.Netlist.stats nl2 in
  Alcotest.(check int) "macros" s1.Ggpu_hw.Netlist.macro_count
    s2.Ggpu_hw.Netlist.macro_count;
  Alcotest.(check int) "ff" s1.Ggpu_hw.Netlist.ff_bits s2.Ggpu_hw.Netlist.ff_bits;
  Alcotest.(check int) "comb" s1.Ggpu_hw.Netlist.comb_gates
    s2.Ggpu_hw.Netlist.comb_gates;
  let t1 = (Timing.analyse tech nl1).Timing.max_delay_ns in
  let t2 = (Timing.analyse tech nl2).Timing.max_delay_ns in
  Alcotest.(check (float 1e-9)) "timing" t1 t2

let test_map_replay_bad_name () =
  let nl = Ggpu_rtlgen.Generate.generate_cus ~num_cus:1 in
  let map =
    {
      Map.num_cus = 1;
      target_period_ns = 1.5;
      edits = [ Map.Split_words { cell_name = "nonexistent"; banks = 2 } ];
    }
  in
  match Map.apply nl map with
  | () -> Alcotest.fail "expected Replay_error"
  | exception Map.Replay_error _ -> ()

let test_flow_1cu_meets_667 () =
  let impl = Flow.implement ~tech (Spec.make ~num_cus:1 ~freq_mhz:667 ()) in
  Alcotest.(check bool) "meets spec" true (Result.is_ok impl.Flow.spec_check);
  Alcotest.(check (float 1.0)) "achieved 667" 667.0 impl.Flow.achieved_mhz

let test_flow_8cu_667_derates () =
  (* the paper's headline physical finding: the 8-CU layout cannot run
     at 667 MHz; the long GMC-to-peripheral-CU wires derate it to
     ~600 MHz *)
  let impl = Flow.implement ~tech (Spec.make ~num_cus:8 ~freq_mhz:667 ()) in
  Alcotest.(check bool) "spec violated" true (Result.is_error impl.Flow.spec_check);
  Alcotest.(check bool)
    (Printf.sprintf "achieved %.0f in [560, 650]" impl.Flow.achieved_mhz)
    true
    (impl.Flow.achieved_mhz >= 560.0 && impl.Flow.achieved_mhz < 655.0);
  match impl.Flow.post_timing.Ggpu_layout.Timing_post.worst_cross with
  | Some cross ->
      Alcotest.(check bool) "cross path is the limiter" true
        (cross.Ggpu_layout.Timing_post.total_ns
        > impl.Flow.post_timing.Ggpu_layout.Timing_post.internal_ns)
  | None -> Alcotest.fail "no cross-partition path found"

let test_flow_8cu_500_ok () =
  let impl = Flow.implement ~tech (Spec.make ~num_cus:8 ~freq_mhz:500 ()) in
  Alcotest.(check bool) "meets spec" true (Result.is_ok impl.Flow.spec_check)

let test_replicated_gmc_future_work () =
  (* paper future work: replicating the GMC shortens the worst route;
     the improvement is visible once the internal paths are optimised
     for 667 MHz and the wire is the limiter *)
  let nl, _ = explore_fresh ~num_cus:8 ~freq_mhz:667 in
  let fp1 = Ggpu_layout.Floorplan.build tech nl ~num_cus:8 in
  let fp2 = Ggpu_layout.Floorplan.build ~gmc_copies:2 tech nl ~num_cus:8 in
  let d1 = Ggpu_layout.Floorplan.worst_cu_gmc_distance_mm fp1 in
  let d2 = Ggpu_layout.Floorplan.worst_cu_gmc_distance_mm fp2 in
  Alcotest.(check bool)
    (Printf.sprintf "worst route shrinks: %.2f -> %.2f mm" d1 d2)
    true (d2 < d1 *. 0.8);
  let t1 = Ggpu_layout.Timing_post.analyse tech nl fp1 in
  let t2 = Ggpu_layout.Timing_post.analyse tech nl fp2 in
  Alcotest.(check bool) "achievable frequency improves" true
    (t2.Ggpu_layout.Timing_post.achieved_mhz
    > t1.Ggpu_layout.Timing_post.achieved_mhz)

let test_spec_validation () =
  (match Spec.make ~num_cus:9 ~freq_mhz:500 () with
  | _ -> Alcotest.fail "expected Invalid_spec"
  | exception Spec.Invalid_spec _ -> ());
  let spec =
    Spec.make ~max_area_mm2:(Some 1.0) ~max_power_w:(Some 0.5) ~num_cus:1
      ~freq_mhz:500 ()
  in
  match Spec.check spec ~area_mm2:4.0 ~power_w:2.0 ~achieved_mhz:450.0 with
  | Ok () -> Alcotest.fail "expected violations"
  | Error vs -> Alcotest.(check int) "three violations" 3 (List.length vs)

let test_render_layout () =
  let nl = Ggpu_rtlgen.Generate.generate_cus ~num_cus:8 in
  let fp = Ggpu_layout.Floorplan.build tech nl ~num_cus:8 in
  let art = Ggpu_layout.Render.render fp in
  List.iter
    (fun label ->
      let contains s sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) (label ^ " rendered") true (contains art label))
    [ "cu0"; "cu7"; "gmc" ]

let suite =
  [
    ( "planner",
      [
        Alcotest.test_case "dse 500 needs nothing" `Quick
          test_dse_500_needs_nothing;
        Alcotest.test_case "dse 590 divides memories" `Quick
          test_dse_590_divides_memories;
        Alcotest.test_case "dse 667 divides and pipelines" `Quick
          test_dse_667_divides_and_pipelines;
        Alcotest.test_case "dse timing met" `Quick test_dse_timing_met;
        Alcotest.test_case "dse macro counts near paper" `Quick
          test_dse_macro_counts_match_paper;
        Alcotest.test_case "dse unreachable frequency" `Quick
          test_dse_unreachable_frequency;
        Alcotest.test_case "dse division-only hits logic wall" `Quick
          test_dse_division_only_hits_logic_wall;
        Alcotest.test_case "dse pipeline-only never divides" `Quick
          test_dse_pipeline_only_never_divides;
        Alcotest.test_case "dse full strategy staging" `Quick
          test_dse_full_strategy_staging;
        Alcotest.test_case "map replay reproduces design" `Quick
          test_map_replay_reproduces_design;
        Alcotest.test_case "map replay bad name" `Quick test_map_replay_bad_name;
        Alcotest.test_case "flow 1cu meets 667" `Quick test_flow_1cu_meets_667;
        Alcotest.test_case "flow 8cu 667 derates" `Quick
          test_flow_8cu_667_derates;
        Alcotest.test_case "flow 8cu 500 ok" `Quick test_flow_8cu_500_ok;
        Alcotest.test_case "replicated gmc future work" `Quick
          test_replicated_gmc_future_work;
        Alcotest.test_case "spec validation" `Quick test_spec_validation;
        Alcotest.test_case "render layout" `Quick test_render_layout;
      ] );
  ]
