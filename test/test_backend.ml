(* Backend equivalence tests: the interpreting and threaded-code
   lane-execution engines, and the split (CU-parallel) execution mode,
   must be indistinguishable in every observable — stats, output
   buffers, FI classification signatures, suite metrics.

   The differential property generates random kernels (arithmetic,
   divergent control flow, bounded loops, coalesced/masked loads,
   cross-wavefront barrier communication) and random launch geometry,
   then checks every (backend x domains) combination against the
   sequential interpreter.  Generated kernels are race-free by
   construction — stores go only to the work-item's own slot, and
   cross-item reads only cross a barrier — because that is the
   contract under which split mode promises bit-identical results. *)

open Ggpu_kernels
open Ggpu_fgpu
open Ggpu_fi

(* read-only input buffer size; load indices are masked to [0, asize) *)
let asize = 64

(* --- random kernel generator ------------------------------------------ *)

type case = {
  kernel : Ast.kernel;
  gsize : int;
  lsize : int;
  cus : int;
  with_barrier : bool;
}

module G = QCheck.Gen

let gen_binop =
  G.oneofl
    Ast.[ Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr; Sra ]

let gen_cmpop = G.oneofl Ast.[ Eq; Ne; Lt; Le; Gt; Ge ]

(* depth-bounded expressions over [vars]; loads only touch the
   read-only buffer "a", with the index masked in range *)
let gen_expr vars depth =
  let open G in
  let leaf =
    oneof
      ([
         map Ast.const (int_range (-8) 8);
         return Ast.Global_id;
         return Ast.Local_id;
         return Ast.Local_size;
         return (Ast.var "n");
       ]
      @ List.map (fun v -> return (Ast.var v)) vars)
  in
  (fix (fun self depth ->
       if depth <= 0 then leaf
       else
         frequency
           [
             (2, leaf);
             ( 4,
               map3
                 (fun op a b -> Ast.Binop (op, a, b))
                 gen_binop (self (depth - 1)) (self (depth - 1)) );
             ( 1,
               map
                 (fun e ->
                   Ast.load "a" (Ast.Binop (Ast.And, e, Ast.const (asize - 1))))
                 (self (depth - 1)) );
           ]))
    depth

let gen_cond vars depth =
  G.map3
    (fun op a b -> Ast.Cmp (op, a, b))
    gen_cmpop (gen_expr vars depth) (gen_expr vars depth)

(* Template: scalar prologue, a bounded accumulation loop, a divergent
   if, a store to the item's own slot; optionally a barrier phase that
   reads another work-item's pre-barrier value (possibly from another
   wavefront — exactly what the split mode's barrier rounds must get
   right) and stores it into a second buffer. *)
let gen_kernel =
  let open G in
  let* e_x = gen_expr [ "i" ] 2 in
  let* e_y = gen_expr [ "i"; "x" ] 2 in
  let* iters = int_range 0 5 in
  let* e_loop = gen_expr [ "i"; "x"; "y"; "acc"; "k" ] 1 in
  let* cond = gen_cond [ "i"; "x"; "y"; "acc" ] 1 in
  let* e_then = gen_expr [ "i"; "x"; "y"; "acc" ] 1 in
  let* e_else = gen_expr [ "i"; "x"; "y"; "acc" ] 1 in
  let* e_out = gen_expr [ "i"; "x"; "y"; "acc" ] 2 in
  let* with_barrier = bool in
  let* peer_shift = int_range 0 63 in
  let prologue =
    [
      Ast.Let ("i", Ast.Global_id);
      Ast.Let ("x", e_x);
      Ast.Let ("y", e_y);
      Ast.Let ("acc", Ast.const 0);
      Ast.For
        ( "k",
          Ast.const 0,
          Ast.const iters,
          [ Ast.Assign ("acc", Ast.(var "acc" +: e_loop)) ] );
      Ast.If (cond, [ Ast.Assign ("x", e_then) ], [ Ast.Assign ("y", e_else) ]);
      Ast.Store ("out", Ast.var "i", e_out);
    ]
  in
  let barrier_phase =
    [
      Ast.Barrier;
      Ast.Let ("lid", Ast.Local_id);
      Ast.Let ("base", Ast.(var "i" -: var "lid"));
      Ast.Let
        ( "peer",
          Ast.(
            var "base"
            +: Binop (Rem, var "lid" +: const peer_shift, Local_size)) );
      Ast.Store ("res", Ast.var "i", Ast.load "out" (Ast.var "peer"));
    ]
  in
  let params =
    [ Ast.Buffer "a"; Ast.Buffer "out"; Ast.Scalar "n" ]
    @ if with_barrier then [ Ast.Buffer "res" ] else []
  in
  let body = prologue @ if with_barrier then barrier_phase else [] in
  return ({ Ast.name = "rand"; params; body }, with_barrier)

let gen_case =
  let open G in
  let* kernel, with_barrier = gen_kernel in
  let* gsize = int_range 1 300 in
  let* lsize = oneofl [ 64; 128 ] in
  let* cus = oneofl [ 1; 2; 4 ] in
  return { kernel; gsize; lsize = min lsize gsize; cus; with_barrier }

let print_case c =
  Printf.sprintf "gsize=%d lsize=%d cus=%d barrier=%b body-stmts=%d" c.gsize
    c.lsize c.cus c.with_barrier
    (List.length c.kernel.Ast.body)

let arb_case = QCheck.make ~print:print_case gen_case

(* --- differential runner ---------------------------------------------- *)

let round_up n m = (n + m - 1) / m * m

let mk_args c =
  (* the barrier phase may read any slot of its workgroup's span, so
     size "out" to the workgroup-aligned grid *)
  let out_words = round_up c.gsize c.lsize in
  let a = Array.init asize (fun i -> Int32.of_int ((i * 2654435761) lxor i)) in
  let buffers =
    [ ("a", a); ("out", Array.make out_words 0l) ]
    @ if c.with_barrier then [ ("res", Array.make c.gsize 0l) ] else []
  in
  { Interp.buffers; scalars = [ ("n", Int32.of_int c.gsize) ] }

let observe c ~backend ~domains =
  let config = Config.with_cus Config.default c.cus in
  let compiled = Codegen_fgpu.compile c.kernel in
  let r =
    Run_fgpu.run ~config ~backend ~domains compiled ~args:(mk_args c)
      ~global_size:c.gsize ~local_size:c.lsize ()
  in
  (Stats.to_assoc r.Run_fgpu.stats, r.Run_fgpu.buffers)

let prop_backends_and_domains_agree =
  QCheck.Test.make ~name:"backend x domains differential" ~count:30 arb_case
    (fun c ->
      let reference = observe c ~backend:Gpu.Interp ~domains:1 in
      List.for_all
        (fun (backend, domains) -> observe c ~backend ~domains = reference)
        [ (Gpu.Threaded, 1); (Gpu.Threaded, 3); (Gpu.Threaded, 4); (Gpu.Interp, 2) ])

(* --- superopt peephole differential ------------------------------------ *)

(* The peephole pass is allowed to change timing observables (cycles,
   instruction counts, vu_busy, divergent issue counts) but nothing
   else: output buffers must be bit-identical, and so must every
   memory/synchronisation counter, since the pass never rewrites a
   load, store or barrier. *)
let semantic_keys = [ "loads"; "stores"; "barriers"; "workgroups" ]

let observe_superopt c ~superopt =
  let config = Config.with_cus Config.default c.cus in
  let compiled = Codegen_fgpu.compile ~superopt c.kernel in
  let r =
    Run_fgpu.run ~config compiled ~args:(mk_args c) ~global_size:c.gsize
      ~local_size:c.lsize ()
  in
  let semantic =
    List.filter (fun (k, _) -> List.mem k semantic_keys)
      (Stats.to_assoc r.Run_fgpu.stats)
  in
  (semantic, r.Run_fgpu.buffers)

let prop_superopt_preserves_semantics =
  QCheck.Test.make ~name:"superopt peephole differential" ~count:30 arb_case
    (fun c ->
      observe_superopt c ~superopt:true = observe_superopt c ~superopt:false)

(* --- fixed cross-wavefront barrier case -------------------------------- *)

(* Two wavefronts per workgroup; after the barrier every item reads a
   slot written by the *other* wavefront before it.  Checks the split
   mode's barrier rounds against the sequential scheduler exactly, and
   the expected values analytically. *)
let test_split_barrier_cross_wavefront () =
  let kernel =
    {
      Ast.name = "xwf_barrier";
      params = [ Ast.Buffer "out"; Ast.Buffer "res" ];
      body =
        [
          Ast.Let ("i", Ast.Global_id);
          Ast.Store ("out", Ast.var "i", Ast.(var "i" *: const 3));
          Ast.Barrier;
          Ast.Let ("lid", Ast.Local_id);
          Ast.Let ("base", Ast.(var "i" -: var "lid"));
          Ast.Let
            ( "peer",
              Ast.(
                var "base" +: Binop (Rem, var "lid" +: const 64, Local_size)) );
          Ast.Store ("res", Ast.var "i", Ast.load "out" (Ast.var "peer"));
        ];
    }
  in
  let n = 512 in
  let run ~backend ~domains =
    let args =
      {
        Interp.buffers = [ ("out", Array.make n 0l); ("res", Array.make n 0l) ];
        scalars = [];
      }
    in
    let compiled = Codegen_fgpu.compile kernel in
    let r =
      Run_fgpu.run ~backend ~domains compiled ~args ~global_size:n
        ~local_size:128 ()
    in
    (Stats.to_assoc r.Run_fgpu.stats, Run_fgpu.output r "res")
  in
  let (stats_ref, res_ref) = run ~backend:Gpu.Interp ~domains:1 in
  (* analytic expectation: each item reads its cross-wavefront peer *)
  for i = 0 to n - 1 do
    let lid = i mod 128 in
    let peer = i - lid + ((lid + 64) mod 128) in
    Alcotest.(check int32)
      (Printf.sprintf "res[%d]" i)
      (Int32.of_int (3 * peer))
      res_ref.(i)
  done;
  List.iter
    (fun (backend, domains) ->
      let stats, res = run ~backend ~domains in
      Alcotest.(check bool)
        (Printf.sprintf "stats equal (%s, %d domains)"
           (Gpu.backend_name backend) domains)
        true
        (stats = stats_ref);
      Alcotest.(check bool)
        (Printf.sprintf "res equal (%s, %d domains)" (Gpu.backend_name backend)
           domains)
        true (res = res_ref))
    [ (Gpu.Threaded, 1); (Gpu.Threaded, 2); (Gpu.Threaded, 4); (Gpu.Interp, 3) ]

(* --- suite metrics: failures counter always present -------------------- *)

let test_suite_failures_registered () =
  let w = Suite.copy in
  let jobs =
    [ { Suite_runner.workload = w; cus = 1; size = w.Suite.round_size 256 } ]
  in
  let results, snap = Suite_runner.run ~domains:1 jobs in
  List.iter
    (fun r ->
      Alcotest.(check bool) "job correct" true r.Suite_runner.correct)
    results;
  Alcotest.(check (option int))
    "suite.failures present and zero on a clean run" (Some 0)
    (Ggpu_obs.Metrics.find_counter snap "suite.failures");
  Alcotest.(check (option int))
    "suite.jobs counted" (Some 1)
    (Ggpu_obs.Metrics.find_counter snap "suite.jobs")

(* --- FI classification signatures are backend-independent -------------- *)

let test_fi_signature_backend_parity () =
  let signature backend =
    Campaign.signature
      (Campaign.run ~domains:1 ~backend ~target:(Campaign.Ggpu 2)
         ~workload:Suite.copy ~size:256 ~trials:40 ~seed:7 ())
  in
  Alcotest.(check string)
    "fi signature identical across backends"
    (signature Gpu.Interp) (signature Gpu.Threaded)

let suite =
  [
    ( "backend",
      [
        QCheck_alcotest.to_alcotest prop_backends_and_domains_agree;
        QCheck_alcotest.to_alcotest prop_superopt_preserves_semantics;
        Alcotest.test_case "split barrier cross-wavefront" `Quick
          test_split_barrier_cross_wavefront;
        Alcotest.test_case "suite.failures registered at zero" `Quick
          test_suite_failures_registered;
        Alcotest.test_case "fi signature backend parity" `Slow
          test_fi_signature_backend_parity;
      ] );
  ]
