(* Differential tests for the CSR levelized timing engine: on random
   netlists and on generated designs, the CSR sweep must be
   bit-identical to the legacy hashtable walker — same arrival table
   net by net, same worst path, same fmax, same endpoint census — both
   on full analysis and while replaying edits through the incremental
   path. *)

open Ggpu_hw
open Ggpu_tech
open Ggpu_synth
open Ggpu_core

let tech = Tech.default_65nm

(* --- random netlists ----------------------------------------------------- *)

(* A random sequential design: [ffs] launch registers, [gates] comb
   cells each reading 1-3 already-created nets (acyclic by
   construction), then every sink net gets a capture register.  The
   integer list drives all structural choices, so QCheck shrinks to
   small netlists. *)
let comb_ops =
  [| Op.Buf; Op.Not; Op.And; Op.Or; Op.Xor; Op.Add; Op.Sub; Op.Mul;
     Op.Shl; Op.Eq |]

let build_random ~ffs ~gates (choices : int list) =
  let nl = Netlist.create ~name:"random" in
  let choices = Array.of_list choices in
  let n_choices = max 1 (Array.length choices) in
  let cursor = ref 0 in
  let pick bound =
    let c = if Array.length choices = 0 then 0 else choices.(!cursor mod n_choices) in
    incr cursor;
    abs c mod bound
  in
  let nets = ref [] in
  let net_array () = Array.of_list (List.rev !nets) in
  for i = 0 to ffs - 1 do
    let d = Netlist.add_net nl ~name:(Printf.sprintf "d%d" i) ~width:8 in
    let q = Netlist.add_net nl ~name:(Printf.sprintf "q%d" i) ~width:8 in
    let _ =
      Netlist.add_cell nl
        ~name:(Printf.sprintf "ff%d" i)
        ~region:"top" ~kind:Cell.Dff ~inputs:[ d ] ~outputs:[ q ] ()
    in
    nets := q :: !nets
  done;
  for i = 0 to gates - 1 do
    let avail = net_array () in
    let fanin = 1 + pick 3 in
    let inputs =
      List.init fanin (fun _ -> avail.(pick (Array.length avail)))
    in
    let out = Netlist.add_net nl ~name:(Printf.sprintf "n%d" i) ~width:8 in
    let op = comb_ops.(pick (Array.length comb_ops)) in
    let _ =
      Netlist.add_cell nl
        ~name:(Printf.sprintf "g%d" i)
        ~region:"top" ~kind:(Cell.Comb op) ~inputs ~outputs:[ out ] ()
    in
    nets := out :: !nets
  done;
  (* capture every net nothing reads, so worst paths end at real
     endpoints; a net may stay unread if shrinking empties the gate
     list, which is fine (arrival 0 everywhere is still compared) *)
  let idx = ref 0 in
  List.iter
    (fun net ->
      if Netlist.readers_of nl net = [] then begin
        let q =
          Netlist.add_net nl ~name:(Printf.sprintf "capq%d" !idx) ~width:8
        in
        let _ =
          Netlist.add_cell nl
            ~name:(Printf.sprintf "cap%d" !idx)
            ~region:"top" ~kind:Cell.Dff ~inputs:[ net ] ~outputs:[ q ] ()
        in
        incr idx
      end)
    (List.rev !nets);
  nl

(* --- bit-identity checks ------------------------------------------------- *)

let check_reports msg (a : Timing.report) (b : Timing.report) =
  Alcotest.(check (float 0.0))
    (msg ^ ": max_delay_ns") a.Timing.max_delay_ns b.Timing.max_delay_ns;
  Alcotest.(check (float 0.0))
    (msg ^ ": fmax_mhz") a.Timing.fmax_mhz b.Timing.fmax_mhz;
  Alcotest.(check int)
    (msg ^ ": endpoint_count") a.Timing.endpoint_count b.Timing.endpoint_count;
  let name c = Cell.name c in
  Alcotest.(check string)
    (msg ^ ": launch")
    (name a.Timing.worst.Timing.launch)
    (name b.Timing.worst.Timing.launch);
  Alcotest.(check string)
    (msg ^ ": capture")
    (name a.Timing.worst.Timing.capture)
    (name b.Timing.worst.Timing.capture);
  Alcotest.(check (list string))
    (msg ^ ": through")
    (List.map name a.Timing.worst.Timing.through)
    (List.map name b.Timing.worst.Timing.through);
  Alcotest.(check (float 0.0))
    (msg ^ ": path delay")
    a.Timing.worst.Timing.delay_ns b.Timing.worst.Timing.delay_ns

(* The arrival tables, net by net: every net of the netlist must carry
   the same float in both engines (absence counts as 0, matching the
   report scan), and agree on whether a launch register reaches it. *)
let check_arrivals msg nl (legacy : Timing.arrivals) (csr : Timing.arrivals) =
  Netlist.iter_nets nl (fun net ->
      let look tbl =
        match Hashtbl.find_opt tbl (Net.id net) with
        | Some t -> t
        | None -> 0.0
      in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "%s: arrival of net %d" msg (Net.id net))
        (look legacy.Timing.net_arrival)
        (look csr.Timing.net_arrival);
      Alcotest.(check bool)
        (Printf.sprintf "%s: launch presence on net %d" msg (Net.id net))
        (Hashtbl.mem legacy.Timing.net_launch (Net.id net))
        (Hashtbl.mem csr.Timing.net_launch (Net.id net)))

let engines_identical msg nl =
  let legacy = Timing.make_engine ~impl:Timing.Legacy tech nl in
  let csr = Timing.make_engine ~impl:Timing.Csr tech nl in
  check_reports msg (Timing.engine_analyse legacy) (Timing.engine_analyse csr);
  check_arrivals msg nl
    (Timing.engine_arrivals legacy)
    (Timing.engine_arrivals csr)

(* --- properties ---------------------------------------------------------- *)

let prop_random_full_identity =
  QCheck.Test.make ~name:"csr full analysis == legacy on random netlists"
    ~count:60
    QCheck.(
      triple (int_range 1 6) (int_range 0 40) (small_list small_int))
    (fun (ffs, gates, choices) ->
      let nl = build_random ~ffs ~gates choices in
      engines_identical "random" nl;
      true)

(* Replay: both engines attached to one netlist, pipeline registers
   inserted one at a time on driven nets; after every edit the CSR
   incremental re-sweep must match the legacy incremental walker AND a
   from-scratch analysis. *)
let prop_random_replay_identity =
  QCheck.Test.make
    ~name:"csr incremental replay == legacy == full on random netlists"
    ~count:30
    QCheck.(
      triple (int_range 2 5) (int_range 4 25) (small_list small_int))
    (fun (ffs, gates, choices) ->
      let nl = build_random ~ffs ~gates choices in
      let legacy = Timing.make_engine ~impl:Timing.Legacy tech nl in
      let csr = Timing.make_engine ~impl:Timing.Csr tech nl in
      check_reports "initial"
        (Timing.engine_analyse legacy)
        (Timing.engine_analyse csr);
      (* pipeline the first few comb-driven nets, one edit per step *)
      let targets =
        List.filteri
          (fun i _ -> i < 4)
          (List.filter
             (fun net ->
               match Netlist.driver_of nl net with
               | Some c -> Cell.is_comb c && Netlist.readers_of nl net <> []
               | None -> false)
             (Netlist.nets nl))
      in
      List.iteri
        (fun i net ->
          ignore (Netlist.insert_pipeline nl net);
          let msg = Printf.sprintf "after pipeline %d" i in
          let fresh = Timing.analyse tech nl in
          check_reports (msg ^ " (legacy vs csr)")
            (Timing.engine_analyse legacy)
            (Timing.engine_analyse csr);
          check_reports (msg ^ " (csr vs fresh)") fresh
            (Timing.engine_analyse csr);
          check_arrivals msg nl
            (Timing.engine_arrivals legacy)
            (Timing.engine_arrivals csr))
        targets;
      let stats = Timing.engine_stats csr in
      if targets <> [] && stats.Timing.incremental_updates = 0 then
        QCheck.Test.fail_report "csr engine never took the incremental path";
      true)

(* --- generated designs --------------------------------------------------- *)

let test_generated_identity () =
  List.iter
    (fun num_cus ->
      let nl = Ggpu_rtlgen.Generate.generate_cus ~num_cus in
      engines_identical (Printf.sprintf "%d CU" num_cus) nl;
      (* cone-parallel sweep is bit-identical to the serial one *)
      check_reports
        (Printf.sprintf "%d CU domains" num_cus)
        (Timing.analyse_csr tech nl)
        (Timing.analyse_csr ~domains:4 tech nl))
    [ 1; 2 ]

(* The planner must converge identically on either engine: same edit
   list, same final report, same iteration count. *)
let test_dse_csr_matches_legacy () =
  let run sta =
    let nl = Ggpu_rtlgen.Generate.generate_cus ~num_cus:2 in
    Dse.explore ~sta tech nl ~num_cus:2 ~period_ns:(1000.0 /. 667.0)
  in
  let csr = run Timing.Csr and legacy = run Timing.Legacy in
  Alcotest.(check int) "iterations" legacy.Dse.iterations csr.Dse.iterations;
  Alcotest.(check (list string))
    "same edits"
    (List.map Map.edit_to_string legacy.Dse.map.Map.edits)
    (List.map Map.edit_to_string csr.Dse.map.Map.edits);
  check_reports "final report" legacy.Dse.final csr.Dse.final

let test_engine_impl_dispatch () =
  let nl = Ggpu_rtlgen.Generate.generate_cus ~num_cus:1 in
  Alcotest.(check bool) "default engine is CSR" true
    (Timing.engine_impl (Timing.make_engine tech nl) = Timing.Csr);
  Alcotest.(check bool) "legacy engine selectable" true
    (Timing.engine_impl (Timing.make_engine ~impl:Timing.Legacy tech nl)
    = Timing.Legacy)

let suite =
  [
    ( "csr-sta",
      [
        QCheck_alcotest.to_alcotest prop_random_full_identity;
        QCheck_alcotest.to_alcotest prop_random_replay_identity;
        Alcotest.test_case "generated designs bit-identical" `Quick
          test_generated_identity;
        Alcotest.test_case "dse converges identically on both engines" `Quick
          test_dse_csr_matches_legacy;
        Alcotest.test_case "engine impl dispatch" `Quick
          test_engine_impl_dispatch;
      ] );
  ]
