(* Tests for the analytical global placer: legality of the placed
   floorplan, bit-identical results at any domain count, the 8-CU
   wirelength win over the estimator floorplan, and the spec/CU-count
   validation behind the extended 16/32/64 grids. *)

open Ggpu_tech
open Ggpu_layout
open Ggpu_core

let tech = Tech.default_65nm

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let netlist_for cus =
  let nl = Ggpu_rtlgen.Generate.generate_cus ~num_cus:cus in
  ignore (Dse.explore tech nl ~num_cus:cus ~period_ns:(1000.0 /. 667.0));
  nl

(* --- legality ------------------------------------------------------------ *)

let overlap_area (a : Floorplan.rect) (b : Floorplan.rect) =
  let ox =
    Float.min (a.Floorplan.x +. a.Floorplan.w) (b.Floorplan.x +. b.Floorplan.w)
    -. Float.max a.Floorplan.x b.Floorplan.x
  and oy =
    Float.min (a.Floorplan.y +. a.Floorplan.h) (b.Floorplan.y +. b.Floorplan.h)
    -. Float.max a.Floorplan.y b.Floorplan.y
  in
  if ox > 0.0 && oy > 0.0 then ox *. oy else 0.0

let check_legal msg (fp : Floorplan.t) =
  let eps = 1e-6 in
  List.iter
    (fun (p : Floorplan.partition) ->
      let r = p.Floorplan.rect in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s inside die" msg p.Floorplan.part_name)
        true
        (r.Floorplan.x >= fp.Floorplan.die.Floorplan.x -. eps
        && r.Floorplan.y >= fp.Floorplan.die.Floorplan.y -. eps
        && r.Floorplan.x +. r.Floorplan.w
           <= fp.Floorplan.die.Floorplan.x +. fp.Floorplan.die.Floorplan.w
              +. eps
        && r.Floorplan.y +. r.Floorplan.h
           <= fp.Floorplan.die.Floorplan.y +. fp.Floorplan.die.Floorplan.h
              +. eps))
    fp.Floorplan.partitions;
  let rec pairs = function
    | [] -> ()
    | (p : Floorplan.partition) :: rest ->
        List.iter
          (fun (q : Floorplan.partition) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: %s and %s disjoint" msg
                 p.Floorplan.part_name q.Floorplan.part_name)
              true
              (overlap_area p.Floorplan.rect q.Floorplan.rect <= eps))
          rest;
        pairs rest
  in
  pairs fp.Floorplan.partitions

let test_placed_floorplan_legal () =
  List.iter
    (fun cus ->
      let nl = netlist_for cus in
      let placed = Place.place tech nl ~num_cus:cus in
      let fp = placed.Place.floorplan in
      check_legal (Printf.sprintf "%d CU" cus) fp;
      (* same partition inventory as the estimator floorplan, areas
         preserved — the placer moves partitions, never reshapes their
         contents *)
      let est = Floorplan.build tech nl ~num_cus:cus in
      let names (f : Floorplan.t) =
        List.sort compare
          (List.map (fun p -> p.Floorplan.part_name) f.Floorplan.partitions)
      in
      Alcotest.(check (list string))
        (Printf.sprintf "%d CU: partition inventory" cus)
        (names est) (names fp);
      (* every placed rect holds its partition's cells at the same
         density budget the estimator uses (the estimator additionally
         pads rects out to full column height, so equality is with the
         density footprint, not the estimator rect) *)
      List.iter
        (fun (p : Floorplan.partition) ->
          let density =
            if p.Floorplan.part_name = "top" then Floorplan.top_density
            else Floorplan.cu_density
          in
          let footprint =
            (p.Floorplan.area.Ggpu_synth.Area.logic_mm2 /. density)
            +. p.Floorplan.area.Ggpu_synth.Area.memory_mm2
          in
          Alcotest.(check (float 1e-6))
            (Printf.sprintf "%d CU: %s area" cus p.Floorplan.part_name)
            footprint
            (p.Floorplan.rect.Floorplan.w *. p.Floorplan.rect.Floorplan.h))
        fp.Floorplan.partitions)
    [ 1; 2 ]

(* --- determinism --------------------------------------------------------- *)

let test_deterministic_across_domains () =
  let nl = netlist_for 2 in
  let base = Place.place ~domains:1 tech nl ~num_cus:2 in
  List.iter
    (fun domains ->
      let p = Place.place ~domains tech nl ~num_cus:2 in
      Alcotest.(check bool)
        (Printf.sprintf "floorplan identical at %d domains" domains)
        true
        (p.Place.floorplan = base.Place.floorplan);
      Alcotest.(check (float 0.0))
        (Printf.sprintf "wirelength identical at %d domains" domains)
        base.Place.wirelength_mm p.Place.wirelength_mm)
    [ 2; 3; 4 ]

let test_repeated_runs_identical () =
  let nl = netlist_for 1 in
  let a = Place.place tech nl ~num_cus:1 in
  let b = Place.place tech nl ~num_cus:1 in
  Alcotest.(check bool) "two runs, one floorplan" true
    (a.Place.floorplan = b.Place.floorplan)

(* --- the 8-CU wirelength win --------------------------------------------- *)

let test_8cu_beats_estimator_wirelength () =
  let cus = 8 in
  let spec = Spec.make ~num_cus:cus ~freq_mhz:667 () in
  let impl = Flow.implement ~tech spec in
  let nl = impl.Flow.netlist in
  let period_ns = 1000.0 /. impl.Flow.achieved_mhz in
  let base_macros = Flow.base_macro_count ~num_cus:cus in
  let placed = Place.place tech nl ~num_cus:cus in
  let placed_route =
    Route.estimate tech nl placed.Place.floorplan ~period_ns ~base_macros
  in
  Alcotest.(check bool)
    (Printf.sprintf "placed %.0f um < estimator %.0f um"
       placed_route.Route.total_um impl.Flow.route.Route.total_um)
    true
    (placed_route.Route.total_um < impl.Flow.route.Route.total_um)

(* The flow's Analytic engine is the same placement. *)
let test_flow_analytic_placer () =
  let spec = Spec.make ~num_cus:2 ~freq_mhz:500 () in
  let impl = Flow.implement ~tech ~place:Flow.Analytic ~place_domains:2 spec in
  let placed = Place.place tech impl.Flow.netlist ~num_cus:2 in
  Alcotest.(check bool) "flow floorplan is the placer's" true
    (impl.Flow.floorplan = placed.Place.floorplan)

(* --- extended CU grids --------------------------------------------------- *)

let test_spec_accepts_extended_cus () =
  List.iter
    (fun num_cus ->
      let spec = Spec.make ~num_cus ~freq_mhz:667 () in
      Alcotest.(check int) "cus kept" num_cus spec.Spec.num_cus)
    [ 1; 8; 16; 32; 64 ]

let test_spec_rejects_unsupported_cus () =
  List.iter
    (fun num_cus ->
      match Spec.make ~num_cus ~freq_mhz:667 () with
      | _ -> Alcotest.failf "num_cus %d accepted" num_cus
      | exception Spec.Invalid_spec msg ->
          Alcotest.(check bool)
            (Printf.sprintf "error names the count (%s)" msg)
            true
            (contains ~sub:(string_of_int num_cus) msg))
    [ 0; 9; 12; 24; 48; 100 ]

let test_contention_derate () =
  let derate cus =
    Spec.contention_derate (Spec.make ~num_cus:cus ~freq_mhz:667 ())
  in
  (* identity through the paper grid, monotone decline beyond it *)
  List.iter
    (fun cus ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "%d CU underated" cus)
        1.0 (derate cus))
    [ 1; 4; 8 ];
  Alcotest.(check bool) "16 < 8" true (derate 16 < 1.0);
  Alcotest.(check bool) "32 < 16" true (derate 32 < derate 16);
  Alcotest.(check bool) "64 < 32" true (derate 64 < derate 32)

let test_check_cu_counts () =
  Compare.check_cu_counts [ 1; 2; 4; 8; 16; 32; 64 ];
  (match Compare.check_cu_counts [ 8; 12 ] with
  | () -> Alcotest.fail "12 accepted"
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        (Printf.sprintf "names the offender (%s)" msg)
        true
        (contains ~sub:"12" msg));
  match Compare.check_cu_counts [] with
  | () -> Alcotest.fail "empty list accepted"
  | exception Invalid_argument _ -> ()

let test_scaling_specs_validate () =
  Alcotest.(check int) "default grid" 4
    (List.length (Versions.scaling_specs ()));
  Alcotest.(check (list int))
    "explicit grid kept"
    [ 16; 64 ]
    (List.map
       (fun s -> s.Spec.num_cus)
       (Versions.scaling_specs ~cu_counts:[ 16; 64 ] ()));
  match Versions.scaling_specs ~cu_counts:[ 8; 13 ] () with
  | _ -> Alcotest.fail "13 accepted"
  | exception Invalid_argument _ -> ()

let test_fgpu_config_extended_cus () =
  List.iter
    (fun cus ->
      let c = Ggpu_fgpu.Config.with_cus Ggpu_fgpu.Config.default cus in
      Alcotest.(check int) "cus kept" cus c.Ggpu_fgpu.Config.num_cus)
    [ 16; 32; 64 ];
  match Ggpu_fgpu.Config.with_cus Ggpu_fgpu.Config.default 12 with
  | _ -> Alcotest.fail "12 accepted"
  | exception Ggpu_fgpu.Config.Bad_config _ -> ()

let suite =
  [
    ( "place",
      [
        Alcotest.test_case "placed floorplan is legal" `Quick
          test_placed_floorplan_legal;
        Alcotest.test_case "bit-identical across domains" `Quick
          test_deterministic_across_domains;
        Alcotest.test_case "repeated runs identical" `Quick
          test_repeated_runs_identical;
        Alcotest.test_case "8-CU wirelength beats estimator" `Slow
          test_8cu_beats_estimator_wirelength;
        Alcotest.test_case "flow analytic engine dispatch" `Quick
          test_flow_analytic_placer;
      ] );
    ( "scaling-grid",
      [
        Alcotest.test_case "spec accepts 16/32/64" `Quick
          test_spec_accepts_extended_cus;
        Alcotest.test_case "spec rejects unsupported counts" `Quick
          test_spec_rejects_unsupported_cus;
        Alcotest.test_case "contention derate shape" `Quick
          test_contention_derate;
        Alcotest.test_case "check_cu_counts" `Quick test_check_cu_counts;
        Alcotest.test_case "scaling_specs validates" `Quick
          test_scaling_specs_validate;
        Alcotest.test_case "fgpu config accepts 16/32/64" `Quick
          test_fgpu_config_extended_cus;
      ] );
  ]
