(* Tests for the RTL generator and logic synthesis: published-scale
   structure, STA correctness on hand-built netlists, area/power
   monotonicity. *)

open Ggpu_hw
open Ggpu_tech
open Ggpu_synth
open Ggpu_rtlgen

let tech = Tech.default_65nm

let test_generator_macro_counts () =
  (* Table I: 51/93/177/345 macros for 1/2/4/8 CUs *)
  List.iter
    (fun (cus, expect) ->
      let nl = Generate.generate_cus ~num_cus:cus in
      Alcotest.(check int)
        (Printf.sprintf "%d CU macros" cus)
        expect
        (Netlist.stats nl).Netlist.macro_count)
    [ (1, 51); (2, 93); (4, 177); (8, 345) ]

let test_generator_published_scale () =
  let nl = Generate.generate_cus ~num_cus:1 in
  let s = Netlist.stats nl in
  let within ~pct actual expect =
    let delta = abs (actual - expect) in
    float_of_int delta <= float_of_int expect *. pct /. 100.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "FF %d ~ 119778" s.Netlist.ff_bits)
    true
    (within ~pct:5.0 s.Netlist.ff_bits 119_778);
  Alcotest.(check bool)
    (Printf.sprintf "comb %d ~ 127826" s.Netlist.comb_gates)
    true
    (within ~pct:5.0 s.Netlist.comb_gates 127_826)

let test_generator_valid_for_all_cus () =
  List.iter
    (fun cus ->
      let nl = Generate.generate_cus ~num_cus:cus in
      match Netlist.validate nl with
      | Ok () -> ()
      | Error es ->
          Alcotest.failf "%d CU invalid: %s" cus (String.concat "; " es))
    [ 1; 3; 5; 8 ]

let test_generator_rejects_bad_cus () =
  match Generate.generate_cus ~num_cus:9 with
  | _ -> Alcotest.fail "expected Bad_params"
  | exception Arch_params.Bad_params _ -> ()

let test_base_fmax_near_500 () =
  let nl = Generate.generate_cus ~num_cus:1 in
  let report = Timing.analyse tech nl in
  Alcotest.(check bool)
    (Printf.sprintf "fmax %.0f in [495, 520]" report.Timing.fmax_mhz)
    true
    (report.Timing.fmax_mhz >= 495.0 && report.Timing.fmax_mhz <= 520.0)

let test_critical_path_starts_at_memory () =
  (* the paper: "the critical path for the version without any
     optimization has its starting point at a memory block ... inside
     the CU partition" *)
  let nl = Generate.generate_cus ~num_cus:2 in
  let report = Timing.analyse tech nl in
  let launch = report.Timing.worst.Timing.launch in
  Alcotest.(check bool) "launch is macro" true (Cell.is_macro launch);
  let region = Cell.region launch in
  Alcotest.(check bool)
    (Printf.sprintf "launch region %s is a CU" region)
    true
    (String.length region >= 2 && String.sub region 0 2 = "cu")

(* STA on a hand-built netlist with a known longest path. *)
let test_sta_hand_computed () =
  let nl = Netlist.create ~name:"sta" in
  let d = Netlist.add_net nl ~name:"d" ~width:32 in
  let q = Netlist.add_net nl ~name:"q" ~width:32 in
  let s1 = Netlist.add_net nl ~name:"s1" ~width:32 in
  let s2 = Netlist.add_net nl ~name:"s2" ~width:32 in
  let _ff1 =
    Netlist.add_cell nl ~name:"ff1" ~region:"top" ~kind:Cell.Dff ~inputs:[ d ]
      ~outputs:[ q ] ()
  in
  let _add =
    Netlist.add_cell nl ~name:"add" ~region:"top" ~kind:(Cell.Comb Op.Add)
      ~inputs:[ q; q ] ~outputs:[ s1 ] ()
  in
  let _xor =
    Netlist.add_cell nl ~name:"xor" ~region:"top" ~kind:(Cell.Comb Op.Xor)
      ~inputs:[ s1; q ] ~outputs:[ s2 ] ()
  in
  let _ff2 =
    Netlist.add_cell nl ~name:"ff2" ~region:"top" ~kind:Cell.Dff ~inputs:[ s2 ]
      ~outputs:[ d ] ()
  in
  let report = Timing.analyse tech nl in
  let s = tech.Tech.stdcell in
  let expect =
    s.Stdcell.dff_clk_to_q_ns
    +. Stdcell.comb_delay_ns s Op.Add ~width:32
    +. Stdcell.comb_delay_ns s Op.Xor ~width:32
    +. s.Stdcell.dff_setup_ns +. s.Stdcell.clock_skew_ns
  in
  Alcotest.(check (float 1e-9)) "hand-computed delay" expect
    report.Timing.max_delay_ns;
  Alcotest.(check string) "launch" "ff1"
    (Cell.name report.Timing.worst.Timing.launch);
  Alcotest.(check string) "capture" "ff2"
    (Cell.name report.Timing.worst.Timing.capture)

let test_sta_macro_launch_dominates () =
  (* a macro's clk-to-q must beat a dff's on an equal-logic path *)
  let nl = Netlist.create ~name:"sta2" in
  let addr = Netlist.add_net nl ~name:"addr" ~width:11 in
  let rdata = Netlist.add_net nl ~name:"rdata" ~width:32 in
  let cap = Netlist.add_net nl ~name:"cap" ~width:32 in
  Netlist.set_inputs nl [ addr ];
  let spec = Macro_spec.make ~words:2048 ~bits:32 ~ports:Macro_spec.Dual_port in
  let macro =
    Netlist.add_cell nl ~name:"mem" ~region:"cu0" ~kind:(Cell.Macro spec)
      ~inputs:[ addr ] ~outputs:[ rdata ] ()
  in
  let _ff =
    Netlist.add_cell nl ~name:"capture" ~region:"cu0" ~kind:Cell.Dff
      ~inputs:[ rdata ] ~outputs:[ cap ] ()
  in
  let report = Timing.analyse tech nl in
  Alcotest.(check string) "macro launches" (Cell.name macro)
    (Cell.name report.Timing.worst.Timing.launch);
  let attrs = Memlib.query tech.Tech.memory spec in
  let expect =
    attrs.Memlib.clk_to_q_ns +. tech.Tech.stdcell.Stdcell.dff_setup_ns
    +. tech.Tech.stdcell.Stdcell.clock_skew_ns
  in
  Alcotest.(check (float 1e-9)) "macro path delay" expect
    report.Timing.max_delay_ns

let test_sta_endpoint_count_excludes_primary_inputs () =
  (* two sequential endpoints, but only one is reached from a register:
     the path from the primary input must not inflate endpoint_count *)
  let nl = Netlist.create ~name:"endpoints" in
  let d = Netlist.add_net nl ~name:"d" ~width:8 in
  let q = Netlist.add_net nl ~name:"q" ~width:8 in
  let n1 = Netlist.add_net nl ~name:"n1" ~width:8 in
  let q2 = Netlist.add_net nl ~name:"q2" ~width:8 in
  let pi = Netlist.add_net nl ~name:"pi" ~width:8 in
  let n2 = Netlist.add_net nl ~name:"n2" ~width:8 in
  let q3 = Netlist.add_net nl ~name:"q3" ~width:8 in
  Netlist.set_inputs nl [ pi ];
  let _ff1 =
    Netlist.add_cell nl ~name:"ff1" ~region:"top" ~kind:Cell.Dff ~inputs:[ d ]
      ~outputs:[ q ] ()
  in
  let _g1 =
    Netlist.add_cell nl ~name:"g1" ~region:"top" ~kind:(Cell.Comb Op.Not)
      ~inputs:[ q ] ~outputs:[ n1 ] ()
  in
  let _ff2 =
    Netlist.add_cell nl ~name:"ff2" ~region:"top" ~kind:Cell.Dff
      ~inputs:[ n1 ] ~outputs:[ q2 ] ()
  in
  (* primary-input-only cone into a third register *)
  let _g2 =
    Netlist.add_cell nl ~name:"g2" ~region:"top" ~kind:(Cell.Comb Op.Not)
      ~inputs:[ pi ] ~outputs:[ n2 ] ()
  in
  let _ff3 =
    Netlist.add_cell nl ~name:"ff3" ~region:"top" ~kind:Cell.Dff
      ~inputs:[ n2 ] ~outputs:[ q3 ] ()
  in
  let report = Timing.analyse tech nl in
  Alcotest.(check int)
    "only the register-launched endpoint counts" 1
    report.Timing.endpoint_count;
  Alcotest.(check string) "launch" "ff1"
    (Cell.name report.Timing.worst.Timing.launch);
  Alcotest.(check string) "capture" "ff2"
    (Cell.name report.Timing.worst.Timing.capture)

let test_sta_deterministic () =
  (* two consecutive analyses of the same netlist must report the same
     worst path, delay and endpoint count *)
  let nl = Generate.generate_cus ~num_cus:2 in
  let r1 = Timing.analyse tech nl and r2 = Timing.analyse tech nl in
  Alcotest.(check (float 0.0)) "same delay" r1.Timing.max_delay_ns
    r2.Timing.max_delay_ns;
  Alcotest.(check int) "same endpoints" r1.Timing.endpoint_count
    r2.Timing.endpoint_count;
  Alcotest.(check string) "same launch"
    (Cell.name r1.Timing.worst.Timing.launch)
    (Cell.name r2.Timing.worst.Timing.launch);
  Alcotest.(check string) "same capture"
    (Cell.name r1.Timing.worst.Timing.capture)
    (Cell.name r2.Timing.worst.Timing.capture);
  Alcotest.(check (list string)) "same through cells"
    (List.map Cell.name r1.Timing.worst.Timing.through)
    (List.map Cell.name r2.Timing.worst.Timing.through)

let test_area_scales_with_cus () =
  let area cus =
    (Area.of_netlist tech (Generate.generate_cus ~num_cus:cus)).Area.total_mm2
  in
  let a1 = area 1 and a2 = area 2 and a4 = area 4 in
  Alcotest.(check bool) "2cu ~ 2x of increment" true (a2 > a1 *. 1.5);
  Alcotest.(check bool) "4cu > 2cu" true (a4 > a2 *. 1.5);
  (* Table I: "the G-GPU size grows linearly with the number of CUs" *)
  let increment12 = a2 -. a1 and increment24 = (a4 -. a2) /. 2.0 in
  Alcotest.(check bool) "linear growth" true
    (abs_float (increment12 -. increment24) /. increment12 < 0.1)

let test_power_scales_with_frequency () =
  let nl = Generate.generate_cus ~num_cus:1 in
  let p500 = Power.of_netlist tech nl ~freq_mhz:500.0 in
  let p667 = Power.of_netlist tech nl ~freq_mhz:667.0 in
  Alcotest.(check bool) "dynamic grows" true
    (p667.Power.dynamic_w > p500.Power.dynamic_w *. 1.3);
  Alcotest.(check (float 1e-9)) "leakage unchanged" p500.Power.leakage_mw
    p667.Power.leakage_mw

let test_splitting_regfile_improves_fmax () =
  let nl = Generate.generate_cus ~num_cus:1 in
  let before = (Timing.analyse tech nl).Timing.fmax_mhz in
  (match Netlist.find_cell_by_name nl "cu0/regfile" with
  | Some cell -> Netlist.split_macro_words nl cell ~banks:8
  | None -> Alcotest.fail "no cu0/regfile");
  let after = (Timing.analyse tech nl).Timing.fmax_mhz in
  Alcotest.(check bool)
    (Printf.sprintf "fmax improved: %.0f -> %.0f" before after)
    true (after > before +. 20.0)

(* Property: STA delay never decreases when a chain is lengthened. *)
let prop_sta_monotone_in_depth =
  QCheck.Test.make ~name:"sta monotone in chain depth" ~count:30
    QCheck.(int_range 1 20)
    (fun depth ->
      let build levels =
        let nl = Netlist.create ~name:"prop" in
        let d = Netlist.add_net nl ~name:"d" ~width:8 in
        let q = Netlist.add_net nl ~name:"q" ~width:8 in
        let _ =
          Netlist.add_cell nl ~name:"ff" ~region:"top" ~kind:Cell.Dff
            ~inputs:[ d ] ~outputs:[ q ] ()
        in
        let last =
          List.fold_left
            (fun prev i ->
              let out =
                Netlist.add_net nl ~name:(Printf.sprintf "n%d" i) ~width:8
              in
              let _ =
                Netlist.add_cell nl
                  ~name:(Printf.sprintf "g%d" i)
                  ~region:"top" ~kind:(Cell.Comb Op.Not) ~inputs:[ prev ]
                  ~outputs:[ out ] ()
              in
              out)
            q
            (List.init levels (fun i -> i))
        in
        let sink = Netlist.add_net nl ~name:"sink" ~width:8 in
        let _ =
          Netlist.add_cell nl ~name:"cap" ~region:"top" ~kind:Cell.Dff
            ~inputs:[ last ] ~outputs:[ sink ] ()
        in
        (* close ff input so validation passes *)
        let _ =
          Netlist.add_cell nl ~name:"loop" ~region:"top" ~kind:(Cell.Comb Op.Buf)
            ~inputs:[ sink ] ~outputs:[ d ] ()
        in
        (Timing.analyse tech nl).Timing.max_delay_ns
      in
      build (depth + 1) > build depth)

let suite =
  [
    ( "synth",
      [
        Alcotest.test_case "generator macro counts" `Quick
          test_generator_macro_counts;
        Alcotest.test_case "generator published scale" `Quick
          test_generator_published_scale;
        Alcotest.test_case "generator valid netlists" `Quick
          test_generator_valid_for_all_cus;
        Alcotest.test_case "generator rejects bad cus" `Quick
          test_generator_rejects_bad_cus;
        Alcotest.test_case "base fmax near 500" `Quick test_base_fmax_near_500;
        Alcotest.test_case "critical path starts at memory" `Quick
          test_critical_path_starts_at_memory;
        Alcotest.test_case "sta hand computed" `Quick test_sta_hand_computed;
        Alcotest.test_case "sta macro launch" `Quick
          test_sta_macro_launch_dominates;
        Alcotest.test_case "sta endpoint count" `Quick
          test_sta_endpoint_count_excludes_primary_inputs;
        Alcotest.test_case "sta deterministic" `Quick test_sta_deterministic;
        Alcotest.test_case "area scales with cus" `Quick
          test_area_scales_with_cus;
        Alcotest.test_case "power scales with frequency" `Quick
          test_power_scales_with_frequency;
        Alcotest.test_case "splitting regfile improves fmax" `Quick
          test_splitting_regfile_improves_fmax;
        QCheck_alcotest.to_alcotest prop_sta_monotone_in_depth;
      ] );
  ]
