(* Unit and property tests for the hardware IR: netlist construction,
   validation, statistics, topological order, and the planner's three
   rewrites (word split, bit split, pipeline insertion). *)

open Ggpu_hw

let check = Alcotest.(check int)

(* A small netlist: in -> add -> dff -> macro -> out, with a side mux. *)
let build_small () =
  let nl = Netlist.create ~name:"small" in
  let a = Netlist.add_net nl ~name:"a" ~width:32 in
  let b = Netlist.add_net nl ~name:"b" ~width:32 in
  let sum = Netlist.add_net nl ~name:"sum" ~width:32 in
  let q = Netlist.add_net nl ~name:"q" ~width:11 in
  let rdata = Netlist.add_net nl ~name:"rdata" ~width:32 in
  let _add =
    Netlist.add_cell nl ~name:"u_add" ~region:"cu0" ~kind:(Cell.Comb Op.Add)
      ~inputs:[ a; b ] ~outputs:[ sum ] ()
  in
  let _dff =
    Netlist.add_cell nl ~name:"u_reg" ~region:"cu0" ~kind:Cell.Dff
      ~inputs:[ sum ] ~outputs:[ q ] ()
  in
  let spec = Macro_spec.make ~words:2048 ~bits:32 ~ports:Macro_spec.Dual_port in
  let macro =
    Netlist.add_cell nl ~name:"u_mem" ~region:"cu0" ~kind:(Cell.Macro spec)
      ~inputs:[ q ] ~outputs:[ rdata ] ()
  in
  Netlist.set_inputs nl [ a; b ];
  Netlist.set_outputs nl [ rdata ];
  (nl, macro, rdata)

let test_stats () =
  let nl, _, _ = build_small () in
  let s = Netlist.stats nl in
  check "ff bits" 11 s.Netlist.ff_bits;
  check "macros" 1 s.Netlist.macro_count;
  check "macro bits" (2048 * 32) s.Netlist.macro_bits;
  check "gates" (Op.gates Op.Add ~width:32) s.Netlist.comb_gates

let test_validate_ok () =
  let nl, _, _ = build_small () in
  match Netlist.validate nl with
  | Ok () -> ()
  | Error es -> Alcotest.failf "unexpected invalid: %s" (String.concat "; " es)

let test_validate_undriven () =
  let nl = Netlist.create ~name:"bad" in
  let a = Netlist.add_net nl ~name:"a" ~width:8 in
  let b = Netlist.add_net nl ~name:"b" ~width:8 in
  let _c =
    Netlist.add_cell nl ~name:"inv" ~region:"top" ~kind:(Cell.Comb Op.Not)
      ~inputs:[ a ] ~outputs:[ b ] ()
  in
  (* [a] is read but neither driven nor a primary input *)
  match Netlist.validate nl with
  | Ok () -> Alcotest.fail "expected undriven-net error"
  | Error _ -> ()

let test_double_drive_rejected () =
  let nl = Netlist.create ~name:"bad2" in
  let a = Netlist.add_net nl ~name:"a" ~width:8 in
  let b = Netlist.add_net nl ~name:"b" ~width:8 in
  Netlist.set_inputs nl [ a ];
  let _ =
    Netlist.add_cell nl ~name:"n1" ~region:"top" ~kind:(Cell.Comb Op.Not)
      ~inputs:[ a ] ~outputs:[ b ] ()
  in
  Alcotest.check_raises "double drive"
    (Netlist.Invalid "net b already driven (cell n2)") (fun () ->
      ignore
        (Netlist.add_cell nl ~name:"n2" ~region:"top" ~kind:(Cell.Comb Op.Not)
           ~inputs:[ a ] ~outputs:[ b ] ()))

let test_split_words () =
  let nl, macro, rdata = build_small () in
  Netlist.split_macro_words nl macro ~banks:4;
  let s = Netlist.stats nl in
  check "4 banks" 4 s.Netlist.macro_count;
  check "same total bits" (2048 * 32) s.Netlist.macro_bits;
  (* the original output net must now be driven by a mux *)
  (match Netlist.driver_of nl rdata with
  | Some cell -> (
      match Cell.kind cell with
      | Cell.Comb (Op.Mux 4) -> ()
      | k -> Alcotest.failf "expected mux4 driver, got %s" (Cell.kind_to_string k))
  | None -> Alcotest.fail "rdata undriven after split");
  match Netlist.validate nl with
  | Ok () -> ()
  | Error es -> Alcotest.failf "invalid after split: %s" (String.concat "; " es)

let test_split_bits () =
  let nl, macro, rdata = build_small () in
  Netlist.split_macro_bits nl macro ~slices:2;
  let s = Netlist.stats nl in
  check "2 slices" 2 s.Netlist.macro_count;
  check "same total bits" (2048 * 32) s.Netlist.macro_bits;
  (match Netlist.driver_of nl rdata with
  | Some cell -> (
      match Cell.kind cell with
      | Cell.Comb Op.Buf -> ()
      | k -> Alcotest.failf "expected buf driver, got %s" (Cell.kind_to_string k))
  | None -> Alcotest.fail "rdata undriven after split");
  match Netlist.validate nl with
  | Ok () -> ()
  | Error es -> Alcotest.failf "invalid after split: %s" (String.concat "; " es)

let test_insert_pipeline () =
  let nl, _, _ = build_small () in
  let sum =
    List.find (fun n -> Net.name n = "sum") (Netlist.nets nl)
  in
  let before = (Netlist.stats nl).Netlist.ff_bits in
  let staged = Netlist.insert_pipeline nl sum in
  check "width preserved" (Net.width sum) (Net.width staged);
  check "pipeline count" 1 (Netlist.pipeline_regs nl);
  let after = (Netlist.stats nl).Netlist.ff_bits in
  check "ff bits grew" (before + 32) after;
  (* the original reader (the dff) now reads the staged net *)
  (match Netlist.readers_of nl staged with
  | [ cell ] -> Alcotest.(check string) "reader" "u_reg" (Cell.name cell)
  | cells -> Alcotest.failf "expected 1 reader, got %d" (List.length cells));
  match Netlist.validate nl with
  | Ok () -> ()
  | Error es -> Alcotest.failf "invalid after pipeline: %s" (String.concat "; " es)

let test_topo_order () =
  let nl = Netlist.create ~name:"topo" in
  let a = Netlist.add_net nl ~name:"a" ~width:8 in
  let b = Netlist.add_net nl ~name:"b" ~width:8 in
  let c = Netlist.add_net nl ~name:"c" ~width:8 in
  let d = Netlist.add_net nl ~name:"d" ~width:8 in
  Netlist.set_inputs nl [ a ];
  let c1 =
    Netlist.add_cell nl ~name:"c1" ~region:"top" ~kind:(Cell.Comb Op.Not)
      ~inputs:[ a ] ~outputs:[ b ] ()
  in
  let c2 =
    Netlist.add_cell nl ~name:"c2" ~region:"top" ~kind:(Cell.Comb Op.Not)
      ~inputs:[ b ] ~outputs:[ c ] ()
  in
  let c3 =
    Netlist.add_cell nl ~name:"c3" ~region:"top" ~kind:(Cell.Comb Op.Add)
      ~inputs:[ b; c ] ~outputs:[ d ] ()
  in
  let order = Topo.order nl in
  let pos cell =
    let rec go i = function
      | [] -> Alcotest.failf "cell %s missing from order" (Cell.name cell)
      | x :: rest -> if Cell.id x = Cell.id cell then i else go (i + 1) rest
    in
    go 0 order
  in
  Alcotest.(check bool) "c1 before c2" true (pos c1 < pos c2);
  Alcotest.(check bool) "c2 before c3" true (pos c2 < pos c3);
  Alcotest.(check bool) "c1 before c3" true (pos c1 < pos c3)

(* Regression: a cell reading one net on several pins (and transforms
   rewiring such cells) must not skew the (driver, reader) edge counting
   into a spurious Combinational_loop. *)
let test_topo_duplicated_pin () =
  let nl = Netlist.create ~name:"dup" in
  let d = Netlist.add_net nl ~name:"d" ~width:8 in
  let q = Netlist.add_net nl ~name:"q" ~width:8 in
  let mid = Netlist.add_net nl ~name:"mid" ~width:8 in
  let _ff =
    Netlist.add_cell nl ~name:"ff" ~region:"top" ~kind:Cell.Dff ~inputs:[ d ]
      ~outputs:[ q ] ()
  in
  let dbl =
    (* reads q on two pins *)
    Netlist.add_cell nl ~name:"dbl" ~region:"top" ~kind:(Cell.Comb Op.Add)
      ~inputs:[ q; q ] ~outputs:[ mid ] ()
  in
  let back =
    (* reads mid on two pins *)
    Netlist.add_cell nl ~name:"back" ~region:"top" ~kind:(Cell.Comb Op.Add)
      ~inputs:[ mid; mid ] ~outputs:[ d ] ()
  in
  let order = Topo.order nl in
  check "each comb cell exactly once" 2 (List.length order);
  (match order with
  | [ first; second ] ->
      Alcotest.(check string) "driver first" (Cell.name dbl) (Cell.name first);
      Alcotest.(check string) "reader second" (Cell.name back)
        (Cell.name second)
  | _ -> Alcotest.fail "expected two comb cells");
  (* rewiring the duplicated pins through a pipeline stage must keep the
     counting consistent too *)
  let _staged = Netlist.insert_pipeline nl mid in
  check "no spurious loop after pipeline" 2 (List.length (Topo.order nl))

let test_topo_deterministic () =
  (* several cells ready at once: emission must follow cell ids, not
     hash-table iteration order, and repeat identically *)
  let nl = Netlist.create ~name:"det" in
  let a = Netlist.add_net nl ~name:"a" ~width:8 in
  Netlist.set_inputs nl [ a ];
  let cells =
    List.map
      (fun i ->
        let out = Netlist.add_net nl ~name:(Printf.sprintf "o%d" i) ~width:8 in
        Netlist.add_cell nl
          ~name:(Printf.sprintf "g%d" i)
          ~region:"top" ~kind:(Cell.Comb Op.Not) ~inputs:[ a ] ~outputs:[ out ]
          ())
      (List.init 16 (fun i -> i))
  in
  let ids order = List.map Cell.id order in
  let o1 = ids (Topo.order nl) and o2 = ids (Topo.order nl) in
  Alcotest.(check (list int)) "two runs agree" o1 o2;
  Alcotest.(check (list int))
    "independent cells emitted in id order" (List.map Cell.id cells) o1

let test_topo_loop_detected () =
  let nl = Netlist.create ~name:"loop" in
  let a = Netlist.add_net nl ~name:"a" ~width:1 in
  let b = Netlist.add_net nl ~name:"b" ~width:1 in
  let _ =
    Netlist.add_cell nl ~name:"g1" ~region:"top" ~kind:(Cell.Comb Op.Not)
      ~inputs:[ a ] ~outputs:[ b ] ()
  in
  let _ =
    Netlist.add_cell nl ~name:"g2" ~region:"top" ~kind:(Cell.Comb Op.Not)
      ~inputs:[ b ] ~outputs:[ a ] ()
  in
  match Topo.order nl with
  | _ -> Alcotest.fail "expected combinational loop"
  | exception Topo.Combinational_loop _ -> ()

let test_macro_spec_ranges () =
  Alcotest.check_raises "too small"
    (Macro_spec.Out_of_range "macro words 8 outside [16, 65536]") (fun () ->
      ignore (Macro_spec.make ~words:8 ~bits:32 ~ports:Macro_spec.Dual_port));
  let spec = Macro_spec.make ~words:64 ~bits:8 ~ports:Macro_spec.Dual_port in
  (* splitting below the compiler's minimum word count must fail *)
  match Macro_spec.split_words spec ~banks:8 with
  | _ -> Alcotest.fail "expected out-of-range"
  | exception Macro_spec.Out_of_range _ -> ()

(* Property: splitting by any legal bank count preserves total bits and
   multiplies the macro count. *)
let prop_split_preserves_bits =
  QCheck.Test.make ~name:"split preserves macro bits" ~count:100
    QCheck.(
      pair (int_range 0 6) (int_range 1 4) (* words=16<<a, banks=2^b *))
    (fun (wexp, bexp) ->
      let words = 1024 lsl wexp and banks = 1 lsl bexp in
      QCheck.assume (words / banks >= Macro_spec.min_words);
      let nl = Netlist.create ~name:"prop" in
      let addr = Netlist.add_net nl ~name:"addr" ~width:16 in
      let rdata = Netlist.add_net nl ~name:"rdata" ~width:32 in
      Netlist.set_inputs nl [ addr ];
      Netlist.set_outputs nl [ rdata ];
      let spec = Macro_spec.make ~words ~bits:32 ~ports:Macro_spec.Dual_port in
      let macro =
        Netlist.add_cell nl ~name:"m" ~region:"cu0" ~kind:(Cell.Macro spec)
          ~inputs:[ addr ] ~outputs:[ rdata ] ()
      in
      let bits_before = (Netlist.stats nl).Netlist.macro_bits in
      Netlist.split_macro_words nl macro ~banks;
      let s = Netlist.stats nl in
      s.Netlist.macro_bits = bits_before
      && s.Netlist.macro_count = banks
      && Result.is_ok (Netlist.validate nl))

let prop_pipeline_keeps_validity =
  QCheck.Test.make ~name:"pipeline insertion keeps netlist valid" ~count:50
    QCheck.(int_range 1 64)
    (fun width ->
      let nl = Netlist.create ~name:"prop2" in
      let a = Netlist.add_net nl ~name:"a" ~width in
      let b = Netlist.add_net nl ~name:"b" ~width in
      let c = Netlist.add_net nl ~name:"c" ~width in
      Netlist.set_inputs nl [ a ];
      Netlist.set_outputs nl [ c ];
      let _ =
        Netlist.add_cell nl ~name:"g1" ~region:"top" ~kind:(Cell.Comb Op.Not)
          ~inputs:[ a ] ~outputs:[ b ] ()
      in
      let _ =
        Netlist.add_cell nl ~name:"g2" ~region:"top" ~kind:(Cell.Comb Op.Not)
          ~inputs:[ b ] ~outputs:[ c ] ()
      in
      let _ = Netlist.insert_pipeline nl b in
      Result.is_ok (Netlist.validate nl))

let test_op_monotonic () =
  (* levels and gates grow (weakly) with width for the datapath ops *)
  List.iter
    (fun op ->
      List.iter
        (fun (w1, w2) ->
          if Op.levels op ~width:w1 > Op.levels op ~width:w2 then
            Alcotest.failf "levels %s not monotonic (%d vs %d)"
              (Op.to_string op) w1 w2;
          if Op.gates op ~width:w1 > Op.gates op ~width:w2 then
            Alcotest.failf "gates %s not monotonic (%d vs %d)" (Op.to_string op)
              w1 w2)
        [ (1, 2); (2, 8); (8, 16); (16, 32); (32, 64) ])
    [ Op.Add; Op.Sub; Op.Mul; Op.Div; Op.And; Op.Shl; Op.Lt; Op.Eq ]

let test_clog2 () =
  List.iter
    (fun (n, expect) -> check (Printf.sprintf "clog2 %d" n) expect (Op.clog2 n))
    [ (1, 0); (2, 1); (3, 2); (4, 2); (5, 3); (1024, 10); (1025, 11) ]

let suite =
  [
    ( "hw",
      [
        Alcotest.test_case "stats" `Quick test_stats;
        Alcotest.test_case "validate ok" `Quick test_validate_ok;
        Alcotest.test_case "validate undriven" `Quick test_validate_undriven;
        Alcotest.test_case "double drive rejected" `Quick
          test_double_drive_rejected;
        Alcotest.test_case "split words" `Quick test_split_words;
        Alcotest.test_case "split bits" `Quick test_split_bits;
        Alcotest.test_case "insert pipeline" `Quick test_insert_pipeline;
        Alcotest.test_case "topo order" `Quick test_topo_order;
        Alcotest.test_case "topo duplicated pin" `Quick
          test_topo_duplicated_pin;
        Alcotest.test_case "topo deterministic" `Quick test_topo_deterministic;
        Alcotest.test_case "topo loop detected" `Quick test_topo_loop_detected;
        Alcotest.test_case "macro spec ranges" `Quick test_macro_spec_ranges;
        Alcotest.test_case "op monotonicity" `Quick test_op_monotonic;
        Alcotest.test_case "clog2" `Quick test_clog2;
        QCheck_alcotest.to_alcotest prop_split_preserves_bits;
        QCheck_alcotest.to_alcotest prop_pipeline_keeps_validity;
      ] );
  ]
