(* PMU collector: pure-observer property, the buckets-sum-to-cycles
   invariant, the occupancy/span trace stream, and the PERF_REPORT
   validator + regression diff.

   The pure-observer property is the load-bearing one: attaching a
   collector must leave every Stats counter bit-identical, for every
   kernel and CU count, or the PMU is perturbing the timing model it
   claims to observe. *)

open Ggpu_kernels
open Ggpu_fgpu
module Pmu = Ggpu_pmu.Pmu
module Report = Ggpu_pmu.Report

(* reduced sizes: the golden table already pins full-size cycles; here
   we want many (kernel x cus) points cheaply *)
let test_size w = w.Suite.round_size (min 1024 w.Suite.ggpu_size)

let run_one ?pmu w ~cus ~size =
  let compiled = Codegen_fgpu.compile w.Suite.kernel in
  let collector =
    match pmu with
    | Some true ->
        Some
          (Pmu.create ~num_cus:cus
             ~prog_len:(Array.length compiled.Codegen_fgpu.code)
             ())
    | _ -> None
  in
  let config = Config.with_cus Config.default cus in
  let result =
    Run_fgpu.run ~config ?pmu:collector compiled
      ~args:(w.Suite.mk_args ~size)
      ~global_size:(w.Suite.global_size ~size)
      ~local_size:(min w.Suite.local_size size)
      ()
  in
  (result, collector, compiled)

(* --- PMU on/off leaves Stats bit-identical ------------------------------ *)

let prop_pmu_pure_observer =
  QCheck.Test.make ~name:"pmu attach leaves every Stats counter unchanged"
    ~count:28
    QCheck.(
      pair
        (int_range 0 (List.length Suite.all - 1))
        (oneofl [ 1; 4 ]))
    (fun (ki, cus) ->
      let w = List.nth Suite.all ki in
      let size = test_size w in
      let bare, _, _ = run_one w ~cus ~size in
      let inst, _, _ = run_one ~pmu:true w ~cus ~size in
      Stats.to_assoc bare.Run_fgpu.stats = Stats.to_assoc inst.Run_fgpu.stats)

(* --- buckets sum to cycles, per CU and in aggregate --------------------- *)

let test_bucket_sums () =
  List.iter
    (fun w ->
      List.iter
        (fun cus ->
          let size = test_size w in
          let result, collector, compiled = run_one ~pmu:true w ~cus ~size in
          let p = Option.get collector in
          let s = Pmu.summarize p ~program:compiled.Codegen_fgpu.code in
          let cycles = result.Run_fgpu.stats.Stats.cycles in
          Alcotest.(check int)
            (Printf.sprintf "%s/%dcu summary cycles" w.Suite.name cus)
            cycles s.Pmu.s_cycles;
          Array.iteri
            (fun cu row ->
              Alcotest.(check int)
                (Printf.sprintf "%s/%dcu cu%d bucket sum" w.Suite.name cus cu)
                cycles
                (Array.fold_left ( + ) 0 row))
            s.Pmu.s_buckets;
          let grand =
            Array.fold_left
              (fun acc row -> acc + Array.fold_left ( + ) 0 row)
              0 s.Pmu.s_buckets
          in
          Alcotest.(check int)
            (Printf.sprintf "%s/%dcu grand total" w.Suite.name cus)
            (cycles * cus) grand)
        [ 1; 4 ])
    Suite.all

(* --- hot-PC histogram samples real program counters --------------------- *)

let test_hot_pcs () =
  let w = Suite.find "mat_mul" in
  let _, collector, compiled = run_one ~pmu:true w ~cus:4 ~size:(test_size w) in
  let s =
    Pmu.summarize (Option.get collector) ~program:compiled.Codegen_fgpu.code
  in
  Alcotest.(check bool) "took samples" true (s.Pmu.s_samples > 0);
  Alcotest.(check bool) "has hot pcs" true (s.Pmu.s_hot <> []);
  let prog_len = Array.length compiled.Codegen_fgpu.code in
  List.iter
    (fun (pc, insn, n) ->
      Alcotest.(check bool)
        (Printf.sprintf "pc %d in range" pc)
        true
        (pc >= 0 && pc < prog_len);
      Alcotest.(check bool) "symbolized" true (String.length insn > 0);
      Alcotest.(check bool) "positive samples" true (n > 0))
    s.Pmu.s_hot;
  let total = List.fold_left (fun acc (_, _, n) -> acc + n) 0 s.Pmu.s_hot in
  Alcotest.(check int) "histogram sums to sample count" s.Pmu.s_samples total

(* --- occupancy timeline: counter + span events validate ----------------- *)

let test_timeline_events () =
  let module T = Ggpu_obs.Trace in
  T.enable ();
  T.reset ();
  let w = Suite.find "copy" in
  let _ = run_one ~pmu:true w ~cus:2 ~size:(test_size w) in
  let evs = T.events () in
  T.disable ();
  let counters =
    List.filter (fun (e : T.event) -> e.T.ph = T.Counter) evs
  in
  let spans =
    List.filter (fun (e : T.event) -> e.T.ph = T.Complete) evs
  in
  Alcotest.(check bool) "occupancy counters emitted" true (counters <> []);
  Alcotest.(check bool) "wavefront spans emitted" true (spans <> []);
  (* counters carry resident/active on the per-CU track *)
  List.iter
    (fun (e : T.event) ->
      Alcotest.(check bool)
        "counter on a CU track" true
        (e.T.tid >= Pmu.timeline_tid ~cu:0);
      Alcotest.(check bool)
        "counter has resident+active" true
        (List.mem_assoc "resident" e.T.values
        && List.mem_assoc "active" e.T.values))
    counters;
  List.iter
    (fun (e : T.event) ->
      Alcotest.(check bool)
        (Printf.sprintf "span %s has duration" e.T.name)
        true (e.T.dur_ns > 0))
    spans;
  (* the whole stream passes the trace-check validator *)
  match T.validate_json (T.to_json ()) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "timeline stream invalid: %s" msg

(* --- PERF_REPORT: validator accepts real reports, rejects broken ones --- *)

let mk_entries () =
  List.map
    (fun name ->
      let w = Suite.find name in
      let size = test_size w in
      let result, collector, compiled = run_one ~pmu:true w ~cus:2 ~size in
      {
        Report.e_kernel = name;
        e_cus = 2;
        e_size = size;
        e_correct = true;
        e_stats = Stats.to_assoc result.Run_fgpu.stats;
        e_hit_rate = Stats.hit_rate result.Run_fgpu.stats;
        e_summary =
          Pmu.summarize (Option.get collector)
            ~program:compiled.Codegen_fgpu.code;
      })
    [ "copy"; "vec_mul" ]

let test_report_validate () =
  let entries = mk_entries () in
  let doc = Report.to_json entries in
  (match Report.validate_json doc with
  | Ok n -> Alcotest.(check int) "entry count" 2 n
  | Error msg -> Alcotest.failf "real report rejected: %s" msg);
  List.iter
    (fun e ->
      Alcotest.(check bool)
        "known classification" true
        (List.mem (Report.classify e.Report.e_summary) Report.classifications))
    entries;
  (* doctoring any cycle count must break the sum invariant *)
  let module J = Ggpu_obs.Json in
  let doctored =
    match doc with
    | J.Obj fields ->
        J.Obj
          (List.map
             (function
               | "kernels", J.List (J.Obj e0 :: rest) ->
                   ( "kernels",
                     J.List
                       (J.Obj
                          (List.map
                             (function
                               | "cycles", J.Int c -> ("cycles", J.Int (c + 1))
                               | kv -> kv)
                             e0)
                       :: rest) )
               | kv -> kv)
             fields)
    | _ -> assert false
  in
  match Report.validate_json doctored with
  | Ok _ -> Alcotest.fail "validator accepted broken bucket sums"
  | Error _ -> ()

let test_report_diff () =
  let entries = mk_entries () in
  let doc = Report.to_json entries in
  (* identical reports: no regression *)
  (match Report.diff ~baseline:doc ~current:doc ~max_regress_pct:5.0 with
  | Error msg -> Alcotest.failf "self diff failed: %s" msg
  | Ok rows ->
      Alcotest.(check int) "row per config" 2 (List.length rows);
      List.iter
        (fun r ->
          Alcotest.(check bool) "no self regression" false r.Report.d_regressed)
        rows);
  (* halve one baseline cycle count: current is now 100% slower *)
  let module J = Ggpu_obs.Json in
  let doctored =
    match doc with
    | J.Obj fields ->
        J.Obj
          (List.map
             (function
               | "kernels", J.List (J.Obj e0 :: rest) ->
                   ( "kernels",
                     J.List
                       (J.Obj
                          (List.map
                             (function
                               | "cycles", J.Int c -> ("cycles", J.Int (c / 2))
                               | kv -> kv)
                             e0)
                       :: rest) )
               | kv -> kv)
             fields)
    | _ -> assert false
  in
  (match Report.diff ~baseline:doctored ~current:doc ~max_regress_pct:5.0 with
  | Error msg -> Alcotest.failf "doctored diff failed: %s" msg
  | Ok rows ->
      Alcotest.(check int) "one regression flagged" 1
        (List.length (List.filter (fun r -> r.Report.d_regressed) rows)));
  (* a config missing from current regresses by definition *)
  let shrunk =
    match doc with
    | J.Obj fields ->
        J.Obj
          (List.map
             (function
               | "kernels", J.List (_ :: rest) -> ("kernels", J.List rest)
               | kv -> kv)
             fields)
    | _ -> assert false
  in
  match Report.diff ~baseline:doc ~current:shrunk ~max_regress_pct:5.0 with
  | Error msg -> Alcotest.failf "shrunk diff failed: %s" msg
  | Ok rows ->
      let missing = List.filter (fun r -> Float.is_nan r.Report.d_pct) rows in
      Alcotest.(check int) "missing config flagged" 1 (List.length missing);
      List.iter
        (fun r ->
          Alcotest.(check bool) "missing is regressed" true r.Report.d_regressed)
        missing

let suite =
  [
    ( "pmu",
      [
        QCheck_alcotest.to_alcotest ~long:true prop_pmu_pure_observer;
        Alcotest.test_case "per-CU buckets sum to cycles" `Slow test_bucket_sums;
        Alcotest.test_case "hot-PC histogram" `Quick test_hot_pcs;
        Alcotest.test_case "occupancy timeline events" `Quick
          test_timeline_events;
        Alcotest.test_case "perf-report validator" `Quick test_report_validate;
        Alcotest.test_case "perf-report regression diff" `Quick
          test_report_diff;
      ] );
  ]
