let () =
  Alcotest.run "ggpu"
    (Test_hw.suite @ Test_tech.suite @ Test_isa.suite @ Test_riscv.suite
   @ Test_kernels.suite @ Test_fgpu.suite @ Test_synth.suite
   @ Test_planner.suite @ Test_incremental.suite @ Test_compiler.suite
   @ Test_layout.suite @ Test_misc.suite @ Test_event_heap.suite
   @ Test_fi.suite @ Test_obs.suite @ Test_pmu.suite @ Test_backend.suite
   @ Test_golden.suite @ Test_serve.suite @ Test_superopt.suite
   @ Test_csr.suite @ Test_place.suite)
