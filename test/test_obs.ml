(* Observability library: metrics determinism, trace well-formedness,
   JSON round-trips and the self-time profiler.  The merge tests are
   the load-bearing ones - the whole point of integer-valued metrics is
   that per-domain snapshots fold to a bit-identical result no matter
   how the Parallel pool partitioned the work. *)

module M = Ggpu_obs.Metrics
module T = Ggpu_obs.Trace
module J = Ggpu_obs.Json
module P = Ggpu_obs.Profile

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- counters ----------------------------------------------------------- *)

let test_counter_basics () =
  let r = M.create () in
  let c = M.counter r "calls" in
  M.add c 3;
  M.incr c;
  check "accumulates" 4 (M.counter_value c);
  (* find-or-create returns the same counter *)
  M.add (M.counter r "calls") 1;
  check "find-or-create" 5 (M.counter_value c)

let test_counter_monotone () =
  let r = M.create () in
  let c = M.counter r "calls" in
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Metrics.add: negative increment") (fun () ->
      M.add c (-1));
  check "value untouched" 0 (M.counter_value c)

let test_kind_clash () =
  let r = M.create () in
  ignore (M.counter r "x");
  check_bool "kind clash rejected" true
    (match M.gauge r "x" with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- gauges -------------------------------------------------------------- *)

let test_gauge_max () =
  let r = M.create () in
  let g = M.gauge r "depth" in
  Alcotest.(check (option int)) "unset" None (M.gauge_value g);
  M.gauge_max g 3;
  M.gauge_max g 7;
  M.gauge_max g 5;
  Alcotest.(check (option int)) "keeps max" (Some 7) (M.gauge_value g)

(* --- histograms ---------------------------------------------------------- *)

let test_histogram_invariants () =
  let r = M.create () in
  let h = M.histogram ~buckets:[ 1; 4; 16 ] r "sizes" in
  List.iter (M.observe h) [ 0; 1; 2; 5; 100 ];
  let s = M.snapshot r in
  let hs = Option.get (M.find_histogram s "sizes") in
  check "count" 5 (M.hist_total hs);
  check "sum" 108 hs.M.sum;
  check "min" 0 hs.M.min_v;
  check "max" 100 hs.M.max_v;
  Alcotest.(check (list int)) "cells: <=1, <=4, <=16, overflow"
    [ 2; 1; 1; 1 ] hs.M.counts;
  check "one overflow cell beyond bounds" (List.length hs.M.bounds + 1)
    (List.length hs.M.counts)

let test_histogram_bad_buckets () =
  let r = M.create () in
  check_bool "non-ascending rejected" true
    (match M.histogram ~buckets:[ 4; 2 ] r "h" with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- merging ------------------------------------------------------------- *)

(* A snapshot generator: a registry built from small random op lists,
   so qcheck explores merges of genuinely different shapes. *)
let name_of i = [| "a"; "b"; "c" |].(abs i mod 3)

let snapshot_of_ops (counts, gauges, observes) =
  let r = M.create () in
  List.iter (fun (i, v) -> M.add (M.counter r (name_of i)) (abs v mod 1000)) counts;
  List.iter
    (fun (i, v) -> M.gauge_max (M.gauge r ("g" ^ name_of i)) (abs v mod 1000))
    gauges;
  List.iter
    (fun (i, v) -> M.observe (M.histogram r ("h" ^ name_of i)) (abs v mod 1000))
    observes;
  M.snapshot r

let ops_gen =
  QCheck.(
    triple
      (small_list (pair small_int small_int))
      (small_list (pair small_int small_int))
      (small_list (pair small_int small_int)))

let merge_commutative =
  QCheck.Test.make ~count:200 ~name:"merge commutative"
    QCheck.(pair ops_gen ops_gen)
    (fun (a, b) ->
      let sa = snapshot_of_ops a and sb = snapshot_of_ops b in
      M.equal_snapshot (M.merge sa sb) (M.merge sb sa))

let merge_associative =
  QCheck.Test.make ~count:200 ~name:"merge associative"
    QCheck.(triple ops_gen ops_gen ops_gen)
    (fun (a, b, c) ->
      let sa = snapshot_of_ops a
      and sb = snapshot_of_ops b
      and sc = snapshot_of_ops c in
      M.equal_snapshot
        (M.merge sa (M.merge sb sc))
        (M.merge (M.merge sa sb) sc))

let merge_identity =
  QCheck.Test.make ~count:200 ~name:"empty_snapshot is identity" ops_gen
    (fun a ->
      let s = snapshot_of_ops a in
      M.equal_snapshot (M.merge s M.empty_snapshot) s
      && M.equal_snapshot (M.merge M.empty_snapshot s) s)

let test_merge_values () =
  let mk c g =
    let r = M.create () in
    M.add (M.counter r "n") c;
    M.gauge_max (M.gauge r "g") g;
    M.snapshot r
  in
  let m = M.merge (mk 3 10) (mk 4 7) in
  Alcotest.(check (option int)) "counters add" (Some 7) (M.find_counter m "n");
  Alcotest.(check (option int)) "gauges max" (Some 10) (M.find_gauge m "g")

(* --- parallel collection ------------------------------------------------- *)

let work reg i =
  M.add (M.counter reg "items") 1;
  M.add (M.counter reg "total") i;
  M.observe (M.histogram ~buckets:[ 4; 16; 64 ] reg "value") i;
  M.gauge_max (M.gauge reg "max_item") i;
  i * i

let test_map_collect_deterministic () =
  let items = List.init 37 Fun.id in
  let serial_vs, serial_snap =
    Ggpu_core.Parallel.map_collect ~domains:1 work items
  in
  let par_vs, par_snap = Ggpu_core.Parallel.map_collect ~domains:4 work items in
  Alcotest.(check (list int)) "values identical" serial_vs par_vs;
  check_bool "snapshots bit-identical across domain counts" true
    (M.equal_snapshot serial_snap par_snap);
  Alcotest.(check (option int)) "item count" (Some 37)
    (M.find_counter par_snap "items")

let test_ambient_deterministic () =
  let run domains =
    M.set_ambient_enabled true;
    M.ambient_reset ();
    ignore
      (Ggpu_core.Parallel.map ~domains
         (fun i ->
           M.count "x" 1;
           M.observe_named ~buckets:[ 8; 32 ] "v" i;
           i)
         (List.init 16 Fun.id));
    let s = M.ambient_snapshot () in
    M.set_ambient_enabled false;
    M.ambient_reset ();
    s
  in
  let s1 = run 1 and s4 = run 4 in
  Alcotest.(check (option int)) "all recorded" (Some 16)
    (M.find_counter s1 "x");
  check_bool "ambient snapshot independent of domains" true
    (M.equal_snapshot s1 s4)

let test_ambient_disabled_noop () =
  M.set_ambient_enabled false;
  M.ambient_reset ();
  M.count "x" 5;
  Alcotest.(check (option int)) "disabled count is a no-op" None
    (M.find_counter (M.ambient_snapshot ()) "x")

(* --- tracing ------------------------------------------------------------- *)

let with_tracing f =
  T.reset ();
  T.enable ();
  Fun.protect f ~finally:(fun () ->
      T.disable ();
      T.reset ())

let test_span_nesting () =
  with_tracing @@ fun () ->
  T.with_span "outer" (fun () ->
      T.with_span "inner" (fun () -> ());
      T.instant "tick");
  let evs = T.events () in
  Alcotest.(check (list string)) "record order"
    [ "outer:B"; "inner:B"; "inner:E"; "tick:I"; "outer:E" ]
    (List.map
       (fun (e : T.event) ->
         e.T.name ^ ":"
         ^
         match e.T.ph with
         | T.Begin -> "B"
         | T.End -> "E"
         | T.Instant -> "I"
         | T.Counter -> "C"
         | T.Complete -> "X")
       evs);
  match T.validate_json (T.to_json ()) with
  | Error msg -> Alcotest.fail msg
  | Ok s ->
      check "spans" 2 s.T.span_count;
      check "depth" 2 s.T.max_depth;
      check "events" 5 s.T.event_count

let test_span_exception_safe () =
  with_tracing @@ fun () ->
  (try T.with_span "boom" (fun () -> failwith "boom") with Failure _ -> ());
  let evs = T.events () in
  check "begin and end recorded" 2 (List.length evs);
  check_bool "trace still validates" true
    (Result.is_ok (T.validate_json (T.to_json ())))

let test_export_roundtrip () =
  let path = Filename.temp_file "ggpu_trace" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  (with_tracing @@ fun () ->
   T.with_span "a" ~args:[ ("k", "v \"quoted\"") ] (fun () ->
       T.with_span "b" (fun () -> ()));
   T.export ~path);
  match T.validate_file path with
  | Error msg -> Alcotest.fail msg
  | Ok s ->
      check "two spans survive the file round-trip" 2 s.T.span_count;
      check "one thread" 1 s.T.thread_count

let test_disabled_records_nothing () =
  T.reset ();
  T.disable ();
  T.with_span "ghost" (fun () -> ());
  check "no events when disabled" 0 (List.length (T.events ()))

let test_counter_and_complete_events () =
  with_tracing @@ fun () ->
  T.counter ~ts_ns:1000 ~tid:100 "cu0.occupancy"
    [ ("resident", 8); ("active", 3) ];
  T.complete ~ts_ns:2000 ~dur_ns:500 ~tid:100 "wg0.wf1";
  let evs = T.events () in
  check "both recorded" 2 (List.length evs);
  let c = List.find (fun (e : T.event) -> e.T.ph = T.Counter) evs in
  Alcotest.(check (list (pair string int)))
    "counter keeps its series"
    [ ("resident", 8); ("active", 3) ]
    c.T.values;
  check "explicit tid honoured" 100 c.T.tid;
  let x = List.find (fun (e : T.event) -> e.T.ph = T.Complete) evs in
  check "duration kept" 500 x.T.dur_ns;
  match T.validate_json (T.to_json ()) with
  | Error msg -> Alcotest.fail msg
  | Ok s -> check "validator counts both" 2 s.T.event_count

let test_reset_drops_stale_events () =
  T.reset ();
  T.enable ();
  T.with_span "first-run" (fun () -> ());
  check "first run recorded" 2 (List.length (T.events ()));
  T.reset ();
  check "reset empties buffers" 0 (List.length (T.events ()));
  (* the same domain keeps recording after a reset: its buffer must
     re-register, and only the new run's events may appear *)
  T.with_span "second-run" (fun () -> ());
  let names =
    List.sort_uniq String.compare
      (List.map (fun (e : T.event) -> e.T.name) (T.events ()))
  in
  T.disable ();
  T.reset ();
  Alcotest.(check (list string)) "no stale events" [ "second-run" ] names

let event ?(ts = 0) ?(tid = 1) ph name =
  J.Obj
    [
      ("name", J.String name);
      ("ph", J.String ph);
      ("ts", J.Int ts);
      ("pid", J.Int 1);
      ("tid", J.Int tid);
    ]

let test_validator_rejects_unbalanced () =
  let doc events = J.Obj [ ("traceEvents", J.List events) ] in
  check_bool "stray end rejected" true
    (Result.is_error (T.validate_json (doc [ event "E" "a" ])));
  check_bool "unclosed begin rejected" true
    (Result.is_error (T.validate_json (doc [ event "B" "a" ])));
  check_bool "name mismatch rejected" true
    (Result.is_error
       (T.validate_json (doc [ event "B" "a"; event ~ts:1 "E" "b" ])));
  check_bool "balanced accepted" true
    (Result.is_ok
       (T.validate_json (doc [ event "B" "a"; event ~ts:1 "E" "a" ])))

let test_validator_complete_dur () =
  let doc events = J.Obj [ ("traceEvents", J.List events) ] in
  let x dur =
    match event "X" "span" with
    | J.Obj fields -> J.Obj (fields @ [ ("dur", dur) ])
    | _ -> assert false
  in
  check_bool "zero dur accepted" true
    (Result.is_ok (T.validate_json (doc [ x (J.Int 0) ])));
  check_bool "positive dur accepted" true
    (Result.is_ok (T.validate_json (doc [ x (J.Float 1.5) ])));
  check_bool "negative int dur rejected" true
    (Result.is_error (T.validate_json (doc [ x (J.Int (-1)) ])));
  check_bool "negative float dur rejected" true
    (Result.is_error (T.validate_json (doc [ x (J.Float (-0.5)) ])));
  check_bool "missing dur rejected" true
    (Result.is_error (T.validate_json (doc [ event "X" "span" ])));
  (* C and X events never enter the begin/end nesting, so they are
     legal in positions where a stray E would be rejected *)
  check_bool "complete event legal outside nesting" true
    (Result.is_ok
       (T.validate_json
          (doc [ event "B" "a"; x (J.Int 3); event ~ts:9 "E" "a" ])))

(* Two renders of the same explicit event list are byte-identical — the
   dump-determinism contract of the daemon's flight recorder. *)
let test_events_to_json_deterministic () =
  let evs =
    [
      {
        T.ph = T.Complete;
        name = "serve.read";
        ts_ns = 1000;
        dur_ns = 500;
        tid = 3;
        args = [ ("trace_id", "t0001.000001"); ("span_id", "s000001") ];
        values = [];
      };
      {
        T.ph = T.Instant;
        name = "serve.slow";
        ts_ns = 2000;
        dur_ns = 0;
        tid = 3;
        args = [ ("latency_us", "1500") ];
        values = [];
      };
    ]
  in
  let a = J.to_string (T.events_to_json evs) in
  let b = J.to_string (T.events_to_json evs) in
  Alcotest.(check string) "byte-identical renders" a b;
  check_bool "renders validate" true
    (Result.is_ok (T.validate_json (T.events_to_json evs)))

(* --- JSON ---------------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        ("s", J.String "line\nbreak \"and\" \\slash");
        ("n", J.Int (-42));
        ("b", J.Bool true);
        ("z", J.Null);
        ("l", J.List [ J.Int 1; J.String "x"; J.Obj [] ]);
      ]
  in
  (match J.parse (J.to_string v) with
  | Ok parsed -> check_bool "round-trips" true (parsed = v)
  | Error msg -> Alcotest.fail msg);
  check_bool "trailing garbage rejected" true
    (Result.is_error (J.parse "{} x"));
  check_bool "bare value parses" true (J.parse "3.5" = Ok (J.Float 3.5))

(* --- profiler ------------------------------------------------------------ *)

let test_self_times () =
  let ev ph name ts_ns =
    { T.ph; name; ts_ns; dur_ns = 0; tid = 0; args = []; values = [] }
  in
  let rows =
    P.self_times
      [
        ev T.Begin "a" 0;
        ev T.Begin "b" 40;
        ev T.End "b" 80;
        ev T.End "a" 100;
      ]
  in
  let find n = List.find (fun (r : P.row) -> r.P.name = n) rows in
  check "a total" 100 (find "a").P.total_ns;
  check "a self excludes b" 60 (find "a").P.self_ns;
  check "b total" 40 (find "b").P.total_ns;
  check "b self" 40 (find "b").P.self_ns;
  check_bool "sorted by self time" true
    (List.map (fun (r : P.row) -> r.P.name) rows = [ "a"; "b" ])

let test_self_times_tie_break () =
  let ev ph name ts_ns =
    { T.ph; name; ts_ns; dur_ns = 0; tid = 0; args = []; values = [] }
  in
  (* three spans with identical self time: ordering must fall back to
     the name, independent of hash-table iteration order *)
  let rows =
    P.self_times
      [
        ev T.Begin "zeta" 0;
        ev T.End "zeta" 10;
        ev T.Begin "alpha" 10;
        ev T.End "alpha" 20;
        ev T.Begin "mid" 20;
        ev T.End "mid" 30;
      ]
  in
  Alcotest.(check (list string))
    "equal self times ordered by name"
    [ "alpha"; "mid"; "zeta" ]
    (List.map (fun (r : P.row) -> r.P.name) rows)

(* --- ring / exposition / percentiles ------------------------------------- *)

module R = Ggpu_obs.Ring

let test_ring_wraparound () =
  Alcotest.check_raises "zero capacity rejected"
    (Invalid_argument "Ring.create: capacity < 1") (fun () ->
      ignore (R.create ~capacity:0));
  let r = R.create ~capacity:3 in
  check "empty length" 0 (R.length r);
  Alcotest.(check (list int)) "empty list" [] (R.to_list r);
  R.push r 1;
  R.push r 2;
  Alcotest.(check (list int)) "partial fill, oldest first" [ 1; 2 ]
    (R.to_list r);
  List.iter (R.push r) [ 3; 4; 5 ];
  check "total counts every push" 5 (R.total r);
  check "length capped at capacity" 3 (R.length r);
  Alcotest.(check (list int)) "oldest overwritten first" [ 3; 4; 5 ]
    (R.to_list r);
  R.push r 6;
  Alcotest.(check (list int)) "keeps sliding" [ 4; 5; 6 ] (R.to_list r);
  R.clear r;
  check "clear empties" 0 (R.length r);
  Alcotest.(check (list int)) "cleared list" [] (R.to_list r)

let test_hist_percentile () =
  let r = M.create () in
  let h = M.histogram ~buckets:[ 1; 2; 4; 8; 16 ] r "lat" in
  let snap () = Option.get (M.find_histogram (M.snapshot r) "lat") in
  check "empty percentile" 0 (M.hist_percentile (snap ()) 0.99);
  List.iter (M.observe h) [ 1; 2; 3; 4; 100 ];
  let s = snap () in
  (* ranks: q0.2 -> first obs (bucket 1), q0.5 -> rank 3 in bucket 4,
     overflow reports the observed max *)
  check "p20 is the first bucket" 1 (M.hist_percentile s 0.20);
  check "p50 covers rank 3" 4 (M.hist_percentile s 0.50);
  check "p99 lands in overflow: observed max" 100 (M.hist_percentile s 0.99);
  check "q=0 clamps to rank 1" 1 (M.hist_percentile s 0.0);
  (* a bucket bound past the observed max is capped at the max *)
  let r2 = M.create () in
  let h2 = M.histogram ~buckets:[ 1000 ] r2 "lat" in
  M.observe h2 7;
  check "bound capped at observed max" 7
    (M.hist_percentile (Option.get (M.find_histogram (M.snapshot r2) "lat")) 0.5)

let test_expose_stable () =
  let mk () =
    let r = M.create () in
    M.add (M.counter r "serve.requests") 40;
    M.gauge_max (M.gauge r "serve.pool.domains") 4;
    let h = M.histogram ~buckets:[ 1; 2; 4 ] r "serve.latency.sim" in
    List.iter (M.observe h) [ 1; 3; 9 ];
    M.snapshot r
  in
  let a = M.expose (mk ()) and b = M.expose (mk ()) in
  Alcotest.(check string) "equal snapshots expose byte-identically" a b;
  let expected =
    "counter serve.requests 40\n" ^ "gauge serve.pool.domains 4\n"
    ^ "histogram serve.latency.sim count 3 sum 13 min 1 max 9\n"
    ^ "bucket serve.latency.sim le 1 1\n" ^ "bucket serve.latency.sim le 2 1\n"
    ^ "bucket serve.latency.sim le 4 2\n"
    ^ "bucket serve.latency.sim le inf 3\n"
  in
  Alcotest.(check string) "exposition layout is pinned" expected a

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "counter basics" `Quick test_counter_basics;
        Alcotest.test_case "counter monotone" `Quick test_counter_monotone;
        Alcotest.test_case "kind clash" `Quick test_kind_clash;
        Alcotest.test_case "gauge max" `Quick test_gauge_max;
        Alcotest.test_case "histogram invariants" `Quick
          test_histogram_invariants;
        Alcotest.test_case "histogram bad buckets" `Quick
          test_histogram_bad_buckets;
        Alcotest.test_case "merge values" `Quick test_merge_values;
        qcheck merge_commutative;
        qcheck merge_associative;
        qcheck merge_identity;
        Alcotest.test_case "map_collect deterministic" `Quick
          test_map_collect_deterministic;
        Alcotest.test_case "ambient deterministic" `Quick
          test_ambient_deterministic;
        Alcotest.test_case "ambient disabled no-op" `Quick
          test_ambient_disabled_noop;
        Alcotest.test_case "span nesting" `Quick test_span_nesting;
        Alcotest.test_case "span exception safety" `Quick
          test_span_exception_safe;
        Alcotest.test_case "export round-trip" `Quick test_export_roundtrip;
        Alcotest.test_case "disabled tracer records nothing" `Quick
          test_disabled_records_nothing;
        Alcotest.test_case "counter and complete events" `Quick
          test_counter_and_complete_events;
        Alcotest.test_case "reset drops stale events" `Quick
          test_reset_drops_stale_events;
        Alcotest.test_case "validator rejects unbalanced" `Quick
          test_validator_rejects_unbalanced;
        Alcotest.test_case "validator complete dur" `Quick
          test_validator_complete_dur;
        Alcotest.test_case "events_to_json deterministic" `Quick
          test_events_to_json_deterministic;
        Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
        Alcotest.test_case "hist percentile" `Quick test_hist_percentile;
        Alcotest.test_case "expose stable" `Quick test_expose_stable;
        Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "profiler self times" `Quick test_self_times;
        Alcotest.test_case "profiler self-time tie-break" `Quick
          test_self_times_tie_break;
      ] );
  ]
