(* Unit tests for the ggpu_superopt library: the straight-line
   executor must agree bit-for-bit with the full Gpu.run pipeline, the
   rule table must survive serialisation, the peephole's liveness
   guard must block unsound rewrites, and a tiny mining run must
   produce only verified, strictly-cheaper rules. *)

open Ggpu_isa
open Ggpu_superopt

(* --- straight-line executor vs Gpu.run --------------------------------- *)

(* One wavefront, one workgroup: every lane loads its own word, mangles
   it through the ALU (including both shift flavours and a Mul), and
   stores it back.  The memory image after Gpu.run and after
   Exec.run_wavefront must be bit-identical. *)
let straightline_program =
  [|
    (* r1 = params.(0) = buffer base (words are byte-addressed) *)
    Fgpu_isa.Special (Fgpu_isa.Lid, 2);
    Fgpu_isa.Special (Fgpu_isa.Wgoff, 3);
    Fgpu_isa.Alu (Fgpu_isa.Add, 4, 3, 2) (* gid *);
    Fgpu_isa.Alui (Fgpu_isa.Sll, 5, 4, 2l);
    Fgpu_isa.Alu (Fgpu_isa.Add, 5, 5, 1) (* addr *);
    Fgpu_isa.Lw (6, 5, 0);
    Fgpu_isa.Alui (Fgpu_isa.Mul, 7, 6, 3l);
    Fgpu_isa.Alu (Fgpu_isa.Add, 7, 7, 4);
    Fgpu_isa.Li (8, 0x1234l);
    Fgpu_isa.Alu (Fgpu_isa.Xor, 7, 7, 8);
    Fgpu_isa.Alui (Fgpu_isa.Sra, 9, 7, 1l);
    Fgpu_isa.Alu (Fgpu_isa.Sub, 7, 7, 9);
    Fgpu_isa.Sw (7, 5, 0);
    Fgpu_isa.Ret;
  |]

(* Division corner cases straight from the RISC-V M spec: x/0, x rem 0,
   min_int / -1 and min_int rem -1, driven per-lane from memory. *)
let division_program =
  [|
    Fgpu_isa.Special (Fgpu_isa.Lid, 2);
    Fgpu_isa.Alui (Fgpu_isa.Sll, 3, 2, 3l) (* 2 word pairs per lane *);
    Fgpu_isa.Alu (Fgpu_isa.Add, 3, 3, 1);
    Fgpu_isa.Lw (4, 3, 0) (* dividend *);
    Fgpu_isa.Lw (5, 3, 4) (* divisor *);
    Fgpu_isa.Alu (Fgpu_isa.Div, 6, 4, 5);
    Fgpu_isa.Alu (Fgpu_isa.Rem, 7, 4, 5);
    Fgpu_isa.Sw (6, 3, 0);
    Fgpu_isa.Sw (7, 3, 4);
    Fgpu_isa.Ret;
  |]

let run_both ~program ~lanes ~words init =
  let mem32 = Array.init words (fun i -> init i) in
  let mem_exec = Array.map I32.of_int32 mem32 in
  let config = Ggpu_fgpu.Config.default in
  let stats =
    Ggpu_fgpu.Gpu.run config ~program ~params:[ 0l ] ~global_size:lanes
      ~local_size:lanes ~mem:mem32
  in
  ignore stats;
  let lanes_state =
    Exec.run_wavefront ~mem:mem_exec ~size:lanes ~wg_id:0 ~wg_offset:0
      ~wg_size:lanes ~global_size:lanes ~params:[ 0l ]
      (Fgpu_predecode.of_program program)
  in
  (mem32, Array.map I32.to_int32 mem_exec, lanes_state)

let test_exec_matches_gpu () =
  let lanes = 64 in
  let gpu_mem, exec_mem, lanes_state =
    run_both ~program:straightline_program ~lanes ~words:lanes (fun i ->
        Int32.of_int ((i * 2654435761) lxor (i lsl 7)))
  in
  Alcotest.(check (array int32)) "alu/load/store memory image" gpu_mem exec_mem;
  (* and the executor's SIMT specials saw the right geometry *)
  Array.iteri
    (fun lid st ->
      Alcotest.(check int) "lane gid" lid (Exec.reg st 4))
    lanes_state

let test_exec_division_corners () =
  let lanes = 4 in
  let pairs =
    [| (7l, 3l); (5l, 0l); (Int32.min_int, -1l); (Int32.min_int, 0l) |]
  in
  let gpu_mem, exec_mem, _ =
    run_both ~program:division_program ~lanes ~words:(2 * lanes) (fun i ->
        let q, d = pairs.(i / 2) in
        if i mod 2 = 0 then q else d)
  in
  Alcotest.(check (array int32)) "division corner memory image" gpu_mem exec_mem;
  (* spot-check the spec values the hard way *)
  Alcotest.(check int32) "5/0 = -1" (-1l) exec_mem.(2);
  Alcotest.(check int32) "5 rem 0 = 5" 5l exec_mem.(3);
  Alcotest.(check int32) "min/-1 = min" Int32.min_int exec_mem.(4);
  Alcotest.(check int32) "min rem -1 = 0" 0l exec_mem.(5)

let test_exec_faults_on_control_flow () =
  let st = Exec.create () in
  let jump = Fgpu_predecode.of_insn (Fgpu_isa.Jump 0) in
  Alcotest.check_raises "jump faults" (Exec.Fault "control flow in straight-line executor")
    (fun () -> ignore (Exec.step st jump))

(* --- rule-table serialisation ------------------------------------------ *)

let test_rule_roundtrip_builtin () =
  let rules = Rules.default () in
  Alcotest.(check bool) "builtin table non-empty" true (rules <> []);
  List.iter
    (fun r ->
      let r' = Rule.of_line (Rule.to_line r) in
      Alcotest.(check bool)
        (Printf.sprintf "round-trip %s" (Rule.to_string r))
        true (r = r'))
    rules

let test_rule_file_roundtrip () =
  let rules = Rules.default () in
  let path = Filename.temp_file "ggpu_rules" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Rules.save_file path rules;
      let back = Rules.load_file path in
      Alcotest.(check bool) "save/load identity" true (back = rules))

let test_rule_parse_errors () =
  List.iter
    (fun line ->
      match Rule.of_line line with
      | _ -> Alcotest.failf "parse accepted %S" line
      | exception Rule.Parse_error _ -> ())
    [ "nonsense"; "00000000"; "zz => 00000000 ; clobbers= ; saves=1" ]

(* --- peephole liveness guard ------------------------------------------- *)

(* mov-coalescing: add r3,r1,r2; mov r2,r3  =>  add r2,r1,r2,
   clobbering r3.  Legal only where r3 is dead afterwards. *)
let mov_rule =
  {
    Rule.lhs =
      [ Fgpu_isa.Alu (Fgpu_isa.Add, 3, 1, 2); Fgpu_isa.Alui (Fgpu_isa.Add, 2, 3, 0l) ];
    rhs = [ Fgpu_isa.Alu (Fgpu_isa.Add, 2, 1, 2) ];
    clobbers = [ 3 ];
    saved = 8;
  }

let peephole_case program =
  Peephole.optimise_program ~rules:[ mov_rule ] program

let test_peephole_fires_when_clobber_dead () =
  let program =
    [|
      Fgpu_isa.Alu (Fgpu_isa.Add, 3, 1, 2);
      Fgpu_isa.Alui (Fgpu_isa.Add, 2, 3, 0l);
      Fgpu_isa.Sw (2, 1, 0) (* r3 dead here *);
      Fgpu_isa.Ret;
    |]
  in
  let code, report = peephole_case program in
  Alcotest.(check int) "one instruction deleted" 3 (Array.length code);
  Alcotest.(check int) "rule fired once" 1
    (List.fold_left (fun acc (_, n) -> acc + n) 0 report.Peephole.applied);
  Alcotest.(check int) "saved cycles" 8 report.Peephole.saved_cycles

let test_peephole_blocked_when_clobber_live () =
  let program =
    [|
      Fgpu_isa.Alu (Fgpu_isa.Add, 3, 1, 2);
      Fgpu_isa.Alui (Fgpu_isa.Add, 2, 3, 0l);
      Fgpu_isa.Sw (3, 1, 0) (* r3 still read: rewrite is unsound *);
      Fgpu_isa.Ret;
    |]
  in
  let code, report = peephole_case program in
  Alcotest.(check bool) "program unchanged" true (code = program);
  Alcotest.(check bool) "no rule fired" true (report.Peephole.applied = [])

let test_peephole_blocked_across_branch () =
  (* the window ends at the branch, and the branch target may read r3:
     liveness over the item CFG must keep the clobber alive *)
  let program =
    [|
      Fgpu_isa.Alu (Fgpu_isa.Add, 3, 1, 2);
      Fgpu_isa.Alui (Fgpu_isa.Add, 2, 3, 0l);
      Fgpu_isa.Branch (Fgpu_isa.Eq, 2, 0, 1) (* pc+1+1: the Sw below *);
      Fgpu_isa.Ret;
      Fgpu_isa.Sw (3, 1, 0);
      Fgpu_isa.Ret;
    |]
  in
  let code, report = peephole_case program in
  Alcotest.(check bool) "program unchanged" true (code = program);
  Alcotest.(check bool) "no rule fired" true (report.Peephole.applied = [])

(* --- tiny mining smoke -------------------------------------------------- *)

let test_mine_tiny_space () =
  let space =
    {
      Search.ops = [ Fgpu_isa.Add ];
      imms = [ 0l; 1l ];
      regs = [ 1; 2 ];
      max_len = 2;
    }
  in
  let { Search.rules; stats } =
    Search.mine ~space ~budget:20_000 ~domains:1
      ~lhs_filter:(fun _ -> true) ()
  in
  Alcotest.(check bool) "enumeration not truncated" false stats.Search.truncated;
  Alcotest.(check bool) "found rules" true (rules <> []);
  let cfg = Ggpu_fgpu.Config.default in
  List.iter
    (fun (r : Rule.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s strictly cheaper" (Rule.to_string r))
        true
        (Cost.seq_cost cfg r.Rule.rhs < Cost.seq_cost cfg r.Rule.lhs);
      Alcotest.(check int)
        "saved matches cost model"
        (Cost.seq_cost cfg r.Rule.lhs - Cost.seq_cost cfg r.Rule.rhs)
        r.Rule.saved;
      Alcotest.(check bool) "serialises" true (Rule.of_line (Rule.to_line r) = r))
    rules

let suite =
  [
    ( "superopt",
      [
        Alcotest.test_case "exec matches Gpu.run (alu/mem)" `Quick
          test_exec_matches_gpu;
        Alcotest.test_case "exec division corner cases" `Quick
          test_exec_division_corners;
        Alcotest.test_case "exec faults on control flow" `Quick
          test_exec_faults_on_control_flow;
        Alcotest.test_case "builtin rule round-trip" `Quick
          test_rule_roundtrip_builtin;
        Alcotest.test_case "rule file save/load" `Quick test_rule_file_roundtrip;
        Alcotest.test_case "rule parse errors" `Quick test_rule_parse_errors;
        Alcotest.test_case "peephole fires when clobber dead" `Quick
          test_peephole_fires_when_clobber_dead;
        Alcotest.test_case "peephole blocked when clobber live" `Quick
          test_peephole_blocked_when_clobber_live;
        Alcotest.test_case "peephole blocked across branch" `Quick
          test_peephole_blocked_across_branch;
        Alcotest.test_case "tiny mining smoke" `Slow test_mine_tiny_space;
      ] );
  ]
