(* Quickstart: generate a G-GPU, implement it, and run a kernel on it.

     dune exec examples/quickstart.exe

   Walks the whole stack in one page: specify a 1-CU G-GPU at 667 MHz,
   let GPUPlanner explore the design space (memory division + on-demand
   pipelines), inspect the resulting map and layout, then compile an
   OpenCL-style kernel and execute it on the cycle-level simulator. *)

open Ggpu_core
open Ggpu_kernels

let () =
  (* 1. specify and implement the accelerator *)
  let spec = Spec.make ~num_cus:1 ~freq_mhz:667 () in
  Printf.printf "Implementing %s...\n%!" (Spec.to_string spec);
  let impl = Flow.implement spec in
  Printf.printf "\nLogic synthesis (a Table I row):\n%s\n%s\n"
    Ggpu_synth.Report.header
    (Ggpu_synth.Report.row_to_string impl.Flow.logic_report);
  Printf.printf "\nThe optimisation map GPUPlanner derived:\n";
  Format.printf "%a" Map.pp impl.Flow.map;
  Printf.printf "\nLayout:\n%s" (Ggpu_layout.Render.render impl.Flow.floorplan);
  Printf.printf "Achieved frequency: %.0f MHz\n" impl.Flow.achieved_mhz;

  (* 2. compile a kernel for it and run it *)
  let workload = Suite.vec_mul in
  let size = 4096 in
  let args = workload.Suite.mk_args ~size in
  let compiled = Codegen_fgpu.compile workload.Suite.kernel in
  Printf.printf "\nRunning %s on %d work-items...\n" workload.Suite.name size;
  let result =
    Run_fgpu.run compiled ~args ~global_size:size
      ~local_size:workload.Suite.local_size ()
  in
  let stats = result.Run_fgpu.stats in
  Printf.printf "  %d cycles (%d wavefront instructions, %s)\n"
    stats.Ggpu_fgpu.Stats.cycles stats.Ggpu_fgpu.Stats.wf_instructions
    (match Ggpu_fgpu.Stats.hit_rate stats with
    | Some r -> Printf.sprintf "%.1f%% cache hits" (100.0 *. r)
    | None -> "no memory accesses");
  Printf.printf "  at %.0f MHz that is %.1f us\n" impl.Flow.achieved_mhz
    (float_of_int stats.Ggpu_fgpu.Stats.cycles /. impl.Flow.achieved_mhz);

  (* 3. check the result against the reference semantics *)
  let expected = workload.Suite.expected ~size args in
  let actual = Run_fgpu.output result workload.Suite.output_buffer in
  assert (expected = actual);
  Printf.printf "  output verified against the reference interpreter\n"
