(** The paper's version grid: the 12 logic-synthesis versions of
    Table I and the four physically implemented extremes of Table II /
    Figs. 3-4. *)

val cu_counts : int list
(** [1; 2; 4; 8] *)

val frequencies_mhz : int list
(** [500; 590; 667] *)

val table1_specs : unit -> Spec.t list
val physical_specs : unit -> Spec.t list

val table1_syntheses :
  ?tech:Ggpu_tech.Tech.t ->
  ?parallel:bool ->
  ?incremental:bool ->
  unit ->
  Flow.synthesis list
(** The 12 Table-I syntheses with their performance counters.
    [parallel] (default [true]) spreads versions across a {!Parallel}
    domain pool; [incremental] is forwarded to {!Dse.explore}. *)

val table1 :
  ?tech:Ggpu_tech.Tech.t ->
  ?parallel:bool ->
  ?incremental:bool ->
  unit ->
  Ggpu_synth.Report.row list
(** Regenerate Table I (frequency-major order, as published). *)

val physical :
  ?tech:Ggpu_tech.Tech.t ->
  ?parallel:bool ->
  ?incremental:bool ->
  unit ->
  Flow.implementation list
(** Implement 1CU@500, 1CU@667, 8CU@500 and 8CU@667; the last derates
    after routing, as in the paper. *)
