(** The paper's version grid: the 12 logic-synthesis versions of
    Table I and the four physically implemented extremes of Table II /
    Figs. 3-4. *)

val cu_counts : int list
(** [1; 2; 4; 8] *)

val frequencies_mhz : int list
(** [500; 590; 667] *)

val scaling_cu_counts : int list
(** [8; 16; 32; 64] — the beyond-paper grid behind the scaling study. *)

val table1_specs : unit -> Spec.t list
val physical_specs : unit -> Spec.t list

val scaling_specs : ?freq_mhz:int -> ?cu_counts:int list -> unit -> Spec.t list
(** One spec per [cu_counts] entry (default {!scaling_cu_counts}) at
    [freq_mhz] (default 667).  The list is validated up front via
    {!Compare.check_cu_counts} — unsupported counts raise instead of
    being clamped. *)

val table1_syntheses :
  ?tech:Ggpu_tech.Tech.t ->
  ?parallel:bool ->
  ?incremental:bool ->
  ?sta:Ggpu_synth.Timing.impl ->
  unit ->
  Flow.synthesis list
(** The 12 Table-I syntheses with their performance counters.
    [parallel] (default [true]) spreads versions across a {!Parallel}
    domain pool; [incremental] and [sta] are forwarded to
    {!Dse.explore}. *)

val table1 :
  ?tech:Ggpu_tech.Tech.t ->
  ?parallel:bool ->
  ?incremental:bool ->
  ?sta:Ggpu_synth.Timing.impl ->
  unit ->
  Ggpu_synth.Report.row list
(** Regenerate Table I (frequency-major order, as published). *)

val physical :
  ?tech:Ggpu_tech.Tech.t ->
  ?parallel:bool ->
  ?incremental:bool ->
  ?sta:Ggpu_synth.Timing.impl ->
  unit ->
  Flow.implementation list
(** Implement 1CU@500, 1CU@667, 8CU@500 and 8CU@667; the last derates
    after routing, as in the paper. *)

val scaling :
  ?tech:Ggpu_tech.Tech.t ->
  ?parallel:bool ->
  ?incremental:bool ->
  ?sta:Ggpu_synth.Timing.impl ->
  ?place:Flow.placer ->
  ?place_domains:int ->
  ?freq_mhz:int ->
  ?cu_counts:int list ->
  unit ->
  Flow.implementation list
(** Implement the {!scaling_specs} grid (default 667 MHz at 8/16/32/64
    CUs) with the selected floorplan engine.  Beyond 8 CUs each
    implementation's [achieved_mhz] carries the
    {!Spec.contention_derate}. *)
