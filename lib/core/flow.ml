(* The GPUPlanner push-button flow (the paper's Fig. 2): generate the
   RTL-level netlist, run the design-space exploration against the
   target period, perform logic synthesis reporting, then physical
   synthesis (floorplan, routing estimate, post-route timing) and the
   final specification check.  The result carries everything the
   benches need to regenerate Tables I and II and Figs. 3 and 4. *)

open Ggpu_tech
open Ggpu_synth
open Ggpu_layout

let log_src = Logs.Src.create "ggpu.flow" ~doc:"GPUPlanner flow"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Time one flow phase: a span for the trace, integer nanoseconds for
   the metrics, and the float seconds the [phases] lists always carried. *)
let obs_phase name f =
  Ggpu_obs.Trace.with_span ("flow." ^ name) @@ fun () ->
  let t0 = Ggpu_obs.Metrics.now_ns () in
  let v = f () in
  let elapsed_ns = max 0 (Ggpu_obs.Metrics.now_ns () - t0) in
  Ggpu_obs.Metrics.count ("flow." ^ name ^ "_ns") elapsed_ns;
  (v, float_of_int elapsed_ns /. 1e9)

type implementation = {
  spec : Spec.t;
  netlist : Ggpu_hw.Netlist.t;
  map : Map.t;
  logic_report : Report.row;
  floorplan : Floorplan.t;
  route : Route.t;
  post_timing : Timing_post.t;
  contention_derate : float; (* L2/AXI factor already in achieved_mhz *)
  achieved_mhz : float;
  spec_check : (unit, Spec.violation list) result;
  dse_perf : Dse.perf;
  phases : (string * float) list; (* per-phase wall-clock, flow order *)
}

type synthesis = {
  syn_netlist : Ggpu_hw.Netlist.t;
  syn_map : Map.t;
  syn_report : Report.row;
  syn_perf : Dse.perf;
  syn_phases : (string * float) list;
}

(* Logic synthesis only - enough for a Table I row.  [base] supplies a
   pre-elaborated netlist for the spec's CU count; it is copied, not
   mutated, so one base can serve several frequency targets. *)
let synthesise_timed ?(tech = Tech.default_65nm) ?(incremental = true) ?sta
    ?base (spec : Spec.t) =
  Ggpu_obs.Trace.with_span "flow.synthesise"
    ~args:
      [
        ("cus", string_of_int spec.Spec.num_cus);
        ("freq_mhz", string_of_int spec.Spec.freq_mhz);
      ]
  @@ fun () ->
  let netlist, t_generate =
    obs_phase "generate" @@ fun () ->
    match base with
    | Some base -> Ggpu_hw.Netlist.copy base
    | None -> Ggpu_rtlgen.Generate.generate_cus ~num_cus:spec.Spec.num_cus
  in
  let dse, t_dse =
    obs_phase "dse" @@ fun () ->
    Dse.explore ~incremental ?sta tech netlist ~num_cus:spec.Spec.num_cus
      ~period_ns:(Spec.period_ns spec)
  in
  let report, t_report =
    obs_phase "report" @@ fun () ->
    Report.of_netlist tech ~timing:dse.Dse.final netlist
      ~num_cus:spec.Spec.num_cus ~freq_mhz:spec.Spec.freq_mhz
  in
  {
    syn_netlist = netlist;
    syn_map = dse.Dse.map;
    syn_report = report;
    syn_perf = dse.Dse.perf;
    syn_phases =
      [ ("generate", t_generate); ("dse", t_dse); ("report", t_report) ];
  }

let synthesise ?tech spec =
  let s = synthesise_timed ?tech spec in
  (s.syn_netlist, s.syn_map, s.syn_report)

let base_macro_count ~num_cus =
  Ggpu_rtlgen.Arch_params.macro_count
    (Ggpu_rtlgen.Arch_params.default ~num_cus)

type placer = Columns | Analytic

(* Full RTL-to-layout implementation. *)
let implement ?(tech = Tech.default_65nm) ?incremental ?sta ?base
    ?(place = Columns) ?(place_domains = 1) (spec : Spec.t) =
  Ggpu_obs.Trace.with_span "flow.implement"
    ~args:
      [
        ("cus", string_of_int spec.Spec.num_cus);
        ("freq_mhz", string_of_int spec.Spec.freq_mhz);
      ]
  @@ fun () ->
  let syn = synthesise_timed ~tech ?incremental ?sta ?base spec in
  let netlist = syn.syn_netlist in
  let floorplan, t_floorplan =
    obs_phase "floorplan" @@ fun () ->
    match place with
    | Columns -> Floorplan.build tech netlist ~num_cus:spec.Spec.num_cus
    | Analytic ->
        (Place.place ~domains:place_domains tech netlist
           ~num_cus:spec.Spec.num_cus)
          .Place.floorplan
  in
  let post_timing, t_post =
    obs_phase "post_timing" @@ fun () ->
    Timing_post.analyse tech netlist floorplan
  in
  (* beyond the paper's 8-CU grid the shared L2/AXI interconnect
     saturates; the derate lands before quantisation so 1..8-CU results
     are bit-identical to the underated flow *)
  let contention_derate = Spec.contention_derate spec in
  let achieved_mhz =
    Float.min (float_of_int spec.Spec.freq_mhz)
      (Timing_post.quantise
         (post_timing.Timing_post.achieved_mhz *. contention_derate))
  in
  if achieved_mhz +. 0.5 < float_of_int spec.Spec.freq_mhz then
    Log.warn (fun m ->
        m "%d-CU design derated post-route: %d MHz target, %.0f MHz achieved"
          spec.Spec.num_cus spec.Spec.freq_mhz achieved_mhz);
  (* the router works at the frequency the layout actually achieves *)
  let route, t_route =
    obs_phase "route" @@ fun () ->
    Route.estimate tech netlist floorplan ~period_ns:(1000.0 /. achieved_mhz)
      ~base_macros:(base_macro_count ~num_cus:spec.Spec.num_cus)
  in
  let spec_check =
    Spec.check spec ~area_mm2:syn.syn_report.Report.total_area_mm2
      ~power_w:syn.syn_report.Report.total_w ~achieved_mhz
  in
  (match spec_check with
  | Ok () -> ()
  | Error violations ->
      Log.warn (fun m ->
          m "%s misses spec: %s" (Spec.to_string spec)
            (String.concat "; "
               (List.map Spec.violation_to_string violations))));
  {
    spec;
    netlist;
    map = syn.syn_map;
    logic_report = syn.syn_report;
    floorplan;
    route;
    post_timing;
    contention_derate;
    achieved_mhz;
    spec_check;
    dse_perf = syn.syn_perf;
    phases =
      syn.syn_phases
      @ [
          ("floorplan", t_floorplan);
          ("post_timing", t_post);
          ("route", t_route);
        ];
  }

let pp_implementation fmt impl =
  Format.fprintf fmt "%s: %s | achieved %.0f MHz | %s@."
    (Spec.to_string impl.spec)
    (Report.row_to_string impl.logic_report)
    impl.achieved_mhz
    (match impl.spec_check with
    | Ok () -> "meets spec"
    | Error vs ->
        String.concat "; " (List.map Spec.violation_to_string vs))
