(** The GPUPlanner push-button flow (the paper's Fig. 2): RTL generation
    → design-space exploration → logic synthesis reporting → partitioned
    floorplan → routing estimate → post-route timing → spec check. *)

type implementation = {
  spec : Spec.t;
  netlist : Ggpu_hw.Netlist.t;  (** after the DSE's edits *)
  map : Map.t;
  logic_report : Ggpu_synth.Report.row;  (** a Table I row *)
  floorplan : Ggpu_layout.Floorplan.t;
  route : Ggpu_layout.Route.t;  (** Table II data *)
  post_timing : Ggpu_layout.Timing_post.t;
  contention_derate : float;
      (** {!Spec.contention_derate}: 1.0 through 8 CUs, < 1 beyond —
          already folded into [achieved_mhz] *)
  achieved_mhz : float;  (** min of target and post-route achievable *)
  spec_check : (unit, Spec.violation list) result;
  dse_perf : Dse.perf;  (** STA-call counters of the exploration *)
  phases : (string * float) list;
      (** per-phase wall-clock seconds, in flow order: generate, dse,
          report, floorplan, post_timing, route *)
}

(** Result of logic synthesis with its performance counters. *)
type synthesis = {
  syn_netlist : Ggpu_hw.Netlist.t;
  syn_map : Map.t;
  syn_report : Ggpu_synth.Report.row;
  syn_perf : Dse.perf;
  syn_phases : (string * float) list;
}

val synthesise_timed :
  ?tech:Ggpu_tech.Tech.t ->
  ?incremental:bool ->
  ?sta:Ggpu_synth.Timing.impl ->
  ?base:Ggpu_hw.Netlist.t ->
  Spec.t ->
  synthesis
(** Logic synthesis only: generate, explore, report, with wall-clock
    phase breakdown.  [incremental] and [sta] are forwarded to
    {!Dse.explore}.  [base] supplies a pre-elaborated netlist for the
    spec's CU count; it is copied, never mutated, so one base serves
    several targets.
    @raise Dse.Cannot_meet if the frequency is unreachable. *)

val synthesise :
  ?tech:Ggpu_tech.Tech.t ->
  Spec.t ->
  Ggpu_hw.Netlist.t * Map.t * Ggpu_synth.Report.row
(** {!synthesise_timed} without the counters. *)

val base_macro_count : num_cus:int -> int
(** Macro count of the non-optimised design (51 + 42 per extra CU). *)

type placer =
  | Columns  (** the estimator's stacked-columns floorplan (default) *)
  | Analytic  (** {!Ggpu_layout.Place} analytical global placement *)

val implement :
  ?tech:Ggpu_tech.Tech.t ->
  ?incremental:bool ->
  ?sta:Ggpu_synth.Timing.impl ->
  ?base:Ggpu_hw.Netlist.t ->
  ?place:placer ->
  ?place_domains:int ->
  Spec.t ->
  implementation
(** The full RTL-to-layout flow.  [sta]/[base] as in
    {!synthesise_timed}; [place] selects the floorplan engine (the
    analytical placer is deterministic at any [place_domains]).  Beyond
    8 CUs the achieved frequency carries the {!Spec.contention_derate}
    for the shared L2/AXI interconnect. *)

val pp_implementation : Format.formatter -> implementation -> unit
