(* Designer specification for a G-GPU instance, and the PPA check run
   after implementation (the "under the initial specification?" diamond
   of the paper's Fig. 2 flow). *)

type t = {
  num_cus : int; (* a member of Arch_params.supported_cu_counts *)
  freq_mhz : int; (* target operating frequency *)
  max_area_mm2 : float option;
  max_power_w : float option;
}

exception Invalid_spec of string

let make ?(max_area_mm2 = None) ?(max_power_w = None) ~num_cus ~freq_mhz () =
  if not (Ggpu_rtlgen.Arch_params.cu_count_supported num_cus) then
    raise
      (Invalid_spec
         (Printf.sprintf "num_cus %d unsupported (the generator accepts %s)"
            num_cus Ggpu_rtlgen.Arch_params.supported_cu_counts_doc));
  if freq_mhz < 1 then raise (Invalid_spec "freq_mhz must be positive");
  { num_cus; freq_mhz; max_area_mm2; max_power_w }

let period_ns t = 1000.0 /. float_of_int t.freq_mhz

(* Shared L2/AXI contention derate for beyond-paper grids.  Up to 8 CUs
   the four AXI data ports keep up (the paper's largest design); past
   that, each doubling adds a fixed share of queueing at the shared
   interconnect, so the achievable frequency derates logarithmically:
   16 CUs ~0.89x, 32 ~0.81x, 64 ~0.74x. *)
let contention_derate t =
  if t.num_cus <= 8 then 1.0
  else
    let doublings = log (float_of_int t.num_cus /. 8.0) /. log 2.0 in
    1.0 /. (1.0 +. (0.12 *. doublings))

type violation =
  | Area_exceeded of { limit : float; actual : float }
  | Power_exceeded of { limit : float; actual : float }
  | Frequency_missed of { target_mhz : int; achieved_mhz : float }

let violation_to_string = function
  | Area_exceeded { limit; actual } ->
      Printf.sprintf "area %.2f mm2 exceeds limit %.2f mm2" actual limit
  | Power_exceeded { limit; actual } ->
      Printf.sprintf "power %.2f W exceeds limit %.2f W" actual limit
  | Frequency_missed { target_mhz; achieved_mhz } ->
      Printf.sprintf "achieved %.0f MHz misses target %d MHz" achieved_mhz
        target_mhz

let check t ~area_mm2 ~power_w ~achieved_mhz =
  let violations = ref [] in
  (match t.max_area_mm2 with
  | Some limit when area_mm2 > limit ->
      violations := Area_exceeded { limit; actual = area_mm2 } :: !violations
  | Some _ | None -> ());
  (match t.max_power_w with
  | Some limit when power_w > limit ->
      violations := Power_exceeded { limit; actual = power_w } :: !violations
  | Some _ | None -> ());
  if achieved_mhz +. 0.5 < float_of_int t.freq_mhz then
    violations :=
      Frequency_missed { target_mhz = t.freq_mhz; achieved_mhz } :: !violations;
  match !violations with [] -> Ok () | vs -> Error (List.rev vs)

(* Lossless, order-fixed rendering of every result-affecting field —
   the memo-cache key fragment for a spec.  Floats print as hex
   (%h) so distinct budgets can never collide through rounding. *)
let canonical t =
  let fopt = function None -> "-" | Some f -> Printf.sprintf "%h" f in
  Printf.sprintf "cus=%d;freq=%d;area=%s;power=%s" t.num_cus t.freq_mhz
    (fopt t.max_area_mm2) (fopt t.max_power_w)

let to_string t =
  Printf.sprintf "%dCU@%dMHz%s%s" t.num_cus t.freq_mhz
    (match t.max_area_mm2 with
    | Some a -> Printf.sprintf " area<=%.1fmm2" a
    | None -> "")
    (match t.max_power_w with
    | Some p -> Printf.sprintf " power<=%.1fW" p
    | None -> "")
