(* Design-space exploration: the heart of GPUPlanner.

   Iterates static timing analysis against a target period and fixes the
   worst violating path with the paper's two strategies:

   - if the path launches from an SRAM macro, *divide the memory*: try
     every legal word split (2/4/8 banks) and bit split (2/4 slices),
     predict the new path delay analytically, and apply the
     smallest-area candidate that meets timing;
   - otherwise (or when no division can meet timing), *insert a pipeline
     register on demand* at the balanced cut of the path.

   Every fix is recorded as a {!Map.edit}, so the resulting map can be
   replayed on a fresh netlist or handed to a designer, exactly like the
   paper's "dynamic spreadsheet". *)

open Ggpu_hw
open Ggpu_tech
open Ggpu_synth

exception Cannot_meet of { period_ns : float; best_ns : float; detail : string }

(* Strategy restriction, used by the ablation benches: the full planner
   combines memory division and on-demand pipelining; the restricted
   modes show what each buys on its own. *)
type strategy = Full | Division_only | Pipeline_only

(* Where the exploration spent its time.  [sta_wall_s] covers the
   engine's initial full computation and every (incremental) analysis;
   [edit_wall_s] covers candidate prediction and netlist rewriting.
   The fields are read out of a per-exploration {!Ggpu_obs.Metrics}
   registry (integer nanoseconds), so the record survives as the bench
   and CLI interface while the measurement substrate is shared with the
   rest of the flow. *)
type perf = {
  sta_calls : int;
  sta_full : int; (* whole-graph recomputations *)
  sta_incremental : int; (* journal-driven cone updates *)
  sta_wall_s : float;
  edit_wall_s : float;
  total_wall_s : float;
}

type result = {
  map : Map.t;
  iterations : int;
  final : Timing.report;
  perf : perf;
}

let pp_perf fmt p =
  Format.fprintf fmt
    "%d STA calls (%d full, %d incremental) | sta %.3fs edits %.3fs total %.3fs"
    p.sta_calls p.sta_full p.sta_incremental p.sta_wall_s p.edit_wall_s
    p.total_wall_s

(* Predicted delay of the read path after dividing [spec]. *)
let predicted_after_split tech ~path_delay ~old_clk2q candidate_spec ~mux_ways =
  let attrs = Memlib.query tech.Tech.memory candidate_spec in
  let extra_levels =
    if mux_ways > 0 then Op.levels (Op.Mux mux_ways) ~width:1
    else 1 (* bit-slice concat buffer *)
  in
  path_delay -. old_clk2q +. attrs.Memlib.clk_to_q_ns
  +. (float_of_int extra_levels *. tech.Tech.stdcell.Stdcell.gate_delay_ns)

type candidate = {
  edit : Map.edit;
  predicted_ns : float;
  area_cost_um2 : float;
}

let split_candidates tech cell ~path_delay =
  let spec =
    match Cell.macro_spec cell with Some s -> s | None -> assert false
  in
  let old_attrs = Memlib.query tech.Tech.memory spec in
  let count = float_of_int (Cell.count cell) in
  let word_candidates =
    List.filter_map
      (fun banks ->
        if banks > 8 then None
        else
          let bank_spec = Macro_spec.split_words spec ~banks in
          let bank_attrs = Memlib.query tech.Tech.memory bank_spec in
          Some
            {
              edit = Map.Split_words { cell_name = Cell.name cell; banks };
              predicted_ns =
                predicted_after_split tech ~path_delay
                  ~old_clk2q:old_attrs.Memlib.clk_to_q_ns bank_spec
                  ~mux_ways:banks;
              area_cost_um2 =
                count
                *. ((float_of_int banks *. bank_attrs.Memlib.area_um2)
                   -. old_attrs.Memlib.area_um2);
            })
      (Memlib.legal_word_splits spec)
  in
  let bit_candidates =
    List.filter_map
      (fun slices ->
        if slices > 4 then None
        else
          let slice_spec = Macro_spec.split_bits spec ~slices in
          let slice_attrs = Memlib.query tech.Tech.memory slice_spec in
          Some
            {
              edit = Map.Split_bits { cell_name = Cell.name cell; slices };
              predicted_ns =
                predicted_after_split tech ~path_delay
                  ~old_clk2q:old_attrs.Memlib.clk_to_q_ns slice_spec
                  ~mux_ways:0;
              area_cost_um2 =
                count
                *. ((float_of_int slices *. slice_attrs.Memlib.area_um2)
                   -. old_attrs.Memlib.area_um2);
            })
      (Memlib.legal_bit_splits spec)
  in
  word_candidates @ bit_candidates

(* The net at the balanced cut of a violating path: walk the
   combinational cells accumulating delay and cut after the cell where
   the running total first exceeds half the combinational delay. *)
let balanced_cut tech (path : Timing.path) =
  let comb_total =
    List.fold_left
      (fun acc cell -> acc +. Timing.cell_delay tech cell)
      0.0 path.Timing.through
  in
  let rec walk cells acc =
    match cells with
    | [] -> None
    | [ last ] -> Some last (* cut at the last cell's output *)
    | cell :: rest ->
        let acc = acc +. Timing.cell_delay tech cell in
        if acc >= comb_total /. 2.0 then Some cell else walk rest acc
  in
  match walk path.Timing.through 0.0 with
  | None -> None
  | Some cell -> (
      match Cell.outputs cell with net :: _ -> Some net | [] -> None)

let pipeline_edit tech netlist (path : Timing.path) =
  let net =
    match balanced_cut tech path with
    | Some net -> Some net
    | None -> (
        (* no combinational cells: register straight after the launch *)
        match Cell.outputs path.Timing.launch with
        | net :: _ -> Some net
        | [] -> None)
  in
  match net with
  | None -> None
  | Some net ->
      ignore (Netlist.insert_pipeline netlist net);
      Some (Map.Pipeline { net_name = Net.name net })

let edit_kind = function
  | Map.Split_words _ -> "split_words"
  | Map.Split_bits _ -> "split_bits"
  | Map.Pipeline _ -> "pipeline"

let explore ?(max_iterations = 400) ?(strategy = Full) ?(incremental = true)
    ?(sta = Timing.Csr) tech netlist ~num_cus ~period_ns =
  Ggpu_obs.Trace.with_span "dse.explore"
    ~args:
      [
        ("cus", string_of_int num_cus);
        ("period_ns", Printf.sprintf "%.3f" period_ns);
      ]
  @@ fun () ->
  let reg = Ggpu_obs.Metrics.create () in
  let sta_ns = Ggpu_obs.Metrics.counter reg "sta_ns" in
  let edit_ns = Ggpu_obs.Metrics.counter reg "edit_ns" in
  let t_start = Ggpu_obs.Metrics.now_ns () in
  let sta_calls = ref 0 in
  let timed c f = Ggpu_obs.Metrics.time_counter c f in
  let engine =
    if incremental then
      Some (timed sta_ns (fun () -> Timing.make_engine ~impl:sta tech netlist))
    else None
  in
  let analyse () =
    Stdlib.incr sta_calls;
    timed sta_ns (fun () ->
        match engine with
        | Some engine -> Timing.engine_analyse engine
        | None -> Timing.analyse tech netlist)
  in
  let edits = ref [] in
  let iterations = ref 0 in
  let rec loop () =
    let report = analyse () in
    if Timing.meets report ~period_ns then (report, List.rev !edits)
    else if !iterations >= max_iterations then
      raise
        (Cannot_meet
           {
             period_ns;
             best_ns = report.Timing.max_delay_ns;
             detail = "iteration limit reached";
           })
    else begin
      incr iterations;
      let path = report.Timing.worst in
      (* Division pays while the macro's access time dominates the
         period; once the macro is fast enough, the remaining slack
         problem is logic depth and a pipeline register is the right
         (and cheaper) fix - this is the paper's staging: pure division
         at 590 MHz, division + on-demand pipelining at 667 MHz. *)
      let macro_dominates cell =
        match Cell.macro_spec cell with
        | Some spec ->
            (Memlib.query tech.Tech.memory spec).Memlib.clk_to_q_ns
            > 0.7 *. period_ns
        | None -> false
      in
      let pipeline_allowed =
        match strategy with Full | Pipeline_only -> true | Division_only -> false
      in
      let division_allowed =
        match strategy with Full | Division_only -> true | Pipeline_only -> false
      in
      let applied =
        timed edit_ns @@ fun () ->
        Ggpu_obs.Trace.with_span "dse.edit" @@ fun () ->
        if
          division_allowed && Cell.is_macro path.Timing.launch
          && macro_dominates path.Timing.launch
        then begin
          let candidates =
            split_candidates tech path.Timing.launch
              ~path_delay:path.Timing.delay_ns
          in
          let meeting =
            List.filter (fun c -> c.predicted_ns <= period_ns) candidates
            |> List.sort (fun a b ->
                   Float.compare a.area_cost_um2 b.area_cost_um2)
          in
          match meeting with
          | best :: _ ->
              Map.apply_edit netlist best.edit;
              Some best.edit
          | [] -> (
              (* no single division meets: take the best improvement and
                 iterate, or fall back to a pipeline *)
              let improving =
                List.filter
                  (fun c -> c.predicted_ns < path.Timing.delay_ns -. 1e-4)
                  candidates
                |> List.sort (fun a b -> Float.compare a.predicted_ns b.predicted_ns)
              in
              match improving with
              | best :: _ ->
                  Map.apply_edit netlist best.edit;
                  Some best.edit
              | [] ->
                  if pipeline_allowed then pipeline_edit tech netlist path
                  else None)
        end
        else if pipeline_allowed then pipeline_edit tech netlist path
        else None
      in
      match applied with
      | Some edit ->
          Ggpu_obs.Metrics.count ("dse.edit." ^ edit_kind edit) 1;
          edits := edit :: !edits;
          loop ()
      | None ->
          raise
            (Cannot_meet
               {
                 period_ns;
                 best_ns = path.Timing.delay_ns;
                 detail =
                   Printf.sprintf "unfixable path %s"
                     (Format.asprintf "%a" Timing.pp_path path);
               })
    end
  in
  let final, edit_list = loop () in
  let sta_full, sta_incremental =
    match engine with
    | Some engine ->
        let stats = Timing.engine_stats engine in
        (stats.Timing.full_recomputes, stats.Timing.incremental_updates)
    | None -> (!sta_calls, 0)
  in
  Ggpu_obs.Metrics.count "dse.explorations" 1;
  Ggpu_obs.Metrics.count "dse.iterations" !iterations;
  Ggpu_obs.Metrics.count "dse.sta_calls" !sta_calls;
  Ggpu_obs.Metrics.count "dse.sta_full" sta_full;
  Ggpu_obs.Metrics.count "dse.sta_incremental" sta_incremental;
  {
    map = { Map.num_cus; target_period_ns = period_ns; edits = edit_list };
    iterations = !iterations;
    final;
    perf =
      {
        sta_calls = !sta_calls;
        sta_full;
        sta_incremental;
        sta_wall_s =
          float_of_int (Ggpu_obs.Metrics.counter_value sta_ns) /. 1e9;
        edit_wall_s =
          float_of_int (Ggpu_obs.Metrics.counter_value edit_ns) /. 1e9;
        total_wall_s =
          float_of_int (Ggpu_obs.Metrics.now_ns () - t_start) /. 1e9;
      };
  }
