(** The RISC-V comparison: Table III cycle counts, Fig. 5 raw speed-ups
    and Fig. 6 area-derated speed-ups, following the paper's
    methodology (input-ratio scaling of RISC-V cycles; areas from logic
    synthesis at 667 MHz). *)

type row = {
  kernel : string;
  riscv_size : int;
  ggpu_size : int;
  riscv_kcycles : float;
  ggpu_kcycles : (int * float) list;  (** per CU count *)
}

type speedups = {
  kernel : string;
  raw : (int * float) list;  (** CU count -> Fig. 5 value *)
  derated : (int * float) list;  (** CU count -> Fig. 6 value *)
}

val cu_counts : int list
(** The paper's comparison grid, [1; 2; 4; 8]. *)

val check_cu_counts : int list -> unit
(** Validate an explicit CU grid against the generator's supported
    counts (the paper grid plus 16/32/64).
    @raise Invalid_argument naming the offending count — nothing is
    silently clamped. *)

val riscv_area_mm2 : Ggpu_tech.Tech.t -> float
(** Area of the CV32E40P-class baseline plus its 32 kB SRAM under the
    same technology models. *)

val run_riscv : Ggpu_kernels.Suite.t -> int
(** Cycle count at the workload's RISC-V size. *)

val run_ggpu :
  ?backend:Ggpu_fgpu.Gpu.backend ->
  ?domains:int ->
  ?superopt:bool ->
  Ggpu_kernels.Suite.t ->
  num_cus:int ->
  int
(** Cycle count at the workload's G-GPU size.  [backend] selects the
    simulator execution engine and [domains] the CU-parallel split;
    cycle counts are bit-identical for any combination.  [superopt]
    (default true) is forwarded to {!Ggpu_kernels.Codegen_fgpu.compile}. *)

val table3 :
  ?workloads:Ggpu_kernels.Suite.t list ->
  ?backend:Ggpu_fgpu.Gpu.backend ->
  ?domains:int ->
  ?superopt:bool ->
  ?cu_counts:int list ->
  unit ->
  row list
(** Measure Table III over [cu_counts] (default {!cu_counts}; extended
    grids may include 16/32/64 — see {!check_cu_counts}). *)

val ggpu_areas_mm2 :
  ?tech:Ggpu_tech.Tech.t -> ?cu_counts:int list -> unit -> (int * float) list

val speedups : ?tech:Ggpu_tech.Tech.t -> row list -> speedups list
(** Figs. 5/6 values; the CU grid is read off the rows, so extended
    Table III measurements derate all their columns. *)

val pp_table3 : Format.formatter -> row list -> unit
(** Headers follow the rows' CU grid. *)

val pp_speedups : Format.formatter -> label:string -> speedups list -> unit
(** Headers follow the rows' CU grid. *)
