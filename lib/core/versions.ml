(* The paper's version grid: 12 logic-synthesis versions (1/2/4/8 CUs x
   500/590/667 MHz, Table I) and the four extreme physical-synthesis
   versions (1CU@500, 1CU@667, 8CU@500, 8CU@667 - the last derating to
   ~600 MHz after routing, Fig. 4 / Table II).

   Each version owns a freshly generated netlist and the flow touches no
   shared mutable state, so the grid runs across a {!Parallel} domain
   pool by default; [~parallel:false] restores the sequential sweep. *)

let cu_counts = [ 1; 2; 4; 8 ]
let frequencies_mhz = [ 500; 590; 667 ]

let table1_specs () =
  List.concat_map
    (fun freq_mhz ->
      List.map
        (fun num_cus -> Spec.make ~num_cus ~freq_mhz ())
        cu_counts)
    frequencies_mhz

let physical_specs () =
  [
    Spec.make ~num_cus:1 ~freq_mhz:500 ();
    Spec.make ~num_cus:1 ~freq_mhz:667 ();
    Spec.make ~num_cus:8 ~freq_mhz:500 ();
    Spec.make ~num_cus:8 ~freq_mhz:667 ();
  ]

let domains_of ~parallel = if parallel then None else Some 1

(* All frequency targets of one CU count start from the same base
   netlist, so elaborate each base once and hand copies to the flow.
   The seed behaviour ([incremental = false]) regenerates per version.
   The bases are frozen before the per-version fan-out, so concurrent
   copies from several domains are safe. *)
let shared_bases ?domains specs =
  let cus =
    List.sort_uniq Int.compare (List.map (fun s -> s.Spec.num_cus) specs)
  in
  Parallel.map ?domains
    (fun num_cus -> (num_cus, Ggpu_rtlgen.Generate.generate_cus ~num_cus))
    cus

let map_specs ?(parallel = true) ?(incremental = true) ~f specs =
  let domains = domains_of ~parallel in
  if not incremental then
    Parallel.map ?domains (fun spec -> f ?base:None spec) specs
  else begin
    let bases = shared_bases ?domains specs in
    Parallel.map ?domains
      (fun spec -> f ?base:(List.assoc_opt spec.Spec.num_cus bases) spec)
      specs
  end

(* Table I, regenerated, with per-version counters. *)
let table1_syntheses ?tech ?parallel ?incremental () =
  map_specs ?parallel ?incremental
    ~f:(fun ?base spec -> Flow.synthesise_timed ?tech ?incremental ?base spec)
    (table1_specs ())

let table1 ?tech ?parallel ?incremental () =
  List.map
    (fun s -> s.Flow.syn_report)
    (table1_syntheses ?tech ?parallel ?incremental ())

(* The four physical implementations behind Table II and Figs. 3/4. *)
let physical ?tech ?parallel ?incremental () =
  map_specs ?parallel ?incremental
    ~f:(fun ?base spec -> Flow.implement ?tech ?incremental ?base spec)
    (physical_specs ())
