(* The paper's version grid: 12 logic-synthesis versions (1/2/4/8 CUs x
   500/590/667 MHz, Table I) and the four extreme physical-synthesis
   versions (1CU@500, 1CU@667, 8CU@500, 8CU@667 - the last derating to
   ~600 MHz after routing, Fig. 4 / Table II).

   Each version owns a freshly generated netlist and the flow touches no
   shared mutable state, so the grid runs across a {!Parallel} domain
   pool by default; [~parallel:false] restores the sequential sweep. *)

let cu_counts = [ 1; 2; 4; 8 ]
let frequencies_mhz = [ 500; 590; 667 ]

(* The beyond-paper grid: 8 CUs anchors the comparison to the published
   extreme, then each doubling exercises the L2/AXI contention derate. *)
let scaling_cu_counts = [ 8; 16; 32; 64 ]

let table1_specs () =
  List.concat_map
    (fun freq_mhz ->
      List.map
        (fun num_cus -> Spec.make ~num_cus ~freq_mhz ())
        cu_counts)
    frequencies_mhz

let physical_specs () =
  [
    Spec.make ~num_cus:1 ~freq_mhz:500 ();
    Spec.make ~num_cus:1 ~freq_mhz:667 ();
    Spec.make ~num_cus:8 ~freq_mhz:500 ();
    Spec.make ~num_cus:8 ~freq_mhz:667 ();
  ]

let scaling_specs ?(freq_mhz = 667) ?(cu_counts = scaling_cu_counts) () =
  Compare.check_cu_counts cu_counts;
  List.map (fun num_cus -> Spec.make ~num_cus ~freq_mhz ()) cu_counts

let domains_of ~parallel = if parallel then None else Some 1

(* All frequency targets of one CU count start from the same base
   netlist, so elaborate each base once and hand copies to the flow.
   The seed behaviour ([incremental = false]) regenerates per version.
   The bases are frozen before the per-version fan-out, so concurrent
   copies from several domains are safe. *)
let shared_bases ?domains specs =
  let cus =
    List.sort_uniq Int.compare (List.map (fun s -> s.Spec.num_cus) specs)
  in
  Parallel.map ?domains
    (fun num_cus -> (num_cus, Ggpu_rtlgen.Generate.generate_cus ~num_cus))
    cus

let map_specs ?(parallel = true) ?(incremental = true) ~f specs =
  let domains = domains_of ~parallel in
  if not incremental then
    Parallel.map ?domains (fun spec -> f ?base:None spec) specs
  else begin
    let bases = shared_bases ?domains specs in
    Parallel.map ?domains
      (fun spec -> f ?base:(List.assoc_opt spec.Spec.num_cus bases) spec)
      specs
  end

(* Table I, regenerated, with per-version counters. *)
let table1_syntheses ?tech ?parallel ?incremental ?sta () =
  map_specs ?parallel ?incremental
    ~f:(fun ?base spec ->
      Flow.synthesise_timed ?tech ?incremental ?sta ?base spec)
    (table1_specs ())

let table1 ?tech ?parallel ?incremental ?sta () =
  List.map
    (fun s -> s.Flow.syn_report)
    (table1_syntheses ?tech ?parallel ?incremental ?sta ())

(* The four physical implementations behind Table II and Figs. 3/4. *)
let physical ?tech ?parallel ?incremental ?sta () =
  map_specs ?parallel ?incremental
    ~f:(fun ?base spec -> Flow.implement ?tech ?incremental ?sta ?base spec)
    (physical_specs ())

(* The scaling study: full implementations at 8/16/32/64 CUs, one
   frequency target, shared bases per CU count as everywhere else. *)
let scaling ?tech ?parallel ?incremental ?sta ?place ?place_domains ?freq_mhz
    ?cu_counts () =
  map_specs ?parallel ?incremental
    ~f:(fun ?base spec ->
      Flow.implement ?tech ?incremental ?sta ?base ?place ?place_domains spec)
    (scaling_specs ?freq_mhz ?cu_counts ())
