(** Designer specifications and the post-implementation PPA check (the
    "under the initial specification?" decision of the paper's Fig. 2). *)

type t = {
  num_cus : int;
  freq_mhz : int;
  max_area_mm2 : float option;
  max_power_w : float option;
}

exception Invalid_spec of string

val make :
  ?max_area_mm2:float option ->
  ?max_power_w:float option ->
  num_cus:int ->
  freq_mhz:int ->
  unit ->
  t
(** @raise Invalid_spec if [num_cus] is outside the generator's 1..8
    range or the frequency is not positive. *)

val period_ns : t -> float

type violation =
  | Area_exceeded of { limit : float; actual : float }
  | Power_exceeded of { limit : float; actual : float }
  | Frequency_missed of { target_mhz : int; achieved_mhz : float }

val violation_to_string : violation -> string

val check :
  t ->
  area_mm2:float ->
  power_w:float ->
  achieved_mhz:float ->
  (unit, violation list) result

val to_string : t -> string

val canonical : t -> string
(** Injective rendering of every result-affecting field (floats as
    lossless hex), stable across runs — the spec fragment of
    {!Ggpu_serve} memo-cache keys.  Two specs share a canonical string
    iff they are equal. *)
