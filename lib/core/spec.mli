(** Designer specifications and the post-implementation PPA check (the
    "under the initial specification?" decision of the paper's Fig. 2). *)

type t = {
  num_cus : int;
  freq_mhz : int;
  max_area_mm2 : float option;
  max_power_w : float option;
}

exception Invalid_spec of string

val make :
  ?max_area_mm2:float option ->
  ?max_power_w:float option ->
  num_cus:int ->
  freq_mhz:int ->
  unit ->
  t
(** @raise Invalid_spec if [num_cus] is not in
    {!Ggpu_rtlgen.Arch_params.supported_cu_counts} (1..8 plus the
    16/32/64 scaling grid) or the frequency is not positive. *)

val period_ns : t -> float

val contention_derate : t -> float
(** Shared L2/AXI contention derate applied after physical synthesis:
    [1.0] for the paper's 1..8-CU range, then [1 / (1 + 0.12 lg(n/8))]
    per doubling beyond 8 (16 CUs ~0.89, 32 ~0.81, 64 ~0.74). *)

type violation =
  | Area_exceeded of { limit : float; actual : float }
  | Power_exceeded of { limit : float; actual : float }
  | Frequency_missed of { target_mhz : int; achieved_mhz : float }

val violation_to_string : violation -> string

val check :
  t ->
  area_mm2:float ->
  power_w:float ->
  achieved_mhz:float ->
  (unit, violation list) result

val to_string : t -> string

val canonical : t -> string
(** Injective rendering of every result-affecting field (floats as
    lossless hex), stable across runs — the spec fragment of
    {!Ggpu_serve} memo-cache keys.  Two specs share a canonical string
    iff they are equal. *)
