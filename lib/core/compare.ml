(* The RISC-V comparison (Table III, Figs. 5 and 6).

   Follows the paper's methodology exactly:

   - both architectures run the same seven OpenCL-style micro-benchmarks
     from one kernel source (compiled by the respective back ends);
   - the RISC-V runs its largest input; the G-GPU runs an input 8-64x
     larger (the published per-kernel ratios) to keep its compute units
     fed;
   - raw speed-up scales the RISC-V cycle count linearly by the input
     ratio ("which in practice is unfeasible but favours RISC-V");
   - Fig. 6 derates the speed-up by the G-GPU/RISC-V area ratio for
     each CU configuration, both synthesised at 667 MHz. *)

open Ggpu_kernels

type row = {
  kernel : string;
  riscv_size : int;
  ggpu_size : int;
  riscv_kcycles : float;
  ggpu_kcycles : (int * float) list; (* per CU count *)
}

type speedups = {
  kernel : string;
  raw : (int * float) list; (* CU count -> Fig. 5 speed-up *)
  derated : (int * float) list; (* CU count -> Fig. 6 speed-up/area *)
}

let cu_counts = [ 1; 2; 4; 8 ]

(* Extended CU lists (16/32/64) are legal anywhere the paper grid was;
   anything else fails loudly instead of being clamped to the grid. *)
let check_cu_counts cus =
  if cus = [] then invalid_arg "empty CU-count list";
  List.iter
    (fun c ->
      if not (Ggpu_rtlgen.Arch_params.cu_count_supported c) then
        invalid_arg
          (Printf.sprintf "num_cus %d unsupported (the generator accepts %s)"
             c Ggpu_rtlgen.Arch_params.supported_cu_counts_doc))
    cus

(* Area of the CV32E40P-class baseline with its 32 kB data SRAM, using
   the same technology models as the G-GPU (the paper reports the 1-CU
   G-GPU as 6.5x this). *)
let riscv_area_mm2 tech =
  let open Ggpu_tech in
  let core_gates = 45_000 and core_ffs = 3_000 in
  let logic_um2 =
    (float_of_int core_gates *. tech.Tech.stdcell.Stdcell.gate_area_um2)
    +. float_of_int core_ffs *. tech.Tech.stdcell.Stdcell.dff_area_um2
  in
  let sram =
    Ggpu_hw.Macro_spec.make ~words:8192 ~bits:32
      ~ports:Ggpu_hw.Macro_spec.Dual_port
  in
  let mem_um2 = (Memlib.query tech.Tech.memory sram).Memlib.area_um2 in
  ((logic_um2 /. 0.7) +. mem_um2) /. 1.0e6

let run_riscv (w : Suite.t) =
  let size = w.Suite.riscv_size in
  let args = w.Suite.mk_args ~size in
  let compiled = Codegen_rv32.compile w.Suite.kernel in
  let result =
    Run_rv32.run compiled ~args
      ~global_size:(w.Suite.global_size ~size)
      ~local_size:(min w.Suite.local_size size)
      ()
  in
  result.Run_rv32.stats.Ggpu_riscv.Cpu.cycles

let run_ggpu ?backend ?domains ?superopt (w : Suite.t) ~num_cus =
  let size = w.Suite.ggpu_size in
  let config = Ggpu_fgpu.Config.with_cus Ggpu_fgpu.Config.default num_cus in
  let args = w.Suite.mk_args ~size in
  let compiled = Codegen_fgpu.compile ?superopt w.Suite.kernel in
  let result =
    Run_fgpu.run ~config ?backend ?domains compiled ~args
      ~global_size:(w.Suite.global_size ~size)
      ~local_size:(min w.Suite.local_size size)
      ()
  in
  result.Run_fgpu.stats.Ggpu_fgpu.Stats.cycles

(* Table III: input sizes and measured cycle counts. *)
let table3 ?(workloads = Suite.all) ?backend ?domains ?superopt
    ?(cu_counts = cu_counts) () =
  check_cu_counts cu_counts;
  List.map
    (fun w ->
      {
        kernel = w.Suite.name;
        riscv_size = w.Suite.riscv_size;
        ggpu_size = w.Suite.ggpu_size;
        riscv_kcycles = float_of_int (run_riscv w) /. 1000.0;
        ggpu_kcycles =
          List.map
            (fun cus ->
              ( cus,
                float_of_int (run_ggpu ?backend ?domains ?superopt w ~num_cus:cus)
                /. 1000.0 ))
            cu_counts;
      })
    workloads

(* G-GPU total area per CU count at the paper's 667 MHz comparison
   point. *)
let ggpu_areas_mm2 ?tech ?(cu_counts = cu_counts) () =
  check_cu_counts cu_counts;
  List.map
    (fun num_cus ->
      let spec = Spec.make ~num_cus ~freq_mhz:667 () in
      let _nl, _map, report = Flow.synthesise ?tech spec in
      (num_cus, report.Ggpu_synth.Report.total_area_mm2))
    cu_counts

(* The CU columns a measurement actually carries, in measurement
   order: Table III rows all share one grid, so the first row is it. *)
let row_cu_counts (rows : row list) =
  match rows with [] -> [] | r :: _ -> List.map fst r.ggpu_kcycles

(* Figs. 5 and 6 from a Table III measurement.  The CU grid is read off
   the rows, so an extended measurement derates all its columns. *)
let speedups ?(tech = Ggpu_tech.Tech.default_65nm) (rows : row list) =
  if rows = [] then []
  else
  let areas = ggpu_areas_mm2 ~tech ~cu_counts:(row_cu_counts rows) () in
  let rv_area = riscv_area_mm2 tech in
  List.map
    (fun r ->
      let ratio = float_of_int r.ggpu_size /. float_of_int r.riscv_size in
      let raw =
        List.map
          (fun (cus, kcycles) -> (cus, r.riscv_kcycles *. ratio /. kcycles))
          r.ggpu_kcycles
      in
      let derated =
        List.map
          (fun (cus, speedup) ->
            let area = List.assoc cus areas in
            (cus, speedup /. (area /. rv_area)))
          raw
      in
      { kernel = r.kernel; raw; derated })
    rows

let pp_table3 fmt (rows : row list) =
  Format.fprintf fmt "%-13s %8s %8s %10s" "Kernel" "RISC-V" "G-GPU"
    "RISC-V kc";
  List.iter
    (fun cus -> Format.fprintf fmt " %10s" (Printf.sprintf "%dCU kc" cus))
    (row_cu_counts rows);
  Format.fprintf fmt "@.";
  List.iter
    (fun (r : row) ->
      Format.fprintf fmt "%-13s %8d %8d %10.0f" r.kernel r.riscv_size
        r.ggpu_size r.riscv_kcycles;
      List.iter
        (fun (_, kcycles) -> Format.fprintf fmt " %10.0f" kcycles)
        r.ggpu_kcycles;
      Format.fprintf fmt "@.")
    rows

let pp_speedups fmt ~label (rows : speedups list) =
  Format.fprintf fmt "%-13s" "Kernel";
  (match rows with
  | [] -> ()
  | s :: _ ->
      List.iter
        (fun (cus, _) -> Format.fprintf fmt " %10s" (Printf.sprintf "%dCU" cus))
        s.raw);
  Format.fprintf fmt "   (%s)@." label;
  List.iter
    (fun s ->
      let values =
        match label with "raw" -> s.raw | _ -> s.derated
      in
      Format.fprintf fmt "%-13s" s.kernel;
      List.iter (fun (_, v) -> Format.fprintf fmt " %10.2f" v) values;
      Format.fprintf fmt "@.")
    rows
