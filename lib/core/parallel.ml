(* The domain pool lives in {!Ggpu_par} so layers below the planner
   core (the kernel suite runner, the FI campaign driver) can use it
   without a dependency cycle; re-exported here for existing callers. *)

include Ggpu_par.Parallel
