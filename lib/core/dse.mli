(** Design-space exploration: the heart of GPUPlanner.

    Iterates static timing analysis against a target period, dividing
    SRAM macros while their access time dominates the period and
    inserting pipeline registers on demand otherwise — the paper's two
    strategies. Mutates the netlist in place and records every edit in
    a replayable {!Map.t}. *)

exception
  Cannot_meet of { period_ns : float; best_ns : float; detail : string }

type strategy =
  | Full  (** division + on-demand pipelining (the paper's planner) *)
  | Division_only  (** ablation: never insert pipelines *)
  | Pipeline_only  (** ablation: never divide memories *)

(** Wall-clock and STA-call counters for one exploration. *)
type perf = {
  sta_calls : int;  (** timing analyses run by the loop *)
  sta_full : int;  (** whole-graph recomputations *)
  sta_incremental : int;  (** incremental cone updates *)
  sta_wall_s : float;  (** time in static timing analysis *)
  edit_wall_s : float;  (** time predicting and applying edits *)
  total_wall_s : float;
}

val pp_perf : Format.formatter -> perf -> unit

type result = {
  map : Map.t;
  iterations : int;
  final : Ggpu_synth.Timing.report;  (** meets the period by construction *)
  perf : perf;
}

val explore :
  ?max_iterations:int ->
  ?strategy:strategy ->
  ?incremental:bool ->
  ?sta:Ggpu_synth.Timing.impl ->
  Ggpu_tech.Tech.t ->
  Ggpu_hw.Netlist.t ->
  num_cus:int ->
  period_ns:float ->
  result
(** [incremental] (default [true]) reuses one {!Ggpu_synth.Timing}
    engine across iterations so each analysis after an edit relaxes only
    the touched fan-out cone; [false] recomputes from scratch every
    iteration (the pre-engine behaviour, kept for benchmarking).  [sta]
    selects the engine implementation (default {!Ggpu_synth.Timing.Csr};
    [Legacy] is the hashtable baseline, kept for differential testing
    and the perf benches).  All combinations produce identical maps and
    reports.
    @raise Cannot_meet when no sequence of edits reaches the period. *)
