(** Seeded request-mix generator for the load bench and the CI smoke
    replay: a deterministic stream of mixed synth / sim / perf requests
    drawn from a bounded parameter universe, so long replays revisit
    keys and exercise the memo cache the way grid traffic does. *)

val universe : int
(** Number of distinct memo keys the mix can draw (the expected steady-
    state hit rate of an [n]-request replay is roughly
    [1 - universe/n]). *)

val mix : ?tech:string -> seed:int -> n:int -> unit -> Proto.request list
(** [n] requests with ids [1..n].  Same [seed], same list — the replay
    is reproducible across processes and machines.  Roughly half are
    sims, a third synths, the rest perf-reports. *)
