(* The serving core.

   A request's result is a pure function of its memo key, so the cache
   stores the serialised payload and a hit replays the exact bytes of
   the cold computation.  One [step] call is one batch: the unit of
   fan-out over the domain pool and of artifact sharing (base netlists,
   kernel compilations) between requests. *)

open Ggpu_core
module Json = Ggpu_obs.Json
module Metrics = Ggpu_obs.Metrics
module Trace = Ggpu_obs.Trace

type config = {
  cache_capacity : int;
  shards : int;
  queue_capacity : int;
  retry_after_ms : int;
  pmu_stride : int;
  backend : Ggpu_fgpu.Gpu.backend;
}

let default_config =
  {
    cache_capacity = 4096;
    shards = 8;
    queue_capacity = 256;
    retry_after_ms = 50;
    pmu_stride = 64;
    backend = Ggpu_fgpu.Gpu.Threaded;
  }

type queued = { req : Proto.request; arrival_ns : int }

type t = {
  cfg : config;
  pool : Ggpu_par.Parallel.Pool.t option;
  results : string Lru.t array;
  bases : Ggpu_hw.Netlist.t Lru.t;
  compiled : Ggpu_kernels.Codegen_fgpu.compiled Lru.t;
  queue : queued Queue.t;
  reg : Metrics.t;
  c_requests : Metrics.counter;
  c_batches : Metrics.counter;
  c_hit : Metrics.counter;
  c_miss : Metrics.counter;
  c_evict : Metrics.counter;
  c_coalesced : Metrics.counter;
  c_nl_build : Metrics.counter;
  c_nl_reuse : Metrics.counter;
  c_k_compile : Metrics.counter;
  c_k_reuse : Metrics.counter;
  c_rejected : Metrics.counter;
  c_expired : Metrics.counter;
  c_failed : Metrics.counter;
  g_high_water : Metrics.gauge;
  h_sim : Metrics.histogram;
  h_synth : Metrics.histogram;
  h_perf : Metrics.histogram;
}

(* Log-spaced integer microseconds, 1 µs to ~16.8 s, overflow above.
   Powers of two keep the cells integral and identical in every
   registry, so snapshots merge bit-identically at any pool size. *)
let latency_buckets = List.init 25 (fun i -> 1 lsl i)

let tech_of_name = function
  | "65nm" -> Some Ggpu_tech.Tech.default_65nm
  | "28nm" -> Some Ggpu_tech.Tech.scaled_28nm
  | _ -> None

let create ?(config = default_config) ?pool () =
  let cfg =
    {
      config with
      shards = max 1 config.shards;
      cache_capacity = max config.shards config.cache_capacity;
      queue_capacity = max 1 config.queue_capacity;
    }
  in
  let per_shard =
    max 1 ((cfg.cache_capacity + cfg.shards - 1) / cfg.shards)
  in
  let reg = Metrics.create () in
  let t =
    {
      cfg;
      pool;
      results = Array.init cfg.shards (fun _ -> Lru.create ~capacity:per_shard);
      bases = Lru.create ~capacity:16;
      compiled = Lru.create ~capacity:32;
      queue = Queue.create ();
      reg;
      c_requests = Metrics.counter reg "serve.requests";
      c_batches = Metrics.counter reg "serve.batches";
      c_hit = Metrics.counter reg "serve.cache.hit";
      c_miss = Metrics.counter reg "serve.cache.miss";
      c_evict = Metrics.counter reg "serve.cache.eviction";
      c_coalesced = Metrics.counter reg "serve.cache.coalesced";
      c_nl_build = Metrics.counter reg "serve.netlist.build";
      c_nl_reuse = Metrics.counter reg "serve.netlist.reuse";
      c_k_compile = Metrics.counter reg "serve.kernel.compile";
      c_k_reuse = Metrics.counter reg "serve.kernel.reuse";
      c_rejected = Metrics.counter reg "serve.rejected";
      c_expired = Metrics.counter reg "serve.expired";
      c_failed = Metrics.counter reg "serve.failed";
      g_high_water = Metrics.gauge reg "serve.queue.high_water";
      h_sim = Metrics.histogram ~buckets:latency_buckets reg "serve.latency.sim";
      h_synth =
        Metrics.histogram ~buckets:latency_buckets reg "serve.latency.synth";
      h_perf =
        Metrics.histogram ~buckets:latency_buckets reg "serve.latency.perf";
    }
  in
  Metrics.gauge_max
    (Metrics.gauge reg "serve.pool.domains")
    (match pool with Some p -> Ggpu_par.Parallel.Pool.size p | None -> 1);
  t

let pool_size t =
  match t.pool with Some p -> Ggpu_par.Parallel.Pool.size p | None -> 1

(* --- plans --------------------------------------------------------------- *)

(* What a request resolves to after normalisation: its memo key plus
   everything needed to execute it cold. *)
type plan =
  | P_synth of { tech : Ggpu_tech.Tech.t; tech_name : string; spec : Spec.t }
  | P_sim of {
      w : Ggpu_kernels.Suite.t;
      config : Ggpu_fgpu.Config.t;
      size : int;
      gsize : int;
      lsize : int;
      pmu : bool;  (* Perf requests attach the collector *)
    }

let plan_of_request (req : Proto.request) =
  match tech_of_name req.Proto.tech with
  | None ->
      Error (Printf.sprintf "unknown technology %S (65nm | 28nm)" req.Proto.tech)
  | Some tech -> (
      match req.Proto.kind with
      | Proto.Synth { cus; freq_mhz } -> (
          match Spec.make ~num_cus:cus ~freq_mhz () with
          | spec -> Ok (P_synth { tech; tech_name = req.Proto.tech; spec })
          | exception Spec.Invalid_spec msg -> Error msg)
      | Proto.Sim { kernel; cus; size } | Proto.Perf { kernel; cus; size } -> (
          match Ggpu_kernels.Suite.find kernel with
          | exception Invalid_argument msg -> Error msg
          | w -> (
              match
                Ggpu_fgpu.Config.with_cus Ggpu_fgpu.Config.default cus
              with
              | exception Ggpu_fgpu.Config.Bad_config msg -> Error msg
              | config ->
                  let size = w.Ggpu_kernels.Suite.round_size (max 1 size) in
                  let gsize = w.Ggpu_kernels.Suite.global_size ~size in
                  let lsize = min w.Ggpu_kernels.Suite.local_size size in
                  let pmu =
                    match req.Proto.kind with
                    | Proto.Perf _ -> true
                    | _ -> false
                  in
                  Ok (P_sim { w; config; size; gsize; lsize; pmu }))))

let key_of_plan ~stride = function
  | P_synth { tech; spec; _ } -> Key.synth ~tech spec
  | P_sim { w; config; gsize; lsize; pmu; _ } ->
      let kernel = w.Ggpu_kernels.Suite.name in
      if pmu then
        Key.perf ~config ~kernel ~global_size:gsize ~local_size:lsize ~stride
      else Key.sim ~config ~kernel ~global_size:gsize ~local_size:lsize

let key_of_request ?(pmu_stride = default_config.pmu_stride) req =
  Result.map (key_of_plan ~stride:pmu_stride) (plan_of_request req)

(* --- payloads ------------------------------------------------------------ *)

(* Payloads contain only deterministic values — no wall times — so the
   serialised bytes are a pure function of the memo key. *)

let synth_payload ~tech_name (spec : Spec.t)
    (syn : Flow.synthesis) =
  let r = syn.Flow.syn_report in
  Json.to_string
    (Json.Obj
       [
         ("kind", Json.String "synth");
         ("cus", Json.Int spec.Spec.num_cus);
         ("freq_mhz", Json.Int spec.Spec.freq_mhz);
         ("tech", Json.String tech_name);
         ("area_mm2", Json.Float r.Ggpu_synth.Report.total_area_mm2);
         ("memory_area_mm2", Json.Float r.Ggpu_synth.Report.memory_area_mm2);
         ("ff", Json.Int r.Ggpu_synth.Report.ff);
         ("comb", Json.Int r.Ggpu_synth.Report.comb);
         ("memories", Json.Int r.Ggpu_synth.Report.memories);
         ("leakage_mw", Json.Float r.Ggpu_synth.Report.leakage_mw);
         ("dynamic_w", Json.Float r.Ggpu_synth.Report.dynamic_w);
         ("total_w", Json.Float r.Ggpu_synth.Report.total_w);
         ("fmax_mhz", Json.Float r.Ggpu_synth.Report.fmax_mhz);
         ("pipeline_stages", Json.Int r.Ggpu_synth.Report.pipeline_stages);
         ("divisions", Json.Int (Map.divisions syn.Flow.syn_map));
         ("pipelines", Json.Int (Map.pipelines syn.Flow.syn_map));
         ("sta_calls", Json.Int syn.Flow.syn_perf.Dse.sta_calls);
       ])

let stats_json stats =
  Json.Obj
    (List.map (fun (k, v) -> (k, Json.Int v)) (Ggpu_fgpu.Stats.to_assoc stats))

let hit_rate_json stats =
  match Ggpu_fgpu.Stats.hit_rate stats with
  | Some r -> Json.Float r
  | None -> Json.Null

let sim_payload ~kernel ~cus ~size (result : Ggpu_kernels.Run_fgpu.result)
    ~correct =
  Json.to_string
    (Json.Obj
       [
         ("kind", Json.String "sim");
         ("kernel", Json.String kernel);
         ("cus", Json.Int cus);
         ("size", Json.Int size);
         ("correct", Json.Bool correct);
         ("stats", stats_json result.Ggpu_kernels.Run_fgpu.stats);
         ("hit_rate", hit_rate_json result.Ggpu_kernels.Run_fgpu.stats);
       ])

let perf_payload ~kernel ~cus ~size (result : Ggpu_kernels.Run_fgpu.result)
    ~correct (summary : Ggpu_pmu.Pmu.summary) =
  let buckets =
    Array.to_list Ggpu_pmu.Pmu.bucket_names
    |> List.map (fun name ->
           (name, Json.Int (Ggpu_pmu.Pmu.bucket_total summary name)))
  in
  let hot =
    summary.Ggpu_pmu.Pmu.s_hot
    |> List.filteri (fun i _ -> i < 5)
    |> List.map (fun (pc, insn, samples) ->
           Json.Obj
             [
               ("pc", Json.Int pc);
               ("insn", Json.String insn);
               ("samples", Json.Int samples);
             ])
  in
  Json.to_string
    (Json.Obj
       [
         ("kind", Json.String "perf");
         ("kernel", Json.String kernel);
         ("cus", Json.Int cus);
         ("size", Json.Int size);
         ("correct", Json.Bool correct);
         ("classification", Json.String (Ggpu_pmu.Report.classify summary));
         ("cycles", Json.Int summary.Ggpu_pmu.Pmu.s_cycles);
         ("samples", Json.Int summary.Ggpu_pmu.Pmu.s_samples);
         ("buckets", Json.Obj buckets);
         ("hot", Json.List hot);
         ("stats", stats_json result.Ggpu_kernels.Run_fgpu.stats);
         ("hit_rate", hit_rate_json result.Ggpu_kernels.Run_fgpu.stats);
       ])

(* --- execution ----------------------------------------------------------- *)

(* Shared-artifact prefetch: one base netlist per CU count and one
   compilation per kernel serve the whole batch — the reason same-base
   requests are batched at all.  Runs on the caller, before the
   fan-out, so pool workers never contend on the artifact caches. *)
let prefetch t plan =
  match plan with
  | P_synth { spec; _ } -> (
      let key = Key.base_netlist ~cus:spec.Spec.num_cus in
      match Lru.find t.bases key with
      | Some base ->
          Metrics.incr t.c_nl_reuse;
          `Base base
      | None ->
          let base =
            Ggpu_rtlgen.Generate.generate_cus ~num_cus:spec.Spec.num_cus
          in
          Metrics.incr t.c_nl_build;
          ignore (Lru.add t.bases key base);
          `Base base)
  | P_sim { w; _ } -> (
      let key = Key.compiled_kernel w.Ggpu_kernels.Suite.name in
      match Lru.find t.compiled key with
      | Some compiled ->
          Metrics.incr t.c_k_reuse;
          `Compiled compiled
      | None ->
          let compiled =
            Ggpu_kernels.Codegen_fgpu.compile w.Ggpu_kernels.Suite.kernel
          in
          Metrics.incr t.c_k_compile;
          ignore (Lru.add t.compiled key compiled);
          `Compiled compiled)

let execute t plan artifact =
  match (plan, artifact) with
  | P_synth { tech; tech_name; spec }, `Base base -> (
      match Flow.synthesise_timed ~tech ~base spec with
      | syn -> Ok (synth_payload ~tech_name spec syn)
      | exception Dse.Cannot_meet { period_ns; best_ns; detail } ->
          Error
            (Printf.sprintf
               "cannot meet %.3f ns: best achievable %.3f ns; %s" period_ns
               best_ns detail))
  | P_sim { w; config; size; gsize; lsize; pmu }, `Compiled compiled -> (
      let kernel = w.Ggpu_kernels.Suite.name in
      let cus = config.Ggpu_fgpu.Config.num_cus in
      let collector =
        if pmu then
          Some
            (Ggpu_pmu.Pmu.create ~stride:t.cfg.pmu_stride ~num_cus:cus
               ~prog_len:(Array.length compiled.Ggpu_kernels.Codegen_fgpu.code)
               ())
        else None
      in
      let args = w.Ggpu_kernels.Suite.mk_args ~size in
      match
        Ggpu_kernels.Run_fgpu.run ~config ?pmu:collector
          ~backend:t.cfg.backend compiled ~args ~global_size:gsize
          ~local_size:lsize ()
      with
      | exception e -> Error (Printexc.to_string e)
      | result ->
          let correct =
            w.Ggpu_kernels.Suite.expected ~size args
            = Ggpu_kernels.Run_fgpu.output result
                w.Ggpu_kernels.Suite.output_buffer
          in
          Ok
            (match collector with
            | None -> sim_payload ~kernel ~cus ~size result ~correct
            | Some c ->
                let summary =
                  Ggpu_pmu.Pmu.summarize c
                    ~program:compiled.Ggpu_kernels.Codegen_fgpu.code
                in
                perf_payload ~kernel ~cus ~size result ~correct summary))
  | _ -> assert false

(* --- the queue ----------------------------------------------------------- *)

let pending t = Queue.length t.queue

let submit t req =
  if Queue.length t.queue >= t.cfg.queue_capacity then begin
    Metrics.incr t.c_rejected;
    `Rejected t.cfg.retry_after_ms
  end
  else begin
    Metrics.incr t.c_requests;
    Queue.add { req; arrival_ns = Metrics.now_ns () } t.queue;
    Metrics.gauge_max t.g_high_water (Queue.length t.queue);
    `Queued
  end

(* What each queued request resolved to during classification. *)
type slot =
  | S_ready of Proto.response  (* expired / planning error / cache hit *)
  | S_first of { key : string; plan : plan }  (* computes its key *)
  | S_dup of { key : string }  (* coalesces onto the first *)

(* --- span capture -------------------------------------------------------- *)

(* Each stepped request leaves with its span group: pre-measured
   Complete events for its queue wait, cache probe, (de)duplication,
   batch formation and execution.  The group is built whether or not
   the global tracer is armed — the daemon's flight recorder keeps the
   last N groups for post-mortem dumps — and mirrored into the tracer
   via [Trace.emit] when it is.  Pure observer: a handful of clock
   reads per request, nothing fed back into planning or payloads. *)
type telemetry = { resp : Proto.response; spans : Trace.event list }

let trace_args (req : Proto.request) =
  match req.Proto.trace with
  | Some { Proto.trace_id; span_id } -> Trace.ctx_args ~trace_id ~span_id
  | None -> []

let span ?tid ?(args = []) ~ts_ns ~dur_ns name req =
  {
    Trace.ph = Trace.Complete;
    name;
    ts_ns;
    dur_ns = max 0 dur_ns;
    tid = (match tid with Some t -> t | None -> (Domain.self () :> int));
    args = trace_args req @ args;
    values = [];
  }

let hist_for t (req : Proto.request) =
  match req.Proto.kind with
  | Proto.Sim _ -> t.h_sim
  | Proto.Synth _ -> t.h_synth
  | Proto.Perf _ -> t.h_perf

let step_traced t =
  if Queue.is_empty t.queue then []
  else begin
    Metrics.incr t.c_batches;
    let batch = List.of_seq (Queue.to_seq t.queue) in
    Queue.clear t.queue;
    let now = Metrics.now_ns () in
    let seen = Hashtbl.create 16 in
    let classify { req; arrival_ns } =
      let probe_start = Metrics.now_ns () in
      let expired =
        match req.Proto.deadline_ms with
        | Some d -> now - arrival_ns > d * 1_000_000
        | None -> false
      in
      let slot =
        if expired then begin
          Metrics.incr t.c_expired;
          S_ready
            {
              Proto.id = req.Proto.id;
              status = Proto.Expired;
              cached = false;
              key = "";
              result = "";
            }
        end
        else
          match plan_of_request req with
          | Error msg ->
              Metrics.incr t.c_failed;
              S_ready
                {
                  Proto.id = req.Proto.id;
                  status = Proto.Failed msg;
                  cached = false;
                  key = "";
                  result = "";
                }
          | Ok plan -> (
              let key = key_of_plan ~stride:t.cfg.pmu_stride plan in
              let shard = t.results.(Key.shard ~shards:t.cfg.shards key) in
              match Lru.find shard key with
              | Some payload ->
                  Metrics.incr t.c_hit;
                  S_ready
                    {
                      Proto.id = req.Proto.id;
                      status = Proto.Done;
                      cached = true;
                      key = Key.hash_hex key;
                      result = payload;
                    }
              | None ->
                  if Hashtbl.mem seen key then begin
                    Metrics.incr t.c_coalesced;
                    S_dup { key }
                  end
                  else begin
                    Hashtbl.add seen key ();
                    S_first { key; plan }
                  end)
      in
      (req, arrival_ns, slot, probe_start,
       Metrics.now_ns () - probe_start)
    in
    let slots = List.map classify batch in
    (* prefetch shared artifacts sequentially, then fan the unique
       misses out over the pool *)
    let firsts =
      List.filter_map
        (function
          | req, _, S_first { key; plan }, _, _ ->
              Some (req, key, plan, prefetch t plan)
          | _ -> None)
        slots
    in
    let form_done = Metrics.now_ns () in
    let run (_, key, plan, artifact) = (key, execute t plan artifact) in
    let outcomes =
      match t.pool with
      | Some pool when List.length firsts > 1 ->
          Ggpu_par.Parallel.Pool.map_timed pool run firsts
      | _ -> List.map (Ggpu_par.Parallel.timed_apply run) firsts
    in
    let batch_ev =
      {
        Trace.ph = Trace.Complete;
        name = "serve.batch";
        ts_ns = now;
        dur_ns = max 0 (form_done - now);
        tid = (Domain.self () :> int);
        args =
          [
            ("size", string_of_int (List.length batch));
            ("misses", string_of_int (List.length firsts));
          ];
        values = [];
      }
    in
    let by_key = Hashtbl.create 16 in
    let exec_evs = Hashtbl.create 16 in
    List.iter2
      (fun (req, key, _, _) ((key', outcome), timing) ->
        assert (String.equal key key');
        Hashtbl.replace by_key key outcome;
        Hashtbl.replace exec_evs key
          (span ~tid:timing.Ggpu_par.Parallel.t_domain
             ~args:[ ("key", Key.hash_hex key) ]
             ~ts_ns:timing.Ggpu_par.Parallel.t_start_ns
             ~dur_ns:timing.Ggpu_par.Parallel.t_dur_ns "serve.execute" req);
        match outcome with
        | Ok payload ->
            Metrics.incr t.c_miss;
            let shard = t.results.(Key.shard ~shards:t.cfg.shards key) in
            Metrics.add t.c_evict (Lru.add shard key payload)
        | Error _ -> Metrics.incr t.c_failed)
      firsts outcomes;
    let respond (req : Proto.request) ~key ~cached =
      match Hashtbl.find_opt by_key key with
      | Some (Ok payload) ->
          {
            Proto.id = req.Proto.id;
            status = Proto.Done;
            cached;
            key = Key.hash_hex key;
            result = payload;
          }
      | Some (Error msg) ->
          {
            Proto.id = req.Proto.id;
            status = Proto.Failed msg;
            cached = false;
            key = Key.hash_hex key;
            result = "";
          }
      | None -> assert false
    in
    let finish = Metrics.now_ns () in
    let results =
      List.map
        (fun (req, arrival_ns, slot, probe_start, probe_dur) ->
          Metrics.observe (hist_for t req)
            (max 0 ((finish - arrival_ns) / 1000));
          let queue_ev =
            span ~ts_ns:arrival_ns ~dur_ns:(now - arrival_ns) "serve.queue" req
          in
          let probe_ev outcome =
            span
              ~args:[ ("outcome", outcome) ]
              ~ts_ns:probe_start ~dur_ns:probe_dur "serve.probe" req
          in
          match slot with
          | S_ready resp ->
              let outcome =
                match resp.Proto.status with
                | Proto.Done -> "hit"
                | Proto.Expired -> "expired"
                | _ -> "error"
              in
              { resp; spans = [ queue_ev; probe_ev outcome ] }
          | S_first { key; _ } ->
              {
                resp = respond req ~key ~cached:false;
                spans =
                  [ queue_ev; probe_ev "miss"; batch_ev;
                    Hashtbl.find exec_evs key ];
              }
          | S_dup { key } ->
              let coalesce_ev =
                span
                  ~args:[ ("key", Key.hash_hex key) ]
                  ~ts_ns:(probe_start + probe_dur) ~dur_ns:0 "serve.coalesce"
                  req
              in
              {
                resp = respond req ~key ~cached:true;
                spans =
                  [ queue_ev; probe_ev "dup"; coalesce_ev; batch_ev;
                    Hashtbl.find exec_evs key ];
              })
        slots
    in
    (* mirror into the global tracer: per-request spans per request,
       shared batch/execute spans once *)
    if Trace.enabled () then begin
      Trace.emit batch_ev;
      Hashtbl.iter (fun _ ev -> Trace.emit ev) exec_evs;
      List.iter
        (fun { spans; _ } ->
          List.iter
            (fun (ev : Trace.event) ->
              match ev.Trace.name with
              | "serve.batch" | "serve.execute" -> ()
              | _ -> Trace.emit ev)
            spans)
        results
    end;
    results
  end

let step t = List.map (fun { resp; _ } -> resp) (step_traced t)

let process t reqs =
  let n = List.length reqs in
  let responses = Array.make n None in
  List.iteri
    (fun i req ->
      match submit t req with
      | `Queued -> ()
      | `Rejected retry_after_ms ->
          responses.(i) <-
            Some
              {
                Proto.id = req.Proto.id;
                status = Proto.Rejected { retry_after_ms };
                cached = false;
                key = "";
                result = "";
              })
    reqs;
  (* step answers queued requests in arrival order; they fill the input
     positions that were not rejected, in order *)
  let stepped = ref (step t) in
  for i = 0 to n - 1 do
    match (responses.(i), !stepped) with
    | None, resp :: rest ->
        responses.(i) <- Some resp;
        stepped := rest
    | _ -> ()
  done;
  Array.to_list responses
  |> List.map (function Some r -> r | None -> assert false)

let metrics t = Metrics.snapshot t.reg

let hit_rate t =
  let hits =
    Metrics.counter_value t.c_hit + Metrics.counter_value t.c_coalesced
  in
  let misses = Metrics.counter_value t.c_miss in
  if hits + misses = 0 then None
  else Some (float_of_int hits /. float_of_int (hits + misses))
