(** The serving core, socket-free: a bounded request queue with
    backpressure and deadlines, a sharded content-hash memo cache of
    serialised results, and batched execution over a persistent
    {!Ggpu_par.Parallel.Pool}.

    The engine is deliberately synchronous and single-owner (the daemon
    loop or a bench driver drives it); parallelism happens inside
    {!step}, which fans one batch of cache misses out over the pool.

    Determinism contract: a payload is a pure function of its memo key,
    so a cache hit returns the exact bytes the cold computation
    produced — enforced by tests across execution backends and domain
    counts. *)

type config = {
  cache_capacity : int;  (** result entries, across all shards *)
  shards : int;  (** cache shards (chosen by key hash) *)
  queue_capacity : int;  (** pending requests before backpressure *)
  retry_after_ms : int;  (** hint sent with [Rejected] *)
  pmu_stride : int;  (** hot-PC sampling period of [Perf] requests *)
  backend : Ggpu_fgpu.Gpu.backend;  (** simulator execution engine *)
}

val default_config : config
(** 4096 entries over 8 shards, queue of 256, retry hint 50 ms,
    stride 64, threaded backend. *)

type t

val create : ?config:config -> ?pool:Ggpu_par.Parallel.Pool.t -> unit -> t
(** [pool] is the shared domain pool batches fan out on; absent, misses
    run sequentially on the caller.  The engine never shuts the pool
    down — its owner does. *)

val pool_size : t -> int
(** Domains a batch runs on (1 without a pool) — the scheduler's
    batch-sizing input. *)

val tech_of_name : string -> Ggpu_tech.Tech.t option
(** ["65nm"] or ["28nm"]. *)

val key_of_request : ?pmu_stride:int -> Proto.request -> (string, string) result
(** The full memo key a request resolves to (after size normalisation),
    or a deterministic error for an unknown kernel/technology.
    [pmu_stride] (default as in {!default_config}) enters [Perf] keys.
    Exposed for key-property tests and for clients that want to reason
    about cache identity. *)

val submit : t -> Proto.request -> [ `Queued | `Rejected of int ]
(** Enqueue, or reject with a retry-after hint (ms) when the queue is
    at capacity. *)

val pending : t -> int

val step : t -> Proto.response list
(** Drain everything queued as one batch: answer hits from the cache,
    expire overdue requests, coalesce duplicate keys, prefetch shared
    base netlists / kernel compilations, fan the remaining unique
    misses out over the pool, fill the cache, and return responses in
    arrival order. *)

type telemetry = {
  resp : Proto.response;
  spans : Ggpu_obs.Trace.event list;
      (** the request's engine-side span group: pre-measured [Complete]
          events for its queue wait ([serve.queue]), cache probe
          ([serve.probe], with an [outcome] arg), coalescing
          ([serve.coalesce]), batch formation ([serve.batch], shared by
          the batch) and execution ([serve.execute], on the worker
          domain that ran it; shared by coalesced duplicates).  Events
          of a wire-traced request carry its [trace_id]/[span_id]
          args. *)
}

val step_traced : t -> telemetry list
(** {!step}, returning each response with its span group.  Groups are
    captured unconditionally (the daemon's flight recorder depends on
    them) and mirrored into the global {!Ggpu_obs.Trace} buffers when
    tracing is enabled.  [step] is [step_traced] minus the spans. *)

val latency_buckets : int list
(** Bucket bounds of the [serve.latency.*] histograms: log-spaced
    integer microseconds (powers of two, 1 µs to ~16.8 s). *)

val process : t -> Proto.request list -> Proto.response list
(** Convenience driver: submit each request ([Rejected] responses are
    synthesised inline for overflow) and {!step} until drained;
    responses come back in input order. *)

val metrics : t -> Ggpu_obs.Metrics.snapshot
(** The engine's own registry: [serve.requests], [serve.batches],
    [serve.cache.hit]/[miss]/[eviction]/[coalesced],
    [serve.netlist.build]/[reuse], [serve.kernel.compile]/[reuse],
    [serve.rejected], [serve.expired], [serve.failed], the
    [serve.queue.high_water] / [serve.pool.domains] gauges, and the
    per-kind submit-to-response latency histograms
    [serve.latency.sim]/[synth]/[perf] (integer microseconds in
    {!latency_buckets}) that `bench serve` and the daemon's stats both
    derive their p50/p99/p999 from. *)

val hit_rate : t -> float option
(** (hits + coalesced) / (hits + coalesced + misses); [None] before any
    keyed request. *)
