(* SplitMix64-style generator: the same stream on every OCaml version
   and platform, so replay workloads are comparable across machines. *)

let next_state s = Int64.add s 0x9E3779B97F4A7C15L

let mix_bits z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* The parameter universe.  Kept deliberately small: a service replay
   is interesting because the Table-I-style grid keeps re-asking for
   the same configurations.  Synths stop at 4 CUs so a cold miss stays
   cheap enough for thousands-of-request replays. *)
let kernels =
  [ "mat_mul"; "copy"; "vec_mul"; "fir"; "div_int"; "xcorr"; "parallel_sel" ]

let sim_cus = [ 1; 2; 4 ]
let sim_sizes = [ 256; 1024 ]
let synth_cus = [ 1; 2; 4 ]
let synth_freqs = [ 500; 590; 667 ]
let perf_sizes = [ 256 ]

let universe =
  List.length kernels * List.length sim_cus * List.length sim_sizes
  + (List.length synth_cus * List.length synth_freqs)
  + (List.length kernels * List.length sim_cus * List.length perf_sizes)

let mix ?tech ~seed ~n () =
  let state = ref (mix_bits (Int64.of_int (succ seed))) in
  let draw bound =
    state := next_state !state;
    Int64.to_int
      (Int64.rem
         (Int64.logand (mix_bits !state) Int64.max_int)
         (Int64.of_int bound))
  in
  let pick xs = List.nth xs (draw (List.length xs)) in
  List.init n (fun i ->
      let kind =
        match draw 10 with
        | 0 | 1 | 2 | 3 | 4 ->
            Proto.Sim { kernel = pick kernels; cus = pick sim_cus;
                        size = pick sim_sizes }
        | 5 | 6 | 7 ->
            Proto.Synth { cus = pick synth_cus; freq_mhz = pick synth_freqs }
        | _ ->
            Proto.Perf { kernel = pick kernels; cus = pick sim_cus;
                         size = pick perf_sizes }
      in
      Proto.mk_request ?tech ~id:(i + 1) kind)
