(** Content-hashed memo-cache keys.

    A key is the full canonical rendering of everything the cached
    result is a function of — request kind, normalised geometry, the
    complete simulator configuration ({!Ggpu_fgpu.Config.canonical}),
    the spec ({!Ggpu_core.Spec.canonical}) and a technology
    fingerprint.  The cache is keyed on the whole string (collisions
    are impossible by construction); the 64-bit FNV-1a hash is used
    only to pick a shard. *)

val fnv1a64 : string -> int64
(** FNV-1a over the bytes of the string. *)

val hash_hex : string -> string
(** [fnv1a64] as 16 lowercase hex digits (wire-visible key digest). *)

val shard : shards:int -> string -> int
(** Shard index in [0, shards) from the key's hash. *)

val tech : Ggpu_tech.Tech.t -> string
(** Technology fingerprint: the model name plus a content hash of every
    numeric parameter, so a retuned model never aliases a cached
    result. *)

val synth : tech:Ggpu_tech.Tech.t -> Ggpu_core.Spec.t -> string
(** Key of a synthesis / DSE request (netlist generation + STA + DSE
    ride on this result). *)

val sim :
  config:Ggpu_fgpu.Config.t ->
  kernel:string ->
  global_size:int ->
  local_size:int ->
  string
(** Key of a simulation request.  Execution backend and domain fan-out
    are deliberately not part of the key: simulated results are
    bit-identical across both (enforced by tests). *)

val perf :
  config:Ggpu_fgpu.Config.t ->
  kernel:string ->
  global_size:int ->
  local_size:int ->
  stride:int ->
  string
(** Key of a PMU perf-report request; [stride] is the hot-PC sampling
    period, which changes the report (but never the simulated run). *)

val base_netlist : cus:int -> string
(** Key of a memoized pre-DSE base netlist, shared by every synth
    request of the same CU count — the batching axis.  RTL generation
    is technology-agnostic (the paper's point), so tech is not part of
    this key. *)

val compiled_kernel : string -> string
(** Key of a memoized FGPU compilation of the named suite kernel. *)
