module Json = Ggpu_obs.Json
module Trace = Ggpu_obs.Trace
module Metrics = Ggpu_obs.Metrics

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

(* The client is the trace originator: every request leaves with a
   trace context (unless the caller minted one), so the daemon's spans
   can be stitched to the client-side round-trip span by id. *)
let with_trace (req : Proto.request) =
  match req.Proto.trace with
  | Some _ -> req
  | None ->
      {
        req with
        Proto.trace =
          Some
            {
              Proto.trace_id = Trace.new_trace_id ();
              span_id = Trace.new_span_id ();
            };
      }

let root_span (req : Proto.request) ~ts_ns ~dur_ns =
  match req.Proto.trace with
  | None -> ()
  | Some { Proto.trace_id; span_id } ->
      Trace.complete
        ~args:(Trace.ctx_args ~trace_id ~span_id)
        ~ts_ns ~dur_ns:(max 0 dur_ns) "client.request"

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close t = try close_out t.oc with Sys_error _ -> ()

let send_line t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let recv_line t =
  match input_line t.ic with
  | line -> Ok line
  | exception End_of_file -> Error "connection closed by daemon"

let call t req =
  let req = with_trace req in
  let t0 = Metrics.now_ns () in
  send_line t (Proto.request_to_line req);
  let r = Result.bind (recv_line t) Proto.response_of_line in
  root_span req ~ts_ns:t0 ~dur_ns:(Metrics.now_ns () - t0);
  r

let control t c =
  send_line t (Proto.control_to_line c);
  Result.bind (recv_line t) Json.parse

let ping t =
  match control t Proto.Ping with
  | Ok j -> Json.member "ok" j = Some (Json.Bool true)
  | Error _ -> false

let stats t = control t Proto.Stats

let shutdown t =
  match control t Proto.Shutdown with
  | Ok j -> Json.member "ok" j = Some (Json.Bool true)
  | Error _ -> false

let dump t =
  match control t Proto.Dump with
  | Error _ as e -> e
  | Ok j ->
      if Json.member "trace" j = None then
        Error "dump reply carried no trace document"
      else Ok j

let scrape t =
  match control t Proto.Telemetry with
  | Error _ as e -> e
  | Ok j -> (
      match Json.member "exposition" j with
      | Some (Json.String s) -> Ok s
      | _ -> Error "telemetry reply carried no exposition text")

type replay_summary = {
  sent : int;
  ok : int;
  cached : int;
  rejected : int;
  expired : int;
  failed : int;
  wall_s : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  throughput_rps : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int (n - 1) +. 0.5)))

let replay ?(batch = 64) t reqs =
  let batch = max 1 batch in
  let lat_us = ref [] in
  let ok = ref 0 and cached = ref 0 and rejected = ref 0 in
  let expired = ref 0 and failed = ref 0 and sent = ref 0 in
  let t0 = Unix.gettimeofday () in
  let rec window = function
    | [] -> ()
    | reqs ->
        let rec take n = function
          | x :: rest when n > 0 ->
              let chunk, rest = take (n - 1) rest in
              (x :: chunk, rest)
          | rest -> ([], rest)
        in
        let chunk, rest = take batch reqs in
        let chunk = List.map with_trace chunk in
        (* pipeline: write the whole window, then collect its replies;
           latency is measured from the window's send to each reply *)
        let sent_at = Unix.gettimeofday () in
        let sent_at_ns = Metrics.now_ns () in
        List.iter (fun r -> send_line t (Proto.request_to_line r)) chunk;
        incr_sent chunk sent_at sent_at_ns;
        window rest
  and incr_sent chunk sent_at sent_at_ns =
    List.iter
      (fun (req : Proto.request) ->
        incr sent;
        match Result.bind (recv_line t) Proto.response_of_line with
        | Error msg -> failwith ("replay: " ^ msg)
        | Ok resp ->
            if resp.Proto.id <> req.Proto.id then
              failwith
                (Printf.sprintf "replay: response %d for request %d"
                   resp.Proto.id req.Proto.id);
            root_span req ~ts_ns:sent_at_ns
              ~dur_ns:(Metrics.now_ns () - sent_at_ns);
            lat_us :=
              ((Unix.gettimeofday () -. sent_at) *. 1e6) :: !lat_us;
            (match resp.Proto.status with
            | Proto.Done ->
                incr ok;
                if resp.Proto.cached then incr cached
            | Proto.Rejected _ -> incr rejected
            | Proto.Expired -> incr expired
            | Proto.Failed _ -> incr failed))
      chunk
  in
  window reqs;
  let wall_s = Unix.gettimeofday () -. t0 in
  let lats = Array.of_list !lat_us in
  Array.sort compare lats;
  let mean_us =
    if Array.length lats = 0 then 0.
    else Array.fold_left ( +. ) 0. lats /. float_of_int (Array.length lats)
  in
  {
    sent = !sent;
    ok = !ok;
    cached = !cached;
    rejected = !rejected;
    expired = !expired;
    failed = !failed;
    wall_s;
    mean_us;
    p50_us = percentile lats 0.50;
    p99_us = percentile lats 0.99;
    throughput_rps =
      (if wall_s > 0. then float_of_int !sent /. wall_s else 0.);
  }

let summary_json s =
  Json.Obj
    [
      ("sent", Json.Int s.sent);
      ("ok", Json.Int s.ok);
      ("cached", Json.Int s.cached);
      ("rejected", Json.Int s.rejected);
      ("expired", Json.Int s.expired);
      ("failed", Json.Int s.failed);
      ("wall_s", Json.Float s.wall_s);
      ("mean_us", Json.Float s.mean_us);
      ("p50_us", Json.Float s.p50_us);
      ("p99_us", Json.Float s.p99_us);
      ("throughput_rps", Json.Float s.throughput_rps);
    ]
