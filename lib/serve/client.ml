module Json = Ggpu_obs.Json

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close t = try close_out t.oc with Sys_error _ -> ()

let send_line t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let recv_line t =
  match input_line t.ic with
  | line -> Ok line
  | exception End_of_file -> Error "connection closed by daemon"

let call t req =
  send_line t (Proto.request_to_line req);
  Result.bind (recv_line t) Proto.response_of_line

let control t c =
  send_line t (Proto.control_to_line c);
  Result.bind (recv_line t) Json.parse

let ping t =
  match control t Proto.Ping with
  | Ok j -> Json.member "ok" j = Some (Json.Bool true)
  | Error _ -> false

let stats t = control t Proto.Stats

let shutdown t =
  match control t Proto.Shutdown with
  | Ok j -> Json.member "ok" j = Some (Json.Bool true)
  | Error _ -> false

type replay_summary = {
  sent : int;
  ok : int;
  cached : int;
  rejected : int;
  expired : int;
  failed : int;
  wall_s : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  throughput_rps : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int (n - 1) +. 0.5)))

let replay ?(batch = 64) t reqs =
  let batch = max 1 batch in
  let lat_us = ref [] in
  let ok = ref 0 and cached = ref 0 and rejected = ref 0 in
  let expired = ref 0 and failed = ref 0 and sent = ref 0 in
  let t0 = Unix.gettimeofday () in
  let rec window = function
    | [] -> ()
    | reqs ->
        let rec take n = function
          | x :: rest when n > 0 ->
              let chunk, rest = take (n - 1) rest in
              (x :: chunk, rest)
          | rest -> ([], rest)
        in
        let chunk, rest = take batch reqs in
        (* pipeline: write the whole window, then collect its replies;
           latency is measured from the window's send to each reply *)
        let sent_at = Unix.gettimeofday () in
        List.iter (fun r -> send_line t (Proto.request_to_line r)) chunk;
        incr_sent chunk sent_at;
        window rest
  and incr_sent chunk sent_at =
    List.iter
      (fun (req : Proto.request) ->
        incr sent;
        match Result.bind (recv_line t) Proto.response_of_line with
        | Error msg -> failwith ("replay: " ^ msg)
        | Ok resp ->
            if resp.Proto.id <> req.Proto.id then
              failwith
                (Printf.sprintf "replay: response %d for request %d"
                   resp.Proto.id req.Proto.id);
            lat_us :=
              ((Unix.gettimeofday () -. sent_at) *. 1e6) :: !lat_us;
            (match resp.Proto.status with
            | Proto.Done ->
                incr ok;
                if resp.Proto.cached then incr cached
            | Proto.Rejected _ -> incr rejected
            | Proto.Expired -> incr expired
            | Proto.Failed _ -> incr failed))
      chunk
  in
  window reqs;
  let wall_s = Unix.gettimeofday () -. t0 in
  let lats = Array.of_list !lat_us in
  Array.sort compare lats;
  let mean_us =
    if Array.length lats = 0 then 0.
    else Array.fold_left ( +. ) 0. lats /. float_of_int (Array.length lats)
  in
  {
    sent = !sent;
    ok = !ok;
    cached = !cached;
    rejected = !rejected;
    expired = !expired;
    failed = !failed;
    wall_s;
    mean_us;
    p50_us = percentile lats 0.50;
    p99_us = percentile lats 0.99;
    throughput_rps =
      (if wall_s > 0. then float_of_int !sent /. wall_s else 0.);
  }

let summary_json s =
  Json.Obj
    [
      ("sent", Json.Int s.sent);
      ("ok", Json.Int s.ok);
      ("cached", Json.Int s.cached);
      ("rejected", Json.Int s.rejected);
      ("expired", Json.Int s.expired);
      ("failed", Json.Int s.failed);
      ("wall_s", Json.Float s.wall_s);
      ("mean_us", Json.Float s.mean_us);
      ("p50_us", Json.Float s.p50_us);
      ("p99_us", Json.Float s.p99_us);
      ("throughput_rps", Json.Float s.throughput_rps);
    ]
