(** Bounded string-keyed LRU map: the storage cell of the serve memo
    cache.  One shard of {!Engine}'s sharded cache; not thread-safe on
    its own (the engine serialises access). *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Lookup; a hit promotes the entry to most-recently-used. *)

val add : 'a t -> string -> 'a -> int
(** Insert or replace (either way the entry becomes most-recently-used)
    and return how many entries were evicted to stay within capacity
    (0 or 1). *)

val to_alist : 'a t -> (string * 'a) list
(** Most-recently-used first (tests). *)
