(* Classic hashtable + doubly-linked recency list.  [head] is the
   most-recently-used end; eviction pops [tail]. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  capacity : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable length : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity < 1";
  { capacity; table = Hashtbl.create 64; head = None; tail = None; length = 0 }

let capacity t = t.capacity
let length t = t.length

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some node ->
      unlink t node;
      push_front t node;
      Some node.value

let add t key value =
  match Hashtbl.find_opt t.table key with
  | Some node ->
      node.value <- value;
      unlink t node;
      push_front t node;
      0
  | None ->
      let node = { key; value; prev = None; next = None } in
      Hashtbl.replace t.table key node;
      push_front t node;
      t.length <- t.length + 1;
      if t.length <= t.capacity then 0
      else begin
        let victim = Option.get t.tail in
        unlink t victim;
        Hashtbl.remove t.table victim.key;
        t.length <- t.length - 1;
        1
      end

let to_alist t =
  let rec go acc = function
    | None -> List.rev acc
    | Some node -> go ((node.key, node.value) :: acc) node.next
  in
  go [] t.head
