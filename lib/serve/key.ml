(* Keys are full canonical strings; hashing is only for shard choice
   and wire-visible digests, never for identity. *)

let fnv1a64 s =
  let offset_basis = 0xcbf29ce484222325L in
  let prime = 0x100000001b3L in
  let h = ref offset_basis in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let hash_hex s = Printf.sprintf "%016Lx" (fnv1a64 s)

let shard ~shards key =
  if shards < 1 then invalid_arg "Key.shard: shards < 1";
  Int64.to_int (Int64.rem (Int64.logand (fnv1a64 key) Int64.max_int)
                  (Int64.of_int shards))

(* The tech models are plain records of floats and ints; Marshal gives
   a canonical byte rendering of every parameter without naming each
   field of four nested model types.  The hash only has to separate
   models within one server process, where Marshal is deterministic. *)
let tech (t : Ggpu_tech.Tech.t) =
  Printf.sprintf "%s:%s" t.Ggpu_tech.Tech.name
    (hash_hex (Marshal.to_string t []))

let synth ~tech:t spec =
  Printf.sprintf "synth|tech=%s|%s" (tech t) (Ggpu_core.Spec.canonical spec)

let sim ~config ~kernel ~global_size ~local_size =
  Printf.sprintf "sim|k=%s;g=%d;l=%d|%s" kernel global_size local_size
    (Ggpu_fgpu.Config.canonical config)

let perf ~config ~kernel ~global_size ~local_size ~stride =
  Printf.sprintf "perf|stride=%d|k=%s;g=%d;l=%d|%s" stride kernel global_size
    local_size
    (Ggpu_fgpu.Config.canonical config)

let base_netlist ~cus = Printf.sprintf "base|cus=%d" cus
let compiled_kernel name = "compiled|" ^ name
