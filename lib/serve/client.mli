(** Blocking NDJSON client for the planning daemon, plus the replay
    driver used by the CLI smoke and the load bench. *)

type t

val connect : socket:string -> t
(** @raise Unix.Unix_error when the daemon is not listening. *)

val close : t -> unit

val call : t -> Proto.request -> (Proto.response, string) result
(** One request, one response (responses arrive in request order per
    connection). *)

val ping : t -> bool
val stats : t -> (Ggpu_obs.Json.t, string) result

val shutdown : t -> bool
(** Ask the daemon to drain and exit; [true] once it acknowledges. *)

type replay_summary = {
  sent : int;
  ok : int;
  cached : int;  (** [Done] responses served from cache or coalesced *)
  rejected : int;
  expired : int;
  failed : int;
  wall_s : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  throughput_rps : float;
}

val replay : ?batch:int -> t -> Proto.request list -> replay_summary
(** Pipeline the requests in write-then-read windows of [batch]
    (default 64; clamped to at least 1) and record per-request
    round-trip latency.  [Rejected] responses are counted, not
    retried. *)

val summary_json : replay_summary -> Ggpu_obs.Json.t
