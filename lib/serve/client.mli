(** Blocking NDJSON client for the planning daemon, plus the replay
    driver used by the CLI smoke and the load bench. *)

type t

val connect : socket:string -> t
(** @raise Unix.Unix_error when the daemon is not listening. *)

val close : t -> unit

val with_trace : Proto.request -> Proto.request
(** Attach a freshly minted trace context ({!Ggpu_obs.Trace.new_trace_id})
    unless the request already carries one.  {!call} and {!replay} apply
    this to every request they send — the client is the trace
    originator. *)

val call : t -> Proto.request -> (Proto.response, string) result
(** One request, one response (responses arrive in request order per
    connection).  The request leaves with a trace context, and the
    round trip is recorded as a [client.request] span (carrying the
    same [trace_id]) when the process tracer is enabled. *)

val ping : t -> bool
val stats : t -> (Ggpu_obs.Json.t, string) result

val shutdown : t -> bool
(** Ask the daemon to drain and exit; [true] once it acknowledges. *)

val dump : t -> (Ggpu_obs.Json.t, string) result
(** The daemon's flight-recorder dump: an object whose ["trace"] member
    is a complete Chrome-trace document of the retained span groups
    (plus [recorded]/[kept]/[dropped] counts and a [slow] summary). *)

val scrape : t -> (string, string) result
(** The daemon's metrics registry in text exposition format (one
    [counter]/[gauge]/[histogram]/[bucket] line each). *)

type replay_summary = {
  sent : int;
  ok : int;
  cached : int;  (** [Done] responses served from cache or coalesced *)
  rejected : int;
  expired : int;
  failed : int;
  wall_s : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  throughput_rps : float;
}

val replay : ?batch:int -> t -> Proto.request list -> replay_summary
(** Pipeline the requests in write-then-read windows of [batch]
    (default 64; clamped to at least 1) and record per-request
    round-trip latency.  [Rejected] responses are counted, not
    retried. *)

val summary_json : replay_summary -> Ggpu_obs.Json.t
