(* Single-threaded select loop; all parallelism lives behind
   [Engine.step]'s pool fan-out.  Connections are independent NDJSON
   streams: requests keep their caller-chosen ids on the wire, and are
   renumbered onto a private sequence internally so concurrent clients
   cannot collide inside the engine.

   Observability: every request leaves one span group — the daemon's
   socket-read and reply spans wrapped around the engine's
   queue/probe/batch/execute spans — kept in an always-on bounded
   flight recorder (plus a separate ring for slow requests), so a
   [dump] control can reconstruct a Perfetto-loadable trace of the
   recent past without the daemon having been started with tracing
   armed.  All of it is observer-only: payload bytes and responses are
   untouched. *)

module Json = Ggpu_obs.Json
module Metrics = Ggpu_obs.Metrics
module Trace = Ggpu_obs.Trace
module Ring = Ggpu_obs.Ring
module Pool = Ggpu_par.Parallel.Pool

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* bytes of a not-yet-terminated incoming line *)
  mutable alive : bool;
}

(* Where a renumbered request came from, plus what the recorder needs
   to close its group: when it was read off the socket, how long the
   parse-and-submit took, and its wire trace context. *)
type route = {
  r_conn : conn;
  r_orig : int;  (* caller-chosen id *)
  r_read_ts : int;
  r_read_dur : int;
  r_trace : Proto.trace_ctx option;
}

(* One flight-recorder entry: a request's full span group with enough
   summary to render the slow log without replaying the events. *)
type group = {
  g_id : int;  (* caller-chosen id *)
  g_trace : Proto.trace_ctx option;
  g_latency_us : int;  (* socket read to reply flushed *)
  g_slow : bool;
  g_events : Trace.event list;
}

type state = {
  engine : Engine.t;
  pool : Pool.t;
  listen_fd : Unix.file_descr;
  mutable conns : conn list;
  (* engine-side sequence id -> route *)
  routes : (int, route) Hashtbl.t;
  mutable seq : int;
  mutable stopping : bool;
  log : string -> unit;
  started_ns : int;
  slow_threshold_us : int;
  recorder : group Ring.t;
  slow : group Ring.t;
}

let write_line conn s =
  if conn.alive then begin
    let line = s ^ "\n" in
    let len = String.length line in
    let pos = ref 0 in
    try
      while !pos < len do
        let n =
          try Unix.write_substring conn.fd line !pos (len - !pos)
          with Unix.Unix_error (Unix.EINTR, _, _) -> 0
        in
        pos := !pos + n
      done
    with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      conn.alive <- false
  end

let unkeyed id status =
  { Proto.id; status; cached = false; key = ""; result = "" }

let mk_span ?(args = []) ~trace ~ts_ns ~dur_ns name =
  let targs =
    match trace with
    | Some { Proto.trace_id; span_id } -> Trace.ctx_args ~trace_id ~span_id
    | None -> []
  in
  {
    Trace.ph = Trace.Complete;
    name;
    ts_ns;
    dur_ns = max 0 dur_ns;
    tid = (Domain.self () :> int);
    args = targs @ args;
    values = [];
  }

let stats_line st =
  let now = Metrics.now_ns () in
  Json.to_string
    (Json.Obj
       [
         ("control", Json.String "stats");
         ("pool_domains", Json.Int (Engine.pool_size st.engine));
         ("pending", Json.Int (Engine.pending st.engine));
         ("queue_depth", Json.Int (Engine.pending st.engine));
         ( "uptime_s",
           Json.Float (float_of_int (now - st.started_ns) /. 1e9) );
         ( "hit_rate",
           match Engine.hit_rate st.engine with
           | Some r -> Json.Float r
           | None -> Json.Null );
         ( "recorder",
           Json.Obj
             [
               ("capacity", Json.Int (Ring.capacity st.recorder));
               ("recorded", Json.Int (Ring.total st.recorder));
               ("kept", Json.Int (Ring.length st.recorder));
               ("slow", Json.Int (Ring.total st.slow));
               ("slow_threshold_us", Json.Int st.slow_threshold_us);
             ] );
         ( "metrics",
           Ggpu_obs.Metrics.snapshot_to_json (Engine.metrics st.engine) );
       ])

(* The dump document: every event of every retained group (the main
   ring plus slow-log survivors that aged out of it), deduplicated —
   batch/execute spans are shared across a batch's groups — and
   time-ordered.  Rendering is a pure function of the retained groups,
   so two dumps with no traffic in between are byte-identical. *)
let dump_doc groups =
  let events =
    List.concat_map (fun g -> g.g_events) groups
    |> List.sort_uniq compare
    |> List.stable_sort (fun (a : Trace.event) b ->
           Int.compare a.Trace.ts_ns b.Trace.ts_ns)
  in
  Trace.events_to_json events

let dump_line st =
  let groups = Ring.to_list st.slow @ Ring.to_list st.recorder in
  let slow_summary =
    Ring.to_list st.slow
    |> List.map (fun g ->
           Json.Obj
             ([ ("id", Json.Int g.g_id) ]
             @ (match g.g_trace with
               | Some { Proto.trace_id; _ } ->
                   [ ("trace_id", Json.String trace_id) ]
               | None -> [])
             @ [ ("latency_us", Json.Int g.g_latency_us) ]))
  in
  Json.to_string
    (Json.Obj
       [
         ("control", Json.String "dump");
         ("recorded", Json.Int (Ring.total st.recorder));
         ("kept", Json.Int (Ring.length st.recorder));
         ( "dropped",
           Json.Int (Ring.total st.recorder - Ring.length st.recorder) );
         ("slow", Json.List slow_summary);
         ("trace", dump_doc groups);
       ])

let telemetry_line st =
  Json.to_string
    (Json.Obj
       [
         ("control", Json.String "telemetry");
         ( "exposition",
           Json.String (Metrics.expose (Engine.metrics st.engine)) );
       ])

let handle_line st conn ~read_ts line =
  match Proto.incoming_of_line line with
  | Error msg ->
      write_line conn (Proto.response_to_line (unkeyed 0 (Proto.Failed msg)))
  | Ok (Proto.Control Proto.Ping) ->
      write_line conn
        (Json.to_string
           (Json.Obj
              [ ("control", Json.String "ping"); ("ok", Json.Bool true) ]))
  | Ok (Proto.Control Proto.Stats) -> write_line conn (stats_line st)
  | Ok (Proto.Control Proto.Dump) -> write_line conn (dump_line st)
  | Ok (Proto.Control Proto.Telemetry) -> write_line conn (telemetry_line st)
  | Ok (Proto.Control Proto.Shutdown) ->
      st.stopping <- true;
      write_line conn
        (Json.to_string
           (Json.Obj
              [ ("control", Json.String "shutdown"); ("ok", Json.Bool true) ]))
  | Ok (Proto.Req req) -> (
      st.seq <- st.seq + 1;
      let seq = st.seq in
      match Engine.submit st.engine { req with Proto.id = seq } with
      | `Queued ->
          Hashtbl.replace st.routes seq
            {
              r_conn = conn;
              r_orig = req.Proto.id;
              r_read_ts = read_ts;
              r_read_dur = Metrics.now_ns () - read_ts;
              r_trace = req.Proto.trace;
            }
      | `Rejected retry_after_ms ->
          write_line conn
            (Proto.response_to_line
               (unkeyed req.Proto.id (Proto.Rejected { retry_after_ms }))))

(* One engine batch; replies routed back to whichever connection each
   request came in on, with its original id restored, and each
   request's span group — read + engine stages + reply — pushed into
   the flight recorder. *)
let pump st =
  if Engine.pending st.engine > 0 then
    List.iter
      (fun { Engine.resp; spans } ->
        match Hashtbl.find_opt st.routes resp.Proto.id with
        | None -> ()
        | Some { r_conn; r_orig; r_read_ts; r_read_dur; r_trace } ->
            Hashtbl.remove st.routes resp.Proto.id;
            let read_ev =
              mk_span ~trace:r_trace ~ts_ns:r_read_ts ~dur_ns:r_read_dur
                "serve.read"
            in
            let reply_start = Metrics.now_ns () in
            write_line r_conn
              (Proto.response_to_line { resp with Proto.id = r_orig });
            let reply_end = Metrics.now_ns () in
            let reply_ev =
              mk_span ~trace:r_trace ~ts_ns:reply_start
                ~dur_ns:(reply_end - reply_start) "serve.reply"
            in
            if Trace.enabled () then begin
              Trace.emit read_ev;
              Trace.emit reply_ev
            end;
            let latency_us = max 0 ((reply_end - r_read_ts) / 1000) in
            let slow = latency_us > st.slow_threshold_us in
            let g =
              {
                g_id = r_orig;
                g_trace = r_trace;
                g_latency_us = latency_us;
                g_slow = slow;
                g_events = (read_ev :: spans) @ [ reply_ev ];
              }
            in
            Ring.push st.recorder g;
            if slow then begin
              Ring.push st.slow g;
              st.log
                (Printf.sprintf "slow request id=%d%s: %d us (threshold %d)"
                   r_orig
                   (match r_trace with
                   | Some { Proto.trace_id; _ } -> " trace=" ^ trace_id
                   | None -> "")
                   latency_us st.slow_threshold_us)
            end)
      (Engine.step_traced st.engine)

let drop_conn st conn =
  conn.alive <- false;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  st.conns <- List.filter (fun c -> c != conn) st.conns

let read_ready st conn =
  let chunk = Bytes.create 4096 in
  let read_ts = Metrics.now_ns () in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      drop_conn st conn
  | 0 -> drop_conn st conn
  | n ->
      for i = 0 to n - 1 do
        let c = Bytes.get chunk i in
        if c = '\n' then begin
          let line = Buffer.contents conn.buf in
          Buffer.clear conn.buf;
          if String.trim line <> "" then handle_line st conn ~read_ts line
        end
        else Buffer.add_char conn.buf c
      done

let accept_ready st =
  match Unix.accept st.listen_fd with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | fd, _ ->
      st.conns <- { fd; buf = Buffer.create 256; alive = true } :: st.conns

let run ?(engine_config = Engine.default_config) ?domains
    ?(recorder_capacity = 256) ?(slow_ms = 500) ?(log = fun _ -> ()) ~socket
    () =
  (* broken client connections must surface as EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let pool = Pool.create ?domains () in
  let engine = Engine.create ~config:engine_config ~pool () in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd 64;
  let st =
    {
      engine;
      pool;
      listen_fd;
      conns = [];
      routes = Hashtbl.create 64;
      seq = 0;
      stopping = false;
      log;
      started_ns = Metrics.now_ns ();
      slow_threshold_us = max 1 slow_ms * 1000;
      recorder = Ring.create ~capacity:(max 1 recorder_capacity);
      slow = Ring.create ~capacity:(max 1 (recorder_capacity / 4));
    }
  in
  let request_stop _ = st.stopping <- true in
  let prev_term =
    try Some (Sys.signal Sys.sigterm (Sys.Signal_handle request_stop))
    with Invalid_argument _ -> None
  in
  let prev_int =
    try Some (Sys.signal Sys.sigint (Sys.Signal_handle request_stop))
    with Invalid_argument _ -> None
  in
  log
    (Printf.sprintf "serving on %s (%d domains)" socket
       (Engine.pool_size engine));
  while not st.stopping do
    let fds = st.listen_fd :: List.map (fun c -> c.fd) st.conns in
    match Unix.select fds [] [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
        if List.memq st.listen_fd ready then accept_ready st;
        List.iter
          (fun conn -> if List.memq conn.fd ready then read_ready st conn)
          st.conns;
        pump st
  done;
  (* graceful drain: no new connections, finish queued work, flush *)
  log "shutting down: draining queued work";
  (try Unix.close st.listen_fd with Unix.Unix_error _ -> ());
  while Engine.pending st.engine > 0 do
    pump st
  done;
  List.iter
    (fun conn -> try Unix.close conn.fd with Unix.Unix_error _ -> ())
    st.conns;
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  Pool.shutdown pool;
  (match prev_term with Some b -> Sys.set_signal Sys.sigterm b | None -> ());
  (match prev_int with Some b -> Sys.set_signal Sys.sigint b | None -> ());
  log "stopped"
