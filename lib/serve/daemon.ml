(* Single-threaded select loop; all parallelism lives behind
   [Engine.step]'s pool fan-out.  Connections are independent NDJSON
   streams: requests keep their caller-chosen ids on the wire, and are
   renumbered onto a private sequence internally so concurrent clients
   cannot collide inside the engine. *)

module Json = Ggpu_obs.Json
module Pool = Ggpu_par.Parallel.Pool

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* bytes of a not-yet-terminated incoming line *)
  mutable alive : bool;
}

type state = {
  engine : Engine.t;
  pool : Pool.t;
  listen_fd : Unix.file_descr;
  mutable conns : conn list;
  (* engine-side sequence id -> (connection, caller id) *)
  routes : (int, conn * int) Hashtbl.t;
  mutable seq : int;
  mutable stopping : bool;
  log : string -> unit;
}

let write_line conn s =
  if conn.alive then begin
    let line = s ^ "\n" in
    let len = String.length line in
    let pos = ref 0 in
    try
      while !pos < len do
        let n =
          try Unix.write_substring conn.fd line !pos (len - !pos)
          with Unix.Unix_error (Unix.EINTR, _, _) -> 0
        in
        pos := !pos + n
      done
    with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      conn.alive <- false
  end

let unkeyed id status =
  { Proto.id; status; cached = false; key = ""; result = "" }

let stats_line st =
  Json.to_string
    (Json.Obj
       [
         ("control", Json.String "stats");
         ("pool_domains", Json.Int (Engine.pool_size st.engine));
         ("pending", Json.Int (Engine.pending st.engine));
         ( "hit_rate",
           match Engine.hit_rate st.engine with
           | Some r -> Json.Float r
           | None -> Json.Null );
         ( "metrics",
           Ggpu_obs.Metrics.snapshot_to_json (Engine.metrics st.engine) );
       ])

let handle_line st conn line =
  match Proto.incoming_of_line line with
  | Error msg ->
      write_line conn (Proto.response_to_line (unkeyed 0 (Proto.Failed msg)))
  | Ok (Proto.Control Proto.Ping) ->
      write_line conn
        (Json.to_string
           (Json.Obj
              [ ("control", Json.String "ping"); ("ok", Json.Bool true) ]))
  | Ok (Proto.Control Proto.Stats) -> write_line conn (stats_line st)
  | Ok (Proto.Control Proto.Shutdown) ->
      st.stopping <- true;
      write_line conn
        (Json.to_string
           (Json.Obj
              [ ("control", Json.String "shutdown"); ("ok", Json.Bool true) ]))
  | Ok (Proto.Req req) -> (
      st.seq <- st.seq + 1;
      let seq = st.seq in
      match Engine.submit st.engine { req with Proto.id = seq } with
      | `Queued -> Hashtbl.replace st.routes seq (conn, req.Proto.id)
      | `Rejected retry_after_ms ->
          write_line conn
            (Proto.response_to_line
               (unkeyed req.Proto.id (Proto.Rejected { retry_after_ms }))))

(* One engine batch; replies routed back to whichever connection each
   request came in on, with its original id restored. *)
let pump st =
  if Engine.pending st.engine > 0 then
    List.iter
      (fun (resp : Proto.response) ->
        match Hashtbl.find_opt st.routes resp.Proto.id with
        | None -> ()
        | Some (conn, orig_id) ->
            Hashtbl.remove st.routes resp.Proto.id;
            write_line conn
              (Proto.response_to_line { resp with Proto.id = orig_id }))
      (Engine.step st.engine)

let drop_conn st conn =
  conn.alive <- false;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  st.conns <- List.filter (fun c -> c != conn) st.conns

let read_ready st conn =
  let chunk = Bytes.create 4096 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      drop_conn st conn
  | 0 -> drop_conn st conn
  | n ->
      for i = 0 to n - 1 do
        let c = Bytes.get chunk i in
        if c = '\n' then begin
          let line = Buffer.contents conn.buf in
          Buffer.clear conn.buf;
          if String.trim line <> "" then handle_line st conn line
        end
        else Buffer.add_char conn.buf c
      done

let accept_ready st =
  match Unix.accept st.listen_fd with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | fd, _ ->
      st.conns <- { fd; buf = Buffer.create 256; alive = true } :: st.conns

let run ?(engine_config = Engine.default_config) ?domains
    ?(log = fun _ -> ()) ~socket () =
  (* broken client connections must surface as EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let pool = Pool.create ?domains () in
  let engine = Engine.create ~config:engine_config ~pool () in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd 64;
  let st =
    {
      engine;
      pool;
      listen_fd;
      conns = [];
      routes = Hashtbl.create 64;
      seq = 0;
      stopping = false;
      log;
    }
  in
  let request_stop _ = st.stopping <- true in
  let prev_term =
    try Some (Sys.signal Sys.sigterm (Sys.Signal_handle request_stop))
    with Invalid_argument _ -> None
  in
  let prev_int =
    try Some (Sys.signal Sys.sigint (Sys.Signal_handle request_stop))
    with Invalid_argument _ -> None
  in
  log
    (Printf.sprintf "serving on %s (%d domains)" socket
       (Engine.pool_size engine));
  while not st.stopping do
    let fds = st.listen_fd :: List.map (fun c -> c.fd) st.conns in
    match Unix.select fds [] [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
        if List.memq st.listen_fd ready then accept_ready st;
        List.iter
          (fun conn -> if List.memq conn.fd ready then read_ready st conn)
          st.conns;
        pump st
  done;
  (* graceful drain: no new connections, finish queued work, flush *)
  log "shutting down: draining queued work";
  (try Unix.close st.listen_fd with Unix.Unix_error _ -> ());
  while Engine.pending st.engine > 0 do
    pump st
  done;
  List.iter
    (fun conn -> try Unix.close conn.fd with Unix.Unix_error _ -> ())
    st.conns;
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  Pool.shutdown pool;
  (match prev_term with Some b -> Sys.set_signal Sys.sigterm b | None -> ());
  (match prev_int with Some b -> Sys.set_signal Sys.sigint b | None -> ());
  log "stopped"
