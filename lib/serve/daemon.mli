(** The planning daemon: a single-threaded [Unix.select] loop speaking
    newline-delimited JSON ({!Proto}) over a Unix-domain socket, driving
    one {!Engine} whose batches fan out over a persistent
    {!Ggpu_par.Parallel.Pool} created once at startup.

    Each select round drains every complete line from every ready
    connection into the engine queue, then runs one {!Engine.step} — so
    requests that arrive together are batched together, sharing base
    netlists and kernel compilations.

    Every request leaves a span group (the daemon's [serve.read] and
    [serve.reply] spans around the engine's per-stage spans, see
    {!Engine.step_traced}) in an always-on bounded flight recorder;
    requests slower than the slow threshold additionally land in a
    separate slow ring and the log.  A [dump] control returns the
    retained groups as one Chrome-trace document, and a [telemetry]
    control returns the engine registry in text exposition format —
    both without the daemon having been started with tracing armed.

    Shutdown (a [shutdown] control line, SIGTERM or SIGINT) is graceful:
    the listener closes, queued work drains through the engine, replies
    flush, and the socket path is unlinked. *)

val run :
  ?engine_config:Engine.config ->
  ?domains:int ->
  ?recorder_capacity:int ->
  ?slow_ms:int ->
  ?log:(string -> unit) ->
  socket:string ->
  unit ->
  unit
(** Serve on [socket] (an existing path is replaced) until asked to shut
    down.  [domains] sizes the shared pool (default
    {!Ggpu_par.Parallel.default_domains}); [recorder_capacity] bounds
    the flight recorder (default 256 span groups; the slow ring keeps a
    quarter of that); [slow_ms] is the slow-request threshold (default
    500 ms); [log] receives one-line lifecycle and slow-request
    messages (default: silent). *)
