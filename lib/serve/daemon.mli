(** The planning daemon: a single-threaded [Unix.select] loop speaking
    newline-delimited JSON ({!Proto}) over a Unix-domain socket, driving
    one {!Engine} whose batches fan out over a persistent
    {!Ggpu_par.Parallel.Pool} created once at startup.

    Each select round drains every complete line from every ready
    connection into the engine queue, then runs one {!Engine.step} — so
    requests that arrive together are batched together, sharing base
    netlists and kernel compilations.

    Shutdown (a [shutdown] control line, SIGTERM or SIGINT) is graceful:
    the listener closes, queued work drains through the engine, replies
    flush, and the socket path is unlinked. *)

val run :
  ?engine_config:Engine.config ->
  ?domains:int ->
  ?log:(string -> unit) ->
  socket:string ->
  unit ->
  unit
(** Serve on [socket] (an existing path is replaced) until asked to shut
    down.  [domains] sizes the shared pool (default
    {!Ggpu_par.Parallel.default_domains}); [log] receives one-line
    lifecycle messages (default: silent). *)
