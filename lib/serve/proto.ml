(* Newline-delimited JSON wire format.  Requests parse strictly;
   responses embed the cached payload bytes verbatim (the payload is
   JSON the engine itself emitted, so splicing it into the response
   line keeps the line valid while preserving byte identity). *)

open Ggpu_obs

type kind =
  | Synth of { cus : int; freq_mhz : int }
  | Sim of { kernel : string; cus : int; size : int }
  | Perf of { kernel : string; cus : int; size : int }

type trace_ctx = { trace_id : string; span_id : string }

type request = {
  id : int;
  tech : string;
  kind : kind;
  deadline_ms : int option;
  trace : trace_ctx option;
}

type status =
  | Done
  | Rejected of { retry_after_ms : int }
  | Expired
  | Failed of string

type response = {
  id : int;
  status : status;
  cached : bool;
  key : string;
  result : string;
}

type control = Ping | Stats | Shutdown | Dump | Telemetry
type incoming = Req of request | Control of control

let mk_request ?deadline_ms ?(tech = "65nm") ?trace ~id kind =
  { id; tech; kind; deadline_ms; trace }

let kind_name = function Synth _ -> "synth" | Sim _ -> "sim" | Perf _ -> "perf"

let request_to_line r =
  let kind_fields =
    match r.kind with
    | Synth { cus; freq_mhz } ->
        [ ("cus", Json.Int cus); ("freq_mhz", Json.Int freq_mhz) ]
    | Sim { kernel; cus; size } | Perf { kernel; cus; size } ->
        [
          ("kernel", Json.String kernel);
          ("cus", Json.Int cus);
          ("size", Json.Int size);
        ]
  in
  Json.to_string
    (Json.Obj
       ([ ("id", Json.Int r.id); ("kind", Json.String (kind_name r.kind)) ]
       @ kind_fields
       @ [ ("tech", Json.String r.tech) ]
       @ (match r.deadline_ms with
         | Some d -> [ ("deadline_ms", Json.Int d) ]
         | None -> [])
       @
       match r.trace with
       | Some { trace_id; span_id } ->
           [
             ("trace_id", Json.String trace_id);
             ("span_id", Json.String span_id);
           ]
       | None -> []))

let control_to_line c =
  Json.to_string
    (Json.Obj
       [
         ( "control",
           Json.String
             (match c with
             | Ping -> "ping"
             | Stats -> "stats"
             | Shutdown -> "shutdown"
             | Dump -> "dump"
             | Telemetry -> "telemetry") );
       ])

let int_member name j =
  match Json.member name j with
  | Some (Json.Int i) -> Ok i
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let string_member name j =
  match Json.member name j with
  | Some (Json.String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let ( let* ) = Result.bind

let request_of_json j =
  let* id = int_member "id" j in
  let* kind_s = string_member "kind" j in
  let tech =
    match Json.member "tech" j with Some (Json.String s) -> s | _ -> "65nm"
  in
  let deadline_ms =
    match Json.member "deadline_ms" j with Some (Json.Int d) -> Some d | _ -> None
  in
  let trace =
    (* both ids or neither: a lone field is treated as absent rather
       than failing the request — trace context is advisory *)
    match (Json.member "trace_id" j, Json.member "span_id" j) with
    | Some (Json.String trace_id), Some (Json.String span_id) ->
        Some { trace_id; span_id }
    | _ -> None
  in
  let* kind =
    match kind_s with
    | "synth" ->
        let* cus = int_member "cus" j in
        let* freq_mhz = int_member "freq_mhz" j in
        Ok (Synth { cus; freq_mhz })
    | "sim" | "perf" ->
        let* kernel = string_member "kernel" j in
        let* cus = int_member "cus" j in
        let* size = int_member "size" j in
        Ok
          (if kind_s = "sim" then Sim { kernel; cus; size }
           else Perf { kernel; cus; size })
    | other -> Error (Printf.sprintf "unknown request kind %S" other)
  in
  Ok { id; tech; kind; deadline_ms; trace }

let incoming_of_line line =
  let* j = Json.parse line in
  match Json.member "control" j with
  | Some (Json.String "ping") -> Ok (Control Ping)
  | Some (Json.String "stats") -> Ok (Control Stats)
  | Some (Json.String "shutdown") -> Ok (Control Shutdown)
  | Some (Json.String "dump") -> Ok (Control Dump)
  | Some (Json.String "telemetry") -> Ok (Control Telemetry)
  | Some _ -> Error "unknown control message"
  | None ->
      let* r = request_of_json j in
      Ok (Req r)

let status_fields = function
  | Done -> [ ("status", Json.String "ok") ]
  | Rejected { retry_after_ms } ->
      [
        ("status", Json.String "rejected");
        ("retry_after_ms", Json.Int retry_after_ms);
      ]
  | Expired -> [ ("status", Json.String "expired") ]
  | Failed msg ->
      [ ("status", Json.String "failed"); ("error", Json.String msg) ]

let response_to_line r =
  (* render the envelope without the payload, then splice the payload
     bytes in verbatim as the (last) "result" field, so cached results
     reach the wire byte-identical to the cold computation *)
  let envelope =
    Json.Obj
      ([ ("id", Json.Int r.id) ]
      @ status_fields r.status
      @ [ ("cached", Json.Bool r.cached) ]
      @ if r.key = "" then [] else [ ("key", Json.String r.key) ])
  in
  let s = Json.to_string envelope in
  if r.result = "" then s
  else
    String.sub s 0 (String.length s - 1)
    ^ ",\"result\":" ^ r.result ^ "}"

let response_of_line line =
  let* j = Json.parse line in
  let* id = int_member "id" j in
  let* status_s = string_member "status" j in
  let* status =
    match status_s with
    | "ok" -> Ok Done
    | "rejected" ->
        let retry =
          match Json.member "retry_after_ms" j with
          | Some (Json.Int d) -> d
          | _ -> 0
        in
        Ok (Rejected { retry_after_ms = retry })
    | "expired" -> Ok Expired
    | "failed" ->
        let msg =
          match Json.member "error" j with Some (Json.String m) -> m | _ -> ""
        in
        Ok (Failed msg)
    | other -> Error (Printf.sprintf "unknown status %S" other)
  in
  let cached =
    match Json.member "cached" j with Some (Json.Bool b) -> b | _ -> false
  in
  let key =
    match Json.member "key" j with Some (Json.String k) -> k | _ -> ""
  in
  let result =
    match Json.member "result" j with
    | Some (Json.Null) | None -> ""
    | Some payload -> Json.to_string payload
  in
  Ok { id; status; cached; key; result }

let result_json r =
  if r.status <> Done || r.result = "" then None
  else match Json.parse r.result with Ok j -> Some j | Error _ -> None
