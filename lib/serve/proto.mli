(** Wire types of the planning service: newline-delimited JSON, one
    request or response object per line, encoded with the dependency-free
    {!Ggpu_obs.Json}.

    A response's [result] field carries the exact cached payload bytes:
    the engine memoizes the serialised string, so a cache hit is
    byte-identical to the cold computation by construction. *)

type kind =
  | Synth of { cus : int; freq_mhz : int }
      (** netlist generation + DSE + STA: one Table-I row *)
  | Sim of { kernel : string; cus : int; size : int }
      (** simulate one suite kernel; [size] is rounded to the
          workload's legal-size grid before execution and keying *)
  | Perf of { kernel : string; cus : int; size : int }
      (** simulate with the PMU attached: stall buckets, hot PCs,
          bottleneck classification *)

type trace_ctx = {
  trace_id : string;  (** client-minted; tags every server-side span *)
  span_id : string;  (** the client's root span for this request *)
}
(** Wire-propagated trace context ({!Ggpu_obs.Trace.new_trace_id}):
    present on a request, it stitches the daemon's queue/probe/execute/
    reply child spans to the client's root span in one Perfetto view.
    Purely observational — it never enters a memo key or a payload. *)

type request = {
  id : int;  (** caller-chosen; echoed on the response *)
  tech : string;  (** technology model name: ["65nm"] or ["28nm"] *)
  kind : kind;
  deadline_ms : int option;
      (** drop the request (status [Expired]) if it has waited in the
          queue longer than this before execution starts *)
  trace : trace_ctx option;
}

type status =
  | Done
  | Rejected of { retry_after_ms : int }
      (** bounded-queue backpressure: resubmit after the hint *)
  | Expired  (** queued past its [deadline_ms] *)
  | Failed of string  (** deterministic error, e.g. unreachable target *)

type response = {
  id : int;
  status : status;
  cached : bool;  (** served from the memo cache (or batch-coalesced) *)
  key : string;  (** 16-hex digest of the memo key; [""] when unkeyed *)
  result : string;  (** serialised payload JSON; [""] unless [Done] *)
}

type control =
  | Ping
  | Stats  (** counters + histograms + uptime/queue depth *)
  | Shutdown
  | Dump  (** flight-recorder contents as a Chrome trace document *)
  | Telemetry  (** full registry snapshot in text exposition format *)

type incoming = Req of request | Control of control
(** One parsed client line. *)

val mk_request :
  ?deadline_ms:int -> ?tech:string -> ?trace:trace_ctx -> id:int -> kind ->
  request
(** [tech] defaults to ["65nm"]; [trace] to none (untraced). *)

val request_to_line : request -> string
(** One line, no trailing newline. *)

val control_to_line : control -> string
val incoming_of_line : string -> (incoming, string) result
val response_to_line : response -> string
val response_of_line : string -> (response, string) result

val result_json : response -> Ggpu_obs.Json.t option
(** Parse a [Done] response's payload. *)

val kind_name : kind -> string
(** ["synth"], ["sim"] or ["perf"]. *)
