(* Static timing analysis.

   Computes worst arrival times over the combinational graph between
   sequential elements (flip-flops and SRAM macros), then checks every
   register-to-register path against a clock period:

     launch clk-to-q  +  combinational delay  +  setup  +  skew  <= T

   Launch and setup numbers come from the technology: flip-flops from
   the standard-cell model, macros from the memory-compiler model (which
   is how macro geometry ends up on the critical path - the pivot of the
   paper's whole design-space exploration). *)

open Ggpu_hw
open Ggpu_tech

type path = {
  launch : Cell.t; (* sequential cell the path starts at *)
  capture : Cell.t; (* sequential cell the path ends at *)
  through : Cell.t list; (* combinational cells, launch-to-capture order *)
  delay_ns : float; (* total including clk-to-q, setup and skew *)
}

type report = {
  worst : path;
  max_delay_ns : float;
  fmax_mhz : float;
  endpoint_count : int;
}

exception No_paths

let launch_delay tech cell =
  match Cell.kind cell with
  | Cell.Dff -> tech.Tech.stdcell.Stdcell.dff_clk_to_q_ns
  | Cell.Macro spec -> (Memlib.query tech.Tech.memory spec).Memlib.clk_to_q_ns
  | Cell.Comb _ -> invalid_arg "launch_delay: combinational cell"

let setup_time tech cell =
  match Cell.kind cell with
  | Cell.Dff -> tech.Tech.stdcell.Stdcell.dff_setup_ns
  | Cell.Macro spec -> (Memlib.query tech.Tech.memory spec).Memlib.setup_ns
  | Cell.Comb _ -> invalid_arg "setup_time: combinational cell"

let cell_delay tech cell =
  match Cell.kind cell with
  | Cell.Comb op ->
      Stdcell.comb_delay_ns tech.Tech.stdcell op ~width:(Cell.output_width cell)
  | Cell.Dff | Cell.Macro _ -> invalid_arg "cell_delay: sequential cell"

(* Arrival time and worst predecessor for every net driven by the
   combinational subgraph.  Sequential outputs seed with clk-to-q.
   [net_launch] caches the sequential cell the worst path into each net
   launches from (absent for primary-input-rooted cones), so endpoint
   scans need not re-walk predecessor chains. *)
type arrivals = {
  net_arrival : (int, float) Hashtbl.t;
  (* net id -> (driving comb cell, worst input net) *)
  net_pred : (int, Cell.t * Net.t option) Hashtbl.t;
  net_launch : (int, Cell.t) Hashtbl.t;
}

(* Worst input arrival and resulting output arrival of a comb cell, as a
   pure function of the current arrival table.  Shared by the full
   recomputation and the incremental engine so both produce bit-identical
   results. *)
let eval_cell tech arrivals cell =
  let arrival net =
    Option.value ~default:0.0
      (Hashtbl.find_opt arrivals.net_arrival (Net.id net))
  in
  let worst_in =
    List.fold_left
      (fun acc net ->
        let t = arrival net in
        match acc with
        | Some (best, _) when best >= t -> acc
        | _ -> Some (t, Some net))
      None (Cell.inputs cell)
  in
  let in_time, in_net =
    match worst_in with Some (t, net) -> (t, net) | None -> (0.0, None)
  in
  let launch =
    match in_net with
    | None -> None
    | Some prev -> Hashtbl.find_opt arrivals.net_launch (Net.id prev)
  in
  (in_time +. cell_delay tech cell, in_net, launch)

let compute_arrivals tech netlist =
  let arrivals =
    {
      net_arrival = Hashtbl.create 1024;
      net_pred = Hashtbl.create 1024;
      net_launch = Hashtbl.create 1024;
    }
  in
  (* seed: sequential outputs *)
  Netlist.iter_cells netlist (fun cell ->
      if Cell.is_sequential cell then begin
        let t = launch_delay tech cell in
        List.iter
          (fun net ->
            Hashtbl.replace arrivals.net_arrival (Net.id net) t;
            Hashtbl.replace arrivals.net_launch (Net.id net) cell)
          (Cell.outputs cell)
      end);
  (* propagate in topological order *)
  List.iter
    (fun cell ->
      let out_time, in_net, launch = eval_cell tech arrivals cell in
      List.iter
        (fun net ->
          Hashtbl.replace arrivals.net_arrival (Net.id net) out_time;
          Hashtbl.replace arrivals.net_pred (Net.id net) (cell, in_net);
          match launch with
          | Some l -> Hashtbl.replace arrivals.net_launch (Net.id net) l
          | None -> Hashtbl.remove arrivals.net_launch (Net.id net))
        (Cell.outputs cell))
    (Topo.order netlist);
  arrivals

(* Walk predecessor pointers from an endpoint input net back to the
   launching sequential cell. *)
let trace_path netlist arrivals ~endpoint_net ~capture tech =
  let rec walk net acc =
    match Hashtbl.find_opt arrivals.net_pred (Net.id net) with
    | Some (cell, Some prev) -> walk prev (cell :: acc)
    | Some (cell, None) -> (cell :: acc, None)
    | None -> (acc, Netlist.driver_of netlist net)
  in
  let through, launch_opt = walk endpoint_net [] in
  let launch =
    match launch_opt with
    | Some cell when Cell.is_sequential cell -> Some cell
    | Some _ | None -> None
  in
  match launch with
  | None -> None (* path from a primary input; not a register path *)
  | Some launch ->
      let arrival =
        Option.value ~default:0.0
          (Hashtbl.find_opt arrivals.net_arrival (Net.id endpoint_net))
      in
      let delay_ns =
        arrival +. setup_time tech capture
        +. tech.Tech.stdcell.Stdcell.clock_skew_ns
      in
      Some { launch; capture; through; delay_ns }

(* Worst register-to-register path over a (full or incrementally
   maintained) arrival table.  Endpoints are scanned in ascending cell-id
   order so the reported worst path is deterministic, and only endpoint
   nets that actually produce a register path are counted — paths from
   primary inputs carry no [net_launch] entry and must not inflate the
   endpoint count.  The cached launch origin makes the scan O(1) per
   endpoint; only the single worst path is traced back through the
   predecessor chain. *)
let seq_ids netlist =
  Netlist.fold_cells netlist ~init:[] ~f:(fun acc cell ->
      if Cell.is_sequential cell then Cell.id cell :: acc else acc)
  |> List.sort Int.compare

let report_over_ids tech netlist arrivals ids =
  (* worst endpoint: (delay, endpoint net, capture cell) *)
  let worst = ref None in
  let endpoints = ref 0 in
  let skew = tech.Tech.stdcell.Stdcell.clock_skew_ns in
  List.iter
    (fun id ->
      let cell = Netlist.find_cell netlist id in
      let setup = lazy (setup_time tech cell) in
      List.iter
        (fun net ->
          if Hashtbl.mem arrivals.net_launch (Net.id net) then begin
            incr endpoints;
            let arrival =
              Option.value ~default:0.0
                (Hashtbl.find_opt arrivals.net_arrival (Net.id net))
            in
            let delay_ns = arrival +. Lazy.force setup +. skew in
            match !worst with
            | Some (best, _, _) when best >= delay_ns -> ()
            | Some _ | None -> worst := Some (delay_ns, net, cell)
          end)
        (Cell.inputs cell))
    ids;
  match !worst with
  | None -> raise No_paths
  | Some (_, endpoint_net, capture) -> (
      match trace_path netlist arrivals ~endpoint_net ~capture tech with
      | None ->
          (* cannot happen: the endpoint has a launch entry *)
          raise No_paths
      | Some worst ->
          {
            worst;
            max_delay_ns = worst.delay_ns;
            fmax_mhz = 1000.0 /. worst.delay_ns;
            endpoint_count = !endpoints;
          })

let report_of_arrivals tech netlist arrivals =
  report_over_ids tech netlist arrivals (seq_ids netlist)

(* Full analysis: worst register-to-register path. *)
let analyse tech netlist =
  Ggpu_obs.Trace.with_span "sta.full" @@ fun () ->
  Ggpu_obs.Metrics.count "sta.full_analyses" 1;
  report_of_arrivals tech netlist (compute_arrivals tech netlist)

(* --- Incremental engine ---------------------------------------------- *)

(* Caches the arrival tables across analyses of the same (mutating)
   netlist.  On each analysis the engine reads the netlist's change
   journal and relaxes only the fan-out cone of the touched cells with a
   worklist, instead of re-walking the whole graph.  Arrival times are a
   unique fixpoint of the max-plus propagation on the DAG, so the result
   is bit-identical to a full recomputation. *)
type engine = {
  e_tech : Tech.t;
  e_netlist : Netlist.t;
  mutable e_revision : int; (* netlist revision the tables reflect *)
  mutable e_arrivals : arrivals;
  mutable e_seq : int list; (* sequential cell ids, ascending *)
  mutable e_report : (int * report) option;
  mutable e_full : int;
  mutable e_incremental : int;
  mutable e_relaxed : int;
}

type engine_stats = {
  full_recomputes : int;
  incremental_updates : int;
  cells_relaxed : int; (* comb cells relaxed by incremental updates *)
}

let make_engine tech netlist =
  Ggpu_obs.Trace.with_span "sta.engine_init" @@ fun () ->
  {
    e_tech = tech;
    e_netlist = netlist;
    e_revision = Netlist.revision netlist;
    e_arrivals = compute_arrivals tech netlist;
    e_seq = seq_ids netlist;
    e_report = None;
    e_full = 1;
    e_incremental = 0;
    e_relaxed = 0;
  }

let engine_stats e =
  {
    full_recomputes = e.e_full;
    incremental_updates = e.e_incremental;
    cells_relaxed = e.e_relaxed;
  }

let incremental_update engine ~cells ~nets =
  let tech = engine.e_tech and nl = engine.e_netlist in
  let { net_arrival; net_pred; net_launch } = engine.e_arrivals in
  let queue = Queue.create () in
  let queued = Hashtbl.create 64 in
  let enqueue cell =
    if Cell.is_comb cell then begin
      let id = Cell.id cell in
      if not (Hashtbl.mem queued id) then begin
        Hashtbl.add queued id ();
        Queue.add id queue
      end
    end
  in
  let enqueue_readers net = List.iter enqueue (Netlist.readers_of nl net) in
  (* a sequential driver re-seeds its output nets with clk-to-q *)
  let reseed_seq_output cell net =
    let nid = Net.id net in
    let t = launch_delay tech cell in
    let same_launch =
      match Hashtbl.find_opt net_launch nid with
      | Some l -> Cell.id l = Cell.id cell
      | None -> false
    in
    if
      Hashtbl.find_opt net_arrival nid <> Some t
      || Hashtbl.mem net_pred nid || not same_launch
    then begin
      Hashtbl.replace net_arrival nid t;
      Hashtbl.remove net_pred nid;
      Hashtbl.replace net_launch nid cell;
      enqueue_readers net
    end
  in
  let touch_net nid =
    let net = Netlist.find_net nl nid in
    match Netlist.driver_of nl net with
    | None ->
        (* driver removed and not replaced: the net reverts to the
           primary-input default (no table entry) *)
        if
          Hashtbl.mem net_arrival nid || Hashtbl.mem net_pred nid
          || Hashtbl.mem net_launch nid
        then begin
          Hashtbl.remove net_arrival nid;
          Hashtbl.remove net_pred nid;
          Hashtbl.remove net_launch nid;
          enqueue_readers net
        end
    | Some driver when Cell.is_sequential driver -> reseed_seq_output driver net
    | Some driver -> enqueue driver
  in
  List.iter touch_net nets;
  List.iter
    (fun id ->
      if Netlist.mem_cell nl id then begin
        let cell = Netlist.find_cell nl id in
        if Cell.is_comb cell then enqueue cell
        else List.iter (reseed_seq_output cell) (Cell.outputs cell)
      end
      (* removed cells: their output nets are in [nets] *))
    cells;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    Hashtbl.remove queued id;
    if Netlist.mem_cell nl id then begin
      let cell = Netlist.find_cell nl id in
      if Cell.is_comb cell then begin
        engine.e_relaxed <- engine.e_relaxed + 1;
        let out_time, in_net, launch = eval_cell tech engine.e_arrivals cell in
        List.iter
          (fun net ->
            let nid = Net.id net in
            let same_arrival = Hashtbl.find_opt net_arrival nid = Some out_time in
            let same_pred =
              match Hashtbl.find_opt net_pred nid with
              | Some (prev_cell, prev_net) ->
                  Cell.id prev_cell = Cell.id cell
                  && (match (prev_net, in_net) with
                     | None, None -> true
                     | Some a, Some b -> Net.id a = Net.id b
                     | Some _, None | None, Some _ -> false)
              | None -> false
            in
            let same_launch =
              match (Hashtbl.find_opt net_launch nid, launch) with
              | None, None -> true
              | Some a, Some b -> Cell.id a = Cell.id b
              | Some _, None | None, Some _ -> false
            in
            (* always refresh the stored cell values (they may have been
               rewired), but only propagate on a real change *)
            Hashtbl.replace net_arrival nid out_time;
            Hashtbl.replace net_pred nid (cell, in_net);
            (match launch with
            | Some l -> Hashtbl.replace net_launch nid l
            | None -> Hashtbl.remove net_launch nid);
            if not (same_arrival && same_pred && same_launch) then
              enqueue_readers net)
          (Cell.outputs cell)
      end
    end
  done

(* Keep the cached sequential-id list equal to [seq_ids e_netlist]:
   every added, removed or rewired cell id appears in the journal, so
   dropping the touched ids and re-inserting the ones that are (still)
   sequential restores the invariant. *)
let update_seq_ids engine touched =
  match touched with
  | [] -> ()
  | touched ->
      let nl = engine.e_netlist in
      let touched = List.sort_uniq Int.compare touched in
      let keep =
        List.filter (fun id -> not (List.mem id touched)) engine.e_seq
      in
      let add =
        List.filter
          (fun id ->
            Netlist.mem_cell nl id
            && Cell.is_sequential (Netlist.find_cell nl id))
          touched
      in
      engine.e_seq <- List.merge Int.compare keep add

let sync engine =
  let rev = Netlist.revision engine.e_netlist in
  if rev <> engine.e_revision then begin
    (match Netlist.changes_since engine.e_netlist engine.e_revision with
    | Some { Netlist.cells = []; nets = [] } -> ()
    | Some { Netlist.cells; nets } ->
        let before = engine.e_relaxed in
        Ggpu_obs.Trace.with_span "sta.incremental" (fun () ->
            incremental_update engine ~cells ~nets);
        update_seq_ids engine cells;
        engine.e_incremental <- engine.e_incremental + 1;
        Ggpu_obs.Metrics.count "sta.incremental_updates" 1;
        Ggpu_obs.Metrics.observe_named "sta.cone_cells"
          (engine.e_relaxed - before)
    | None ->
        (* journal truncated: too far behind, recompute from scratch *)
        Ggpu_obs.Trace.with_span "sta.full" (fun () ->
            engine.e_arrivals <- compute_arrivals engine.e_tech engine.e_netlist;
            engine.e_seq <- seq_ids engine.e_netlist);
        engine.e_full <- engine.e_full + 1;
        Ggpu_obs.Metrics.count "sta.full_recomputes" 1);
    engine.e_revision <- rev;
    engine.e_report <- None
  end

let engine_arrivals engine =
  sync engine;
  engine.e_arrivals

let engine_analyse engine =
  sync engine;
  match engine.e_report with
  | Some (rev, report) when rev = engine.e_revision -> report
  | Some _ | None ->
      let report =
        report_over_ids engine.e_tech engine.e_netlist engine.e_arrivals
          engine.e_seq
      in
      engine.e_report <- Some (engine.e_revision, report);
      report

let slack_ns report ~period_ns = period_ns -. report.max_delay_ns
let meets report ~period_ns = slack_ns report ~period_ns >= 0.0

let pp_path fmt path =
  Format.fprintf fmt "%s -> %s (%.3f ns, %d cells)"
    (Cell.name path.launch) (Cell.name path.capture) path.delay_ns
    (List.length path.through)
