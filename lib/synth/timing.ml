(* Static timing analysis.

   Computes worst arrival times over the combinational graph between
   sequential elements (flip-flops and SRAM macros), then checks every
   register-to-register path against a clock period:

     launch clk-to-q  +  combinational delay  +  setup  +  skew  <= T

   Launch and setup numbers come from the technology: flip-flops from
   the standard-cell model, macros from the memory-compiler model (which
   is how macro geometry ends up on the critical path - the pivot of the
   paper's whole design-space exploration).

   Two interchangeable engines implement the propagation:

   - the legacy hashtable engine (the original implementation, kept as
     the differential-testing reference and the PR 1 perf baseline):
     arrival tables are [(int, float) Hashtbl.t] and the incremental
     path is a FIFO worklist over the dirty fan-out cone;
   - the CSR engine (the default): cells and nets are numbered densely
     by their already-dense ids, arrivals live in unboxed [float array]s,
     the combinational graph is levelized once per build, the full sweep
     walks cells in level order over flat compressed-sparse-row
     adjacency (parallelizable across independent cones, which never
     share a net), and the incremental path re-sweeps dirty cones
     through a level-bucket queue so every dirty cell is relaxed at most
     once per sync instead of once per worklist visit.

   Arrival times are the unique fixpoint of max-plus propagation on the
   DAG, and every tie-break below mirrors the legacy code exactly
   (first-max over input pins, ascending-id endpoint scans, strictly
   greater replacement), so the two engines are bit-identical - enforced
   by the differential qcheck properties in [test/test_csr.ml]. *)

open Ggpu_hw
open Ggpu_tech

type path = {
  launch : Cell.t; (* sequential cell the path starts at *)
  capture : Cell.t; (* sequential cell the path ends at *)
  through : Cell.t list; (* combinational cells, launch-to-capture order *)
  delay_ns : float; (* total including clk-to-q, setup and skew *)
}

type report = {
  worst : path;
  max_delay_ns : float;
  fmax_mhz : float;
  endpoint_count : int;
}

exception No_paths

let launch_delay tech cell =
  match Cell.kind cell with
  | Cell.Dff -> tech.Tech.stdcell.Stdcell.dff_clk_to_q_ns
  | Cell.Macro spec -> (Memlib.query tech.Tech.memory spec).Memlib.clk_to_q_ns
  | Cell.Comb _ -> invalid_arg "launch_delay: combinational cell"

let setup_time tech cell =
  match Cell.kind cell with
  | Cell.Dff -> tech.Tech.stdcell.Stdcell.dff_setup_ns
  | Cell.Macro spec -> (Memlib.query tech.Tech.memory spec).Memlib.setup_ns
  | Cell.Comb _ -> invalid_arg "setup_time: combinational cell"

let cell_delay tech cell =
  match Cell.kind cell with
  | Cell.Comb op ->
      Stdcell.comb_delay_ns tech.Tech.stdcell op ~width:(Cell.output_width cell)
  | Cell.Dff | Cell.Macro _ -> invalid_arg "cell_delay: sequential cell"

(* Arrival time and worst predecessor for every net driven by the
   combinational subgraph.  Sequential outputs seed with clk-to-q.
   [net_launch] caches the sequential cell the worst path into each net
   launches from (absent for primary-input-rooted cones), so endpoint
   scans need not re-walk predecessor chains. *)
type arrivals = {
  net_arrival : (int, float) Hashtbl.t;
  (* net id -> (driving comb cell, worst input net) *)
  net_pred : (int, Cell.t * Net.t option) Hashtbl.t;
  net_launch : (int, Cell.t) Hashtbl.t;
}

(* Worst input arrival and resulting output arrival of a comb cell, as a
   pure function of the current arrival table.  Shared by the full
   recomputation and the incremental engine so both produce bit-identical
   results. *)
let eval_cell tech arrivals cell =
  let arrival net =
    Option.value ~default:0.0
      (Hashtbl.find_opt arrivals.net_arrival (Net.id net))
  in
  let worst_in =
    List.fold_left
      (fun acc net ->
        let t = arrival net in
        match acc with
        | Some (best, _) when best >= t -> acc
        | _ -> Some (t, Some net))
      None (Cell.inputs cell)
  in
  let in_time, in_net =
    match worst_in with Some (t, net) -> (t, net) | None -> (0.0, None)
  in
  let launch =
    match in_net with
    | None -> None
    | Some prev -> Hashtbl.find_opt arrivals.net_launch (Net.id prev)
  in
  (in_time +. cell_delay tech cell, in_net, launch)

let compute_arrivals tech netlist =
  (* sized from the netlist's live net count (the same population
     {!Ggpu_hw.Netlist.stats} enumerates) so large designs do not rehash
     their way through the sweep *)
  let size = max 64 (Netlist.net_count netlist) in
  let arrivals =
    {
      net_arrival = Hashtbl.create size;
      net_pred = Hashtbl.create size;
      net_launch = Hashtbl.create size;
    }
  in
  (* seed: sequential outputs *)
  Netlist.iter_cells netlist (fun cell ->
      if Cell.is_sequential cell then begin
        let t = launch_delay tech cell in
        List.iter
          (fun net ->
            Hashtbl.replace arrivals.net_arrival (Net.id net) t;
            Hashtbl.replace arrivals.net_launch (Net.id net) cell)
          (Cell.outputs cell)
      end);
  (* propagate in topological order *)
  List.iter
    (fun cell ->
      let out_time, in_net, launch = eval_cell tech arrivals cell in
      List.iter
        (fun net ->
          Hashtbl.replace arrivals.net_arrival (Net.id net) out_time;
          Hashtbl.replace arrivals.net_pred (Net.id net) (cell, in_net);
          match launch with
          | Some l -> Hashtbl.replace arrivals.net_launch (Net.id net) l
          | None -> Hashtbl.remove arrivals.net_launch (Net.id net))
        (Cell.outputs cell))
    (Topo.order netlist);
  arrivals

(* Walk predecessor pointers from an endpoint input net back to the
   launching sequential cell. *)
let trace_path netlist arrivals ~endpoint_net ~capture tech =
  let rec walk net acc =
    match Hashtbl.find_opt arrivals.net_pred (Net.id net) with
    | Some (cell, Some prev) -> walk prev (cell :: acc)
    | Some (cell, None) -> (cell :: acc, None)
    | None -> (acc, Netlist.driver_of netlist net)
  in
  let through, launch_opt = walk endpoint_net [] in
  let launch =
    match launch_opt with
    | Some cell when Cell.is_sequential cell -> Some cell
    | Some _ | None -> None
  in
  match launch with
  | None -> None (* path from a primary input; not a register path *)
  | Some launch ->
      let arrival =
        Option.value ~default:0.0
          (Hashtbl.find_opt arrivals.net_arrival (Net.id endpoint_net))
      in
      let delay_ns =
        arrival +. setup_time tech capture
        +. tech.Tech.stdcell.Stdcell.clock_skew_ns
      in
      Some { launch; capture; through; delay_ns }

(* Worst register-to-register path over a (full or incrementally
   maintained) arrival table.  Endpoints are scanned in ascending cell-id
   order so the reported worst path is deterministic, and only endpoint
   nets that actually produce a register path are counted — paths from
   primary inputs carry no [net_launch] entry and must not inflate the
   endpoint count.  The cached launch origin makes the scan O(1) per
   endpoint; only the single worst path is traced back through the
   predecessor chain. *)
let seq_ids netlist =
  Netlist.fold_cells netlist ~init:[] ~f:(fun acc cell ->
      if Cell.is_sequential cell then Cell.id cell :: acc else acc)
  |> List.sort Int.compare

let report_over_ids tech netlist arrivals ids =
  (* worst endpoint: (delay, endpoint net, capture cell) *)
  let worst = ref None in
  let endpoints = ref 0 in
  let skew = tech.Tech.stdcell.Stdcell.clock_skew_ns in
  List.iter
    (fun id ->
      let cell = Netlist.find_cell netlist id in
      let setup = lazy (setup_time tech cell) in
      List.iter
        (fun net ->
          if Hashtbl.mem arrivals.net_launch (Net.id net) then begin
            incr endpoints;
            let arrival =
              Option.value ~default:0.0
                (Hashtbl.find_opt arrivals.net_arrival (Net.id net))
            in
            let delay_ns = arrival +. Lazy.force setup +. skew in
            match !worst with
            | Some (best, _, _) when best >= delay_ns -> ()
            | Some _ | None -> worst := Some (delay_ns, net, cell)
          end)
        (Cell.inputs cell))
    ids;
  match !worst with
  | None -> raise No_paths
  | Some (_, endpoint_net, capture) -> (
      match trace_path netlist arrivals ~endpoint_net ~capture tech with
      | None ->
          (* cannot happen: the endpoint has a launch entry *)
          raise No_paths
      | Some worst ->
          {
            worst;
            max_delay_ns = worst.delay_ns;
            fmax_mhz = 1000.0 /. worst.delay_ns;
            endpoint_count = !endpoints;
          })

let report_of_arrivals tech netlist arrivals =
  report_over_ids tech netlist arrivals (seq_ids netlist)

(* Full analysis: worst register-to-register path. *)
let analyse tech netlist =
  Ggpu_obs.Trace.with_span "sta.full" @@ fun () ->
  Ggpu_obs.Metrics.count "sta.full_analyses" 1;
  report_of_arrivals tech netlist (compute_arrivals tech netlist)

(* --- CSR levelized engine --------------------------------------------- *)

(* Net and cell ids are handed out by dense monotonic counters, so raw
   ids index flat arrays directly (removed ids leave small holes).  The
   persistent state is the per-net arrival/predecessor/launch arrays and
   the per-cell levelization; CSR adjacency exists during full sweeps
   and is dropped afterwards — the incremental path reads pin lists
   straight off the (small) dirty cones. *)
type csr_engine = {
  k_tech : Tech.t;
  k_netlist : Netlist.t;
  k_domains : int; (* cone-parallel fan-out of full sweeps *)
  mutable k_revision : int;
  (* per-net, indexed by raw net id *)
  mutable k_arr : float array; (* worst arrival; 0.0 when absent *)
  mutable k_driven : Bytes.t; (* '\001' iff the net has an arrival entry *)
  mutable k_pred_cell : int array; (* driving comb cell id; -1 = none *)
  mutable k_pred_net : int array; (* worst input net id; -1 = none *)
  mutable k_launch : int array; (* launching sequential cell id; -1 *)
  (* per-cell, indexed by raw cell id *)
  mutable k_level : int array; (* comb level; -1 for non-comb/absent *)
  mutable k_queued : Bytes.t; (* level-bucket queue membership *)
  mutable k_max_level : int;
  mutable k_seq : int list; (* sequential cell ids, ascending *)
  mutable k_report : (int * report) option;
  mutable k_full : int;
  mutable k_incremental : int;
  mutable k_relaxed : int;
}

let grow_int_array a n ~default =
  let b = Array.make n default in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_float_array a n =
  let b = Array.make n 0.0 in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_bytes a n =
  let b = Bytes.make n '\000' in
  Bytes.blit a 0 b 0 (Bytes.length a);
  b

let ensure_net_capacity k id =
  if id >= Array.length k.k_arr then begin
    let n = max (id + 1) (2 * Array.length k.k_arr) in
    k.k_arr <- grow_float_array k.k_arr n;
    k.k_driven <- grow_bytes k.k_driven n;
    k.k_pred_cell <- grow_int_array k.k_pred_cell n ~default:(-1);
    k.k_pred_net <- grow_int_array k.k_pred_net n ~default:(-1);
    k.k_launch <- grow_int_array k.k_launch n ~default:(-1)
  end

let ensure_cell_capacity k id =
  if id >= Array.length k.k_level then begin
    let n = max (id + 1) (2 * Array.length k.k_level) in
    k.k_level <- grow_int_array k.k_level n ~default:(-1);
    k.k_queued <- grow_bytes k.k_queued n
  end

(* Rebuild the CSR structure from scratch and run the levelized full
   sweep.  Cell-to-cell edges are deduplicated once per (driver, reader)
   pair — however many pins or nets connect them — and the indegrees and
   the successor CSR both derive from the same edge list, so the two
   sides can never diverge (the counting property {!Topo} documents). *)
let csr_rebuild k =
  let nl = k.k_netlist and tech = k.k_tech in
  let net_bound =
    Netlist.fold_nets nl ~init:1 ~f:(fun m n -> max m (Net.id n + 1))
  in
  let cell_bound =
    Netlist.fold_cells nl ~init:1 ~f:(fun m c -> max m (Cell.id c + 1))
  in
  k.k_arr <- Array.make net_bound 0.0;
  k.k_driven <- Bytes.make net_bound '\000';
  k.k_pred_cell <- Array.make net_bound (-1);
  k.k_pred_net <- Array.make net_bound (-1);
  k.k_launch <- Array.make net_bound (-1);
  k.k_level <- Array.make cell_bound (-1);
  k.k_queued <- Bytes.make cell_bound '\000';
  k.k_seq <- seq_ids nl;
  (* dense comb numbering, ascending cell id *)
  let comb_rev =
    Netlist.fold_cells nl ~init:[] ~f:(fun acc c ->
        if Cell.is_comb c then Cell.id c :: acc else acc)
  in
  let comb_ids = Array.of_list (List.sort Int.compare comb_rev) in
  let n_comb = Array.length comb_ids in
  let cells = Array.map (Netlist.find_cell nl) comb_ids in
  (* input pins (net ids, pin order) and per-cell delay *)
  let in_off = Array.make (n_comb + 1) 0 in
  for c = 0 to n_comb - 1 do
    in_off.(c + 1) <- in_off.(c) + List.length (Cell.inputs cells.(c))
  done;
  let in_net = Array.make (max 1 in_off.(n_comb)) 0 in
  let delay = Array.make (max 1 n_comb) 0.0 in
  for c = 0 to n_comb - 1 do
    let pos = ref in_off.(c) in
    List.iter
      (fun net ->
        in_net.(!pos) <- Net.id net;
        incr pos)
      (Cell.inputs cells.(c));
    delay.(c) <- cell_delay tech cells.(c)
  done;
  (* output pins *)
  let out_off = Array.make (n_comb + 1) 0 in
  for c = 0 to n_comb - 1 do
    out_off.(c + 1) <- out_off.(c) + List.length (Cell.outputs cells.(c))
  done;
  let out_net = Array.make (max 1 out_off.(n_comb)) 0 in
  for c = 0 to n_comb - 1 do
    let pos = ref out_off.(c) in
    List.iter
      (fun net ->
        out_net.(!pos) <- Net.id net;
        incr pos)
      (Cell.outputs cells.(c))
  done;
  (* net -> dense driving comb cell (a net has at most one driver) *)
  let net_comb_driver = Array.make net_bound (-1) in
  for c = 0 to n_comb - 1 do
    for p = out_off.(c) to out_off.(c + 1) - 1 do
      net_comb_driver.(out_net.(p)) <- c
    done
  done;
  (* deduplicated (driver, reader) edges over dense indices *)
  let edge_from = ref (Array.make (max 16 n_comb) 0) in
  let edge_to = ref (Array.make (max 16 n_comb) 0) in
  let n_edges = ref 0 in
  let push_edge d c =
    if !n_edges = Array.length !edge_from then begin
      edge_from := grow_int_array !edge_from (2 * !n_edges) ~default:0;
      edge_to := grow_int_array !edge_to (2 * !n_edges) ~default:0
    end;
    !edge_from.(!n_edges) <- d;
    !edge_to.(!n_edges) <- c;
    incr n_edges
  in
  let seen = Array.make (max 1 n_comb) (-1) in
  (* dedup marker: last reader that saw this driver *)
  for c = 0 to n_comb - 1 do
    for p = in_off.(c) to in_off.(c + 1) - 1 do
      let d = net_comb_driver.(in_net.(p)) in
      if d >= 0 && seen.(d) <> c then begin
        seen.(d) <- c;
        push_edge d c
      end
    done
  done;
  (* indegrees and successor CSR from the same edge list *)
  let indeg = Array.make (max 1 n_comb) 0 in
  let succ_off = Array.make (n_comb + 1) 0 in
  for e = 0 to !n_edges - 1 do
    indeg.(!edge_to.(e)) <- indeg.(!edge_to.(e)) + 1;
    succ_off.(!edge_from.(e) + 1) <- succ_off.(!edge_from.(e) + 1) + 1
  done;
  for c = 0 to n_comb - 1 do
    succ_off.(c + 1) <- succ_off.(c + 1) + succ_off.(c)
  done;
  let succ = Array.make (max 1 !n_edges) 0 in
  let fill = Array.copy succ_off in
  for e = 0 to !n_edges - 1 do
    let d = !edge_from.(e) in
    succ.(fill.(d)) <- !edge_to.(e);
    fill.(d) <- fill.(d) + 1
  done;
  (* levelization by Kahn relaxation: level = longest comb-driver chain *)
  let lvl = Array.make (max 1 n_comb) 0 in
  let stack = Array.make (max 1 n_comb) 0 in
  let sp = ref 0 in
  for c = 0 to n_comb - 1 do
    if indeg.(c) = 0 then begin
      stack.(!sp) <- c;
      incr sp
    end
  done;
  let emitted = ref 0 in
  while !sp > 0 do
    decr sp;
    let c = stack.(!sp) in
    incr emitted;
    for p = succ_off.(c) to succ_off.(c + 1) - 1 do
      let s = succ.(p) in
      if lvl.(c) + 1 > lvl.(s) then lvl.(s) <- lvl.(c) + 1;
      indeg.(s) <- indeg.(s) - 1;
      if indeg.(s) = 0 then begin
        stack.(!sp) <- s;
        incr sp
      end
    done
  done;
  if !emitted <> n_comb then begin
    let stuck = ref [] in
    for c = 0 to n_comb - 1 do
      if indeg.(c) > 0 then stuck := Cell.name cells.(c) :: !stuck
    done;
    raise (Topo.Combinational_loop (List.sort String.compare !stuck))
  end;
  k.k_max_level <- Array.fold_left max 0 lvl;
  for c = 0 to n_comb - 1 do
    k.k_level.(comb_ids.(c)) <- lvl.(c)
  done;
  (* seed sequential outputs before sweeping *)
  Netlist.iter_cells nl (fun cell ->
      if Cell.is_sequential cell then begin
        let t = launch_delay tech cell in
        List.iter
          (fun net ->
            let nid = Net.id net in
            k.k_arr.(nid) <- t;
            Bytes.set k.k_driven nid '\001';
            k.k_launch.(nid) <- Cell.id cell)
          (Cell.outputs cell)
      end);
  (* one dense relaxation of a comb cell over the flat arrays; mirrors
     [eval_cell]'s first-max tie-break exactly (strictly-greater keeps
     the earliest pin) *)
  let relax c =
    let lo = in_off.(c) and hi = in_off.(c + 1) in
    let in_time, best_net =
      if lo = hi then (0.0, -1)
      else begin
        let best = ref k.k_arr.(in_net.(lo)) and bn = ref in_net.(lo) in
        for p = lo + 1 to hi - 1 do
          let t = k.k_arr.(in_net.(p)) in
          if t > !best then begin
            best := t;
            bn := in_net.(p)
          end
        done;
        (!best, !bn)
      end
    in
    let launch = if best_net >= 0 then k.k_launch.(best_net) else -1 in
    let out_time = in_time +. delay.(c) in
    let id = comb_ids.(c) in
    for p = out_off.(c) to out_off.(c + 1) - 1 do
      let nid = out_net.(p) in
      k.k_arr.(nid) <- out_time;
      Bytes.set k.k_driven nid '\001';
      k.k_pred_cell.(nid) <- id;
      k.k_pred_net.(nid) <- best_net;
      k.k_launch.(nid) <- launch
    done
  in
  (* sweep order: (level, dense index); [comb_ids] ascends by cell id
     and the sort is stable, so ties break on ascending id *)
  let order = Array.init n_comb (fun c -> c) in
  let cmp a b =
    let d = compare lvl.(a) lvl.(b) in
    if d <> 0 then d else compare a b
  in
  Array.sort cmp order;
  let domains = min k.k_domains n_comb in
  if domains <= 1 then Array.iter relax order
  else begin
    (* independent cones: weakly-connected components of the comb graph.
       Cones never share a net (each net has a unique driver and every
       edge of a cell stays inside its component), so sweeping cones
       from separate domains touches disjoint array slots and the result
       is bit-identical at any domain count. *)
    let parent = Array.init n_comb (fun c -> c) in
    let rec find x = if parent.(x) = x then x else find parent.(x) in
    let union a b =
      let ra = find a and rb = find b in
      if ra <> rb then
        if ra < rb then parent.(rb) <- ra else parent.(ra) <- rb
    in
    for e = 0 to !n_edges - 1 do
      union !edge_from.(e) !edge_to.(e)
    done;
    let comp_size = Array.make n_comb 0 in
    for c = 0 to n_comb - 1 do
      let r = find c in
      comp_size.(r) <- comp_size.(r) + 1
    done;
    (* greedily pack components (ascending root) into [domains] chunks *)
    let chunk_of_root = Array.make n_comb (-1) in
    let target = (n_comb + domains - 1) / domains in
    let chunk = ref 0 and filled = ref 0 in
    for c = 0 to n_comb - 1 do
      if find c = c then begin
        if !filled >= target && !chunk < domains - 1 then begin
          incr chunk;
          filled := 0
        end;
        chunk_of_root.(c) <- !chunk;
        filled := !filled + comp_size.(c)
      end
    done;
    let buckets = Array.make domains [] in
    (* walk the sweep order backwards so each bucket ends up forward *)
    for i = n_comb - 1 downto 0 do
      let c = order.(i) in
      let b = chunk_of_root.(find c) in
      buckets.(b) <- c :: buckets.(b)
    done;
    let chunks =
      Array.to_list (Array.map Array.of_list buckets)
      |> List.filter (fun a -> Array.length a > 0)
    in
    ignore
      (Ggpu_par.Parallel.map ~domains
         (fun chunk -> Array.iter relax chunk)
         chunks)
  end

(* Incremental sync, phase A: restore the level fixpoint over the dirty
   region.  level(c) = 1 + max level of distinct comb drivers (0 with
   none); chaotic iteration over a FIFO converges because the graph is
   acyclic and every change re-enqueues the readers. *)
let csr_fix_levels k ~cells ~nets =
  let nl = k.k_netlist in
  let queue = Queue.create () in
  let queued = Hashtbl.create 64 in
  let enqueue id =
    if not (Hashtbl.mem queued id) then begin
      Hashtbl.add queued id ();
      Queue.add id queue
    end
  in
  List.iter
    (fun id ->
      ensure_cell_capacity k id;
      if Netlist.mem_cell nl id then begin
        let cell = Netlist.find_cell nl id in
        if Cell.is_comb cell then enqueue id else k.k_level.(id) <- -1
      end
      else k.k_level.(id) <- -1)
    cells;
  List.iter
    (fun nid ->
      ensure_net_capacity k nid;
      let net = Netlist.find_net nl nid in
      List.iter
        (fun reader ->
          if Cell.is_comb reader then begin
            ensure_cell_capacity k (Cell.id reader);
            enqueue (Cell.id reader)
          end)
        (Netlist.readers_of nl net))
    nets;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    Hashtbl.remove queued id;
    if Netlist.mem_cell nl id then begin
      let cell = Netlist.find_cell nl id in
      if Cell.is_comb cell then begin
        let lvl =
          List.fold_left
            (fun acc net ->
              match Netlist.driver_of nl net with
              | Some d when Cell.is_comb d ->
                  let did = Cell.id d in
                  ensure_cell_capacity k did;
                  max acc (k.k_level.(did) + 1)
              | Some _ | None -> acc)
            0 (Cell.inputs cell)
        in
        if lvl <> k.k_level.(id) then begin
          k.k_level.(id) <- lvl;
          if lvl > k.k_max_level then k.k_max_level <- lvl;
          List.iter
            (fun net ->
              List.iter
                (fun reader ->
                  if Cell.is_comb reader then begin
                    ensure_cell_capacity k (Cell.id reader);
                    enqueue (Cell.id reader)
                  end)
                (Netlist.readers_of nl net))
            (Cell.outputs cell)
        end
      end
    end
  done

(* Incremental sync, phase B: level-bounded re-sweep of the dirty cones.
   Dirty comb cells sit in per-level buckets; processing levels in
   ascending order relaxes every dirty cell exactly once, after all its
   dirty predecessors (a reader's level strictly exceeds its comb
   driver's, restored by phase A).  Seeding and change detection mirror
   the legacy worklist byte for byte. *)
let csr_resweep k ~cells ~nets =
  let nl = k.k_netlist and tech = k.k_tech in
  let buckets = ref (Array.make (k.k_max_level + 1) []) in
  let ensure_bucket l =
    if l >= Array.length !buckets then begin
      let b = Array.make (max (l + 1) (2 * Array.length !buckets)) [] in
      Array.blit !buckets 0 b 0 (Array.length !buckets);
      buckets := b
    end
  in
  let enqueue cell =
    if Cell.is_comb cell then begin
      let id = Cell.id cell in
      ensure_cell_capacity k id;
      if Bytes.get k.k_queued id = '\000' then begin
        Bytes.set k.k_queued id '\001';
        let l = max 0 k.k_level.(id) in
        ensure_bucket l;
        !buckets.(l) <- id :: !buckets.(l)
      end
    end
  in
  let enqueue_readers net = List.iter enqueue (Netlist.readers_of nl net) in
  (* a sequential driver re-seeds its output nets with clk-to-q *)
  let reseed_seq_output cell net =
    let nid = Net.id net in
    ensure_net_capacity k nid;
    let t = launch_delay tech cell in
    let same_launch = k.k_launch.(nid) = Cell.id cell in
    if
      Bytes.get k.k_driven nid = '\000'
      || k.k_arr.(nid) <> t
      || k.k_pred_cell.(nid) >= 0
      || not same_launch
    then begin
      k.k_arr.(nid) <- t;
      Bytes.set k.k_driven nid '\001';
      k.k_pred_cell.(nid) <- -1;
      k.k_pred_net.(nid) <- -1;
      k.k_launch.(nid) <- Cell.id cell;
      enqueue_readers net
    end
  in
  let touch_net nid =
    ensure_net_capacity k nid;
    let net = Netlist.find_net nl nid in
    match Netlist.driver_of nl net with
    | None ->
        (* driver removed and not replaced: the net reverts to the
           primary-input default (no table entry) *)
        if
          Bytes.get k.k_driven nid = '\001'
          || k.k_pred_cell.(nid) >= 0
          || k.k_launch.(nid) >= 0
        then begin
          k.k_arr.(nid) <- 0.0;
          Bytes.set k.k_driven nid '\000';
          k.k_pred_cell.(nid) <- -1;
          k.k_pred_net.(nid) <- -1;
          k.k_launch.(nid) <- -1;
          enqueue_readers net
        end
    | Some driver when Cell.is_sequential driver -> reseed_seq_output driver net
    | Some driver -> enqueue driver
  in
  List.iter touch_net nets;
  List.iter
    (fun id ->
      if Netlist.mem_cell nl id then begin
        let cell = Netlist.find_cell nl id in
        if Cell.is_comb cell then enqueue cell
        else List.iter (reseed_seq_output cell) (Cell.outputs cell)
      end
      (* removed cells: their output nets are in [nets] *))
    cells;
  (* relaxation of one dirty cell: same first-max fold as [eval_cell],
     reading the flat arrays *)
  let relax cell =
    k.k_relaxed <- k.k_relaxed + 1;
    let worst_in =
      List.fold_left
        (fun acc net ->
          let nid = Net.id net in
          ensure_net_capacity k nid;
          let t = k.k_arr.(nid) in
          match acc with
          | Some (best, _) when best >= t -> acc
          | _ -> Some (t, nid))
        None (Cell.inputs cell)
    in
    let in_time, in_net =
      match worst_in with Some (t, nid) -> (t, nid) | None -> (0.0, -1)
    in
    let launch = if in_net >= 0 then k.k_launch.(in_net) else -1 in
    let out_time = in_time +. cell_delay tech cell in
    let id = Cell.id cell in
    List.iter
      (fun net ->
        let nid = Net.id net in
        ensure_net_capacity k nid;
        let same_arrival =
          Bytes.get k.k_driven nid = '\001' && k.k_arr.(nid) = out_time
        in
        let same_pred =
          k.k_pred_cell.(nid) = id && k.k_pred_net.(nid) = in_net
        in
        let same_launch = k.k_launch.(nid) = launch in
        k.k_arr.(nid) <- out_time;
        Bytes.set k.k_driven nid '\001';
        k.k_pred_cell.(nid) <- id;
        k.k_pred_net.(nid) <- in_net;
        k.k_launch.(nid) <- launch;
        if not (same_arrival && same_pred && same_launch) then
          enqueue_readers net)
      (Cell.outputs cell)
  in
  let l = ref 0 in
  while !l < Array.length !buckets do
    (* readers enqueued while draining level [l] always land strictly
       above it; only the seed pass fills the current level *)
    let rec drain () =
      match !buckets.(!l) with
      | [] -> ()
      | ids ->
          !buckets.(!l) <- [];
          List.iter
            (fun id ->
              Bytes.set k.k_queued id '\000';
              if Netlist.mem_cell nl id then begin
                let cell = Netlist.find_cell nl id in
                if Cell.is_comb cell then relax cell
              end)
            (List.rev ids);
          drain ()
    in
    drain ();
    incr l
  done

(* Materialize the legacy hashtable view of the CSR arrays (for
   {!engine_arrivals} consumers and the differential tests). *)
let csr_arrivals k =
  let nl = k.k_netlist in
  let size = max 64 (Netlist.net_count nl) in
  let arrivals =
    {
      net_arrival = Hashtbl.create size;
      net_pred = Hashtbl.create size;
      net_launch = Hashtbl.create size;
    }
  in
  Netlist.iter_nets nl (fun net ->
      let nid = Net.id net in
      if nid < Array.length k.k_arr then begin
        if Bytes.get k.k_driven nid = '\001' then
          Hashtbl.replace arrivals.net_arrival nid k.k_arr.(nid);
        if k.k_pred_cell.(nid) >= 0 then begin
          let cell = Netlist.find_cell nl k.k_pred_cell.(nid) in
          let prev =
            if k.k_pred_net.(nid) >= 0 then
              Some (Netlist.find_net nl k.k_pred_net.(nid))
            else None
          in
          Hashtbl.replace arrivals.net_pred nid (cell, prev)
        end;
        if k.k_launch.(nid) >= 0 then
          Hashtbl.replace arrivals.net_launch nid
            (Netlist.find_cell nl k.k_launch.(nid))
      end);
  arrivals

(* Worst path over the CSR arrays; scan order and tie-breaks replicate
   [report_over_ids] exactly. *)
let csr_report k =
  let nl = k.k_netlist and tech = k.k_tech in
  let worst = ref None in
  let endpoints = ref 0 in
  let skew = tech.Tech.stdcell.Stdcell.clock_skew_ns in
  List.iter
    (fun id ->
      let cell = Netlist.find_cell nl id in
      let setup = lazy (setup_time tech cell) in
      List.iter
        (fun net ->
          let nid = Net.id net in
          if nid < Array.length k.k_launch && k.k_launch.(nid) >= 0 then begin
            incr endpoints;
            let arrival = k.k_arr.(nid) in
            let delay_ns = arrival +. Lazy.force setup +. skew in
            match !worst with
            | Some (best, _, _) when best >= delay_ns -> ()
            | Some _ | None -> worst := Some (delay_ns, nid, cell)
          end)
        (Cell.inputs cell))
    k.k_seq;
  match !worst with
  | None -> raise No_paths
  | Some (_, endpoint_nid, capture) -> (
      let rec walk nid acc =
        if nid < Array.length k.k_pred_cell && k.k_pred_cell.(nid) >= 0 then begin
          let cell = Netlist.find_cell nl k.k_pred_cell.(nid) in
          let prev = k.k_pred_net.(nid) in
          if prev >= 0 then walk prev (cell :: acc)
          else (cell :: acc, None)
        end
        else (acc, Netlist.driver_of nl (Netlist.find_net nl nid))
      in
      let through, launch_opt = walk endpoint_nid [] in
      let launch =
        match launch_opt with
        | Some cell when Cell.is_sequential cell -> Some cell
        | Some _ | None -> None
      in
      match launch with
      | None -> raise No_paths (* cannot happen: endpoint has a launch *)
      | Some launch ->
          let arrival = k.k_arr.(endpoint_nid) in
          let delay_ns =
            arrival +. setup_time tech capture
            +. tech.Tech.stdcell.Stdcell.clock_skew_ns
          in
          let worst = { launch; capture; through; delay_ns } in
          {
            worst;
            max_delay_ns = worst.delay_ns;
            fmax_mhz = 1000.0 /. worst.delay_ns;
            endpoint_count = !endpoints;
          })

(* Keep the cached sequential-id list equal to [seq_ids netlist]:
   every added, removed or rewired cell id appears in the journal, so
   dropping the touched ids and re-inserting the ones that are (still)
   sequential restores the invariant. *)
let merge_seq_ids nl seq touched =
  match touched with
  | [] -> seq
  | touched ->
      let touched = List.sort_uniq Int.compare touched in
      let keep = List.filter (fun id -> not (List.mem id touched)) seq in
      let add =
        List.filter
          (fun id ->
            Netlist.mem_cell nl id
            && Cell.is_sequential (Netlist.find_cell nl id))
          touched
      in
      List.merge Int.compare keep add

let csr_make ~domains tech netlist =
  let k =
    {
      k_tech = tech;
      k_netlist = netlist;
      k_domains = max 1 domains;
      k_revision = Netlist.revision netlist;
      k_arr = [||];
      k_driven = Bytes.empty;
      k_pred_cell = [||];
      k_pred_net = [||];
      k_launch = [||];
      k_level = [||];
      k_queued = Bytes.empty;
      k_max_level = 0;
      k_seq = [];
      k_report = None;
      k_full = 1;
      k_incremental = 0;
      k_relaxed = 0;
    }
  in
  csr_rebuild k;
  k

let csr_sync k =
  let rev = Netlist.revision k.k_netlist in
  if rev <> k.k_revision then begin
    (match Netlist.changes_since k.k_netlist k.k_revision with
    | Some { Netlist.cells = []; nets = [] } -> ()
    | Some { Netlist.cells; nets } ->
        let before = k.k_relaxed in
        Ggpu_obs.Trace.with_span "sta.incremental" (fun () ->
            csr_fix_levels k ~cells ~nets;
            csr_resweep k ~cells ~nets);
        k.k_seq <- merge_seq_ids k.k_netlist k.k_seq cells;
        k.k_incremental <- k.k_incremental + 1;
        Ggpu_obs.Metrics.count "sta.incremental_updates" 1;
        Ggpu_obs.Metrics.observe_named "sta.cone_cells" (k.k_relaxed - before)
    | None ->
        (* journal truncated: too far behind, rebuild from scratch *)
        Ggpu_obs.Trace.with_span "sta.full" (fun () -> csr_rebuild k);
        k.k_full <- k.k_full + 1;
        Ggpu_obs.Metrics.count "sta.full_recomputes" 1);
    k.k_revision <- rev;
    k.k_report <- None
  end

(* Standalone levelized analysis over a throwaway CSR build; [domains]
   fans the full sweep over independent cones. *)
let analyse_csr ?(domains = 1) tech netlist =
  Ggpu_obs.Trace.with_span "sta.full_csr" @@ fun () ->
  Ggpu_obs.Metrics.count "sta.full_analyses" 1;
  csr_report (csr_make ~domains tech netlist)

(* --- Legacy incremental engine ---------------------------------------- *)

(* Caches the arrival tables across analyses of the same (mutating)
   netlist.  On each analysis the engine reads the netlist's change
   journal and relaxes only the fan-out cone of the touched cells with a
   worklist, instead of re-walking the whole graph.  Arrival times are a
   unique fixpoint of the max-plus propagation on the DAG, so the result
   is bit-identical to a full recomputation. *)
type legacy_engine = {
  e_tech : Tech.t;
  e_netlist : Netlist.t;
  mutable e_revision : int; (* netlist revision the tables reflect *)
  mutable e_arrivals : arrivals;
  mutable e_seq : int list; (* sequential cell ids, ascending *)
  mutable e_report : (int * report) option;
  mutable e_full : int;
  mutable e_incremental : int;
  mutable e_relaxed : int;
}

type engine = Legacy_engine of legacy_engine | Csr_engine of csr_engine

type impl = Legacy | Csr

type engine_stats = {
  full_recomputes : int;
  incremental_updates : int;
  cells_relaxed : int; (* comb cells relaxed by incremental updates *)
}

let make_legacy_engine tech netlist =
  {
    e_tech = tech;
    e_netlist = netlist;
    e_revision = Netlist.revision netlist;
    e_arrivals = compute_arrivals tech netlist;
    e_seq = seq_ids netlist;
    e_report = None;
    e_full = 1;
    e_incremental = 0;
    e_relaxed = 0;
  }

let make_engine ?(impl = Csr) ?(domains = 1) tech netlist =
  Ggpu_obs.Trace.with_span "sta.engine_init" @@ fun () ->
  match impl with
  | Legacy -> Legacy_engine (make_legacy_engine tech netlist)
  | Csr -> Csr_engine (csr_make ~domains tech netlist)

let engine_impl = function Legacy_engine _ -> Legacy | Csr_engine _ -> Csr

let engine_stats = function
  | Legacy_engine e ->
      {
        full_recomputes = e.e_full;
        incremental_updates = e.e_incremental;
        cells_relaxed = e.e_relaxed;
      }
  | Csr_engine k ->
      {
        full_recomputes = k.k_full;
        incremental_updates = k.k_incremental;
        cells_relaxed = k.k_relaxed;
      }

let incremental_update engine ~cells ~nets =
  let tech = engine.e_tech and nl = engine.e_netlist in
  let { net_arrival; net_pred; net_launch } = engine.e_arrivals in
  let queue = Queue.create () in
  let queued = Hashtbl.create 64 in
  let enqueue cell =
    if Cell.is_comb cell then begin
      let id = Cell.id cell in
      if not (Hashtbl.mem queued id) then begin
        Hashtbl.add queued id ();
        Queue.add id queue
      end
    end
  in
  let enqueue_readers net = List.iter enqueue (Netlist.readers_of nl net) in
  (* a sequential driver re-seeds its output nets with clk-to-q *)
  let reseed_seq_output cell net =
    let nid = Net.id net in
    let t = launch_delay tech cell in
    let same_launch =
      match Hashtbl.find_opt net_launch nid with
      | Some l -> Cell.id l = Cell.id cell
      | None -> false
    in
    if
      Hashtbl.find_opt net_arrival nid <> Some t
      || Hashtbl.mem net_pred nid || not same_launch
    then begin
      Hashtbl.replace net_arrival nid t;
      Hashtbl.remove net_pred nid;
      Hashtbl.replace net_launch nid cell;
      enqueue_readers net
    end
  in
  let touch_net nid =
    let net = Netlist.find_net nl nid in
    match Netlist.driver_of nl net with
    | None ->
        (* driver removed and not replaced: the net reverts to the
           primary-input default (no table entry) *)
        if
          Hashtbl.mem net_arrival nid || Hashtbl.mem net_pred nid
          || Hashtbl.mem net_launch nid
        then begin
          Hashtbl.remove net_arrival nid;
          Hashtbl.remove net_pred nid;
          Hashtbl.remove net_launch nid;
          enqueue_readers net
        end
    | Some driver when Cell.is_sequential driver -> reseed_seq_output driver net
    | Some driver -> enqueue driver
  in
  List.iter touch_net nets;
  List.iter
    (fun id ->
      if Netlist.mem_cell nl id then begin
        let cell = Netlist.find_cell nl id in
        if Cell.is_comb cell then enqueue cell
        else List.iter (reseed_seq_output cell) (Cell.outputs cell)
      end
      (* removed cells: their output nets are in [nets] *))
    cells;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    Hashtbl.remove queued id;
    if Netlist.mem_cell nl id then begin
      let cell = Netlist.find_cell nl id in
      if Cell.is_comb cell then begin
        engine.e_relaxed <- engine.e_relaxed + 1;
        let out_time, in_net, launch = eval_cell tech engine.e_arrivals cell in
        List.iter
          (fun net ->
            let nid = Net.id net in
            let same_arrival = Hashtbl.find_opt net_arrival nid = Some out_time in
            let same_pred =
              match Hashtbl.find_opt net_pred nid with
              | Some (prev_cell, prev_net) ->
                  Cell.id prev_cell = Cell.id cell
                  && (match (prev_net, in_net) with
                     | None, None -> true
                     | Some a, Some b -> Net.id a = Net.id b
                     | Some _, None | None, Some _ -> false)
              | None -> false
            in
            let same_launch =
              match (Hashtbl.find_opt net_launch nid, launch) with
              | None, None -> true
              | Some a, Some b -> Cell.id a = Cell.id b
              | Some _, None | None, Some _ -> false
            in
            (* always refresh the stored cell values (they may have been
               rewired), but only propagate on a real change *)
            Hashtbl.replace net_arrival nid out_time;
            Hashtbl.replace net_pred nid (cell, in_net);
            (match launch with
            | Some l -> Hashtbl.replace net_launch nid l
            | None -> Hashtbl.remove net_launch nid);
            if not (same_arrival && same_pred && same_launch) then
              enqueue_readers net)
          (Cell.outputs cell)
      end
    end
  done

let update_seq_ids engine touched =
  engine.e_seq <- merge_seq_ids engine.e_netlist engine.e_seq touched

let legacy_sync engine =
  let rev = Netlist.revision engine.e_netlist in
  if rev <> engine.e_revision then begin
    (match Netlist.changes_since engine.e_netlist engine.e_revision with
    | Some { Netlist.cells = []; nets = [] } -> ()
    | Some { Netlist.cells; nets } ->
        let before = engine.e_relaxed in
        Ggpu_obs.Trace.with_span "sta.incremental" (fun () ->
            incremental_update engine ~cells ~nets);
        update_seq_ids engine cells;
        engine.e_incremental <- engine.e_incremental + 1;
        Ggpu_obs.Metrics.count "sta.incremental_updates" 1;
        Ggpu_obs.Metrics.observe_named "sta.cone_cells"
          (engine.e_relaxed - before)
    | None ->
        (* journal truncated: too far behind, recompute from scratch *)
        Ggpu_obs.Trace.with_span "sta.full" (fun () ->
            engine.e_arrivals <- compute_arrivals engine.e_tech engine.e_netlist;
            engine.e_seq <- seq_ids engine.e_netlist);
        engine.e_full <- engine.e_full + 1;
        Ggpu_obs.Metrics.count "sta.full_recomputes" 1);
    engine.e_revision <- rev;
    engine.e_report <- None
  end

let engine_arrivals = function
  | Legacy_engine e ->
      legacy_sync e;
      e.e_arrivals
  | Csr_engine k ->
      csr_sync k;
      csr_arrivals k

let engine_analyse = function
  | Legacy_engine engine -> (
      legacy_sync engine;
      match engine.e_report with
      | Some (rev, report) when rev = engine.e_revision -> report
      | Some _ | None ->
          let report =
            report_over_ids engine.e_tech engine.e_netlist engine.e_arrivals
              engine.e_seq
          in
          engine.e_report <- Some (engine.e_revision, report);
          report)
  | Csr_engine k -> (
      csr_sync k;
      match k.k_report with
      | Some (rev, report) when rev = k.k_revision -> report
      | Some _ | None ->
          let report = csr_report k in
          k.k_report <- Some (k.k_revision, report);
          report)

let slack_ns report ~period_ns = period_ns -. report.max_delay_ns
let meets report ~period_ns = slack_ns report ~period_ns >= 0.0

let pp_path fmt path =
  Format.fprintf fmt "%s -> %s (%.3f ns, %d cells)"
    (Cell.name path.launch) (Cell.name path.capture) path.delay_ns
    (List.length path.through)
