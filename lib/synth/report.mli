(** Logic-synthesis reports: one {!row} per G-GPU version, carrying
    exactly the columns of the paper's Table I plus diagnostics. *)

type row = {
  num_cus : int;
  freq_mhz : int;
  total_area_mm2 : float;
  memory_area_mm2 : float;
  ff : int;  (** flip-flop bits ("#FF") *)
  comb : int;  (** equivalent gate count ("#Comb.") *)
  memories : int;  (** SRAM macro instances ("#Memory") *)
  leakage_mw : float;
  dynamic_w : float;
  total_w : float;
  fmax_mhz : float;
  pipeline_stages : int;  (** inserted by the planner *)
}

val of_netlist :
  Ggpu_tech.Tech.t ->
  ?timing:Timing.report ->
  Ggpu_hw.Netlist.t ->
  num_cus:int ->
  freq_mhz:int ->
  row
(** [timing] supplies an up-to-date {!Timing.report} for the netlist
    (e.g. the last analysis of a DSE run) so the report need not re-run
    a full STA; when absent, {!Timing.analyse} is called. *)

val header : string
val row_to_string : row -> string
val pp_table : Format.formatter -> row list -> unit
