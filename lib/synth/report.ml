(* Logic-synthesis report: the Table I row for one G-GPU version. *)

open Ggpu_hw

type row = {
  num_cus : int;
  freq_mhz : int;
  total_area_mm2 : float;
  memory_area_mm2 : float;
  ff : int;
  comb : int;
  memories : int;
  leakage_mw : float;
  dynamic_w : float;
  total_w : float;
  fmax_mhz : float;
  pipeline_stages : int;
}

let of_netlist tech ?timing netlist ~num_cus ~freq_mhz =
  let stats = Netlist.stats netlist in
  let area = Area.of_netlist tech netlist in
  let power = Power.of_netlist tech netlist ~freq_mhz:(float_of_int freq_mhz) in
  let timing =
    match timing with
    | Some t -> t
    | None -> Timing.analyse tech netlist
  in
  {
    num_cus;
    freq_mhz;
    total_area_mm2 = area.Area.total_mm2;
    memory_area_mm2 = area.Area.memory_mm2;
    ff = stats.Netlist.ff_bits;
    comb = stats.Netlist.comb_gates;
    memories = stats.Netlist.macro_count;
    leakage_mw = power.Power.leakage_mw;
    dynamic_w = power.Power.dynamic_w;
    total_w = power.Power.total_w;
    fmax_mhz = timing.Timing.fmax_mhz;
    pipeline_stages = Netlist.pipeline_regs netlist;
  }

let header =
  Printf.sprintf "%-12s %-11s %-12s %8s %8s %8s %9s %9s %9s"
    "#CU & Freq." "Area (mm2)" "Mem (mm2)" "#FF" "#Comb." "#Memory"
    "Leak (mW)" "Dyn (W)" "Total (W)"

let row_to_string r =
  Printf.sprintf "%d@%dMHz %11.2f %12.2f %8d %8d %8d %9.2f %9.2f %9.2f"
    r.num_cus r.freq_mhz r.total_area_mm2 r.memory_area_mm2 r.ff r.comb
    r.memories r.leakage_mw r.dynamic_w r.total_w

let pp_table fmt rows =
  Format.fprintf fmt "%s@." header;
  List.iter (fun r -> Format.fprintf fmt "%s@." (row_to_string r)) rows
