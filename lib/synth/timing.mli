(** Static timing analysis over a netlist: worst register-to-register
    paths between flip-flops and SRAM macros, with launch/setup numbers
    drawn from the technology models. Macro geometry on the critical
    path is the pivot of the paper's design-space exploration. *)

type path = {
  launch : Ggpu_hw.Cell.t;  (** sequential cell the path starts at *)
  capture : Ggpu_hw.Cell.t;
  through : Ggpu_hw.Cell.t list;  (** combinational cells, in order *)
  delay_ns : float;  (** clk-to-q + logic + setup + skew *)
}

type report = {
  worst : path;
  max_delay_ns : float;
  fmax_mhz : float;
  endpoint_count : int;
}

exception No_paths

val launch_delay : Ggpu_tech.Tech.t -> Ggpu_hw.Cell.t -> float
(** Clock-to-q of a sequential cell.
    @raise Invalid_argument on a combinational cell. *)

val setup_time : Ggpu_tech.Tech.t -> Ggpu_hw.Cell.t -> float
val cell_delay : Ggpu_tech.Tech.t -> Ggpu_hw.Cell.t -> float

type arrivals = {
  net_arrival : (int, float) Hashtbl.t;  (** net id -> worst arrival *)
  net_pred : (int, Ggpu_hw.Cell.t * Ggpu_hw.Net.t option) Hashtbl.t;
  net_launch : (int, Ggpu_hw.Cell.t) Hashtbl.t;
      (** net id -> sequential cell the worst path launches from; absent
          when the worst cone is rooted at a primary input *)
}

val compute_arrivals : Ggpu_tech.Tech.t -> Ggpu_hw.Netlist.t -> arrivals
(** Exposed for post-route analysis ({!Ggpu_layout.Timing_post}). *)

val analyse : Ggpu_tech.Tech.t -> Ggpu_hw.Netlist.t -> report
(** Full recomputation.  Deterministic: endpoints are scanned in
    ascending cell-id order, and [endpoint_count] counts only endpoint
    nets that produce a register-to-register path (paths from primary
    inputs are excluded).
    @raise No_paths if the netlist has no register-to-register path.
    @raise Ggpu_hw.Topo.Combinational_loop on a combinational cycle. *)

val analyse_csr : ?domains:int -> Ggpu_tech.Tech.t -> Ggpu_hw.Netlist.t -> report
(** Full analysis through a throwaway CSR levelized build.  Bit-identical
    to {!analyse} at any [domains]; [domains > 1] fans the forward sweep
    over independent combinational cones via [Ggpu_par].
    @raise No_paths / @raise Ggpu_hw.Topo.Combinational_loop as {!analyse}. *)

(** {1 Incremental engine}

    Caches topological/arrival state across repeated analyses of the
    same mutating netlist (the planner's analyse-edit loop).  After an
    edit, only the fan-out cone of the touched cells is relaxed, using
    the netlist's change journal ({!Ggpu_hw.Netlist.changes_since}).
    Results are bit-identical to {!analyse}. *)

type engine

type impl =
  | Legacy  (** original hashtable tables + FIFO worklist *)
  | Csr  (** int-indexed CSR arrays + levelized sweeps (default) *)

type engine_stats = {
  full_recomputes : int;  (** whole-graph recomputations (>= 1) *)
  incremental_updates : int;  (** journal-driven cone updates *)
  cells_relaxed : int;  (** comb cells relaxed incrementally *)
}

val make_engine :
  ?impl:impl -> ?domains:int -> Ggpu_tech.Tech.t -> Ggpu_hw.Netlist.t -> engine
(** Performs the initial full computation.  [impl] selects the engine
    (default {!Csr}; the two are bit-identical — {!Legacy} survives as
    the differential-testing reference).  [domains] (default 1) fans
    full CSR sweeps over independent combinational cones; it does not
    affect results, only wall-clock. *)

val engine_impl : engine -> impl

val engine_analyse : engine -> report
(** Synchronise with the netlist's current revision and report.
    @raise No_paths as {!analyse}. *)

val engine_arrivals : engine -> arrivals
(** Synchronised arrival tables (same caveats as {!compute_arrivals}). *)

val engine_stats : engine -> engine_stats

val slack_ns : report -> period_ns:float -> float
val meets : report -> period_ns:float -> bool
val pp_path : Format.formatter -> path -> unit
