(** Analytical global placement of the partition grid.

    An eplace-style formulation over the partitions the estimator
    floorplan defines: quadratic wirelength (pair weights extracted from
    the netlist's cross-partition wire demand) plus a geometrically
    escalating pairwise density penalty, driven by Nesterov's
    accelerated descent and finished by a deterministic abutment
    legalizer.  The GMC column is anchored; CU partitions and the top
    glue are movable.  The result is an ordinary {!Floorplan.t}, so
    {!Route.estimate} and {!Timing_post.analyse} consume placed
    centroids unchanged.

    The placement is bit-identical at any [domains]: per-block gradients
    are summed in fixed partner order by exactly one task and every
    tie-break is index-based. *)

type t = {
  floorplan : Floorplan.t;  (** placed partitions, die = bounding box *)
  iterations : int;
  wirelength_init_mm : float;
      (** weighted Manhattan wirelength of the clustered initial state *)
  wirelength_mm : float;  (** after descent and legalization *)
  overflow : float;
      (** residual overlap fraction before legalization (diagnostic) *)
  domains : int;
}

val default_iterations : int

val place :
  ?domains:int ->
  ?iterations:int ->
  ?gmc_copies:int ->
  Ggpu_tech.Tech.t ->
  Ggpu_hw.Netlist.t ->
  num_cus:int ->
  t
(** Place the partition grid.  [domains] (default 1) fans the gradient
    evaluation over a {!Ggpu_par.Parallel.Pool} without affecting the result;
    [iterations] (default {!default_iterations}) bounds the descent;
    [gmc_copies] is forwarded to {!Floorplan.build} for the anchored
    partition inventory. *)

val pp : Format.formatter -> t -> unit
