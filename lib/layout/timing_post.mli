(** Post-route timing: in-partition paths keep their logic-synthesis
    delay; cross-partition routes add unbuffered (quadratic) RC wire
    delay, the mechanism that derates the paper's 8-CU design from
    667 to ~600 MHz and that pipeline insertion cannot fix. *)

type cross_path = {
  net : Ggpu_hw.Net.t;
  from_region : string;
  to_region : string;
  distance_mm : float;
  wire_delay_ns : float;
  total_ns : float;
}

type t = {
  internal_ns : float;  (** worst in-partition register path *)
  worst_cross : cross_path option;
  post_route_period_ns : float;
  achieved_mhz : float;
}

val cross_detour : float
(** Routed length / centre distance for cross-partition nets. *)

val unbuffered_rc_ns : Ggpu_tech.Tech.t -> length_mm:float -> float
val analyse : Ggpu_tech.Tech.t -> Ggpu_hw.Netlist.t -> Floorplan.t -> t

val quantise : float -> float
(** Round a frequency down to 10 MHz steps, as the paper reports
    ("600 MHz"). *)

val quantised_mhz : t -> float
(** [quantise t.achieved_mhz]. *)

val pp : Format.formatter -> t -> unit
