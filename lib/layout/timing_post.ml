(* Post-route timing.

   Within a partition the logic-synthesis timing holds (the gate delay
   model already charges average local wire).  What physical synthesis
   adds is the inter-partition routes: they cross macro-dominated
   floorplan, where repeaters cannot be placed, so their delay is the
   unbuffered RC of the full length - quadratic in distance.  This is
   the mechanism behind the paper's headline physical result: the 8-CU
   floorplan puts peripheral CUs so far from the general memory
   controller that the 1.5 ns (667 MHz) target breaks, and inserting
   pipeline registers cannot help because the wire itself, not the
   logic, owns the delay.  The best achievable period derates the design
   (to 600 MHz in the paper). *)

open Ggpu_hw
open Ggpu_tech
open Ggpu_synth

type cross_path = {
  net : Net.t;
  from_region : string;
  to_region : string;
  distance_mm : float;
  wire_delay_ns : float;
  total_ns : float;
}

type t = {
  internal_ns : float; (* worst in-partition register path *)
  worst_cross : cross_path option;
  post_route_period_ns : float;
  achieved_mhz : float;
}

(* Routed length of a cross-partition net exceeds the centre-to-centre
   distance: the route must wind around the macro-dominated partitions. *)
let cross_detour = 1.55

(* Unbuffered RC delay of a cross-partition route on an intermediate
   layer (Elmore, distributed line: T = r * c * L^2 / 2). *)
let unbuffered_rc_ns tech ~length_mm =
  let layer = Metal.find tech.Tech.metal "M5" in
  let routed = cross_detour *. length_mm in
  0.5 *. layer.Metal.r_ohm_per_mm *. layer.Metal.c_ff_per_mm *. 1.0e-6
  *. routed *. routed

let setup_of tech cell =
  match Cell.kind cell with
  | Cell.Dff -> tech.Tech.stdcell.Stdcell.dff_setup_ns
  | Cell.Macro spec -> (Memlib.query tech.Tech.memory spec).Memlib.setup_ns
  | Cell.Comb _ -> 0.0

let analyse tech netlist (fp : Floorplan.t) =
  Ggpu_obs.Trace.with_span "layout.post_sta" @@ fun () ->
  Ggpu_obs.Metrics.count "layout.post_sta.calls" 1;
  (* one engine serves both the worst-path report and the arrival table
     (the old code ran two independent full computations) *)
  let engine = Timing.make_engine tech netlist in
  let pre = Timing.engine_analyse engine in
  let arrivals = Timing.engine_arrivals engine in
  let worst_cross = ref None in
  Netlist.iter_nets netlist (fun net ->
      match Netlist.driver_of netlist net with
      | None -> ()
      | Some driver ->
          let from_region = Cell.region driver in
          List.iter
            (fun reader ->
              let to_region = Cell.region reader in
              if not (String.equal from_region to_region) then begin
                let distance_mm =
                  Floorplan.distance fp ~from_:from_region ~to_:to_region
                in
                let wire_delay_ns = unbuffered_rc_ns tech ~length_mm:distance_mm in
                let arrival =
                  Option.value ~default:0.0
                    (Hashtbl.find_opt arrivals.Timing.net_arrival (Net.id net))
                in
                let total_ns =
                  arrival +. wire_delay_ns +. setup_of tech reader
                  +. tech.Tech.stdcell.Stdcell.clock_skew_ns
                in
                match !worst_cross with
                | Some worst when worst.total_ns >= total_ns -> ()
                | Some _ | None ->
                    worst_cross :=
                      Some
                        {
                          net;
                          from_region;
                          to_region;
                          distance_mm;
                          wire_delay_ns;
                          total_ns;
                        }
              end)
            (Netlist.readers_of netlist net));
  let internal_ns = pre.Timing.max_delay_ns in
  let post_route_period_ns =
    match !worst_cross with
    | Some cross -> Float.max internal_ns cross.total_ns
    | None -> internal_ns
  in
  {
    internal_ns;
    worst_cross = !worst_cross;
    post_route_period_ns;
    achieved_mhz = 1000.0 /. post_route_period_ns;
  }

(* The paper reports achieved frequencies rounded to marketable steps
   (600 MHz for the derated 8-CU design). *)
let quantise mhz = float_of_int (int_of_float (mhz /. 10.0)) *. 10.0
let quantised_mhz t = quantise t.achieved_mhz

let pp fmt t =
  Format.fprintf fmt "post-route: internal=%.3fns" t.internal_ns;
  (match t.worst_cross with
  | Some c ->
      Format.fprintf fmt " cross=%.3fns (%s->%s, %.2fmm wire %.3fns)"
        c.total_ns c.from_region c.to_region c.distance_mm c.wire_delay_ns
  | None -> ());
  Format.fprintf fmt " achieved=%.0fMHz" t.achieved_mhz
