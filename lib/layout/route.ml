(* Global-routing wirelength estimation per metal layer (Table II).

   Without cell-level placement, routed length is estimated
   statistically, net by net:

   - intra-partition nets: average length proportional to the square
     root of the partition footprint (Rent-style), times a congestion
     factor that grows with timing pressure and macro fragmentation -
     routers detour around macros, and tighter targets buy delay with
     longer, less direct upper-layer routes.  This reproduces the
     striking Table II observation that the optimised 1 CU version routes
     ~4-5x the wire of the relaxed one;
   - cross-partition nets: Manhattan distance between partition centres.

   Each net contributes [width x count] wires.  Demand is then spread
   over the signal layers M2-M7: short intra-partition wire prefers the
   thin lower layers, long inter-partition wire the thick upper ones. *)

open Ggpu_hw
open Ggpu_tech

type t = {
  per_layer_um : (string * float) list; (* signal layers, bottom-up *)
  total_um : float;
  intra_um : float;
  inter_um : float;
  congestion : float;
}

(* Average intra-partition net length as a fraction of the partition
   diagonal (Rent-style average over mostly-local nets). *)
let intra_length_fraction = 0.04

(* Congestion factor: timing pressure (achieved period vs the relaxed
   2 ns baseline) to the fourth power, times macro-fragmentation
   pressure (routes detour around the extra banks).  Calibrated against
   Table II: the optimised 1 CU version routes ~4-5x the wire of the
   relaxed one. *)
let congestion_factor ~period_ns ~macros ~base_macros =
  let pressure = (2.0 /. period_ns) ** 4.0 in
  let ratio = float_of_int macros /. float_of_int (max 1 base_macros) in
  let fragmentation = 1.0 +. (0.8 *. Float.max 0.0 (ratio -. 1.0)) in
  pressure *. fragmentation

let estimate tech netlist (fp : Floorplan.t) ~period_ns ~base_macros =
  Ggpu_obs.Trace.with_span "layout.route"
    ~args:[ ("period_ns", Printf.sprintf "%.3f" period_ns) ]
  @@ fun () ->
  Ggpu_obs.Metrics.count "layout.route.calls" 1;
  let stats = Netlist.stats netlist in
  let congestion =
    congestion_factor ~period_ns ~macros:stats.Netlist.macro_count ~base_macros
  in
  let partition_of_region region =
    List.find_opt
      (fun p -> String.equal p.Floorplan.part_name region)
      fp.Floorplan.partitions
  in
  let intra = ref 0.0 and inter = ref 0.0 in
  Netlist.iter_nets netlist (fun net ->
      match Netlist.driver_of netlist net with
      | None -> ()
      | Some driver ->
          let wires = float_of_int (Net.width net * Cell.count driver) in
          let driver_region = Cell.region driver in
          let readers = Netlist.readers_of netlist net in
          let crossing =
            List.exists
              (fun reader ->
                not (String.equal (Cell.region reader) driver_region))
              readers
          in
          if crossing then begin
            let worst =
              List.fold_left
                (fun acc reader ->
                  let d =
                    Floorplan.distance fp ~from_:driver_region
                      ~to_:(Cell.region reader)
                  in
                  max acc d)
                0.0 readers
            in
            inter := !inter +. (wires *. worst *. 1000.0) (* mm -> um *)
          end
          else
            match partition_of_region driver_region with
            | None -> ()
            | Some p ->
                let diag =
                  sqrt
                    ((p.Floorplan.rect.Floorplan.w ** 2.0)
                    +. (p.Floorplan.rect.Floorplan.h ** 2.0))
                in
                let len_um =
                  intra_length_fraction *. diag *. 1000.0 *. congestion
                in
                intra := !intra +. (wires *. len_um));
  let total = !intra +. !inter in
  (* distribute: intra demand by layer preference over M2-M5 weighted to
     the bottom; inter demand over M4-M7 weighted to the top *)
  let layers = Metal.signal_layers tech.Tech.metal in
  let intra_share name =
    match name with
    | "M2" -> 0.26
    | "M3" -> 0.34
    | "M4" -> 0.16
    | "M5" -> 0.14
    | "M6" -> 0.07
    | "M7" -> 0.03
    | _ -> 0.0
  in
  let inter_share name =
    match name with
    | "M2" -> 0.04
    | "M3" -> 0.08
    | "M4" -> 0.18
    | "M5" -> 0.22
    | "M6" -> 0.28
    | "M7" -> 0.20
    | _ -> 0.0
  in
  let per_layer_um =
    List.map
      (fun layer ->
        let name = layer.Metal.name in
        (name, (!intra *. intra_share name) +. (!inter *. inter_share name)))
      layers
  in
  {
    per_layer_um;
    total_um = total;
    intra_um = !intra;
    inter_um = !inter;
    congestion;
  }

let layer_um t name =
  Option.value ~default:0.0 (List.assoc_opt name t.per_layer_um)

let pp fmt t =
  List.iter
    (fun (name, um) -> Format.fprintf fmt "%s: %.0f um@." name um)
    t.per_layer_um
