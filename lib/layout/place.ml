(* Analytical global placement of the partition grid (eplace-style).

   The estimator floorplan ({!Floorplan.build}) stacks CU partitions in
   two fixed columns flanking the central GMC/top column — faithful to
   the paper's published layouts, but increasingly pessimal past a few
   CUs: the worst CU sits a whole column away from the general memory
   controller, and the unbuffered cross-partition RC grows with the
   square of that distance.  This module re-places the same partitions
   with the analytical formulation of the global placers the DG-RePlAce
   line of work builds on:

     minimise  sum_ij w_ij ((xi-xj)^2 + (yi-yj)^2)   (quadratic WL)
             + lambda * sum_ij overlap(i,j)^2        (density penalty)

   where w_ij is the cross-partition wire demand extracted from the
   netlist (width x instance count, exactly the weights
   {!Route.estimate} charges), the GMC block is anchored at the origin
   and every other partition (CUs *and* the top glue) is movable.  The
   penalty multiplier escalates geometrically, Nesterov's accelerated
   descent drives the iterates, and a deterministic abutment legalizer
   removes the residual overlap.  The result is an ordinary
   {!Floorplan.t}, so routing estimation and post-route timing consume
   placed centroids with no code changes.

   Determinism: the gradient of each block is summed over partners in
   fixed index order by exactly one task, [Parallel.map] preserves
   order, and ties in the overlap direction break on block index — so
   the placement is bit-identical at any domain count (enforced by
   tests and the CI smoke at 4 domains). *)

open Ggpu_synth

type t = {
  floorplan : Floorplan.t; (* placed partitions, die = bounding box *)
  iterations : int;
  wirelength_init_mm : float; (* weighted Manhattan WL, clustered init *)
  wirelength_mm : float; (* ... after descent + legalization *)
  overflow : float; (* residual pre-legalization overlap fraction *)
  domains : int;
}

(* --- connectivity extraction ------------------------------------------ *)

(* Pairwise wire demand between regions: for every net whose readers
   leave the driver's region, charge [width x count] wires to each
   (driver region, reader region) pair — the same per-net weight
   {!Route.estimate} uses, so the objective optimises what the router
   measures. *)
let pair_weights netlist ~index ~n =
  let w = Array.make (n * n) 0.0 in
  Ggpu_hw.Netlist.iter_nets netlist (fun net ->
      match Ggpu_hw.Netlist.driver_of netlist net with
      | None -> ()
      | Some driver -> (
          match Hashtbl.find_opt index (Ggpu_hw.Cell.region driver) with
          | None -> ()
          | Some i ->
              let wires =
                float_of_int
                  (Ggpu_hw.Net.width net * Ggpu_hw.Cell.count driver)
              in
              List.iter
                (fun reader ->
                  match
                    Hashtbl.find_opt index (Ggpu_hw.Cell.region reader)
                  with
                  | Some j when j <> i ->
                      w.((i * n) + j) <- w.((i * n) + j) +. wires;
                      w.((j * n) + i) <- w.((j * n) + i) +. wires
                  | Some _ | None -> ())
                (Ggpu_hw.Netlist.readers_of netlist net)))
      ;
  w

(* --- geometry --------------------------------------------------------- *)

(* Block shapes: CUs keep the estimator's 1.6:1 aspect (their internal
   placement is unchanged — only the partition grid moves); the anchored
   GMC and the movable top glue become squares, which also shortens
   their intra-partition Rent average versus the estimator's full-height
   sliver. *)
let cu_aspect = 1.6

let shape ~aspect fp =
  let h = sqrt (fp /. aspect) in
  (aspect *. h, h)

let manhattan_wl ~weights ~n xs ys =
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let w = weights.((i * n) + j) in
      if w > 0.0 then
        total :=
          !total
          +. (w *. (abs_float (xs.(i) -. xs.(j)) +. abs_float (ys.(i) -. ys.(j))))
    done
  done;
  !total

(* --- gradient --------------------------------------------------------- *)

(* d/dxi of the objective for block [i]: quadratic wirelength pull plus
   the overlap push.  Partners are scanned in ascending index order and
   the zero-distance tie pushes the lower-index block negative, so the
   value is a pure function of (positions, lambda, i). *)
let block_gradient ~weights ~n ~bw ~bh ~lambda xs ys i =
  let gx = ref 0.0 and gy = ref 0.0 in
  for j = 0 to n - 1 do
    if j <> i then begin
      let dx = xs.(i) -. xs.(j) and dy = ys.(i) -. ys.(j) in
      let w = weights.((i * n) + j) in
      if w > 0.0 then begin
        gx := !gx +. (2.0 *. w *. dx);
        gy := !gy +. (2.0 *. w *. dy)
      end;
      (* smooth pairwise overlap: p = (ox * oy)^2 with
         ox = max 0 ((wi+wj)/2 - |dx|) *)
      let ox = ((bw.(i) +. bw.(j)) /. 2.0) -. abs_float dx in
      let oy = ((bh.(i) +. bh.(j)) /. 2.0) -. abs_float dy in
      if ox > 0.0 && oy > 0.0 then begin
        let sx =
          if dx > 0.0 then 1.0
          else if dx < 0.0 then -1.0
          else if i < j then -1.0
          else 1.0
        in
        let sy =
          if dy > 0.0 then 1.0
          else if dy < 0.0 then -1.0
          else if i < j then -1.0
          else 1.0
        in
        (* p = ox * oy and d(ox)/dxi = -sx, so
           d(p^2)/dxi = 2 p * oy * (-sx) *)
        let p = ox *. oy in
        gx := !gx +. (lambda *. 2.0 *. p *. oy *. (-.sx));
        gy := !gy +. (lambda *. 2.0 *. p *. ox *. (-.sy))
      end
    end
  done;
  (!gx, !gy)

let overlap_area ~n ~bw ~bh xs ys =
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let ox =
        ((bw.(i) +. bw.(j)) /. 2.0) -. abs_float (xs.(i) -. xs.(j))
      in
      let oy =
        ((bh.(i) +. bh.(j)) /. 2.0) -. abs_float (ys.(i) -. ys.(j))
      in
      if ox > 0.0 && oy > 0.0 then total := !total +. (ox *. oy)
    done
  done;
  !total

(* --- legalization ----------------------------------------------------- *)

(* Deterministic abutment legalizer.  Blocks are committed in ascending
   order of distance-to-anchor (ties on index): each block lands on the
   overlap-free candidate position nearest its optimised target, where
   candidates abut the already-committed rects on all four sides at
   three alignments each, plus the target itself and an always-feasible
   slot right of everything.  No randomness, no iteration-order
   dependence. *)
let legalize ~n ~bw ~bh ~fixed xs ys =
  let committed = ref [] in
  (* (x, y, w, h) with x,y = lower-left corner *)
  let overlaps (x, y, w, h) =
    List.exists
      (fun (cx, cy, cw, ch) ->
        x +. w > cx +. 1e-9
        && cx +. cw > x +. 1e-9
        && y +. h > cy +. 1e-9
        && cy +. ch > y +. 1e-9)
      !committed
  in
  let out_x = Array.make n 0.0 and out_y = Array.make n 0.0 in
  let commit i x y =
    out_x.(i) <- x +. (bw.(i) /. 2.0);
    out_y.(i) <- y +. (bh.(i) /. 2.0);
    committed := (x, y, bw.(i), bh.(i)) :: !committed
  in
  (* anchored blocks first, at their exact positions *)
  Array.iteri
    (fun i is_fixed ->
      if is_fixed then
        commit i (xs.(i) -. (bw.(i) /. 2.0)) (ys.(i) -. (bh.(i) /. 2.0)))
    fixed;
  let movable =
    List.filter (fun i -> not fixed.(i)) (List.init n Fun.id)
    |> List.sort (fun a b ->
           let da = abs_float xs.(a) +. abs_float ys.(a)
           and db = abs_float xs.(b) +. abs_float ys.(b) in
           let c = Float.compare da db in
           if c <> 0 then c else Int.compare a b)
  in
  List.iter
    (fun i ->
      let w = bw.(i) and h = bh.(i) in
      let tx = xs.(i) -. (w /. 2.0) and ty = ys.(i) -. (h /. 2.0) in
      let candidates = ref [ (tx, ty) ] in
      List.iter
        (fun (cx, cy, cw, ch) ->
          let aligns_y = [ cy; cy +. ch -. h; ty ] in
          let aligns_x = [ cx; cx +. cw -. w; tx ] in
          List.iter
            (fun y ->
              candidates := (cx +. cw, y) :: (cx -. w, y) :: !candidates)
            aligns_y;
          List.iter
            (fun x ->
              candidates := (x, cy +. ch) :: (x, cy -. h) :: !candidates)
            aligns_x)
        !committed;
      (* always-feasible fallback: right of everything committed *)
      let right_edge =
        List.fold_left
          (fun acc (cx, _, cw, _) -> Float.max acc (cx +. cw))
          0.0 !committed
      in
      candidates := (right_edge, ty) :: !candidates;
      let best = ref None in
      List.iter
        (fun (x, y) ->
          if not (overlaps (x, y, w, h)) then begin
            let d = ((x -. tx) ** 2.0) +. ((y -. ty) ** 2.0) in
            match !best with
            | Some (bd, _, _) when bd <= d -> ()
            | Some _ | None -> best := Some (d, x, y)
          end)
        (List.rev !candidates);
      match !best with
      | Some (_, x, y) -> commit i x y
      | None -> commit i right_edge ty (* unreachable: fallback is free *))
    movable;
  (out_x, out_y)

(* --- the placer ------------------------------------------------------- *)

let default_iterations = 600

let place ?(domains = 1) ?(iterations = default_iterations) ?gmc_copies tech
    netlist ~num_cus =
  Ggpu_obs.Trace.with_span "layout.place"
    ~args:[ ("cus", string_of_int num_cus) ]
  @@ fun () ->
  Ggpu_obs.Metrics.count "layout.place.calls" 1;
  (* the estimator floorplan supplies partition inventory, areas and
     footprints; only the geometry is re-derived *)
  let fp0 = Floorplan.build ?gmc_copies tech netlist ~num_cus in
  let parts = Array.of_list fp0.Floorplan.partitions in
  let n = Array.length parts in
  let index = Hashtbl.create n in
  Array.iteri
    (fun i p -> Hashtbl.replace index p.Floorplan.part_name i)
    parts;
  let bw = Array.make n 0.0 and bh = Array.make n 0.0 in
  let fixed = Array.make n false in
  Array.iteri
    (fun i p ->
      let name = p.Floorplan.part_name in
      let is_cu = String.length name > 2 && String.sub name 0 2 = "cu" in
      let density =
        if String.equal name "top" then Floorplan.top_density
        else Floorplan.cu_density
      in
      let fp_area =
        (p.Floorplan.area.Area.logic_mm2 /. density)
        +. p.Floorplan.area.Area.memory_mm2
      in
      let aspect = if is_cu then cu_aspect else 1.0 in
      let _, h = shape ~aspect fp_area in
      bw.(i) <- aspect *. h;
      bh.(i) <- h;
      (* the GMC column (and its future-work copies) stays anchored *)
      fixed.(i) <-
        String.equal name "gmc"
        || (String.length name > 3 && String.sub name 0 4 = "gmc#"))
    parts;
  let weights = pair_weights netlist ~index ~n in
  (* clustered initialisation around the anchor, eplace-style: movable
     blocks start near the GMC centre with deterministic per-index
     angular offsets so the quadratic pull unfolds them from the
     interesting basin *)
  let anchor_r = Array.fold_left Float.max 0.0 bw /. 4.0 in
  let xs = Array.make n 0.0 and ys = Array.make n 0.0 in
  let fixed_at = Array.make n (0.0, 0.0) in
  let next_gmc = ref 0 in
  Array.iteri
    (fun i p ->
      if fixed.(i) then begin
        (* anchored copies spread along y, first copy at the origin *)
        let k = !next_gmc in
        incr next_gmc;
        let y = float_of_int k *. (bh.(i) +. (0.1 *. bh.(i))) in
        xs.(i) <- 0.0;
        ys.(i) <- y;
        fixed_at.(i) <- (0.0, y)
      end
      else begin
        let t = float_of_int (i + 1) in
        xs.(i) <- anchor_r *. cos (2.399963 *. t);
        (* golden angle *)
        ys.(i) <- anchor_r *. sin (2.399963 *. t)
      end;
      ignore p)
    parts;
  let wl_init = manhattan_wl ~weights ~n xs ys in
  (* gradient fan-out: blocks are split into [Pool.size] contiguous
     chunks; each chunk's gradients are computed by one task in index
     order, so the result is independent of the chunking *)
  let pool = Ggpu_par.Parallel.Pool.create ~domains () in
  let chunk_count = max 1 (Ggpu_par.Parallel.Pool.size pool) in
  let chunks =
    List.init chunk_count (fun c ->
        let lo = c * n / chunk_count and hi = (c + 1) * n / chunk_count in
        (lo, hi))
    |> List.filter (fun (lo, hi) -> hi > lo)
  in
  let gradient ~lambda xs ys =
    let parts =
      Ggpu_par.Parallel.Pool.map pool
        (fun (lo, hi) ->
          Array.init (hi - lo) (fun d ->
              block_gradient ~weights ~n ~bw ~bh ~lambda xs ys (lo + d)))
        chunks
    in
    let gx = Array.make n 0.0 and gy = Array.make n 0.0 in
    List.iter2
      (fun (lo, _) arr ->
        Array.iteri
          (fun d (x, y) ->
            gx.(lo + d) <- x;
            gy.(lo + d) <- y)
          arr)
      chunks parts;
    (gx, gy)
  in
  (* lambda normalisation: start where the density push is a small
     fraction of the wirelength pull, escalate geometrically *)
  let grad_norm g =
    Array.fold_left (fun acc v -> acc +. abs_float v) 0.0 g
  in
  let gx0, gy0 = gradient ~lambda:0.0 xs ys in
  let wl_pull = grad_norm gx0 +. grad_norm gy0 in
  let gx1, gy1 = gradient ~lambda:1.0 xs ys in
  let density_push =
    grad_norm gx1 +. grad_norm gy1 -. wl_pull |> abs_float
  in
  let lambda0 =
    if density_push > 1e-12 then 0.1 *. wl_pull /. density_push else 1.0
  in
  let lambda = ref lambda0 in
  let scale =
    (* trust region: cap the per-iteration move at a fraction of the
       average block dimension *)
    let avg =
      (Array.fold_left ( +. ) 0.0 bw +. Array.fold_left ( +. ) 0.0 bh)
      /. float_of_int (2 * n)
    in
    0.12 *. avg
  in
  (* Nesterov accelerated descent on the movable coordinates *)
  let ux = Array.copy xs and uy = Array.copy ys in
  let px = Array.copy xs and py = Array.copy ys in
  (* previous u *)
  let a = ref 1.0 in
  for _step = 1 to iterations do
    let gx, gy = gradient ~lambda:!lambda xs ys in
    let gmax =
      let m = ref 1e-12 in
      for i = 0 to n - 1 do
        if not fixed.(i) then begin
          m := Float.max !m (abs_float gx.(i));
          m := Float.max !m (abs_float gy.(i))
        end
      done;
      !m
    in
    let step = scale /. gmax in
    let a' = (1.0 +. sqrt ((4.0 *. !a *. !a) +. 1.0)) /. 2.0 in
    let momentum = (!a -. 1.0) /. a' in
    for i = 0 to n - 1 do
      if not fixed.(i) then begin
        let nx = xs.(i) -. (step *. gx.(i)) in
        let ny = ys.(i) -. (step *. gy.(i)) in
        xs.(i) <- nx +. (momentum *. (nx -. px.(i)));
        ys.(i) <- ny +. (momentum *. (ny -. py.(i)));
        px.(i) <- nx;
        py.(i) <- ny;
        ux.(i) <- nx;
        uy.(i) <- ny
      end
      else begin
        let fx, fy = fixed_at.(i) in
        xs.(i) <- fx;
        ys.(i) <- fy
      end
    done;
    a := a';
    lambda := !lambda *. 1.015
  done;
  (* descend to the last proximal iterate (not the extrapolated one) *)
  Array.blit ux 0 xs 0 n;
  Array.blit uy 0 ys 0 n;
  for i = 0 to n - 1 do
    if fixed.(i) then begin
      let fx, fy = fixed_at.(i) in
      xs.(i) <- fx;
      ys.(i) <- fy
    end
  done;
  let block_area =
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      s := !s +. (bw.(i) *. bh.(i))
    done;
    !s
  in
  let overflow = overlap_area ~n ~bw ~bh xs ys /. block_area in
  let lx, ly = legalize ~n ~bw ~bh ~fixed xs ys in
  Ggpu_par.Parallel.Pool.shutdown pool;
  let wl_final = manhattan_wl ~weights ~n lx ly in
  (* re-assemble a floorplan: same partitions, placed rects, die =
     bounding box shifted to the origin *)
  let min_x = ref infinity
  and min_y = ref infinity
  and max_x = ref neg_infinity
  and max_y = ref neg_infinity in
  for i = 0 to n - 1 do
    min_x := Float.min !min_x (lx.(i) -. (bw.(i) /. 2.0));
    min_y := Float.min !min_y (ly.(i) -. (bh.(i) /. 2.0));
    max_x := Float.max !max_x (lx.(i) +. (bw.(i) /. 2.0));
    max_y := Float.max !max_y (ly.(i) +. (bh.(i) /. 2.0))
  done;
  let partitions =
    Array.to_list
      (Array.mapi
         (fun i p ->
           {
             p with
             Floorplan.rect =
               {
                 Floorplan.x = lx.(i) -. (bw.(i) /. 2.0) -. !min_x;
                 y = ly.(i) -. (bh.(i) /. 2.0) -. !min_y;
                 w = bw.(i);
                 h = bh.(i);
               };
           })
         parts)
  in
  let floorplan =
    {
      fp0 with
      Floorplan.die =
        {
          Floorplan.x = 0.0;
          y = 0.0;
          w = !max_x -. !min_x;
          h = !max_y -. !min_y;
        };
      partitions;
    }
  in
  Ggpu_obs.Metrics.count "layout.place.iterations" iterations;
  {
    floorplan;
    iterations;
    wirelength_init_mm = wl_init;
    wirelength_mm = wl_final;
    overflow;
    domains;
  }

let pp fmt t =
  Format.fprintf fmt
    "placed %d partitions in %d iterations: WL %.2f -> %.2f mm (x%.2f), \
     overflow %.4f, die %.2f x %.2f mm"
    (List.length t.floorplan.Floorplan.partitions)
    t.iterations t.wirelength_init_mm t.wirelength_mm
    (if t.wirelength_mm > 0.0 then t.wirelength_init_mm /. t.wirelength_mm
     else 0.0)
    t.overflow t.floorplan.Floorplan.die.Floorplan.w
    t.floorplan.Floorplan.die.Floorplan.h
