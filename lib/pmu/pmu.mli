(** Performance-monitoring unit for the FGPU simulator: per-CU
    per-cause cycle attribution, a cycle-strided hot-PC histogram, and
    virtual-time occupancy/lifetime events through {!Ggpu_obs.Trace}.

    The collector is a pure observer — it reads values the scheduler
    already computed and never feeds anything back, so instrumented
    runs are bit-identical to bare runs.  The simulator pays for it
    only when a collector is passed ([Gpu.run ?pmu]); the disabled cost
    is one load-and-branch per issued wavefront-instruction.

    Every cycle of every CU lands in exactly one bucket, so each CU's
    bucket vector sums to the run's total cycles (and the grid total to
    [cycles x num_cus]) — the invariant perf-report's validator
    checks. *)

type t

(** {1 Buckets}

    Indices into a CU's bucket vector, in [bucket_names] order:
    - [issue] — vector-pipeline beats spent issuing with a full mask
      (plus divider occupancy and configured issue overhead);
    - [div_serial] — beats spent issuing with a partial active mask:
      the serialisation cost of divergence;
    - [stall_mem_hit]/[stall_mem_miss]/[stall_mem_axi] — idle cycles
      waiting on a memory access that hit, missed, or missed and also
      contended for an AXI data port;
    - [stall_barrier] — idle cycles waiting for workgroup barriers;
    - [stall_latency] — idle cycles hidden behind fixed pipeline
      latencies (multiplier, branch penalty, dispatch);
    - [idle_empty] — cycles after the CU drained (no resident work). *)

val n_buckets : int
val bucket_names : string array

val b_issue : int
val b_div_serial : int
val b_stall_mem_hit : int
val b_stall_mem_miss : int
val b_stall_mem_axi : int
val b_stall_barrier : int
val b_stall_latency : int
val b_idle_empty : int

(** {1 Stall kinds}

    The simulator stores one per wavefront — the reason its next issue
    is delayed, classified when the previous issue completed.  Values
    are the corresponding stall-bucket indices, so {!on_issue} charges
    idle gaps with a single array index. *)

val sk_mem_hit : int
val sk_mem_miss : int
val sk_mem_axi : int
val sk_barrier : int
val sk_latency : int

val sk_of_mem_class : int -> int
(** Map {!Cache.take_access_class}'s result (0 = all lines hit,
    1 = some line missed, 2 = some miss contended for AXI) to a stall
    kind. *)

(** {1 Collection} *)

val create : ?stride:int -> num_cus:int -> prog_len:int -> unit -> t
(** A collector for one run of [num_cus] CUs over a [prog_len]-
    instruction program.  [stride] (default 64) is the hot-PC sampling
    period in cycles of each CU's own timeline. *)

val num_cus : t -> int

val on_issue :
  t -> cu:int -> now:int -> busy:int -> pc:int -> divergent:bool ->
  stall:int -> unit
(** Record one issued wavefront-instruction: the idle gap since the
    CU's last accounted cycle goes to the [stall] bucket, the [busy]
    pipeline occupancy to [issue] (or [div_serial] when [divergent]),
    and the issued [pc] is sampled once per [stride] cycles. *)

val finalize : t -> cycles:int -> unit
(** Settle each CU's tail against the run's total [cycles]: trailing
    drained time becomes [idle_empty]; an over-account from a final
    issue-overhead window is clipped from [issue].  Establishes the
    sum-to-cycles invariant; call once, after the event loop drains. *)

(** {1 Timeline}

    Virtual-time events through the ambient {!Ggpu_obs.Trace} (no-ops
    unless tracing is enabled).  Simulated cycles ride in the tracer's
    nanosecond field (1 cycle = 1 ns); each CU gets its own track. *)

val timeline_tid : cu:int -> int
(** Trace thread id carrying CU [cu]'s occupancy and wavefront tracks
    ([100 + cu], clear of real domain ids). *)

val occupancy : cu:int -> now:int -> resident:int -> active:int -> unit
(** One sample of a CU's wavefront-occupancy counter track: [resident]
    wavefronts in its slots, [active] of them runnable. *)

val wf_span : cu:int -> wg:int -> wf:int -> dispatched:int -> retired:int -> unit
(** One complete span covering a wavefront's dispatch-to-retire
    lifetime. *)

(** {1 Summaries} *)

type summary = {
  s_num_cus : int;
  s_cycles : int;
  s_stride : int;
  s_samples : int;  (** total hot-PC samples taken *)
  s_buckets : int array array;  (** per CU, [n_buckets] cells each *)
  s_hot : (int * string * int) list;
      (** (pc, disassembly, samples), hottest first, ties by pc *)
}

val summarize : t -> program:Ggpu_isa.Fgpu_isa.t array -> summary
(** Snapshot the collector after {!finalize}, symbolising sampled PCs
    against [program]. *)

val bucket_total : summary -> string -> int
(** Sum of the named bucket across all CUs.
    @raise Invalid_argument on an unknown bucket name. *)

val pp_summary : Format.formatter -> summary -> unit
(** Per-CU bucket table with a totals row. *)

val pp_hot : ?limit:int -> Format.formatter -> summary -> unit
(** Self-time-style hot-PC table, top [limit] (default 10) rows. *)
