(** PERF_REPORT.json: per-kernel PMU results with bottleneck
    classification, a trace-check-style structural validator, and a
    baseline regression diff — the machinery behind
    [gpuplanner perf-report] and its CI gate. *)

val schema_id : string
(** ["ggpu.perf_report/1"], pinned in the report's [schema] field. *)

val classifications : string list
(** The four bottleneck classes the classifier can emit. *)

type entry = {
  e_kernel : string;
  e_cus : int;
  e_size : int;
  e_correct : bool;  (** output matched the reference interpreter *)
  e_stats : (string * int) list;  (** {!Ggpu_fgpu.Stats.to_assoc} *)
  e_hit_rate : float option;  (** [None] when the kernel touched no memory *)
  e_summary : Pmu.summary;
}

val classify : Pmu.summary -> string
(** Dominant bottleneck of a kernel's grid-wide bucket totals:
    [memory-bound] (cache/AXI stalls), [divergence-bound] (serialised
    partial-mask issue), [occupancy-limited] (barrier + latency +
    drained-CU cycles — more resident wavefronts would help), or
    [compute-bound] (full-mask issue dominates).  Ties resolve in that
    order. *)

val to_json : entry list -> Ggpu_obs.Json.t
val write : path:string -> entry list -> unit

val validate_json : Ggpu_obs.Json.t -> (int, string) result
(** Check schema id, per-entry field shapes, a known classification,
    and the PMU invariant that every CU's buckets sum to the entry's
    cycle count.  Returns the number of kernel entries. *)

val validate_file : string -> (int, string) result

val load : string -> (Ggpu_obs.Json.t, string) result
(** Parse a report file (no structural validation). *)

type diff_row = {
  d_kernel : string;
  d_cus : int;
  d_base_cycles : int;
  d_cur_cycles : int;
  d_pct : float;  (** positive = slower than baseline; [nan] if missing *)
  d_regressed : bool;
}

val diff :
  baseline:Ggpu_obs.Json.t ->
  current:Ggpu_obs.Json.t ->
  max_regress_pct:float ->
  (diff_row list, string) result
(** Per-(kernel, cus) cycle comparison of two reports, sorted by kernel
    then CU count.  A row regresses when current cycles exceed baseline
    by more than [max_regress_pct] percent, or when the configuration
    is missing from [current] entirely. *)

val pp_diff : Format.formatter -> diff_row list -> unit
