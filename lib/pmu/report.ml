(* PERF_REPORT.json: per-kernel PMU results, their bottleneck
   classification, a structural validator, and a baseline regression
   diff — the machinery behind `gpuplanner perf-report` and its CI
   gate.

   The classifier reduces each kernel's grid-wide bucket totals to four
   scores and picks the dominant one:

     memory     = stall_mem_hit + stall_mem_miss + stall_mem_axi
     divergence = div_serial
     occupancy  = stall_barrier + stall_latency + idle_empty
     compute    = issue

   Latency stalls count as an occupancy signal: an under-occupied CU
   cannot hide fixed pipeline latencies behind other wavefronts, which
   is exactly what "more resident wavefronts would help" means.  Ties
   resolve memory > divergence > occupancy > compute — the order in
   which the paper's own analysis explains its outliers. *)

module J = Ggpu_obs.Json

let schema_id = "ggpu.perf_report/1"

let classifications =
  [ "memory-bound"; "divergence-bound"; "occupancy-limited"; "compute-bound" ]

type entry = {
  e_kernel : string;
  e_cus : int;
  e_size : int;
  e_correct : bool;
  e_stats : (string * int) list;
  e_hit_rate : float option;
  e_summary : Pmu.summary;
}

let classify (s : Pmu.summary) =
  let b name = Pmu.bucket_total s name in
  let scores =
    [
      ("memory-bound", b "stall_mem_hit" + b "stall_mem_miss" + b "stall_mem_axi");
      ("divergence-bound", b "div_serial");
      ("occupancy-limited", b "stall_barrier" + b "stall_latency" + b "idle_empty");
      ("compute-bound", b "issue");
    ]
  in
  (* ties keep the earlier (higher-priority) class *)
  fst
    (List.fold_left
       (fun (bn, bv) (n, v) -> if v > bv then (n, v) else (bn, bv))
       ("compute-bound", min_int) scores)

let hot_limit = 10

let entry_to_json e =
  let s = e.e_summary in
  J.Obj
    [
      ("kernel", J.String e.e_kernel);
      ("cus", J.Int e.e_cus);
      ("size", J.Int e.e_size);
      ("correct", J.Bool e.e_correct);
      ("classification", J.String (classify s));
      ("cycles", J.Int s.Pmu.s_cycles);
      ("stride", J.Int s.Pmu.s_stride);
      ("samples", J.Int s.Pmu.s_samples);
      ("stats", J.Obj (List.map (fun (k, v) -> (k, J.Int v)) e.e_stats));
      ( "hit_rate",
        match e.e_hit_rate with None -> J.Null | Some r -> J.Float r );
      ( "buckets",
        J.Obj
          (Array.to_list
             (Array.mapi
                (fun cu row ->
                  ( Printf.sprintf "cu%d" cu,
                    J.Obj
                      (Array.to_list
                         (Array.mapi
                            (fun b v -> (Pmu.bucket_names.(b), J.Int v))
                            row)) ))
                s.Pmu.s_buckets)) );
      ( "hot_pcs",
        J.List
          (List.filteri
             (fun i _ -> i < hot_limit)
             s.Pmu.s_hot
          |> List.map (fun (pc, insn, n) ->
                 J.Obj
                   [
                     ("pc", J.Int pc);
                     ("insn", J.String insn);
                     ("samples", J.Int n);
                   ])) );
    ]

let to_json entries =
  J.Obj
    [
      ("schema", J.String schema_id);
      ("kernels", J.List (List.map entry_to_json entries));
    ]

let write ~path entries =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string (to_json entries));
      output_char oc '\n')

(* --- Validation -------------------------------------------------------- *)

(* Structural checker in the mould of [Trace.validate_json]: beyond
   field presence it enforces the PMU's load-bearing invariant — every
   CU's buckets sum to the kernel's cycle count — so a report whose
   attribution silently drifted cannot pass CI. *)

let ( let* ) = Result.bind

let field name obj =
  match J.member name obj with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let int_field name obj =
  match J.member name obj with
  | Some (J.Int n) -> Ok n
  | _ -> Error (Printf.sprintf "missing integer field %S" name)

let str_field name obj =
  match J.member name obj with
  | Some (J.String s) -> Ok s
  | _ -> Error (Printf.sprintf "missing string field %S" name)

let validate_entry i entry =
  let ctx msg =
    Error (Printf.sprintf "kernel entry %d: %s" i msg)
  in
  let lift = function Ok v -> Ok v | Error msg -> ctx msg in
  let* kernel = lift (str_field "kernel" entry) in
  let* cus = lift (int_field "cus" entry) in
  let* cycles = lift (int_field "cycles" entry) in
  let* _ = lift (int_field "size" entry) in
  let* _ = lift (int_field "samples" entry) in
  let* cls = lift (str_field "classification" entry) in
  let* () =
    if List.mem cls classifications then Ok ()
    else ctx (Printf.sprintf "unknown classification %S" cls)
  in
  let* () =
    match J.member "hit_rate" entry with
    | Some (J.Float _ | J.Int _ | J.Null) -> Ok ()
    | _ -> ctx "hit_rate must be a number or null"
  in
  let* buckets = lift (field "buckets" entry) in
  let* cu_rows =
    match buckets with
    | J.Obj rows -> Ok rows
    | _ -> ctx "buckets is not an object"
  in
  let* () =
    if List.length cu_rows = cus then Ok ()
    else
      ctx
        (Printf.sprintf "%s: %d bucket rows for %d CUs" kernel
           (List.length cu_rows) cus)
  in
  let check_row (cu, row) =
    let* cells =
      match row with
      | J.Obj cells -> Ok cells
      | _ -> ctx (Printf.sprintf "%s.%s is not an object" kernel cu)
    in
    let* sum =
      List.fold_left
        (fun acc (name, v) ->
          let* acc = acc in
          match v with
          | J.Int n -> Ok (acc + n)
          | _ -> ctx (Printf.sprintf "%s.%s.%s is not an integer" kernel cu name))
        (Ok 0) cells
    in
    if sum = cycles then Ok ()
    else
      ctx
        (Printf.sprintf "%s.%s buckets sum to %d, expected cycles=%d" kernel cu
           sum cycles)
  in
  let* () =
    List.fold_left
      (fun acc row ->
        let* () = acc in
        check_row row)
      (Ok ()) cu_rows
  in
  Ok ()

let validate_json doc =
  let* schema = str_field "schema" doc in
  let* () =
    if schema = schema_id then Ok ()
    else Error (Printf.sprintf "unknown schema %S" schema)
  in
  let* kernels =
    match J.member "kernels" doc with
    | Some (J.List l) -> Ok l
    | _ -> Error "missing kernels array"
  in
  let* () =
    if kernels = [] then Error "empty kernels array" else Ok ()
  in
  let rec go i = function
    | [] -> Ok i
    | e :: rest ->
        let* () = validate_entry i e in
        go (i + 1) rest
  in
  go 0 kernels

let load path =
  let* contents =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))
    with Sys_error msg -> Error msg
  in
  J.parse (String.trim contents)

let validate_file path =
  let* doc = load path in
  validate_json doc

(* --- Regression diff --------------------------------------------------- *)

type diff_row = {
  d_kernel : string;
  d_cus : int;
  d_base_cycles : int;
  d_cur_cycles : int;
  d_pct : float; (* +pct = slower than baseline *)
  d_regressed : bool;
}

let kernel_index doc =
  let* kernels =
    match J.member "kernels" doc with
    | Some (J.List l) -> Ok l
    | _ -> Error "missing kernels array"
  in
  List.fold_left
    (fun acc e ->
      let* acc = acc in
      let* kernel = str_field "kernel" e in
      let* cus = int_field "cus" e in
      let* cycles = int_field "cycles" e in
      Ok (((kernel, cus), cycles) :: acc))
    (Ok []) kernels

let diff ~baseline ~current ~max_regress_pct =
  let* base = kernel_index baseline in
  let* cur = kernel_index current in
  let rows =
    List.rev_map
      (fun ((kernel, cus), base_cycles) ->
        match List.assoc_opt (kernel, cus) cur with
        | None ->
            (* a kernel that vanished from the grid is a regression by
               definition: the gate must not pass on shrunk coverage *)
            {
              d_kernel = kernel;
              d_cus = cus;
              d_base_cycles = base_cycles;
              d_cur_cycles = 0;
              d_pct = nan;
              d_regressed = true;
            }
        | Some cur_cycles ->
            let pct =
              if base_cycles = 0 then 0.0
              else
                100.0
                *. float_of_int (cur_cycles - base_cycles)
                /. float_of_int base_cycles
            in
            {
              d_kernel = kernel;
              d_cus = cus;
              d_base_cycles = base_cycles;
              d_cur_cycles = cur_cycles;
              d_pct = pct;
              d_regressed = pct > max_regress_pct;
            })
      base
  in
  Ok
    (List.sort
       (fun a b ->
         match String.compare a.d_kernel b.d_kernel with
         | 0 -> Int.compare a.d_cus b.d_cus
         | c -> c)
       rows)

let pp_diff fmt rows =
  Format.fprintf fmt "@[<v>%-16s %4s %12s %12s %9s@," "kernel" "cus"
    "base cycles" "cur cycles" "delta";
  List.iter
    (fun r ->
      if Float.is_nan r.d_pct then
        Format.fprintf fmt "%-16s %4d %12d %12s %9s  REGRESSED (missing)@,"
          r.d_kernel r.d_cus r.d_base_cycles "-" "-"
      else
        Format.fprintf fmt "%-16s %4d %12d %12d %+8.2f%%%s@," r.d_kernel
          r.d_cus r.d_base_cycles r.d_cur_cycles r.d_pct
          (if r.d_regressed then "  REGRESSED" else ""))
    rows;
  Format.fprintf fmt "@]"
