(* Performance-monitoring unit for the FGPU simulator.

   The collector is a pure observer: every counter is derived from
   values the scheduler already computed (issue time, pipeline
   occupancy, the issuing wavefront's last stall cause), so an
   instrumented run is bit-identical to a bare one.  All state is
   native-int arrays owned by one simulator run on one domain — no
   atomics, no allocation on the per-issue path.

   Attribution model.  Per CU, the timeline is split exactly once:
   every cycle lands in one bucket, so the per-CU bucket vector sums to
   the run's total cycles by construction.  [on_issue] closes the gap
   since the CU's last accounted cycle:

   - the idle gap (scheduler found no ready wavefront) is charged to
     the stall cause of the wavefront that issues next — in an
     event-driven scheduler a ready wavefront issues immediately, so
     the gap exists precisely because that wavefront's previous
     instruction was still completing (memory, barrier, or plain
     pipeline latency);
   - the busy slice (vector-pipeline beats, divider occupancy, issue
     overhead) is charged to [issue], or to [div_serial] when the
     active mask was partial — divergent lane groups serialise, so
     those beats are the direct cost of divergence.

   [finalize] settles the tail: cycles after a CU's last issue are
   [idle_empty] (it drained early — an occupancy signal at the grid
   level), and an over-account from a trailing issue-overhead window is
   clipped from [issue] so the sum invariant survives any config.

   The hot-PC histogram samples the issued PC once per [stride] cycles
   of each CU's own timeline — cycle-strided like a real PMU's
   interrupt-driven profiler, and deterministic because simulated time
   is. *)

let n_buckets = 8
let b_issue = 0
let b_div_serial = 1
let b_stall_mem_hit = 2
let b_stall_mem_miss = 3
let b_stall_mem_axi = 4
let b_stall_barrier = 5
let b_stall_latency = 6
let b_idle_empty = 7

let bucket_names =
  [|
    "issue";
    "div_serial";
    "stall_mem_hit";
    "stall_mem_miss";
    "stall_mem_axi";
    "stall_barrier";
    "stall_latency";
    "idle_empty";
  |]

(* Stall kinds are the bucket ids of the stall rows, so the simulator
   can store one per wavefront and [on_issue] indexes directly. *)
let sk_mem_hit = b_stall_mem_hit
let sk_mem_miss = b_stall_mem_miss
let sk_mem_axi = b_stall_mem_axi
let sk_barrier = b_stall_barrier
let sk_latency = b_stall_latency

let sk_of_mem_class = function
  | 0 -> sk_mem_hit
  | 1 -> sk_mem_miss
  | _ -> sk_mem_axi

type t = {
  num_cus : int;
  stride : int;
  buckets : int array; (* num_cus x n_buckets, CU-major *)
  acct : int array; (* per CU: first cycle not yet attributed *)
  next_sample : int array; (* per CU: next hot-PC sample cycle *)
  hot : int array; (* per program counter: samples *)
  mutable samples : int;
  mutable cycles : int; (* set by finalize *)
}

let create ?(stride = 64) ~num_cus ~prog_len () =
  if num_cus <= 0 then invalid_arg "Pmu.create: non-positive num_cus";
  if stride <= 0 then invalid_arg "Pmu.create: non-positive stride";
  {
    num_cus;
    stride;
    buckets = Array.make (num_cus * n_buckets) 0;
    acct = Array.make num_cus 0;
    next_sample = Array.make num_cus 0;
    hot = Array.make (max 1 prog_len) 0;
    samples = 0;
    cycles = 0;
  }

let num_cus t = t.num_cus

let on_issue t ~cu ~now ~busy ~pc ~divergent ~stall =
  let base = cu * n_buckets in
  let gap = now - Array.unsafe_get t.acct cu in
  if gap > 0 then
    Array.unsafe_set t.buckets (base + stall)
      (Array.unsafe_get t.buckets (base + stall) + gap);
  let busy_bucket = base + if divergent then b_div_serial else b_issue in
  Array.unsafe_set t.buckets busy_bucket
    (Array.unsafe_get t.buckets busy_bucket + busy);
  Array.unsafe_set t.acct cu (now + busy);
  if now >= Array.unsafe_get t.next_sample cu then begin
    Array.unsafe_set t.next_sample cu (now + t.stride);
    if pc >= 0 && pc < Array.length t.hot then begin
      Array.unsafe_set t.hot pc (Array.unsafe_get t.hot pc + 1);
      t.samples <- t.samples + 1
    end
  end

let finalize t ~cycles =
  t.cycles <- cycles;
  for cu = 0 to t.num_cus - 1 do
    let base = cu * n_buckets in
    let rem = cycles - t.acct.(cu) in
    if rem > 0 then
      t.buckets.(base + b_idle_empty) <- t.buckets.(base + b_idle_empty) + rem
    else if rem < 0 then
      (* a trailing issue-overhead window ran past the last completion;
         clip it from the busy bucket so the sum stays exact *)
      t.buckets.(base + b_issue) <- t.buckets.(base + b_issue) + rem;
    t.acct.(cu) <- cycles
  done

(* --- Timeline emission (through the ambient tracer) ------------------- *)

(* Simulated-time events borrow the tracer's nanosecond field for
   cycles (1 cycle = 1 ns, so Perfetto's microsecond axis reads as
   kilocycles).  Each CU gets its own virtual track. *)
let timeline_tid ~cu = 100 + cu

let occupancy ~cu ~now ~resident ~active =
  Ggpu_obs.Trace.counter ~ts_ns:now ~tid:(timeline_tid ~cu)
    (Printf.sprintf "cu%d.wavefronts" cu)
    [ ("resident", resident); ("active", active) ]

let wf_span ~cu ~wg ~wf ~dispatched ~retired =
  Ggpu_obs.Trace.complete ~ts_ns:dispatched
    ~dur_ns:(max 0 (retired - dispatched))
    ~tid:(timeline_tid ~cu)
    (Printf.sprintf "wg%d.wf%d" wg wf)

(* --- Summaries --------------------------------------------------------- *)

type summary = {
  s_num_cus : int;
  s_cycles : int;
  s_stride : int;
  s_samples : int;
  s_buckets : int array array; (* per CU, [n_buckets] cells each *)
  s_hot : (int * string * int) list; (* pc, disassembly, samples; hottest first *)
}

let summarize t ~program =
  let hot = ref [] in
  Array.iteri
    (fun pc n ->
      if n > 0 then
        let insn =
          if pc < Array.length program then
            Ggpu_isa.Fgpu_isa.to_string program.(pc)
          else "<out of program>"
        in
        hot := (pc, insn, n) :: !hot)
    t.hot;
  let s_hot =
    List.sort
      (fun (pa, _, na) (pb, _, nb) ->
        match Int.compare nb na with 0 -> Int.compare pa pb | c -> c)
      !hot
  in
  {
    s_num_cus = t.num_cus;
    s_cycles = t.cycles;
    s_stride = t.stride;
    s_samples = t.samples;
    s_buckets =
      Array.init t.num_cus (fun cu ->
          Array.sub t.buckets (cu * n_buckets) n_buckets);
    s_hot;
  }

let bucket_total s name =
  let b = ref (-1) in
  Array.iteri (fun i n -> if n = name then b := i) bucket_names;
  if !b < 0 then invalid_arg ("Pmu.bucket_total: unknown bucket " ^ name);
  Array.fold_left (fun acc row -> acc + row.(!b)) 0 s.s_buckets

let pp_summary fmt s =
  Format.fprintf fmt "@[<v>%-6s %10s" "cu" "cycles";
  Array.iter (fun n -> Format.fprintf fmt " %14s" n) bucket_names;
  Format.fprintf fmt "@,";
  Array.iteri
    (fun cu row ->
      Format.fprintf fmt "%-6s %10d" (Printf.sprintf "cu%d" cu) s.s_cycles;
      Array.iter (fun v -> Format.fprintf fmt " %14d" v) row;
      Format.fprintf fmt "@,")
    s.s_buckets;
  Format.fprintf fmt "%-6s %10d" "total" (s.s_cycles * s.s_num_cus);
  Array.iteri
    (fun b _ ->
      let total = Array.fold_left (fun acc row -> acc + row.(b)) 0 s.s_buckets in
      Format.fprintf fmt " %14d" total)
    bucket_names;
  Format.fprintf fmt "@]"

let pp_hot ?(limit = 10) fmt s =
  if s.s_samples = 0 then Format.fprintf fmt "no samples"
  else begin
    Format.fprintf fmt "@[<v>%6s %8s %7s  %s@," "pc" "samples" "time%"
      "instruction";
    List.iteri
      (fun i (pc, insn, n) ->
        if i < limit then
          Format.fprintf fmt "%6d %8d %6.1f%%  %s@," pc n
            (100.0 *. float_of_int n /. float_of_int s.s_samples)
            insn)
      s.s_hot;
    Format.fprintf fmt "@]"
  end
