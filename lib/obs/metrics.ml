(* Metrics registry with a deterministic merge.

   The design constraint is the Parallel fan-outs: work is distributed
   over domains by an atomic work-stealing counter, so which domain
   handles which item is a race.  Metrics must nevertheless aggregate to
   the same bits at any domain count.  The fix is to keep every merge
   operation associative AND commutative on exact values: counters and
   histogram cells are ints under addition, gauges are ints under max,
   and timings are integer nanoseconds.  No floats are ever summed. *)

type counter = { mutable c : int }
type gauge = { mutable g : int; mutable g_set : bool }

type histogram = {
  h_bounds : int array; (* strictly ascending inclusive upper bounds *)
  h_counts : int array; (* length = bounds + 1 (overflow) *)
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
}

type entry = Counter of counter | Gauge of gauge | Histogram of histogram
type t = { entries : (string, entry) Hashtbl.t }

let create () = { entries = Hashtbl.create 32 }

let kind_error name = invalid_arg ("Metrics: " ^ name ^ " already has another kind")

let counter t name =
  match Hashtbl.find_opt t.entries name with
  | Some (Counter c) -> c
  | Some _ -> kind_error name
  | None ->
      let c = { c = 0 } in
      Hashtbl.add t.entries name (Counter c);
      c

let add c by =
  if by < 0 then invalid_arg "Metrics.add: negative increment";
  c.c <- c.c + by

let incr c = add c 1
let counter_value c = c.c

let gauge t name =
  match Hashtbl.find_opt t.entries name with
  | Some (Gauge g) -> g
  | Some _ -> kind_error name
  | None ->
      let g = { g = min_int; g_set = false } in
      Hashtbl.add t.entries name (Gauge g);
      g

let gauge_max g v =
  if (not g.g_set) || v > g.g then begin
    g.g <- v;
    g.g_set <- true
  end

let gauge_value g = if g.g_set then Some g.g else None

let default_buckets =
  [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 4096; 16384; 65536; 1_048_576 ]

let check_buckets = function
  | [] -> invalid_arg "Metrics.histogram: empty buckets"
  | b ->
      ignore
        (List.fold_left
           (fun prev x ->
             (match prev with
             | Some p when x <= p ->
                 invalid_arg "Metrics.histogram: buckets not strictly ascending"
             | _ -> ());
             Some x)
           None b)

let histogram ?(buckets = default_buckets) t name =
  check_buckets buckets;
  let bounds = Array.of_list buckets in
  match Hashtbl.find_opt t.entries name with
  | Some (Histogram h) ->
      if h.h_bounds <> bounds then
        invalid_arg ("Metrics.histogram: conflicting buckets for " ^ name);
      h
  | Some _ -> kind_error name
  | None ->
      let h =
        {
          h_bounds = bounds;
          h_counts = Array.make (Array.length bounds + 1) 0;
          h_sum = 0;
          h_min = max_int;
          h_max = min_int;
        }
      in
      Hashtbl.add t.entries name (Histogram h);
      h

let bucket_index bounds v =
  let n = Array.length bounds in
  let i = ref 0 in
  while !i < n && v > bounds.(!i) do
    Stdlib.incr i
  done;
  !i

let observe h v =
  let i = bucket_index h.h_bounds v in
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_sum <- h.h_sum + v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let time_counter c f =
  let t0 = now_ns () in
  Fun.protect f ~finally:(fun () -> add c (max 0 (now_ns () - t0)))

(* --- Snapshots --------------------------------------------------------- *)

type hist_snapshot = {
  bounds : int list;
  counts : int list;
  sum : int;
  min_v : int;
  max_v : int;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_snapshot) list;
}

let empty_snapshot = { counters = []; gauges = []; histograms = [] }

let by_name (a, _) (b, _) = String.compare a b

let snapshot t =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  Hashtbl.iter
    (fun name entry ->
      match entry with
      | Counter c -> counters := (name, c.c) :: !counters
      | Gauge g -> if g.g_set then gauges := (name, g.g) :: !gauges
      | Histogram h ->
          histograms :=
            ( name,
              {
                bounds = Array.to_list h.h_bounds;
                counts = Array.to_list h.h_counts;
                sum = h.h_sum;
                min_v = h.h_min;
                max_v = h.h_max;
              } )
            :: !histograms)
    t.entries;
  {
    counters = List.sort by_name !counters;
    gauges = List.sort by_name !gauges;
    histograms = List.sort by_name !histograms;
  }

(* Merge two sorted assoc lists, combining equal keys. *)
let rec merge_assoc combine a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | (ka, va) :: ta, (kb, vb) :: tb ->
      let c = String.compare ka kb in
      if c < 0 then (ka, va) :: merge_assoc combine ta b
      else if c > 0 then (kb, vb) :: merge_assoc combine a tb
      else (ka, combine ka va vb) :: merge_assoc combine ta tb

let merge_hist name a b =
  if a.bounds <> b.bounds then
    invalid_arg ("Metrics.merge: conflicting buckets for " ^ name);
  {
    bounds = a.bounds;
    counts = List.map2 ( + ) a.counts b.counts;
    sum = a.sum + b.sum;
    min_v = min a.min_v b.min_v;
    max_v = max a.max_v b.max_v;
  }

let merge a b =
  {
    counters = merge_assoc (fun _ x y -> x + y) a.counters b.counters;
    gauges = merge_assoc (fun _ x y -> max x y) a.gauges b.gauges;
    histograms = merge_assoc merge_hist a.histograms b.histograms;
  }

let merge_all = List.fold_left merge empty_snapshot
let equal_snapshot (a : snapshot) b = a = b
let hist_total h = List.fold_left ( + ) 0 h.counts

(* Percentiles from cells: the smallest bucket whose cumulative count
   covers the requested rank.  Integer-exact given the cells, so every
   consumer of one snapshot (bench serve, serve stats, the CLI
   renderer) derives the same number — the property PR 7's ad-hoc
   windowed sampling lacked. *)
let hist_percentile h q =
  let total = hist_total h in
  if total = 0 then 0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = max 1 (min total (int_of_float (ceil (q *. float_of_int total)))) in
    let observed_max = if h.max_v = min_int then 0 else h.max_v in
    let rec go cum bounds counts =
      match (bounds, counts) with
      (* overflow cell (or exhausted): all we know is the observed max *)
      | [], _ | _, [] -> observed_max
      | b :: bs, c :: cs ->
          if cum + c >= rank then min b observed_max else go (cum + c) bs cs
    in
    go 0 h.bounds h.counts
  end
let find_counter s name = List.assoc_opt name s.counters
let find_gauge s name = List.assoc_opt name s.gauges
let find_histogram s name = List.assoc_opt name s.histograms

let snapshot_to_json s =
  let hist_json h =
    Json.Obj
      [
        ("bounds", Json.List (List.map (fun b -> Json.Int b) h.bounds));
        ("counts", Json.List (List.map (fun c -> Json.Int c) h.counts));
        ("sum", Json.Int h.sum);
        ("count", Json.Int (hist_total h));
        ("min", Json.Int (if h.min_v = max_int then 0 else h.min_v));
        ("max", Json.Int (if h.max_v = min_int then 0 else h.max_v));
      ]
  in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.counters));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.gauges));
      ( "histograms",
        Json.Obj (List.map (fun (k, h) -> (k, hist_json h)) s.histograms) );
    ]

(* Text exposition: one line per value, sorted by the snapshot's own
   name ordering, cumulative bucket counts — a stable format scrapers
   can diff byte-for-byte.  Layout:

     counter <name> <value>
     gauge <name> <value>
     histogram <name> count <n> sum <s> min <lo> max <hi>
     bucket <name> le <bound> <cumulative>
     bucket <name> le inf <total>                                       *)
let expose s =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string buf (l ^ "\n")) fmt in
  List.iter (fun (name, v) -> line "counter %s %d" name v) s.counters;
  List.iter (fun (name, v) -> line "gauge %s %d" name v) s.gauges;
  List.iter
    (fun (name, h) ->
      let total = hist_total h in
      line "histogram %s count %d sum %d min %d max %d" name total h.sum
        (if h.min_v = max_int then 0 else h.min_v)
        (if h.max_v = min_int then 0 else h.max_v);
      let cum = ref 0 in
      List.iteri
        (fun i c ->
          cum := !cum + c;
          match List.nth_opt h.bounds i with
          | Some b -> line "bucket %s le %d %d" name b !cum
          | None -> line "bucket %s le inf %d" name !cum)
        h.counts)
    s.histograms;
  Buffer.contents buf

let pp_snapshot fmt s =
  let open Format in
  fprintf fmt "@[<v>";
  if s.counters <> [] then begin
    fprintf fmt "counters:@,";
    List.iter
      (fun (name, v) ->
        if
          String.length name > 3
          && String.sub name (String.length name - 3) 3 = "_ns"
        then fprintf fmt "  %-36s %12d (%.3f ms)@," name v (float_of_int v /. 1e6)
        else fprintf fmt "  %-36s %12d@," name v)
      s.counters
  end;
  if s.gauges <> [] then begin
    fprintf fmt "gauges:@,";
    List.iter (fun (name, v) -> fprintf fmt "  %-36s %12d@," name v) s.gauges
  end;
  if s.histograms <> [] then begin
    fprintf fmt "histograms:@,";
    List.iter
      (fun (name, h) ->
        let total = hist_total h in
        fprintf fmt "  %-36s count=%d sum=%d" name total h.sum;
        if total > 0 then fprintf fmt " min=%d max=%d" h.min_v h.max_v;
        fprintf fmt "@,";
        if total > 0 then begin
          fprintf fmt "   ";
          List.iteri
            (fun i c ->
              if c > 0 then
                match List.nth_opt h.bounds i with
                | Some b -> fprintf fmt " [<=%d]=%d" b c
                | None -> fprintf fmt " [inf]=%d" c)
            h.counts;
          fprintf fmt "@,"
        end)
      s.histograms
  end;
  fprintf fmt "@]"

(* --- Ambient per-domain registries ------------------------------------- *)

let ambient_flag = Atomic.make false
let set_ambient_enabled v = Atomic.set ambient_flag v
let ambient_enabled () = Atomic.get ambient_flag

(* Registries are registered globally on first use by each domain so
   their contents survive the domain's death (Parallel joins its
   workers before results are read). *)
let registry_lock = Mutex.create ()
let registries : t list ref = ref []

let with_lock f =
  Mutex.lock registry_lock;
  Fun.protect f ~finally:(fun () -> Mutex.unlock registry_lock)

let dls_key =
  Domain.DLS.new_key (fun () ->
      let t = create () in
      with_lock (fun () -> registries := t :: !registries);
      t)

let ambient () = Domain.DLS.get dls_key

let ambient_snapshot () =
  let regs = with_lock (fun () -> !registries) in
  merge_all (List.rev_map snapshot regs)

let ambient_reset () =
  let regs = with_lock (fun () -> !registries) in
  List.iter (fun t -> Hashtbl.reset t.entries) regs

let count name by = if ambient_enabled () then add (counter (ambient ()) name) by

let record_gauge name v =
  if ambient_enabled () then gauge_max (gauge (ambient ()) name) v

let observe_named ?buckets name v =
  if ambient_enabled () then observe (histogram ?buckets (ambient ()) name) v

let timed name f =
  if ambient_enabled () then time_counter (counter (ambient ()) name) f
  else f ()
