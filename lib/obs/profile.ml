(* Self-time aggregation over trace spans.

   Events arrive timestamp-sorted; a per-thread stack of open spans
   attributes each span's duration to its own name and subtracts it
   from the enclosing span's self time, the classic profiler
   bookkeeping. *)

type row = { name : string; calls : int; total_ns : int; self_ns : int }

type open_span = {
  o_name : string;
  o_start : int;
  mutable o_child_ns : int; (* time spent in nested spans *)
}

let self_times (events : Trace.event list) =
  let table : (string, row) Hashtbl.t = Hashtbl.create 32 in
  let stacks : (int, open_span list) Hashtbl.t = Hashtbl.create 8 in
  let account name ~dur ~self =
    let prev =
      Option.value
        ~default:{ name; calls = 0; total_ns = 0; self_ns = 0 }
        (Hashtbl.find_opt table name)
    in
    Hashtbl.replace table name
      {
        prev with
        calls = prev.calls + 1;
        total_ns = prev.total_ns + dur;
        self_ns = prev.self_ns + self;
      }
  in
  List.iter
    (fun (e : Trace.event) ->
      let stack = Option.value ~default:[] (Hashtbl.find_opt stacks e.tid) in
      match e.ph with
      | Trace.Begin ->
          Hashtbl.replace stacks e.tid
            ({ o_name = e.name; o_start = e.ts_ns; o_child_ns = 0 } :: stack)
      | Trace.End -> (
          match stack with
          | [] -> () (* unmatched end: skip *)
          | top :: rest ->
              let dur = max 0 (e.ts_ns - top.o_start) in
              let self = max 0 (dur - top.o_child_ns) in
              account top.o_name ~dur ~self;
              (match rest with
              | parent :: _ -> parent.o_child_ns <- parent.o_child_ns + dur
              | [] -> ());
              Hashtbl.replace stacks e.tid rest)
      | Trace.Instant | Trace.Counter -> ()
      | Trace.Complete ->
          (* pre-measured spans carry no nesting information; attribute
             the whole duration as self time *)
          account e.name ~dur:e.dur_ns ~self:e.dur_ns)
    events;
  Hashtbl.fold (fun _ row acc -> row :: acc) table []
  |> List.sort (fun a b ->
         match Int.compare b.self_ns a.self_ns with
         | 0 -> String.compare a.name b.name
         | c -> c)

let pp_table fmt rows =
  let total_self = List.fold_left (fun acc r -> acc + r.self_ns) 0 rows in
  Format.fprintf fmt "@[<v>%-28s %8s %12s %12s %7s@," "span" "calls"
    "total (ms)" "self (ms)" "self%";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-28s %8d %12.3f %12.3f %6.1f%%@," r.name r.calls
        (float_of_int r.total_ns /. 1e6)
        (float_of_int r.self_ns /. 1e6)
        (if total_self = 0 then 0.0
         else 100.0 *. float_of_int r.self_ns /. float_of_int total_self))
    rows;
  Format.fprintf fmt "@]"
