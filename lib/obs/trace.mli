(** Span tracer: nested timed spans with string attributes, exported as
    Chrome trace-event JSON ([chrome://tracing] / Perfetto loadable).

    Tracing is a process-wide switch, off by default; a disabled
    {!with_span} costs one atomic load and a branch, so hot paths can
    stay instrumented unconditionally.  When enabled, each domain
    appends begin/end events to its own buffer (no contention); buffers
    are registered globally so spans recorded inside a joined
    {!Ggpu_core.Parallel} fan-out survive their domain.

    Besides wall-clock spans the tracer records Chrome counter tracks
    ({!counter}, phase ["C"]) and pre-measured complete spans
    ({!complete}, phase ["X"]).  Both take explicit timestamps, so
    virtual-time timelines — e.g. the PMU's per-CU wavefront occupancy
    in simulated cycles — share the same buffers and viewer. *)

type phase = Begin | End | Instant | Counter | Complete

type event = {
  ph : phase;
  name : string;
  ts_ns : int;
  dur_ns : int;  (** [Complete] spans only; [0] otherwise *)
  tid : int;  (** recording domain's id, unless overridden *)
  args : (string * string) list;
  values : (string * int) list;  (** [Counter] series values *)
}

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Drop all buffered events and forget the buffers of joined domains,
    so repeated traced runs in one process don't concatenate stale
    events (or leak one buffer per completed worker domain).  Live
    domains transparently re-register on their next recorded event.
    Not safe to call concurrently with recording — reset between runs,
    not during one. *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span.  The end event is recorded also
    on exceptional exit, so traces stay balanced. *)

val instant : ?args:(string * string) list -> string -> unit

val counter : ?ts_ns:int -> ?tid:int -> string -> (string * int) list -> unit
(** [counter name values] records one sample of a Chrome counter track:
    each [(series, value)] pair becomes a numeric arg, rendered by the
    viewer as a stacked area chart.  [ts_ns]/[tid] default to wall
    clock and the recording domain; pass both to build virtual-time
    tracks (one [tid] per track).  No-op when disabled. *)

val complete :
  ?args:(string * string) list ->
  ?tid:int ->
  ts_ns:int ->
  dur_ns:int ->
  string ->
  unit
(** [complete ~ts_ns ~dur_ns name] records a pre-measured span (phase
    ["X"]) — used when start and duration are computed after the fact,
    e.g. a wavefront's dispatch-to-retire lifetime in simulated cycles.
    No-op when disabled. *)

val emit : event -> unit
(** Append a pre-built event to the calling domain's buffer (no-op when
    disabled).  Lets code that assembles events for its own purposes —
    the serve flight recorder builds span groups whether or not tracing
    is armed — mirror them into the global trace without re-measuring. *)

val events : unit -> event list
(** All buffered events, stably sorted by timestamp (per-domain record
    order is preserved for equal timestamps). *)

(** {1 Trace context}

    Cross-process stitching: a client mints a trace id, the serve wire
    carries it, and every server-side span records it as a [trace_id]
    arg, so one Perfetto search follows a request end to end.  Ids are
    pid-and-counter based — unique among live requests, deterministic
    in tests, no randomness. *)

val new_trace_id : unit -> string
val new_span_id : unit -> string

val ctx_args : trace_id:string -> span_id:string -> (string * string) list
(** The two id args every span of a traced request carries. *)

val events_to_json : event list -> Json.t
(** Render an explicit event list as a complete Chrome trace document
    (used by the flight-recorder dump, which owns its own events rather
    than the global buffers). *)

val to_json : unit -> Json.t

val export : path:string -> unit
(** Write the buffered events as a Chrome trace-event JSON object
    ([{"traceEvents": [...]}]). *)

(** {1 Validation}

    A structural checker for trace files — used by the CI smoke job and
    the test suite, so the emitter cannot silently drift away from the
    format Chrome accepts. *)

type summary = {
  event_count : int;
  span_count : int;  (** matched begin/end pairs *)
  max_depth : int;
  thread_count : int;
}

val validate_json : Json.t -> (summary, string) result
(** Check a parsed document: a top-level [traceEvents] array (or bare
    array) whose elements carry [name]/[ph]/[ts]/[pid]/[tid], with
    begin/end events properly nested (LIFO, matching names) per
    (pid, tid), complete events carrying a non-negative numeric [dur],
    and counter events carrying at least one numeric series in [args].
    Counter and complete events are legal anywhere — they never enter
    the begin/end nesting. *)

val validate_file : string -> (summary, string) result
val pp_summary : Format.formatter -> summary -> unit
