(** Span tracer: nested timed spans with string attributes, exported as
    Chrome trace-event JSON ([chrome://tracing] / Perfetto loadable).

    Tracing is a process-wide switch, off by default; a disabled
    {!with_span} costs one atomic load and a branch, so hot paths can
    stay instrumented unconditionally.  When enabled, each domain
    appends begin/end events to its own buffer (no contention); buffers
    are registered globally so spans recorded inside a joined
    {!Ggpu_core.Parallel} fan-out survive their domain. *)

type phase = Begin | End | Instant

type event = {
  ph : phase;
  name : string;
  ts_ns : int;
  tid : int;  (** recording domain's id *)
  args : (string * string) list;
}

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Drop all buffered events. *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span.  The end event is recorded also
    on exceptional exit, so traces stay balanced. *)

val instant : ?args:(string * string) list -> string -> unit

val events : unit -> event list
(** All buffered events, stably sorted by timestamp (per-domain record
    order is preserved for equal timestamps). *)

val to_json : unit -> Json.t

val export : path:string -> unit
(** Write the buffered events as a Chrome trace-event JSON object
    ([{"traceEvents": [...]}]). *)

(** {1 Validation}

    A structural checker for trace files — used by the CI smoke job and
    the test suite, so the emitter cannot silently drift away from the
    format Chrome accepts. *)

type summary = {
  event_count : int;
  span_count : int;  (** matched begin/end pairs *)
  max_depth : int;
  thread_count : int;
}

val validate_json : Json.t -> (summary, string) result
(** Check a parsed document: a top-level [traceEvents] array (or bare
    array) whose elements carry [name]/[ph]/[ts]/[pid]/[tid], with
    begin/end events properly nested (LIFO, matching names) per
    (pid, tid). *)

val validate_file : string -> (summary, string) result
val pp_summary : Format.formatter -> summary -> unit
