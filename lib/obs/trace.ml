(* Span tracer with Chrome trace-event JSON export.

   Disabled-path cost is the design constraint: the simulators and the
   planner's analyse-edit loop call [with_span] on every hot iteration,
   and the bench-perf acceptance gate allows < 2% regression with
   tracing off.  So the enabled check is a single atomic load, and
   nothing (no closure, no timestamp, no buffer) is touched when it
   fails.  When enabled, each domain prepends to its own event list;
   the lists are registered under a mutex on first use per domain so
   they outlive Parallel workers. *)

type phase = Begin | End | Instant

type event = {
  ph : phase;
  name : string;
  ts_ns : int;
  tid : int;
  args : (string * string) list;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

let buffer_lock = Mutex.create ()
let buffers : event list ref list ref = ref []

let with_lock f =
  Mutex.lock buffer_lock;
  Fun.protect f ~finally:(fun () -> Mutex.unlock buffer_lock)

let dls_key =
  Domain.DLS.new_key (fun () ->
      let buf = ref [] in
      with_lock (fun () -> buffers := buf :: !buffers);
      buf)

let record ph name args =
  let buf = Domain.DLS.get dls_key in
  buf :=
    {
      ph;
      name;
      ts_ns = Metrics.now_ns ();
      tid = (Domain.self () :> int);
      args;
    }
    :: !buf

let instant ?(args = []) name = if enabled () then record Instant name args

let with_span ?(args = []) name f =
  if not (enabled ()) then f ()
  else begin
    record Begin name args;
    Fun.protect f ~finally:(fun () -> record End name [])
  end

let reset () =
  let bufs = with_lock (fun () -> !buffers) in
  List.iter (fun b -> b := []) bufs

let events () =
  let bufs = with_lock (fun () -> !buffers) in
  (* each buffer is newest-first; reverse to record order, then a stable
     sort keeps same-timestamp begin/end pairs of a domain in order *)
  List.concat_map (fun b -> List.rev !b) bufs
  |> List.stable_sort (fun a b -> Int.compare a.ts_ns b.ts_ns)

let event_to_json e =
  let base =
    [
      ("name", Json.String e.name);
      ("cat", Json.String "ggpu");
      ( "ph",
        Json.String (match e.ph with Begin -> "B" | End -> "E" | Instant -> "i")
      );
      ("ts", Json.Float (float_of_int e.ts_ns /. 1000.0));
      ("pid", Json.Int 1);
      ("tid", Json.Int e.tid);
    ]
  in
  let scope =
    match e.ph with Instant -> [ ("s", Json.String "t") ] | _ -> []
  in
  let args =
    match e.args with
    | [] -> []
    | kvs ->
        [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) kvs)) ]
  in
  Json.Obj (base @ scope @ args)

let to_json () =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_to_json (events ())));
      ("displayTimeUnit", Json.String "ms");
    ]

let export ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json ()));
      output_char oc '\n')

(* --- Validation -------------------------------------------------------- *)

type summary = {
  event_count : int;
  span_count : int;
  max_depth : int;
  thread_count : int;
}

let pp_summary fmt s =
  Format.fprintf fmt "%d events, %d spans, max depth %d, %d thread(s)"
    s.event_count s.span_count s.max_depth s.thread_count

let validate_json doc =
  let ( let* ) = Result.bind in
  let* evs =
    match doc with
    | Json.List l -> Ok l
    | Json.Obj _ -> (
        match Json.member "traceEvents" doc with
        | Some (Json.List l) -> Ok l
        | Some _ -> Error "traceEvents is not an array"
        | None -> Error "missing traceEvents array")
    | _ -> Error "top level is neither an object nor an array"
  in
  let stacks : (int * int, string list) Hashtbl.t = Hashtbl.create 8 in
  let threads = Hashtbl.create 8 in
  let spans = ref 0 and max_depth = ref 0 in
  let check i ev =
    let* obj =
      match ev with
      | Json.Obj _ -> Ok ev
      | _ -> Error (Printf.sprintf "event %d is not an object" i)
    in
    let str key =
      match Json.member key obj with
      | Some (Json.String s) -> Ok s
      | _ -> Error (Printf.sprintf "event %d: missing string %S" i key)
    in
    let int key =
      match Json.member key obj with
      | Some (Json.Int n) -> Ok n
      | _ -> Error (Printf.sprintf "event %d: missing integer %S" i key)
    in
    let* name = str "name" in
    let* ph = str "ph" in
    let* () =
      match Json.member "ts" obj with
      | Some (Json.Int _ | Json.Float _) -> Ok ()
      | _ -> Error (Printf.sprintf "event %d: missing numeric \"ts\"" i)
    in
    let* pid = int "pid" in
    let* tid = int "tid" in
    Hashtbl.replace threads (pid, tid) ();
    let key = (pid, tid) in
    let stack = Option.value ~default:[] (Hashtbl.find_opt stacks key) in
    match ph with
    | "B" ->
        let stack = name :: stack in
        if List.length stack > !max_depth then max_depth := List.length stack;
        Hashtbl.replace stacks key stack;
        Ok ()
    | "E" -> (
        match stack with
        | [] ->
            Error
              (Printf.sprintf "event %d: end of %S with no open span on tid %d"
                 i name tid)
        | top :: rest ->
            if top <> name then
              Error
                (Printf.sprintf
                   "event %d: end of %S does not match open span %S" i name top)
            else begin
              Stdlib.incr spans;
              Hashtbl.replace stacks key rest;
              Ok ()
            end)
    | "X" -> (
        match Json.member "dur" obj with
        | Some (Json.Int _ | Json.Float _) -> Ok ()
        | _ -> Error (Printf.sprintf "event %d: complete event without dur" i))
    | "i" | "I" | "C" | "M" -> Ok ()
    | other -> Error (Printf.sprintf "event %d: unknown phase %S" i other)
  in
  let rec go i = function
    | [] -> Ok i
    | ev :: rest ->
        let* () = check i ev in
        go (i + 1) rest
  in
  let* n = go 0 evs in
  let unclosed =
    Hashtbl.fold
      (fun (_, tid) stack acc ->
        match stack with [] -> acc | name :: _ -> (tid, name) :: acc)
      stacks []
  in
  match unclosed with
  | (tid, name) :: _ ->
      Error (Printf.sprintf "unclosed span %S on tid %d" name tid)
  | [] ->
      Ok
        {
          event_count = n;
          span_count = !spans;
          max_depth = !max_depth;
          thread_count = Hashtbl.length threads;
        }

let validate_file path =
  let ( let* ) = Result.bind in
  let* contents =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))
    with Sys_error msg -> Error msg
  in
  let* doc = Json.parse (String.trim contents) in
  validate_json doc
