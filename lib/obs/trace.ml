(* Span tracer with Chrome trace-event JSON export.

   Disabled-path cost is the design constraint: the simulators and the
   planner's analyse-edit loop call [with_span] on every hot iteration,
   and the bench-perf acceptance gate allows < 2% regression with
   tracing off.  So the enabled check is a single atomic load, and
   nothing (no closure, no timestamp, no buffer) is touched when it
   fails.  When enabled, each domain prepends to its own event list;
   the lists are registered under a mutex on first use per domain so
   they outlive Parallel workers.

   Beyond begin/end spans the tracer also records Chrome counter
   events ("C", numeric series such as the PMU's per-CU wavefront
   occupancy) and complete events ("X", pre-measured spans with an
   explicit duration, used for simulated-time rows like wavefront
   lifetimes).  Both accept an explicit timestamp so callers can emit
   virtual-time (simulated-cycle) timelines through the same buffers. *)

type phase = Begin | End | Instant | Counter | Complete

type event = {
  ph : phase;
  name : string;
  ts_ns : int;
  dur_ns : int; (* Complete only; 0 otherwise *)
  tid : int;
  args : (string * string) list;
  values : (string * int) list; (* Counter only: numeric series values *)
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

let buffer_lock = Mutex.create ()

(* Per-domain buffers carry the reset epoch they registered under:
   [reset] bumps the epoch and empties the registry, so buffers of
   joined domains become unreachable (and collectable) instead of
   accumulating for the process lifetime; a live domain that records
   again simply re-registers its (cleared) buffer under the new
   epoch.  Like [reset] before it, this is not safe to run
   concurrently with recording domains — call it between runs. *)
type buf = { mutable evs : event list; mutable epoch : int }

let current_epoch = Atomic.make 0
let buffers : buf list ref = ref []

let with_lock f =
  Mutex.lock buffer_lock;
  Fun.protect f ~finally:(fun () -> Mutex.unlock buffer_lock)

let dls_key = Domain.DLS.new_key (fun () -> { evs = []; epoch = -1 })

let my_buf () =
  let b = Domain.DLS.get dls_key in
  if b.epoch <> Atomic.get current_epoch then
    with_lock (fun () ->
        b.evs <- [];
        b.epoch <- Atomic.get current_epoch;
        buffers := b :: !buffers);
  b

let record ?ts_ns ?(dur_ns = 0) ?tid ?(values = []) ph name args =
  let b = my_buf () in
  b.evs <-
    {
      ph;
      name;
      ts_ns = (match ts_ns with Some t -> t | None -> Metrics.now_ns ());
      dur_ns;
      tid = (match tid with Some t -> t | None -> (Domain.self () :> int));
      args;
      values;
    }
    :: b.evs

let instant ?(args = []) name = if enabled () then record Instant name args

let with_span ?(args = []) name f =
  if not (enabled ()) then f ()
  else begin
    record Begin name args;
    Fun.protect f ~finally:(fun () -> record End name [])
  end

let counter ?ts_ns ?tid name values =
  if enabled () then record ?ts_ns ?tid ~values Counter name []

let complete ?(args = []) ?tid ~ts_ns ~dur_ns name =
  if enabled () then record ~ts_ns ~dur_ns ?tid Complete name args

let emit e = if enabled () then (my_buf ()).evs <- e :: (my_buf ()).evs

let reset () =
  with_lock (fun () ->
      Atomic.incr current_epoch;
      List.iter (fun b -> b.evs <- []) !buffers;
      buffers := [])

(* --- Trace context ----------------------------------------------------- *)

(* Ids stitch a request's spans across processes: the client mints a
   trace id, the wire carries it, and every daemon-side span tags itself
   with it.  Uniqueness only has to hold among concurrently live
   requests of the machines sharing one trace file, so pid + a process
   counter is enough — no randomness, which keeps dumps reproducible
   under test. *)

let id_counter = Atomic.make 0

let new_trace_id () =
  Printf.sprintf "t%04x.%06x"
    (Unix.getpid () land 0xffff)
    (Atomic.fetch_and_add id_counter 1 land 0xffffff)

let new_span_id () =
  Printf.sprintf "s%06x" (Atomic.fetch_and_add id_counter 1 land 0xffffff)

let ctx_args ~trace_id ~span_id =
  [ ("trace_id", trace_id); ("span_id", span_id) ]

let events () =
  let bufs = with_lock (fun () -> !buffers) in
  (* each buffer is newest-first; reverse to record order, then a stable
     sort keeps same-timestamp begin/end pairs of a domain in order *)
  List.concat_map (fun b -> List.rev b.evs) bufs
  |> List.stable_sort (fun a b -> Int.compare a.ts_ns b.ts_ns)

let event_to_json e =
  let base =
    [
      ("name", Json.String e.name);
      ("cat", Json.String "ggpu");
      ( "ph",
        Json.String
          (match e.ph with
          | Begin -> "B"
          | End -> "E"
          | Instant -> "i"
          | Counter -> "C"
          | Complete -> "X") );
      ("ts", Json.Float (float_of_int e.ts_ns /. 1000.0));
      ("pid", Json.Int 1);
      ("tid", Json.Int e.tid);
    ]
  in
  let dur =
    match e.ph with
    | Complete -> [ ("dur", Json.Float (float_of_int e.dur_ns /. 1000.0)) ]
    | _ -> []
  in
  let scope =
    match e.ph with Instant -> [ ("s", Json.String "t") ] | _ -> []
  in
  let args =
    (* counter events carry their numeric series in args, as Chrome
       expects; string args and numeric values never mix on one event *)
    match (e.values, e.args) with
    | [], [] -> []
    | vals, [] when vals <> [] ->
        [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) vals)) ]
    | _, kvs ->
        [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) kvs)) ]
  in
  Json.Obj (base @ dur @ scope @ args)

let events_to_json evs =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_to_json evs));
      ("displayTimeUnit", Json.String "ms");
    ]

let to_json () = events_to_json (events ())

let export ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json ()));
      output_char oc '\n')

(* --- Validation -------------------------------------------------------- *)

type summary = {
  event_count : int;
  span_count : int;
  max_depth : int;
  thread_count : int;
}

let pp_summary fmt s =
  Format.fprintf fmt "%d events, %d spans, max depth %d, %d thread(s)"
    s.event_count s.span_count s.max_depth s.thread_count

let validate_json doc =
  let ( let* ) = Result.bind in
  let* evs =
    match doc with
    | Json.List l -> Ok l
    | Json.Obj _ -> (
        match Json.member "traceEvents" doc with
        | Some (Json.List l) -> Ok l
        | Some _ -> Error "traceEvents is not an array"
        | None -> Error "missing traceEvents array")
    | _ -> Error "top level is neither an object nor an array"
  in
  let stacks : (int * int, string list) Hashtbl.t = Hashtbl.create 8 in
  let threads = Hashtbl.create 8 in
  let spans = ref 0 and max_depth = ref 0 in
  let check i ev =
    let* obj =
      match ev with
      | Json.Obj _ -> Ok ev
      | _ -> Error (Printf.sprintf "event %d is not an object" i)
    in
    let str key =
      match Json.member key obj with
      | Some (Json.String s) -> Ok s
      | _ -> Error (Printf.sprintf "event %d: missing string %S" i key)
    in
    let int key =
      match Json.member key obj with
      | Some (Json.Int n) -> Ok n
      | _ -> Error (Printf.sprintf "event %d: missing integer %S" i key)
    in
    let* name = str "name" in
    let* ph = str "ph" in
    let* () =
      match Json.member "ts" obj with
      | Some (Json.Int _ | Json.Float _) -> Ok ()
      | _ -> Error (Printf.sprintf "event %d: missing numeric \"ts\"" i)
    in
    let* pid = int "pid" in
    let* tid = int "tid" in
    Hashtbl.replace threads (pid, tid) ();
    let key = (pid, tid) in
    let stack = Option.value ~default:[] (Hashtbl.find_opt stacks key) in
    match ph with
    | "B" ->
        let stack = name :: stack in
        if List.length stack > !max_depth then max_depth := List.length stack;
        Hashtbl.replace stacks key stack;
        Ok ()
    | "E" -> (
        match stack with
        | [] ->
            Error
              (Printf.sprintf "event %d: end of %S with no open span on tid %d"
                 i name tid)
        | top :: rest ->
            if top <> name then
              Error
                (Printf.sprintf
                   "event %d: end of %S does not match open span %S" i name top)
            else begin
              Stdlib.incr spans;
              Hashtbl.replace stacks key rest;
              Ok ()
            end)
    | "X" -> (
        (* a negative duration renders as a zero-width slice in the
           viewer but marks a broken emitter (end before start) *)
        match Json.member "dur" obj with
        | Some (Json.Int d) when d < 0 ->
            Error
              (Printf.sprintf "event %d: complete event with negative dur" i)
        | Some (Json.Float d) when d < 0.0 ->
            Error
              (Printf.sprintf "event %d: complete event with negative dur" i)
        | Some (Json.Int _ | Json.Float _) -> Ok ()
        | _ -> Error (Printf.sprintf "event %d: complete event without dur" i))
    | "C" -> (
        (* a counter without numeric series renders as an empty track;
           reject it so emitters cannot silently drop their values *)
        match Json.member "args" obj with
        | Some (Json.Obj ((_ :: _) as kvs))
          when List.for_all
                 (fun (_, v) ->
                   match v with Json.Int _ | Json.Float _ -> true | _ -> false)
                 kvs ->
            Ok ()
        | _ ->
            Error
              (Printf.sprintf "event %d: counter without numeric args" i))
    | "i" | "I" | "M" -> Ok ()
    | other -> Error (Printf.sprintf "event %d: unknown phase %S" i other)
  in
  let rec go i = function
    | [] -> Ok i
    | ev :: rest ->
        let* () = check i ev in
        go (i + 1) rest
  in
  let* n = go 0 evs in
  let unclosed =
    Hashtbl.fold
      (fun (_, tid) stack acc ->
        match stack with [] -> acc | name :: _ -> (tid, name) :: acc)
      stacks []
  in
  match unclosed with
  | (tid, name) :: _ ->
      Error (Printf.sprintf "unclosed span %S on tid %d" name tid)
  | [] ->
      Ok
        {
          event_count = n;
          span_count = !spans;
          max_depth = !max_depth;
          thread_count = Hashtbl.length threads;
        }

let validate_file path =
  let ( let* ) = Result.bind in
  let* contents =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))
    with Sys_error msg -> Error msg
  in
  let* doc = Json.parse (String.trim contents) in
  validate_json doc
