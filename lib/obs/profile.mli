(** Self-time profiles computed from buffered trace spans: for every
    span name, the call count, total (inclusive) time and self time
    (total minus time spent in nested spans).  Backs the CLI's
    [profile] subcommand. *)

type row = { name : string; calls : int; total_ns : int; self_ns : int }

val self_times : Trace.event list -> row list
(** Rows sorted by self time, largest first.  Unbalanced events (an
    end without a begin, spans still open at the tail) are skipped. *)

val pp_table : Format.formatter -> row list -> unit
