(** Self-time profiles computed from buffered trace spans: for every
    span name, the call count, total (inclusive) time and self time
    (total minus time spent in nested spans).  Backs the CLI's
    [profile] subcommand. *)

type row = { name : string; calls : int; total_ns : int; self_ns : int }

val self_times : Trace.event list -> row list
(** Rows sorted by self time, largest first; rows with equal self time
    are tie-broken by name, so the ordering is fully deterministic
    regardless of domain count or hash-table iteration order.
    Unbalanced events (an end without a begin, spans still open at the
    tail) are skipped.  [Complete] spans carry no nesting information
    and count fully as self time; [Counter] samples are ignored. *)

val pp_table : Format.formatter -> row list -> unit
