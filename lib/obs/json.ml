(* Minimal JSON: emit and parse, no external dependency.  The emitter
   covers everything the tracer writes; the parser is strict enough that
   the CI trace checker actually vouches for well-formedness. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  write buf v;
  Buffer.contents buf

exception Parse_error of string * int

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else error (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let len = String.length word in
    if !pos + len <= n && String.sub s !pos len = word then begin
      pos := !pos + len;
      v
    end
    else error "bad literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string";
      match s.[!pos] with
      | '"' ->
          incr pos;
          Buffer.contents buf
      | '\\' ->
          incr pos;
          if !pos >= n then error "truncated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              if !pos + 4 >= n then error "truncated \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
              | Some _ -> Buffer.add_char buf '?' (* non-ASCII: placeholder *)
              | None -> error "bad \\u escape");
              pos := !pos + 4
          | _ -> error "unknown escape");
          incr pos;
          go ()
      | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num s.[!pos] do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> error (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ((key, v) :: acc)
            | Some '}' ->
                incr pos;
                List.rev ((key, v) :: acc)
            | _ -> error "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elems (v :: acc)
            | Some ']' ->
                incr pos;
                List.rev (v :: acc)
            | _ -> error "expected ',' or ']'"
          in
          List (elems [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | v ->
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
      else Ok v
  | exception Parse_error (msg, p) ->
      Error (Printf.sprintf "%s at offset %d" msg p)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
