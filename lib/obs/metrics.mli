(** Metrics registry: named counters, gauges and fixed-bucket
    histograms with a deterministic merge.

    Every stored value is integral — counters and histogram cell counts
    are ints, timings are integer nanoseconds, gauges merge by [max] —
    so {!merge} is associative and commutative and a set of per-domain
    or per-item snapshots folds to a bit-identical result no matter how
    work was partitioned over a {!Ggpu_core.Parallel} domain pool.

    Two usage styles:
    - {b explicit registries} ({!create}/{!snapshot}/{!merge}) for
      scoped measurements (one registry per DSE run, per trial, …);
    - the {b ambient} per-domain registry ({!count}, {!observe_named},
      {!timed}, …), off by default and gated on a single atomic flag so
      instrumented hot paths cost one load-and-branch when disabled.
      Each domain owns its registry, so recording never contends;
      {!ambient_snapshot} merges them all. *)

type t
type counter
type gauge
type histogram

val create : unit -> t

(** {1 Counters} *)

val counter : t -> string -> counter
(** Find or create. @raise Invalid_argument if [name] is already a
    metric of another kind. *)

val add : counter -> int -> unit
(** @raise Invalid_argument on a negative increment (counters are
    monotone). *)

val incr : counter -> unit
val counter_value : counter -> int

(** {1 Gauges} *)

val gauge : t -> string -> gauge

val gauge_max : gauge -> int -> unit
(** Record an observation; the gauge keeps the maximum (which is what
    makes its merge order-free). *)

val gauge_value : gauge -> int option

(** {1 Histograms} *)

val default_buckets : int list

val histogram : ?buckets:int list -> t -> string -> histogram
(** [buckets] are strictly ascending inclusive upper bounds; an
    implicit overflow bucket catches the rest.  All registries must
    agree on a histogram's buckets for snapshots to merge. *)

val observe : histogram -> int -> unit

(** {1 Time} *)

val now_ns : unit -> int
(** Wall-clock nanoseconds (epoch-based, monotone enough for spans). *)

val time_counter : counter -> (unit -> 'a) -> 'a
(** Run the thunk and add its elapsed nanoseconds to the counter, also
    on exceptional exit. *)

(** {1 Snapshots and merging} *)

type hist_snapshot = {
  bounds : int list;  (** ascending upper bounds *)
  counts : int list;  (** length [bounds]+1; last cell is overflow *)
  sum : int;
  min_v : int;  (** [max_int] when empty *)
  max_v : int;  (** [min_int] when empty *)
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * int) list;  (** sorted; unset gauges omitted *)
  histograms : (string * hist_snapshot) list;  (** sorted by name *)
}

val snapshot : t -> snapshot
val empty_snapshot : snapshot

val merge : snapshot -> snapshot -> snapshot
(** Counters add, gauges max, histogram cells add pointwise.
    Associative and commutative with {!empty_snapshot} as identity.
    @raise Invalid_argument when a histogram name carries different
    buckets on the two sides. *)

val merge_all : snapshot list -> snapshot
val equal_snapshot : snapshot -> snapshot -> bool
val hist_total : hist_snapshot -> int

val hist_percentile : hist_snapshot -> float -> int
(** [hist_percentile h q] (with [q] in [[0, 1]]) is the upper bound of
    the smallest bucket whose cumulative count covers rank
    [ceil (q * total)], capped at the observed maximum; the overflow
    cell reports the observed maximum.  [0] on an empty histogram.
    Integer-exact on the cells, so every consumer of one snapshot
    derives identical p50/p99/p999 values. *)

val find_counter : snapshot -> string -> int option
val find_gauge : snapshot -> string -> int option
val find_histogram : snapshot -> string -> hist_snapshot option
val snapshot_to_json : snapshot -> Json.t

val expose : snapshot -> string
(** Stable text exposition of a snapshot: [counter <name> <v>] /
    [gauge <name> <v>] lines, then per histogram a
    [histogram <name> count .. sum .. min .. max ..] header followed by
    cumulative [bucket <name> le <bound> <cum>] lines (the overflow
    bucket prints [le inf]).  Names appear in the snapshot's sorted
    order, so equal snapshots expose byte-identical text — the format
    the daemon's [Telemetry] control serves to scrapers. *)

val pp_snapshot : Format.formatter -> snapshot -> unit

(** {1 Ambient per-domain registries} *)

val set_ambient_enabled : bool -> unit
val ambient_enabled : unit -> bool

val ambient : unit -> t
(** The calling domain's registry (created and registered on first
    use; it outlives the domain so fan-out results are not lost). *)

val ambient_snapshot : unit -> snapshot
(** Merge of every domain's registry.  Call after fan-outs have joined;
    recording domains still running may contribute torn-in-time (but
    never torn-in-value) observations. *)

val ambient_reset : unit -> unit
(** Clear all registered registries (tests, repeated workloads). *)

val count : string -> int -> unit
(** Ambient counter add; no-op unless {!ambient_enabled}. *)

val record_gauge : string -> int -> unit
val observe_named : ?buckets:int list -> string -> int -> unit

val timed : string -> (unit -> 'a) -> 'a
(** Adds elapsed nanoseconds to the ambient counter [name] when
    enabled; otherwise just runs the thunk. *)
