(** Minimal JSON value type with an emitter and a strict parser — just
    enough to write Chrome trace-event files and validate them again
    without an external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val write : Buffer.t -> t -> unit
val to_string : t -> string

val parse : string -> (t, string) result
(** Strict parse of a complete document; trailing garbage is an error.
    Numbers without [.]/[e] parse as [Int]. *)

val member : string -> t -> t option
(** [member key (Obj kvs)] is the value bound to [key], if any; [None]
    on non-objects. *)
