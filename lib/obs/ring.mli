(** Bounded ring buffer: O(1) push that overwrites the oldest entry at
    capacity.  Backs the serve daemon's always-on flight recorder, so
    keeping the last N request span groups costs fixed memory no matter
    how long the daemon runs. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val push : 'a t -> 'a -> unit
(** Append, overwriting the oldest entry once full. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Live entries, at most [capacity]. *)

val total : 'a t -> int
(** Pushes since creation (or {!clear}); [total - length] entries have
    been overwritten. *)

val to_list : 'a t -> 'a list
(** Live entries, oldest first. *)

val iter : ('a -> unit) -> 'a t -> unit
val clear : 'a t -> unit
