(* Bounded ring buffer for the serve flight recorder.

   The recorder is always on, so the push path must be allocation-light
   and O(1): a fixed array with a monotone write cursor.  [total] never
   wraps — it is the number of pushes ever made, which lets callers (and
   tests) distinguish "empty" from "wrapped N times" and report how many
   entries were dropped. *)

type 'a t = {
  slots : 'a option array;
  mutable head : int; (* next write position *)
  mutable total : int; (* pushes since creation *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Ring.create: capacity < 1";
  { slots = Array.make capacity None; head = 0; total = 0 }

let capacity t = Array.length t.slots
let total t = t.total
let length t = min t.total (Array.length t.slots)

let push t x =
  t.slots.(t.head) <- Some x;
  t.head <- (t.head + 1) mod Array.length t.slots;
  t.total <- t.total + 1

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.head <- 0;
  t.total <- 0

(* Oldest first.  Before the first wrap the live entries are
   [0 .. head-1]; after it they start at [head] (the oldest survivor)
   and wrap around. *)
let to_list t =
  let cap = Array.length t.slots in
  let n = length t in
  let start = if t.total <= cap then 0 else t.head in
  List.init n (fun i ->
      match t.slots.((start + i) mod cap) with
      | Some x -> x
      | None -> assert false)

let iter f t = List.iter f (to_list t)
