(* Harness gluing a compiled RV32 kernel to the CPU simulator: lays the
   kernel's buffers out in data memory, loads parameters into their
   convention registers, runs to completion and reads the results back.
   This plays the role of the bare-metal runtime in the paper's RISC-V
   baseline. *)

open Ggpu_riscv

type result = {
  stats : Cpu.stats;
  buffers : (string * int32 array) list; (* final contents *)
}

exception Setup_error of string

let align64 a = (a + 63) land lnot 63

(* Buffers are placed consecutively from [base_addr], 64-byte aligned,
   mimicking an OpenCL runtime allocating device buffers. *)
let layout_buffers ~base_addr buffers =
  let addr = ref (align64 base_addr) in
  List.map
    (fun (name, data) ->
      let placed = !addr in
      addr := align64 (!addr + (4 * Array.length data));
      (name, placed, data))
    buffers

let run ?(fuel = 500_000_000) ?(base_addr = 0x1000) ?mem_words ?max_cycles
    ?inject (compiled : Codegen_rv32.compiled) ~(args : Interp.args)
    ~global_size ~local_size () =
  Ggpu_obs.Trace.with_span "kernels.run_rv32"
    ~args:[ ("global_size", string_of_int global_size) ]
  @@ fun () ->
  let placed = layout_buffers ~base_addr args.Interp.buffers in
  let needed_words =
    List.fold_left
      (fun acc (_, addr, data) -> max acc ((addr / 4) + Array.length data))
      (base_addr / 4) placed
  in
  let mem_words =
    match mem_words with Some w -> w | None -> needed_words + 64
  in
  let cpu = Cpu.create ~mem_words ~program:compiled.Codegen_rv32.code () in
  List.iter (fun (_, addr, data) -> Cpu.write_block cpu ~addr data) placed;
  let param_value name =
    match List.find_opt (fun (n, _, _) -> String.equal n name) placed with
    | Some (_, addr, _) -> Int32.of_int addr
    | None -> (
        match List.assoc_opt name args.Interp.scalars with
        | Some v -> v
        | None -> raise (Setup_error (Printf.sprintf "missing argument %s" name)))
  in
  List.iter
    (fun (name, reg) -> Cpu.set_reg cpu reg (param_value name))
    compiled.Codegen_rv32.param_regs;
  Cpu.set_reg cpu compiled.Codegen_rv32.gsize_reg (Int32.of_int global_size);
  Cpu.set_reg cpu compiled.Codegen_rv32.lsize_reg (Int32.of_int local_size);
  let stats =
    match inject with
    | None -> Cpu.run ~fuel ?max_cycles cpu
    | Some (at, f) ->
        (* single-step until simulated time reaches the injection
           cycle, corrupt the state, then resume the fast run loop.
           Before the fault the machine is healthy, so no watchdog is
           needed while stepping. *)
        let executed = ref 0 in
        while (not (Cpu.halted cpu)) && (Cpu.stats cpu).Cpu.cycles < at do
          if !executed > fuel then raise (Cpu.Out_of_fuel !executed);
          Cpu.step cpu;
          incr executed
        done;
        if Cpu.halted cpu then Cpu.stats cpu (* fault lands after completion *)
        else begin
          f cpu;
          Cpu.run ~fuel:(max 0 (fuel - !executed)) ?max_cycles cpu
        end
  in
  let buffers =
    List.map
      (fun (name, addr, data) ->
        (name, Cpu.read_block cpu ~addr ~len:(Array.length data)))
      placed
  in
  { stats; buffers }

let output result name =
  match List.assoc_opt name result.buffers with
  | Some a -> a
  | None -> raise (Setup_error (Printf.sprintf "no such buffer %s" name))
