(* Harness gluing a compiled G-GPU kernel to the GPU simulator: lays
   buffers out in global memory, passes parameter values (preloaded into
   r1..rN of every work-item, per the code generator's convention),
   launches the grid and reads results back.  Plays the role of the
   OpenCL runtime API the paper uses on the FGPU side. *)

open Ggpu_fgpu

type result = {
  stats : Stats.t;
  buffers : (string * int32 array) list;
}

exception Setup_error of string

let align64 a = (a + 63) land lnot 63

let layout_buffers ~base_addr buffers =
  let addr = ref (align64 base_addr) in
  List.map
    (fun (name, data) ->
      let placed = !addr in
      addr := align64 (!addr + (4 * Array.length data));
      (name, placed, data))
    buffers

let run ?(config = Config.default) ?(base_addr = 0x1000) ?max_cycles ?inject
    ?pmu ?backend ?domains (compiled : Codegen_fgpu.compiled)
    ~(args : Interp.args) ~global_size ~local_size () =
  Ggpu_obs.Trace.with_span "kernels.run_fgpu"
    ~args:[ ("global_size", string_of_int global_size) ]
  @@ fun () ->
  let placed = layout_buffers ~base_addr args.Interp.buffers in
  let needed_words =
    List.fold_left
      (fun acc (_, addr, data) -> max acc ((addr / 4) + Array.length data))
      (base_addr / 4) placed
  in
  let mem = Array.make (needed_words + 64) 0l in
  List.iter
    (fun (_, addr, data) ->
      Array.blit data 0 mem (addr / 4) (Array.length data))
    placed;
  let param_value name =
    match List.find_opt (fun (n, _, _) -> String.equal n name) placed with
    | Some (_, addr, _) -> Int32.of_int addr
    | None -> (
        match List.assoc_opt name args.Interp.scalars with
        | Some v -> v
        | None -> raise (Setup_error (Printf.sprintf "missing argument %s" name)))
  in
  (* parameter registers are r1..rN in declaration order *)
  let params =
    compiled.Codegen_fgpu.param_regs
    |> List.sort (fun (_, a) (_, b) -> Int.compare a b)
    |> List.map (fun (name, _) -> param_value name)
  in
  let stats =
    Gpu.run ?max_cycles ?inject ?pmu ?backend ?domains config
      ~program:compiled.Codegen_fgpu.code
      ~params ~global_size ~local_size ~mem
  in
  let buffers =
    List.map
      (fun (name, addr, data) ->
        (name, Array.sub mem (addr / 4) (Array.length data)))
      placed
  in
  { stats; buffers }

let output result name =
  match List.assoc_opt name result.buffers with
  | Some a -> a
  | None -> raise (Setup_error (Printf.sprintf "no such buffer %s" name))
