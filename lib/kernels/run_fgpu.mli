(** Harness gluing a compiled kernel to the G-GPU simulator: buffer
    layout in global memory, parameter passing, launch, read-back —
    the OpenCL-runtime role of the paper's software stack. *)

type result = {
  stats : Ggpu_fgpu.Stats.t;
  buffers : (string * int32 array) list;  (** final contents *)
}

exception Setup_error of string

val run :
  ?config:Ggpu_fgpu.Config.t ->
  ?base_addr:int ->
  ?max_cycles:int ->
  ?inject:int * (Ggpu_fgpu.Gpu.probe -> unit) ->
  ?pmu:Ggpu_pmu.Pmu.t ->
  ?backend:Ggpu_fgpu.Gpu.backend ->
  ?domains:int ->
  Codegen_fgpu.compiled ->
  args:Interp.args ->
  global_size:int ->
  local_size:int ->
  unit ->
  result
(** [max_cycles], [inject], [pmu], [backend] and [domains] are
    forwarded to {!Ggpu_fgpu.Gpu.run} (watchdog, fault-injection hook,
    the performance-monitoring collector, the lane-execution engine,
    and the functional-phase domain fan-out). *)

val output : result -> string -> int32 array
(** @raise Setup_error on an unknown buffer name. *)
