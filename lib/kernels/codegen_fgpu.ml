(* G-GPU code generator.

   Calling convention (enforced by {!Ggpu_fgpu.Gpu} when launching):
   - r0 is hardwired zero;
   - kernel parameters are preloaded into r1..rN in declaration order
     (buffer parameters as byte base addresses, scalars as values);
   - r9..r27 belong to the register allocator;
   - r28..r31 are code-generator scratch.

   Buffer indices are elements; addresses are computed as base + 4*index
   with explicit shift-and-add, exactly what the FGPU LLVM backend
   emits for `int*` accesses. *)

open Ggpu_isa

type compiled = {
  kernel_name : string;
  code : Fgpu_isa.t array;
  param_regs : (string * int) list; (* parameter name -> register *)
  max_live : int; (* allocator pressure, for diagnostics *)
  peephole : Ggpu_superopt.Peephole.report; (* what the superopt pass did *)
}

exception Too_many_params of string

let pool = [ 9; 10; 11; 12; 13; 14; 15; 16; 17; 18; 19; 20; 21; 22; 23; 24; 25; 26; 27 ]
let scratch0 = 28
let scratch1 = 29
let scratch2 = 30

let imm16_ok v = v >= -32768l && v <= 32767l
let uimm16_ok v = v >= 0l && v <= 0xFFFFl

let compile ?(optimise = true) ?(superopt = true) kernel =
  let program = Lower.lower kernel in
  let program = if optimise then Opt.optimise program else program in
  let phys, max_live = Regalloc.allocate program ~pool in
  let param_regs =
    List.mapi (fun i p -> (Ast.param_name p, i + 1)) kernel.Ast.params
  in
  if List.length param_regs > 8 then raise (Too_many_params kernel.Ast.name);
  let param_reg name =
    match List.assoc_opt name param_regs with
    | Some r -> r
    | None -> invalid_arg (Printf.sprintf "unknown parameter %s" name)
  in
  let items = ref [] in
  let emit item = items := item :: !items in
  let insn i = emit (Fgpu_asm.I i) in
  (* Materialise a VIR value into a register, using [scratch] for
     immediates. *)
  let value_in ~scratch = function
    | Vir.Reg v -> phys v
    | Vir.Imm 0l -> 0
    | Vir.Imm i ->
        emit (Fgpu_asm.Li32 (scratch, i));
        scratch
  in
  let mov ~dst ~src = if dst <> src then insn (Fgpu_isa.Alui (Fgpu_isa.Add, dst, src, 0l)) in
  let emit_cmp op dst ra rb =
    match op with
    | Ast.Lt -> insn (Fgpu_isa.Alu (Fgpu_isa.Slt, dst, ra, rb))
    | Ast.Gt -> insn (Fgpu_isa.Alu (Fgpu_isa.Slt, dst, rb, ra))
    | Ast.Ge ->
        insn (Fgpu_isa.Alu (Fgpu_isa.Slt, dst, ra, rb));
        insn (Fgpu_isa.Alui (Fgpu_isa.Xor, dst, dst, 1l))
    | Ast.Le ->
        insn (Fgpu_isa.Alu (Fgpu_isa.Slt, dst, rb, ra));
        insn (Fgpu_isa.Alui (Fgpu_isa.Xor, dst, dst, 1l))
    | Ast.Eq ->
        insn (Fgpu_isa.Alu (Fgpu_isa.Xor, dst, ra, rb));
        insn (Fgpu_isa.Alui (Fgpu_isa.Sltu, dst, dst, 1l))
    | Ast.Ne ->
        insn (Fgpu_isa.Alu (Fgpu_isa.Xor, dst, ra, rb));
        insn (Fgpu_isa.Alu (Fgpu_isa.Sltu, dst, 0, dst))
  in
  let alu_of_binop = function
    | Ast.Add -> Fgpu_isa.Add
    | Ast.Sub -> Fgpu_isa.Sub
    | Ast.Mul -> Fgpu_isa.Mul
    | Ast.Div -> Fgpu_isa.Div
    | Ast.Rem -> Fgpu_isa.Rem
    | Ast.And -> Fgpu_isa.And
    | Ast.Or -> Fgpu_isa.Or
    | Ast.Xor -> Fgpu_isa.Xor
    | Ast.Shl -> Fgpu_isa.Sll
    | Ast.Shr -> Fgpu_isa.Srl
    | Ast.Sra -> Fgpu_isa.Sra
  in
  (* Can [op] with immediate [i] use the immediate form? *)
  let imm_form op i =
    match op with
    | Ast.Add -> imm16_ok i
    | Ast.Sub -> imm16_ok (Int32.neg i)
    | Ast.And | Ast.Or | Ast.Xor -> uimm16_ok i
    | Ast.Shl | Ast.Shr | Ast.Sra -> i >= 0l && i < 32l
    | Ast.Mul | Ast.Div | Ast.Rem -> false
  in
  (* Compute the byte address base+4*idx into [scratch1]. *)
  let address buf idx =
    let base = param_reg buf in
    (match idx with
    | Vir.Imm i ->
        let byte = Int32.mul i 4l in
        if imm16_ok byte then
          insn (Fgpu_isa.Alui (Fgpu_isa.Add, scratch1, base, byte))
        else begin
          emit (Fgpu_asm.Li32 (scratch1, byte));
          insn (Fgpu_isa.Alu (Fgpu_isa.Add, scratch1, scratch1, base))
        end
    | Vir.Reg v ->
        insn (Fgpu_isa.Alui (Fgpu_isa.Sll, scratch1, phys v, 2l));
        insn (Fgpu_isa.Alu (Fgpu_isa.Add, scratch1, scratch1, base)));
    scratch1
  in
  let branch_cond op ra rb label =
    let item c a b = Fgpu_asm.Branch_to (c, a, b, label) in
    match op with
    | Ast.Eq -> emit (item Fgpu_isa.Eq ra rb)
    | Ast.Ne -> emit (item Fgpu_isa.Ne ra rb)
    | Ast.Lt -> emit (item Fgpu_isa.Lt ra rb)
    | Ast.Ge -> emit (item Fgpu_isa.Ge ra rb)
    | Ast.Gt -> emit (item Fgpu_isa.Lt rb ra)
    | Ast.Le -> emit (item Fgpu_isa.Ge rb ra)
  in
  let lower_insn = function
    | Vir.Bin (op, d, a, b) -> (
        let dst = phys d in
        match (op, a, b) with
        | _, Vir.Reg va, Vir.Imm i when imm_form op i ->
            let code = alu_of_binop op in
            let code, i =
              match op with
              | Ast.Sub -> (Fgpu_isa.Add, Int32.neg i)
              | _ -> (code, i)
            in
            insn (Fgpu_isa.Alui (code, dst, phys va, i))
        | _ ->
            let ra = value_in ~scratch:scratch0 a in
            let rb = value_in ~scratch:scratch2 b in
            insn (Fgpu_isa.Alu (alu_of_binop op, dst, ra, rb)))
    | Vir.Cmp (op, d, a, b) ->
        let ra = value_in ~scratch:scratch0 a in
        let rb = value_in ~scratch:scratch2 b in
        emit_cmp op (phys d) ra rb
    | Vir.Mov (d, Vir.Imm i) -> emit (Fgpu_asm.Li32 (phys d, i))
    | Vir.Mov (d, Vir.Reg v) -> mov ~dst:(phys d) ~src:(phys v)
    | Vir.Load (d, buf, idx) ->
        let addr = address buf idx in
        insn (Fgpu_isa.Lw (phys d, addr, 0))
    | Vir.Store (buf, idx, v) ->
        let rv = value_in ~scratch:scratch0 v in
        let addr = address buf idx in
        insn (Fgpu_isa.Sw (rv, addr, 0))
    | Vir.Read_special (sp, d) -> (
        let dst = phys d in
        match sp with
        | Vir.Gid ->
            insn (Fgpu_isa.Special (Fgpu_isa.Wgoff, dst));
            insn (Fgpu_isa.Special (Fgpu_isa.Lid, scratch0));
            insn (Fgpu_isa.Alu (Fgpu_isa.Add, dst, dst, scratch0))
        | Vir.Lid -> insn (Fgpu_isa.Special (Fgpu_isa.Lid, dst))
        | Vir.WGid -> insn (Fgpu_isa.Special (Fgpu_isa.Wgid, dst))
        | Vir.LSize -> insn (Fgpu_isa.Special (Fgpu_isa.Wgsize, dst))
        | Vir.GSize -> insn (Fgpu_isa.Special (Fgpu_isa.Gsize, dst)))
    | Vir.Read_param (name, d) -> mov ~dst:(phys d) ~src:(param_reg name)
    | Vir.Label l -> emit (Fgpu_asm.Label l)
    | Vir.Jump l -> emit (Fgpu_asm.Jump_to l)
    | Vir.Branch_if (op, a, b, l) ->
        let ra = value_in ~scratch:scratch0 a in
        let rb = value_in ~scratch:scratch2 b in
        branch_cond op ra rb l
    | Vir.Barrier -> insn Fgpu_isa.Barrier
    | Vir.Ret -> insn Fgpu_isa.Ret
  in
  List.iter lower_insn program.Vir.insns;
  let code = Fgpu_asm.assemble (List.rev !items) in
  (* Post-assembly superopt peephole: mined, verified rewrite rules
     plus algebraic no-op elimination (see Ggpu_superopt.Peephole). *)
  let code, peephole =
    if superopt then
      Ggpu_superopt.Peephole.optimise_program
        ~rules:(Ggpu_superopt.Rules.default ()) code
    else (code, Ggpu_superopt.Peephole.empty_report)
  in
  { kernel_name = kernel.Ast.name; code; param_regs; max_live; peephole }
