(** Parallel execution of the kernel suite over a (workload x CU-count)
    grid on a {!Ggpu_par.Parallel} domain pool.

    Every merged metric is deterministic (the simulator is; wall time
    is kept out of the registry), so the returned snapshot is
    bit-identical for any [?domains]. *)

type job = { workload : Suite.t; cus : int; size : int }

type result = {
  job : job;
  stats : Ggpu_fgpu.Stats.t;
  correct : bool;  (** output buffer matches the OCaml reference *)
  wall_ns : int;  (** this job alone, on whichever domain ran it *)
  pmu : Ggpu_pmu.Pmu.summary option;
      (** PMU bucket/hot-PC summary; [Some] iff [run ~pmu:true] *)
}

val job_name : job -> string
(** ["<kernel>/<n>cu"]. *)

val default_size : Suite.t -> int
(** The benchmark driver's convention: the paper's G-GPU input size
    capped at 8192, rounded to the workload's legal-size grid. *)

val grid : ?workloads:Suite.t list -> cu_counts:int list -> unit -> job list
(** Cartesian product in suite order (default {!Suite.all}). *)

val run :
  ?domains:int ->
  ?pmu:bool ->
  ?pmu_stride:int ->
  ?backend:Ggpu_fgpu.Gpu.backend ->
  ?sim_domains:int ->
  ?superopt:bool ->
  job list ->
  result list * Ggpu_obs.Metrics.snapshot
(** Run all jobs (order-preserving) and merge their per-job metric
    registries deterministically.  [pmu] (default false) attaches a
    {!Ggpu_pmu.Pmu} collector per job — simulated results stay
    bit-identical; only the per-job [pmu] summaries appear.
    [pmu_stride] sets the hot-PC sampling period in cycles.
    [superopt] (default true) is forwarded to
    {!Codegen_fgpu.compile} — [false] disables the peephole pass.
    [backend] and [sim_domains] are forwarded to each job's simulator
    launch ({!Ggpu_fgpu.Gpu.run}); [sim_domains] fans out the
    functional phase *within* one simulation and is independent of
    [domains], which spreads whole jobs.  Merged metrics — including
    the always-present ["suite.failures"] counter, explicitly zero on
    a clean run — are bit-identical for any combination of the two. *)
