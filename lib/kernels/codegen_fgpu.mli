(** G-GPU code generator.

    Calling convention (honoured by {!Run_fgpu} / {!Ggpu_fgpu.Gpu}):
    r0 is zero; kernel parameters are preloaded into r1..rN in
    declaration order (buffers as byte base addresses); r9..r27 belong
    to the allocator; r28..r31 are scratch. *)

type compiled = {
  kernel_name : string;
  code : Ggpu_isa.Fgpu_isa.t array;
  param_regs : (string * int) list;  (** parameter name -> register *)
  max_live : int;  (** allocator pressure, for diagnostics *)
  peephole : Ggpu_superopt.Peephole.report;
      (** what the post-assembly superopt pass did (empty when
          [superopt:false]) *)
}

exception Too_many_params of string

val compile : ?optimise:bool -> ?superopt:bool -> Ast.kernel -> compiled
(** [optimise] (default true) runs {!Opt.optimise} on the IR first.
    [superopt] (default true) then applies the mined peephole rule
    table ({!Ggpu_superopt.Rules.default}) to the assembled code.
    @raise Too_many_params beyond 8 parameters.
    @raise Regalloc.Register_pressure if the kernel needs more than the
    19 allocatable registers.
    @raise Check.Error if the kernel is ill-formed. *)
