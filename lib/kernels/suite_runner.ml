(* Parallel execution of the kernel suite over a (workload x CU-count)
   grid.

   Each job compiles its kernel, runs it on the G-GPU simulator and
   checks the output buffer against the workload's OCaml reference —
   the same work the comparison harness and the benchmark driver do
   sequentially.  Jobs are independent (fresh memory image, fresh
   simulator state per job), so they spread over a
   {!Ggpu_par.Parallel} domain pool.

   Determinism: the simulator is deterministic, so every per-job
   number except wall time is independent of the domain count.  The
   merged metrics snapshot contains only such deterministic values
   (cycle counts, instruction counts, job/failure tallies) and
   therefore folds bit-identically for any [?domains], including 1 —
   the property {!Ggpu_par.Parallel.map_collect} guarantees for
   integral metrics.  Wall time lives in the per-job result record
   instead, where it is understood to vary. *)

type job = { workload : Suite.t; cus : int; size : int }

type result = {
  job : job;
  stats : Ggpu_fgpu.Stats.t;
  correct : bool; (* output buffer matches the OCaml reference *)
  wall_ns : int; (* this job alone, on whichever domain ran it *)
  pmu : Ggpu_pmu.Pmu.summary option; (* present on instrumented runs *)
}

let job_name j = Printf.sprintf "%s/%dcu" j.workload.Suite.name j.cus

(* The benchmark driver's sizing convention: the paper's G-GPU input
   size, capped so a single job stays interactive, rounded to the
   workload's legal-size grid. *)
let default_size (w : Suite.t) =
  w.Suite.round_size (min 8192 w.Suite.ggpu_size)

let grid ?(workloads = Suite.all) ~cu_counts () =
  List.concat_map
    (fun w ->
      List.map (fun cus -> { workload = w; cus; size = default_size w }) cu_counts)
    workloads

let run_job ?pmu_stride ?backend ?sim_domains ?superopt ~pmu reg (j : job) =
  let w = j.workload in
  let t0 = Ggpu_obs.Metrics.now_ns () in
  let config = Ggpu_fgpu.Config.with_cus Ggpu_fgpu.Config.default j.cus in
  let args = w.Suite.mk_args ~size:j.size in
  let compiled = Codegen_fgpu.compile ?superopt w.Suite.kernel in
  let collector =
    if pmu then
      Some
        (Ggpu_pmu.Pmu.create ?stride:pmu_stride ~num_cus:j.cus
           ~prog_len:(Array.length compiled.Codegen_fgpu.code)
           ())
    else None
  in
  let r =
    Run_fgpu.run ~config ?pmu:collector ?backend ?domains:sim_domains compiled
      ~args
      ~global_size:(w.Suite.global_size ~size:j.size)
      ~local_size:(min w.Suite.local_size j.size)
      ()
  in
  let got = Run_fgpu.output r w.Suite.output_buffer in
  let expected = w.Suite.expected ~size:j.size args in
  let correct = got = expected in
  let wall_ns = Ggpu_obs.Metrics.now_ns () - t0 in
  let stats = r.Run_fgpu.stats in
  (* deterministic values only: the merge must not depend on domains *)
  let open Ggpu_obs.Metrics in
  add (counter reg "suite.jobs") 1;
  (* register unconditionally so a clean run carries an explicit zero:
     consumers can tell "no failures" from "metric missing" *)
  add (counter reg "suite.failures") (if correct then 0 else 1);
  add (counter reg "suite.cycles") stats.Ggpu_fgpu.Stats.cycles;
  add (counter reg "suite.wf_instructions")
    stats.Ggpu_fgpu.Stats.wf_instructions;
  add (counter reg "suite.lane_instructions")
    stats.Ggpu_fgpu.Stats.lane_instructions;
  gauge_max (gauge reg "suite.max_cycles") stats.Ggpu_fgpu.Stats.cycles;
  let pmu =
    Option.map
      (fun c -> Ggpu_pmu.Pmu.summarize c ~program:compiled.Codegen_fgpu.code)
      collector
  in
  { job = j; stats; correct; wall_ns; pmu }

let run ?domains ?(pmu = false) ?pmu_stride ?backend ?sim_domains ?superopt jobs
    =
  Ggpu_par.Parallel.map_collect ?domains
    (run_job ?pmu_stride ?backend ?sim_domains ?superopt ~pmu)
    jobs
