(** Harness gluing a compiled RV32 kernel to the CPU simulator: buffer
    layout in data memory, convention registers, run, read-back. *)

type result = {
  stats : Ggpu_riscv.Cpu.stats;
  buffers : (string * int32 array) list;
}

exception Setup_error of string

val run :
  ?fuel:int ->
  ?base_addr:int ->
  ?mem_words:int ->
  ?max_cycles:int ->
  ?inject:int * (Ggpu_riscv.Cpu.t -> unit) ->
  Codegen_rv32.compiled ->
  args:Interp.args ->
  global_size:int ->
  local_size:int ->
  unit ->
  result
(** [max_cycles] arms {!Ggpu_riscv.Cpu.run}'s cycle watchdog. [inject]
    is a [(cycle, f)] fault-injection hook: the CPU single-steps to the
    first instruction boundary at or after [cycle], [f] corrupts the
    state, and the run resumes (skipped if the program halts first). *)

val output : result -> string -> int32 array
(** @raise Setup_error on an unknown buffer name. *)
