(* Execution counters reported by a G-GPU run. *)

type t = {
  mutable cycles : int; (* completion time of the last wavefront *)
  mutable wf_instructions : int; (* wavefront-instructions issued *)
  mutable lane_instructions : int; (* work-item instructions executed *)
  mutable divergent_issues : int; (* issues with a partial active mask *)
  mutable loads : int; (* wavefront load instructions *)
  mutable stores : int;
  mutable line_requests : int; (* coalesced cache-line requests *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable evictions : int;
  mutable axi_words : int; (* words moved over the AXI data ports *)
  mutable barriers : int;
  mutable workgroups : int;
  mutable vu_busy_cycles : int;
      (* vector-pipeline occupancy summed over CUs (incl. divider) *)
}

let create () =
  {
    cycles = 0;
    wf_instructions = 0;
    lane_instructions = 0;
    divergent_issues = 0;
    loads = 0;
    stores = 0;
    line_requests = 0;
    cache_hits = 0;
    cache_misses = 0;
    evictions = 0;
    axi_words = 0;
    barriers = 0;
    workgroups = 0;
    vu_busy_cycles = 0;
  }

(* Fraction of available vector-pipeline cycles spent issuing, over
   [num_cus] compute units. *)
let utilisation t ~num_cus =
  if t.cycles = 0 then 0.0
  else
    float_of_int t.vu_busy_cycles /. float_of_int (t.cycles * max 1 num_cus)

(* [None] when the run made no cache accesses: a memory-free kernel
   has no hit rate, and reporting 1.0 would classify it as a perfect
   cache in downstream reports. *)
let hit_rate t =
  let total = t.cache_hits + t.cache_misses in
  if total = 0 then None
  else Some (float_of_int t.cache_hits /. float_of_int total)

(* Counters as (name, value) pairs, in declaration order, so reports
   (bench, the FI engine) can emit them without scraping [pp] output. *)
let to_assoc t =
  [
    ("cycles", t.cycles);
    ("wf_instructions", t.wf_instructions);
    ("lane_instructions", t.lane_instructions);
    ("divergent_issues", t.divergent_issues);
    ("loads", t.loads);
    ("stores", t.stores);
    ("line_requests", t.line_requests);
    ("cache_hits", t.cache_hits);
    ("cache_misses", t.cache_misses);
    ("evictions", t.evictions);
    ("axi_words", t.axi_words);
    ("barriers", t.barriers);
    ("workgroups", t.workgroups);
    ("vu_busy_cycles", t.vu_busy_cycles);
  ]

let pp fmt t =
  Format.fprintf fmt
    "cycles=%d wf_instrs=%d lane_instrs=%d divergent=%d loads=%d stores=%d \
     line_reqs=%d hits=%d misses=%d evictions=%d axi_words=%d barriers=%d \
     wgs=%d vu_busy=%d"
    t.cycles t.wf_instructions t.lane_instructions t.divergent_issues t.loads
    t.stores t.line_requests t.cache_hits t.cache_misses t.evictions
    t.axi_words t.barriers t.workgroups t.vu_busy_cycles
