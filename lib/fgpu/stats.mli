(** Execution counters reported by a G-GPU run. *)

type t = {
  mutable cycles : int;  (** completion time of the last wavefront *)
  mutable wf_instructions : int;
  mutable lane_instructions : int;
  mutable divergent_issues : int;  (** issues with a partial active mask *)
  mutable loads : int;
  mutable stores : int;
  mutable line_requests : int;  (** after coalescing *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable evictions : int;
  mutable axi_words : int;
  mutable barriers : int;
  mutable workgroups : int;
  mutable vu_busy_cycles : int;
      (** vector-pipeline occupancy summed over CUs (incl. divider) *)
}

val create : unit -> t
val utilisation : t -> num_cus:int -> float
(** Fraction of available vector-pipeline cycles spent issuing. *)

val hit_rate : t -> float option
(** Cache hits over total cache accesses; [None] when the run made no
    memory accesses at all (a memory-free kernel has no hit rate — it
    must not be mistaken for a perfectly-cached one). *)

val to_assoc : t -> (string * int) list
(** Every counter as a (name, value) pair, in declaration order, so
    reports can emit them without scraping [pp] output. *)

val pp : Format.formatter -> t -> unit
