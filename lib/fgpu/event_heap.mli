(** Minimal binary min-heap of (time, payload) pairs for the
    discrete-event scheduler. Entries may be stale; the scheduler
    revalidates on pop. *)

type 'a t

val create : dummy:'a -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a t -> int -> 'a -> unit

val clear : 'a t -> unit
(** Drop every entry, releasing payload references; capacity is kept,
    so a cleared heap can be reused without reallocation. *)

exception Empty

val pop : 'a t -> int * 'a
(** Smallest time first. @raise Empty on an empty heap. *)
