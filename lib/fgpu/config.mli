(** G-GPU execution configuration, mirroring the FGPU architecture of
    the paper's Fig. 1: 1-8 compute units of 8 processing elements,
    64-work-item wavefronts, up to 512 resident work-items per CU, a
    central multi-port write-back cache and up to four AXI data ports. *)

type cache = {
  size_bytes : int;
  line_words : int;
  ports : int;  (** coalesced line requests accepted per cycle *)
  hit_latency : int;
}

type axi = {
  data_ports : int;  (** 1..4, as in FGPU *)
  latency : int;  (** memory round-trip, cycles *)
  words_per_beat : int;  (** bus width per port *)
}

type t = {
  num_cus : int;
  pes_per_cu : int;
  wavefront_size : int;
  max_workitems_per_cu : int;
  cache : cache;
  axi : axi;
  div_latency : int;
      (** cycles per active lane on the CU's shared iterative divider *)
  mul_latency : int;
  branch_penalty : int;
  issue_overhead : int;
}

exception Bad_config of string

val validate : t -> t
(** @raise Bad_config on out-of-range fields (e.g. more than 8 CUs). *)

val default : t
(** 1 CU, FGPU-like geometry, calibrated timing (see source). *)

val with_cus : t -> int -> t

(** Injective, order-fixed rendering of every field — the config
    fragment of {!Ggpu_serve} memo-cache keys.  Execution engine and
    domain fan-out are excluded by design: simulated results are
    bit-identical across both. *)
val canonical : t -> string
val beats : t -> int
(** Vector-pipeline occupancy per wavefront instruction. *)

val wavefronts_per_workgroup : t -> local_size:int -> int
val max_workgroups_per_cu : t -> local_size:int -> int
