(* G-GPU top level: workgroup dispatch and discrete-event execution.

   Each compute unit owns a vector pipeline that is occupied for
   [wavefront_size / pes] beats per issued wavefront-instruction (8
   beats for the FGPU's 64-item wavefronts on 8 PEs).  Up to 512
   work-items are resident per CU; ready wavefronts are issued
   round-robin, hiding memory latency exactly as the FGPU's wavefront
   scheduler does.  Memory instructions coalesce into cache-line requests
   against the shared multi-port cache ({!Cache}), which is where
   multi-CU contention - the paper's 8-CU saturation effect - arises.

   The simulation is event-driven: every issue computes its completion
   time analytically, so no per-cycle loop is needed and multi-million
   cycle runs complete in seconds.

   Scheduler structures are flat and allocation-free on the hot path:
   each CU keeps its resident wavefronts in a fixed array (paired with
   the owning workgroup, compacted in order on retirement, so slot order
   equals the old resident-list traversal order), and its earliest
   possible issue time is cached and invalidated only on the mutations
   that can change it (issue, dispatch, barrier release, retirement,
   fault injection).  Popping a stale heap entry therefore costs one
   cached comparison instead of a rebuild-and-scan of the resident set.
   The event order, and with it every counter in {!Stats}, is identical
   to the original list-based scheduler: the cache is only read when
   valid, and a valid cache means no mutation happened since it was
   computed, so a recomputation would return the same value.

   Two orthogonal execution choices sit on top of that scheduler:

   - [backend] picks how an issue executes its lanes: [Interp]
     dispatches on predecoded instruction tags ({!Wavefront.issue});
     [Threaded] runs per-pc closures compiled once per launch
     ({!Threaded}).  Both must leave identical architectural state —
     the golden cycle table and the differential property tests hold
     them to it.

   - [domains] > 1 splits the run into a functional phase and a timing
     phase.  Timing is not decomposable per CU (every memory issue
     arbitrates for the shared cache's ports and the AXI bus, and
     workgroup dispatch consults a global cursor), but the functional
     execution is: workgroups only interact through barriers within
     themselves, so each workgroup's lane work can run in its own
     domain.  Phase A executes all workgroups functionally in parallel
     ({!Ggpu_par.Parallel.map}), recording each wavefront's issue
     stream (pc, lane counts, coalesced lines, flags) into a compact
     trace.  Phase B replays those traces through the unchanged
     sequential scheduler — same heap, same cache arbitration, same
     dispatch, same PMU hooks — so every timing decision is made by
     exactly the code that makes it at [domains = 1], and the result is
     bit-identical at every domain count by construction.  Runs that
     need mid-flight architectural access (fault injection, watchdog
     truncation) fall back to in-place execution, as does any split run
     whose phase A faults or whose replay desynchronises (possible only
     for racy or non-uniformly-synchronised kernels): global memory is
     restored from a snapshot and the run repeats sequentially, giving
     exactly the sequential semantics including partial-result state. *)

type workgroup = {
  wg_id : int;
  wavefronts : Wavefront.t array;
  mutable barrier_waiting : int;
  mutable finished_wfs : int;
  items : int; (* resident work-item slots the workgroup occupies *)
}

let no_candidate = max_int

type cu = {
  cu_id : int;
  mutable vu_free : int; (* vector unit next free cycle *)
  wf_slots : Wavefront.t array; (* resident wavefronts, dispatch order *)
  wg_slots : workgroup array; (* owning workgroup, parallel to wf_slots *)
  mutable n_wfs : int; (* live prefix of the slot arrays *)
  mutable resident_items : int;
  mutable rr : int; (* round-robin cursor over resident wavefronts *)
  mutable cand : int; (* cached earliest issue time; [no_candidate] if idle *)
  mutable cand_valid : bool;
}

exception Launch_error of string
exception Watchdog_timeout of int

let fail fmt = Printf.ksprintf (fun s -> raise (Launch_error s)) fmt

type backend = Interp | Threaded

let backend_name = function Interp -> "interp" | Threaded -> "threaded"

let backend_of_string = function
  | "interp" -> Some Interp
  | "threaded" -> Some Threaded
  | _ -> None

(* Snapshot of the architectural state handed to a fault injector:
   every wavefront currently resident (CU-major, workgroup order), the
   cache tag/dirty arrays behind [cache], and global memory (native-int
   words, {!Ggpu_isa.I32} canonical). *)
type probe = {
  p_now : int;
  p_wavefronts : Wavefront.t array;
  p_cache : Cache.t;
  p_mem : int array;
}

let runnable wf = (not (Wavefront.finished wf)) && not wf.Wavefront.at_barrier

(* Earliest cycle at which [cu] could issue ([no_candidate] when no
   wavefront is ready), recomputed only when a mutation invalidated the
   cached value. *)
let candidate_time cu =
  if cu.cand_valid then cu.cand
  else begin
    let best = ref no_candidate in
    for i = 0 to cu.n_wfs - 1 do
      let wf = cu.wf_slots.(i) in
      if runnable wf && wf.Wavefront.ready_at < !best then
        best := wf.Wavefront.ready_at
    done;
    let c = if !best = no_candidate then no_candidate else max cu.vu_free !best in
    cu.cand <- c;
    cu.cand_valid <- true;
    c
  end

let invalidate cu = cu.cand_valid <- false

(* Fused candidate-time + round-robin pick for the burst continuation:
   one pass in probe order yields both the earliest issue time (cached
   into [cand] exactly as [candidate_time] would compute it) and the
   round-robin winner at that time.  Returns the winning slot index, -1
   when nothing is runnable; the caller reads the time from [cu.cand].

   Equivalence with [candidate_time] + [pick_wavefront]: the issue time
   is max(vu_free, min ready_at over runnable wavefronts).  When that
   minimum is <= vu_free the winner is the probe-order-first runnable
   wavefront with ready_at <= vu_free ([first_le]); otherwise every
   runnable wavefront has ready_at >= the minimum, so "ready at t'"
   means "ready_at = min" and the winner is the probe-order-first
   achiever of the minimum ([first_min], kept by strict-< update). *)
let next_issue cu =
  let n = cu.n_wfs in
  let slots = cu.wf_slots in
  let vu = cu.vu_free in
  let rec scan idx k min_ready first_le first_min =
    if k >= n then begin
      cu.cand_valid <- true;
      if min_ready = no_candidate then begin
        cu.cand <- no_candidate;
        -1
      end
      else if min_ready <= vu then begin
        cu.cand <- vu;
        first_le
      end
      else begin
        cu.cand <- min_ready;
        first_min
      end
    end
    else
      let wf = Array.unsafe_get slots idx in
      let idx' = if idx + 1 = n then 0 else idx + 1 in
      if runnable wf then
        let r = wf.Wavefront.ready_at in
        let first_le = if first_le < 0 && r <= vu then idx else first_le in
        if r < min_ready then scan idx' (k + 1) r first_le idx
        else scan idx' (k + 1) min_ready first_le first_min
      else scan idx' (k + 1) min_ready first_le first_min
  in
  if n = 0 then begin
    cu.cand <- no_candidate;
    cu.cand_valid <- true;
    -1
  end
  else begin
    (* Steady-state fast path: the probe-order-first slot is the
       round-robin cursor itself, so when that wavefront is already
       ready at [vu_free] it wins outright — [min_ready <= ready_at <=
       vu] forces t' = vu and the probe stops on its first slot. *)
    let rr = cu.rr mod n in
    let wf0 = Array.unsafe_get slots rr in
    if runnable wf0 && wf0.Wavefront.ready_at <= vu then begin
      cu.cand <- vu;
      cu.cand_valid <- true;
      rr
    end
    else scan rr 0 no_candidate (-1) (-1)
  end

(* One wavefront's recorded issue stream for split-mode replay: per
   issue [pc; meta; line...] where [meta] packs the executed-lane
   count (bits 0-15), the coalesced line count (bits 16-31) and the
   outcome flags (bits 32+). *)
module Tbuf = struct
  type t = { mutable buf : int array; mutable len : int }

  let create () = { buf = Array.make 256 0; len = 0 }

  let record b (out : Wavefront.outcome) =
    let nl = out.Wavefront.mem_line_count in
    let need = b.len + 2 + nl in
    if need > Array.length b.buf then begin
      let a = Array.make (max (2 * Array.length b.buf) need) 0 in
      Array.blit b.buf 0 a 0 b.len;
      b.buf <- a
    end;
    let a = b.buf and p = b.len in
    a.(p) <- out.Wavefront.pc;
    let flags =
      (if out.Wavefront.partial_mask then 1 else 0)
      lor (if out.Wavefront.mem_is_store then 2 else 0)
      lor (if out.Wavefront.used_div then 4 else 0)
      lor (if out.Wavefront.used_mul then 8 else 0)
      lor (if out.Wavefront.taken_branch then 16 else 0)
      lor (if out.Wavefront.hit_barrier then 32 else 0)
      lor if out.Wavefront.retired then 64 else 0
    in
    a.(p + 1) <-
      out.Wavefront.executed_lanes lor (nl lsl 16) lor (flags lsl 32);
    for i = 0 to nl - 1 do
      a.(p + 2 + i) <- out.Wavefront.mem_lines.(i)
    done;
    b.len <- p + 2 + nl
end

let run ?max_cycles ?inject ?pmu ?(backend = Threaded) ?(domains = 1)
    (cfg : Config.t) ~program ~params ~global_size ~local_size ~mem =
  Ggpu_obs.Trace.with_span "fgpu.run"
    ~args:
      [
        ("cus", string_of_int cfg.Config.num_cus);
        ("global_size", string_of_int global_size);
        ("backend", backend_name backend);
      ]
  @@ fun () ->
  let t0_ns = Ggpu_obs.Metrics.now_ns () in
  let cfg = Config.validate cfg in
  if global_size < 0 then fail "negative global size";
  if local_size <= 0 then fail "non-positive local size";
  if local_size > cfg.Config.max_workitems_per_cu then
    fail "local size %d exceeds CU capacity %d" local_size
      cfg.Config.max_workitems_per_cu;
  if Array.length program = 0 then fail "empty program";
  if domains < 1 then fail "non-positive domain count";
  if global_size = 0 then Stats.create ()
  else begin
    let dprog = Ggpu_isa.Fgpu_predecode.of_program program in
    let prog_len = Array.length dprog in
    (* Instructions whose issue can touch state shared across CUs —
       cache/AXI arbitration (loads, stores), the global dispatch
       cursor (retirement), or barrier bookkeeping.  Everything else
       reads and writes only the issuing wavefront's registers, so its
       global timing order is unobservable; the event loop exploits
       that by bursting through such issues without heap traffic. *)
    let interactive =
      Array.map
        (fun d ->
          match d.Ggpu_isa.Fgpu_predecode.kind with
          | Ggpu_isa.Fgpu_predecode.KLw | Ggpu_isa.Fgpu_predecode.KSw
          | Ggpu_isa.Fgpu_predecode.KBarrier | Ggpu_isa.Fgpu_predecode.KRet ->
              true
          | _ -> false)
        dprog
    in
    let beats = Config.beats cfg in
    (* The PMU is a pure observer: [pmu_on] gates every touch of the
       collector, so a bare run pays one load-and-branch per issue and
       an instrumented run is bit-identical (nothing here feeds back
       into timing or stats).  [pmu_c] exists so the instrumented
       branch needs no option unwrap; the dummy is never written. *)
    let pmu_on = pmu <> None in
    let pmu_c =
      match pmu with
      | Some p ->
          if Ggpu_pmu.Pmu.num_cus p <> cfg.Config.num_cus then
            fail "PMU collector sized for %d CUs, config has %d"
              (Ggpu_pmu.Pmu.num_cus p) cfg.Config.num_cus;
          p
      | None -> Ggpu_pmu.Pmu.create ~num_cus:1 ~prog_len:0 ()
    in
    let wf_size = cfg.Config.wavefront_size in
    let num_wgs = (global_size + local_size - 1) / local_size in
    let wfs_per_wg = Config.wavefronts_per_workgroup cfg ~local_size in
    (* the simulator's working copy of global memory: unboxed native
       ints, copied back into the caller's [int32 array] on every exit
       path so partial results survive watchdogs and faults *)
    let imem = Array.map Ggpu_isa.I32.of_int32 mem in
    let copy_back () =
      for i = 0 to Array.length mem - 1 do
        mem.(i) <- Ggpu_isa.I32.to_int32 imem.(i)
      done
    in
    Fun.protect ~finally:copy_back @@ fun () ->
    let line_words = cfg.Config.cache.Config.line_words in
    (* how an issue executes its lanes; both backends write the same
       architectural state and the same outcome record *)
    let issue_arch : Wavefront.t -> Wavefront.outcome -> unit =
      match backend with
      | Threaded ->
          (* eta-expanded: a partial application here would send every
             issue through caml_curry with a fresh intermediate closure *)
          let th = Threaded.compile dprog ~wf_size ~mem:imem ~line_words in
          fun wf out -> Threaded.issue th wf out
      | Interp -> fun wf out -> Wavefront.issue wf ~dprog ~mem:imem ~line_words out
    in
    let make_wg wg_id =
      let wavefronts =
        Array.init wfs_per_wg (fun wf_index ->
            Wavefront.create ~wg_id ~wf_index ~size:wf_size
              ~wg_offset:(wg_id * local_size)
              ~wg_size:(min local_size (global_size - (wg_id * local_size)))
              ~global_size ~params)
      in
      {
        wg_id;
        wavefronts;
        barrier_waiting = 0;
        finished_wfs = 0;
        items = wfs_per_wg * wf_size;
      }
    in
    let dummy_wg =
      { wg_id = -1; wavefronts = [||]; barrier_waiting = 0; finished_wfs = 0; items = 0 }
    in
    let dummy_wf =
      Wavefront.create ~wg_id:(-1) ~wf_index:0 ~size:1 ~wg_offset:0 ~wg_size:0
        ~global_size:0 ~params:[]
    in
    let slot_capacity =
      max wfs_per_wg (cfg.Config.max_workitems_per_cu / wf_size)
    in
    (* Split-mode is only sound when nothing needs to see or bound the
       architectural state mid-flight. *)
    let use_split =
      domains > 1 && Option.is_none inject && Option.is_none max_cycles
      && wfs_per_wg * wf_size <= cfg.Config.max_workitems_per_cu
    in
    (* Phase A: run every workgroup functionally, workgroups fanned out
       over domains.  Within a workgroup, wavefronts run in slot order
       in barrier-delimited rounds: each runs until it hits a barrier
       or retires, then all arrived wavefronts are released together —
       the architectural barrier semantics, independent of the timing
       interleaving phase B will choose.  Always runs every wavefront
       to retirement, so the traces cover any schedule phase B picks
       (a replay that needs less — a kernel whose sequential schedule
       deadlocks — fails and falls back to sequential execution). *)
    let exec_traces () =
      let exec_wg wg_id =
        let wg = make_wg wg_id in
        let wfs = wg.wavefronts in
        let nw = Array.length wfs in
        let out = Wavefront.make_outcome ~max_lanes:wf_size in
        let bufs = Array.init nw (fun _ -> Tbuf.create ()) in
        let again = ref true in
        while !again do
          again := false;
          for i = 0 to nw - 1 do
            let wf = wfs.(i) in
            if runnable wf then begin
              let stop = ref false in
              while not !stop do
                issue_arch wf out;
                Tbuf.record bufs.(i) out;
                if out.Wavefront.hit_barrier then begin
                  wf.Wavefront.at_barrier <- true;
                  stop := true
                end
                else if out.Wavefront.retired then stop := true
              done
            end
          done;
          Array.iter
            (fun wf ->
              if wf.Wavefront.at_barrier then begin
                wf.Wavefront.at_barrier <- false;
                again := true
              end)
            wfs
        done;
        bufs
      in
      let results =
        Ggpu_par.Parallel.map ~domains exec_wg (List.init num_wgs Fun.id)
      in
      Array.of_list results
    in
    (* The discrete-event simulation proper.  With [traces] the issue
       step replays the recorded streams; without, it executes lanes in
       place.  Everything else — dispatch, scheduling, cache and AXI
       arbitration, stats, PMU — is the same code either way. *)
    let simulate ~(traces : Tbuf.t array array option) =
      let stats = Stats.create () in
      let cache = Cache.create cfg ~stats in
      let cus =
        Array.init cfg.Config.num_cus (fun cu_id ->
            {
              cu_id;
              vu_free = 0;
              wf_slots = Array.make slot_capacity dummy_wf;
              wg_slots = Array.make slot_capacity dummy_wg;
              n_wfs = 0;
              resident_items = 0;
              rr = 0;
              cand = no_candidate;
              cand_valid = false;
            })
      in
      let heap = Event_heap.create ~dummy:(-1) in
      (* Heap keys pack (time, cu_id) so that equal-time events pop in
         CU order.  The pop sequence is then a pure function of the
         event *values* — never of push history or internal heap layout
         — which is what lets the burst path below skip heap traffic for
         CU-local issues without perturbing the order in which shared
         state (cache ports, dispatch cursor) is touched. *)
      let cu_bits =
        let rec bits n acc = if n <= 1 then acc else bits (n lsr 1) (acc + 1) in
        bits (cfg.Config.num_cus - 1) 1
      in
      let push_event t cu_id =
        Event_heap.push heap ((t lsl cu_bits) lor cu_id) cu_id
      in
      let schedule cu =
        let t = candidate_time cu in
        if t <> no_candidate then push_event t cu.cu_id
      in
      let next_wg = ref 0 in
      (* One sample of [cu]'s wavefront-occupancy track, in simulated
         cycles; emitted at the points where occupancy changes (dispatch,
         barrier entry/release, retirement). *)
      let pmu_occupancy cu ~now =
        if pmu_on && Ggpu_obs.Trace.enabled () then begin
          let active = ref 0 in
          for i = 0 to cu.n_wfs - 1 do
            if runnable cu.wf_slots.(i) then incr active
          done;
          Ggpu_pmu.Pmu.occupancy ~cu:cu.cu_id ~now ~resident:cu.n_wfs
            ~active:!active
        end
      in
      (* Hand out at most one workgroup per call, so pending workgroups
         spread round-robin over CUs instead of piling onto the first. *)
      let dispatch_one cu ~now =
        if
          !next_wg < num_wgs
          && cu.resident_items + (wfs_per_wg * wf_size)
             <= cfg.Config.max_workitems_per_cu
        then begin
          let wg = make_wg !next_wg in
          incr next_wg;
          Array.iter
            (fun wf ->
              wf.Wavefront.ready_at <- now;
              wf.Wavefront.last_cu <- cu.cu_id;
              wf.Wavefront.dispatched_at <- now;
              cu.wf_slots.(cu.n_wfs) <- wf;
              cu.wg_slots.(cu.n_wfs) <- wg;
              cu.n_wfs <- cu.n_wfs + 1)
            wg.wavefronts;
          cu.resident_items <- cu.resident_items + wg.items;
          invalidate cu;
          pmu_occupancy cu ~now;
          true
        end
        else false
      in
      (* initial dispatch, round-robin over CUs *)
      let made_progress = ref true in
      while !next_wg < num_wgs && !made_progress do
        made_progress := false;
        Array.iter
          (fun cu ->
            if dispatch_one cu ~now:0 then made_progress := true)
          cus
      done;
      if !next_wg = 0 then
        fail "workgroup of %d items does not fit any CU (capacity %d)"
          local_size cfg.Config.max_workitems_per_cu;
      Array.iter schedule cus;
      (* pick the next wavefront to issue on [cu] at time [t]; stop at the
         round-robin winner instead of scanning the rest (hot path: called
         once per issued wavefront-instruction).  Returns the slot index,
         -1 if nothing is ready. *)
      let pick_wavefront cu t =
        (* pure scan: probes (rr + k) mod n for k = 0.., without the
           per-probe division (the cursor may be stale past n after a
           workgroup retired, hence the initial mod).  The caller
           commits the cursor once it decides to issue the winner. *)
        let n = cu.n_wfs in
        let slots = cu.wf_slots in
        let rec probe idx k =
          if k >= n then -1
          else
            let wf = Array.unsafe_get slots idx in
            if runnable wf && wf.Wavefront.ready_at <= t then idx
            else probe (if idx + 1 = n then 0 else idx + 1) (k + 1)
        in
        probe (cu.rr mod n) 0
      in
      (* the round-robin advance [pick_wavefront] used to apply on a hit *)
      let commit_rr cu idx =
        cu.rr <- (if idx + 1 = cu.n_wfs then 0 else idx + 1)
      in
      let release_barrier cu wg ~now =
        Array.iter
          (fun wf ->
            if wf.Wavefront.at_barrier then begin
              wf.Wavefront.at_barrier <- false;
              wf.Wavefront.ready_at <- max wf.Wavefront.ready_at now
            end)
          wg.wavefronts;
        wg.barrier_waiting <- 0;
        invalidate cu
      in
      (* drop a fully-retired workgroup, preserving the slot order of the
         survivors (the round-robin cursor is deliberately left alone,
         exactly as the old list filter left it) *)
      let remove_wg cu wg =
        let j = ref 0 in
        for i = 0 to cu.n_wfs - 1 do
          if cu.wg_slots.(i).wg_id <> wg.wg_id then begin
            cu.wf_slots.(!j) <- cu.wf_slots.(i);
            cu.wg_slots.(!j) <- cu.wg_slots.(i);
            incr j
          end
        done;
        for i = !j to cu.n_wfs - 1 do
          cu.wf_slots.(i) <- dummy_wf;
          cu.wg_slots.(i) <- dummy_wg
        done;
        cu.n_wfs <- !j;
        cu.resident_items <- cu.resident_items - wg.items;
        invalidate cu
      in
      let out = Wavefront.make_outcome ~max_lanes:wf_size in
      let cursors =
        match traces with
        | None -> [||]
        | Some tr ->
            Array.map (fun bufs -> Array.make (Array.length bufs) 0) tr
      in
      let issue_into : Wavefront.t -> Wavefront.outcome -> unit =
        match traces with
        | None -> issue_arch
        | Some tr ->
            fun wf out ->
              let wg = wf.Wavefront.wg_id and wi = wf.Wavefront.wf_index in
              let b = tr.(wg).(wi) in
              let p = cursors.(wg).(wi) in
              if p >= b.Tbuf.len then
                fail "replay desync: trace exhausted for wg %d wf %d" wg wi;
              let a = b.Tbuf.buf in
              out.Wavefront.pc <- Array.unsafe_get a p;
              let meta = Array.unsafe_get a (p + 1) in
              out.Wavefront.executed_lanes <- meta land 0xFFFF;
              let nl = (meta lsr 16) land 0xFFFF in
              out.Wavefront.mem_line_count <- nl;
              let flags = meta lsr 32 in
              out.Wavefront.partial_mask <- flags land 1 <> 0;
              out.Wavefront.mem_is_store <- flags land 2 <> 0;
              out.Wavefront.used_div <- flags land 4 <> 0;
              out.Wavefront.used_mul <- flags land 8 <> 0;
              out.Wavefront.taken_branch <- flags land 16 <> 0;
              out.Wavefront.hit_barrier <- flags land 32 <> 0;
              let retired = flags land 64 <> 0 in
              out.Wavefront.retired <- retired;
              for i = 0 to nl - 1 do
                out.Wavefront.mem_lines.(i) <- Array.unsafe_get a (p + 2 + i)
              done;
              cursors.(wg).(wi) <- p + 2 + nl;
              (* memory already holds phase A's writes; only the
                 scheduler-visible liveness needs maintaining *)
              if retired then wf.Wavefront.live_lanes <- 0
      in
      (* The pc the wavefront's next issue will execute, read without
         mutating anything: the burst check consults [interactive] with
         it.  Out-of-range (a fault about to be raised, an exhausted
         replay trace) answers -1, which the burst check treats as
         interactive so the normal path reports it in event order. *)
      let peek_pc : Wavefront.t -> int =
        match traces with
        | None ->
            fun wf ->
              if wf.Wavefront.conv_pc >= 0 then wf.Wavefront.conv_pc
              else Wavefront.min_pc wf
        | Some tr ->
            fun wf ->
              let wg = wf.Wavefront.wg_id and wi = wf.Wavefront.wf_index in
              let b = tr.(wg).(wi) in
              let p = cursors.(wg).(wi) in
              if p >= b.Tbuf.len then -1 else b.Tbuf.buf.(p)
      in
      let pending_inject = ref inject in
      let watchdog = Option.is_some max_cycles in
      (* Execute one issue for the wavefront in slot [idx] of [cu] at
         cycle [t], then either chase the CU's next issue directly (the
         burst path) or hand the CU back to the event heap.

         Burst rule: while nothing demands a globally-ordered view of
         the run — no pending injection, no watchdog, no PMU — and the
         pc the CU would issue next is non-[interactive], that issue
         reads and writes only its own wavefront's registers.  Its
         outcome and timing are independent of every event on other
         CUs, so it can run immediately instead of round-tripping
         through the heap.  Every load, store, barrier, retirement and
         fault still surfaces through the heap in global event order,
         which keeps cache arbitration, workgroup dispatch, watchdog
         and injection semantics bit-identical to the unbursted loop. *)
      let rec do_issue cu t idx =
        commit_rr cu idx;
        let wf = Array.unsafe_get cu.wf_slots idx in
        let wg = Array.unsafe_get cu.wg_slots idx in
        issue_into wf out;
        stats.Stats.wf_instructions <- stats.Stats.wf_instructions + 1;
        stats.Stats.lane_instructions <-
          stats.Stats.lane_instructions + out.Wavefront.executed_lanes;
        if out.Wavefront.partial_mask then
          stats.Stats.divergent_issues <- stats.Stats.divergent_issues + 1;
        (* a division holds the CU's shared iterative divider (and with
           it the vector pipeline) for every active lane *)
        let div_occupancy =
          if out.Wavefront.used_div then
            out.Wavefront.executed_lanes * cfg.Config.div_latency
          else 0
        in
        cu.vu_free <- t + beats + div_occupancy + cfg.Config.issue_overhead;
        stats.Stats.vu_busy_cycles <-
          stats.Stats.vu_busy_cycles + beats + div_occupancy;
        let completion = t + beats + div_occupancy in
        let completion =
          if out.Wavefront.mem_line_count > 0 then begin
            if out.Wavefront.mem_is_store then
              stats.Stats.stores <- stats.Stats.stores + 1
            else stats.Stats.loads <- stats.Stats.loads + 1;
            (* newest-first, matching the consed list the old issue path
               handed to the (stateful, order-sensitive) port arbiter *)
            let rec mem_loop i acc =
              if i < 0 then acc
              else
                let c =
                  Cache.access cache ~now:(t + beats)
                    ~addr:out.Wavefront.mem_lines.(i)
                    ~write:out.Wavefront.mem_is_store
                in
                mem_loop (i - 1) (if c > acc then c else acc)
            in
            mem_loop (out.Wavefront.mem_line_count - 1) completion
          end
          else completion
        in
        let completion =
          if out.Wavefront.used_mul then completion + cfg.Config.mul_latency
          else completion
        in
        let completion =
          if out.Wavefront.taken_branch then
            completion + cfg.Config.branch_penalty
          else completion
        in
        wf.Wavefront.ready_at <- completion;
        if completion > stats.Stats.cycles then
          stats.Stats.cycles <- completion;
        if out.Wavefront.hit_barrier then begin
          stats.Stats.barriers <- stats.Stats.barriers + 1;
          wf.Wavefront.at_barrier <- true;
          wg.barrier_waiting <- wg.barrier_waiting + 1;
          let active =
            Array.fold_left
              (fun n w -> if Wavefront.finished w then n else n + 1)
              0 wg.wavefronts
          in
          if wg.barrier_waiting >= active then
            release_barrier cu wg ~now:completion;
          pmu_occupancy cu ~now:completion
        end;
        if out.Wavefront.retired then begin
          wg.finished_wfs <- wg.finished_wfs + 1;
          if wg.finished_wfs = Array.length wg.wavefronts then begin
            stats.Stats.workgroups <- stats.Stats.workgroups + 1;
            remove_wg cu wg;
            ignore (dispatch_one cu ~now:completion : bool);
            pmu_occupancy cu ~now:completion
          end
        end;
        if pmu_on then begin
          (* Close the CU's timeline up to this issue: the idle gap is
             charged to whatever the issuing wavefront was waiting on,
             the busy slice to (divergent) issue.  Then classify what
             this issue's completion waits on, for the next gap. *)
          Ggpu_pmu.Pmu.on_issue pmu_c ~cu:cu.cu_id ~now:t
            ~busy:(beats + div_occupancy + cfg.Config.issue_overhead)
            ~pc:out.Wavefront.pc ~divergent:out.Wavefront.partial_mask
            ~stall:wf.Wavefront.stall_kind;
          wf.Wavefront.stall_kind <-
            (if out.Wavefront.hit_barrier then Ggpu_pmu.Pmu.sk_barrier
             else if out.Wavefront.mem_line_count > 0 then
               Ggpu_pmu.Pmu.sk_of_mem_class (Cache.take_access_class cache)
             else Ggpu_pmu.Pmu.sk_latency);
          if out.Wavefront.retired then
            Ggpu_pmu.Pmu.wf_span ~cu:cu.cu_id ~wg:wf.Wavefront.wg_id
              ~wf:wf.Wavefront.wf_index
              ~dispatched:wf.Wavefront.dispatched_at ~retired:completion
        end;
        if pmu_on || watchdog || Option.is_some !pending_inject then begin
          invalidate cu;
          schedule cu
        end
        else begin
          let idx' = next_issue cu in
          if idx' >= 0 then begin
            let t' = cu.cand in
            let pc = peek_pc cu.wf_slots.(idx') in
            if
              pc >= 0 && pc < prog_len
              && not (Array.unsafe_get interactive pc)
            then do_issue cu t' idx'
            else push_event t' cu.cu_id
          end
        end
      in
      (* main event loop *)
      let events_popped = ref 0 and heap_depth_max = ref 0 in
      while not (Event_heap.is_empty heap) do
        let key, cu_id = Event_heap.pop heap in
        let t = key asr cu_bits in
        incr events_popped;
        let depth = Event_heap.length heap in
        if depth > !heap_depth_max then heap_depth_max := depth;
        (match max_cycles with
        | Some limit when t > limit -> raise (Watchdog_timeout t)
        | _ -> ());
        (match !pending_inject with
        | Some (at, f) when t >= at ->
            pending_inject := None;
            let resident =
              Array.concat
                (Array.to_list
                   (Array.map (fun cu -> Array.sub cu.wf_slots 0 cu.n_wfs) cus))
            in
            (* converged wavefronts keep [pcs] stale; make it real before
               the injector reads or rewrites per-lane state *)
            Array.iter Wavefront.materialize_pcs resident;
            f { p_now = t; p_wavefronts = resident; p_cache = cache; p_mem = imem };
            (* injected state may have made an idle CU runnable again (a
               revived lane): re-arm every CU; stale events are harmless *)
            Array.iter invalidate cus;
            Array.iter schedule cus
        | _ -> ());
        let cu = cus.(cu_id) in
        let cand = candidate_time cu in
        if cand = no_candidate then () (* stale: nothing runnable here anymore *)
        else if cand > t then push_event cand cu.cu_id
        else begin
          let idx = pick_wavefront cu t in
          if idx < 0 then
            (* candidate_time guarantees a ready wavefront exists *)
            fail "scheduler inconsistency on CU %d at cycle %d" cu.cu_id t;
          do_issue cu t idx
        end
      done;
      if !next_wg < num_wgs then
        fail "deadlock: %d workgroups never dispatched" (num_wgs - !next_wg);
      (* a healthy run retires every wavefront before the heap drains; a
         corrupted one (e.g. a fault-injected lane lost before a barrier)
         can quiesce with work still resident - report it instead of
         returning a silently partial result *)
      let stuck =
        Array.fold_left
          (fun n cu ->
            let n = ref n in
            for i = 0 to cu.n_wfs - 1 do
              if not (Wavefront.finished cu.wf_slots.(i)) then incr n
            done;
            !n)
          0 cus
      in
      if stuck > 0 then fail "deadlock: %d wavefronts never retired" stuck;
      if pmu_on then Ggpu_pmu.Pmu.finalize pmu_c ~cycles:stats.Stats.cycles;
      if Ggpu_obs.Metrics.ambient_enabled () then begin
        let wall_ns = max 1 (Ggpu_obs.Metrics.now_ns () - t0_ns) in
        Ggpu_obs.Metrics.count "sim.fgpu.runs" 1;
        Ggpu_obs.Metrics.count "sim.fgpu.cycles" stats.Stats.cycles;
        Ggpu_obs.Metrics.count "sim.fgpu.wf_instructions"
          stats.Stats.wf_instructions;
        Ggpu_obs.Metrics.count "sim.fgpu.wall_ns" wall_ns;
        Ggpu_obs.Metrics.count "sim.fgpu.events" !events_popped;
        Ggpu_obs.Metrics.record_gauge "sim.fgpu.heap_depth" !heap_depth_max;
        Ggpu_obs.Metrics.record_gauge "sim.fgpu.kcycles_per_s"
          (stats.Stats.cycles * 1_000_000 / wall_ns)
      end;
      stats
    in
    if use_split then begin
      (* phase A mutates global memory; snapshot it so a fallback can
         repeat the run with exact sequential semantics *)
      let imem0 = Array.copy imem in
      match
        let traces = exec_traces () in
        if Ggpu_obs.Metrics.ambient_enabled () then
          Ggpu_obs.Metrics.count "sim.fgpu.split_runs" 1;
        simulate ~traces:(Some traces)
      with
      | stats -> stats
      | exception (Wavefront.Fault _ | Launch_error _) ->
          Array.blit imem0 0 imem 0 (Array.length imem0);
          if Ggpu_obs.Metrics.ambient_enabled () then
            Ggpu_obs.Metrics.count "sim.fgpu.split_fallbacks" 1;
          simulate ~traces:None
    end
    else simulate ~traces:None
  end
