(* G-GPU top level: workgroup dispatch and discrete-event execution.

   Each compute unit owns a vector pipeline that is occupied for
   [wavefront_size / pes] beats per issued wavefront-instruction (8
   beats for the FGPU's 64-item wavefronts on 8 PEs).  Up to 512
   work-items are resident per CU; ready wavefronts are issued
   round-robin, hiding memory latency exactly as the FGPU's wavefront
   scheduler does.  Memory instructions coalesce into cache-line requests
   against the shared multi-port cache ({!Cache}), which is where
   multi-CU contention - the paper's 8-CU saturation effect - arises.

   The simulation is event-driven: every issue computes its completion
   time analytically, so no per-cycle loop is needed and multi-million
   cycle runs complete in seconds. *)

type workgroup = {
  wg_id : int;
  wavefronts : Wavefront.t array;
  mutable barrier_waiting : int;
  mutable finished_wfs : int;
  items : int; (* resident work-item slots the workgroup occupies *)
}

type cu = {
  cu_id : int;
  mutable vu_free : int; (* vector unit next free cycle *)
  mutable resident : workgroup list;
  mutable resident_items : int;
  mutable rr : int; (* round-robin cursor over resident wavefronts *)
}

exception Launch_error of string
exception Watchdog_timeout of int

let fail fmt = Printf.ksprintf (fun s -> raise (Launch_error s)) fmt

(* Snapshot of the architectural state handed to a fault injector:
   every wavefront currently resident (CU-major, workgroup order), the
   cache tag/dirty arrays behind [cache], and global memory. *)
type probe = {
  p_now : int;
  p_wavefronts : Wavefront.t array;
  p_cache : Cache.t;
  p_mem : int32 array;
}

let wavefronts_of cu = List.concat_map (fun wg -> Array.to_list wg.wavefronts) cu.resident

let runnable wf = (not (Wavefront.finished wf)) && not wf.Wavefront.at_barrier

(* Earliest cycle at which [cu] could issue, if any wavefront is ready. *)
let candidate_time cu =
  let wfs = wavefronts_of cu in
  let ready =
    List.filter_map
      (fun wf -> if runnable wf then Some wf.Wavefront.ready_at else None)
      wfs
  in
  match ready with
  | [] -> None
  | times -> Some (max cu.vu_free (List.fold_left min max_int times))

let run ?max_cycles ?inject (cfg : Config.t) ~program ~params ~global_size
    ~local_size ~mem =
  Ggpu_obs.Trace.with_span "fgpu.run"
    ~args:
      [
        ("cus", string_of_int cfg.Config.num_cus);
        ("global_size", string_of_int global_size);
      ]
  @@ fun () ->
  let t0_ns = Ggpu_obs.Metrics.now_ns () in
  let cfg = Config.validate cfg in
  if global_size < 0 then fail "negative global size";
  if local_size <= 0 then fail "non-positive local size";
  if local_size > cfg.Config.max_workitems_per_cu then
    fail "local size %d exceeds CU capacity %d" local_size
      cfg.Config.max_workitems_per_cu;
  if Array.length program = 0 then fail "empty program";
  let stats = Stats.create () in
  if global_size = 0 then stats
  else begin
    let cache = Cache.create cfg ~stats in
    let beats = Config.beats cfg in
    let wf_size = cfg.Config.wavefront_size in
    let num_wgs = (global_size + local_size - 1) / local_size in
    let wfs_per_wg = Config.wavefronts_per_workgroup cfg ~local_size in
    let make_wg wg_id =
      let wavefronts =
        Array.init wfs_per_wg (fun wf_index ->
            Wavefront.create ~wg_id ~wf_index ~size:wf_size
              ~wg_offset:(wg_id * local_size)
              ~wg_size:(min local_size (global_size - (wg_id * local_size)))
              ~global_size ~params)
      in
      {
        wg_id;
        wavefronts;
        barrier_waiting = 0;
        finished_wfs = 0;
        items = wfs_per_wg * wf_size;
      }
    in
    let cus =
      Array.init cfg.Config.num_cus (fun cu_id ->
          { cu_id; vu_free = 0; resident = []; resident_items = 0; rr = 0 })
    in
    let heap = Event_heap.create ~dummy:(-1) in
    let schedule cu =
      match candidate_time cu with
      | Some t -> Event_heap.push heap t cu.cu_id
      | None -> ()
    in
    let next_wg = ref 0 in
    (* Hand out at most one workgroup per call, so pending workgroups
       spread round-robin over CUs instead of piling onto the first. *)
    let dispatch_one cu ~now =
      if
        !next_wg < num_wgs
        && cu.resident_items + (wfs_per_wg * wf_size)
           <= cfg.Config.max_workitems_per_cu
      then begin
        let wg = make_wg !next_wg in
        incr next_wg;
        Array.iter
          (fun wf ->
            wf.Wavefront.ready_at <- now;
            wf.Wavefront.last_cu <- cu.cu_id)
          wg.wavefronts;
        cu.resident <- cu.resident @ [ wg ];
        cu.resident_items <- cu.resident_items + wg.items;
        true
      end
      else false
    in
    (* initial dispatch, round-robin over CUs *)
    let made_progress = ref true in
    while !next_wg < num_wgs && !made_progress do
      made_progress := false;
      Array.iter
        (fun cu ->
          if dispatch_one cu ~now:0 then made_progress := true)
        cus
    done;
    if !next_wg = 0 then
      fail "workgroup of %d items does not fit any CU (capacity %d)"
        local_size cfg.Config.max_workitems_per_cu;
    Array.iter schedule cus;
    (* pick the next wavefront to issue on [cu] at time [t]; stop at the
       round-robin winner instead of scanning the rest (hot path: called
       once per issued wavefront-instruction) *)
    let pick_wavefront cu t =
      let wfs = Array.of_list (wavefronts_of cu) in
      let n = Array.length wfs in
      let best = ref None in
      let k = ref 0 in
      while !best = None && !k < n do
        let wf = wfs.((cu.rr + !k) mod n) in
        if runnable wf && wf.Wavefront.ready_at <= t then begin
          best := Some wf;
          cu.rr <- (cu.rr + !k + 1) mod n
        end;
        incr k
      done;
      !best
    in
    let release_barrier cu wg ~now =
      Array.iter
        (fun wf ->
          if wf.Wavefront.at_barrier then begin
            wf.Wavefront.at_barrier <- false;
            wf.Wavefront.ready_at <- max wf.Wavefront.ready_at now
          end)
        wg.wavefronts;
      wg.barrier_waiting <- 0;
      ignore cu
    in
    let find_wg cu wg_id =
      match List.find_opt (fun wg -> wg.wg_id = wg_id) cu.resident with
      | Some wg -> wg
      | None -> fail "workgroup %d not resident on CU %d" wg_id cu.cu_id
    in
    (* main event loop *)
    let pending_inject = ref inject in
    let events_popped = ref 0 and heap_depth_max = ref 0 in
    while not (Event_heap.is_empty heap) do
      let t, cu_id = Event_heap.pop heap in
      incr events_popped;
      let depth = Event_heap.length heap in
      if depth > !heap_depth_max then heap_depth_max := depth;
      (match max_cycles with
      | Some limit when t > limit -> raise (Watchdog_timeout t)
      | _ -> ());
      (match !pending_inject with
      | Some (at, f) when t >= at ->
          pending_inject := None;
          let resident =
            Array.concat
              (Array.to_list
                 (Array.map
                    (fun cu -> Array.of_list (wavefronts_of cu))
                    cus))
          in
          f { p_now = t; p_wavefronts = resident; p_cache = cache; p_mem = mem };
          (* injected state may have made an idle CU runnable again (a
             revived lane): re-arm every CU; stale events are harmless *)
          Array.iter schedule cus
      | _ -> ());
      let cu = cus.(cu_id) in
      match candidate_time cu with
      | None -> () (* stale: nothing runnable on this CU anymore *)
      | Some t' when t' > t -> Event_heap.push heap t' cu.cu_id
      | Some _ -> (
          match pick_wavefront cu t with
          | None ->
              (* candidate_time guarantees a ready wavefront exists *)
              fail "scheduler inconsistency on CU %d at cycle %d" cu.cu_id t
          | Some wf ->
              let outcome =
                Wavefront.issue wf ~program ~mem
                  ~line_words:cfg.Config.cache.Config.line_words
              in
              stats.Stats.wf_instructions <- stats.Stats.wf_instructions + 1;
              stats.Stats.lane_instructions <-
                stats.Stats.lane_instructions + outcome.Wavefront.executed_lanes;
              if outcome.Wavefront.partial_mask then
                stats.Stats.divergent_issues <- stats.Stats.divergent_issues + 1;
              (* a division holds the CU's shared iterative divider (and
                 with it the vector pipeline) for every active lane *)
              let div_occupancy =
                if outcome.Wavefront.used_div then
                  outcome.Wavefront.executed_lanes * cfg.Config.div_latency
                else 0
              in
              cu.vu_free <-
                t + beats + div_occupancy + cfg.Config.issue_overhead;
              stats.Stats.vu_busy_cycles <-
                stats.Stats.vu_busy_cycles + beats + div_occupancy;
              let completion = ref (t + beats + div_occupancy) in
              if outcome.Wavefront.mem_lines <> [] then begin
                if outcome.Wavefront.mem_is_store then
                  stats.Stats.stores <- stats.Stats.stores + 1
                else stats.Stats.loads <- stats.Stats.loads + 1;
                List.iter
                  (fun line_addr ->
                    let c =
                      Cache.access cache ~now:(t + beats) ~addr:line_addr
                        ~write:outcome.Wavefront.mem_is_store
                    in
                    if c > !completion then completion := c)
                  outcome.Wavefront.mem_lines
              end;
              if outcome.Wavefront.used_mul then
                completion := !completion + cfg.Config.mul_latency;
              if outcome.Wavefront.taken_branch then
                completion := !completion + cfg.Config.branch_penalty;
              wf.Wavefront.ready_at <- !completion;
              if !completion > stats.Stats.cycles then
                stats.Stats.cycles <- !completion;
              let wg = find_wg cu wf.Wavefront.wg_id in
              if outcome.Wavefront.hit_barrier then begin
                stats.Stats.barriers <- stats.Stats.barriers + 1;
                wf.Wavefront.at_barrier <- true;
                wg.barrier_waiting <- wg.barrier_waiting + 1;
                let active =
                  Array.fold_left
                    (fun n w -> if Wavefront.finished w then n else n + 1)
                    0 wg.wavefronts
                in
                if wg.barrier_waiting >= active then
                  release_barrier cu wg ~now:!completion
              end;
              if outcome.Wavefront.retired then begin
                wg.finished_wfs <- wg.finished_wfs + 1;
                if wg.finished_wfs = Array.length wg.wavefronts then begin
                  stats.Stats.workgroups <- stats.Stats.workgroups + 1;
                  cu.resident <-
                    List.filter (fun w -> w.wg_id <> wg.wg_id) cu.resident;
                  cu.resident_items <- cu.resident_items - wg.items;
                  ignore (dispatch_one cu ~now:!completion : bool)
                end
              end;
              schedule cu)
    done;
    if !next_wg < num_wgs then
      fail "deadlock: %d workgroups never dispatched" (num_wgs - !next_wg);
    (* a healthy run retires every wavefront before the heap drains; a
       corrupted one (e.g. a fault-injected lane lost before a barrier)
       can quiesce with work still resident - report it instead of
       returning a silently partial result *)
    let stuck =
      Array.fold_left
        (fun n cu ->
          List.fold_left
            (fun n wf -> if Wavefront.finished wf then n else n + 1)
            n (wavefronts_of cu))
        0 cus
    in
    if stuck > 0 then fail "deadlock: %d wavefronts never retired" stuck;
    if Ggpu_obs.Metrics.ambient_enabled () then begin
      let wall_ns = max 1 (Ggpu_obs.Metrics.now_ns () - t0_ns) in
      Ggpu_obs.Metrics.count "sim.fgpu.runs" 1;
      Ggpu_obs.Metrics.count "sim.fgpu.cycles" stats.Stats.cycles;
      Ggpu_obs.Metrics.count "sim.fgpu.wf_instructions"
        stats.Stats.wf_instructions;
      Ggpu_obs.Metrics.count "sim.fgpu.wall_ns" wall_ns;
      Ggpu_obs.Metrics.count "sim.fgpu.events" !events_popped;
      Ggpu_obs.Metrics.record_gauge "sim.fgpu.heap_depth" !heap_depth_max;
      Ggpu_obs.Metrics.record_gauge "sim.fgpu.kcycles_per_s"
        (stats.Stats.cycles * 1_000_000 / wall_ns)
    end;
    stats
  end
