(* G-GPU top level: workgroup dispatch and discrete-event execution.

   Each compute unit owns a vector pipeline that is occupied for
   [wavefront_size / pes] beats per issued wavefront-instruction (8
   beats for the FGPU's 64-item wavefronts on 8 PEs).  Up to 512
   work-items are resident per CU; ready wavefronts are issued
   round-robin, hiding memory latency exactly as the FGPU's wavefront
   scheduler does.  Memory instructions coalesce into cache-line requests
   against the shared multi-port cache ({!Cache}), which is where
   multi-CU contention - the paper's 8-CU saturation effect - arises.

   The simulation is event-driven: every issue computes its completion
   time analytically, so no per-cycle loop is needed and multi-million
   cycle runs complete in seconds.

   Scheduler structures are flat and allocation-free on the hot path:
   each CU keeps its resident wavefronts in a fixed array (paired with
   the owning workgroup, compacted in order on retirement, so slot order
   equals the old resident-list traversal order), and its earliest
   possible issue time is cached and invalidated only on the mutations
   that can change it (issue, dispatch, barrier release, retirement,
   fault injection).  Popping a stale heap entry therefore costs one
   cached comparison instead of a rebuild-and-scan of the resident set.
   The event order, and with it every counter in {!Stats}, is identical
   to the original list-based scheduler: the cache is only read when
   valid, and a valid cache means no mutation happened since it was
   computed, so a recomputation would return the same value. *)

type workgroup = {
  wg_id : int;
  wavefronts : Wavefront.t array;
  mutable barrier_waiting : int;
  mutable finished_wfs : int;
  items : int; (* resident work-item slots the workgroup occupies *)
}

let no_candidate = max_int

type cu = {
  cu_id : int;
  mutable vu_free : int; (* vector unit next free cycle *)
  wf_slots : Wavefront.t array; (* resident wavefronts, dispatch order *)
  wg_slots : workgroup array; (* owning workgroup, parallel to wf_slots *)
  mutable n_wfs : int; (* live prefix of the slot arrays *)
  mutable resident_items : int;
  mutable rr : int; (* round-robin cursor over resident wavefronts *)
  mutable cand : int; (* cached earliest issue time; [no_candidate] if idle *)
  mutable cand_valid : bool;
}

exception Launch_error of string
exception Watchdog_timeout of int

let fail fmt = Printf.ksprintf (fun s -> raise (Launch_error s)) fmt

(* Snapshot of the architectural state handed to a fault injector:
   every wavefront currently resident (CU-major, workgroup order), the
   cache tag/dirty arrays behind [cache], and global memory (native-int
   words, {!Ggpu_isa.I32} canonical). *)
type probe = {
  p_now : int;
  p_wavefronts : Wavefront.t array;
  p_cache : Cache.t;
  p_mem : int array;
}

let runnable wf = (not (Wavefront.finished wf)) && not wf.Wavefront.at_barrier

(* Earliest cycle at which [cu] could issue ([no_candidate] when no
   wavefront is ready), recomputed only when a mutation invalidated the
   cached value. *)
let candidate_time cu =
  if cu.cand_valid then cu.cand
  else begin
    let best = ref no_candidate in
    for i = 0 to cu.n_wfs - 1 do
      let wf = cu.wf_slots.(i) in
      if runnable wf && wf.Wavefront.ready_at < !best then
        best := wf.Wavefront.ready_at
    done;
    let c = if !best = no_candidate then no_candidate else max cu.vu_free !best in
    cu.cand <- c;
    cu.cand_valid <- true;
    c
  end

let invalidate cu = cu.cand_valid <- false

let run ?max_cycles ?inject ?pmu (cfg : Config.t) ~program ~params ~global_size
    ~local_size ~mem =
  Ggpu_obs.Trace.with_span "fgpu.run"
    ~args:
      [
        ("cus", string_of_int cfg.Config.num_cus);
        ("global_size", string_of_int global_size);
      ]
  @@ fun () ->
  let t0_ns = Ggpu_obs.Metrics.now_ns () in
  let cfg = Config.validate cfg in
  if global_size < 0 then fail "negative global size";
  if local_size <= 0 then fail "non-positive local size";
  if local_size > cfg.Config.max_workitems_per_cu then
    fail "local size %d exceeds CU capacity %d" local_size
      cfg.Config.max_workitems_per_cu;
  if Array.length program = 0 then fail "empty program";
  let stats = Stats.create () in
  if global_size = 0 then stats
  else begin
    let dprog = Ggpu_isa.Fgpu_predecode.of_program program in
    let cache = Cache.create cfg ~stats in
    let beats = Config.beats cfg in
    (* The PMU is a pure observer: [pmu_on] gates every touch of the
       collector, so a bare run pays one load-and-branch per issue and
       an instrumented run is bit-identical (nothing here feeds back
       into timing or stats).  [pmu_c] exists so the instrumented
       branch needs no option unwrap; the dummy is never written. *)
    let pmu_on = pmu <> None in
    let pmu_c =
      match pmu with
      | Some p ->
          if Ggpu_pmu.Pmu.num_cus p <> cfg.Config.num_cus then
            fail "PMU collector sized for %d CUs, config has %d"
              (Ggpu_pmu.Pmu.num_cus p) cfg.Config.num_cus;
          p
      | None -> Ggpu_pmu.Pmu.create ~num_cus:1 ~prog_len:0 ()
    in
    let wf_size = cfg.Config.wavefront_size in
    let num_wgs = (global_size + local_size - 1) / local_size in
    let wfs_per_wg = Config.wavefronts_per_workgroup cfg ~local_size in
    (* the simulator's working copy of global memory: unboxed native
       ints, copied back into the caller's [int32 array] on every exit
       path so partial results survive watchdogs and faults *)
    let imem = Array.map Ggpu_isa.I32.of_int32 mem in
    let copy_back () =
      for i = 0 to Array.length mem - 1 do
        mem.(i) <- Ggpu_isa.I32.to_int32 imem.(i)
      done
    in
    Fun.protect ~finally:copy_back @@ fun () ->
    let make_wg wg_id =
      let wavefronts =
        Array.init wfs_per_wg (fun wf_index ->
            Wavefront.create ~wg_id ~wf_index ~size:wf_size
              ~wg_offset:(wg_id * local_size)
              ~wg_size:(min local_size (global_size - (wg_id * local_size)))
              ~global_size ~params)
      in
      {
        wg_id;
        wavefronts;
        barrier_waiting = 0;
        finished_wfs = 0;
        items = wfs_per_wg * wf_size;
      }
    in
    let dummy_wg =
      { wg_id = -1; wavefronts = [||]; barrier_waiting = 0; finished_wfs = 0; items = 0 }
    in
    let dummy_wf =
      Wavefront.create ~wg_id:(-1) ~wf_index:0 ~size:1 ~wg_offset:0 ~wg_size:0
        ~global_size:0 ~params:[]
    in
    let slot_capacity =
      max wfs_per_wg (cfg.Config.max_workitems_per_cu / wf_size)
    in
    let cus =
      Array.init cfg.Config.num_cus (fun cu_id ->
          {
            cu_id;
            vu_free = 0;
            wf_slots = Array.make slot_capacity dummy_wf;
            wg_slots = Array.make slot_capacity dummy_wg;
            n_wfs = 0;
            resident_items = 0;
            rr = 0;
            cand = no_candidate;
            cand_valid = false;
          })
    in
    let heap = Event_heap.create ~dummy:(-1) in
    let schedule cu =
      let t = candidate_time cu in
      if t <> no_candidate then Event_heap.push heap t cu.cu_id
    in
    let next_wg = ref 0 in
    (* One sample of [cu]'s wavefront-occupancy track, in simulated
       cycles; emitted at the points where occupancy changes (dispatch,
       barrier entry/release, retirement). *)
    let pmu_occupancy cu ~now =
      if pmu_on && Ggpu_obs.Trace.enabled () then begin
        let active = ref 0 in
        for i = 0 to cu.n_wfs - 1 do
          if runnable cu.wf_slots.(i) then incr active
        done;
        Ggpu_pmu.Pmu.occupancy ~cu:cu.cu_id ~now ~resident:cu.n_wfs
          ~active:!active
      end
    in
    (* Hand out at most one workgroup per call, so pending workgroups
       spread round-robin over CUs instead of piling onto the first. *)
    let dispatch_one cu ~now =
      if
        !next_wg < num_wgs
        && cu.resident_items + (wfs_per_wg * wf_size)
           <= cfg.Config.max_workitems_per_cu
      then begin
        let wg = make_wg !next_wg in
        incr next_wg;
        Array.iter
          (fun wf ->
            wf.Wavefront.ready_at <- now;
            wf.Wavefront.last_cu <- cu.cu_id;
            wf.Wavefront.dispatched_at <- now;
            cu.wf_slots.(cu.n_wfs) <- wf;
            cu.wg_slots.(cu.n_wfs) <- wg;
            cu.n_wfs <- cu.n_wfs + 1)
          wg.wavefronts;
        cu.resident_items <- cu.resident_items + wg.items;
        invalidate cu;
        pmu_occupancy cu ~now;
        true
      end
      else false
    in
    (* initial dispatch, round-robin over CUs *)
    let made_progress = ref true in
    while !next_wg < num_wgs && !made_progress do
      made_progress := false;
      Array.iter
        (fun cu ->
          if dispatch_one cu ~now:0 then made_progress := true)
        cus
    done;
    if !next_wg = 0 then
      fail "workgroup of %d items does not fit any CU (capacity %d)"
        local_size cfg.Config.max_workitems_per_cu;
    Array.iter schedule cus;
    (* pick the next wavefront to issue on [cu] at time [t]; stop at the
       round-robin winner instead of scanning the rest (hot path: called
       once per issued wavefront-instruction).  Returns the slot index,
       -1 if nothing is ready. *)
    let pick_wavefront cu t =
      let n = cu.n_wfs in
      let best = ref (-1) in
      let k = ref 0 in
      while !best < 0 && !k < n do
        let idx = (cu.rr + !k) mod n in
        let wf = cu.wf_slots.(idx) in
        if runnable wf && wf.Wavefront.ready_at <= t then begin
          best := idx;
          cu.rr <- (cu.rr + !k + 1) mod n
        end;
        incr k
      done;
      !best
    in
    let release_barrier cu wg ~now =
      Array.iter
        (fun wf ->
          if wf.Wavefront.at_barrier then begin
            wf.Wavefront.at_barrier <- false;
            wf.Wavefront.ready_at <- max wf.Wavefront.ready_at now
          end)
        wg.wavefronts;
      wg.barrier_waiting <- 0;
      invalidate cu
    in
    (* drop a fully-retired workgroup, preserving the slot order of the
       survivors (the round-robin cursor is deliberately left alone,
       exactly as the old list filter left it) *)
    let remove_wg cu wg =
      let j = ref 0 in
      for i = 0 to cu.n_wfs - 1 do
        if cu.wg_slots.(i).wg_id <> wg.wg_id then begin
          cu.wf_slots.(!j) <- cu.wf_slots.(i);
          cu.wg_slots.(!j) <- cu.wg_slots.(i);
          incr j
        end
      done;
      for i = !j to cu.n_wfs - 1 do
        cu.wf_slots.(i) <- dummy_wf;
        cu.wg_slots.(i) <- dummy_wg
      done;
      cu.n_wfs <- !j;
      cu.resident_items <- cu.resident_items - wg.items;
      invalidate cu
    in
    let out = Wavefront.make_outcome ~max_lanes:wf_size in
    (* main event loop *)
    let pending_inject = ref inject in
    let events_popped = ref 0 and heap_depth_max = ref 0 in
    while not (Event_heap.is_empty heap) do
      let t, cu_id = Event_heap.pop heap in
      incr events_popped;
      let depth = Event_heap.length heap in
      if depth > !heap_depth_max then heap_depth_max := depth;
      (match max_cycles with
      | Some limit when t > limit -> raise (Watchdog_timeout t)
      | _ -> ());
      (match !pending_inject with
      | Some (at, f) when t >= at ->
          pending_inject := None;
          let resident =
            Array.concat
              (Array.to_list
                 (Array.map (fun cu -> Array.sub cu.wf_slots 0 cu.n_wfs) cus))
          in
          (* converged wavefronts keep [pcs] stale; make it real before
             the injector reads or rewrites per-lane state *)
          Array.iter Wavefront.materialize_pcs resident;
          f { p_now = t; p_wavefronts = resident; p_cache = cache; p_mem = imem };
          (* injected state may have made an idle CU runnable again (a
             revived lane): re-arm every CU; stale events are harmless *)
          Array.iter invalidate cus;
          Array.iter schedule cus
      | _ -> ());
      let cu = cus.(cu_id) in
      let cand = candidate_time cu in
      if cand = no_candidate then () (* stale: nothing runnable here anymore *)
      else if cand > t then Event_heap.push heap cand cu.cu_id
      else begin
        let idx = pick_wavefront cu t in
        if idx < 0 then
          (* candidate_time guarantees a ready wavefront exists *)
          fail "scheduler inconsistency on CU %d at cycle %d" cu.cu_id t;
        let wf = cu.wf_slots.(idx) in
        let wg = cu.wg_slots.(idx) in
        Wavefront.issue wf ~dprog ~mem:imem
          ~line_words:cfg.Config.cache.Config.line_words out;
        stats.Stats.wf_instructions <- stats.Stats.wf_instructions + 1;
        stats.Stats.lane_instructions <-
          stats.Stats.lane_instructions + out.Wavefront.executed_lanes;
        if out.Wavefront.partial_mask then
          stats.Stats.divergent_issues <- stats.Stats.divergent_issues + 1;
        (* a division holds the CU's shared iterative divider (and with
           it the vector pipeline) for every active lane *)
        let div_occupancy =
          if out.Wavefront.used_div then
            out.Wavefront.executed_lanes * cfg.Config.div_latency
          else 0
        in
        cu.vu_free <- t + beats + div_occupancy + cfg.Config.issue_overhead;
        stats.Stats.vu_busy_cycles <-
          stats.Stats.vu_busy_cycles + beats + div_occupancy;
        let completion = ref (t + beats + div_occupancy) in
        if out.Wavefront.mem_line_count > 0 then begin
          if out.Wavefront.mem_is_store then
            stats.Stats.stores <- stats.Stats.stores + 1
          else stats.Stats.loads <- stats.Stats.loads + 1;
          (* newest-first, matching the consed list the old issue path
             handed to the (stateful, order-sensitive) port arbiter *)
          for i = out.Wavefront.mem_line_count - 1 downto 0 do
            let c =
              Cache.access cache ~now:(t + beats)
                ~addr:out.Wavefront.mem_lines.(i)
                ~write:out.Wavefront.mem_is_store
            in
            if c > !completion then completion := c
          done
        end;
        if out.Wavefront.used_mul then
          completion := !completion + cfg.Config.mul_latency;
        if out.Wavefront.taken_branch then
          completion := !completion + cfg.Config.branch_penalty;
        wf.Wavefront.ready_at <- !completion;
        if !completion > stats.Stats.cycles then
          stats.Stats.cycles <- !completion;
        if out.Wavefront.hit_barrier then begin
          stats.Stats.barriers <- stats.Stats.barriers + 1;
          wf.Wavefront.at_barrier <- true;
          wg.barrier_waiting <- wg.barrier_waiting + 1;
          let active =
            Array.fold_left
              (fun n w -> if Wavefront.finished w then n else n + 1)
              0 wg.wavefronts
          in
          if wg.barrier_waiting >= active then
            release_barrier cu wg ~now:!completion;
          pmu_occupancy cu ~now:!completion
        end;
        if out.Wavefront.retired then begin
          wg.finished_wfs <- wg.finished_wfs + 1;
          if wg.finished_wfs = Array.length wg.wavefronts then begin
            stats.Stats.workgroups <- stats.Stats.workgroups + 1;
            remove_wg cu wg;
            ignore (dispatch_one cu ~now:!completion : bool);
            pmu_occupancy cu ~now:!completion
          end
        end;
        if pmu_on then begin
          (* Close the CU's timeline up to this issue: the idle gap is
             charged to whatever the issuing wavefront was waiting on,
             the busy slice to (divergent) issue.  Then classify what
             this issue's completion waits on, for the next gap. *)
          Ggpu_pmu.Pmu.on_issue pmu_c ~cu:cu.cu_id ~now:t
            ~busy:(beats + div_occupancy + cfg.Config.issue_overhead)
            ~pc:out.Wavefront.pc ~divergent:out.Wavefront.partial_mask
            ~stall:wf.Wavefront.stall_kind;
          wf.Wavefront.stall_kind <-
            (if out.Wavefront.hit_barrier then Ggpu_pmu.Pmu.sk_barrier
             else if out.Wavefront.mem_line_count > 0 then
               Ggpu_pmu.Pmu.sk_of_mem_class (Cache.take_access_class cache)
             else Ggpu_pmu.Pmu.sk_latency);
          if out.Wavefront.retired then
            Ggpu_pmu.Pmu.wf_span ~cu:cu.cu_id ~wg:wf.Wavefront.wg_id
              ~wf:wf.Wavefront.wf_index
              ~dispatched:wf.Wavefront.dispatched_at ~retired:!completion
        end;
        invalidate cu;
        schedule cu
      end
    done;
    if !next_wg < num_wgs then
      fail "deadlock: %d workgroups never dispatched" (num_wgs - !next_wg);
    (* a healthy run retires every wavefront before the heap drains; a
       corrupted one (e.g. a fault-injected lane lost before a barrier)
       can quiesce with work still resident - report it instead of
       returning a silently partial result *)
    let stuck =
      Array.fold_left
        (fun n cu ->
          let n = ref n in
          for i = 0 to cu.n_wfs - 1 do
            if not (Wavefront.finished cu.wf_slots.(i)) then incr n
          done;
          !n)
        0 cus
    in
    if stuck > 0 then fail "deadlock: %d wavefronts never retired" stuck;
    if pmu_on then Ggpu_pmu.Pmu.finalize pmu_c ~cycles:stats.Stats.cycles;
    if Ggpu_obs.Metrics.ambient_enabled () then begin
      let wall_ns = max 1 (Ggpu_obs.Metrics.now_ns () - t0_ns) in
      Ggpu_obs.Metrics.count "sim.fgpu.runs" 1;
      Ggpu_obs.Metrics.count "sim.fgpu.cycles" stats.Stats.cycles;
      Ggpu_obs.Metrics.count "sim.fgpu.wf_instructions"
        stats.Stats.wf_instructions;
      Ggpu_obs.Metrics.count "sim.fgpu.wall_ns" wall_ns;
      Ggpu_obs.Metrics.count "sim.fgpu.events" !events_popped;
      Ggpu_obs.Metrics.record_gauge "sim.fgpu.heap_depth" !heap_depth_max;
      Ggpu_obs.Metrics.record_gauge "sim.fgpu.kcycles_per_s"
        (stats.Stats.cycles * 1_000_000 / wall_ns)
    end;
    stats
  end
