(* Minimal binary min-heap of (time, payload) pairs, used by the
   discrete-event scheduler.  Entries may be stale; the scheduler
   revalidates on pop. *)

type 'a t = {
  mutable times : int array;
  mutable payloads : 'a array;
  mutable size : int;
  dummy : 'a;
}

let create ~dummy = { times = Array.make 16 0; payloads = Array.make 16 dummy; size = 0; dummy }

let is_empty t = t.size = 0
let length t = t.size

(* Drop every entry (capacity is kept), overwriting payload slots with
   the dummy so discarded payloads don't keep their referents alive. *)
let clear t =
  Array.fill t.payloads 0 t.size t.dummy;
  t.size <- 0

let grow t =
  let cap = Array.length t.times in
  if t.size = cap then begin
    let times = Array.make (cap * 2) 0 in
    let payloads = Array.make (cap * 2) t.dummy in
    Array.blit t.times 0 times 0 cap;
    Array.blit t.payloads 0 payloads 0 cap;
    t.times <- times;
    t.payloads <- payloads
  end

let swap t i j =
  let ti = t.times.(i) and pi = t.payloads.(i) in
  t.times.(i) <- t.times.(j);
  t.payloads.(i) <- t.payloads.(j);
  t.times.(j) <- ti;
  t.payloads.(j) <- pi

let push t time payload =
  grow t;
  let i = ref t.size in
  t.times.(!i) <- time;
  t.payloads.(!i) <- payload;
  t.size <- t.size + 1;
  while !i > 0 && t.times.((!i - 1) / 2) > t.times.(!i) do
    swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

exception Empty

let pop t =
  if t.size = 0 then raise Empty;
  let time = t.times.(0) and payload = t.payloads.(0) in
  t.size <- t.size - 1;
  t.times.(0) <- t.times.(t.size);
  t.payloads.(0) <- t.payloads.(t.size);
  t.payloads.(t.size) <- t.dummy;
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && t.times.(l) < t.times.(!smallest) then smallest := l;
    if r < t.size && t.times.(r) < t.times.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      swap t !i !smallest;
      i := !smallest
    end
    else continue := false
  done;
  (time, payload)
