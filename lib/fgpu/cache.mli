(** Timing model of the central data cache and its AXI data movers:
    direct-mapped, write-back, write-allocate, multi-port, as the paper
    describes FGPU's cache. Models timing and traffic only; data lives
    in the global memory array. Completion times are computed
    analytically so the GPU runs as a discrete-event simulation. *)

type t

val create : Config.t -> stats:Stats.t -> t
val line_of_addr : t -> addr:int -> int

(** {2 Introspection} — architectural-state view for fault injection. *)

val num_lines : t -> int
val line_words : t -> int

val tag : t -> int -> int
(** Stored tag of cache index [i]; [-1] when the line is invalid. *)

val set_tag : t -> int -> int -> unit
(** Overwrite the tag of index [i] (models an SEU in the tag array:
    subsequent accesses may miss spuriously or alias-hit). *)

val line_addr : t -> int -> int
(** Base byte address of the line cached at index [i] (meaningless when
    the line is invalid). *)

val access : t -> now:int -> addr:int -> write:bool -> int
(** One coalesced line access starting no earlier than [now]; returns
    the completion cycle. Updates tags, port/AXI occupancy and [stats].
    [now] must be non-decreasing across calls (guaranteed by the
    event-ordered scheduler). *)

val take_access_class : t -> int
(** Worst access class recorded since the previous call, then reset:
    0 = every line hit, 1 = a line missed, 2 = a miss also queued
    behind a busy AXI data port.  The PMU reads this after each
    wavefront memory instruction to split stall attribution; purely
    observational, never affects timing. *)
