(* Timing model of the central data cache and its AXI data movers.

   The cache is direct-mapped, write-back, write-allocate and multi-port,
   exactly the organisation the paper describes for FGPU.  It models
   timing and traffic only: data functionally lives in the global memory
   array (the simulated kernels are data-race-free across work-items, so
   the visible values are unaffected by fill/evict ordering).

   Each coalesced line request occupies one cache port slot (one request
   per port per cycle); a miss additionally occupies an AXI data port for
   the duration of the line transfer (plus another transfer when a dirty
   victim is written back).  Completion times are computed analytically,
   which lets the G-GPU simulator run as a discrete-event simulation
   rather than a per-cycle loop. *)

type t = {
  line_words : int;
  num_lines : int;
  tags : int array; (* -1 = invalid *)
  dirty : bool array;
  ports : int array; (* per cache port: next free cycle *)
  axi_ports : int array; (* per AXI data port: next free cycle *)
  hit_latency : int;
  axi_latency : int;
  line_beats : int; (* cycles to move one line over one AXI port *)
  stats : Stats.t;
  mutable acc_class : int;
      (* worst access class since the last [take_access_class]:
         0 = all lines hit, 1 = a line missed, 2 = a miss also queued
         behind a busy AXI port.  Pure observation for the PMU; the
         hit path never writes it. *)
}

let create (cfg : Config.t) ~stats =
  let line_bytes = cfg.Config.cache.Config.line_words * 4 in
  let num_lines = max 1 (cfg.Config.cache.Config.size_bytes / line_bytes) in
  {
    line_words = cfg.Config.cache.Config.line_words;
    num_lines;
    tags = Array.make num_lines (-1);
    dirty = Array.make num_lines false;
    ports = Array.make cfg.Config.cache.Config.ports 0;
    axi_ports = Array.make cfg.Config.axi.Config.data_ports 0;
    hit_latency = cfg.Config.cache.Config.hit_latency;
    axi_latency = cfg.Config.axi.Config.latency;
    line_beats =
      (cfg.Config.cache.Config.line_words
      + cfg.Config.axi.Config.words_per_beat - 1)
      / cfg.Config.axi.Config.words_per_beat;
    stats;
    acc_class = 0;
  }

let take_access_class t =
  let c = t.acc_class in
  t.acc_class <- 0;
  c

let line_of_addr t ~addr = addr / 4 / t.line_words

(* Introspection for fault injection. *)
let num_lines t = t.num_lines
let line_words t = t.line_words
let tag t i = t.tags.(i)
let set_tag t i v = t.tags.(i) <- v
let line_addr t i = (t.tags.(i) * t.num_lines + i) * t.line_words * 4

(* Earliest-free resource arbitration: pick the slot that frees first,
   start no earlier than [now], occupy it for [busy] cycles. *)
let acquire (slots : int array) ~now ~busy =
  let best = ref 0 in
  for i = 1 to Array.length slots - 1 do
    if slots.(i) < slots.(!best) then best := i
  done;
  let start = max now slots.(!best) in
  slots.(!best) <- start + busy;
  start

(* One coalesced line access.  Returns the completion cycle. *)
let access t ~now ~addr ~write =
  t.stats.Stats.line_requests <- t.stats.Stats.line_requests + 1;
  let start = acquire t.ports ~now ~busy:1 in
  let line = line_of_addr t ~addr in
  let index = line mod t.num_lines in
  let tag = line / t.num_lines in
  if t.tags.(index) = tag then begin
    t.stats.Stats.cache_hits <- t.stats.Stats.cache_hits + 1;
    if write then t.dirty.(index) <- true;
    start + t.hit_latency
  end
  else begin
    t.stats.Stats.cache_misses <- t.stats.Stats.cache_misses + 1;
    let victim_beats =
      if t.tags.(index) >= 0 && t.dirty.(index) then begin
        t.stats.Stats.evictions <- t.stats.Stats.evictions + 1;
        t.stats.Stats.axi_words <- t.stats.Stats.axi_words + t.line_words;
        t.line_beats
      end
      else 0
    in
    t.stats.Stats.axi_words <- t.stats.Stats.axi_words + t.line_words;
    let axi_start =
      acquire t.axi_ports ~now:start ~busy:(victim_beats + t.line_beats)
    in
    if axi_start > start then t.acc_class <- 2
    else if t.acc_class = 0 then t.acc_class <- 1;
    t.tags.(index) <- tag;
    t.dirty.(index) <- write;
    axi_start + victim_beats + t.axi_latency + t.line_beats + t.hit_latency
  end
