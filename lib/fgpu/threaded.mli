(** Threaded-code backend: the predecoded program compiled once per
    launch into per-pc closures (one dense, one sparse, mirroring the
    convergence split of {!Wavefront.issue}), so the hot loop executes
    straight-line compiled lane loops with all operand offsets,
    immediates and branch targets captured at compile time.

    Behaviourally interchangeable with the interpreting path: for any
    wavefront state, {!issue} leaves the wavefront, the outcome record
    and global memory exactly as {!Wavefront.issue} would — including
    fault messages and memory-check ordering.  Enforced by the golden
    cycle table and the differential property tests. *)

type t

val compile :
  Ggpu_isa.Fgpu_predecode.t array ->
  wf_size:int ->
  mem:int array ->
  line_words:int ->
  t
(** Compile a predecoded program for one launch.  The closures capture
    [mem] and the launch geometry, so a compiled program is only valid
    for the run it was compiled for.  Cost is linear in program length
    (a few closure allocations per instruction) — negligible next to
    any simulation. *)

val issue : t -> Wavefront.t -> Wavefront.outcome -> unit
(** Drop-in replacement for {!Wavefront.issue} (same prologue, same
    outcome contract).  @raise Wavefront.Fault on bad addresses or a
    wild pc, with the interpreter's exact messages. *)
