(* Wavefront state and lane-level execution.

   A wavefront is 64 work-items executing in lockstep on 8 processing
   elements over 8 beats.  Full thread divergence is supported with a
   minimum-PC policy: each issue selects the smallest program counter
   among live lanes and executes it for exactly the lanes sitting at that
   PC.  Divergent lane groups therefore serialise (as in any SIMT
   machine) and naturally reconverge at control-flow join points, because
   all compiler-emitted joins are at larger addresses than the paths that
   reach them.

   Register semantics mirror {!Ggpu_riscv.Cpu} (RISC-V M division corner
   cases) so the GPU, the CPU and the reference interpreter agree
   bit-for-bit. *)

open Ggpu_isa

let done_pc = max_int

type t = {
  wg_id : int;
  wf_index : int; (* index of this wavefront inside its workgroup *)
  size : int; (* lanes *)
  wg_offset : int; (* global id of the workgroup's first item *)
  wg_size : int;
  global_size : int;
  pcs : int array; (* per lane; [done_pc] when retired *)
  regs : int32 array; (* 32 registers x size lanes, lane-major *)
  mutable live_lanes : int;
  mutable ready_at : int; (* cycle at which the next issue may happen *)
  mutable at_barrier : bool;
  mutable last_cu : int; (* CU this wavefront runs on *)
}

(* What an issue did, so the scheduler can cost it. *)
type issue_outcome = {
  executed_lanes : int;
  partial_mask : bool;
  mem_lines : int list; (* coalesced line base addresses (bytes) *)
  mem_is_store : bool;
  used_div : bool;
  used_mul : bool;
  taken_branch : bool;
  hit_barrier : bool;
  retired : bool; (* whole wavefront finished *)
}

let create ~wg_id ~wf_index ~size ~wg_offset ~wg_size ~global_size
    ~(params : int32 list) =
  let first_lid = wf_index * size in
  let pcs =
    Array.init size (fun lane ->
        let lid = first_lid + lane in
        (* lanes past the workgroup or the global range never run *)
        if lid >= wg_size || wg_offset + lid >= global_size then done_pc else 0)
  in
  let live = Array.fold_left (fun n pc -> if pc = done_pc then n else n + 1) 0 pcs in
  let regs = Array.make (32 * size) 0l in
  List.iteri
    (fun i v ->
      let r = i + 1 in
      for lane = 0 to size - 1 do
        regs.((lane * 32) + r) <- v
      done)
    params;
  {
    wg_id;
    wf_index;
    size;
    wg_offset;
    wg_size;
    global_size;
    pcs;
    regs;
    live_lanes = live;
    ready_at = 0;
    at_barrier = false;
    last_cu = -1;
  }

let finished t = t.live_lanes = 0

(* Overwrite a lane's program counter from outside the issue path (used
   by fault injection).  [live_lanes] is a cached count of lanes whose
   pc is not [done_pc]; recompute it so the scheduler's finished/barrier
   accounting stays consistent with the mutated pc array. *)
let set_pc t ~lane pc =
  t.pcs.(lane) <- pc;
  t.live_lanes <-
    Array.fold_left (fun n p -> if p = done_pc then n else n + 1) 0 t.pcs

let min_pc t =
  let best = ref done_pc in
  Array.iter (fun pc -> if pc < !best then best := pc) t.pcs;
  !best

let reg t ~lane r = if r = 0 then 0l else t.regs.((lane * 32) + r)

let set_reg t ~lane r v = if r <> 0 then t.regs.((lane * 32) + r) <- v

let local_id t ~lane = (t.wf_index * t.size) + lane

(* RISC-V M semantics, shared with the CPU model. *)
let div_signed a b =
  if b = 0l then -1l
  else if a = Int32.min_int && b = -1l then Int32.min_int
  else Int32.div a b

let rem_signed a b =
  if b = 0l then a
  else if a = Int32.min_int && b = -1l then 0l
  else Int32.rem a b

let u32_lt a b = Int32.unsigned_compare a b < 0

let alu op a b =
  match op with
  | Fgpu_isa.Add -> Int32.add a b
  | Fgpu_isa.Sub -> Int32.sub a b
  | Fgpu_isa.Mul -> Int32.mul a b
  | Fgpu_isa.Div -> div_signed a b
  | Fgpu_isa.Rem -> rem_signed a b
  | Fgpu_isa.And -> Int32.logand a b
  | Fgpu_isa.Or -> Int32.logor a b
  | Fgpu_isa.Xor -> Int32.logxor a b
  | Fgpu_isa.Sll -> Int32.shift_left a (Int32.to_int b land 31)
  | Fgpu_isa.Srl -> Int32.shift_right_logical a (Int32.to_int b land 31)
  | Fgpu_isa.Sra -> Int32.shift_right a (Int32.to_int b land 31)
  | Fgpu_isa.Slt -> if Int32.compare a b < 0 then 1l else 0l
  | Fgpu_isa.Sltu -> if u32_lt a b then 1l else 0l

let cond_holds c a b =
  match c with
  | Fgpu_isa.Eq -> a = b
  | Fgpu_isa.Ne -> a <> b
  | Fgpu_isa.Lt -> Int32.compare a b < 0
  | Fgpu_isa.Ge -> Int32.compare a b >= 0
  | Fgpu_isa.Ltu -> u32_lt a b
  | Fgpu_isa.Geu -> not (u32_lt a b)

exception Fault of string

let fault fmt = Printf.ksprintf (fun s -> raise (Fault s)) fmt

(* Execute one instruction for all lanes at the minimum PC.  Global
   memory is read/written immediately through [mem]; the returned line
   list carries the timing cost to the scheduler. *)
let issue t ~(program : Fgpu_isa.t array) ~(mem : int32 array) ~line_words :
    issue_outcome =
  assert (not (finished t));
  let pc = min_pc t in
  if pc < 0 || pc >= Array.length program then fault "pc %d outside program" pc;
  let insn = program.(pc) in
  let executed = ref 0 in
  let lines = ref [] in
  let add_line addr =
    let base = addr / (line_words * 4) * (line_words * 4) in
    if not (List.mem base !lines) then lines := base :: !lines
  in
  let mem_word addr =
    if addr land 3 <> 0 then fault "misaligned access 0x%x" addr;
    let w = addr lsr 2 in
    if w < 0 || w >= Array.length mem then fault "address 0x%x out of memory" addr;
    w
  in
  let taken = ref false in
  let hit_barrier = ref false in
  let used_div = ref false in
  let used_mul = ref false in
  let is_store = Fgpu_isa.is_store insn in
  let live_before = t.live_lanes in
  for lane = 0 to t.size - 1 do
    if t.pcs.(lane) = pc then begin
      incr executed;
      let rr = reg t ~lane and wr = set_reg t ~lane in
      let next = ref (pc + 1) in
      (match insn with
      | Fgpu_isa.Alu (op, rd, rs1, rs2) ->
          (match op with
          | Fgpu_isa.Div | Fgpu_isa.Rem -> used_div := true
          | Fgpu_isa.Mul -> used_mul := true
          | _ -> ());
          wr rd (alu op (rr rs1) (rr rs2))
      | Fgpu_isa.Alui (op, rd, rs1, imm) ->
          (match op with
          | Fgpu_isa.Div | Fgpu_isa.Rem -> used_div := true
          | Fgpu_isa.Mul -> used_mul := true
          | _ -> ());
          wr rd (alu op (rr rs1) imm)
      | Fgpu_isa.Lui (rd, imm) -> wr rd (Int32.shift_left imm 16)
      | Fgpu_isa.Li (rd, imm) -> wr rd imm
      | Fgpu_isa.Lw (rd, rs1, off) ->
          let addr = Int32.to_int (rr rs1) + off in
          add_line addr;
          wr rd mem.(mem_word addr)
      | Fgpu_isa.Sw (rs2, rs1, off) ->
          let addr = Int32.to_int (rr rs1) + off in
          add_line addr;
          mem.(mem_word addr) <- rr rs2
      | Fgpu_isa.Branch (c, rs1, rs2, off) ->
          if cond_holds c (rr rs1) (rr rs2) then begin
            taken := true;
            next := pc + 1 + off
          end
      | Fgpu_isa.Jump target ->
          taken := true;
          next := target
      | Fgpu_isa.Special (sp, rd) ->
          let v =
            match sp with
            | Fgpu_isa.Lid -> local_id t ~lane
            | Fgpu_isa.Wgid -> t.wg_id
            | Fgpu_isa.Wgoff -> t.wg_offset
            | Fgpu_isa.Wgsize -> t.wg_size
            | Fgpu_isa.Gsize -> t.global_size
          in
          wr rd (Int32.of_int v)
      | Fgpu_isa.Barrier -> hit_barrier := true
      | Fgpu_isa.Ret ->
          next := done_pc;
          t.live_lanes <- t.live_lanes - 1);
      t.pcs.(lane) <- !next
    end
  done;
  {
    executed_lanes = !executed;
    partial_mask = !executed < live_before;
    mem_lines = !lines;
    mem_is_store = is_store;
    used_div = !used_div;
    used_mul = !used_mul;
    taken_branch = !taken;
    hit_barrier = !hit_barrier;
    retired = finished t;
  }
