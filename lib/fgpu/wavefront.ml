(* Wavefront state and lane-level execution.

   A wavefront is 64 work-items executing in lockstep on 8 processing
   elements over 8 beats.  Full thread divergence is supported with a
   minimum-PC policy: each issue selects the smallest program counter
   among live lanes and executes it for exactly the lanes sitting at that
   PC.  Divergent lane groups therefore serialise (as in any SIMT
   machine) and naturally reconverge at control-flow join points, because
   all compiler-emitted joins are at larger addresses than the paths that
   reach them.

   Register semantics mirror {!Ggpu_riscv.Cpu} (RISC-V M division corner
   cases) so the GPU, the CPU and the reference interpreter agree
   bit-for-bit.  Registers and global memory are [int array]s in the
   canonical sign-extended representation of {!Ggpu_isa.I32}: an [int32
   array] stores one boxed cell per element, which would cost an
   allocation per register write — the old hot path's dominant cost.

   The register file is register-major: register [r] of lane [l] lives
   at [r * size + l], so one instruction's operand slices are three
   contiguous 64-word runs instead of 64 strided touches across a 16 KiB
   lane-major block.  Two extra tricks remove every per-lane branch from
   the ALU loops:

   - slice 0 (register x0) is never written, so reads of x0 fall out of
     the same indexed load as any other register and return 0 without a
     [rs = 0] test;

   - slice 32 is a write sink: an instruction with [rd = 0] redirects
     its (architecturally discarded) result there, so the store needs no
     [rd <> 0] test either.  The sink is scratch — external readers go
     through {!reg}, which answers 0 for x0 directly.

   [issue] consumes the predecoded program ({!Ggpu_isa.Fgpu_predecode})
   and writes into a caller-owned [outcome] scratch record, so a
   multi-million-instruction run allocates nothing per issue.  Two more
   devices keep the per-lane cost at a handful of machine instructions:

   - the instruction is discriminated once per lane group, with the hot
     operators (the compiler does not inline through a 13-way match
     without flambda) given dedicated lane loops;

   - convergence is tracked incrementally in [conv_pc].  When every lane
     sits at the same pc — the overwhelmingly common state for
     data-parallel kernels — the issue path knows it without scanning
     [pcs], executes a dense loop with no per-lane pc check, and leaves
     [pcs] stale, advancing only [conv_pc].  The array is materialised
     on the rare paths that read it directly (divergence, retirement,
     fault-injection probes).  A mixed-outcome branch writes real pcs
     and drops to the sparse path; the sparse scan re-detects
     reconvergence for free while computing the minimum pc. *)

open Ggpu_isa

let done_pc = max_int

(* Register-file geometry: 32 architectural slices plus the x0 write
   sink at slice 32. *)
let num_reg_slices = 33
let sink_reg = 32

type t = {
  wg_id : int;
  wf_index : int; (* index of this wavefront inside its workgroup *)
  size : int; (* lanes *)
  wg_offset : int; (* global id of the workgroup's first item *)
  wg_size : int;
  global_size : int;
  pcs : int array; (* per lane; [done_pc] when retired; stale while converged *)
  regs : int array;
      (* 33 slices x size lanes, register-major ([r * size + lane]);
         I32 canonical.  Slice 0 stays zero, slice 32 is the x0 sink. *)
  mutable conv_pc : int; (* every lane live at this pc; -1 = consult [pcs] *)
  mutable sel_pc : int; (* cached scan_pcs result for the sparse path *)
  mutable sel_cnt : int;
  mutable sel_valid : bool;
      (* [sel_pc]/[sel_cnt] hold scan_pcs of [pcs]; maintained by the
         threaded backend's sparse loops (which visit every lane
         anyway), invalidated by every other [pcs] writer *)
  mutable live_lanes : int;
  mutable ready_at : int; (* cycle at which the next issue may happen *)
  mutable at_barrier : bool;
  mutable last_cu : int; (* CU this wavefront runs on *)
  mutable stall_kind : int;
      (* PMU stall bucket the wavefront's next issue delay belongs to
         ({!Ggpu_pmu.Pmu} stall kind); written only on instrumented
         runs, never read by the scheduler *)
  mutable dispatched_at : int; (* cycle the wavefront's CU adopted it *)
}

(* What an issue did, so the scheduler can cost it.  One record is
   allocated per [Gpu.run] and reused across every issue; [mem_lines]
   holds the first [mem_line_count] coalesced line base addresses in
   first-touch order. *)
type outcome = {
  mutable pc : int; (* program counter the issue executed *)
  mutable executed_lanes : int;
  mutable partial_mask : bool;
  mem_lines : int array; (* coalesced line base addresses (bytes) *)
  mutable mem_line_count : int;
  mutable mem_is_store : bool;
  mutable used_div : bool;
  mutable used_mul : bool;
  mutable taken_branch : bool;
  mutable hit_barrier : bool;
  mutable retired : bool; (* whole wavefront finished *)
}

let make_outcome ~max_lanes =
  {
    pc = 0;
    executed_lanes = 0;
    partial_mask = false;
    mem_lines = Array.make (max 1 max_lanes) 0;
    mem_line_count = 0;
    mem_is_store = false;
    used_div = false;
    used_mul = false;
    taken_branch = false;
    hit_barrier = false;
    retired = false;
  }

let create ~wg_id ~wf_index ~size ~wg_offset ~wg_size ~global_size
    ~(params : int32 list) =
  let first_lid = wf_index * size in
  let pcs =
    Array.init size (fun lane ->
        let lid = first_lid + lane in
        (* lanes past the workgroup or the global range never run *)
        if lid >= wg_size || wg_offset + lid >= global_size then done_pc else 0)
  in
  let live = Array.fold_left (fun n pc -> if pc = done_pc then n else n + 1) 0 pcs in
  let regs = Array.make (num_reg_slices * size) 0 in
  List.iteri
    (fun i v ->
      let r = i + 1 and v = I32.of_int32 v in
      Array.fill regs (r * size) size v)
    params;
  {
    wg_id;
    wf_index;
    size;
    wg_offset;
    wg_size;
    global_size;
    pcs;
    regs;
    conv_pc = (if live = size then 0 else -1);
    sel_pc = 0;
    sel_cnt = 0;
    sel_valid = false;
    live_lanes = live;
    ready_at = 0;
    at_barrier = false;
    last_cu = -1;
    stall_kind = Ggpu_pmu.Pmu.sk_latency;
    dispatched_at = 0;
  }

let finished t = t.live_lanes = 0

(* Make [pcs] reflect reality before an external reader (fault
   injection, a probe) looks at it. *)
let materialize_pcs t =
  if t.conv_pc >= 0 then Array.fill t.pcs 0 t.size t.conv_pc

(* Overwrite a lane's program counter from outside the issue path (used
   by fault injection).  [live_lanes] is a cached count of lanes whose
   pc is not [done_pc]; recompute it so the scheduler's finished/barrier
   accounting stays consistent with the mutated pc array. *)
let set_pc t ~lane pc =
  materialize_pcs t;
  t.conv_pc <- -1;
  t.sel_valid <- false;
  t.pcs.(lane) <- pc;
  t.live_lanes <-
    Array.fold_left (fun n p -> if p = done_pc then n else n + 1) 0 t.pcs

let rec min_pc_from (pcs : int array) n i best =
  if i >= n then best
  else
    let p = Array.unsafe_get pcs i in
    min_pc_from pcs n (i + 1) (if p < best then p else best)

let min_pc t =
  if t.conv_pc >= 0 then t.conv_pc
  else if t.sel_valid then t.sel_pc
  else min_pc_from t.pcs t.size 0 done_pc

(* Int32 accessors for external observers (fault injection). *)
let reg t ~lane r =
  if r = 0 then 0l else I32.to_int32 t.regs.((r * t.size) + lane)

let set_reg t ~lane r v =
  if r <> 0 then t.regs.((r * t.size) + lane) <- I32.of_int32 v

let local_id t ~lane = (t.wf_index * t.size) + lane

let alu op a b =
  match op with
  | Fgpu_isa.Add -> I32.add a b
  | Fgpu_isa.Sub -> I32.sub a b
  | Fgpu_isa.Mul -> I32.mul a b
  | Fgpu_isa.Div -> I32.div_signed a b
  | Fgpu_isa.Rem -> I32.rem_signed a b
  | Fgpu_isa.And -> a land b
  | Fgpu_isa.Or -> a lor b
  | Fgpu_isa.Xor -> a lxor b
  | Fgpu_isa.Sll -> I32.sll a b
  | Fgpu_isa.Srl -> I32.srl a b
  | Fgpu_isa.Sra -> I32.sra a b
  | Fgpu_isa.Slt -> if a < b then 1 else 0
  | Fgpu_isa.Sltu -> if I32.ult a b then 1 else 0

let cond_holds c a b =
  match c with
  | Fgpu_isa.Eq -> a = b
  | Fgpu_isa.Ne -> a <> b
  | Fgpu_isa.Lt -> a < b
  | Fgpu_isa.Ge -> a >= b
  | Fgpu_isa.Ltu -> I32.ult a b
  | Fgpu_isa.Geu -> not (I32.ult a b)

exception Fault of string

let fault fmt = Printf.ksprintf (fun s -> raise (Fault s)) fmt

(* Minimum pc and the number of lanes sitting at it, in one pass.
   Tail-recursive so the accumulators live in registers. *)
let rec scan_pcs (pcs : int array) n i best cnt =
  if i >= n then (best, cnt)
  else
    let p = Array.unsafe_get pcs i in
    if p < best then scan_pcs pcs n (i + 1) p 1
    else if p = best then scan_pcs pcs n (i + 1) best (cnt + 1)
    else scan_pcs pcs n (i + 1) best cnt

(* Pick the pc the next issue executes and how many lanes sit at it.
   On the sparse path the scan re-detects reconvergence: every lane
   back at one pc flips the wavefront to the dense path.  Shared by the
   interpreting issue below and the threaded backend ({!Threaded}). *)
let select_pc t =
  if t.conv_pc >= 0 then (t.conv_pc, t.size)
  else begin
    let pc, cnt =
      if t.sel_valid then (t.sel_pc, t.sel_cnt)
      else scan_pcs t.pcs t.size 0 done_pc 0
    in
    if cnt = t.size then t.conv_pc <- pc;
    (pc, cnt)
  end

(* Has [lb] already been coalesced?  Linear scan: a wavefront touches at
   most [size] lines per issue and almost always far fewer. *)
let rec line_seen (lines : int array) n lb i =
  i < n && (Array.unsafe_get lines i = lb || line_seen lines n lb (i + 1))

(* Record the line containing [addr], then validate the word address.
   The order matters: the timing model charges the coalesced request
   even when the access itself faults (matching the original issue
   path, where [add_line] ran before the bounds check). *)
let[@inline] coalesce_and_check (out : outcome) ~line_bytes ~mem_words addr =
  let lb = addr / line_bytes * line_bytes in
  let n = out.mem_line_count in
  if not (line_seen out.mem_lines n lb 0) then begin
    out.mem_lines.(n) <- lb;
    out.mem_line_count <- n + 1
  end;
  if addr land 3 <> 0 then fault "misaligned access 0x%x" addr;
  let w = addr lsr 2 in
  if w >= mem_words then fault "address 0x%x out of memory" addr;
  w

(* Destination slice offset: an [rd = 0] result is architecturally
   discarded, so it lands in the sink slice and the lane loop needs no
   conditional. *)
let[@inline] dst_off ~size rd = (if rd = 0 then sink_reg else rd) * size

(* Execute one instruction for all lanes at the minimum PC.  Global
   memory is read/written immediately through [mem]; the line buffer in
   [out] carries the timing cost to the scheduler. *)
let issue t ~(dprog : Fgpu_predecode.t array) ~(mem : int array) ~line_words
    (out : outcome) : unit =
  assert (not (finished t));
  let size = t.size in
  let pcs = t.pcs and regs = t.regs in
  let pc, executed = select_pc t in
  (* the interpreting path writes [pcs] without maintaining the sparse
     selection cache *)
  t.sel_valid <- false;
  if pc < 0 || pc >= Array.length dprog then fault "pc %d outside program" pc;
  let d = dprog.(pc) in
  let live_before = t.live_lanes in
  out.pc <- pc;
  out.mem_line_count <- 0;
  out.mem_is_store <- d.Fgpu_predecode.is_store;
  out.used_div <- d.Fgpu_predecode.uses_div;
  out.used_mul <- d.Fgpu_predecode.uses_mul;
  out.taken_branch <- false;
  out.hit_barrier <- false;
  out.executed_lanes <- executed;
  out.partial_mask <- executed < live_before;
  let dense = t.conv_pc >= 0 in
  (match d.Fgpu_predecode.kind with
  | Fgpu_predecode.KAlu when dense -> (
      t.conv_pc <- pc + 1;
      let od = dst_off ~size d.Fgpu_predecode.rd
      and o1 = d.Fgpu_predecode.rs1 * size
      and o2 = d.Fgpu_predecode.rs2 * size in
      match d.Fgpu_predecode.aop with
      | Fgpu_isa.Add ->
          for lane = 0 to size - 1 do
            let a = Array.unsafe_get regs (o1 + lane)
            and b = Array.unsafe_get regs (o2 + lane) in
            Array.unsafe_set regs (od + lane) (I32.sx (a + b))
          done
      | Fgpu_isa.Sub ->
          for lane = 0 to size - 1 do
            let a = Array.unsafe_get regs (o1 + lane)
            and b = Array.unsafe_get regs (o2 + lane) in
            Array.unsafe_set regs (od + lane) (I32.sx (a - b))
          done
      | Fgpu_isa.Mul ->
          for lane = 0 to size - 1 do
            let a = Array.unsafe_get regs (o1 + lane)
            and b = Array.unsafe_get regs (o2 + lane) in
            Array.unsafe_set regs (od + lane) (I32.sx (a * b))
          done
      | Fgpu_isa.And ->
          for lane = 0 to size - 1 do
            let a = Array.unsafe_get regs (o1 + lane)
            and b = Array.unsafe_get regs (o2 + lane) in
            Array.unsafe_set regs (od + lane) (a land b)
          done
      | Fgpu_isa.Or ->
          for lane = 0 to size - 1 do
            let a = Array.unsafe_get regs (o1 + lane)
            and b = Array.unsafe_get regs (o2 + lane) in
            Array.unsafe_set regs (od + lane) (a lor b)
          done
      | Fgpu_isa.Slt ->
          for lane = 0 to size - 1 do
            let a = Array.unsafe_get regs (o1 + lane)
            and b = Array.unsafe_get regs (o2 + lane) in
            Array.unsafe_set regs (od + lane) (if a < b then 1 else 0)
          done
      | Fgpu_isa.Sll ->
          for lane = 0 to size - 1 do
            let a = Array.unsafe_get regs (o1 + lane)
            and b = Array.unsafe_get regs (o2 + lane) in
            Array.unsafe_set regs (od + lane) (I32.sx (a lsl (b land 31)))
          done
      | op ->
          for lane = 0 to size - 1 do
            let a = Array.unsafe_get regs (o1 + lane)
            and b = Array.unsafe_get regs (o2 + lane) in
            Array.unsafe_set regs (od + lane) (alu op a b)
          done)
  | Fgpu_predecode.KAlu -> (
      let od = dst_off ~size d.Fgpu_predecode.rd
      and o1 = d.Fgpu_predecode.rs1 * size
      and o2 = d.Fgpu_predecode.rs2 * size in
      match d.Fgpu_predecode.aop with
      | Fgpu_isa.Add ->
          for lane = 0 to size - 1 do
            if Array.unsafe_get pcs lane = pc then begin
              let a = Array.unsafe_get regs (o1 + lane)
              and b = Array.unsafe_get regs (o2 + lane) in
              Array.unsafe_set regs (od + lane) (I32.sx (a + b));
              Array.unsafe_set pcs lane (pc + 1)
            end
          done
      | Fgpu_isa.Sub ->
          for lane = 0 to size - 1 do
            if Array.unsafe_get pcs lane = pc then begin
              let a = Array.unsafe_get regs (o1 + lane)
              and b = Array.unsafe_get regs (o2 + lane) in
              Array.unsafe_set regs (od + lane) (I32.sx (a - b));
              Array.unsafe_set pcs lane (pc + 1)
            end
          done
      | Fgpu_isa.Mul ->
          for lane = 0 to size - 1 do
            if Array.unsafe_get pcs lane = pc then begin
              let a = Array.unsafe_get regs (o1 + lane)
              and b = Array.unsafe_get regs (o2 + lane) in
              Array.unsafe_set regs (od + lane) (I32.sx (a * b));
              Array.unsafe_set pcs lane (pc + 1)
            end
          done
      | Fgpu_isa.And ->
          for lane = 0 to size - 1 do
            if Array.unsafe_get pcs lane = pc then begin
              let a = Array.unsafe_get regs (o1 + lane)
              and b = Array.unsafe_get regs (o2 + lane) in
              Array.unsafe_set regs (od + lane) (a land b);
              Array.unsafe_set pcs lane (pc + 1)
            end
          done
      | Fgpu_isa.Or ->
          for lane = 0 to size - 1 do
            if Array.unsafe_get pcs lane = pc then begin
              let a = Array.unsafe_get regs (o1 + lane)
              and b = Array.unsafe_get regs (o2 + lane) in
              Array.unsafe_set regs (od + lane) (a lor b);
              Array.unsafe_set pcs lane (pc + 1)
            end
          done
      | Fgpu_isa.Slt ->
          for lane = 0 to size - 1 do
            if Array.unsafe_get pcs lane = pc then begin
              let a = Array.unsafe_get regs (o1 + lane)
              and b = Array.unsafe_get regs (o2 + lane) in
              Array.unsafe_set regs (od + lane) (if a < b then 1 else 0);
              Array.unsafe_set pcs lane (pc + 1)
            end
          done
      | Fgpu_isa.Sll ->
          for lane = 0 to size - 1 do
            if Array.unsafe_get pcs lane = pc then begin
              let a = Array.unsafe_get regs (o1 + lane)
              and b = Array.unsafe_get regs (o2 + lane) in
              Array.unsafe_set regs (od + lane) (I32.sx (a lsl (b land 31)));
              Array.unsafe_set pcs lane (pc + 1)
            end
          done
      | op ->
          for lane = 0 to size - 1 do
            if Array.unsafe_get pcs lane = pc then begin
              let a = Array.unsafe_get regs (o1 + lane)
              and b = Array.unsafe_get regs (o2 + lane) in
              Array.unsafe_set regs (od + lane) (alu op a b);
              Array.unsafe_set pcs lane (pc + 1)
            end
          done)
  | Fgpu_predecode.KAlui when dense -> (
      t.conv_pc <- pc + 1;
      let od = dst_off ~size d.Fgpu_predecode.rd
      and o1 = d.Fgpu_predecode.rs1 * size
      and b = d.Fgpu_predecode.imm in
      match d.Fgpu_predecode.aop with
      | Fgpu_isa.Add ->
          for lane = 0 to size - 1 do
            let a = Array.unsafe_get regs (o1 + lane) in
            Array.unsafe_set regs (od + lane) (I32.sx (a + b))
          done
      | Fgpu_isa.And ->
          for lane = 0 to size - 1 do
            let a = Array.unsafe_get regs (o1 + lane) in
            Array.unsafe_set regs (od + lane) (a land b)
          done
      | Fgpu_isa.Srl ->
          for lane = 0 to size - 1 do
            let a = Array.unsafe_get regs (o1 + lane) in
            Array.unsafe_set regs (od + lane)
              (I32.sx ((a land I32.mask) lsr (b land 31)))
          done
      | Fgpu_isa.Sll ->
          for lane = 0 to size - 1 do
            let a = Array.unsafe_get regs (o1 + lane) in
            Array.unsafe_set regs (od + lane) (I32.sx (a lsl (b land 31)))
          done
      | op ->
          for lane = 0 to size - 1 do
            let a = Array.unsafe_get regs (o1 + lane) in
            Array.unsafe_set regs (od + lane) (alu op a b)
          done)
  | Fgpu_predecode.KAlui -> (
      let od = dst_off ~size d.Fgpu_predecode.rd
      and o1 = d.Fgpu_predecode.rs1 * size
      and b = d.Fgpu_predecode.imm in
      match d.Fgpu_predecode.aop with
      | Fgpu_isa.Add ->
          for lane = 0 to size - 1 do
            if Array.unsafe_get pcs lane = pc then begin
              let a = Array.unsafe_get regs (o1 + lane) in
              Array.unsafe_set regs (od + lane) (I32.sx (a + b));
              Array.unsafe_set pcs lane (pc + 1)
            end
          done
      | Fgpu_isa.And ->
          for lane = 0 to size - 1 do
            if Array.unsafe_get pcs lane = pc then begin
              let a = Array.unsafe_get regs (o1 + lane) in
              Array.unsafe_set regs (od + lane) (a land b);
              Array.unsafe_set pcs lane (pc + 1)
            end
          done
      | Fgpu_isa.Srl ->
          for lane = 0 to size - 1 do
            if Array.unsafe_get pcs lane = pc then begin
              let a = Array.unsafe_get regs (o1 + lane) in
              Array.unsafe_set regs (od + lane)
                (I32.sx ((a land I32.mask) lsr (b land 31)));
              Array.unsafe_set pcs lane (pc + 1)
            end
          done
      | Fgpu_isa.Sll ->
          for lane = 0 to size - 1 do
            if Array.unsafe_get pcs lane = pc then begin
              let a = Array.unsafe_get regs (o1 + lane) in
              Array.unsafe_set regs (od + lane) (I32.sx (a lsl (b land 31)));
              Array.unsafe_set pcs lane (pc + 1)
            end
          done
      | op ->
          for lane = 0 to size - 1 do
            if Array.unsafe_get pcs lane = pc then begin
              let a = Array.unsafe_get regs (o1 + lane) in
              Array.unsafe_set regs (od + lane) (alu op a b);
              Array.unsafe_set pcs lane (pc + 1)
            end
          done)
  | Fgpu_predecode.KLoadImm ->
      let od = dst_off ~size d.Fgpu_predecode.rd and v = d.Fgpu_predecode.imm in
      if dense then begin
        t.conv_pc <- pc + 1;
        Array.fill regs od size v
      end
      else
        for lane = 0 to size - 1 do
          if Array.unsafe_get pcs lane = pc then begin
            Array.unsafe_set regs (od + lane) v;
            Array.unsafe_set pcs lane (pc + 1)
          end
        done
  | Fgpu_predecode.KLw ->
      let od = dst_off ~size d.Fgpu_predecode.rd
      and o1 = d.Fgpu_predecode.rs1 * size
      and off = d.Fgpu_predecode.imm in
      let line_bytes = line_words * 4 in
      let mem_words = Array.length mem in
      if dense then begin
        t.conv_pc <- pc + 1;
        for lane = 0 to size - 1 do
          let addr = Array.unsafe_get regs (o1 + lane) + off in
          let w = coalesce_and_check out ~line_bytes ~mem_words addr in
          Array.unsafe_set regs (od + lane) (Array.unsafe_get mem w)
        done
      end
      else
        for lane = 0 to size - 1 do
          if Array.unsafe_get pcs lane = pc then begin
            let addr = Array.unsafe_get regs (o1 + lane) + off in
            let w = coalesce_and_check out ~line_bytes ~mem_words addr in
            Array.unsafe_set regs (od + lane) (Array.unsafe_get mem w);
            Array.unsafe_set pcs lane (pc + 1)
          end
        done
  | Fgpu_predecode.KSw ->
      (* the store-data register travels in the rd field: a read, so no
         sink redirection — x0 reads as slice 0's zeros *)
      let o2 = d.Fgpu_predecode.rd * size
      and o1 = d.Fgpu_predecode.rs1 * size
      and off = d.Fgpu_predecode.imm in
      let line_bytes = line_words * 4 in
      let mem_words = Array.length mem in
      if dense then begin
        t.conv_pc <- pc + 1;
        for lane = 0 to size - 1 do
          let addr = Array.unsafe_get regs (o1 + lane) + off in
          let w = coalesce_and_check out ~line_bytes ~mem_words addr in
          Array.unsafe_set mem w (Array.unsafe_get regs (o2 + lane))
        done
      end
      else
        for lane = 0 to size - 1 do
          if Array.unsafe_get pcs lane = pc then begin
            let addr = Array.unsafe_get regs (o1 + lane) + off in
            let w = coalesce_and_check out ~line_bytes ~mem_words addr in
            Array.unsafe_set mem w (Array.unsafe_get regs (o2 + lane));
            Array.unsafe_set pcs lane (pc + 1)
          end
        done
  | Fgpu_predecode.KBranch ->
      (* a branch always computes real per-lane pcs: a mixed outcome is
         exactly how a converged wavefront diverges.  In dense mode the
         taken count decides whether convergence survives (uniform
         outcome) or [pcs] becomes authoritative.  The second operand
         travels in the rd field (a read). *)
      let o1 = d.Fgpu_predecode.rs1 * size and o2 = d.Fgpu_predecode.rd * size in
      let target = pc + 1 + d.Fgpu_predecode.imm in
      let taken = ref 0 in
      (if dense then begin
         (match d.Fgpu_predecode.cnd with
         | Fgpu_isa.Lt ->
             for lane = 0 to size - 1 do
               let a = Array.unsafe_get regs (o1 + lane)
               and b = Array.unsafe_get regs (o2 + lane) in
               if a < b then begin
                 incr taken;
                 Array.unsafe_set pcs lane target
               end
               else Array.unsafe_set pcs lane (pc + 1)
             done
         | Fgpu_isa.Ge ->
             for lane = 0 to size - 1 do
               let a = Array.unsafe_get regs (o1 + lane)
               and b = Array.unsafe_get regs (o2 + lane) in
               if a >= b then begin
                 incr taken;
                 Array.unsafe_set pcs lane target
               end
               else Array.unsafe_set pcs lane (pc + 1)
             done
         | Fgpu_isa.Eq ->
             for lane = 0 to size - 1 do
               let a = Array.unsafe_get regs (o1 + lane)
               and b = Array.unsafe_get regs (o2 + lane) in
               if a = b then begin
                 incr taken;
                 Array.unsafe_set pcs lane target
               end
               else Array.unsafe_set pcs lane (pc + 1)
             done
         | Fgpu_isa.Ne ->
             for lane = 0 to size - 1 do
               let a = Array.unsafe_get regs (o1 + lane)
               and b = Array.unsafe_get regs (o2 + lane) in
               if a <> b then begin
                 incr taken;
                 Array.unsafe_set pcs lane target
               end
               else Array.unsafe_set pcs lane (pc + 1)
             done
         | c ->
             for lane = 0 to size - 1 do
               let a = Array.unsafe_get regs (o1 + lane)
               and b = Array.unsafe_get regs (o2 + lane) in
               if cond_holds c a b then begin
                 incr taken;
                 Array.unsafe_set pcs lane target
               end
               else Array.unsafe_set pcs lane (pc + 1)
             done);
         if !taken = 0 then t.conv_pc <- pc + 1
         else if !taken = size then t.conv_pc <- target
         else t.conv_pc <- -1
       end
       else begin
         let c = d.Fgpu_predecode.cnd in
         for lane = 0 to size - 1 do
           if Array.unsafe_get pcs lane = pc then begin
             let a = Array.unsafe_get regs (o1 + lane)
             and b = Array.unsafe_get regs (o2 + lane) in
             if cond_holds c a b then begin
               incr taken;
               Array.unsafe_set pcs lane target
             end
             else Array.unsafe_set pcs lane (pc + 1)
           end
         done
       end);
      out.taken_branch <- !taken > 0
  | Fgpu_predecode.KJump ->
      let target = d.Fgpu_predecode.imm in
      out.taken_branch <- true;
      if dense then t.conv_pc <- target
      else
        for lane = 0 to size - 1 do
          if Array.unsafe_get pcs lane = pc then
            Array.unsafe_set pcs lane target
        done
  | Fgpu_predecode.KSpecial ->
      let sp = d.Fgpu_predecode.sp in
      let od = dst_off ~size d.Fgpu_predecode.rd in
      if dense then begin
        t.conv_pc <- pc + 1;
        match sp with
        | Fgpu_isa.Lid ->
            let first = t.wf_index * size in
            for lane = 0 to size - 1 do
              Array.unsafe_set regs (od + lane) (first + lane)
            done
        | Fgpu_isa.Wgid -> Array.fill regs od size t.wg_id
        | Fgpu_isa.Wgoff -> Array.fill regs od size t.wg_offset
        | Fgpu_isa.Wgsize -> Array.fill regs od size t.wg_size
        | Fgpu_isa.Gsize -> Array.fill regs od size t.global_size
      end
      else
        for lane = 0 to size - 1 do
          if Array.unsafe_get pcs lane = pc then begin
            let v =
              match sp with
              | Fgpu_isa.Lid -> local_id t ~lane
              | Fgpu_isa.Wgid -> t.wg_id
              | Fgpu_isa.Wgoff -> t.wg_offset
              | Fgpu_isa.Wgsize -> t.wg_size
              | Fgpu_isa.Gsize -> t.global_size
            in
            Array.unsafe_set regs (od + lane) v;
            Array.unsafe_set pcs lane (pc + 1)
          end
        done
  | Fgpu_predecode.KBarrier ->
      out.hit_barrier <- true;
      if dense then t.conv_pc <- pc + 1
      else
        for lane = 0 to size - 1 do
          if Array.unsafe_get pcs lane = pc then
            Array.unsafe_set pcs lane (pc + 1)
        done
  | Fgpu_predecode.KRet ->
      if dense then begin
        (* all lanes retire together; [pcs] becomes authoritative again
           so external readers see the retired state directly *)
        Array.fill pcs 0 size done_pc;
        t.conv_pc <- -1;
        t.live_lanes <- 0
      end
      else begin
        for lane = 0 to size - 1 do
          if Array.unsafe_get pcs lane = pc then
            Array.unsafe_set pcs lane done_pc
        done;
        t.live_lanes <- t.live_lanes - executed
      end);
  out.retired <- finished t
