(** Wavefront state and lane-level execution: 64 work-items in lockstep
    on 8 processing elements, with full divergence under a minimum-PC
    policy (divergent lane groups serialise and reconverge at joins).
    Register semantics mirror {!Ggpu_riscv.Cpu} so all executors agree
    bit-for-bit.

    Registers and memory are native [int array]s holding canonical
    {!Ggpu_isa.I32} values (an [int32 array] would box every element);
    [issue] consumes the predecoded program and a reusable [outcome]
    scratch record, so the steady-state issue path allocates nothing. *)

val done_pc : int

val sink_reg : int
(** Index of the write-sink register slice that absorbs [rd = 0]
    results (slice 32, just past the architectural file). *)

type t = {
  wg_id : int;
  wf_index : int;
  size : int;
  wg_offset : int;
  wg_size : int;
  global_size : int;
  pcs : int array;
      (** per lane; [done_pc] when retired.  Stale while the wavefront
          is converged — call {!materialize_pcs} before reading *)
  regs : int array;
      (** 33 register slices x size lanes, register-major (register [r]
          of lane [l] at [r * size + l]), {!Ggpu_isa.I32} canonical.
          Slice 0 (x0) is never written so reads need no zero check;
          slice 32 is a write sink that absorbs [rd = 0] results so
          writes need no check either.  Read through {!reg} from
          outside the issue path. *)
  mutable conv_pc : int;
      (** incrementally-tracked convergence: when >= 0, every lane is
          live at this pc and [pcs] may be stale; -1 means [pcs] is
          authoritative *)
  mutable sel_pc : int;
  mutable sel_cnt : int;
  mutable sel_valid : bool;
      (** when true, [sel_pc]/[sel_cnt] cache what a scan of [pcs]
          would return ({!select_pc}'s sparse answer).  The threaded
          backend's sparse lane loops maintain the cache as they
          rewrite [pcs]; every other writer invalidates it. *)
  mutable live_lanes : int;
  mutable ready_at : int;
  mutable at_barrier : bool;
  mutable last_cu : int;
  mutable stall_kind : int;
      (** PMU stall kind ({!Ggpu_pmu.Pmu}) the next issue delay will be
          attributed to; only instrumented runs write it, the scheduler
          never reads it *)
  mutable dispatched_at : int;  (** cycle the wavefront's CU adopted it *)
}

type outcome = {
  mutable pc : int;  (** program counter the issue executed *)
  mutable executed_lanes : int;
  mutable partial_mask : bool;  (** fewer lanes than live: a divergent issue *)
  mem_lines : int array;
      (** coalesced line base addresses (bytes), first-touch order; only
          the first [mem_line_count] entries are meaningful *)
  mutable mem_line_count : int;
  mutable mem_is_store : bool;
  mutable used_div : bool;
  mutable used_mul : bool;
  mutable taken_branch : bool;
  mutable hit_barrier : bool;
  mutable retired : bool;
}

val make_outcome : max_lanes:int -> outcome
(** Scratch record for {!issue}; [max_lanes] bounds the per-issue line
    count (one wavefront touches at most one line per lane). *)

exception Fault of string

val create :
  wg_id:int ->
  wf_index:int ->
  size:int ->
  wg_offset:int ->
  wg_size:int ->
  global_size:int ->
  params:int32 list ->
  t
(** Lanes beyond the workgroup or global range start retired; [params]
    are preloaded into r1..rN of every lane. *)

val finished : t -> bool

val materialize_pcs : t -> unit
(** Make [pcs] reflect reality (fill with [conv_pc] when converged) so
    an external reader — fault injection, a probe — sees true per-lane
    state. Cheap; does not change architectural state. *)

val set_pc : t -> lane:int -> int -> unit
(** Overwrite one lane's pc from outside the issue path (fault
    injection), recounting [live_lanes] so scheduler accounting stays
    consistent. [done_pc] retires the lane; any other value revives it. *)

val min_pc : t -> int

val select_pc : t -> int * int
(** The pc the next issue executes and the number of lanes sitting at
    it, in one pass.  On the sparse path the scan re-detects
    reconvergence and flips the wavefront back to dense ([conv_pc]).
    Backend helper, shared by {!issue} and {!Threaded}. *)

val alu : Ggpu_isa.Fgpu_isa.alu_op -> int -> int -> int
(** ALU semantics on canonical {!Ggpu_isa.I32} values (RISC-V M
    division corner cases included). *)

val cond_holds : Ggpu_isa.Fgpu_isa.cond -> int -> int -> bool

val coalesce_and_check : outcome -> line_bytes:int -> mem_words:int -> int -> int
(** Record the cache line containing a byte address into the outcome's
    line buffer (first-touch order, deduplicated), then validate the
    access; returns the word index.  The line is charged before
    validation so the timing model sees the request even when the
    access faults.  @raise Fault on misaligned or out-of-range
    addresses. *)

val reg : t -> lane:int -> int -> int32
(** Architectural register read as [int32] (fault-injection interface). *)

val set_reg : t -> lane:int -> int -> int32 -> unit
val local_id : t -> lane:int -> int

val issue :
  t ->
  dprog:Ggpu_isa.Fgpu_predecode.t array ->
  mem:int array ->
  line_words:int ->
  outcome ->
  unit
(** Execute one instruction for all lanes at the minimum PC. Global
    memory is read/written immediately; timing comes from the outcome
    scratch record, overwritten in place. @raise Fault on bad addresses
    or a wild PC. *)
