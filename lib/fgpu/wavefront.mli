(** Wavefront state and lane-level execution: 64 work-items in lockstep
    on 8 processing elements, with full divergence under a minimum-PC
    policy (divergent lane groups serialise and reconverge at joins).
    Register semantics mirror {!Ggpu_riscv.Cpu} so all executors agree
    bit-for-bit. *)

val done_pc : int

type t = {
  wg_id : int;
  wf_index : int;
  size : int;
  wg_offset : int;
  wg_size : int;
  global_size : int;
  pcs : int array;  (** per lane; [done_pc] when retired *)
  regs : int32 array;  (** 32 registers x size lanes, lane-major *)
  mutable live_lanes : int;
  mutable ready_at : int;
  mutable at_barrier : bool;
  mutable last_cu : int;
}

type issue_outcome = {
  executed_lanes : int;
  partial_mask : bool;  (** fewer lanes than live: a divergent issue *)
  mem_lines : int list;  (** coalesced line base addresses (bytes) *)
  mem_is_store : bool;
  used_div : bool;
  used_mul : bool;
  taken_branch : bool;
  hit_barrier : bool;
  retired : bool;
}

exception Fault of string

val create :
  wg_id:int ->
  wf_index:int ->
  size:int ->
  wg_offset:int ->
  wg_size:int ->
  global_size:int ->
  params:int32 list ->
  t
(** Lanes beyond the workgroup or global range start retired; [params]
    are preloaded into r1..rN of every lane. *)

val finished : t -> bool

val set_pc : t -> lane:int -> int -> unit
(** Overwrite one lane's pc from outside the issue path (fault
    injection), recounting [live_lanes] so scheduler accounting stays
    consistent. [done_pc] retires the lane; any other value revives it. *)

val min_pc : t -> int
val reg : t -> lane:int -> int -> int32
val set_reg : t -> lane:int -> int -> int32 -> unit
val local_id : t -> lane:int -> int

val issue :
  t -> program:Ggpu_isa.Fgpu_isa.t array -> mem:int32 array -> line_words:int ->
  issue_outcome
(** Execute one instruction for all lanes at the minimum PC. Global
    memory is read/written immediately; timing comes from the returned
    outcome. @raise Fault on bad addresses or a wild PC. *)
