(* G-GPU execution configuration.

   Mirrors the FGPU architecture of the paper's Fig. 1: 1-8 compute
   units, each a SIMD machine of 8 processing elements executing
   64-work-item wavefronts over 8 beats; workgroups of up to 512
   work-items resident per CU; a central direct-mapped multi-port
   write-back data cache; and up to four AXI data interfaces to global
   memory. *)

type cache = {
  size_bytes : int;
  line_words : int; (* words per cache line *)
  ports : int; (* lane requests accepted per cycle (multi-port) *)
  hit_latency : int;
}

type axi = {
  data_ports : int; (* 1..4 in FGPU *)
  latency : int; (* memory round-trip, cycles *)
  words_per_beat : int; (* transfer width per port per cycle *)
}

type t = {
  num_cus : int;
  pes_per_cu : int;
  wavefront_size : int;
  max_workitems_per_cu : int; (* FGPU: 512 *)
  cache : cache;
  axi : axi;
  div_latency : int;
      (* cycles per active lane on the CU's shared iterative divider: a
         division occupies the vector pipeline for [active_lanes *
         div_latency] cycles, the reason div_int barely beats the CPU in
         the paper's Fig. 5 *)
  mul_latency : int;
  branch_penalty : int; (* extra cycles on a taken branch *)
  issue_overhead : int; (* per-instruction front-end overhead *)
}

exception Bad_config of string

let validate t =
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad_config s)) fmt in
  (* the generator's 1..8 range plus the 16/32/64 scaling grid
     (Ggpu_rtlgen.Arch_params.supported_cu_counts; duplicated here
     because ggpu_fgpu sits below ggpu_rtlgen in the library graph) *)
  if
    not (t.num_cus >= 1 && t.num_cus <= 8)
    && not (List.mem t.num_cus [ 16; 32; 64 ])
  then
    fail "num_cus %d unsupported (GPUPlanner generates 1..8, 16, 32 or 64)"
      t.num_cus;
  if t.pes_per_cu < 1 then fail "pes_per_cu < 1";
  if t.wavefront_size mod t.pes_per_cu <> 0 then
    fail "wavefront size %d not a multiple of PE count %d" t.wavefront_size
      t.pes_per_cu;
  if t.max_workitems_per_cu < t.wavefront_size then
    fail "max_workitems_per_cu below one wavefront";
  if t.cache.ports < 1 then fail "cache needs at least one port";
  if t.axi.data_ports < 1 || t.axi.data_ports > 4 then
    fail "AXI data ports %d outside 1..4" t.axi.data_ports;
  if t.cache.line_words < 1 then fail "line_words < 1";
  t

let default =
  validate
    {
      num_cus = 1;
      pes_per_cu = 8;
      wavefront_size = 64;
      max_workitems_per_cu = 512;
      cache =
        { size_bytes = 32 * 1024; line_words = 16; ports = 4; hit_latency = 4 };
      axi = { data_ports = 4; latency = 24; words_per_beat = 2 };
      div_latency = 64;
      mul_latency = 2;
      branch_penalty = 2;
      issue_overhead = 0;
    }

let with_cus t num_cus = validate { t with num_cus }

(* Order-fixed rendering of every field — simulated results are a pure
   function of (config, program, args, geometry), so this string is the
   config fragment of a sim memo-cache key.  Backend and domain fan-out
   are deliberately absent: they never change observables. *)
let canonical t =
  Printf.sprintf
    "cus=%d;pes=%d;wf=%d;maxwi=%d;c.size=%d;c.line=%d;c.ports=%d;c.hit=%d;\
     axi.ports=%d;axi.lat=%d;axi.beat=%d;div=%d;mul=%d;br=%d;iss=%d"
    t.num_cus t.pes_per_cu t.wavefront_size t.max_workitems_per_cu
    t.cache.size_bytes t.cache.line_words t.cache.ports t.cache.hit_latency
    t.axi.data_ports t.axi.latency t.axi.words_per_beat t.div_latency
    t.mul_latency t.branch_penalty t.issue_overhead

(* Wavefront occupancy of the vector pipeline per instruction. *)
let beats t = t.wavefront_size / t.pes_per_cu

let wavefronts_per_workgroup t ~local_size =
  (local_size + t.wavefront_size - 1) / t.wavefront_size

let max_workgroups_per_cu t ~local_size =
  max 1 (t.max_workitems_per_cu / max t.wavefront_size local_size)
