(* Threaded-code backend: compile a predecoded program into per-pc
   OCaml closures so the hot loop executes straight-line compiled code
   instead of dispatching on instruction tags.

   [compile] runs once per launch and turns every instruction into two
   closures — one for the dense (converged) path, one for the sparse
   (divergent) path — mirroring {!Wavefront.issue}'s convergence split.
   Each closure captures everything that is constant for the launch:
   the operand slice offsets into the register-major register file
   ([rs1 * size] etc., with [rd = 0] redirected to the write sink), the
   precomputed immediate, the branch target, and the global-memory
   array.  What the interpreting path re-derives on every issue — field
   loads from the predecode record, the destination-offset computation,
   the per-lane-group [match] on the instruction kind and operator —
   is paid exactly once at compile time.

   The lane loops themselves live in top-level functions that take
   every loop-invariant as a parameter.  A closure that ran the [for]
   loop directly would reload the captured offsets from its environment
   on every iteration: without flambda the compiler cannot hoist the
   environment projections past the register-file stores (the loads
   are not provably invariant across them), which costs three to five
   extra memory loads per lane.  With the loop split out, the closure
   projects each captured value exactly once per issue, passes them as
   arguments, and the self tail call compiles to a jump with every
   operand in a machine register.

   Per-issue outcome flags that depend only on the instruction
   (store/div/mul) live in a side table consulted by {!issue} rather
   than in the closures, keeping the closures pure lane loops.

   Equivalence contract: for any wavefront state, [issue th wf out]
   leaves the wavefront, the outcome record and global memory in
   exactly the state {!Wavefront.issue} would, including fault messages
   and the charge-line-before-validating order of memory checks.  The
   one representational liberty is already sanctioned by the wavefront
   invariants: a uniform branch outcome on the dense path updates only
   [conv_pc] and leaves [pcs] stale (the interpreting path writes real
   pcs first), which is unobservable because every external reader goes
   through {!Wavefront.materialize_pcs}. *)

open Ggpu_isa

type op = Wavefront.t -> Wavefront.outcome -> unit

type t = {
  dense : op array;
  sparse : op array;
  flags : int array;  (* bit 0 = store, bit 1 = div, bit 2 = mul *)
  prog_len : int;
}

let fault fmt = Printf.ksprintf (fun s -> raise (Wavefront.Fault s)) fmt

(* Destination slice offset with the x0 write sink, as in the
   interpreting path. *)
let dst_off ~size rd = (if rd = 0 then Wavefront.sink_reg else rd) * size

(* ------------------------------------------------------------------ *)
(* Dense lane loops: every lane executes, pcs stay stale.             *)

let rec d_add (regs : int array) o1 o2 od lane n =
  if lane < n then begin
    let a = Array.unsafe_get regs (o1 + lane)
    and b = Array.unsafe_get regs (o2 + lane) in
    Array.unsafe_set regs (od + lane) (I32.sx (a + b));
    d_add regs o1 o2 od (lane + 1) n
  end

let rec d_sub (regs : int array) o1 o2 od lane n =
  if lane < n then begin
    let a = Array.unsafe_get regs (o1 + lane)
    and b = Array.unsafe_get regs (o2 + lane) in
    Array.unsafe_set regs (od + lane) (I32.sx (a - b));
    d_sub regs o1 o2 od (lane + 1) n
  end

let rec d_mul (regs : int array) o1 o2 od lane n =
  if lane < n then begin
    let a = Array.unsafe_get regs (o1 + lane)
    and b = Array.unsafe_get regs (o2 + lane) in
    Array.unsafe_set regs (od + lane) (I32.sx (a * b));
    d_mul regs o1 o2 od (lane + 1) n
  end

let rec d_and (regs : int array) o1 o2 od lane n =
  if lane < n then begin
    let a = Array.unsafe_get regs (o1 + lane)
    and b = Array.unsafe_get regs (o2 + lane) in
    Array.unsafe_set regs (od + lane) (a land b);
    d_and regs o1 o2 od (lane + 1) n
  end

let rec d_or (regs : int array) o1 o2 od lane n =
  if lane < n then begin
    let a = Array.unsafe_get regs (o1 + lane)
    and b = Array.unsafe_get regs (o2 + lane) in
    Array.unsafe_set regs (od + lane) (a lor b);
    d_or regs o1 o2 od (lane + 1) n
  end

let rec d_slt (regs : int array) o1 o2 od lane n =
  if lane < n then begin
    let a = Array.unsafe_get regs (o1 + lane)
    and b = Array.unsafe_get regs (o2 + lane) in
    Array.unsafe_set regs (od + lane) (if a < b then 1 else 0);
    d_slt regs o1 o2 od (lane + 1) n
  end

let rec d_sll (regs : int array) o1 o2 od lane n =
  if lane < n then begin
    let a = Array.unsafe_get regs (o1 + lane)
    and b = Array.unsafe_get regs (o2 + lane) in
    Array.unsafe_set regs (od + lane) (I32.sx (a lsl (b land 31)));
    d_sll regs o1 o2 od (lane + 1) n
  end

let rec d_xor (regs : int array) o1 o2 od lane n =
  if lane < n then begin
    let a = Array.unsafe_get regs (o1 + lane)
    and b = Array.unsafe_get regs (o2 + lane) in
    Array.unsafe_set regs (od + lane) (a lxor b);
    d_xor regs o1 o2 od (lane + 1) n
  end

let rec d_gen op (regs : int array) o1 o2 od lane n =
  if lane < n then begin
    let a = Array.unsafe_get regs (o1 + lane)
    and b = Array.unsafe_get regs (o2 + lane) in
    Array.unsafe_set regs (od + lane) (Wavefront.alu op a b);
    d_gen op regs o1 o2 od (lane + 1) n
  end

(* Immediate forms: the second operand is the same constant for every
   lane. *)

let rec di_add (regs : int array) o1 b od lane n =
  if lane < n then begin
    let a = Array.unsafe_get regs (o1 + lane) in
    Array.unsafe_set regs (od + lane) (I32.sx (a + b));
    di_add regs o1 b od (lane + 1) n
  end

let rec di_and (regs : int array) o1 b od lane n =
  if lane < n then begin
    let a = Array.unsafe_get regs (o1 + lane) in
    Array.unsafe_set regs (od + lane) (a land b);
    di_and regs o1 b od (lane + 1) n
  end

let rec di_srl (regs : int array) o1 sh od lane n =
  if lane < n then begin
    let a = Array.unsafe_get regs (o1 + lane) in
    Array.unsafe_set regs (od + lane) (I32.sx ((a land I32.mask) lsr sh));
    di_srl regs o1 sh od (lane + 1) n
  end

let rec di_sll (regs : int array) o1 sh od lane n =
  if lane < n then begin
    let a = Array.unsafe_get regs (o1 + lane) in
    Array.unsafe_set regs (od + lane) (I32.sx (a lsl sh));
    di_sll regs o1 sh od (lane + 1) n
  end

let rec di_xor (regs : int array) o1 b od lane n =
  if lane < n then begin
    let a = Array.unsafe_get regs (o1 + lane) in
    Array.unsafe_set regs (od + lane) (a lxor b);
    di_xor regs o1 b od (lane + 1) n
  end

(* [bu] arrives pre-masked to unsigned 32-bit (loop-invariant). *)
let rec di_sltu (regs : int array) o1 bu od lane n =
  if lane < n then begin
    let a = Array.unsafe_get regs (o1 + lane) in
    Array.unsafe_set regs (od + lane)
      (if a land I32.mask < bu then 1 else 0);
    di_sltu regs o1 bu od (lane + 1) n
  end

let rec di_gen op (regs : int array) o1 b od lane n =
  if lane < n then begin
    let a = Array.unsafe_get regs (o1 + lane) in
    Array.unsafe_set regs (od + lane) (Wavefront.alu op a b);
    di_gen op regs o1 b od (lane + 1) n
  end

let rec d_lid (regs : int array) od first lane n =
  if lane < n then begin
    Array.unsafe_set regs (od + lane) (first + lane);
    d_lid regs od first (lane + 1) n
  end

(* Branch taken-lane counts, one comparison kind each. *)

let rec c_lt (regs : int array) o1 o2 lane n acc =
  if lane >= n then acc
  else
    c_lt regs o1 o2 (lane + 1) n
      (if Array.unsafe_get regs (o1 + lane) < Array.unsafe_get regs (o2 + lane)
       then acc + 1
       else acc)

let rec c_ge (regs : int array) o1 o2 lane n acc =
  if lane >= n then acc
  else
    c_ge regs o1 o2 (lane + 1) n
      (if
         Array.unsafe_get regs (o1 + lane) >= Array.unsafe_get regs (o2 + lane)
       then acc + 1
       else acc)

let rec c_gen c (regs : int array) o1 o2 lane n acc =
  if lane >= n then acc
  else
    c_gen c regs o1 o2 (lane + 1) n
      (if
         Wavefront.cond_holds c
           (Array.unsafe_get regs (o1 + lane))
           (Array.unsafe_get regs (o2 + lane))
       then acc + 1
       else acc)

(* Fused converged-branch pass for the equality tests: write the
   would-be per-lane pcs and count takers in one sweep.  If-style
   equality branches are mixed more often than not, so the fused form
   saves the second (write) pass; a uniform outcome just re-converges
   via [conv_pc] and the freshly written pcs go stale, which the
   wavefront invariants allow.  Lt/Ge keep the count-first two-pass
   shape: they guard loop back-edges and are uniform on every trip but
   the last, where writing pcs would be pure waste. *)

let rec b_eq (regs : int array) (pcs : int array) o1 o2 target next lane n tk =
  if lane >= n then tk
  else begin
    let ti =
      Bool.to_int
        (Array.unsafe_get regs (o1 + lane) = Array.unsafe_get regs (o2 + lane))
    in
    Array.unsafe_set pcs lane (next + ((target - next) land -ti));
    b_eq regs pcs o1 o2 target next (lane + 1) n (tk + ti)
  end

let rec b_ne (regs : int array) (pcs : int array) o1 o2 target next lane n tk =
  if lane >= n then tk
  else begin
    let ti =
      Bool.to_int
        (Array.unsafe_get regs (o1 + lane) <> Array.unsafe_get regs (o2 + lane))
    in
    Array.unsafe_set pcs lane (next + ((target - next) land -ti));
    b_ne regs pcs o1 o2 target next (lane + 1) n (tk + ti)
  end

(* Mixed branch outcome: write authoritative per-lane pcs. *)

let rec w_lt (regs : int array) (pcs : int array) o1 o2 target next lane n =
  if lane < n then begin
    Array.unsafe_set pcs lane
      (if Array.unsafe_get regs (o1 + lane) < Array.unsafe_get regs (o2 + lane)
       then target
       else next);
    w_lt regs pcs o1 o2 target next (lane + 1) n
  end

let rec w_ge (regs : int array) (pcs : int array) o1 o2 target next lane n =
  if lane < n then begin
    Array.unsafe_set pcs lane
      (if
         Array.unsafe_get regs (o1 + lane) >= Array.unsafe_get regs (o2 + lane)
       then target
       else next);
    w_ge regs pcs o1 o2 target next (lane + 1) n
  end

let rec w_gen c (regs : int array) (pcs : int array) o1 o2 target next lane n =
  if lane < n then begin
    Array.unsafe_set pcs lane
      (if
         Wavefront.cond_holds c
           (Array.unsafe_get regs (o1 + lane))
           (Array.unsafe_get regs (o2 + lane))
       then target
       else next);
    w_gen c regs pcs o1 o2 target next (lane + 1) n
  end

(* ------------------------------------------------------------------ *)
(* Sparse lane loops: only lanes sitting at [pc] execute and advance.
   Every loop visits all lanes anyway, so each also folds the min-pc /
   count-at-min of the FINAL [pcs] values into [best]/[cnt] (the exact
   [Wavefront.scan_pcs] answer) and caches it on the wavefront at the
   end: the next issue's [select_pc] and the burst check's [min_pc]
   become O(1) instead of re-scanning the lane array. *)

(* Sequential sparse loops exploit the min-pc issue policy: the issued
   pc is the minimum over live lanes, so after members advance to
   [next] = pc + 1 every other live lane sits at > pc, i.e. >= [next] —
   the new minimum is [next] unconditionally, and the loop only counts
   lanes ending at [next].  Lane membership is a ~coin-flip data-
   dependent test, so the loops are branchless: the result and the pc
   advance are mask-selected ([msk] = all-ones for members), a
   non-member store rewrites the old value.  The unconditional ALU work
   is safe — no specialized op faults, and OCaml int ops do not trap. *)
let rec s_add (wf : Wavefront.t) (regs : int array) (pcs : int array)
    (pc : int) next o1 o2 od lane n cnt =
  if lane >= n then begin
    wf.Wavefront.sel_pc <- next;
    wf.Wavefront.sel_cnt <- cnt;
    wf.Wavefront.sel_valid <- true
  end
  else begin
    let p = Array.unsafe_get pcs lane in
    let msk = -(Bool.to_int (p = pc)) in
    let a = Array.unsafe_get regs (o1 + lane)
    and b = Array.unsafe_get regs (o2 + lane) in
    let v = I32.sx (a + b) in
    let old = Array.unsafe_get regs (od + lane) in
    Array.unsafe_set regs (od + lane) (old lxor ((old lxor v) land msk));
    let p' = p lxor ((p lxor next) land msk) in
    Array.unsafe_set pcs lane p';
    s_add wf regs pcs pc next o1 o2 od (lane + 1) n (cnt + Bool.to_int (p' = next))
  end

let rec s_sub (wf : Wavefront.t) (regs : int array) (pcs : int array)
    (pc : int) next o1 o2 od lane n cnt =
  if lane >= n then begin
    wf.Wavefront.sel_pc <- next;
    wf.Wavefront.sel_cnt <- cnt;
    wf.Wavefront.sel_valid <- true
  end
  else begin
    let p = Array.unsafe_get pcs lane in
    let msk = -(Bool.to_int (p = pc)) in
    let a = Array.unsafe_get regs (o1 + lane)
    and b = Array.unsafe_get regs (o2 + lane) in
    let v = I32.sx (a - b) in
    let old = Array.unsafe_get regs (od + lane) in
    Array.unsafe_set regs (od + lane) (old lxor ((old lxor v) land msk));
    let p' = p lxor ((p lxor next) land msk) in
    Array.unsafe_set pcs lane p';
    s_sub wf regs pcs pc next o1 o2 od (lane + 1) n (cnt + Bool.to_int (p' = next))
  end

let rec s_mul (wf : Wavefront.t) (regs : int array) (pcs : int array)
    (pc : int) next o1 o2 od lane n cnt =
  if lane >= n then begin
    wf.Wavefront.sel_pc <- next;
    wf.Wavefront.sel_cnt <- cnt;
    wf.Wavefront.sel_valid <- true
  end
  else begin
    let p = Array.unsafe_get pcs lane in
    let msk = -(Bool.to_int (p = pc)) in
    let a = Array.unsafe_get regs (o1 + lane)
    and b = Array.unsafe_get regs (o2 + lane) in
    let v = I32.sx (a * b) in
    let old = Array.unsafe_get regs (od + lane) in
    Array.unsafe_set regs (od + lane) (old lxor ((old lxor v) land msk));
    let p' = p lxor ((p lxor next) land msk) in
    Array.unsafe_set pcs lane p';
    s_mul wf regs pcs pc next o1 o2 od (lane + 1) n (cnt + Bool.to_int (p' = next))
  end

let rec s_and (wf : Wavefront.t) (regs : int array) (pcs : int array)
    (pc : int) next o1 o2 od lane n cnt =
  if lane >= n then begin
    wf.Wavefront.sel_pc <- next;
    wf.Wavefront.sel_cnt <- cnt;
    wf.Wavefront.sel_valid <- true
  end
  else begin
    let p = Array.unsafe_get pcs lane in
    let msk = -(Bool.to_int (p = pc)) in
    let a = Array.unsafe_get regs (o1 + lane)
    and b = Array.unsafe_get regs (o2 + lane) in
    let v = a land b in
    let old = Array.unsafe_get regs (od + lane) in
    Array.unsafe_set regs (od + lane) (old lxor ((old lxor v) land msk));
    let p' = p lxor ((p lxor next) land msk) in
    Array.unsafe_set pcs lane p';
    s_and wf regs pcs pc next o1 o2 od (lane + 1) n (cnt + Bool.to_int (p' = next))
  end

let rec s_or (wf : Wavefront.t) (regs : int array) (pcs : int array)
    (pc : int) next o1 o2 od lane n cnt =
  if lane >= n then begin
    wf.Wavefront.sel_pc <- next;
    wf.Wavefront.sel_cnt <- cnt;
    wf.Wavefront.sel_valid <- true
  end
  else begin
    let p = Array.unsafe_get pcs lane in
    let msk = -(Bool.to_int (p = pc)) in
    let a = Array.unsafe_get regs (o1 + lane)
    and b = Array.unsafe_get regs (o2 + lane) in
    let v = a lor b in
    let old = Array.unsafe_get regs (od + lane) in
    Array.unsafe_set regs (od + lane) (old lxor ((old lxor v) land msk));
    let p' = p lxor ((p lxor next) land msk) in
    Array.unsafe_set pcs lane p';
    s_or wf regs pcs pc next o1 o2 od (lane + 1) n (cnt + Bool.to_int (p' = next))
  end

let rec s_slt (wf : Wavefront.t) (regs : int array) (pcs : int array)
    (pc : int) next o1 o2 od lane n cnt =
  if lane >= n then begin
    wf.Wavefront.sel_pc <- next;
    wf.Wavefront.sel_cnt <- cnt;
    wf.Wavefront.sel_valid <- true
  end
  else begin
    let p = Array.unsafe_get pcs lane in
    let msk = -(Bool.to_int (p = pc)) in
    let a = Array.unsafe_get regs (o1 + lane)
    and b = Array.unsafe_get regs (o2 + lane) in
    let v = Bool.to_int (a < b) in
    let old = Array.unsafe_get regs (od + lane) in
    Array.unsafe_set regs (od + lane) (old lxor ((old lxor v) land msk));
    let p' = p lxor ((p lxor next) land msk) in
    Array.unsafe_set pcs lane p';
    s_slt wf regs pcs pc next o1 o2 od (lane + 1) n (cnt + Bool.to_int (p' = next))
  end

let rec s_xor (wf : Wavefront.t) (regs : int array) (pcs : int array)
    (pc : int) next o1 o2 od lane n cnt =
  if lane >= n then begin
    wf.Wavefront.sel_pc <- next;
    wf.Wavefront.sel_cnt <- cnt;
    wf.Wavefront.sel_valid <- true
  end
  else begin
    let p = Array.unsafe_get pcs lane in
    let msk = -(Bool.to_int (p = pc)) in
    let a = Array.unsafe_get regs (o1 + lane)
    and b = Array.unsafe_get regs (o2 + lane) in
    let v = a lxor b in
    let old = Array.unsafe_get regs (od + lane) in
    Array.unsafe_set regs (od + lane) (old lxor ((old lxor v) land msk));
    let p' = p lxor ((p lxor next) land msk) in
    Array.unsafe_set pcs lane p';
    s_xor wf regs pcs pc next o1 o2 od (lane + 1) n (cnt + Bool.to_int (p' = next))
  end

let rec s_gen op (wf : Wavefront.t) (regs : int array) (pcs : int array)
    (pc : int) next o1 o2 od lane n cnt =
  if lane >= n then begin
    wf.Wavefront.sel_pc <- next;
    wf.Wavefront.sel_cnt <- cnt;
    wf.Wavefront.sel_valid <- true
  end
  else begin
    let p = Array.unsafe_get pcs lane in
    if p = pc then begin
      let a = Array.unsafe_get regs (o1 + lane)
      and b = Array.unsafe_get regs (o2 + lane) in
      Array.unsafe_set regs (od + lane) (Wavefront.alu op a b);
      Array.unsafe_set pcs lane next;
      s_gen op wf regs pcs pc next o1 o2 od (lane + 1) n (cnt + 1)
    end
    else if p = next then s_gen op wf regs pcs pc next o1 o2 od (lane + 1) n (cnt + 1)
    else s_gen op wf regs pcs pc next o1 o2 od (lane + 1) n cnt
  end

let rec si_add (wf : Wavefront.t) (regs : int array) (pcs : int array)
    (pc : int) next o1 b od lane n cnt =
  if lane >= n then begin
    wf.Wavefront.sel_pc <- next;
    wf.Wavefront.sel_cnt <- cnt;
    wf.Wavefront.sel_valid <- true
  end
  else begin
    let p = Array.unsafe_get pcs lane in
    let msk = -(Bool.to_int (p = pc)) in
    let a = Array.unsafe_get regs (o1 + lane) in
    let v = I32.sx (a + b) in
    let old = Array.unsafe_get regs (od + lane) in
    Array.unsafe_set regs (od + lane) (old lxor ((old lxor v) land msk));
    let p' = p lxor ((p lxor next) land msk) in
    Array.unsafe_set pcs lane p';
    si_add wf regs pcs pc next o1 b od (lane + 1) n (cnt + Bool.to_int (p' = next))
  end

let rec si_xor (wf : Wavefront.t) (regs : int array) (pcs : int array)
    (pc : int) next o1 b od lane n cnt =
  if lane >= n then begin
    wf.Wavefront.sel_pc <- next;
    wf.Wavefront.sel_cnt <- cnt;
    wf.Wavefront.sel_valid <- true
  end
  else begin
    let p = Array.unsafe_get pcs lane in
    let msk = -(Bool.to_int (p = pc)) in
    let a = Array.unsafe_get regs (o1 + lane) in
    let v = a lxor b in
    let old = Array.unsafe_get regs (od + lane) in
    Array.unsafe_set regs (od + lane) (old lxor ((old lxor v) land msk));
    let p' = p lxor ((p lxor next) land msk) in
    Array.unsafe_set pcs lane p';
    si_xor wf regs pcs pc next o1 b od (lane + 1) n (cnt + Bool.to_int (p' = next))
  end

(* [bu] arrives pre-masked to unsigned 32-bit (loop-invariant). *)
let rec si_sltu (wf : Wavefront.t) (regs : int array) (pcs : int array)
    (pc : int) next o1 bu od lane n cnt =
  if lane >= n then begin
    wf.Wavefront.sel_pc <- next;
    wf.Wavefront.sel_cnt <- cnt;
    wf.Wavefront.sel_valid <- true
  end
  else begin
    let p = Array.unsafe_get pcs lane in
    let msk = -(Bool.to_int (p = pc)) in
    let a = Array.unsafe_get regs (o1 + lane) in
    let v = Bool.to_int (a land I32.mask < bu) in
    let old = Array.unsafe_get regs (od + lane) in
    Array.unsafe_set regs (od + lane) (old lxor ((old lxor v) land msk));
    let p' = p lxor ((p lxor next) land msk) in
    Array.unsafe_set pcs lane p';
    si_sltu wf regs pcs pc next o1 bu od (lane + 1) n (cnt + Bool.to_int (p' = next))
  end

let rec si_gen op (wf : Wavefront.t) (regs : int array) (pcs : int array)
    (pc : int) next o1 b od lane n cnt =
  if lane >= n then begin
    wf.Wavefront.sel_pc <- next;
    wf.Wavefront.sel_cnt <- cnt;
    wf.Wavefront.sel_valid <- true
  end
  else begin
    let p = Array.unsafe_get pcs lane in
    if p = pc then begin
      let a = Array.unsafe_get regs (o1 + lane) in
      Array.unsafe_set regs (od + lane) (Wavefront.alu op a b);
      Array.unsafe_set pcs lane next;
      si_gen op wf regs pcs pc next o1 b od (lane + 1) n (cnt + 1)
    end
    else if p = next then si_gen op wf regs pcs pc next o1 b od (lane + 1) n (cnt + 1)
    else si_gen op wf regs pcs pc next o1 b od (lane + 1) n cnt
  end

(* Sparse load-immediate / special fills: store one value per lane. *)
let rec s_fill (wf : Wavefront.t) (regs : int array) (pcs : int array)
    (pc : int) next od (v : int) lane n cnt =
  if lane >= n then begin
    wf.Wavefront.sel_pc <- next;
    wf.Wavefront.sel_cnt <- cnt;
    wf.Wavefront.sel_valid <- true
  end
  else begin
    let p = Array.unsafe_get pcs lane in
    let msk = -(Bool.to_int (p = pc)) in
    let old = Array.unsafe_get regs (od + lane) in
    Array.unsafe_set regs (od + lane) (old lxor ((old lxor v) land msk));
    let p' = p lxor ((p lxor next) land msk) in
    Array.unsafe_set pcs lane p';
    s_fill wf regs pcs pc next od v (lane + 1) n (cnt + Bool.to_int (p' = next))
  end

let rec s_lid (wf : Wavefront.t) (regs : int array) (pcs : int array)
    (pc : int) next od first lane n cnt =
  if lane >= n then begin
    wf.Wavefront.sel_pc <- next;
    wf.Wavefront.sel_cnt <- cnt;
    wf.Wavefront.sel_valid <- true
  end
  else begin
    let p = Array.unsafe_get pcs lane in
    let msk = -(Bool.to_int (p = pc)) in
    let v = first + lane in
    let old = Array.unsafe_get regs (od + lane) in
    Array.unsafe_set regs (od + lane) (old lxor ((old lxor v) land msk));
    let p' = p lxor ((p lxor next) land msk) in
    Array.unsafe_set pcs lane p';
    s_lid wf regs pcs pc next od first (lane + 1) n (cnt + Bool.to_int (p' = next))
  end

(* Move every lane at [pc] to [dst] (jump, barrier, ret). *)
let rec s_retarget (wf : Wavefront.t) (pcs : int array) (pc : int)
    (dst : int) lane n best cnt =
  if lane >= n then begin
    wf.Wavefront.sel_pc <- best;
    wf.Wavefront.sel_cnt <- cnt;
    wf.Wavefront.sel_valid <- true
  end
  else begin
    let p = Array.unsafe_get pcs lane in
    let p =
      if p = pc then begin
        Array.unsafe_set pcs lane dst;
        dst
      end
      else p
    in
    if p < best then s_retarget wf pcs pc dst (lane + 1) n p 1
    else if p > best then s_retarget wf pcs pc dst (lane + 1) n best cnt
    else s_retarget wf pcs pc dst (lane + 1) n best (cnt + 1)
  end

(* Sparse branches: lanes at [pc] move to [target]/[next]; the result
   records whether any lane took the branch. *)

let rec sb_lt (wf : Wavefront.t) (regs : int array) (pcs : int array)
    (pc : int) o1 o2 target next lane n any best cnt =
  if lane >= n then begin
    wf.Wavefront.sel_pc <- best;
    wf.Wavefront.sel_cnt <- cnt;
    wf.Wavefront.sel_valid <- true;
    any
  end
  else begin
    let p = Array.unsafe_get pcs lane in
    if p = pc then
      if
        Array.unsafe_get regs (o1 + lane) < Array.unsafe_get regs (o2 + lane)
      then begin
        Array.unsafe_set pcs lane target;
        if target < best then sb_lt wf regs pcs pc o1 o2 target next (lane + 1) n true target 1
        else if target > best then sb_lt wf regs pcs pc o1 o2 target next (lane + 1) n true best cnt
        else sb_lt wf regs pcs pc o1 o2 target next (lane + 1) n true best (cnt + 1)
      end
      else begin
        Array.unsafe_set pcs lane next;
        if next < best then sb_lt wf regs pcs pc o1 o2 target next (lane + 1) n any next 1
        else if next > best then sb_lt wf regs pcs pc o1 o2 target next (lane + 1) n any best cnt
        else sb_lt wf regs pcs pc o1 o2 target next (lane + 1) n any best (cnt + 1)
      end
    else if p < best then sb_lt wf regs pcs pc o1 o2 target next (lane + 1) n any p 1
    else if p > best then sb_lt wf regs pcs pc o1 o2 target next (lane + 1) n any best cnt
    else sb_lt wf regs pcs pc o1 o2 target next (lane + 1) n any best (cnt + 1)
  end

let rec sb_ge (wf : Wavefront.t) (regs : int array) (pcs : int array)
    (pc : int) o1 o2 target next lane n any best cnt =
  if lane >= n then begin
    wf.Wavefront.sel_pc <- best;
    wf.Wavefront.sel_cnt <- cnt;
    wf.Wavefront.sel_valid <- true;
    any
  end
  else begin
    let p = Array.unsafe_get pcs lane in
    if p = pc then
      if
        Array.unsafe_get regs (o1 + lane) >= Array.unsafe_get regs (o2 + lane)
      then begin
        Array.unsafe_set pcs lane target;
        if target < best then sb_ge wf regs pcs pc o1 o2 target next (lane + 1) n true target 1
        else if target > best then sb_ge wf regs pcs pc o1 o2 target next (lane + 1) n true best cnt
        else sb_ge wf regs pcs pc o1 o2 target next (lane + 1) n true best (cnt + 1)
      end
      else begin
        Array.unsafe_set pcs lane next;
        if next < best then sb_ge wf regs pcs pc o1 o2 target next (lane + 1) n any next 1
        else if next > best then sb_ge wf regs pcs pc o1 o2 target next (lane + 1) n any best cnt
        else sb_ge wf regs pcs pc o1 o2 target next (lane + 1) n any best (cnt + 1)
      end
    else if p < best then sb_ge wf regs pcs pc o1 o2 target next (lane + 1) n any p 1
    else if p > best then sb_ge wf regs pcs pc o1 o2 target next (lane + 1) n any best cnt
    else sb_ge wf regs pcs pc o1 o2 target next (lane + 1) n any best (cnt + 1)
  end

let rec sb_eq (wf : Wavefront.t) (regs : int array) (pcs : int array)
    (pc : int) o1 o2 target next lane n any best cnt =
  if lane >= n then begin
    wf.Wavefront.sel_pc <- best;
    wf.Wavefront.sel_cnt <- cnt;
    wf.Wavefront.sel_valid <- true;
    any
  end
  else begin
    let p = Array.unsafe_get pcs lane in
    if p = pc then
      if
        Array.unsafe_get regs (o1 + lane) = Array.unsafe_get regs (o2 + lane)
      then begin
        Array.unsafe_set pcs lane target;
        if target < best then sb_eq wf regs pcs pc o1 o2 target next (lane + 1) n true target 1
        else if target > best then sb_eq wf regs pcs pc o1 o2 target next (lane + 1) n true best cnt
        else sb_eq wf regs pcs pc o1 o2 target next (lane + 1) n true best (cnt + 1)
      end
      else begin
        Array.unsafe_set pcs lane next;
        if next < best then sb_eq wf regs pcs pc o1 o2 target next (lane + 1) n any next 1
        else if next > best then sb_eq wf regs pcs pc o1 o2 target next (lane + 1) n any best cnt
        else sb_eq wf regs pcs pc o1 o2 target next (lane + 1) n any best (cnt + 1)
      end
    else if p < best then sb_eq wf regs pcs pc o1 o2 target next (lane + 1) n any p 1
    else if p > best then sb_eq wf regs pcs pc o1 o2 target next (lane + 1) n any best cnt
    else sb_eq wf regs pcs pc o1 o2 target next (lane + 1) n any best (cnt + 1)
  end

let rec sb_ne (wf : Wavefront.t) (regs : int array) (pcs : int array)
    (pc : int) o1 o2 target next lane n any best cnt =
  if lane >= n then begin
    wf.Wavefront.sel_pc <- best;
    wf.Wavefront.sel_cnt <- cnt;
    wf.Wavefront.sel_valid <- true;
    any
  end
  else begin
    let p = Array.unsafe_get pcs lane in
    if p = pc then
      if
        Array.unsafe_get regs (o1 + lane) <> Array.unsafe_get regs (o2 + lane)
      then begin
        Array.unsafe_set pcs lane target;
        if target < best then sb_ne wf regs pcs pc o1 o2 target next (lane + 1) n true target 1
        else if target > best then sb_ne wf regs pcs pc o1 o2 target next (lane + 1) n true best cnt
        else sb_ne wf regs pcs pc o1 o2 target next (lane + 1) n true best (cnt + 1)
      end
      else begin
        Array.unsafe_set pcs lane next;
        if next < best then sb_ne wf regs pcs pc o1 o2 target next (lane + 1) n any next 1
        else if next > best then sb_ne wf regs pcs pc o1 o2 target next (lane + 1) n any best cnt
        else sb_ne wf regs pcs pc o1 o2 target next (lane + 1) n any best (cnt + 1)
      end
    else if p < best then sb_ne wf regs pcs pc o1 o2 target next (lane + 1) n any p 1
    else if p > best then sb_ne wf regs pcs pc o1 o2 target next (lane + 1) n any best cnt
    else sb_ne wf regs pcs pc o1 o2 target next (lane + 1) n any best (cnt + 1)
  end

let rec sb_gen c (wf : Wavefront.t) (regs : int array) (pcs : int array)
    (pc : int) o1 o2 target next lane n any best cnt =
  if lane >= n then begin
    wf.Wavefront.sel_pc <- best;
    wf.Wavefront.sel_cnt <- cnt;
    wf.Wavefront.sel_valid <- true;
    any
  end
  else begin
    let p = Array.unsafe_get pcs lane in
    if p = pc then
      if
        Wavefront.cond_holds c
          (Array.unsafe_get regs (o1 + lane))
          (Array.unsafe_get regs (o2 + lane))
      then begin
        Array.unsafe_set pcs lane target;
        if target < best then sb_gen c wf regs pcs pc o1 o2 target next (lane + 1) n true target 1
        else if target > best then sb_gen c wf regs pcs pc o1 o2 target next (lane + 1) n true best cnt
        else sb_gen c wf regs pcs pc o1 o2 target next (lane + 1) n true best (cnt + 1)
      end
      else begin
        Array.unsafe_set pcs lane next;
        if next < best then sb_gen c wf regs pcs pc o1 o2 target next (lane + 1) n any next 1
        else if next > best then sb_gen c wf regs pcs pc o1 o2 target next (lane + 1) n any best cnt
        else sb_gen c wf regs pcs pc o1 o2 target next (lane + 1) n any best (cnt + 1)
      end
    else if p < best then sb_gen c wf regs pcs pc o1 o2 target next (lane + 1) n any p 1
    else if p > best then sb_gen c wf regs pcs pc o1 o2 target next (lane + 1) n any best cnt
    else sb_gen c wf regs pcs pc o1 o2 target next (lane + 1) n any best (cnt + 1)
  end

(* After a dense mixed branch writes per-lane pcs (every lane moves to
   [target] or [next]), the selection cache follows analytically from
   the taken-lane count. *)
let set_split_sel (wf : Wavefront.t) target next tk size =
  (if target < next then begin
     wf.Wavefront.sel_pc <- target;
     wf.Wavefront.sel_cnt <- tk
   end
   else if next < target then begin
     wf.Wavefront.sel_pc <- next;
     wf.Wavefront.sel_cnt <- size - tk
   end
   else begin
     (* a branch to its own fall-through: both sides land together *)
     wf.Wavefront.sel_pc <- next;
     wf.Wavefront.sel_cnt <- size
   end);
  wf.Wavefront.sel_valid <- true

(* ------------------------------------------------------------------ *)

let compile (dprog : Fgpu_predecode.t array) ~wf_size:size ~(mem : int array)
    ~line_words : t =
  let n = Array.length dprog in
  let line_bytes = line_words * 4 in
  let mem_words = Array.length mem in
  let noop : op = fun _ _ -> () in
  let dense = Array.make n noop in
  let sparse = Array.make n noop in
  let flags = Array.make n 0 in
  for pc = 0 to n - 1 do
    let d = dprog.(pc) in
    let next = pc + 1 in
    flags.(pc) <-
      (if d.Fgpu_predecode.is_store then 1 else 0)
      lor (if d.Fgpu_predecode.uses_div then 2 else 0)
      lor if d.Fgpu_predecode.uses_mul then 4 else 0;
    let dn, sp =
      match d.Fgpu_predecode.kind with
      | Fgpu_predecode.KAlu ->
          let od = dst_off ~size d.Fgpu_predecode.rd
          and o1 = d.Fgpu_predecode.rs1 * size
          and o2 = d.Fgpu_predecode.rs2 * size in
          let dn : op =
            match d.Fgpu_predecode.aop with
            | Fgpu_isa.Add ->
                fun wf _ ->
                  wf.Wavefront.conv_pc <- next;
                  d_add wf.Wavefront.regs o1 o2 od 0 size
            | Fgpu_isa.Sub ->
                fun wf _ ->
                  wf.Wavefront.conv_pc <- next;
                  d_sub wf.Wavefront.regs o1 o2 od 0 size
            | Fgpu_isa.Mul ->
                fun wf _ ->
                  wf.Wavefront.conv_pc <- next;
                  d_mul wf.Wavefront.regs o1 o2 od 0 size
            | Fgpu_isa.And ->
                fun wf _ ->
                  wf.Wavefront.conv_pc <- next;
                  d_and wf.Wavefront.regs o1 o2 od 0 size
            | Fgpu_isa.Or ->
                fun wf _ ->
                  wf.Wavefront.conv_pc <- next;
                  d_or wf.Wavefront.regs o1 o2 od 0 size
            | Fgpu_isa.Slt ->
                fun wf _ ->
                  wf.Wavefront.conv_pc <- next;
                  d_slt wf.Wavefront.regs o1 o2 od 0 size
            | Fgpu_isa.Sll ->
                fun wf _ ->
                  wf.Wavefront.conv_pc <- next;
                  d_sll wf.Wavefront.regs o1 o2 od 0 size
            | Fgpu_isa.Xor ->
                fun wf _ ->
                  wf.Wavefront.conv_pc <- next;
                  d_xor wf.Wavefront.regs o1 o2 od 0 size
            | op ->
                fun wf _ ->
                  wf.Wavefront.conv_pc <- next;
                  d_gen op wf.Wavefront.regs o1 o2 od 0 size
          in
          let sp : op =
            match d.Fgpu_predecode.aop with
            | Fgpu_isa.Add ->
                fun wf _ ->
                  s_add wf wf.Wavefront.regs wf.Wavefront.pcs pc next o1 o2 od 0 size
                    0
            | Fgpu_isa.Sub ->
                fun wf _ ->
                  s_sub wf wf.Wavefront.regs wf.Wavefront.pcs pc next o1 o2 od 0 size
                    0
            | Fgpu_isa.Mul ->
                fun wf _ ->
                  s_mul wf wf.Wavefront.regs wf.Wavefront.pcs pc next o1 o2 od 0 size
                    0
            | Fgpu_isa.And ->
                fun wf _ ->
                  s_and wf wf.Wavefront.regs wf.Wavefront.pcs pc next o1 o2 od 0 size
                    0
            | Fgpu_isa.Or ->
                fun wf _ ->
                  s_or wf wf.Wavefront.regs wf.Wavefront.pcs pc next o1 o2 od 0 size
                    0
            | Fgpu_isa.Slt ->
                fun wf _ ->
                  s_slt wf wf.Wavefront.regs wf.Wavefront.pcs pc next o1 o2 od 0 size
                    0
            | Fgpu_isa.Xor ->
                fun wf _ ->
                  s_xor wf wf.Wavefront.regs wf.Wavefront.pcs pc next o1 o2 od 0 size
                    0
            | op ->
                fun wf _ ->
                  s_gen op wf wf.Wavefront.regs wf.Wavefront.pcs pc next o1 o2 od 0
                    size 0
          in
          (dn, sp)
      | Fgpu_predecode.KAlui ->
          let od = dst_off ~size d.Fgpu_predecode.rd
          and o1 = d.Fgpu_predecode.rs1 * size
          and b = d.Fgpu_predecode.imm in
          let dn : op =
            match d.Fgpu_predecode.aop with
            | Fgpu_isa.Add ->
                fun wf _ ->
                  wf.Wavefront.conv_pc <- next;
                  di_add wf.Wavefront.regs o1 b od 0 size
            | Fgpu_isa.And ->
                fun wf _ ->
                  wf.Wavefront.conv_pc <- next;
                  di_and wf.Wavefront.regs o1 b od 0 size
            | Fgpu_isa.Srl ->
                let sh = b land 31 in
                fun wf _ ->
                  wf.Wavefront.conv_pc <- next;
                  di_srl wf.Wavefront.regs o1 sh od 0 size
            | Fgpu_isa.Sll ->
                let sh = b land 31 in
                fun wf _ ->
                  wf.Wavefront.conv_pc <- next;
                  di_sll wf.Wavefront.regs o1 sh od 0 size
            | Fgpu_isa.Xor ->
                fun wf _ ->
                  wf.Wavefront.conv_pc <- next;
                  di_xor wf.Wavefront.regs o1 b od 0 size
            | Fgpu_isa.Sltu ->
                let bu = b land I32.mask in
                fun wf _ ->
                  wf.Wavefront.conv_pc <- next;
                  di_sltu wf.Wavefront.regs o1 bu od 0 size
            | op ->
                fun wf _ ->
                  wf.Wavefront.conv_pc <- next;
                  di_gen op wf.Wavefront.regs o1 b od 0 size
          in
          let sp : op =
            match d.Fgpu_predecode.aop with
            | Fgpu_isa.Add ->
                fun wf _ ->
                  si_add wf wf.Wavefront.regs wf.Wavefront.pcs pc next o1 b od 0
                    size 0
            | Fgpu_isa.Xor ->
                fun wf _ ->
                  si_xor wf wf.Wavefront.regs wf.Wavefront.pcs pc next o1 b od 0
                    size 0
            | Fgpu_isa.Sltu ->
                let bu = b land I32.mask in
                fun wf _ ->
                  si_sltu wf wf.Wavefront.regs wf.Wavefront.pcs pc next o1 bu od 0
                    size 0
            | op ->
                fun wf _ ->
                  si_gen op wf wf.Wavefront.regs wf.Wavefront.pcs pc next o1 b od 0
                    size 0
          in
          (dn, sp)
      | Fgpu_predecode.KLoadImm ->
          let od = dst_off ~size d.Fgpu_predecode.rd
          and v = d.Fgpu_predecode.imm in
          let dn : op =
           fun wf _ ->
            wf.Wavefront.conv_pc <- next;
            Array.fill wf.Wavefront.regs od size v
          in
          let sp : op =
           fun wf _ ->
            s_fill wf wf.Wavefront.regs wf.Wavefront.pcs pc next od v 0
                    size 0
          in
          (dn, sp)
      | Fgpu_predecode.KLw ->
          let od = dst_off ~size d.Fgpu_predecode.rd
          and o1 = d.Fgpu_predecode.rs1 * size
          and off = d.Fgpu_predecode.imm in
          let dn : op =
           fun wf out ->
            wf.Wavefront.conv_pc <- next;
            let regs = wf.Wavefront.regs in
            for lane = 0 to size - 1 do
              let addr = Array.unsafe_get regs (o1 + lane) + off in
              let w =
                Wavefront.coalesce_and_check out ~line_bytes ~mem_words addr
              in
              Array.unsafe_set regs (od + lane) (Array.unsafe_get mem w)
            done
          in
          let sp : op =
           fun wf out ->
            wf.Wavefront.sel_valid <- false;
            let regs = wf.Wavefront.regs and pcs = wf.Wavefront.pcs in
            for lane = 0 to size - 1 do
              if Array.unsafe_get pcs lane = pc then begin
                let addr = Array.unsafe_get regs (o1 + lane) + off in
                let w =
                  Wavefront.coalesce_and_check out ~line_bytes ~mem_words addr
                in
                Array.unsafe_set regs (od + lane) (Array.unsafe_get mem w);
                Array.unsafe_set pcs lane next
              end
            done
          in
          (dn, sp)
      | Fgpu_predecode.KSw ->
          (* the store-data register travels in the rd field: a read *)
          let o2 = d.Fgpu_predecode.rd * size
          and o1 = d.Fgpu_predecode.rs1 * size
          and off = d.Fgpu_predecode.imm in
          let dn : op =
           fun wf out ->
            wf.Wavefront.conv_pc <- next;
            let regs = wf.Wavefront.regs in
            for lane = 0 to size - 1 do
              let addr = Array.unsafe_get regs (o1 + lane) + off in
              let w =
                Wavefront.coalesce_and_check out ~line_bytes ~mem_words addr
              in
              Array.unsafe_set mem w (Array.unsafe_get regs (o2 + lane))
            done
          in
          let sp : op =
           fun wf out ->
            wf.Wavefront.sel_valid <- false;
            let regs = wf.Wavefront.regs and pcs = wf.Wavefront.pcs in
            for lane = 0 to size - 1 do
              if Array.unsafe_get pcs lane = pc then begin
                let addr = Array.unsafe_get regs (o1 + lane) + off in
                let w =
                  Wavefront.coalesce_and_check out ~line_bytes ~mem_words addr
                in
                Array.unsafe_set mem w (Array.unsafe_get regs (o2 + lane));
                Array.unsafe_set pcs lane next
              end
            done
          in
          (dn, sp)
      | Fgpu_predecode.KBranch ->
          let o1 = d.Fgpu_predecode.rs1 * size
          and o2 = d.Fgpu_predecode.rd * size
          and target = pc + 1 + d.Fgpu_predecode.imm
          and c = d.Fgpu_predecode.cnd in
          (* dense: first pass only counts; real per-lane pcs are
             written only on a mixed outcome, so uniform branches —
             the common case — never touch [pcs] at all (it stays
             stale under [conv_pc], which every external reader
             materialises first) *)
          let dn : op =
            match c with
            | Fgpu_isa.Lt ->
                fun wf out ->
                  let regs = wf.Wavefront.regs in
                  let tk = c_lt regs o1 o2 0 size 0 in
                  if tk = 0 then wf.Wavefront.conv_pc <- next
                  else if tk = size then wf.Wavefront.conv_pc <- target
                  else begin
                    wf.Wavefront.conv_pc <- -1;
                    w_lt regs wf.Wavefront.pcs o1 o2 target next 0 size;
                    set_split_sel wf target next tk size
                  end;
                  out.Wavefront.taken_branch <- tk > 0
            | Fgpu_isa.Ge ->
                fun wf out ->
                  let regs = wf.Wavefront.regs in
                  let tk = c_ge regs o1 o2 0 size 0 in
                  if tk = 0 then wf.Wavefront.conv_pc <- next
                  else if tk = size then wf.Wavefront.conv_pc <- target
                  else begin
                    wf.Wavefront.conv_pc <- -1;
                    w_ge regs wf.Wavefront.pcs o1 o2 target next 0 size;
                    set_split_sel wf target next tk size
                  end;
                  out.Wavefront.taken_branch <- tk > 0
            | Fgpu_isa.Eq ->
                fun wf out ->
                  let regs = wf.Wavefront.regs in
                  let tk =
                    b_eq regs wf.Wavefront.pcs o1 o2 target next 0 size 0
                  in
                  if tk = 0 then wf.Wavefront.conv_pc <- next
                  else if tk = size then wf.Wavefront.conv_pc <- target
                  else begin
                    wf.Wavefront.conv_pc <- -1;
                    set_split_sel wf target next tk size
                  end;
                  out.Wavefront.taken_branch <- tk > 0
            | Fgpu_isa.Ne ->
                fun wf out ->
                  let regs = wf.Wavefront.regs in
                  let tk =
                    b_ne regs wf.Wavefront.pcs o1 o2 target next 0 size 0
                  in
                  if tk = 0 then wf.Wavefront.conv_pc <- next
                  else if tk = size then wf.Wavefront.conv_pc <- target
                  else begin
                    wf.Wavefront.conv_pc <- -1;
                    set_split_sel wf target next tk size
                  end;
                  out.Wavefront.taken_branch <- tk > 0
            | c ->
                fun wf out ->
                  let regs = wf.Wavefront.regs in
                  let tk = c_gen c regs o1 o2 0 size 0 in
                  if tk = 0 then wf.Wavefront.conv_pc <- next
                  else if tk = size then wf.Wavefront.conv_pc <- target
                  else begin
                    wf.Wavefront.conv_pc <- -1;
                    w_gen c regs wf.Wavefront.pcs o1 o2 target next 0 size;
                    set_split_sel wf target next tk size
                  end;
                  out.Wavefront.taken_branch <- tk > 0
          in
          let sp : op =
            match c with
            | Fgpu_isa.Lt ->
                fun wf out ->
                  out.Wavefront.taken_branch <-
                    sb_lt wf wf.Wavefront.regs wf.Wavefront.pcs pc o1 o2 target
                      next 0 size false Wavefront.done_pc 0
            | Fgpu_isa.Ge ->
                fun wf out ->
                  out.Wavefront.taken_branch <-
                    sb_ge wf wf.Wavefront.regs wf.Wavefront.pcs pc o1 o2 target
                      next 0 size false Wavefront.done_pc 0
            | Fgpu_isa.Eq ->
                fun wf out ->
                  out.Wavefront.taken_branch <-
                    sb_eq wf wf.Wavefront.regs wf.Wavefront.pcs pc o1 o2 target
                      next 0 size false Wavefront.done_pc 0
            | Fgpu_isa.Ne ->
                fun wf out ->
                  out.Wavefront.taken_branch <-
                    sb_ne wf wf.Wavefront.regs wf.Wavefront.pcs pc o1 o2 target
                      next 0 size false Wavefront.done_pc 0
            | c ->
                fun wf out ->
                  out.Wavefront.taken_branch <-
                    sb_gen c wf wf.Wavefront.regs wf.Wavefront.pcs pc o1 o2 target
                      next 0 size false Wavefront.done_pc 0
          in
          (dn, sp)
      | Fgpu_predecode.KJump ->
          let target = d.Fgpu_predecode.imm in
          let dn : op =
           fun wf out ->
            wf.Wavefront.conv_pc <- target;
            out.Wavefront.taken_branch <- true
          in
          let sp : op =
           fun wf out ->
            s_retarget wf wf.Wavefront.pcs pc target 0 size Wavefront.done_pc 0;
            out.Wavefront.taken_branch <- true
          in
          (dn, sp)
      | Fgpu_predecode.KSpecial ->
          let od = dst_off ~size d.Fgpu_predecode.rd
          and s = d.Fgpu_predecode.sp in
          let dn : op =
            match s with
            | Fgpu_isa.Lid ->
                fun wf _ ->
                  wf.Wavefront.conv_pc <- next;
                  d_lid wf.Wavefront.regs od
                    (wf.Wavefront.wf_index * size)
                    0 size
            | Fgpu_isa.Wgid ->
                fun wf _ ->
                  wf.Wavefront.conv_pc <- next;
                  Array.fill wf.Wavefront.regs od size wf.Wavefront.wg_id
            | Fgpu_isa.Wgoff ->
                fun wf _ ->
                  wf.Wavefront.conv_pc <- next;
                  Array.fill wf.Wavefront.regs od size wf.Wavefront.wg_offset
            | Fgpu_isa.Wgsize ->
                fun wf _ ->
                  wf.Wavefront.conv_pc <- next;
                  Array.fill wf.Wavefront.regs od size wf.Wavefront.wg_size
            | Fgpu_isa.Gsize ->
                fun wf _ ->
                  wf.Wavefront.conv_pc <- next;
                  Array.fill wf.Wavefront.regs od size wf.Wavefront.global_size
          in
          let sp : op =
            match s with
            | Fgpu_isa.Lid ->
                fun wf _ ->
                  s_lid wf wf.Wavefront.regs wf.Wavefront.pcs pc next od
                    (wf.Wavefront.wf_index * size)
                    0 size 0
            | Fgpu_isa.Wgid ->
                fun wf _ ->
                  s_fill wf wf.Wavefront.regs wf.Wavefront.pcs pc next od wf.Wavefront.wg_id 0
                    size 0
            | Fgpu_isa.Wgoff ->
                fun wf _ ->
                  s_fill wf wf.Wavefront.regs wf.Wavefront.pcs pc next od wf.Wavefront.wg_offset 0
                    size 0
            | Fgpu_isa.Wgsize ->
                fun wf _ ->
                  s_fill wf wf.Wavefront.regs wf.Wavefront.pcs pc next od wf.Wavefront.wg_size 0
                    size 0
            | Fgpu_isa.Gsize ->
                fun wf _ ->
                  s_fill wf wf.Wavefront.regs wf.Wavefront.pcs pc next od wf.Wavefront.global_size 0
                    size 0
          in
          (dn, sp)
      | Fgpu_predecode.KBarrier ->
          let dn : op =
           fun wf out ->
            wf.Wavefront.conv_pc <- next;
            out.Wavefront.hit_barrier <- true
          in
          let sp : op =
           fun wf out ->
            s_retarget wf wf.Wavefront.pcs pc next 0 size Wavefront.done_pc 0;
            out.Wavefront.hit_barrier <- true
          in
          (dn, sp)
      | Fgpu_predecode.KRet ->
          let dn : op =
           fun wf _ ->
            Array.fill wf.Wavefront.pcs 0 size Wavefront.done_pc;
            wf.Wavefront.conv_pc <- -1;
            wf.Wavefront.sel_pc <- Wavefront.done_pc;
            wf.Wavefront.sel_cnt <- size;
            wf.Wavefront.sel_valid <- true;
            wf.Wavefront.live_lanes <- 0
          in
          let sp : op =
           fun wf out ->
            s_retarget wf wf.Wavefront.pcs pc Wavefront.done_pc 0 size Wavefront.done_pc 0;
            wf.Wavefront.live_lanes <-
              wf.Wavefront.live_lanes - out.Wavefront.executed_lanes
          in
          (dn, sp)
    in
    dense.(pc) <- dn;
    sparse.(pc) <- sp
  done;
  { dense; sparse; flags; prog_len = n }

(* Issue prologue/epilogue shared with the interpreting path: pick the
   pc, validate it, reset the outcome record, run the compiled lane
   loop, record retirement. *)
let issue (th : t) (wf : Wavefront.t) (out : Wavefront.outcome) : unit =
  assert (not (Wavefront.finished wf));
  let pc, executed = Wavefront.select_pc wf in
  if pc < 0 || pc >= th.prog_len then fault "pc %d outside program" pc;
  let live_before = wf.Wavefront.live_lanes in
  let f = Array.unsafe_get th.flags pc in
  out.Wavefront.pc <- pc;
  out.Wavefront.mem_line_count <- 0;
  out.Wavefront.mem_is_store <- f land 1 <> 0;
  out.Wavefront.used_div <- f land 2 <> 0;
  out.Wavefront.used_mul <- f land 4 <> 0;
  out.Wavefront.taken_branch <- false;
  out.Wavefront.hit_barrier <- false;
  out.Wavefront.executed_lanes <- executed;
  out.Wavefront.partial_mask <- executed < live_before;
  (if wf.Wavefront.conv_pc >= 0 then (Array.unsafe_get th.dense pc) wf out
   else (Array.unsafe_get th.sparse pc) wf out);
  out.Wavefront.retired <- Wavefront.finished wf
