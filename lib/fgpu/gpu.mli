(** G-GPU top level: workgroup dispatch and discrete-event execution of
    a compiled kernel over a grid of work-items.

    Functional results land in [mem]; timing comes from the vector
    pipelines, the shared iterative dividers, and the central cache /
    AXI model, which is where the paper's multi-CU saturation arises. *)

exception Launch_error of string

exception Watchdog_timeout of int
(** Simulated time passed the [max_cycles] watchdog: corrupted control
    flow that would otherwise spin forever. Carries the event time. *)

type probe = {
  p_now : int;  (** event time at which the injector fired *)
  p_wavefronts : Wavefront.t array;
      (** all resident wavefronts, CU-major then workgroup order *)
  p_cache : Cache.t;
  p_mem : int array;
      (** the simulator's working copy of global memory: one native int
          per 32-bit word, {!Ggpu_isa.I32} canonical; mutations are
          copied back into the caller's [int32 array] when [run] exits *)
}
(** Architectural-state snapshot handed to a fault injector. *)

type backend =
  | Interp  (** dispatch on predecoded instruction tags per issue *)
  | Threaded
      (** per-pc closures compiled once per launch ({!Threaded}); the
          default.  Bit-identical to [Interp] in every observable —
          stats, memory, faults, PMU — just faster. *)

val backend_name : backend -> string

val backend_of_string : string -> backend option
(** Recognises ["interp"] and ["threaded"]. *)

val run :
  ?max_cycles:int ->
  ?inject:int * (probe -> unit) ->
  ?pmu:Ggpu_pmu.Pmu.t ->
  ?backend:backend ->
  ?domains:int ->
  Config.t ->
  program:Ggpu_isa.Fgpu_isa.t array ->
  params:int32 list ->
  global_size:int ->
  local_size:int ->
  mem:int32 array ->
  Stats.t
(** Execute the kernel for [global_size] work-items in workgroups of
    [local_size]. [params] are preloaded into r1..rN of every work-item
    (the code generator's convention). [mem] is global memory, mutated
    in place (including on watchdog / fault exits, so partial results
    are observable).

    [max_cycles] arms a watchdog over simulated time; [inject] is a
    [(cycle, f)] pair calling [f] once with a state snapshot at the
    first event at or after [cycle] (fault-injection hook). Neither
    perturbs the simulation by itself: a run under a high watchdog with
    no injection reproduces the exact cycle counts of a bare run.

    [pmu] attaches a {!Ggpu_pmu.Pmu} collector (sized for
    [cfg.num_cus] and the program length): per-CU per-cause cycle
    attribution, hot-PC sampling, and — when tracing is enabled —
    occupancy/lifetime timelines.  The collector is a pure observer;
    instrumented runs are bit-identical to bare ones, and a bare run
    pays one load-and-branch per issue.  [run] calls
    {!Ggpu_pmu.Pmu.finalize} before returning.

    [backend] selects the lane-execution engine (default [Threaded]);
    [domains] > 1 additionally fans the functional execution of
    workgroups out over that many {!Ggpu_par} domains, replaying the
    recorded issue streams through the sequential timing model so
    stats, memory and PMU output are bit-identical at every domain
    count.  Runs that need mid-flight state access ([inject] or
    [max_cycles]) ignore [domains] and execute in place, as does any
    split run that faults or desynchronises (racy kernels): memory is
    restored from a snapshot and the run repeats sequentially.
    @raise Launch_error on bad geometry or an empty program.
    @raise Watchdog_timeout when simulated time exceeds [max_cycles].
    @raise Wavefront.Fault on out-of-range memory accesses. *)
