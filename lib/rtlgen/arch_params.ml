(* Architectural parameters of the generated G-GPU netlist.

   The memory inventory mirrors the FGPU port to ASIC described in the
   paper: every block RAM the FPGA tools used to infer becomes an
   explicit dual-port SRAM macro.  Counts are chosen so the base
   (non-optimised) design matches the published scale of Table I - 42
   macros per compute unit plus 9 shared, i.e. 51/93/177/345 macros for
   1/2/4/8 CUs.

   Read-path depths are set so that, in the default 65 nm technology,
   the non-optimised design closes at ~500 MHz with its critical path
   launching from the register-file macro (exactly the paper's starting
   point), and successive frequency targets trigger the paper's two
   optimisations: memory division at 590 MHz, division + on-demand
   pipelining at 667 MHz.

   Structural components do not by themselves reach the published
   flip-flop/gate totals (real VHDL carries far more incidental state
   than a structural model enumerates), so each region has an explicit
   scale target and the generator emits calibrated filler banks to reach
   it; the calibration is transparent and the filler is timing-neutral. *)

type memory_component = {
  mem_name : string;
  words : int;
  bits : int;
  instances : int; (* macros of this kind per owning region *)
  read_levels : int; (* logic depth between macro output and capture FF *)
  mux_after : int; (* n-way read mux straight after the macro (0 = none) *)
}

type register_component = {
  reg_name : string;
  width : int;
  count : int; (* replicated flip-flop banks *)
  levels : int; (* depth of the logic cloud they feed *)
}

type logic_chain = {
  chain_name : string;
  chain_levels : int; (* register-to-register pure-logic depth *)
  chain_width : int;
  chain_count : int;
}

type t = {
  num_cus : int;
  cu_memories : memory_component list;
  gmc_memories : memory_component list; (* general memory controller *)
  top_memories : memory_component list;
  cu_registers : register_component list;
  gmc_registers : register_component list;
  top_registers : register_component list;
  cu_chains : logic_chain list;
  pes_per_cu : int;
  (* published-scale targets (Table I, 1 CU column) used to size filler *)
  cu_ff_target : int;
  gmc_ff_target : int;
  top_ff_target : int;
  cu_comb_target : int;
  gmc_comb_target : int;
  top_comb_target : int;
}

exception Bad_params of string

let mem ?(mux_after = 0) mem_name words bits instances read_levels =
  { mem_name; words; bits; instances; read_levels; mux_after }

let regs reg_name width count levels = { reg_name; width; count; levels }

(* The paper's generator covers 1..8 CUs; the scaling study extends the
   grid with power-of-two counts behind a shared L2/AXI contention
   model.  Every CU-count validation in the tree defers to this list so
   "supported" means one thing. *)
let supported_cu_counts = [ 1; 2; 3; 4; 5; 6; 7; 8; 16; 32; 64 ]
let cu_count_supported num_cus = List.mem num_cus supported_cu_counts

let supported_cu_counts_doc = "1..8, 16, 32 or 64"

let default ~num_cus =
  if not (cu_count_supported num_cus) then
    raise
      (Bad_params
         (Printf.sprintf "num_cus %d unsupported (expected %s)" num_cus
            supported_cu_counts_doc));
  {
    num_cus;
    cu_memories =
      [
        (* 512 work-items x 32 regs x 32 bits = 64 kB in two wide
           macros; the non-optimised critical path starts here *)
        mem "regfile" 2048 128 2 10 ~mux_after:8;
        mem "scratchpad" 1024 32 8 8;
        mem "cram" 2048 32 4 1;
        mem "divergence_stack" 256 32 4 8;
        mem "operand_collector" 512 32 16 10;
        mem "wf_context" 64 96 4 6;
        mem "mover_fifo" 256 64 4 7;
      ];
    gmc_memories =
      [
        mem "cache_data" 2048 32 4 3 ~mux_after:4;
        mem "cache_tag" 1024 24 2 12;
      ];
    top_memories = [ mem "rtm" 1024 32 2 6; mem "axi_fifo" 256 64 1 5 ];
    cu_registers =
      [
        regs "pe_stage" 32 320 4;
        regs "pe_operand" 32 192 3;
        regs "wf_scoreboard" 64 96 5;
        regs "wf_pc_table" 14 512 3;
        regs "mover_buffer" 64 256 2;
        regs "cache_if_queue" 72 96 3;
      ];
    gmc_registers =
      [ regs "gmc_req_queue" 72 64 4; regs "gmc_resp_queue" 72 48 3 ];
    top_registers = [ regs "axi_state" 64 32 3; regs "dispatch_state" 48 32 4 ];
    cu_chains =
      [
        (* wavefront scheduler priority chain: the deepest pure-logic
           path; fits 590 MHz but needs an on-demand pipeline at 667 *)
        { chain_name = "wf_sched_chain"; chain_levels = 48; chain_width = 32; chain_count = 8 };
      ];
    pes_per_cu = 8;
    cu_ff_target = 104_000;
    gmc_ff_target = 9_000;
    top_ff_target = 6_500;
    cu_comb_target = 84_000;
    gmc_comb_target = 28_000;
    top_comb_target = 16_000;
  }

let macro_count t =
  let sum memories =
    List.fold_left (fun acc m -> acc + m.instances) 0 memories
  in
  (t.num_cus * sum t.cu_memories) + sum t.gmc_memories + sum t.top_memories
