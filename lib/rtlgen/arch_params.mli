(** Architectural parameters of the generated G-GPU netlist.

    The default inventory mirrors the FGPU-to-ASIC port of the paper —
    42 SRAM macros per compute unit plus 9 shared (51/93/177/345 for
    1/2/4/8 CUs, Table I's #Memory column) — with read-path depths set
    so the base design closes at ~500 MHz and the published 590/667 MHz
    targets trigger memory division and on-demand pipelining. *)

type memory_component = {
  mem_name : string;
  words : int;
  bits : int;
  instances : int;
  read_levels : int;  (** logic depth, macro output to capture FF *)
  mux_after : int;  (** n-way read mux straight after the macro (0=none) *)
}

type register_component = {
  reg_name : string;
  width : int;
  count : int;
  levels : int;
}

type logic_chain = {
  chain_name : string;
  chain_levels : int;
  chain_width : int;
  chain_count : int;
}

type t = {
  num_cus : int;
  cu_memories : memory_component list;
  gmc_memories : memory_component list;
  top_memories : memory_component list;
  cu_registers : register_component list;
  gmc_registers : register_component list;
  top_registers : register_component list;
  cu_chains : logic_chain list;
  pes_per_cu : int;
  cu_ff_target : int;  (** published-scale filler targets (Table I) *)
  gmc_ff_target : int;
  top_ff_target : int;
  cu_comb_target : int;
  gmc_comb_target : int;
  top_comb_target : int;
}

exception Bad_params of string

val supported_cu_counts : int list
(** [1..8] (the paper's generator range) plus the 16/32/64 scaling-study
    grid.  Every CU-count validation in the tree defers to this list. *)

val cu_count_supported : int -> bool

val supported_cu_counts_doc : string
(** Human-readable rendering of {!supported_cu_counts} for error
    messages ("1..8, 16, 32 or 64"). *)

val mem :
  ?mux_after:int -> string -> int -> int -> int -> int -> memory_component

val regs : string -> int -> int -> int -> register_component

val default : num_cus:int -> t
(** @raise Bad_params outside 1..8 CUs. *)

val macro_count : t -> int
