(* G-GPU netlist elaboration.

   Produces the base (non-optimised) structural netlist for a given CU
   count: per-CU register files, scratchpads, instruction memories,
   divergence stacks, operand collectors and data movers; a general
   memory controller (GMC) with the central cache; runtime memory and
   AXI control at top level; plus the cross-partition request/response
   nets between each CU and the GMC that dominate post-layout timing in
   the 8-CU floorplan.

   Every memory component follows the same register-to-register shape:

     addr FF -> macro -> (read mux) -> read logic -> capture FF

   so the planner's static timing analysis sees realistic launch/capture
   paths, and its transforms (macro division, pipeline insertion) apply
   without special cases. *)

open Ggpu_hw

let region_cu i = Printf.sprintf "cu%d" i

(* Build a logic chain of the requested depth (in gate levels) from
   [input], returning the chain's output net.  Uses 32-bit adders,
   shifters and xors so area and depth are both realistic. *)
let build_chain nl ~region ~base ~count ~levels ~input =
  let rec go input remaining idx =
    if remaining <= 0 then input
    else begin
      let op, consumed =
        if remaining >= Op.levels Op.Add ~width:32 then
          (Op.Add, Op.levels Op.Add ~width:32)
        else if remaining >= Op.levels Op.Shl ~width:32 then
          (Op.Shl, Op.levels Op.Shl ~width:32)
        else (Op.Xor, 1)
      in
      let out =
        Netlist.add_net nl ~name:(Printf.sprintf "%s/n%d" base idx) ~width:32
      in
      let inputs =
        match op with Op.Add -> [ input; input ] | _ -> [ input ]
      in
      let _ =
        Netlist.add_cell nl
          ~name:(Printf.sprintf "%s/l%d" base idx)
          ~region ~kind:(Cell.Comb op) ~inputs ~outputs:[ out ] ~count ()
      in
      go out (remaining - consumed) (idx + 1)
    end
  in
  go input levels 0

(* A self-feeding register: FF whose next value is a function of its
   output (no combinational loop; the FF breaks it). *)
let build_counter nl ~region ~base ~width ~count =
  let d = Netlist.add_net nl ~name:(base ^ "/d") ~width in
  let q = Netlist.add_net nl ~name:(base ^ "/q") ~width in
  let _ff =
    Netlist.add_cell nl ~name:(base ^ "/ff") ~region ~kind:Cell.Dff
      ~inputs:[ d ] ~outputs:[ q ] ~count ()
  in
  let _next =
    Netlist.add_cell nl ~name:(base ^ "/next") ~region
      ~kind:(Cell.Comb Op.Add) ~inputs:[ q; q ] ~outputs:[ d ] ~count ()
  in
  q

let build_capture nl ~region ~base ~count input =
  let q =
    Netlist.add_net nl ~name:(base ^ "/capture_q") ~width:(Net.width input)
  in
  let _ff =
    Netlist.add_cell nl ~name:(base ^ "/capture") ~region ~kind:Cell.Dff
      ~inputs:[ input ] ~outputs:[ q ] ~count ()
  in
  q

(* Elaborate one memory component; returns the read-path output net
   (after the capture FF) for optional further wiring. *)
let build_memory nl ~region ~base (m : Arch_params.memory_component) =
  let spec =
    Macro_spec.make ~words:m.Arch_params.words ~bits:m.Arch_params.bits
      ~ports:Macro_spec.Dual_port
  in
  let addr =
    build_counter nl ~region ~base:(base ^ "/addr")
      ~width:(Macro_spec.address_bits spec)
      ~count:m.Arch_params.instances
  in
  let wdata =
    build_counter nl ~region ~base:(base ^ "/wdata") ~width:m.Arch_params.bits
      ~count:m.Arch_params.instances
  in
  let rdata =
    Netlist.add_net nl ~name:(base ^ "/rdata") ~width:m.Arch_params.bits
  in
  let _macro =
    Netlist.add_cell nl ~name:base ~region ~kind:(Cell.Macro spec)
      ~inputs:[ addr; wdata ] ~outputs:[ rdata ]
      ~count:m.Arch_params.instances ()
  in
  let after_mux =
    if m.Arch_params.mux_after = 0 then rdata
    else begin
      let ways = m.Arch_params.mux_after in
      let sel =
        build_counter nl ~region ~base:(base ^ "/rsel")
          ~width:(max 1 (Op.clog2 ways))
          ~count:m.Arch_params.instances
      in
      let out =
        Netlist.add_net nl ~name:(base ^ "/muxed") ~width:m.Arch_params.bits
      in
      let _mux =
        Netlist.add_cell nl ~name:(base ^ "/rmux") ~region
          ~kind:(Cell.Comb (Op.Mux ways))
          ~inputs:(sel :: List.init ways (fun _ -> rdata))
          ~outputs:[ out ] ~count:m.Arch_params.instances ()
      in
      out
    end
  in
  let chain_out =
    build_chain nl ~region ~base:(base ^ "/read")
      ~count:m.Arch_params.instances ~levels:m.Arch_params.read_levels
      ~input:after_mux
  in
  build_capture nl ~region ~base ~count:m.Arch_params.instances chain_out

(* A register component: the full state bank plus one representative
   register-to-register timing path through its logic cloud.  The bank's
   state is a self-looped flip-flop array (no multiplied gates); the
   region's gate budget is topped up by the calibrated filler instead,
   which keeps published-scale cell counts exact. *)
let build_register_bank nl ~region ~base (r : Arch_params.register_component) =
  let q = Netlist.add_net nl ~name:(base ^ "/q") ~width:r.Arch_params.width in
  ignore
    (Netlist.add_cell nl ~name:(base ^ "/bank") ~region ~kind:Cell.Dff
       ~inputs:[ q ] ~outputs:[ q ] ~count:r.Arch_params.count ());
  let rep =
    build_counter nl ~region ~base:(base ^ "/rep") ~width:r.Arch_params.width
      ~count:1
  in
  let out =
    build_chain nl ~region ~base:(base ^ "/logic") ~count:1
      ~levels:r.Arch_params.levels ~input:rep
  in
  ignore (build_capture nl ~region ~base:(base ^ "/sink") ~count:1 out)

let build_logic_chain nl ~region ~base (c : Arch_params.logic_chain) =
  let q =
    build_counter nl ~region ~base ~width:c.Arch_params.chain_width
      ~count:c.Arch_params.chain_count
  in
  let out =
    build_chain nl ~region ~base:(base ^ "/chain")
      ~count:c.Arch_params.chain_count ~levels:c.Arch_params.chain_levels
      ~input:q
  in
  ignore
    (build_capture nl ~region ~base:(base ^ "/sink")
       ~count:c.Arch_params.chain_count out)

(* A flip-flop bank looped onto itself: contributes state bits and no
   combinational gates - timing-neutral filler. *)
let build_selfloop_regs nl ~region ~base ~width ~count =
  let q = Netlist.add_net nl ~name:(base ^ "/q") ~width in
  ignore
    (Netlist.add_cell nl ~name:(base ^ "/ff") ~region ~kind:Cell.Dff
       ~inputs:[ q ] ~outputs:[ q ] ~count ())

(* Flip-flop and gate totals of every region in a single pass; folding
   the whole netlist once per region would make elaboration quadratic in
   the CU count. *)
let region_totals nl =
  let totals = Hashtbl.create 16 in
  Netlist.iter_cells nl (fun cell ->
      let region = Cell.region cell in
      let ff, comb =
        Option.value ~default:(0, 0) (Hashtbl.find_opt totals region)
      in
      Hashtbl.replace totals region
        (ff + Cell.ff_bits cell, comb + Cell.comb_gates cell));
  totals

(* Filler sized to reach the published flip-flop and gate scale of the
   region (see Arch_params): first shallow datapath cells for the gate
   deficit (their capture registers count toward state), then pure
   self-looped register banks for the remaining flip-flop deficit.
   [ff] and [comb] are the region's totals before any filling. *)
let fill_region nl ~region ~ff ~comb ~ff_target ~comb_target =
  let base = region ^ "/filler" in
  let ff = ref ff in
  if comb_target > comb then begin
    let gates = Op.gates Op.Add ~width:32 in
    let count = (comb_target - comb + gates - 1) / gates in
    let q = Netlist.add_net nl ~name:(base ^ "/anchor_q") ~width:32 in
    let anchor =
      Netlist.add_cell nl ~name:(base ^ "/anchor") ~region ~kind:Cell.Dff
        ~inputs:[ q ] ~outputs:[ q ] ()
    in
    let sum = Netlist.add_net nl ~name:(base ^ "/dp/sum") ~width:32 in
    let _ =
      Netlist.add_cell nl ~name:(base ^ "/dp/alu") ~region
        ~kind:(Cell.Comb Op.Add) ~inputs:[ q; q ] ~outputs:[ sum ] ~count ()
    in
    let capture_q =
      Netlist.add_net nl ~name:(base ^ "/dp/capture_q") ~width:32
    in
    let capture =
      Netlist.add_cell nl ~name:(base ^ "/dp/capture") ~region ~kind:Cell.Dff
        ~inputs:[ sum ] ~outputs:[ capture_q ] ~count:1 ()
    in
    (* the filler's own registers count toward the state target *)
    ff := !ff + Cell.ff_bits anchor + Cell.ff_bits capture
  end;
  if ff_target > !ff then begin
    let width = 64 in
    let count = (ff_target - !ff + width - 1) / width in
    build_selfloop_regs nl ~region ~base:(base ^ "/state") ~width ~count
  end

(* The full design. *)
let generate (params : Arch_params.t) =
  Ggpu_obs.Trace.with_span "rtlgen.generate"
    ~args:[ ("cus", string_of_int params.Arch_params.num_cus) ]
  @@ fun () ->
  Ggpu_obs.Metrics.count "rtlgen.generates" 1;
  let nl =
    Netlist.create ~name:(Printf.sprintf "ggpu_%dcu" params.Arch_params.num_cus)
  in
  (* general memory controller *)
  let gmc_outputs =
    List.map
      (fun m ->
        build_memory nl ~region:"gmc"
          ~base:(Printf.sprintf "gmc/%s" m.Arch_params.mem_name)
          m)
      params.Arch_params.gmc_memories
  in
  List.iter
    (fun r ->
      build_register_bank nl ~region:"gmc"
        ~base:(Printf.sprintf "gmc/%s" r.Arch_params.reg_name)
        r)
    params.Arch_params.gmc_registers;
  (* the cache response driving every CU's data-return port *)
  let cache_resp =
    match gmc_outputs with
    | resp :: _ -> resp
    | [] -> raise (Arch_params.Bad_params "no GMC memories")
  in
  (* compute units *)
  for i = 0 to params.Arch_params.num_cus - 1 do
    let region = region_cu i in
    List.iter
      (fun m ->
        ignore
          (build_memory nl ~region
             ~base:(Printf.sprintf "%s/%s" region m.Arch_params.mem_name)
             m))
      params.Arch_params.cu_memories;
    List.iter
      (fun r ->
        build_register_bank nl ~region
          ~base:(Printf.sprintf "%s/%s" region r.Arch_params.reg_name)
          r)
      params.Arch_params.cu_registers;
    List.iter
      (fun c ->
        build_logic_chain nl ~region
          ~base:(Printf.sprintf "%s/%s" region c.Arch_params.chain_name)
          c)
      params.Arch_params.cu_chains;
    (* cross-partition response: GMC -> CU (the long wires of Fig. 4) *)
    let resp_net =
      Netlist.add_net nl
        ~name:(Printf.sprintf "gmc/resp_to_%s" region)
        ~width:32
    in
    let _resp_buf =
      Netlist.add_cell nl
        ~name:(Printf.sprintf "gmc/resp_drv_%s" region)
        ~region:"gmc" ~kind:(Cell.Comb Op.Buf) ~inputs:[ cache_resp ]
        ~outputs:[ resp_net ] ()
    in
    ignore
      (build_capture nl ~region
         ~base:(Printf.sprintf "%s/gmc_resp" region)
         ~count:1 resp_net);
    (* cross-partition request: CU -> GMC *)
    let req_src =
      build_counter nl ~region
        ~base:(Printf.sprintf "%s/gmc_req" region)
        ~width:32 ~count:1
    in
    let req_net =
      Netlist.add_net nl
        ~name:(Printf.sprintf "%s/req_to_gmc" region)
        ~width:32
    in
    let _req_buf =
      Netlist.add_cell nl
        ~name:(Printf.sprintf "%s/req_drv" region)
        ~region ~kind:(Cell.Comb Op.Buf) ~inputs:[ req_src ]
        ~outputs:[ req_net ] ()
    in
    ignore
      (build_capture nl ~region:"gmc"
         ~base:(Printf.sprintf "gmc/req_from_%s" region)
         ~count:1 req_net)
  done;
  (* top level *)
  List.iter
    (fun m ->
      ignore
        (build_memory nl ~region:"top"
           ~base:(Printf.sprintf "top/%s" m.Arch_params.mem_name)
           m))
    params.Arch_params.top_memories;
  List.iter
    (fun r ->
      build_register_bank nl ~region:"top"
        ~base:(Printf.sprintf "top/%s" r.Arch_params.reg_name)
        r)
    params.Arch_params.top_registers;
  (* calibrated filler to published scale *)
  let totals = region_totals nl in
  let fill region ~ff_target ~comb_target =
    let ff, comb = Option.value ~default:(0, 0) (Hashtbl.find_opt totals region) in
    fill_region nl ~region ~ff ~comb ~ff_target ~comb_target
  in
  for i = 0 to params.Arch_params.num_cus - 1 do
    fill (region_cu i) ~ff_target:params.Arch_params.cu_ff_target
      ~comb_target:params.Arch_params.cu_comb_target
  done;
  fill "gmc" ~ff_target:params.Arch_params.gmc_ff_target
    ~comb_target:params.Arch_params.gmc_comb_target;
  fill "top" ~ff_target:params.Arch_params.top_ff_target
    ~comb_target:params.Arch_params.top_comb_target;
  (match Netlist.validate nl with
  | Ok () -> ()
  | Error errors ->
      failwith
        (Printf.sprintf "generated netlist invalid: %s"
           (String.concat "; " errors)));
  nl

let generate_cus ~num_cus = generate (Arch_params.default ~num_cus)
