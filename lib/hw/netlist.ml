(* A flat structural netlist: nets, cells, primary ports.

   The netlist is the mutable object the planner operates on: the RTL
   generator builds it, synthesis analyses it, and the design-space
   exploration rewrites it (memory division, pipeline insertion).  Driver
   and fanout indices are maintained incrementally so transforms stay
   cheap on 10^5-cell designs. *)

type change = {
  cells : int list; (* cell ids added, removed or rewired *)
  nets : int list; (* net ids whose driver changed *)
}

type t = {
  name : string;
  nets : (int, Net.t) Hashtbl.t;
  cells : (int, Cell.t) Hashtbl.t;
  driver : (int, int) Hashtbl.t; (* net id -> driving cell id *)
  fanout : (int, int list) Hashtbl.t; (* net id -> reading cell ids *)
  mutable inputs : Net.t list;
  mutable outputs : Net.t list;
  mutable next_net : int;
  mutable next_cell : int;
  mutable pipeline_regs : int; (* pipeline stages inserted by the planner *)
  mutable revision : int; (* bumped on every mutation *)
  mutable journal : (int * change) list; (* newest first *)
  mutable journal_len : int;
  mutable journal_floor : int; (* revisions <= floor have been dropped *)
}

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let create ~name =
  {
    name;
    nets = Hashtbl.create 1024;
    cells = Hashtbl.create 1024;
    driver = Hashtbl.create 1024;
    fanout = Hashtbl.create 1024;
    inputs = [];
    outputs = [];
    next_net = 0;
    next_cell = 0;
    pipeline_regs = 0;
    revision = 0;
    journal = [];
    journal_len = 0;
    journal_floor = 0;
  }

let name t = t.name
let net_count t = Hashtbl.length t.nets
let cell_count t = Hashtbl.length t.cells
let pipeline_regs t = t.pipeline_regs
let revision t = t.revision

(* An independent copy: future mutations of either netlist do not affect
   the other.  Net.t and Cell.t values are immutable and shared; the
   index tables are duplicated.  Much cheaper than re-elaborating, which
   makes it the tool for exploring several targets from one base design. *)
let copy t =
  {
    name = t.name;
    nets = Hashtbl.copy t.nets;
    cells = Hashtbl.copy t.cells;
    driver = Hashtbl.copy t.driver;
    fanout = Hashtbl.copy t.fanout;
    inputs = t.inputs;
    outputs = t.outputs;
    next_net = t.next_net;
    next_cell = t.next_cell;
    pipeline_regs = t.pipeline_regs;
    revision = t.revision;
    journal = t.journal; (* immutable entries; copies diverge by prepending *)
    journal_len = t.journal_len;
    journal_floor = t.journal_floor;
  }

(* Bound on the change journal: beyond this, the oldest half is dropped
   and consumers that far behind fall back to a full recompute. *)
let journal_cap = 65536

let log_change t ~cells ~nets =
  t.revision <- t.revision + 1;
  t.journal <- (t.revision, { cells; nets }) :: t.journal;
  t.journal_len <- t.journal_len + 1;
  if t.journal_len > journal_cap then begin
    let keep = journal_cap / 2 in
    let kept = ref [] and n = ref 0 and oldest = ref t.revision in
    List.iter
      (fun ((rev, _) as entry) ->
        if !n < keep then begin
          kept := entry :: !kept;
          oldest := rev;
          incr n
        end)
      t.journal;
    t.journal <- List.rev !kept;
    t.journal_len <- !n;
    t.journal_floor <- !oldest - 1
  end

let changes_since t since =
  if since >= t.revision then Some { cells = []; nets = [] }
  else if since < t.journal_floor then None
  else begin
    let cells = Hashtbl.create 64 and nets = Hashtbl.create 64 in
    let rec collect = function
      | (rev, (ch : change)) :: rest when rev > since ->
          List.iter (fun id -> Hashtbl.replace cells id ()) ch.cells;
          List.iter (fun id -> Hashtbl.replace nets id ()) ch.nets;
          collect rest
      | _ -> ()
    in
    collect t.journal;
    Some
      {
        cells = Hashtbl.fold (fun id () acc -> id :: acc) cells [];
        nets = Hashtbl.fold (fun id () acc -> id :: acc) nets [];
      }
  end

let add_net t ~name ~width =
  if width < 1 then invalid "net %s: width %d < 1" name width;
  let id = t.next_net in
  t.next_net <- id + 1;
  let net = Net.make ~id ~name ~width in
  Hashtbl.replace t.nets id net;
  log_change t ~cells:[] ~nets:[];
  net

let find_net t id =
  match Hashtbl.find_opt t.nets id with
  | Some net -> net
  | None -> invalid "unknown net id %d" id

let find_cell t id =
  match Hashtbl.find_opt t.cells id with
  | Some cell -> cell
  | None -> invalid "unknown cell id %d" id

let mem_cell t id = Hashtbl.mem t.cells id

let check_net_known t net =
  match Hashtbl.find_opt t.nets (Net.id net) with
  | Some n when Net.equal n net -> ()
  | Some _ | None -> invalid "net %a not part of netlist %s" (fun () n -> Format.asprintf "%a" Net.pp n) net t.name

let add_fanout t net cell_id =
  let nid = Net.id net in
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.fanout nid) in
  Hashtbl.replace t.fanout nid (cell_id :: existing)

let remove_fanout t net cell_id =
  let nid = Net.id net in
  match Hashtbl.find_opt t.fanout nid with
  | None -> ()
  | Some ids ->
      (* remove one occurrence only: a cell may read the same net twice *)
      let rec drop = function
        | [] -> []
        | id :: rest -> if id = cell_id then rest else id :: drop rest
      in
      Hashtbl.replace t.fanout nid (drop ids)

let add_cell t ~name ~region ~kind ~inputs ~outputs ?(count = 1) () =
  List.iter (check_net_known t) inputs;
  List.iter (check_net_known t) outputs;
  List.iter
    (fun net ->
      if Hashtbl.mem t.driver (Net.id net) then
        invalid "net %s already driven (cell %s)" (Net.name net) name)
    outputs;
  let id = t.next_cell in
  t.next_cell <- id + 1;
  let cell = Cell.make ~id ~name ~region ~kind ~inputs ~outputs ~count in
  Hashtbl.replace t.cells id cell;
  List.iter (fun net -> Hashtbl.replace t.driver (Net.id net) id) outputs;
  List.iter (fun net -> add_fanout t net id) inputs;
  log_change t ~cells:[ id ] ~nets:(List.map Net.id outputs);
  cell

let remove_cell t cell =
  let id = Cell.id cell in
  if not (Hashtbl.mem t.cells id) then invalid "remove_cell: unknown cell %d" id;
  List.iter (fun net -> Hashtbl.remove t.driver (Net.id net)) (Cell.outputs cell);
  List.iter (fun net -> remove_fanout t net id) (Cell.inputs cell);
  Hashtbl.remove t.cells id;
  log_change t ~cells:[ id ] ~nets:(List.map Net.id (Cell.outputs cell))

(* Replace the input list of [cell], keeping indices intact. *)
let rewire_inputs t cell ~inputs =
  List.iter (check_net_known t) inputs;
  let id = Cell.id cell in
  if not (Hashtbl.mem t.cells id) then invalid "rewire_inputs: unknown cell %d" id;
  List.iter (fun net -> remove_fanout t net id) (Cell.inputs cell);
  let cell' =
    Cell.make ~id ~name:(Cell.name cell) ~region:(Cell.region cell)
      ~kind:(Cell.kind cell) ~inputs ~outputs:(Cell.outputs cell)
      ~count:(Cell.count cell)
  in
  Hashtbl.replace t.cells id cell';
  List.iter (fun net -> add_fanout t net id) inputs;
  log_change t ~cells:[ id ] ~nets:[];
  cell'

let set_inputs t nets =
  List.iter (check_net_known t) nets;
  t.inputs <- nets;
  log_change t ~cells:[] ~nets:[]

let set_outputs t nets =
  List.iter (check_net_known t) nets;
  t.outputs <- nets;
  log_change t ~cells:[] ~nets:[]

let inputs t = t.inputs
let outputs t = t.outputs

let driver_of t net =
  match Hashtbl.find_opt t.driver (Net.id net) with
  | None -> None
  | Some id -> Some (find_cell t id)

let readers_of t net =
  match Hashtbl.find_opt t.fanout (Net.id net) with
  | None -> []
  | Some ids -> List.map (find_cell t) ids

let iter_cells t f = Hashtbl.iter (fun _ cell -> f cell) t.cells

let fold_cells t ~init ~f =
  Hashtbl.fold (fun _ cell acc -> f acc cell) t.cells init

let iter_nets t f = Hashtbl.iter (fun _ net -> f net) t.nets

let fold_nets t ~init ~f =
  Hashtbl.fold (fun _ net acc -> f acc net) t.nets init

let cells t = fold_cells t ~init:[] ~f:(fun acc cell -> cell :: acc)
let nets t = fold_nets t ~init:[] ~f:(fun acc net -> net :: acc)

let macros t =
  fold_cells t ~init:[] ~f:(fun acc cell ->
      if Cell.is_macro cell then cell :: acc else acc)

(* Name lookups are used by the planner's map replay; names are unique
   by construction of the generator and the transforms. *)
let find_cell_by_name t name =
  let found = ref None in
  iter_cells t (fun cell ->
      if String.equal (Cell.name cell) name then found := Some cell);
  !found

let find_net_by_name t name =
  let found = ref None in
  iter_nets t (fun net ->
      if String.equal (Net.name net) name then found := Some net);
  !found

(* --- Validation ------------------------------------------------------ *)

let validate t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let primary_inputs =
    List.fold_left
      (fun acc net -> (Net.id net :: acc))
      [] t.inputs
  in
  let is_primary_input nid = List.mem nid primary_inputs in
  (* Every net read by a cell or exported must have a driver or be a
     primary input. *)
  iter_nets t (fun net ->
      let nid = Net.id net in
      let read =
        (match Hashtbl.find_opt t.fanout nid with
        | Some (_ :: _) -> true
        | Some [] | None -> false)
        || List.exists (fun o -> Net.id o = nid) t.outputs
      in
      if read && (not (Hashtbl.mem t.driver nid)) && not (is_primary_input nid)
      then err "net %s is read but undriven" (Net.name net));
  (* Primary inputs must not also be driven. *)
  List.iter
    (fun net ->
      if Hashtbl.mem t.driver (Net.id net) then
        err "primary input %s is driven internally" (Net.name net))
    t.inputs;
  (* Index consistency: each driver entry points to a cell that lists the
     net among its outputs. *)
  Hashtbl.iter
    (fun nid cid ->
      match Hashtbl.find_opt t.cells cid with
      | None -> err "driver index references missing cell %d" cid
      | Some cell ->
          if not (List.exists (fun o -> Net.id o = nid) (Cell.outputs cell))
          then err "driver index: cell %s does not drive net %d" (Cell.name cell) nid)
    t.driver;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

(* --- Structural statistics ------------------------------------------- *)

type stats = {
  ff_bits : int;
  comb_gates : int;
  macro_count : int;
  macro_bits : int;
  cell_instances : int;
}

let stats t =
  fold_cells t
    ~init:
      {
        ff_bits = 0;
        comb_gates = 0;
        macro_count = 0;
        macro_bits = 0;
        cell_instances = 0;
      }
    ~f:(fun acc cell ->
      let count = Cell.count cell in
      match Cell.kind cell with
      | Cell.Dff ->
          {
            acc with
            ff_bits = acc.ff_bits + Cell.ff_bits cell;
            cell_instances = acc.cell_instances + count;
          }
      | Cell.Comb _ ->
          {
            acc with
            comb_gates = acc.comb_gates + Cell.comb_gates cell;
            cell_instances = acc.cell_instances + count;
          }
      | Cell.Macro spec ->
          {
            acc with
            macro_count = acc.macro_count + count;
            macro_bits = acc.macro_bits + (Macro_spec.total_bits spec * count);
            cell_instances = acc.cell_instances + count;
          })

let pp_stats fmt s =
  Format.fprintf fmt
    "ff_bits=%d comb_gates=%d macros=%d macro_bits=%d instances=%d" s.ff_bits
    s.comb_gates s.macro_count s.macro_bits s.cell_instances

(* --- Planner transforms ---------------------------------------------- *)

(* Divide macro [cell] into [banks] banks addressed by the MSBs of the
   original address: bank macros in parallel, a decoder on the spare
   address bits, and one output multiplexer per original output net.  The
   original macro is removed; its output nets are re-driven by the mux.
   This is the paper's "division by number of words" with its "small extra
   logic ... MUXes to switch between block memories". *)
let split_macro_words t cell ~banks =
  let spec =
    match Cell.macro_spec cell with
    | Some spec -> spec
    | None -> invalid "split_macro_words: %s is not a macro" (Cell.name cell)
  in
  let bank_spec = Macro_spec.split_words spec ~banks in
  let region = Cell.region cell in
  let base = Cell.name cell in
  let count = Cell.count cell in
  let inputs = Cell.inputs cell in
  let outputs = Cell.outputs cell in
  remove_cell t cell;
  let sel =
    add_net t ~name:(base ^ "/bank_sel") ~width:(max 1 (Op.clog2 banks))
  in
  let addr_net =
    match inputs with
    | [] -> invalid "split_macro_words: macro %s has no address input" base
    | net :: _ -> net
  in
  let _decode =
    add_cell t ~name:(base ^ "/bank_dec") ~region ~kind:(Cell.Comb Op.Decode)
      ~inputs:[ addr_net ] ~outputs:[ sel ] ~count ()
  in
  let bank_outputs =
    List.init banks (fun b ->
        let outs =
          List.map
            (fun out ->
              add_net t
                ~name:(Printf.sprintf "%s/bank%d/%s" base b (Net.name out))
                ~width:(Net.width out))
            outputs
        in
        let _bank =
          add_cell t
            ~name:(Printf.sprintf "%s/bank%d" base b)
            ~region ~kind:(Cell.Macro bank_spec) ~inputs ~outputs:outs ~count ()
        in
        outs)
  in
  List.iteri
    (fun i out ->
      let per_bank = List.map (fun outs -> List.nth outs i) bank_outputs in
      let _mux =
        add_cell t
          ~name:(Printf.sprintf "%s/mux%d" base i)
          ~region
          ~kind:(Cell.Comb (Op.Mux banks))
          ~inputs:(sel :: per_bank) ~outputs:[ out ] ~count ()
      in
      ())
    outputs

(* Divide macro [cell] into [slices] narrower macros operating in
   parallel on bit slices; outputs are concatenated through a buffer
   (near-zero logic).  This is the paper's "division by size of the
   word". *)
let split_macro_bits t cell ~slices =
  let spec =
    match Cell.macro_spec cell with
    | Some spec -> spec
    | None -> invalid "split_macro_bits: %s is not a macro" (Cell.name cell)
  in
  let slice_spec = Macro_spec.split_bits spec ~slices in
  let region = Cell.region cell in
  let base = Cell.name cell in
  let count = Cell.count cell in
  let inputs = Cell.inputs cell in
  let outputs = Cell.outputs cell in
  remove_cell t cell;
  let slice_outputs =
    List.init slices (fun s ->
        let outs =
          List.map
            (fun out ->
              let width = max 1 (Net.width out / slices) in
              add_net t
                ~name:(Printf.sprintf "%s/slice%d/%s" base s (Net.name out))
                ~width)
            outputs
        in
        let _slice =
          add_cell t
            ~name:(Printf.sprintf "%s/slice%d" base s)
            ~region ~kind:(Cell.Macro slice_spec) ~inputs ~outputs:outs ~count
            ()
        in
        outs)
  in
  List.iteri
    (fun i out ->
      let per_slice = List.map (fun outs -> List.nth outs i) slice_outputs in
      let _concat =
        add_cell t
          ~name:(Printf.sprintf "%s/cat%d" base i)
          ~region ~kind:(Cell.Comb Op.Buf) ~inputs:per_slice ~outputs:[ out ]
          ~count ()
      in
      ())
    outputs

(* Insert a pipeline register on [net]: all current readers (and the
   primary-output role, if any) move to the registered copy.  Returns the
   new net.  This is the paper's "on-demand pipeline insertion"; the
   caller is responsible for accounting for the added latency. *)
let insert_pipeline t net =
  check_net_known t net;
  (* a cell reading [net] on several pins appears once per pin in the
     fanout index; rewire it once (the rewire substitutes every pin) *)
  let readers =
    let seen = Hashtbl.create 8 in
    List.filter
      (fun cell ->
        let id = Cell.id cell in
        if Hashtbl.mem seen id then false
        else begin
          Hashtbl.add seen id ();
          true
        end)
      (readers_of t net)
  in
  let staged =
    add_net t ~name:(Net.name net ^ "/pipe") ~width:(Net.width net)
  in
  let reg_count =
    match driver_of t net with None -> 1 | Some cell -> Cell.count cell
  in
  let _dff =
    add_cell t
      ~name:(Net.name net ^ "/pipe_reg")
      ~region:
        (match driver_of t net with
        | Some cell -> Cell.region cell
        | None -> "top")
      ~kind:Cell.Dff ~inputs:[ net ] ~outputs:[ staged ] ~count:reg_count ()
  in
  List.iter
    (fun cell ->
      let inputs =
        List.map
          (fun i -> if Net.equal i net then staged else i)
          (Cell.inputs cell)
      in
      ignore (rewire_inputs t cell ~inputs))
    readers;
  t.outputs <-
    List.map (fun o -> if Net.equal o net then staged else o) t.outputs;
  t.pipeline_regs <- t.pipeline_regs + 1;
  staged
