(** Topological ordering of the combinational subgraph.

    Flip-flops and SRAM macros cut the graph; the order covers only
    combinational cells, each after all combinational cells driving it. *)

exception Combinational_loop of string list
(** Raised with the names of cells stuck in a cycle, sorted. *)

val order : Netlist.t -> Cell.t list
(** Deterministic (smallest-cell-id-first Kahn): a pure function of the
    graph content, independent of hash-table iteration order.  Each
    distinct (driver, reader) pair is counted once, so cells reading the
    same net on several pins order correctly.
    @raise Combinational_loop if the netlist has a combinational cycle. *)

val fold : Netlist.t -> init:'a -> f:('a -> Cell.t -> 'a) -> 'a

val comb_predecessors : Netlist.t -> Cell.t -> Cell.t list
(** Combinational cells driving the given cell's inputs. *)
