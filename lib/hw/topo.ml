(* Topological ordering of the combinational subgraph.

   Sequential cells (flip-flops and macros) cut the graph: their outputs
   are timing sources and their inputs are timing sinks.  The order lists
   only combinational cells such that every comb cell appears after all
   comb cells driving its inputs.  Combinational loops are reported as an
   error (a generated netlist must never contain one).

   Two correctness properties matter here:

   - Counting: a cell may read the same net on several pins, or read two
     nets driven by the same cell.  Indegree counts each *distinct*
     combinational driver exactly once, and emission decrements each
     distinct reader exactly once, so the two sides always agree no
     matter how many pins or index entries connect a (driver, reader)
     pair.  Counting per pin on one side and per fanout-index entry on
     the other can diverge after transforms and report a spurious
     {!Combinational_loop}.

   - Determinism: the ready set is ordered by cell id (smallest first),
     so the order is a pure function of the graph content rather than of
     hash-table iteration order.  Downstream tie-breaking (worst-path
     selection in {!Ggpu_synth.Timing}) inherits this determinism. *)

exception Combinational_loop of string list

module Int_set = Set.Make (Int)

(* Comb cells feeding [cell]'s inputs (one entry per pin; callers that
   need distinct drivers dedupe by id). *)
let comb_predecessors netlist cell =
  List.filter_map
    (fun net ->
      match Netlist.driver_of netlist net with
      | Some driver when Cell.is_comb driver -> Some driver
      | Some _ | None -> None)
    (Cell.inputs cell)

(* Distinct combinational readers of [cell]'s outputs. *)
let distinct_comb_readers netlist cell =
  let seen = Hashtbl.create 8 in
  List.concat_map
    (fun net ->
      List.filter_map
        (fun reader ->
          let rid = Cell.id reader in
          if Cell.is_comb reader && not (Hashtbl.mem seen rid) then begin
            Hashtbl.add seen rid ();
            Some rid
          end
          else None)
        (Netlist.readers_of netlist net))
    (Cell.outputs cell)

let order netlist =
  (* sized from the live cell population so large netlists do not rehash
     their way through the indegree pass *)
  let indegree = Hashtbl.create (max 256 (Netlist.cell_count netlist)) in
  let comb_ids = ref [] in
  Netlist.iter_cells netlist (fun cell ->
      if Cell.is_comb cell then begin
        comb_ids := Cell.id cell :: !comb_ids;
        Hashtbl.replace indegree (Cell.id cell) 0
      end);
  let total = List.length !comb_ids in
  (* indegree = number of distinct comb drivers, however many pins or
     nets connect them *)
  List.iter
    (fun id ->
      let cell = Netlist.find_cell netlist id in
      let seen = Hashtbl.create 4 in
      List.iter
        (fun pred ->
          let pid = Cell.id pred in
          if not (Hashtbl.mem seen pid) then begin
            Hashtbl.add seen pid ();
            Hashtbl.replace indegree id (Hashtbl.find indegree id + 1)
          end)
        (comb_predecessors netlist cell))
    !comb_ids;
  let ready = ref Int_set.empty in
  Hashtbl.iter
    (fun id deg -> if deg = 0 then ready := Int_set.add id !ready)
    indegree;
  let out = ref [] in
  let emitted = ref 0 in
  while not (Int_set.is_empty !ready) do
    let id = Int_set.min_elt !ready in
    ready := Int_set.remove id !ready;
    let cell = Netlist.find_cell netlist id in
    out := cell :: !out;
    incr emitted;
    List.iter
      (fun rid ->
        let deg = Hashtbl.find indegree rid - 1 in
        Hashtbl.replace indegree rid deg;
        if deg = 0 then ready := Int_set.add rid !ready)
      (distinct_comb_readers netlist cell)
  done;
  if !emitted <> total then begin
    let stuck =
      Hashtbl.fold
        (fun id deg acc ->
          if deg > 0 then Cell.name (Netlist.find_cell netlist id) :: acc
          else acc)
        indegree []
      |> List.sort String.compare
    in
    raise (Combinational_loop stuck)
  end;
  List.rev !out

(* Fold over comb cells in topological order. *)
let fold netlist ~init ~f = List.fold_left f init (order netlist)
