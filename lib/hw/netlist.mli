(** Flat structural netlists.

    The central mutable object of the generator: the RTL generator builds
    a netlist, synthesis analyses it, and the planner rewrites it through
    {!split_macro_words}, {!split_macro_bits} and {!insert_pipeline}.
    Driver and fanout indices are maintained incrementally. *)

type t

exception Invalid of string

val create : name:string -> t
val name : t -> string
val net_count : t -> int
val cell_count : t -> int

val copy : t -> t
(** An independent copy sharing the immutable nets and cells; much
    cheaper than re-elaborating, so one base design can be explored
    against several targets. *)

val pipeline_regs : t -> int
(** Number of pipeline stages inserted by {!insert_pipeline}. *)

(** {1 Revisioning}

    Every mutation bumps a revision counter and appends the set of
    touched cells and driver-changed nets to a bounded change journal.
    Incremental consumers (the {!Ggpu_synth.Timing} engine) use it to
    recompute only the affected fan-out cone. *)

type change = {
  cells : int list;  (** cell ids added, removed or rewired *)
  nets : int list;  (** net ids whose driver changed *)
}

val revision : t -> int
(** Monotonically increasing; bumped on every mutation. *)

val changes_since : t -> int -> change option
(** Union of all changes after the given revision, deduplicated.
    [None] when the journal has been truncated past that revision, in
    which case the consumer must recompute from scratch. *)

(** {1 Construction} *)

val add_net : t -> name:string -> width:int -> Net.t

val add_cell :
  t ->
  name:string ->
  region:string ->
  kind:Cell.kind ->
  inputs:Net.t list ->
  outputs:Net.t list ->
  ?count:int ->
  unit ->
  Cell.t
(** @raise Invalid if an output net is already driven or a net is unknown. *)

val remove_cell : t -> Cell.t -> unit
val rewire_inputs : t -> Cell.t -> inputs:Net.t list -> Cell.t
val set_inputs : t -> Net.t list -> unit
val set_outputs : t -> Net.t list -> unit

(** {1 Queries} *)

val inputs : t -> Net.t list
val outputs : t -> Net.t list
val find_net : t -> int -> Net.t
val find_cell : t -> int -> Cell.t
val mem_cell : t -> int -> bool
val driver_of : t -> Net.t -> Cell.t option
val readers_of : t -> Net.t -> Cell.t list
val iter_cells : t -> (Cell.t -> unit) -> unit
val fold_cells : t -> init:'a -> f:('a -> Cell.t -> 'a) -> 'a
val iter_nets : t -> (Net.t -> unit) -> unit
val fold_nets : t -> init:'a -> f:('a -> Net.t -> 'a) -> 'a
val cells : t -> Cell.t list
val nets : t -> Net.t list
val macros : t -> Cell.t list

val find_cell_by_name : t -> string -> Cell.t option
(** Linear scan; names are unique by construction. *)

val find_net_by_name : t -> string -> Net.t option

val validate : t -> (unit, string list) result
(** Structural sanity: read nets are driven or primary inputs, primary
    inputs are not internally driven, indices are consistent. *)

(** {1 Statistics} *)

type stats = {
  ff_bits : int;  (** total flip-flop bits (Table I "#FF") *)
  comb_gates : int;  (** equivalent 2-input gates (Table I "#Comb.") *)
  macro_count : int;  (** SRAM macro instances (Table I "#Memory") *)
  macro_bits : int;
  cell_instances : int;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

(** {1 Planner transforms} *)

val split_macro_words : t -> Cell.t -> banks:int -> unit
(** Replace a macro with [banks] banks selected by address MSBs, plus a
    decoder and per-output multiplexers (the paper's word division). *)

val split_macro_bits : t -> Cell.t -> slices:int -> unit
(** Replace a macro with [slices] parallel bit-slice macros concatenated
    through a buffer (the paper's word-size division). *)

val insert_pipeline : t -> Net.t -> Net.t
(** Register [net]; all readers and primary-output roles move to the
    returned staged net (the paper's on-demand pipeline insertion). *)
