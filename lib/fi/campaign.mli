(** Fault-injection campaign engine: one golden run, then a population
    of single-bit-upset trials classified against it as Masked / SDC /
    DUE / Hang, fanned out over the {!Ggpu_par.Parallel} domain pool.

    Campaigns are deterministic: for a fixed seed the trial list is
    bit-identical whether run serially or on N domains. Trials are
    isolated: an injected trial's exception (trap, launch error,
    watchdog) is its classification and never aborts the campaign. *)

type target = Ggpu of int  (** compute units *) | Rv32

val target_name : target -> string

type trial = { fault : Fault.t; outcome : Fault.outcome }

type class_counts = { masked : int; sdc : int; due : int; hang : int }

val total_of : class_counts -> int

val avf : class_counts -> float
(** Architectural vulnerability factor: the fraction of upsets that are
    not masked ((sdc + due + hang) / trials). *)

type report = {
  target : target;
  kernel : string;
  size : int;
  seed : int;
  golden_cycles : int;  (** cycle count of the fault-free run *)
  watchdog_cycles : int;  (** Hang threshold used for every trial *)
  trials : trial list;  (** in trial-index order *)
  by_structure : (Fault.structure * class_counts) list;
  total : class_counts;
}

val run :
  ?domains:int ->
  ?backend:Ggpu_fgpu.Gpu.backend ->
  ?watchdog_factor:int ->
  target:target ->
  workload:Ggpu_kernels.Suite.t ->
  size:int ->
  trials:int ->
  seed:int ->
  unit ->
  report
(** Run a campaign of [trials] injected runs of [workload] at [size]
    work-items. The watchdog is [watchdog_factor * golden_cycles +
    10_000] simulated cycles (default factor 8). [domains] sizes the
    domain pool ([1] forces a serial run).  [backend] selects the
    simulator's lane-execution engine for Ggpu targets (ignored for
    Rv32); classifications and signatures are backend-independent. *)

val signature : report -> string
(** Compact [structure:masked/sdc/due/hang] token list (ending with a
    [total:] token) for golden-file drift checks in CI. *)

val pp_report : Format.formatter -> report -> unit
