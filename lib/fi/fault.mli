(** Fault models (single-bit SEUs in named architectural structures)
    and the Masked / SDC / DUE / Hang outcome taxonomy. The concrete
    target of a fault is resolved from live machine state at the
    injection cycle by a generator seeded with [salt]. *)

type structure =
  | Wf_reg  (** a wavefront register-file bit *)
  | Wf_pc  (** one live lane's program counter *)
  | Wf_mask  (** active/divergence mask: kill a live lane or revive one *)
  | Cache_tag  (** central cache tag array (timing-only in this model) *)
  | Cache_data  (** a word of a valid cached line *)
  | Rv_reg  (** RISC-V architectural register x1..x31 *)
  | Rv_pc  (** RISC-V program counter *)
  | Rv_mem  (** RISC-V data-memory word *)

val structure_name : structure -> string

val gpu_structures : structure list
val rv32_structures : structure list

type t = { cycle : int; structure : structure; salt : int }

type outcome =
  | Masked
  | Sdc
  | Due of string
  | Hang

val outcome_name : outcome -> string
val pp : Format.formatter -> t -> unit
val pp_outcome : Format.formatter -> outcome -> unit
