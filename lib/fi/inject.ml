(* Resolving a sampled fault against live machine state and flipping
   the bit.

   Targets are picked uniformly among the structures that exist at the
   injection instant (resident unfinished wavefronts, valid cache
   lines).  When a structure has no live instance - e.g. a cache fault
   before the first miss - the fault lands in unused silicon and the
   trial is trivially Masked, exactly as on the real device. *)

open Ggpu_fgpu

(* The FGPU program counter is a short index register; flipping a bit
   above the architectural width would model a strike outside the
   flip-flop.  16 bits covers every program the compiler can emit. *)
let pc_bits = 16

let flip32 v ~bit = Int32.logxor v (Int32.shift_left 1l bit)
let flip_int v ~bit = v lxor (1 lsl bit)

let pick rng arr = arr.(Rng.int rng (Array.length arr))

let unfinished (probe : Gpu.probe) =
  Array.of_list
    (List.filter
       (fun wf -> not (Wavefront.finished wf))
       (Array.to_list probe.Gpu.p_wavefronts))

let valid_cache_indices cache =
  let n = Cache.num_lines cache in
  let valid = ref [] in
  for i = n - 1 downto 0 do
    if Cache.tag cache i >= 0 then valid := i :: !valid
  done;
  Array.of_list !valid

let apply_gpu rng (structure : Fault.structure) (probe : Gpu.probe) =
  match structure with
  | Fault.Wf_reg ->
      let wfs = unfinished probe in
      if Array.length wfs > 0 then begin
        let wf = pick rng wfs in
        let lane = Rng.int rng wf.Wavefront.size in
        let r = 1 + Rng.int rng 31 in
        let bit = Rng.int rng 32 in
        Wavefront.set_reg wf ~lane r (flip32 (Wavefront.reg wf ~lane r) ~bit)
      end
  | Fault.Wf_pc ->
      let wfs = unfinished probe in
      if Array.length wfs > 0 then begin
        let wf = pick rng wfs in
        let live =
          Array.of_list
            (List.filteri
               (fun _ lane -> wf.Wavefront.pcs.(lane) <> Wavefront.done_pc)
               (List.init wf.Wavefront.size Fun.id))
        in
        if Array.length live > 0 then begin
          let lane = pick rng live in
          let bit = Rng.int rng pc_bits in
          Wavefront.set_pc wf ~lane (flip_int wf.Wavefront.pcs.(lane) ~bit)
        end
      end
  | Fault.Wf_mask ->
      let wfs = unfinished probe in
      if Array.length wfs > 0 then begin
        let wf = pick rng wfs in
        let lane = Rng.int rng wf.Wavefront.size in
        if wf.Wavefront.pcs.(lane) = Wavefront.done_pc then
          (* revive a retired lane at the reconvergence point: it will
             re-execute the tail of the kernel *)
          Wavefront.set_pc wf ~lane (Wavefront.min_pc wf)
        else
          (* drop a live lane: its remaining work is lost *)
          Wavefront.set_pc wf ~lane Wavefront.done_pc
      end
  | Fault.Cache_tag ->
      let valid = valid_cache_indices probe.Gpu.p_cache in
      if Array.length valid > 0 then begin
        let i = pick rng valid in
        let bit = Rng.int rng pc_bits in
        Cache.set_tag probe.Gpu.p_cache i
          (flip_int (Cache.tag probe.Gpu.p_cache i) ~bit)
      end
  | Fault.Cache_data ->
      let cache = probe.Gpu.p_cache in
      let valid = valid_cache_indices cache in
      if Array.length valid > 0 then begin
        let i = pick rng valid in
        let word =
          (Cache.line_addr cache i / 4) + Rng.int rng (Cache.line_words cache)
        in
        if word >= 0 && word < Array.length probe.Gpu.p_mem then begin
          let bit = Rng.int rng 32 in
          probe.Gpu.p_mem.(word) <-
            Ggpu_isa.I32.flip probe.Gpu.p_mem.(word) ~bit
        end
      end
  | Fault.Rv_reg | Fault.Rv_pc | Fault.Rv_mem ->
      invalid_arg "Inject.apply_gpu: RISC-V structure"

let apply_rv32 rng (structure : Fault.structure) cpu =
  let open Ggpu_riscv in
  match structure with
  | Fault.Rv_reg ->
      let r = 1 + Rng.int rng 31 in
      let bit = Rng.int rng 32 in
      Cpu.set_reg cpu r (flip32 (Cpu.get_reg cpu r) ~bit)
  | Fault.Rv_pc ->
      let bit = Rng.int rng pc_bits in
      Cpu.set_pc cpu (flip_int (Cpu.pc cpu) ~bit)
  | Fault.Rv_mem ->
      let word = Rng.int rng (Cpu.mem_words cpu) in
      let bit = Rng.int rng 32 in
      Cpu.store_word cpu ~addr:(4 * word)
        (flip32 (Cpu.load_word cpu ~addr:(4 * word)) ~bit)
  | Fault.Wf_reg | Fault.Wf_pc | Fault.Wf_mask | Fault.Cache_tag
  | Fault.Cache_data ->
      invalid_arg "Inject.apply_rv32: G-GPU structure"
