(** Resolve a sampled fault against live machine state and flip the
    bit. Targets are drawn uniformly among live instances of the
    structure; with no live instance (e.g. a cache fault before the
    first fill) the fault lands in unused silicon and is a no-op. *)

val pc_bits : int
(** Architectural width modelled for program-counter upsets. *)

val apply_gpu : Rng.t -> Fault.structure -> Ggpu_fgpu.Gpu.probe -> unit
(** @raise Invalid_argument on a RISC-V structure. *)

val apply_rv32 : Rng.t -> Fault.structure -> Ggpu_riscv.Cpu.t -> unit
(** @raise Invalid_argument on a G-GPU structure. *)
