(* Fault-injection campaign engine.

   A campaign fixes a workload and a target machine (G-GPU at some CU
   count, or the RISC-V baseline), runs one golden (fault-free) trial,
   then a population of injected trials: each flips a single sampled
   bit at a sampled cycle and classifies the result against the golden
   output as Masked / SDC / DUE / Hang.  The per-structure AVF
   (architectural vulnerability factor: the fraction of upsets that are
   not masked) falls out of the counts.

   Determinism: trial [i] of a campaign seeded [s] derives every random
   choice from [Rng.for_trial ~seed:s ~index:i], so the trial list is
   bit-identical whether trials run serially or fan out over the
   {!Ggpu_par.Parallel} domain pool.  Isolation: a trial's exception
   is its classification, never the campaign's - trials run under
   try/with and a simulated-time watchdog, so corrupted control flow
   terminates as a counted Hang. *)

open Ggpu_kernels

let log_src = Logs.Src.create "ggpu.fi" ~doc:"Fault-injection campaigns"

module Log = (val Logs.src_log log_src : Logs.LOG)

type target = Ggpu of int  (** compute units *) | Rv32

let target_name = function
  | Ggpu cus -> Printf.sprintf "g-gpu/%dcu" cus
  | Rv32 -> "rv32"

type trial = { fault : Fault.t; outcome : Fault.outcome }

type class_counts = { masked : int; sdc : int; due : int; hang : int }

let zero_counts = { masked = 0; sdc = 0; due = 0; hang = 0 }

let count_outcome c = function
  | Fault.Masked -> { c with masked = c.masked + 1 }
  | Fault.Sdc -> { c with sdc = c.sdc + 1 }
  | Fault.Due _ -> { c with due = c.due + 1 }
  | Fault.Hang -> { c with hang = c.hang + 1 }

let total_of c = c.masked + c.sdc + c.due + c.hang

(* Architectural vulnerability factor: fraction of upsets with any
   visible effect. *)
let avf c =
  let total = total_of c in
  if total = 0 then 0.0
  else float_of_int (c.sdc + c.due + c.hang) /. float_of_int total

type report = {
  target : target;
  kernel : string;
  size : int;
  seed : int;
  golden_cycles : int;
  watchdog_cycles : int;
  trials : trial list;
  by_structure : (Fault.structure * class_counts) list;
  total : class_counts;
}

(* Sample one fault for trial [index]: a cycle inside the golden
   window, a structure, and a salt for target resolution. *)
let sample_fault ~seed ~index ~golden_cycles structures =
  let rng = Rng.for_trial ~seed ~index in
  let cycle = Rng.int rng (max 1 golden_cycles) in
  let structure = List.nth structures (Rng.int rng (List.length structures)) in
  let salt = Rng.salt rng in
  { Fault.cycle; structure; salt }

let classify ~golden_out ~out = if out = golden_out then Fault.Masked else Fault.Sdc

let aggregate ~structures trials =
  let by_structure =
    List.map
      (fun s ->
        ( s,
          List.fold_left
            (fun c t ->
              if t.fault.Fault.structure = s then count_outcome c t.outcome
              else c)
            zero_counts trials ))
      structures
  in
  let total =
    List.fold_left (fun c t -> count_outcome c t.outcome) zero_counts trials
  in
  (by_structure, total)

(* Watchdog budget: generous enough that slow-but-healthy corrupted
   runs (extra cache misses, revived lanes redoing work) complete, and
   tight enough that genuine livelock is caught quickly. *)
let watchdog ~factor ~golden_cycles = (factor * golden_cycles) + 10_000

let outcome_key = function
  | Fault.Masked -> "fi.masked"
  | Fault.Sdc -> "fi.sdc"
  | Fault.Due _ -> "fi.due"
  | Fault.Hang -> "fi.hang"

(* Fan the trial population out over the domain pool, with a span per
   trial and campaign-level throughput metrics around the whole batch. *)
let run_trials ?domains one trials =
  let one index = Ggpu_obs.Trace.with_span "fi.trial" (fun () -> one index) in
  let t0 = Ggpu_obs.Metrics.now_ns () in
  let trials_run =
    Ggpu_par.Parallel.map ?domains one (List.init trials Fun.id)
  in
  let wall_ns = max 1 (Ggpu_obs.Metrics.now_ns () - t0) in
  if Ggpu_obs.Metrics.ambient_enabled () then begin
    Ggpu_obs.Metrics.record_gauge "fi.domains"
      (match domains with
      | Some d -> max 1 d
      | None -> Ggpu_par.Parallel.default_domains ());
    Ggpu_obs.Metrics.count "fi.trials" (List.length trials_run);
    List.iter
      (fun t -> Ggpu_obs.Metrics.count (outcome_key t.outcome) 1)
      trials_run;
    Ggpu_obs.Metrics.record_gauge "fi.trials_per_s"
      (List.length trials_run * 1_000_000_000 / wall_ns)
  end;
  trials_run

let run ?domains ?backend ?(watchdog_factor = 8) ~target ~(workload : Suite.t)
    ~size ~trials ~seed () =
  Ggpu_obs.Trace.with_span "fi.campaign"
    ~args:
      [
        ("target", target_name target);
        ("kernel", workload.Suite.name);
        ("trials", string_of_int trials);
      ]
  @@ fun () ->
  let size = workload.Suite.round_size size in
  let global_size = workload.Suite.global_size ~size in
  let local_size = min workload.Suite.local_size size in
  let args = workload.Suite.mk_args ~size in
  match target with
  | Ggpu cus ->
      let config = Ggpu_fgpu.Config.with_cus Ggpu_fgpu.Config.default cus in
      let compiled = Codegen_fgpu.compile workload.Suite.kernel in
      let launch ?max_cycles ?inject () =
        Run_fgpu.run ~config ?max_cycles ?inject ?backend compiled ~args
          ~global_size ~local_size ()
      in
      let golden = launch () in
      let golden_out = Run_fgpu.output golden workload.Suite.output_buffer in
      let golden_cycles = golden.Run_fgpu.stats.Ggpu_fgpu.Stats.cycles in
      let max_cycles = watchdog ~factor:watchdog_factor ~golden_cycles in
      let one index =
        let fault =
          sample_fault ~seed ~index ~golden_cycles Fault.gpu_structures
        in
        let injector probe =
          Inject.apply_gpu (Rng.create fault.Fault.salt) fault.Fault.structure
            probe
        in
        let outcome =
          match launch ~max_cycles ~inject:(fault.Fault.cycle, injector) () with
          | result ->
              classify ~golden_out
                ~out:(Run_fgpu.output result workload.Suite.output_buffer)
          | exception Ggpu_fgpu.Gpu.Watchdog_timeout _ -> Fault.Hang
          | exception Ggpu_fgpu.Gpu.Launch_error msg ->
              Fault.Due ("launch_error: " ^ msg)
          | exception Ggpu_fgpu.Wavefront.Fault msg -> Fault.Due ("fault: " ^ msg)
          | exception e ->
              Log.warn (fun m ->
                  m "trial %d: unexpected exception %s counted as DUE" index
                    (Printexc.to_string e));
              Fault.Due (Printexc.to_string e)
        in
        { fault; outcome }
      in
      let trials_run = run_trials ?domains one trials in
      let by_structure, total =
        aggregate ~structures:Fault.gpu_structures trials_run
      in
      {
        target;
        kernel = workload.Suite.name;
        size;
        seed;
        golden_cycles;
        watchdog_cycles = max_cycles;
        trials = trials_run;
        by_structure;
        total;
      }
  | Rv32 ->
      let compiled = Codegen_rv32.compile workload.Suite.kernel in
      let launch ?max_cycles ?inject () =
        Run_rv32.run ?max_cycles ?inject compiled ~args ~global_size
          ~local_size ()
      in
      let golden = launch () in
      let golden_out = Run_rv32.output golden workload.Suite.output_buffer in
      let golden_cycles = golden.Run_rv32.stats.Ggpu_riscv.Cpu.cycles in
      let max_cycles = watchdog ~factor:watchdog_factor ~golden_cycles in
      let one index =
        let fault =
          sample_fault ~seed ~index ~golden_cycles Fault.rv32_structures
        in
        let injector cpu =
          Inject.apply_rv32 (Rng.create fault.Fault.salt)
            fault.Fault.structure cpu
        in
        let outcome =
          match launch ~max_cycles ~inject:(fault.Fault.cycle, injector) () with
          | result ->
              classify ~golden_out
                ~out:(Run_rv32.output result workload.Suite.output_buffer)
          | exception Ggpu_riscv.Cpu.Watchdog_timeout _ -> Fault.Hang
          | exception Ggpu_riscv.Cpu.Out_of_fuel _ -> Fault.Hang
          | exception Ggpu_riscv.Cpu.Trap msg -> Fault.Due ("trap: " ^ msg)
          | exception e ->
              Log.warn (fun m ->
                  m "trial %d: unexpected exception %s counted as DUE" index
                    (Printexc.to_string e));
              Fault.Due (Printexc.to_string e)
        in
        { fault; outcome }
      in
      let trials_run = run_trials ?domains one trials in
      let by_structure, total =
        aggregate ~structures:Fault.rv32_structures trials_run
      in
      {
        target;
        kernel = workload.Suite.name;
        size;
        seed;
        golden_cycles;
        watchdog_cycles = max_cycles;
        trials = trials_run;
        by_structure;
        total;
      }

(* Compact per-structure counts, one token per structure, suitable for
   golden-file drift checks in CI. *)
let signature r =
  let token name c =
    Printf.sprintf "%s:%d/%d/%d/%d" name c.masked c.sdc c.due c.hang
  in
  String.concat ";"
    (List.map
       (fun (s, c) -> token (Fault.structure_name s) c)
       r.by_structure
    @ [ token "total" r.total ])

let pp_counts_row fmt name c =
  Format.fprintf fmt "%-12s %7d %7d %7d %7d %7d   %5.3f@," name (total_of c)
    c.masked c.sdc c.due c.hang (avf c)

let pp_report fmt r =
  Format.fprintf fmt "@[<v>";
  Format.fprintf fmt "campaign: %s on %s, size %d, %d trials, seed %d@,"
    r.kernel (target_name r.target) r.size (total_of r.total) r.seed;
  Format.fprintf fmt
    "golden run: %d cycles; watchdog at %d cycles@," r.golden_cycles
    r.watchdog_cycles;
  Format.fprintf fmt "%-12s %7s %7s %7s %7s %7s   %5s@," "structure" "trials"
    "masked" "sdc" "due" "hang" "AVF";
  List.iter
    (fun (s, c) -> pp_counts_row fmt (Fault.structure_name s) c)
    r.by_structure;
  pp_counts_row fmt "total" r.total;
  Format.fprintf fmt "@]"
