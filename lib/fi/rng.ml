(* Deterministic splitmix64 generator for the fault-injection sampler.

   Campaigns must be bit-identical for a fixed seed whether trials run
   serially or across a domain pool, so every trial derives its own
   generator from (campaign seed, trial index) and never touches shared
   or global randomness ([Random] keeps per-domain state and would break
   reproducibility). *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

(* Independent stream for trial [index] of campaign [seed]: seed the
   state with a mixed combination so neighbouring indices diverge. *)
let for_trial ~seed ~index =
  { state = mix (Int64.add (mix (Int64.of_int seed)) (Int64.mul golden_gamma (Int64.of_int (index + 1)))) }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

(* Uniform in [0, bound); bound must be positive.  Masking to 62 bits
   before [rem] keeps the result non-negative; the modulo bias is
   negligible for the small bounds used here (lanes, registers, bits). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.logand (next t) 0x3FFFFFFFFFFFFFFFL) (Int64.of_int bound))

let salt t = Int64.to_int (Int64.logand (next t) 0x3FFFFFFFFFFFFFFFL)
