(** Deterministic splitmix64 generator. Each trial derives its own
    stream from (campaign seed, trial index), so campaigns are
    bit-identical for a fixed seed regardless of domain count. *)

type t

val create : int -> t

val for_trial : seed:int -> index:int -> t
(** Independent stream for trial [index] of a campaign seeded [seed]. *)

val next : t -> int64

val int : t -> int -> int
(** Uniform in [[0, bound)). @raise Invalid_argument if [bound <= 0]. *)

val salt : t -> int
(** A non-negative salt suitable for seeding a derived generator. *)
