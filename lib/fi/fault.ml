(* Fault models and the outcome taxonomy of the injection campaigns.

   Every fault is a single-bit upset (SEU) in one architectural
   structure, the standard model of radiation-induced soft errors that
   motivates the FGPU reliability line of work (Gonçalves/Azambuja).  A
   fault names only (cycle, structure, salt): the concrete target - which
   wavefront, lane, register, cache index, bit - is resolved from the
   machine state live at the injection cycle, by a generator seeded with
   [salt], because structures such as resident wavefronts or valid cache
   lines only exist once the machine is running. *)

type structure =
  (* G-GPU structures *)
  | Wf_reg  (** a wavefront register file bit (32 regs x 64 lanes) *)
  | Wf_pc  (** one live lane's program counter (16-bit register) *)
  | Wf_mask
      (** the active/divergence mask: a live lane drops dead or a
          retired lane revives at the reconvergence pc *)
  | Cache_tag  (** central cache tag array (timing-only in this model) *)
  | Cache_data  (** a word of a valid cached line *)
  (* RISC-V structures *)
  | Rv_reg  (** architectural register x1..x31 *)
  | Rv_pc  (** the program counter *)
  | Rv_mem  (** a data-memory word *)

let structure_name = function
  | Wf_reg -> "wf_reg"
  | Wf_pc -> "wf_pc"
  | Wf_mask -> "wf_mask"
  | Cache_tag -> "cache_tag"
  | Cache_data -> "cache_data"
  | Rv_reg -> "rv_reg"
  | Rv_pc -> "rv_pc"
  | Rv_mem -> "rv_mem"

let gpu_structures = [ Wf_reg; Wf_pc; Wf_mask; Cache_tag; Cache_data ]
let rv32_structures = [ Rv_reg; Rv_pc; Rv_mem ]

type t = {
  cycle : int;  (** injection time (simulated cycles) *)
  structure : structure;
  salt : int;  (** seeds the target-resolution generator *)
}

(* Standard radiation-test taxonomy. *)
type outcome =
  | Masked  (** output identical to the golden run *)
  | Sdc  (** silent data corruption: wrong output memory *)
  | Due of string
      (** detected unrecoverable error: a trap or launch error *)
  | Hang  (** the watchdog fired *)

let outcome_name = function
  | Masked -> "masked"
  | Sdc -> "sdc"
  | Due _ -> "due"
  | Hang -> "hang"

let pp fmt t =
  Format.fprintf fmt "%s@%d" (structure_name t.structure) t.cycle

let pp_outcome fmt = function
  | Due msg -> Format.fprintf fmt "due(%s)" msg
  | o -> Format.pp_print_string fmt (outcome_name o)
