(** STOKE-style enumeration and rule mining over short FGPU sequences:
    enumerate candidates over a bounded alphabet, fingerprint on seeded
    test vectors, bucket, verify equivalence on a corner-crossing
    vector grid, prune to cheapest under the simulator's latency model,
    and emit verified {!Rule.t} rewrites.  Fans out over
    {!Ggpu_par.Parallel} domains; deterministic for any domain count. *)

type space = {
  ops : Ggpu_isa.Fgpu_isa.alu_op list;
  imms : int32 list;
  regs : int list;  (** canonical pattern registers; head = result *)
  max_len : int;
}

val default_space : space

type stats = {
  alphabet : int;
  candidates : int;
  buckets : int;
  verified_pairs : int;
  truncated : bool;  (** enumeration hit the budget *)
}

type result = { rules : Rule.t list; stats : stats }

val compiler_shape : Ggpu_isa.Fgpu_isa.t list -> bool
(** Default lhs filter: sequences ending in a register move, or
    containing a load-immediate — the redundancy shapes the FGPU
    codegen actually emits. *)

val mine :
  ?cfg:Ggpu_fgpu.Config.t ->
  ?space:space ->
  ?budget:int ->
  ?max_rules:int ->
  ?domains:int ->
  ?lhs_filter:(Ggpu_isa.Fgpu_isa.t list -> bool) ->
  ?fp_vectors:int ->
  ?verify_extra:int ->
  ?seed:int ->
  unit ->
  result
