(* Straight-line FGPU sequence executor.

   The superoptimizer screens millions of candidate sequences, so it
   cannot afford {!Ggpu_fgpu.Gpu}'s scheduler, event heap or even the
   wavefront select-pc machinery.  This executor models exactly one
   lane stepping a straight-line program: registers and memory in the
   canonical sign-extended native-int representation of
   {!Ggpu_isa.I32}, the same ALU/division/shift semantics as
   {!Ggpu_fgpu.Wavefront} (RISC-V M corner cases included), and the
   same register-file conventions — reads of r0 come from slice 0
   which is never written, writes to r0 land in a sink slot.  [step]
   and [run] allocate nothing: state lives in one preallocated [t] and
   instructions arrive predecoded ({!Ggpu_isa.Fgpu_predecode}), so a
   screening loop is a handful of array reads per instruction.

   Control flow (branches, jumps) is deliberately unsupported: rewrite
   windows never contain it (see {!Peephole}), and candidate
   enumeration never generates it.  [Barrier] is a scheduling fence
   with no lane-visible effect, so it is a no-op here. *)

open Ggpu_isa

(* Register-file geometry mirrors {!Ggpu_fgpu.Wavefront}: 32
   architectural slots plus a write sink for rd = 0. *)
let num_slots = 33
let sink = 32

type t = {
  regs : int array; (* I32-canonical; index 0 stays zero, 32 is the sink *)
  mutable lid : int; (* SIMT specials for this lane *)
  mutable wgid : int;
  mutable wgoff : int;
  mutable wgsize : int;
  mutable gsize : int;
}

exception Fault of string

let fault fmt = Printf.ksprintf (fun s -> raise (Fault s)) fmt

let create () =
  { regs = Array.make num_slots 0; lid = 0; wgid = 0; wgoff = 0; wgsize = 0; gsize = 0 }

let clear t =
  Array.fill t.regs 0 num_slots 0;
  t.lid <- 0;
  t.wgid <- 0;
  t.wgoff <- 0;
  t.wgsize <- 0;
  t.gsize <- 0

let reg t r = if r = 0 then 0 else t.regs.(r)
let set_reg t r v = if r <> 0 then t.regs.(r) <- I32.sx v

let load_params t params =
  List.iteri (fun i v -> set_reg t (i + 1) (I32.of_int32 v)) params

(* Same operator table as {!Ggpu_fgpu.Wavefront.alu}; duplicated here
   rather than exported from the simulator so the executor depends
   only on instruction semantics, not on wavefront state. *)
let alu op a b =
  match op with
  | Fgpu_isa.Add -> I32.add a b
  | Fgpu_isa.Sub -> I32.sub a b
  | Fgpu_isa.Mul -> I32.mul a b
  | Fgpu_isa.Div -> I32.div_signed a b
  | Fgpu_isa.Rem -> I32.rem_signed a b
  | Fgpu_isa.And -> a land b
  | Fgpu_isa.Or -> a lor b
  | Fgpu_isa.Xor -> a lxor b
  | Fgpu_isa.Sll -> I32.sll a b
  | Fgpu_isa.Srl -> I32.srl a b
  | Fgpu_isa.Sra -> I32.sra a b
  | Fgpu_isa.Slt -> if a < b then 1 else 0
  | Fgpu_isa.Sltu -> if I32.ult a b then 1 else 0

let no_mem : int array = [||]

(* Execute one predecoded instruction for this lane.  Returns [false]
   when the instruction was [Ret] (the lane halts), [true] otherwise.
   Memory addressing matches {!Ggpu_fgpu.Wavefront.issue}: byte
   addresses, 4-aligned, bounds-checked against [mem] in words. *)
let[@inline] step ?(mem = no_mem) t (d : Fgpu_predecode.t) =
  let regs = t.regs in
  let od = if d.Fgpu_predecode.rd = 0 then sink else d.Fgpu_predecode.rd in
  (match d.Fgpu_predecode.kind with
  | Fgpu_predecode.KAlu ->
      let a = Array.unsafe_get regs d.Fgpu_predecode.rs1
      and b = Array.unsafe_get regs d.Fgpu_predecode.rs2 in
      Array.unsafe_set regs od (alu d.Fgpu_predecode.aop a b)
  | Fgpu_predecode.KAlui ->
      let a = Array.unsafe_get regs d.Fgpu_predecode.rs1 in
      Array.unsafe_set regs od (alu d.Fgpu_predecode.aop a d.Fgpu_predecode.imm)
  | Fgpu_predecode.KLoadImm -> Array.unsafe_set regs od d.Fgpu_predecode.imm
  | Fgpu_predecode.KLw ->
      let addr = Array.unsafe_get regs d.Fgpu_predecode.rs1 + d.Fgpu_predecode.imm in
      if addr land 3 <> 0 then fault "misaligned access 0x%x" addr;
      let w = addr lsr 2 in
      if w >= Array.length mem then fault "address 0x%x out of memory" addr;
      Array.unsafe_set regs od (Array.unsafe_get mem w)
  | Fgpu_predecode.KSw ->
      (* store data travels in the rd field: a read, not a write *)
      let addr = Array.unsafe_get regs d.Fgpu_predecode.rs1 + d.Fgpu_predecode.imm in
      if addr land 3 <> 0 then fault "misaligned access 0x%x" addr;
      let w = addr lsr 2 in
      if w >= Array.length mem then fault "address 0x%x out of memory" addr;
      Array.unsafe_set mem w (Array.unsafe_get regs d.Fgpu_predecode.rd)
  | Fgpu_predecode.KSpecial ->
      let v =
        match d.Fgpu_predecode.sp with
        | Fgpu_isa.Lid -> t.lid
        | Fgpu_isa.Wgid -> t.wgid
        | Fgpu_isa.Wgoff -> t.wgoff
        | Fgpu_isa.Wgsize -> t.wgsize
        | Fgpu_isa.Gsize -> t.gsize
      in
      Array.unsafe_set regs od v
  | Fgpu_predecode.KBarrier -> () (* scheduling fence: no lane-visible effect *)
  | Fgpu_predecode.KBranch | Fgpu_predecode.KJump ->
      fault "control flow in straight-line executor"
  | Fgpu_predecode.KRet -> ());
  d.Fgpu_predecode.kind <> Fgpu_predecode.KRet

let run ?(mem = no_mem) t (dprog : Fgpu_predecode.t array) =
  let n = Array.length dprog in
  let rec go i =
    if i < n && step ~mem t (Array.unsafe_get dprog i) then go (i + 1)
  in
  go 0

(* Instruction-major execution of one wavefront: instruction [i] runs
   for every lane before instruction [i+1] runs for any — exactly the
   dense (converged) issue order of {!Ggpu_fgpu.Wavefront.issue} on a
   straight-line program, which never diverges.  Test-path only; it
   allocates one [t] per lane. *)
let run_wavefront ?(mem = no_mem) ~size ~wg_id ~wg_offset ~wg_size ~global_size
    ~params (dprog : Fgpu_predecode.t array) =
  let lanes =
    Array.init size (fun lane ->
        let t = create () in
        t.lid <- lane; (* single wavefront: wf_index = 0 *)
        t.wgid <- wg_id;
        t.wgoff <- wg_offset;
        t.wgsize <- wg_size;
        t.gsize <- global_size;
        load_params t params;
        t)
  in
  let n = Array.length dprog in
  let rec go i =
    if i < n then begin
      let d = dprog.(i) in
      let continue = ref true in
      Array.iter (fun t -> continue := step ~mem t d) lanes;
      if !continue then go (i + 1)
    end
  in
  go 0;
  lanes
