(* Verified rewrite rules.

   A rule is a pair of straight-line instruction sequences over
   canonical pattern registers: when [lhs] matches a window of real
   code (register ids in the patterns are variables, opcodes and
   immediates are literal), the window may be replaced by [rhs].  The
   miner guarantees that from any initial register state the two
   sequences leave every canonical register equal — except those in
   [clobbers], whose final values may differ and which therefore must
   be dead at the end of the window for the rewrite to be sound (the
   peephole pass checks this against its liveness analysis).

   Serialisation reuses the ISA's 32-bit word encoding: each pattern
   instruction prints as eight hex digits, so a rule line is a stable,
   diffable, machine-checkable record and the parser is
   {!Ggpu_isa.Fgpu_isa.decode}.  Example:

     04620800,045f0000 => 00311800 ; clobbers=3 ; saves=8

   — "op r3,r1,r2 ; mov r1,r3" => "op r1,r1,r2", clobbering r3. *)

open Ggpu_isa

type t = {
  lhs : Fgpu_isa.t list;
  rhs : Fgpu_isa.t list;
  clobbers : int list; (* canonical regs possibly differing after lhs vs rhs *)
  saved : int; (* cycles saved per application, Config.default latencies *)
}

exception Parse_error of string

(* --- register accounting ---------------------------------------------- *)

let insn_regs = function
  | Fgpu_isa.Alu (_, rd, rs1, rs2) -> [ rd; rs1; rs2 ]
  | Fgpu_isa.Alui (_, rd, rs1, _) | Fgpu_isa.Lw (rd, rs1, _) -> [ rd; rs1 ]
  | Fgpu_isa.Sw (rs2, rs1, _) -> [ rs2; rs1 ]
  | Fgpu_isa.Lui (rd, _) | Fgpu_isa.Li (rd, _) | Fgpu_isa.Special (_, rd) -> [ rd ]
  | Fgpu_isa.Branch (_, rs1, rs2, _) -> [ rs1; rs2 ]
  | Fgpu_isa.Jump _ | Fgpu_isa.Barrier | Fgpu_isa.Ret -> []

let seq_regs seq =
  List.sort_uniq compare (List.concat_map insn_regs seq)
  |> List.filter (fun r -> r <> 0)

let vars rule = List.sort_uniq compare (seq_regs rule.lhs @ seq_regs rule.rhs)

let writes seq =
  List.filter_map Fgpu_isa.writes_reg seq
  |> List.filter (fun r -> r <> 0)
  |> List.sort_uniq compare

(* --- normalisation ---------------------------------------------------- *)

(* Rename pattern registers to 1, 2, 3... in first-occurrence order
   over lhs then rhs, so rules equal up to renaming serialise
   identically and dedup on the line. *)
let normalise rule =
  let map = Array.make Fgpu_isa.num_regs 0 in
  let next = ref 0 in
  let rename r =
    if r = 0 then 0
    else begin
      if map.(r) = 0 then begin
        incr next;
        map.(r) <- !next
      end;
      map.(r)
    end
  in
  let rename_insn = function
    | Fgpu_isa.Alu (op, rd, rs1, rs2) ->
        Fgpu_isa.Alu (op, rename rd, rename rs1, rename rs2)
    | Fgpu_isa.Alui (op, rd, rs1, imm) ->
        Fgpu_isa.Alui (op, rename rd, rename rs1, imm)
    | Fgpu_isa.Lw (rd, rs1, off) -> Fgpu_isa.Lw (rename rd, rename rs1, off)
    | Fgpu_isa.Sw (rs2, rs1, off) -> Fgpu_isa.Sw (rename rs2, rename rs1, off)
    | Fgpu_isa.Lui (rd, imm) -> Fgpu_isa.Lui (rename rd, imm)
    | Fgpu_isa.Li (rd, imm) -> Fgpu_isa.Li (rename rd, imm)
    | Fgpu_isa.Special (sp, rd) -> Fgpu_isa.Special (sp, rename rd)
    | (Fgpu_isa.Branch _ | Fgpu_isa.Jump _ | Fgpu_isa.Barrier | Fgpu_isa.Ret) as i
      ->
        i
  in
  let lhs = List.map rename_insn rule.lhs in
  let rhs = List.map rename_insn rule.rhs in
  let clobbers =
    List.map (fun r -> if map.(r) = 0 then r else map.(r)) rule.clobbers
    |> List.sort_uniq compare
  in
  { rule with lhs; rhs; clobbers }

(* --- serialisation ---------------------------------------------------- *)

let words_to_string seq =
  List.map (fun i -> Printf.sprintf "%08lx" (Fgpu_isa.encode i)) seq
  |> String.concat ","

let to_line rule =
  Printf.sprintf "%s => %s ; clobbers=%s ; saves=%d"
    (words_to_string rule.lhs)
    (words_to_string rule.rhs)
    (String.concat "," (List.map string_of_int rule.clobbers))
    rule.saved

let parse_words s =
  if String.trim s = "" then []
  else
    String.split_on_char ',' s
    |> List.map (fun w ->
           let w = String.trim w in
           match Int32.of_string_opt ("0x" ^ w) with
           | Some word -> Fgpu_isa.decode word
           | None -> raise (Parse_error (Printf.sprintf "bad word %S" w)))

let of_line line =
  let fail why = raise (Parse_error (Printf.sprintf "%s in %S" why line)) in
  match String.index_opt line '>' with
  | None -> fail "missing =>"
  | Some gt ->
      if gt = 0 || line.[gt - 1] <> '=' then fail "missing =>";
      let lhs_s = String.sub line 0 (gt - 1) in
      let rest = String.sub line (gt + 1) (String.length line - gt - 1) in
      let fields = String.split_on_char ';' rest in
      let rhs_s, clob_s, saves_s =
        match fields with
        | [ r; c; s ] -> (r, c, s)
        | _ -> fail "expected '; clobbers=... ; saves=...'"
      in
      let strip_key key s =
        let s = String.trim s in
        let prefix = key ^ "=" in
        if String.length s >= String.length prefix
           && String.sub s 0 (String.length prefix) = prefix
        then String.sub s (String.length prefix) (String.length s - String.length prefix)
        else fail (Printf.sprintf "expected %s=" key)
      in
      let clobbers =
        match String.trim (strip_key "clobbers" clob_s) with
        | "" -> []
        | s ->
            String.split_on_char ',' s
            |> List.map (fun r ->
                   match int_of_string_opt (String.trim r) with
                   | Some v when v >= 1 && v < Fgpu_isa.num_regs -> v
                   | _ -> fail "bad clobber register")
      in
      let saved =
        match int_of_string_opt (String.trim (strip_key "saves" saves_s)) with
        | Some v -> v
        | None -> fail "bad saves field"
      in
      { lhs = parse_words lhs_s; rhs = parse_words rhs_s; clobbers; saved }

let pp fmt rule =
  let seq s = String.concat " ; " (List.map Fgpu_isa.to_string s) in
  Format.fprintf fmt "{%s}  =>  {%s}" (seq rule.lhs) (seq rule.rhs);
  if rule.clobbers <> [] then
    Format.fprintf fmt "  clobbers %s"
      (String.concat "," (List.map (fun r -> "r" ^ string_of_int r) rule.clobbers));
  Format.fprintf fmt "  (saves %d cyc)" rule.saved

let to_string rule = Format.asprintf "%a" pp rule

(* --- matching --------------------------------------------------------- *)

(* A substitution maps pattern registers to concrete registers.  The
   binding must be injective (two pattern variables never share a
   concrete register: the miner's equivalence proof assumed them
   independent) and never binds r0, whose write-discard semantics no
   pattern variable models. *)

let bind theta used v c =
  if v = 0 || c = 0 then v = 0 && c = 0
  else if theta.(v) >= 0 then theta.(v) = c
  else if used.(c) then false
  else begin
    theta.(v) <- c;
    used.(c) <- true;
    true
  end

let match_insn theta used (pat : Fgpu_isa.t) (ins : Fgpu_isa.t) =
  match (pat, ins) with
  | Fgpu_isa.Alu (op, pd, p1, p2), Fgpu_isa.Alu (op', d, s1, s2) ->
      op = op' && bind theta used pd d && bind theta used p1 s1
      && bind theta used p2 s2
  | Fgpu_isa.Alui (op, pd, p1, pimm), Fgpu_isa.Alui (op', d, s1, imm) ->
      op = op' && Int32.equal pimm imm && bind theta used pd d
      && bind theta used p1 s1
  | Fgpu_isa.Li (pd, pimm), Fgpu_isa.Li (d, imm) ->
      Int32.equal pimm imm && bind theta used pd d
  | Fgpu_isa.Lui (pd, pimm), Fgpu_isa.Lui (d, imm) ->
      Int32.equal pimm imm && bind theta used pd d
  | _ -> false

let subst_insn theta (pat : Fgpu_isa.t) =
  let s v = if v = 0 then 0 else theta.(v) in
  match pat with
  | Fgpu_isa.Alu (op, rd, rs1, rs2) -> Fgpu_isa.Alu (op, s rd, s rs1, s rs2)
  | Fgpu_isa.Alui (op, rd, rs1, imm) -> Fgpu_isa.Alui (op, s rd, s rs1, imm)
  | Fgpu_isa.Li (rd, imm) -> Fgpu_isa.Li (s rd, imm)
  | Fgpu_isa.Lui (rd, imm) -> Fgpu_isa.Lui (s rd, imm)
  | i -> i

(* Match [rule.lhs] against [window] (same length).  On success,
   returns the substitution array (pattern reg -> concrete reg, every
   variable of the rule bound). *)
let match_window rule (window : Fgpu_isa.t list) =
  if List.length window <> List.length rule.lhs then None
  else begin
    let theta = Array.make Fgpu_isa.num_regs (-1) in
    let used = Array.make Fgpu_isa.num_regs false in
    if List.for_all2 (fun p i -> match_insn theta used p i) rule.lhs window then begin
      (* bind any rhs-only / clobber-only variables?  The miner
         guarantees vars(rhs) and clobbers are lhs-bound; reject
         defensively if not, rather than inventing registers. *)
      if List.for_all (fun v -> theta.(v) >= 0) (vars rule)
         && List.for_all (fun v -> theta.(v) >= 0) rule.clobbers
      then Some theta
      else None
    end
    else None
  end

let instantiate rule theta = List.map (subst_insn theta) rule.rhs
