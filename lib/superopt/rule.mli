(** Verified rewrite rules over canonical pattern registers.

    Register ids appearing in [lhs]/[rhs] are pattern variables
    (matched injectively against concrete registers, r0 excluded);
    opcodes and immediates are literal.  The two sides leave every
    register equal except those in [clobbers], which must be dead at
    the end of a matched window.  Rules serialise one-per-line through
    the ISA's 32-bit word encoding. *)

type t = {
  lhs : Ggpu_isa.Fgpu_isa.t list;
  rhs : Ggpu_isa.Fgpu_isa.t list;
  clobbers : int list;
  saved : int;  (** cycles saved per application (Config.default) *)
}

exception Parse_error of string

val seq_regs : Ggpu_isa.Fgpu_isa.t list -> int list
(** Distinct non-zero registers mentioned, sorted. *)

val writes : Ggpu_isa.Fgpu_isa.t list -> int list
(** Distinct non-zero registers written, sorted. *)

val vars : t -> int list
(** All pattern variables of the rule. *)

val normalise : t -> t
(** Rename pattern registers to 1,2,3,... in first-occurrence order,
    so renaming-equal rules serialise identically. *)

val to_line : t -> string
val of_line : string -> t
(** @raise Parse_error on malformed input. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val match_window : t -> Ggpu_isa.Fgpu_isa.t list -> int array option
(** Match the lhs against a same-length window of concrete
    instructions; on success return the substitution (pattern reg ->
    concrete reg). *)

val instantiate : t -> int array -> Ggpu_isa.Fgpu_isa.t list
(** Instantiate the rhs under a substitution from {!match_window}. *)
