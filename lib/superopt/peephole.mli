(** Rule-driven peephole pass over assembled FGPU programs.

    Windows are maximal straight-line ALU runs (labels, control flow,
    memory, barriers and specials all terminate a window), rules fire
    only where their clobber registers are provably dead (backward
    liveness over the item-level CFG), and re-assembly recomputes all
    branch offsets — so rewrites never disturb divergence,
    reconvergence or memory ordering.  Each application strictly
    decreases static cycle cost; the fixpoint terminates. *)

type report = {
  applied : (Rule.t * int) list;  (** rule, times fired *)
  nops_removed : int;
  saved_cycles : int;  (** static estimate under the cost model *)
}

val empty_report : report

val items_of_program :
  Ggpu_isa.Fgpu_isa.t array -> Ggpu_isa.Fgpu_asm.item list
(** Lift a decoded program back to assembler items, with a synthetic
    label at every branch/jump target. *)

val optimise_items :
  ?cfg:Ggpu_fgpu.Config.t ->
  rules:Rule.t list ->
  Ggpu_isa.Fgpu_asm.item list ->
  Ggpu_isa.Fgpu_asm.item list * report

val optimise_program :
  ?cfg:Ggpu_fgpu.Config.t ->
  rules:Rule.t list ->
  Ggpu_isa.Fgpu_isa.t array ->
  Ggpu_isa.Fgpu_isa.t array * report
(** Apply the rule table plus algebraic no-op elimination to fixpoint
    and re-assemble. *)

val count_hits : rules:Rule.t list -> Ggpu_isa.Fgpu_isa.t array -> report
(** Dry-run [optimise_program], returning only the report. *)
