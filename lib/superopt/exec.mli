(** Zero-allocation straight-line FGPU sequence executor over
    {!Ggpu_isa.I32} lane state: one lane's registers, no scheduler, no
    event heap.  Semantics are bit-identical to
    {!Ggpu_fgpu.Wavefront.issue} for every straight-line instruction
    (ALU including RISC-V M division corner cases, load immediates,
    loads/stores, SIMT specials); branches and jumps fault. *)

type t = {
  regs : int array;  (** 33 slots, I32-canonical; 0 reads zero, 32 is the rd=0 sink *)
  mutable lid : int;
  mutable wgid : int;
  mutable wgoff : int;
  mutable wgsize : int;
  mutable gsize : int;
}

exception Fault of string

val create : unit -> t
val clear : t -> unit

val reg : t -> int -> int
(** Canonical (sign-extended) value of an architectural register. *)

val set_reg : t -> int -> int -> unit
(** Writes are canonicalised; writes to r0 are discarded. *)

val load_params : t -> int32 list -> unit
(** Kernel convention: parameter [i] lands in register [i+1]. *)

val step : ?mem:int array -> t -> Ggpu_isa.Fgpu_predecode.t -> bool
(** Execute one predecoded instruction; [false] iff it was [Ret].
    Allocation-free.  @raise Fault on control flow, misaligned or
    out-of-bounds access. *)

val run : ?mem:int array -> t -> Ggpu_isa.Fgpu_predecode.t array -> unit
(** Run a straight-line sequence from its first instruction, stopping
    at [Ret] or the end.  Allocation-free. *)

val run_wavefront :
  ?mem:int array ->
  size:int ->
  wg_id:int ->
  wg_offset:int ->
  wg_size:int ->
  global_size:int ->
  params:int32 list ->
  Ggpu_isa.Fgpu_predecode.t array ->
  t array
(** Instruction-major execution of one full wavefront (the dense issue
    order of a converged wavefront); returns the per-lane end states.
    Test-path helper; allocates one state per lane. *)
