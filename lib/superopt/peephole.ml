(* Rule-driven peephole pass over assembled FGPU programs.

   Operates after register allocation and assembly, where every cycle
   saved is a real issue slot.  The pass is safe against the
   simulator's dense/sparse divergence machinery by construction:

   - The program is first lifted back to {!Ggpu_isa.Fgpu_asm} items
     with a synthetic label at every branch/jump target.  Rewrite
     windows are maximal runs of pure straight-line ALU instructions
     (register ALU ops and load-immediates); labels, branches, jumps,
     loads, stores, barriers, specials and returns all terminate a
     window.  No rewrite therefore ever crosses a control-flow join,
     moves a memory access, or changes which lanes execute what — a
     divergent lane group re-executes the rewritten window exactly as
     it would have the original, and reconvergence points (labels) keep
     their relative order so the min-PC policy still reconverges.
     Re-assembly recomputes every branch offset and jump target, so
     shrinking a window can never break control flow.

   - Rules only fire where their clobber registers are dead: a
     backward liveness analysis over the item graph (branch edges
     included) proves no later instruction on any path reads the
     registers whose final values the rewrite changes.  Registers not
     in the clobber set are left bit-identical by the rule's
     verification, so the rewritten program's lane-visible semantics
     are unchanged.

   Classic window rewrites (algebraic no-op elimination) run alongside
   the mined table.  Applications strictly decrease the program's
   static cycle cost, so the fixpoint terminates. *)

open Ggpu_isa

type report = {
  applied : (Rule.t * int) list; (* rule, number of times it fired *)
  nops_removed : int;
  saved_cycles : int; (* static estimate under the cost model *)
}

let empty_report = { applied = []; nops_removed = 0; saved_cycles = 0 }

(* --- program <-> items ------------------------------------------------ *)

let label_of pc = Printf.sprintf "pc%d" pc

let items_of_program (prog : Fgpu_isa.t array) =
  let n = Array.length prog in
  let target = Array.make (n + 1) false in
  Array.iteri
    (fun pc insn ->
      match insn with
      | Fgpu_isa.Branch (_, _, _, off) ->
          let t = pc + 1 + off in
          if t >= 0 && t <= n then target.(t) <- true
      | Fgpu_isa.Jump t -> if t >= 0 && t <= n then target.(t) <- true
      | _ -> ())
    prog;
  let items = ref [] in
  Array.iteri
    (fun pc insn ->
      if target.(pc) then items := Fgpu_asm.Label (label_of pc) :: !items;
      let item =
        match insn with
        | Fgpu_isa.Branch (c, rs1, rs2, off) ->
            Fgpu_asm.Branch_to (c, rs1, rs2, label_of (pc + 1 + off))
        | Fgpu_isa.Jump t -> Fgpu_asm.Jump_to (label_of t)
        | i -> Fgpu_asm.I i
      in
      items := item :: !items)
    prog;
  if target.(n) then items := Fgpu_asm.Label (label_of n) :: !items;
  List.rev !items

(* --- liveness --------------------------------------------------------- *)

let bit r = if r = 0 then 0 else 1 lsl r

let use_def = function
  | Fgpu_asm.I (Fgpu_isa.Alu (_, d, a, b)) -> (bit a lor bit b, bit d)
  | Fgpu_asm.I (Fgpu_isa.Alui (_, d, a, _)) -> (bit a, bit d)
  | Fgpu_asm.I (Fgpu_isa.Lui (d, _) | Fgpu_isa.Li (d, _)) -> (0, bit d)
  | Fgpu_asm.Li32 (d, _) -> (0, bit d)
  | Fgpu_asm.I (Fgpu_isa.Lw (d, a, _)) -> (bit a, bit d)
  | Fgpu_asm.I (Fgpu_isa.Sw (v, a, _)) -> (bit v lor bit a, 0)
  | Fgpu_asm.I (Fgpu_isa.Branch (_, a, b, _)) | Fgpu_asm.Branch_to (_, a, b, _)
    ->
      (bit a lor bit b, 0)
  | Fgpu_asm.I (Fgpu_isa.Special (_, d)) -> (0, bit d)
  | Fgpu_asm.I (Fgpu_isa.Jump _ | Fgpu_isa.Barrier | Fgpu_isa.Ret)
  | Fgpu_asm.Jump_to _ | Fgpu_asm.Label _ ->
      (0, 0)

(* live_out per item index, as a register bitmask.  Backward dataflow
   to fixpoint over the item-level control-flow graph; items lists are
   tens of entries, so the quadratic-ish iteration is immaterial. *)
let liveness (items : Fgpu_asm.item array) =
  let n = Array.length items in
  let label_idx = Hashtbl.create 16 in
  Array.iteri
    (fun i it ->
      match it with
      | Fgpu_asm.Label l -> Hashtbl.replace label_idx l i
      | _ -> ())
    items;
  let target l =
    match Hashtbl.find_opt label_idx l with Some j -> [ j ] | None -> []
  in
  (* raw I (Jump _)/I (Branch _) never survive items_of_program, which
     lifts them to *_to forms; treat them like their lifted versions
     anyway so the analysis stays total on arbitrary item lists *)
  let succs i =
    match items.(i) with
    | Fgpu_asm.Jump_to l -> target l
    | Fgpu_asm.I (Fgpu_isa.Jump _) | Fgpu_asm.I Fgpu_isa.Ret -> []
    | Fgpu_asm.Branch_to (_, _, _, l) ->
        let t = target l in
        if i + 1 < n then (i + 1) :: t else t
    | _ -> if i + 1 < n then [ i + 1 ] else []
  in
  let use = Array.make n 0 and def = Array.make n 0 in
  Array.iteri
    (fun i it ->
      let u, d = use_def it in
      use.(i) <- u;
      def.(i) <- d)
    items;
  let live_in = Array.make n 0 and live_out = Array.make n 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let out = List.fold_left (fun acc j -> acc lor live_in.(j)) 0 (succs i) in
      let inn = use.(i) lor (out land lnot def.(i)) in
      if out <> live_out.(i) || inn <> live_in.(i) then begin
        live_out.(i) <- out;
        live_in.(i) <- inn;
        changed := true
      end
    done
  done;
  live_out

(* --- window rewriting ------------------------------------------------- *)

let imm16_ok v = v >= -32768l && v <= 32767l

(* Items a rewrite window may contain: pure register-ALU work.  A
   narrow Li32 behaves exactly like Li; wide ones (two-instruction
   expansions) stay opaque. *)
let window_insn = function
  | Fgpu_asm.I ((Fgpu_isa.Alu _ | Fgpu_isa.Alui _ | Fgpu_isa.Li _ | Fgpu_isa.Lui _) as i)
    ->
      Some i
  | Fgpu_asm.Li32 (d, imm) when imm16_ok imm -> Some (Fgpu_isa.Li (d, imm))
  | _ -> None

(* Algebraic no-ops: d <- d op identity.  Deleting one changes no
   register, so no liveness condition is needed. *)
let is_nop = function
  | Fgpu_isa.Alui
      ( (Fgpu_isa.Add | Fgpu_isa.Sub | Fgpu_isa.Or | Fgpu_isa.Xor | Fgpu_isa.Sll
        | Fgpu_isa.Srl | Fgpu_isa.Sra),
        d,
        s,
        0l )
    when d = s && d <> 0 ->
      true
  | Fgpu_isa.Alu
      ( (Fgpu_isa.Add | Fgpu_isa.Sub | Fgpu_isa.Or | Fgpu_isa.Xor | Fgpu_isa.Sll
        | Fgpu_isa.Srl | Fgpu_isa.Sra),
        d,
        s,
        0 )
    when d = s && d <> 0 ->
      true
  | _ -> false

(* One rewriting pass over the item list.  Returns the new items and
   what changed; [None] if nothing fired. *)
let rewrite_pass ~rules (items : Fgpu_asm.item list) =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let live_out = liveness arr in
  let fired = ref None in
  let i = ref 0 in
  while !fired = None && !i < n do
    let at = !i in
    (match window_insn arr.(at) with
    | Some insn when is_nop insn -> fired := Some (`Nop, at, 1, [])
    | Some _ ->
        (* try every rule anchored at [at], table order = priority *)
        List.iter
          (fun (rule : Rule.t) ->
            if !fired = None then begin
              let k = List.length rule.lhs in
              if at + k <= n then begin
                (* collect k consecutive window instructions *)
                let window = ref [] and ok = ref true in
                for j = at to at + k - 1 do
                  match window_insn arr.(j) with
                  | Some ins -> window := ins :: !window
                  | None -> ok := false
                done;
                if !ok then
                  match Rule.match_window rule (List.rev !window) with
                  | Some theta ->
                      let dead_ok =
                        List.for_all
                          (fun v -> live_out.(at + k - 1) land bit theta.(v) = 0)
                          rule.clobbers
                      in
                      if dead_ok then
                        fired := Some (`Rule rule, at, k, Rule.instantiate rule theta)
                  | None -> ()
              end
            end)
          rules
    | None -> ());
    incr i
  done;
  match !fired with
  | None -> None
  | Some (what, at, k, replacement) ->
      let out = ref [] in
      Array.iteri
        (fun j it ->
          if j < at || j >= at + k then out := it :: !out
          else if j = at then
            List.iter (fun ins -> out := Fgpu_asm.I ins :: !out) replacement)
        arr;
      Some (what, List.rev !out)

let max_passes = 64

let optimise_items ?(cfg = Ggpu_fgpu.Config.default) ~rules items =
  let counts : (string, Rule.t * int ref) Hashtbl.t = Hashtbl.create 16 in
  let nops = ref 0 and saved = ref 0 in
  let rec fix items pass =
    if pass >= max_passes then items
    else
      match rewrite_pass ~rules items with
      | None -> items
      | Some (what, items') ->
          (match what with
          | `Nop -> incr nops
          | `Rule r -> (
              saved := !saved + r.Rule.saved;
              let key = Rule.to_line r in
              match Hashtbl.find_opt counts key with
              | Some (_, c) -> incr c
              | None -> Hashtbl.add counts key (r, ref 1)));
          fix items' (pass + 1)
  in
  let items = fix items 0 in
  let applied =
    Hashtbl.fold (fun _ (r, c) acc -> (r, !c) :: acc) counts []
    |> List.sort (fun (a, _) (b, _) -> compare (Rule.to_line a) (Rule.to_line b))
  in
  ignore cfg;
  (items, { applied; nops_removed = !nops; saved_cycles = !saved })

let optimise_program ?cfg ~rules (prog : Fgpu_isa.t array) =
  let items, report = optimise_items ?cfg ~rules (items_of_program prog) in
  (Fgpu_asm.assemble items, report)

let count_hits ~rules prog =
  let _, report = optimise_program ~rules prog in
  report
