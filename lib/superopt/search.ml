(* STOKE-style enumeration and rule mining over short FGPU sequences.

   Pipeline: enumerate straight-line candidates over a bounded
   operand/immediate alphabet; fingerprint each on a fixed seeded
   test-vector set (hash of the result register's final value, so
   sequences computing the same function of the canonical registers
   collide); bucket by fingerprint; inside each bucket, verify
   equivalence pairwise on a much larger vector set that crosses every
   arithmetic corner value (0, ±1, ±2, INT_MIN, INT_MAX, 0x8000, 31)
   against every register — division corner cases and sign-extension
   bugs live exactly there; prune to the cheapest representative under
   the simulator's per-op latency model ({!Cost}); and emit
   lhs => cheapest-equivalent rules ({!Rule}).

   Equivalence is established on the verification vectors, not by
   exhausting 2^96 input states: the vector set covers all corner
   cross-products plus seeded randoms, and downstream the golden
   output table and the differential property test re-check every
   applied rewrite end-to-end (see DESIGN §7 for the full soundness
   argument).

   Registers the two sides leave in different states become the rule's
   clobber set — the peephole pass may only fire the rule where those
   registers are dead.  The result register (the first canonical
   register) must always be preserved.

   By default the miner only emits rules whose lhs ends in a register
   move or materialises an immediate: those are the two redundancy
   shapes a compiler actually produces (regalloc temp-then-move;
   constant materialised into a scratch then consumed), and the filter
   keeps the table compact where unrestricted mining would emit one
   rule per junk sequence.  The enumeration itself is unrestricted so
   every bucket still contains the cheapest representatives.

   Enumeration and bucket mining both fan out over
   {!Ggpu_par.Parallel} domains; results are deterministic for any
   domain count because candidates are re-sorted before mining and
   rules are deduplicated and ranked at the end. *)

open Ggpu_isa

type space = {
  ops : Fgpu_isa.alu_op list;
  imms : int32 list;
  regs : int list; (* canonical pattern registers; head = result *)
  max_len : int;
}

let default_space =
  {
    ops =
      [
        Fgpu_isa.Add; Fgpu_isa.Sub; Fgpu_isa.Mul; Fgpu_isa.Div; Fgpu_isa.Rem;
        Fgpu_isa.And; Fgpu_isa.Or; Fgpu_isa.Xor; Fgpu_isa.Sll; Fgpu_isa.Srl;
        Fgpu_isa.Sra; Fgpu_isa.Slt; Fgpu_isa.Sltu;
      ];
    imms = [ 0l; 1l; 2l; 4l; 8l; 16l; 31l ];
    regs = [ 1; 2; 3 ];
    max_len = 2;
  }

type stats = {
  alphabet : int;
  candidates : int;
  buckets : int;
  verified_pairs : int;
  truncated : bool;
}

type result = { rules : Rule.t list; stats : stats }

(* --- alphabet --------------------------------------------------------- *)

type entry = {
  insn : Fgpu_isa.t;
  dpre : Fgpu_predecode.t;
  cost : int;
  wreg : int; (* destination register *)
  rmask : int; (* bitmask of registers read *)
}

let bit r = if r = 0 then 0 else 1 lsl r

let alui_imm_ok op imm =
  match op with
  | Fgpu_isa.And | Fgpu_isa.Or | Fgpu_isa.Xor -> imm >= 0l && imm <= 0xFFFFl
  | Fgpu_isa.Sll | Fgpu_isa.Srl | Fgpu_isa.Sra -> imm >= 0l && imm < 32l
  | _ -> imm >= -32768l && imm <= 32767l

let build_alphabet cfg space =
  let entries = ref [] in
  let add insn rmask =
    let wreg = match Fgpu_isa.writes_reg insn with Some r -> r | None -> 0 in
    entries :=
      {
        insn;
        dpre = Fgpu_predecode.of_insn insn;
        cost = Cost.insn_cost cfg insn;
        wreg;
        rmask;
      }
      :: !entries
  in
  List.iter
    (fun op ->
      List.iter
        (fun d ->
          List.iter
            (fun s1 ->
              List.iter
                (fun s2 -> add (Fgpu_isa.Alu (op, d, s1, s2)) (bit s1 lor bit s2))
                space.regs)
            space.regs)
        space.regs)
    space.ops;
  List.iter
    (fun op ->
      List.iter
        (fun d ->
          List.iter
            (fun s ->
              List.iter
                (fun imm ->
                  if alui_imm_ok op imm then
                    add (Fgpu_isa.Alui (op, d, s, imm)) (bit s))
                space.imms)
            space.regs)
        space.regs)
    space.ops;
  List.iter
    (fun d -> List.iter (fun imm -> add (Fgpu_isa.Li (d, imm)) 0) space.imms)
    space.regs;
  Array.of_list (List.rev !entries)

(* --- test vectors ----------------------------------------------------- *)

let corners =
  [| 0; 1; 2; -1; -2; 0x7FFFFFFF; I32.min_i32; 0x8000; 31 |]

(* Same multiplicative LCG family as the suite's input generator:
   deterministic, seed-scrambled. *)
let lcg seed =
  let state = ref (((seed * 0x9E3779B1) lor 1) land I32.mask) in
  fun () ->
    state := ((!state * 1103515245) + 12345) land I32.mask;
    I32.sx !state

let fingerprint_vectors ~nregs ~seed ~n =
  let next = lcg seed in
  Array.init n (fun j ->
      Array.init nregs (fun i ->
          if j < Array.length corners then
            corners.((j + (i * 3)) mod Array.length corners)
          else next ()))

(* Every cross-product of corner values over the canonical registers,
   plus seeded randoms: the corner grid is what makes division,
   shift-masking and sign bugs distinguishable. *)
let verify_vectors ~nregs ~seed ~extra =
  let nc = Array.length corners in
  let total = int_of_float (float_of_int nc ** float_of_int nregs) in
  let grid =
    Array.init total (fun j ->
        let v = Array.make nregs 0 in
        let rec fill i j = if i < nregs then begin
            v.(i) <- corners.(j mod nc);
            fill (i + 1) (j / nc)
          end
        in
        fill 0 j;
        v)
  in
  let next = lcg (seed lxor 0x5EED) in
  Array.append grid (Array.init extra (fun _ -> Array.init nregs (fun _ -> next ())))

(* --- evaluation ------------------------------------------------------- *)

(* Run [seq] (alphabet indices) from register state [vec]; leaves the
   final state in [st].  Allocation-free. *)
let run_seq st (alpha : entry array) (cregs : int array) (seq : int array)
    (vec : int array) =
  let regs = st.Exec.regs in
  for i = 0 to Array.length cregs - 1 do
    regs.(Array.unsafe_get cregs i) <- Array.unsafe_get vec i
  done;
  for k = 0 to Array.length seq - 1 do
    ignore (Exec.step st (Array.unsafe_get alpha (Array.unsafe_get seq k)).dpre)
  done

let fingerprint st alpha cregs vectors seq =
  let result = cregs.(0) in
  let h = ref 17 in
  for v = 0 to Array.length vectors - 1 do
    run_seq st alpha cregs seq vectors.(v);
    h := ((!h * 1000003) lxor st.Exec.regs.(result)) land max_int
  done;
  !h

(* --- enumeration ------------------------------------------------------ *)

(* Reject sequences with dead definitions: every instruction's result
   must be read by a later instruction before being overwritten, or be
   the final write to the result register.  Compilers do not emit dead
   straight-line code (VIR DCE ran), so dead-lhs rules never fire, and
   dead-rhs candidates are never cheapest. *)
let dead_free (alpha : entry array) (seq : int array) ~result =
  let n = Array.length seq in
  let ok = ref true in
  for i = 0 to n - 1 do
    let d = alpha.(seq.(i)).wreg in
    let live = ref false in
    (try
       for j = i + 1 to n - 1 do
         let e = alpha.(seq.(j)) in
         if e.rmask land bit d <> 0 then begin
           live := true;
           raise Exit
         end;
         if e.wreg = d then raise Exit (* overwritten unread *)
       done;
       (* reached the end unread: useful only as the final result value *)
       if d = result then live := true
     with Exit -> ());
    if not !live then ok := false
  done;
  !ok

(* Enumerate sequences of length 1..max_len whose first instruction
   index lies in [firsts], calling [emit] on each dead-free candidate
   whose last instruction writes the result register.  Stops after
   [budget] emissions. *)
let enumerate alpha ~max_len ~result ~firsts ~budget emit =
  let n = Array.length alpha in
  let count = ref 0 in
  let truncated = ref false in
  let seq = Array.make max_len 0 in
  let consider len =
    if !count >= budget then truncated := true
    else if alpha.(seq.(len - 1)).wreg = result then begin
      let cand = Array.sub seq 0 len in
      if dead_free alpha cand ~result then begin
        incr count;
        emit cand
      end
    end
  in
  let rec extend pos len =
    if not !truncated then
      if pos = len then consider len
      else
        for i = 0 to n - 1 do
          if not !truncated then begin
            seq.(pos) <- i;
            extend (pos + 1) len
          end
        done
  in
  Array.iter
    (fun first ->
      for len = 1 to max_len do
        if not !truncated then begin
          seq.(0) <- first;
          extend 1 len
        end
      done)
    firsts;
  (!count, !truncated)

(* --- mining ----------------------------------------------------------- *)

let seq_cost_of alpha seq =
  Array.fold_left (fun acc i -> acc + alpha.(i).cost) 0 seq

let seq_insns alpha seq = Array.to_list (Array.map (fun i -> alpha.(i).insn) seq)

let seq_mention_mask alpha seq =
  Array.fold_left (fun acc i -> acc lor alpha.(i).rmask lor bit alpha.(i).wreg) 0 seq

let is_mov = function
  | Fgpu_isa.Alui (Fgpu_isa.Add, d, s, 0l) -> d <> s && s <> 0
  | _ -> false

let is_load_imm = function Fgpu_isa.Li _ | Fgpu_isa.Lui _ -> true | _ -> false

(* Default lhs form filter: the redundancy shapes compilers emit. *)
let compiler_shape (lhs : Fgpu_isa.t list) =
  (match List.rev lhs with last :: _ :: _ -> is_mov last | _ -> false)
  || (List.length lhs > 1 && List.exists is_load_imm lhs)

(* Verify [a] against [b]; on success fill [preserved] (per canonical
   register: equal on every vector) and return true.  The result
   register must match everywhere or verification fails early. *)
let verify st_a st_b alpha cregs vectors a b (preserved : bool array) =
  Array.fill preserved 0 (Array.length preserved) true;
  let result = cregs.(0) in
  try
    for v = 0 to Array.length vectors - 1 do
      let vec = vectors.(v) in
      run_seq st_a alpha cregs a vec;
      run_seq st_b alpha cregs b vec;
      if st_a.Exec.regs.(result) <> st_b.Exec.regs.(result) then raise Exit;
      for i = 1 to Array.length cregs - 1 do
        if st_a.Exec.regs.(cregs.(i)) <> st_b.Exec.regs.(cregs.(i)) then
          preserved.(i) <- false
      done
    done;
    true
  with Exit -> false

let compare_seq (a : int array) b =
  let c = compare (Array.length a) (Array.length b) in
  if c <> 0 then c else compare a b

let mine ?(cfg = Ggpu_fgpu.Config.default) ?(space = default_space)
    ?(budget = 500_000) ?(max_rules = 2048) ?domains
    ?(lhs_filter = compiler_shape) ?(fp_vectors = 16) ?(verify_extra = 256)
    ?(seed = 42) () =
  let domains =
    match domains with Some d -> d | None -> Ggpu_par.Parallel.default_domains ()
  in
  let alpha = build_alphabet cfg space in
  let cregs = Array.of_list space.regs in
  let nregs = Array.length cregs in
  let fps = fingerprint_vectors ~nregs ~seed ~n:fp_vectors in
  let vvs = verify_vectors ~nregs ~seed ~extra:verify_extra in
  (* Phase 1: enumerate + fingerprint, fanned out on the first
     instruction index. *)
  let n = Array.length alpha in
  let nchunks = max 1 (min (4 * domains) n) in
  let chunks =
    List.init nchunks (fun c ->
        Array.of_list
          (List.filter (fun i -> i mod nchunks = c) (List.init n Fun.id)))
  in
  let chunk_budget = 1 + (budget / nchunks) in
  let results =
    Ggpu_par.Parallel.map ~domains
      (fun firsts ->
        let st = Exec.create () in
        let tbl : (int, int array list ref) Hashtbl.t = Hashtbl.create 4096 in
        let emit cand =
          let fp = fingerprint st alpha cregs fps cand in
          match Hashtbl.find_opt tbl fp with
          | Some l -> l := cand :: !l
          | None -> Hashtbl.add tbl fp (ref [ cand ])
        in
        let count, truncated =
          enumerate alpha ~max_len:space.max_len ~result:cregs.(0) ~firsts
            ~budget:chunk_budget emit
        in
        (tbl, count, truncated))
      chunks
  in
  let buckets : (int, int array list ref) Hashtbl.t = Hashtbl.create 65536 in
  let candidates = ref 0 and truncated = ref false in
  List.iter
    (fun (tbl, count, trunc) ->
      candidates := !candidates + count;
      truncated := !truncated || trunc;
      Hashtbl.iter
        (fun fp l ->
          match Hashtbl.find_opt buckets fp with
          | Some acc -> acc := !l @ !acc
          | None -> Hashtbl.add buckets fp (ref !l))
        tbl)
    results;
  (* Phase 2: per-bucket verification and rule emission, fanned out
     over bucket groups. *)
  let bucket_list =
    Hashtbl.fold (fun _ l acc -> !l :: acc) buckets []
    |> List.filter (fun l -> match l with [] | [ _ ] -> false | _ -> true)
  in
  let ngroups = max 1 (min (4 * domains) (List.length bucket_list)) in
  let groups = Array.make ngroups [] in
  List.iteri (fun i b -> groups.(i mod ngroups) <- b :: groups.(i mod ngroups))
    bucket_list;
  let mined =
    Ggpu_par.Parallel.map ~domains
      (fun bucket_group ->
        let st_a = Exec.create () and st_b = Exec.create () in
        let preserved = Array.make nregs true in
        let rules = ref [] and pairs = ref 0 in
        List.iter
          (fun members ->
            let sorted =
              List.sort
                (fun a b ->
                  let c = compare (seq_cost_of alpha a) (seq_cost_of alpha b) in
                  if c <> 0 then c else compare_seq a b)
                members
            in
            let arr = Array.of_list sorted in
            let min_cost = seq_cost_of alpha arr.(0) in
            Array.iter
              (fun lhs ->
                let lhs_cost = seq_cost_of alpha lhs in
                if lhs_cost > min_cost then begin
                  let lhs_insns = seq_insns alpha lhs in
                  if lhs_filter lhs_insns then begin
                    let lhs_mask = seq_mention_mask alpha lhs in
                    try
                      Array.iter
                        (fun rep ->
                          let rep_cost = seq_cost_of alpha rep in
                          if rep_cost < lhs_cost
                             && seq_mention_mask alpha rep land lnot lhs_mask = 0
                          then begin
                            incr pairs;
                            if verify st_a st_b alpha cregs vvs lhs rep preserved
                            then begin
                              let clobbers =
                                List.filteri
                                  (fun i _ -> i > 0 && not preserved.(i))
                                  (Array.to_list cregs)
                              in
                              let rule =
                                Rule.normalise
                                  {
                                    Rule.lhs = lhs_insns;
                                    rhs = seq_insns alpha rep;
                                    clobbers;
                                    saved = lhs_cost - rep_cost;
                                  }
                              in
                              rules := rule :: !rules;
                              raise Exit
                            end
                          end)
                        arr
                    with Exit -> ()
                  end
                end)
              arr)
          bucket_group;
        (!rules, !pairs))
      (Array.to_list groups)
  in
  let verified_pairs = List.fold_left (fun acc (_, p) -> acc + p) 0 mined in
  let all_rules = List.concat_map fst mined in
  (* Rank by savings then shorter lhs (deterministic tiebreak on the
     serialised normal form), keep one rule per lhs — the peephole pass
     applies the first match, so a second rhs for the same pattern is
     dead weight — and cap the table. *)
  let ranked =
    List.sort
      (fun (a : Rule.t) (b : Rule.t) ->
        let c = compare b.saved a.saved in
        if c <> 0 then c
        else
          let c = compare (List.length a.lhs) (List.length b.lhs) in
          if c <> 0 then c else compare (Rule.to_line a) (Rule.to_line b))
      all_rules
  in
  let seen_lhs = Hashtbl.create 1024 in
  let deduped =
    List.filter
      (fun (r : Rule.t) ->
        let key = List.map Fgpu_isa.encode r.lhs in
        if Hashtbl.mem seen_lhs key then false
        else begin
          Hashtbl.add seen_lhs key ();
          true
        end)
      ranked
  in
  let rules = List.filteri (fun i _ -> i < max_rules) deduped in
  {
    rules;
    stats =
      {
        alphabet = n;
        candidates = !candidates;
        buckets = Hashtbl.length buckets;
        verified_pairs;
        truncated = !truncated;
      };
  }
