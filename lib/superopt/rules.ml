(* The checked-in rule table.

   [Rules_table.lines] is machine-generated: the output of [mine] over
   {!Search.default_space} with the default budget and seed, serialised
   through {!Rule.to_line} (hex ISA words, so every entry re-parses
   through the real decoder).  Regenerate with

     gpuplanner superopt mine --update

   which re-runs the search and rewrites lib/superopt/rules_table.ml in
   place.  Hand edits are legal (the format is the contract, not the
   provenance) but pointless: the miner reproduces the table
   deterministically. *)

let builtin_lines : string list = Rules_table.lines

let parse_lines lines =
  List.filter_map
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then None else Some (Rule.of_line line))
    lines

let builtin = lazy (parse_lines builtin_lines)
let default () = Lazy.force builtin

let load_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      parse_lines (List.rev !lines))

let save_file path rules =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "# ggpu_superopt rule table: lhs => rhs ; clobbers=... ; saves=cycles\n";
      output_string oc "# words are hex-encoded FGPU ISA instructions (Fgpu_isa.encode)\n";
      List.iter (fun r -> output_string oc (Rule.to_line r ^ "\n")) rules)
