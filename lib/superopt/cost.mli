(** Cycle cost of instructions under the simulator's per-op latency
    model: [beats] per issue, divider serialisation for Div/Rem,
    multiplier completion latency for Mul, branch penalty for control
    flow, cache hit latency for memory. *)

val insn_cost : Ggpu_fgpu.Config.t -> Ggpu_isa.Fgpu_isa.t -> int
val seq_cost : Ggpu_fgpu.Config.t -> Ggpu_isa.Fgpu_isa.t list -> int
