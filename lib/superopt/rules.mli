(** The checked-in, machine-generated rule table (see
    [gpuplanner superopt mine --update]) plus text-file IO.  File
    format: one {!Rule.to_line} entry per line; blank lines and
    [#] comments ignored. *)

val builtin_lines : string list
val default : unit -> Rule.t list

val load_file : string -> Rule.t list
(** @raise Rule.Parse_error on malformed entries. *)

val save_file : string -> Rule.t list -> unit
