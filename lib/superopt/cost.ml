(* Per-instruction cycle cost, derived from the simulator's timing
   model ({!Ggpu_fgpu.Gpu.do_issue}): every issue occupies the vector
   pipeline for [beats] cycles (wavefront_size / pes), a division or
   remainder serialises the shared iterative divider for
   [wavefront_size * div_latency] extra cycles, a multiply adds its
   completion latency to the wavefront's critical path, a taken branch
   pays the flush penalty, and memory operations pay at least the
   cache hit latency.  The search ranks candidates with these costs,
   so "cheapest representative" means cheapest in simulated cycles for
   a full wavefront, not fewest instructions: removing one plain ALU
   instruction saves [beats] cycles per wavefront execution, removing
   a divide saves three orders of magnitude more. *)

open Ggpu_isa

let insn_cost (cfg : Ggpu_fgpu.Config.t) (i : Fgpu_isa.t) =
  let base = Ggpu_fgpu.Config.beats cfg + cfg.issue_overhead in
  let alu_extra op =
    match op with
    | Fgpu_isa.Div | Fgpu_isa.Rem -> cfg.wavefront_size * cfg.div_latency
    | Fgpu_isa.Mul -> cfg.mul_latency
    | _ -> 0
  in
  match i with
  | Alu (op, _, _, _) | Alui (op, _, _, _) -> base + alu_extra op
  | Lui _ | Li _ -> base
  | Lw _ | Sw _ -> base + cfg.cache.hit_latency
  | Branch _ | Jump _ -> base + cfg.branch_penalty (* taken, worst case *)
  | Special _ | Barrier | Ret -> base

let seq_cost cfg l = List.fold_left (fun acc i -> acc + insn_cost cfg i) 0 l
