(* RV32IM functional + timing simulator.

   A Harvard-style machine: the program is a decoded instruction array
   indexed by pc/4; data memory is a word array.  Semantics follow the
   RISC-V unprivileged specification (including division corner cases:
   divide-by-zero yields -1 / the dividend, signed overflow wraps).
   [Ecall] halts the machine - the kernel compiler emits it as the final
   instruction. *)

open Ggpu_isa

type stats = {
  mutable cycles : int;
  mutable instructions : int;
  mutable loads : int;
  mutable stores : int;
  mutable branches : int;
  mutable taken_branches : int;
}

type t = {
  program : Rv32.t array;
  mem : int32 array; (* word-addressed data memory *)
  regs : int32 array;
  timing : Timing_model.t;
  stats : stats;
  mutable pc : int; (* byte address *)
  mutable halted : bool;
}

exception Trap of string

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

let create ?(timing = Timing_model.cv32e40p) ~mem_words ~program () =
  {
    program;
    mem = Array.make mem_words 0l;
    regs = Array.make 32 0l;
    timing;
    stats =
      {
        cycles = 0;
        instructions = 0;
        loads = 0;
        stores = 0;
        branches = 0;
        taken_branches = 0;
      };
    pc = 0;
    halted = false;
  }

let stats t = t.stats
let halted t = t.halted
let mem_words t = Array.length t.mem
let pc t = t.pc
let set_pc t pc = t.pc <- pc

let read_reg t r = if r = 0 then 0l else t.regs.(r)
let write_reg t r v = if r <> 0 then t.regs.(r) <- v

let check_word_addr t addr =
  if addr land 3 <> 0 then trap "misaligned access at 0x%x" addr;
  let w = addr lsr 2 in
  if w < 0 || w >= Array.length t.mem then trap "access out of memory at 0x%x" addr;
  w

let load_word t ~addr = t.mem.(check_word_addr t addr)
let store_word t ~addr v = t.mem.(check_word_addr t addr) <- v

(* Bulk accessors used by the benchmark harness. *)
let write_block t ~addr values =
  Array.iteri (fun i v -> store_word t ~addr:(addr + (4 * i)) v) values

let read_block t ~addr ~len =
  Array.init len (fun i -> load_word t ~addr:(addr + (4 * i)))

let set_reg = write_reg
let get_reg = read_reg

let u32_lt a b =
  (* unsigned comparison on int32 *)
  Int32.unsigned_compare a b < 0

let srl a sh = Int32.shift_right_logical a (sh land 31)
let sra a sh = Int32.shift_right a (sh land 31)
let sll a sh = Int32.shift_left a (sh land 31)

let div_signed a b =
  if b = 0l then -1l
  else if a = Int32.min_int && b = -1l then Int32.min_int
  else Int32.div a b

let rem_signed a b =
  if b = 0l then a
  else if a = Int32.min_int && b = -1l then 0l
  else Int32.rem a b

let div_unsigned a b = if b = 0l then -1l else Int32.unsigned_div a b
let rem_unsigned a b = if b = 0l then a else Int32.unsigned_rem a b

let mulh a b =
  let p = Int64.mul (Int64.of_int32 a) (Int64.of_int32 b) in
  Int64.to_int32 (Int64.shift_right p 32)

(* Execute one instruction; updates pc, registers, memory and stats. *)
let step t =
  if t.halted then ()
  else begin
    let idx = t.pc lsr 2 in
    if idx < 0 || idx >= Array.length t.program then
      trap "pc 0x%x outside program" t.pc;
    let insn = t.program.(idx) in
    let rr = read_reg t and wr = write_reg t in
    let next = ref (t.pc + 4) in
    let taken = ref false in
    let branch cond off =
      t.stats.branches <- t.stats.branches + 1;
      if cond then begin
        taken := true;
        t.stats.taken_branches <- t.stats.taken_branches + 1;
        next := t.pc + off
      end
    in
    (match insn with
    | Rv32.Lui (rd, imm) -> wr rd (Int32.shift_left imm 12)
    | Rv32.Auipc (rd, imm) ->
        wr rd (Int32.add (Int32.of_int t.pc) (Int32.shift_left imm 12))
    | Rv32.Jal (rd, off) ->
        wr rd (Int32.of_int (t.pc + 4));
        taken := true;
        next := t.pc + off
    | Rv32.Jalr (rd, rs1, off) ->
        let target =
          Int32.to_int (Int32.add (rr rs1) (Int32.of_int off)) land lnot 1
        in
        wr rd (Int32.of_int (t.pc + 4));
        taken := true;
        next := target
    | Rv32.Beq (a, b, off) -> branch (rr a = rr b) off
    | Rv32.Bne (a, b, off) -> branch (rr a <> rr b) off
    | Rv32.Blt (a, b, off) -> branch (Int32.compare (rr a) (rr b) < 0) off
    | Rv32.Bge (a, b, off) -> branch (Int32.compare (rr a) (rr b) >= 0) off
    | Rv32.Bltu (a, b, off) -> branch (u32_lt (rr a) (rr b)) off
    | Rv32.Bgeu (a, b, off) -> branch (not (u32_lt (rr a) (rr b))) off
    | Rv32.Lw (rd, rs1, off) ->
        t.stats.loads <- t.stats.loads + 1;
        wr rd (load_word t ~addr:(Int32.to_int (rr rs1) + off))
    | Rv32.Sw (rs2, rs1, off) ->
        t.stats.stores <- t.stats.stores + 1;
        store_word t ~addr:(Int32.to_int (rr rs1) + off) (rr rs2)
    | Rv32.Addi (rd, rs1, i) -> wr rd (Int32.add (rr rs1) i)
    | Rv32.Slti (rd, rs1, i) ->
        wr rd (if Int32.compare (rr rs1) i < 0 then 1l else 0l)
    | Rv32.Sltiu (rd, rs1, i) -> wr rd (if u32_lt (rr rs1) i then 1l else 0l)
    | Rv32.Xori (rd, rs1, i) -> wr rd (Int32.logxor (rr rs1) i)
    | Rv32.Ori (rd, rs1, i) -> wr rd (Int32.logor (rr rs1) i)
    | Rv32.Andi (rd, rs1, i) -> wr rd (Int32.logand (rr rs1) i)
    | Rv32.Slli (rd, rs1, sh) -> wr rd (sll (rr rs1) sh)
    | Rv32.Srli (rd, rs1, sh) -> wr rd (srl (rr rs1) sh)
    | Rv32.Srai (rd, rs1, sh) -> wr rd (sra (rr rs1) sh)
    | Rv32.Add (rd, a, b) -> wr rd (Int32.add (rr a) (rr b))
    | Rv32.Sub (rd, a, b) -> wr rd (Int32.sub (rr a) (rr b))
    | Rv32.Sll (rd, a, b) -> wr rd (sll (rr a) (Int32.to_int (rr b)))
    | Rv32.Slt (rd, a, b) ->
        wr rd (if Int32.compare (rr a) (rr b) < 0 then 1l else 0l)
    | Rv32.Sltu (rd, a, b) -> wr rd (if u32_lt (rr a) (rr b) then 1l else 0l)
    | Rv32.Xor (rd, a, b) -> wr rd (Int32.logxor (rr a) (rr b))
    | Rv32.Srl (rd, a, b) -> wr rd (srl (rr a) (Int32.to_int (rr b)))
    | Rv32.Sra (rd, a, b) -> wr rd (sra (rr a) (Int32.to_int (rr b)))
    | Rv32.Or (rd, a, b) -> wr rd (Int32.logor (rr a) (rr b))
    | Rv32.And (rd, a, b) -> wr rd (Int32.logand (rr a) (rr b))
    | Rv32.Mul (rd, a, b) -> wr rd (Int32.mul (rr a) (rr b))
    | Rv32.Mulh (rd, a, b) -> wr rd (mulh (rr a) (rr b))
    | Rv32.Div (rd, a, b) -> wr rd (div_signed (rr a) (rr b))
    | Rv32.Divu (rd, a, b) -> wr rd (div_unsigned (rr a) (rr b))
    | Rv32.Rem (rd, a, b) -> wr rd (rem_signed (rr a) (rr b))
    | Rv32.Remu (rd, a, b) -> wr rd (rem_unsigned (rr a) (rr b))
    | Rv32.Ecall -> t.halted <- true);
    t.stats.instructions <- t.stats.instructions + 1;
    t.stats.cycles <-
      t.stats.cycles + Timing_model.cost t.timing insn ~taken:!taken;
    if not t.halted then t.pc <- !next
  end

exception Out_of_fuel of int
exception Watchdog_timeout of int

(* Run to completion.  [fuel] bounds the instruction count;
   [max_cycles] is a watchdog over simulated cycles, so corrupted
   control flow (a fault-injected pc stuck in a loop) terminates as a
   classifiable hang rather than burning the whole fuel budget. *)
let run ?(fuel = 500_000_000) ?max_cycles t =
  Ggpu_obs.Trace.with_span "rv32.run" @@ fun () ->
  let t0_ns = Ggpu_obs.Metrics.now_ns () in
  let executed = ref 0 in
  while not t.halted do
    if !executed > fuel then raise (Out_of_fuel !executed);
    (match max_cycles with
    | Some limit when t.stats.cycles > limit ->
        raise (Watchdog_timeout t.stats.cycles)
    | _ -> ());
    step t;
    incr executed
  done;
  if Ggpu_obs.Metrics.ambient_enabled () then begin
    let wall_ns = max 1 (Ggpu_obs.Metrics.now_ns () - t0_ns) in
    Ggpu_obs.Metrics.count "sim.rv32.runs" 1;
    Ggpu_obs.Metrics.count "sim.rv32.cycles" t.stats.cycles;
    Ggpu_obs.Metrics.count "sim.rv32.instructions" t.stats.instructions;
    Ggpu_obs.Metrics.count "sim.rv32.wall_ns" wall_ns;
    Ggpu_obs.Metrics.record_gauge "sim.rv32.kcycles_per_s"
      (t.stats.cycles * 1_000_000 / wall_ns)
  end;
  t.stats

let pp_stats fmt s =
  Format.fprintf fmt
    "cycles=%d instrs=%d loads=%d stores=%d branches=%d taken=%d" s.cycles
    s.instructions s.loads s.stores s.branches s.taken_branches
