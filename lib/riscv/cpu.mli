(** RV32IM functional + timing simulator: a Harvard machine with a
    decoded program array and a word-addressed data memory. Semantics
    follow the RISC-V unprivileged specification, including division
    corner cases; [Ecall] halts. *)

type stats = {
  mutable cycles : int;
  mutable instructions : int;
  mutable loads : int;
  mutable stores : int;
  mutable branches : int;
  mutable taken_branches : int;
}

type t

exception Trap of string
exception Out_of_fuel of int

exception Watchdog_timeout of int
(** Simulated cycles passed the [max_cycles] watchdog. *)

val create :
  ?timing:Timing_model.t ->
  mem_words:int ->
  program:Ggpu_isa.Rv32.t array ->
  unit ->
  t

val stats : t -> stats
val halted : t -> bool
val mem_words : t -> int

val pc : t -> int
(** Current program counter (byte address). *)

val set_pc : t -> int -> unit
(** Overwrite the program counter (fault-injection hook). *)

val get_reg : t -> int -> int32
val set_reg : t -> int -> int32 -> unit

val load_word : t -> addr:int -> int32
(** @raise Trap on misaligned or out-of-range addresses. *)

val store_word : t -> addr:int -> int32 -> unit
val write_block : t -> addr:int -> int32 array -> unit
val read_block : t -> addr:int -> len:int -> int32 array

val step : t -> unit
(** Execute one instruction (no-op once halted).
    @raise Trap on bad memory accesses or a wild pc. *)

val run : ?fuel:int -> ?max_cycles:int -> t -> stats
(** Run to the halting [Ecall].
    @raise Out_of_fuel after [fuel] instructions (default 5e8).
    @raise Watchdog_timeout when simulated cycles exceed [max_cycles]. *)

val pp_stats : Format.formatter -> stats -> unit
