(* 32-bit two's-complement arithmetic on native OCaml ints.

   The simulators' hot paths keep register files and memories as [int
   array] instead of [int32 array]: an [int32 array] stores a boxed
   pointer per element, so every register write allocates, while native
   ints are immediate.  The canonical representation here is the
   sign-extended value: an [int] holds exactly the value of the int32 it
   models (so [-1l] is [-1], not [0xFFFFFFFF]).  Under that invariant
   equality, signed comparison, division and the bitwise operators on
   native ints coincide with their [Int32] counterparts directly;
   add/sub/mul/shift-left need one [sx] to fold bit 31 back into the
   sign.  All operations assume (and re-establish) canonical inputs. *)

let min_i32 = -0x8000_0000
let mask = 0xFFFF_FFFF

(* Sign-extend the low 32 bits of [v]; identity on canonical values. *)
let sx v = (v land mask) - ((v land 0x8000_0000) lsl 1)

let of_int32 = Int32.to_int (* sign-extends: already canonical *)
let to_int32 = Int32.of_int (* truncates to 32 bits: exact on canonical *)
let add a b = sx (a + b)
let sub a b = sx (a - b)
let mul a b = sx (a * b)

(* RISC-V M division semantics, shared by the RV32 and G-GPU models. *)
let div_signed a b =
  if b = 0 then -1 else if a = min_i32 && b = -1 then min_i32 else a / b

let rem_signed a b =
  if b = 0 then a else if a = min_i32 && b = -1 then 0 else a mod b

let sll a n = sx (a lsl (n land 31))
let srl a n = sx ((a land mask) lsr (n land 31))
let sra a n = a asr (n land 31)
let ult a b = a land mask < b land mask
let flip v ~bit = sx (v lxor (1 lsl bit))
