(** Predecoded G-GPU instructions: [Fgpu_isa.t] flattened once into a
    record of immediates (constant constructors, ints, bools) so the
    simulator's issue loop neither re-discriminates the variant per
    lane-group nor touches a boxed [int32]. Immediates are canonical
    {!I32} native ints, with [Lui]'s shift pre-applied. *)

type kind =
  | KAlu
  | KAlui
  | KLoadImm  (** [Lui] and [Li]: both write a precomputed [imm] *)
  | KLw
  | KSw
  | KBranch
  | KJump
  | KSpecial
  | KBarrier
  | KRet

type t = {
  kind : kind;
  aop : Fgpu_isa.alu_op;  (** KAlu / KAlui *)
  cnd : Fgpu_isa.cond;  (** KBranch *)
  sp : Fgpu_isa.special;  (** KSpecial *)
  rd : int;  (** destination; the rs2 source for KSw / KBranch *)
  rs1 : int;
  rs2 : int;
  imm : int;  (** canonical i32 immediate / byte offset / target index *)
  is_store : bool;
  uses_div : bool;
  uses_mul : bool;
}

val of_insn : Fgpu_isa.t -> t
val of_program : Fgpu_isa.t array -> t array
