(** 32-bit two's-complement arithmetic on native ints, in the canonical
    sign-extended representation: an [int] holds exactly the value of
    the int32 it models. Lets the simulators keep registers and memory
    as unboxed [int array]s while agreeing bit-for-bit with [Int32]
    (property-tested against it in the test suite). *)

val min_i32 : int
val mask : int
(** [0xFFFFFFFF]. *)

val sx : int -> int
(** Sign-extend the low 32 bits; identity on canonical values. *)

val of_int32 : int32 -> int
val to_int32 : int -> int32
val add : int -> int -> int
val sub : int -> int -> int
val mul : int -> int -> int

val div_signed : int -> int -> int
(** RISC-V M semantics: [x/0 = -1], [min_int/-1 = min_int]. *)

val rem_signed : int -> int -> int
(** RISC-V M semantics: [x rem 0 = x], [min_int rem -1 = 0]. *)

val sll : int -> int -> int
val srl : int -> int -> int
val sra : int -> int -> int
(** Shifts use the low 5 bits of the shift amount. *)

val ult : int -> int -> bool
(** Unsigned 32-bit comparison. *)

val flip : int -> bit:int -> int
(** Flip one bit (0..31), re-canonicalising the sign. *)
