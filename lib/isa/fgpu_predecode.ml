(* Predecoded G-GPU instructions.

   [Fgpu_isa.t] is the right type for assemblers and encoders, but a
   poor one for an interpreter: matching a 11-constructor variant per
   lane-group per issue re-discriminates the same instruction millions
   of times, and the boxed [int32] immediates allocate on every read.
   The simulator instead decodes the program once into this flat record:
   every field is an immediate (constant constructors, ints, bools), the
   per-instruction properties the scheduler needs (store? uses the
   divider? the multiplier?) are precomputed, and immediates are
   converted to the canonical native-int representation ({!I32}) up
   front — [Lui]'s shift included, so issue just writes [imm]. *)

type kind =
  | KAlu
  | KAlui
  | KLoadImm (* Lui and Li collapse: both write a precomputed [imm] *)
  | KLw
  | KSw
  | KBranch
  | KJump
  | KSpecial
  | KBarrier
  | KRet

type t = {
  kind : kind;
  aop : Fgpu_isa.alu_op; (* KAlu / KAlui *)
  cnd : Fgpu_isa.cond; (* KBranch *)
  sp : Fgpu_isa.special; (* KSpecial *)
  rd : int; (* destination; rs2 source for KSw / KBranch *)
  rs1 : int;
  rs2 : int;
  imm : int; (* canonical i32 immediate / byte offset / target index *)
  is_store : bool;
  uses_div : bool;
  uses_mul : bool;
}

let nop_like kind =
  {
    kind;
    aop = Fgpu_isa.Add;
    cnd = Fgpu_isa.Eq;
    sp = Fgpu_isa.Lid;
    rd = 0;
    rs1 = 0;
    rs2 = 0;
    imm = 0;
    is_store = false;
    uses_div = false;
    uses_mul = false;
  }

let of_insn (insn : Fgpu_isa.t) =
  match insn with
  | Fgpu_isa.Alu (op, rd, rs1, rs2) ->
      {
        (nop_like KAlu) with
        aop = op;
        rd;
        rs1;
        rs2;
        uses_div = (match op with Fgpu_isa.Div | Fgpu_isa.Rem -> true | _ -> false);
        uses_mul = (match op with Fgpu_isa.Mul -> true | _ -> false);
      }
  | Fgpu_isa.Alui (op, rd, rs1, imm) ->
      {
        (nop_like KAlui) with
        aop = op;
        rd;
        rs1;
        imm = I32.of_int32 imm;
        uses_div = (match op with Fgpu_isa.Div | Fgpu_isa.Rem -> true | _ -> false);
        uses_mul = (match op with Fgpu_isa.Mul -> true | _ -> false);
      }
  | Fgpu_isa.Lui (rd, imm) ->
      { (nop_like KLoadImm) with rd; imm = I32.sll (I32.of_int32 imm) 16 }
  | Fgpu_isa.Li (rd, imm) -> { (nop_like KLoadImm) with rd; imm = I32.of_int32 imm }
  | Fgpu_isa.Lw (rd, rs1, off) -> { (nop_like KLw) with rd; rs1; imm = off }
  | Fgpu_isa.Sw (rs2, rs1, off) ->
      { (nop_like KSw) with rd = rs2; rs1; imm = off; is_store = true }
  | Fgpu_isa.Branch (c, rs1, rs2, off) ->
      { (nop_like KBranch) with cnd = c; rs1; rd = rs2; imm = off }
  | Fgpu_isa.Jump target -> { (nop_like KJump) with imm = target }
  | Fgpu_isa.Special (sp, rd) -> { (nop_like KSpecial) with sp; rd }
  | Fgpu_isa.Barrier -> nop_like KBarrier
  | Fgpu_isa.Ret -> nop_like KRet

let of_program (program : Fgpu_isa.t array) = Array.map of_insn program
