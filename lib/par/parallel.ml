(* Domain pool for the embarrassingly parallel parts of the flow.

   The version grid (12 Table-I syntheses, 4 physical implementations)
   gives every spec its own freshly generated netlist, and the tech
   models are immutable, so specs can run on separate OCaml 5 domains
   with no shared mutable state.  Work is pulled off an atomic counter
   (work stealing) because syntheses have very uneven cost — the 8-CU
   versions dominate — and a static partition would leave domains
   idle. *)

let default_domains () = Domain.recommended_domain_count ()

let map ?domains f xs =
  let inputs = Array.of_list xs in
  let n = Array.length inputs in
  let workers =
    max 1 (min n (match domains with Some d -> d | None -> default_domains ()))
  in
  if workers <= 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
             (match f inputs.(i) with
             | v -> Some (Ok v)
             | exception e -> Some (Error e)));
          go ()
        end
      in
      go ()
    in
    let spawned = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    (* re-raise the first failure in input order, as sequential map would *)
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error e) -> raise e
         | None -> assert false)
  end

(* Parallel map that also collects metrics.  Each item gets a fresh
   registry, so the merged snapshot is a fold over per-item snapshots in
   input order — independent of which domain stole which item.  Metric
   values are integral (see {!Ggpu_obs.Metrics}), so the merge is
   associative and commutative and the result is bit-identical for any
   domain count. *)
let map_collect ?domains f xs =
  let pairs =
    map ?domains
      (fun x ->
        let reg = Ggpu_obs.Metrics.create () in
        let v = f reg x in
        (v, Ggpu_obs.Metrics.snapshot reg))
      xs
  in
  let values = List.map fst pairs in
  let merged =
    Ggpu_obs.Metrics.merge_all (List.map snd pairs)
  in
  (values, merged)
