(* Domain pool for the embarrassingly parallel parts of the flow.

   The version grid (12 Table-I syntheses, 4 physical implementations)
   gives every spec its own freshly generated netlist, and the tech
   models are immutable, so specs can run on separate OCaml 5 domains
   with no shared mutable state.  Work is pulled off an atomic counter
   (work stealing) because syntheses have very uneven cost — the 8-CU
   versions dominate — and a static partition would leave domains
   idle. *)

let default_domains () = Domain.recommended_domain_count ()

(* Worker-side span capture: which domain ran an item, when, for how
   long.  Captured inside the application itself — the only place that
   knows the stealing outcome — so the serve engine can turn each
   fan-out item into an execution span on the worker's own timeline. *)
type timing = { t_start_ns : int; t_dur_ns : int; t_domain : int }

let timed_apply f x =
  let t0 = Ggpu_obs.Metrics.now_ns () in
  let v = f x in
  let t1 = Ggpu_obs.Metrics.now_ns () in
  ( v,
    {
      t_start_ns = t0;
      t_dur_ns = max 0 (t1 - t0);
      t_domain = (Domain.self () :> int);
    } )

(* One fan-out: [n] items pulled off [next] by whoever gets there
   first; each completed item bumps [completed], and whoever completes
   the last one broadcasts the owner's condition variable. *)
type job = {
  run : int -> unit;  (* must not raise: failures land in the results *)
  n : int;
  next : int Atomic.t;
  completed : int Atomic.t;
}

let work_job ~m ~done_cv job =
  let rec go () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.n then begin
      job.run i;
      if Atomic.fetch_and_add job.completed 1 = job.n - 1 then begin
        Mutex.lock m;
        Condition.broadcast done_cv;
        Mutex.unlock m
      end;
      go ()
    end
  in
  go ()

(* Run [f] over [xs] with [participants] domains pulling work: the
   caller plus each domain in [workers] that is parked on [submit].
   [submit] installs the job where workers can see it; [None] means
   run everything on the caller (no workers). *)
let run_map ~submit ~m ~done_cv f xs =
  let inputs = Array.of_list xs in
  let n = Array.length inputs in
  let results = Array.make n None in
  let run i =
    results.(i) <-
      (match f inputs.(i) with
      | v -> Some (Ok v)
      | exception e -> Some (Error e))
  in
  let job = { run; n; next = Atomic.make 0; completed = Atomic.make 0 } in
  submit job;
  work_job ~m ~done_cv job;
  Mutex.lock m;
  while Atomic.get job.completed < n do
    Condition.wait done_cv m
  done;
  Mutex.unlock m;
  (* re-raise the first failure in input order, as sequential map would *)
  Array.to_list results
  |> List.map (function
       | Some (Ok v) -> v
       | Some (Error e) -> raise e
       | None -> assert false)

module Pool = struct
  type t = {
    n_domains : int;  (* workers + the participating caller *)
    m : Mutex.t;
    cv : Condition.t;  (* wakes parked workers: new job or stop *)
    done_cv : Condition.t;  (* wakes the caller: job drained *)
    mutable gen : int;  (* bumped per job so workers never re-run one *)
    mutable job : job option;
    mutable stop : bool;
    mutable workers : unit Domain.t list;
  }

  let worker t () =
    let rec loop last_gen =
      Mutex.lock t.m;
      while (not t.stop) && t.gen = last_gen do
        Condition.wait t.cv t.m
      done;
      if t.stop then Mutex.unlock t.m
      else begin
        let gen = t.gen in
        let job = Option.get t.job in
        Mutex.unlock t.m;
        work_job ~m:t.m ~done_cv:t.done_cv job;
        loop gen
      end
    in
    loop 0

  let create ?domains () =
    let n_domains =
      max 1 (match domains with Some d -> d | None -> default_domains ())
    in
    let t =
      {
        n_domains;
        m = Mutex.create ();
        cv = Condition.create ();
        done_cv = Condition.create ();
        gen = 0;
        job = None;
        stop = false;
        workers = [];
      }
    in
    t.workers <- List.init (n_domains - 1) (fun _ -> Domain.spawn (worker t));
    t

  let size t = t.n_domains

  let map t f xs =
    Mutex.lock t.m;
    if t.stop then begin
      Mutex.unlock t.m;
      invalid_arg "Parallel.Pool.map: pool is shut down"
    end;
    Mutex.unlock t.m;
    if t.n_domains <= 1 || List.length xs <= 1 then List.map f xs
    else
      let submit job =
        Mutex.lock t.m;
        t.job <- Some job;
        t.gen <- t.gen + 1;
        Condition.broadcast t.cv;
        Mutex.unlock t.m
      in
      run_map ~submit ~m:t.m ~done_cv:t.done_cv f xs

  let shutdown t =
    Mutex.lock t.m;
    let already = t.stop in
    t.stop <- true;
    Condition.broadcast t.cv;
    Mutex.unlock t.m;
    if not already then begin
      List.iter Domain.join t.workers;
      t.workers <- []
    end

  let map_timed t f xs = map t (timed_apply f) xs

  (* map_collect defined below, after the snapshot-merging helper *)
  let map_collect_with map_fn f xs =
    let pairs =
      map_fn
        (fun x ->
          let reg = Ggpu_obs.Metrics.create () in
          let v = f reg x in
          (v, Ggpu_obs.Metrics.snapshot reg))
        xs
    in
    let values = List.map fst pairs in
    let merged = Ggpu_obs.Metrics.merge_all (List.map snd pairs) in
    (values, merged)

  let map_collect t f xs = map_collect_with (map t) f xs
end

let map ?domains f xs =
  let n = List.length xs in
  let workers =
    max 1 (min n (match domains with Some d -> d | None -> default_domains ()))
  in
  if workers <= 1 then List.map f xs
  else begin
    (* transient pool: spawn, run the one job, join — the historical
       behaviour, kept for one-shot grids *)
    let m = Mutex.create () in
    let done_cv = Condition.create () in
    let pending = ref None in
    let spawned = ref [] in
    let submit job =
      pending := Some job;
      spawned :=
        List.init (workers - 1) (fun _ ->
            Domain.spawn (fun () -> work_job ~m ~done_cv job))
    in
    Fun.protect
      ~finally:(fun () -> List.iter Domain.join !spawned)
      (fun () ->
        let r = run_map ~submit ~m ~done_cv f xs in
        ignore !pending;
        r)
  end

(* Parallel map that also collects metrics.  Each item gets a fresh
   registry, so the merged snapshot is a fold over per-item snapshots in
   input order — independent of which domain stole which item.  Metric
   values are integral (see {!Ggpu_obs.Metrics}), so the merge is
   associative and commutative and the result is bit-identical for any
   domain count. *)
let map_collect ?domains f xs = Pool.map_collect_with (map ?domains) f xs
