(** Domain pool for the embarrassingly parallel parts of the flow
    (version-grid exploration).  Callers must only pass functions free
    of shared mutable state. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map over a work-stealing domain pool of
    [min domains (length xs)] domains (default
    {!default_domains}).  [~domains:1] degrades to [List.map].  If any
    application raises, the first failure in input order is re-raised
    after all domains have drained. *)

val map_collect :
  ?domains:int ->
  (Ggpu_obs.Metrics.t -> 'a -> 'b) ->
  'a list ->
  'b list * Ggpu_obs.Metrics.snapshot
(** Like {!map}, but hands each item a fresh metrics registry and
    returns the per-item snapshots merged in input order.  Because all
    metric values are integral, the merged snapshot is bit-identical
    for any [?domains], including 1. *)
