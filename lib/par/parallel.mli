(** Domain pool for the embarrassingly parallel parts of the flow
    (version-grid exploration).  Callers must only pass functions free
    of shared mutable state. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()]. *)

type timing = {
  t_start_ns : int;  (** wall clock at application start *)
  t_dur_ns : int;  (** elapsed, clamped non-negative *)
  t_domain : int;  (** the worker domain that ran the item *)
}
(** Per-item execution capture for {!Pool.map_timed}: since work
    stealing makes item placement a race, only the application itself
    can say which domain ran it and when — the serve engine renders
    these as per-worker execution spans. *)

val timed_apply : ('a -> 'b) -> 'a -> 'b * timing
(** Apply [f] on the calling domain, capturing its {!timing} — the
    sequential counterpart of {!Pool.map_timed}, so a poolless engine
    produces the same execution spans. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map over a work-stealing domain pool of
    [min domains (length xs)] domains (default
    {!default_domains}).  [~domains:1] degrades to [List.map].  If any
    application raises, the first failure in input order is re-raised
    after all domains have drained. *)

val map_collect :
  ?domains:int ->
  (Ggpu_obs.Metrics.t -> 'a -> 'b) ->
  'a list ->
  'b list * Ggpu_obs.Metrics.snapshot
(** Like {!map}, but hands each item a fresh metrics registry and
    returns the per-item snapshots merged in input order.  Because all
    metric values are integral, the merged snapshot is bit-identical
    for any [?domains], including 1. *)

(** {1 Persistent pool}

    {!map} spawns and joins its domains on every call, which is fine
    for one-shot grids but wasteful for a long-lived service issuing
    many small fan-outs.  A {!Pool.t} spawns its worker domains once;
    each {!Pool.map} hands them one job and reuses them.  Results are
    identical to {!map} — order-preserving, first failure in input
    order re-raised — only the domain lifetime differs. *)

module Pool : sig
  type t

  val create : ?domains:int -> unit -> t
  (** A pool of [domains] (default {!default_domains}) workers: the
      calling domain plus [domains - 1] spawned ones.  [~domains:1]
      spawns nothing and {!map} degrades to [List.map]. *)

  val size : t -> int
  (** Number of domains a {!map} call runs on (callers use this to size
      batches). *)

  val map : t -> ('a -> 'b) -> 'a list -> 'b list
  (** As {!Parallel.map} on the pool's domains.  The caller participates,
      so all [size t] domains work the job.  Not reentrant: one [map]
      at a time per pool.
      @raise Invalid_argument after {!shutdown}. *)

  val map_timed : t -> ('a -> 'b) -> 'a list -> ('b * timing) list
  (** As {!map}, additionally capturing each item's wall-clock window
      and worker domain.  Results (and failure semantics) are identical
      to {!map}; only the {!timing} rides along. *)

  val map_collect :
    t ->
    (Ggpu_obs.Metrics.t -> 'a -> 'b) ->
    'a list ->
    'b list * Ggpu_obs.Metrics.snapshot
  (** As {!Parallel.map_collect} on the pool's domains. *)

  val shutdown : t -> unit
  (** Join the worker domains.  Idempotent; subsequent {!map} calls
      raise. *)
end
