(* GPUPlanner command-line interface.

   Subcommands mirror the paper's Fig. 2 flow:

     gpuplanner synth   --cus 2 --freq 667          logic synthesis report
     gpuplanner map     --cus 1 --freq 667          print the optimisation map
     gpuplanner layout  --cus 8 --freq 667          full RTL-to-layout flow
     gpuplanner table1                              the 12 published versions
     gpuplanner compare [--kernel mat_mul]          RISC-V vs G-GPU
     gpuplanner run     --kernel copy --cus 4       simulate one kernel *)

open Cmdliner
open Ggpu_core

let tech_of_name = function
  | "65nm" -> Ok Ggpu_tech.Tech.default_65nm
  | "28nm" -> Ok Ggpu_tech.Tech.scaled_28nm
  | other -> Error (Printf.sprintf "unknown technology %s (65nm | 28nm)" other)

let tech_term =
  let doc = "Technology models to use: 65nm (default) or 28nm." in
  let arg = Arg.(value & opt string "65nm" & info [ "tech" ] ~doc ~docv:"NODE") in
  Term.(
    term_result ~usage:true
      (const (fun name ->
           Result.map_error (fun e -> `Msg e) (tech_of_name name))
      $ arg))

let cus_term =
  let doc = "Number of compute units (1..8, 16, 32 or 64)." in
  Arg.(value & opt int 1 & info [ "cus" ] ~doc ~docv:"N")

let freq_term =
  let doc = "Target frequency in MHz." in
  Arg.(value & opt int 500 & info [ "freq" ] ~doc ~docv:"MHZ")

(* Simulator execution-engine selection, shared by run/fi/bench.  Both
   engines are bit-identical in every observable; the flag exists for
   A/B throughput measurement and for falling back to the reference
   interpreter when debugging the threaded compiler itself. *)
let backend_conv =
  let parse s =
    match Ggpu_fgpu.Gpu.backend_of_string s with
    | Some b -> Ok b
    | None ->
        Error (`Msg (Printf.sprintf "unknown backend %S (interp | threaded)" s))
  in
  let print fmt b = Format.pp_print_string fmt (Ggpu_fgpu.Gpu.backend_name b) in
  Arg.conv (parse, print)

let backend_term =
  let doc =
    "Simulator lane-execution engine: $(b,threaded) (per-PC compiled \
     closures, the default) or $(b,interp) (tag-dispatch reference). \
     Simulated results are bit-identical either way."
  in
  Arg.(
    value
    & opt backend_conv Ggpu_fgpu.Gpu.Threaded
    & info [ "backend" ] ~doc ~docv:"ENGINE")

let sim_domains_term =
  let doc =
    "Domain fan-out for the functional phase $(i,inside) one simulation \
     (CU-parallel split). Simulated results are bit-identical for any \
     value; 1 disables the split."
  in
  Arg.(value & opt int 1 & info [ "sim-domains" ] ~doc ~docv:"D")

(* On subcommands with no job fan-out (run/compare) the CU-parallel
   split is the only domain knob, so --domains and --sim-domains name
   the same flag there. *)
let sim_domains_alias_term =
  let doc =
    "Domain fan-out for the functional phase inside one simulation \
     (CU-parallel split). Simulated results are bit-identical for any \
     value; 1 disables the split."
  in
  Arg.(value & opt int 1 & info [ "domains"; "sim-domains" ] ~doc ~docv:"D")

(* STA engine selection, shared by synth/dse/versions.  Both engines
   are bit-identical in every observable; the flag exists for A/B
   benchmarking of the CSR levelized sweep against the hashtable
   walker it replaced. *)
let sta_conv =
  let parse = function
    | "csr" -> Ok Ggpu_synth.Timing.Csr
    | "legacy" -> Ok Ggpu_synth.Timing.Legacy
    | other ->
        Error (`Msg (Printf.sprintf "unknown STA engine %S (csr | legacy)" other))
  in
  let print fmt i =
    Format.pp_print_string fmt
      (match i with Ggpu_synth.Timing.Csr -> "csr" | Ggpu_synth.Timing.Legacy -> "legacy")
  in
  Arg.conv (parse, print)

let sta_term =
  let doc =
    "Static-timing engine: $(b,csr) (levelized CSR sweep, the default) \
     or $(b,legacy) (hashtable worklist). Reports are bit-identical \
     either way."
  in
  Arg.(value & opt sta_conv Ggpu_synth.Timing.Csr & info [ "sta" ] ~doc ~docv:"ENGINE")

let placer_conv =
  let parse = function
    | "columns" -> Ok Flow.Columns
    | "analytic" -> Ok Flow.Analytic
    | other ->
        Error (`Msg (Printf.sprintf "unknown placer %S (columns | analytic)" other))
  in
  let print fmt p =
    Format.pp_print_string fmt
      (match p with Flow.Columns -> "columns" | Flow.Analytic -> "analytic")
  in
  Arg.conv (parse, print)

let place_term =
  let doc =
    "Floorplan engine: $(b,columns) (the estimator's stacked columns, \
     the default) or $(b,analytic) (eplace-style analytical global \
     placement)."
  in
  Arg.(value & opt placer_conv Flow.Columns & info [ "place" ] ~doc ~docv:"ENGINE")

let place_domains_term =
  let doc =
    "Domain fan-out for the analytical placer's gradient evaluation. \
     The placement is bit-identical for any value."
  in
  Arg.(value & opt int 1 & info [ "place-domains" ] ~doc ~docv:"D")

let area_term =
  let doc = "Optional area budget in mm2." in
  Arg.(value & opt (some float) None & info [ "max-area" ] ~doc ~docv:"MM2")

let power_term =
  let doc = "Optional power budget in W." in
  Arg.(value & opt (some float) None & info [ "max-power" ] ~doc ~docv:"W")

let spec_of ~cus ~freq ~area ~power =
  try Ok (Spec.make ~max_area_mm2:area ~max_power_w:power ~num_cus:cus ~freq_mhz:freq ())
  with Spec.Invalid_spec msg -> Error (`Msg msg)

let handle_dse_errors f =
  try f () with
  | Dse.Cannot_meet { period_ns; best_ns; detail } ->
      Printf.eprintf
        "cannot meet %.3f ns: best achievable %.3f ns (%.0f MHz); %s\n"
        period_ns best_ns (1000.0 /. best_ns) detail;
      exit 1

(* --- observability ------------------------------------------------------ *)

(* Every subcommand accepts --trace/--metrics/-v; the options record is
   threaded through [with_obs], which arms the tracer and the ambient
   metrics before the command body and exports/prints afterwards. *)
type obs = {
  trace : string option;
  metrics : bool;
  log_level : Logs.level option;
}

let obs_term =
  let trace =
    let doc =
      "Record a Chrome trace-event JSON file of the run (load in \
       chrome://tracing or ui.perfetto.dev)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")
  in
  let metrics =
    let doc = "Print the merged metrics snapshot after the command." in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  Term.(
    const (fun trace metrics log_level -> { trace; metrics; log_level })
    $ trace $ metrics $ Logs_cli.level ())

let with_obs obs f =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level obs.log_level;
  if Option.is_some obs.trace then Ggpu_obs.Trace.enable ();
  if obs.metrics then Ggpu_obs.Metrics.set_ambient_enabled true;
  let result = f () in
  (match obs.trace with
  | Some path ->
      Ggpu_obs.Trace.export ~path;
      Printf.printf "wrote trace %s (%d events)\n" path
        (List.length (Ggpu_obs.Trace.events ()))
  | None -> ());
  if obs.metrics then
    Format.printf "%a@." Ggpu_obs.Metrics.pp_snapshot
      (Ggpu_obs.Metrics.ambient_snapshot ());
  result

(* --- synth ------------------------------------------------------------- *)

let synth_run obs tech cus freq area power sta =
  match spec_of ~cus ~freq ~area ~power with
  | Error e -> Error e
  | Ok spec ->
      handle_dse_errors (fun () ->
          with_obs obs @@ fun () ->
          let syn = Flow.synthesise_timed ~tech ~sta spec in
          print_endline Ggpu_synth.Report.header;
          print_endline (Ggpu_synth.Report.row_to_string syn.Flow.syn_report);
          Printf.printf "(%d divisions, %d pipelines; see 'map' for detail)\n"
            (Map.divisions syn.Flow.syn_map)
            (Map.pipelines syn.Flow.syn_map);
          Format.printf "perf: %a@." Dse.pp_perf syn.Flow.syn_perf;
          Ok ())

let synth_term =
  Term.(
    term_result ~usage:false
      (const synth_run $ obs_term $ tech_term $ cus_term $ freq_term
     $ area_term $ power_term $ sta_term))

let synth_cmd =
  Cmd.v (Cmd.info "synth" ~doc:"Logic synthesis of one G-GPU version") synth_term

(* --- dse ---------------------------------------------------------------- *)

(* The exploration is where the planner spends its time, so it gets a
   first-class subcommand: same flow as [synth], surfaced under the
   name the profiling docs use ([gpuplanner dse --trace out.json]). *)
let dse_cmd =
  Cmd.v
    (Cmd.info "dse"
       ~doc:
         "Run the design-space exploration for one version (synth alias, \
          the natural target for --trace/--metrics)")
    synth_term

(* --- map --------------------------------------------------------------- *)

let map_cmd =
  let run obs tech cus freq area power =
    match spec_of ~cus ~freq ~area ~power with
    | Error e -> Error e
    | Ok spec ->
        handle_dse_errors (fun () ->
            with_obs obs @@ fun () ->
            let _nl, map, _report = Flow.synthesise ~tech spec in
            Format.printf "%a" Map.pp map;
            Ok ())
  in
  let term =
    Term.(
      term_result ~usage:false
        (const run $ obs_term $ tech_term $ cus_term $ freq_term $ area_term
       $ power_term))
  in
  Cmd.v
    (Cmd.info "map"
       ~doc:
         "Print the optimisation map (memory divisions and pipeline \
          insertions) for a target")
    term

(* --- layout ------------------------------------------------------------ *)

let layout_cmd =
  let check_determinism_term =
    let doc =
      "Re-run the analytical placer at 1, 2 and --place-domains domains \
       and exit 1 unless all floorplans are identical (requires --place \
       analytic). Used by CI."
    in
    Arg.(value & flag & info [ "check-determinism" ] ~doc)
  in
  let run obs tech cus freq area power sta place place_domains check_det =
    match spec_of ~cus ~freq ~area ~power with
    | Error e -> Error e
    | Ok spec ->
        if check_det && place <> Flow.Analytic then
          Error (`Msg "--check-determinism requires --place analytic")
        else
          handle_dse_errors (fun () ->
              with_obs obs @@ fun () ->
              let impl = Flow.implement ~tech ~sta ~place ~place_domains spec in
              Format.printf "%a" Flow.pp_implementation impl;
              print_string (Ggpu_layout.Render.render impl.Flow.floorplan);
              Format.printf "%a@." Ggpu_layout.Timing_post.pp
                impl.Flow.post_timing;
              Printf.printf "wirelength per layer (um):\n";
              Format.printf "%a" Ggpu_layout.Route.pp impl.Flow.route;
              Printf.printf "phases:";
              List.iter
                (fun (name, s) -> Printf.printf " %s=%.3fs" name s)
                impl.Flow.phases;
              Format.printf "@.perf: %a@." Dse.pp_perf impl.Flow.dse_perf;
              if check_det then begin
                (* the flow placed at [place_domains]; replaying the
                   placement on the explored netlist at other pool sizes
                   must reproduce that floorplan bit for bit *)
                let replay domains =
                  (Ggpu_layout.Place.place ~domains tech impl.Flow.netlist
                     ~num_cus:spec.Spec.num_cus)
                    .Ggpu_layout.Place.floorplan
                in
                let domains_checked =
                  List.sort_uniq Int.compare [ 1; 2; max 1 place_domains ]
                in
                let mismatches =
                  List.filter
                    (fun d -> replay d <> impl.Flow.floorplan)
                    domains_checked
                in
                if mismatches = [] then
                  Printf.printf
                    "placer determinism: floorplan identical at %s domain(s)\n"
                    (String.concat ", "
                       (List.map string_of_int domains_checked))
                else begin
                  Printf.eprintf
                    "placer NOT deterministic: floorplan differs at %s \
                     domain(s)\n"
                    (String.concat ", " (List.map string_of_int mismatches));
                  exit 1
                end
              end;
              Ok ())
  in
  let term =
    Term.(
      term_result ~usage:false
        (const run $ obs_term $ tech_term $ cus_term $ freq_term $ area_term
       $ power_term $ sta_term $ place_term $ place_domains_term
       $ check_determinism_term))
  in
  Cmd.v
    (Cmd.info "layout" ~doc:"Full RTL-to-layout implementation of one version")
    term

(* --- table1 ------------------------------------------------------------ *)

let table1_cmd =
  let sequential_term =
    let doc =
      "Run versions one at a time with full STA recomputation (the seed \
       behaviour) instead of the parallel incremental flow."
    in
    Arg.(value & flag & info [ "sequential" ] ~doc)
  in
  let run obs tech sequential =
    with_obs obs @@ fun () ->
    let parallel = not sequential and incremental = not sequential in
    print_endline Ggpu_synth.Report.header;
    List.iter
      (fun r -> print_endline (Ggpu_synth.Report.row_to_string r))
      (Versions.table1 ~tech ~parallel ~incremental ());
    Ok ()
  in
  let term =
    Term.(
      term_result ~usage:false
        (const run $ obs_term $ tech_term $ sequential_term))
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Regenerate the paper's Table I (12 versions)")
    term

(* --- versions ----------------------------------------------------------- *)

(* The scaling study: full implementations over an explicit CU grid.
   Unsupported counts fail up front with the generator's accepted list;
   nothing is clamped to the paper grid. *)
let versions_cmd =
  let cus_list_term =
    let doc =
      "Comma-separated CU counts to implement (each 1..8, 16, 32 or 64)."
    in
    Arg.(
      value
      & opt (list int) Versions.scaling_cu_counts
      & info [ "cus" ] ~doc ~docv:"N,..")
  in
  let freq_term =
    let doc = "Target frequency in MHz for every version." in
    Arg.(value & opt int 667 & info [ "freq" ] ~doc ~docv:"MHZ")
  in
  let sequential_term =
    let doc =
      "Run versions one at a time with full STA recomputation instead \
       of the parallel incremental flow."
    in
    Arg.(value & flag & info [ "sequential" ] ~doc)
  in
  let run obs tech cus_list freq sequential sta place place_domains =
    with_obs obs @@ fun () ->
    let parallel = not sequential and incremental = not sequential in
    match
      handle_dse_errors (fun () ->
          Versions.scaling ~tech ~parallel ~incremental ~sta ~place
            ~place_domains ~freq_mhz:freq ~cu_counts:cus_list ())
    with
    | exception Invalid_argument msg -> Error (`Msg msg)
    | exception Spec.Invalid_spec msg -> Error (`Msg msg)
    | impls ->
        Printf.printf "%4s %7s %9s %7s %10s %12s %s\n" "cus" "target"
          "achieved" "derate" "area_mm2" "wire_mm" "check";
        List.iter
          (fun (impl : Flow.implementation) ->
            Printf.printf "%4d %7d %9.0f %7.3f %10.2f %12.0f %s\n"
              impl.Flow.spec.Spec.num_cus impl.Flow.spec.Spec.freq_mhz
              impl.Flow.achieved_mhz impl.Flow.contention_derate
              impl.Flow.logic_report.Ggpu_synth.Report.total_area_mm2
              (impl.Flow.route.Ggpu_layout.Route.total_um /. 1000.0)
              (match impl.Flow.spec_check with
              | Ok () -> "meets spec"
              | Error vs ->
                  String.concat "; "
                    (List.map Spec.violation_to_string vs)))
          impls;
        Ok ()
  in
  let term =
    Term.(
      term_result ~usage:false
        (const run $ obs_term $ tech_term $ cus_list_term $ freq_term
       $ sequential_term $ sta_term $ place_term $ place_domains_term))
  in
  Cmd.v
    (Cmd.info "versions"
       ~doc:
         "Implement a CU-count grid end to end (the >8-CU scaling study: \
          contention derate, floorplan engine selection)")
    term

(* --- compare ----------------------------------------------------------- *)

let kernel_term =
  let doc = "Restrict to one kernel (default: all seven)." in
  Arg.(value & opt (some string) None & info [ "kernel" ] ~doc ~docv:"NAME")

let superopt_term =
  let doc =
    "Disable the superopt peephole pass (run code exactly as the \
     register allocator emitted it)."
  in
  Term.(const not $ Arg.(value & flag & info [ "no-superopt" ] ~doc))

let compare_cmd =
  let cus_list_term =
    let doc =
      "Comma-separated CU counts to compare (each 1..8, 16, 32 or 64)."
    in
    Arg.(
      value
      & opt (list int) Compare.cu_counts
      & info [ "cus" ] ~doc ~docv:"N,..")
  in
  let run obs tech kernel cus_list backend sim_domains superopt =
    with_obs obs @@ fun () ->
    let workloads =
      match kernel with
      | None -> Ggpu_kernels.Suite.all
      | Some name -> (
          try [ Ggpu_kernels.Suite.find name ]
          with Invalid_argument msg ->
            prerr_endline msg;
            exit 1)
    in
    match
      Compare.table3 ~workloads ~backend ~domains:sim_domains ~superopt
        ~cu_counts:cus_list ()
    with
    | exception Invalid_argument msg -> Error (`Msg msg)
    | rows ->
        Format.printf "%a@." Compare.pp_table3 rows;
        let speedups = Compare.speedups ~tech rows in
        Format.printf "%a@." (Compare.pp_speedups ~label:"raw") speedups;
        Format.printf "%a@." (Compare.pp_speedups ~label:"derated") speedups;
        Ok ()
  in
  let term =
    Term.(
      term_result ~usage:false
        (const run $ obs_term $ tech_term $ kernel_term $ cus_list_term
       $ backend_term $ sim_domains_alias_term $ superopt_term))
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Run the benchmark suite on RISC-V and G-GPU (Table III, Figs. 5-6)")
    term

(* --- run --------------------------------------------------------------- *)

let run_cmd =
  let size_term =
    let doc = "Problem size (work-items); default: the workload's G-GPU size." in
    Arg.(value & opt (some int) None & info [ "size" ] ~doc ~docv:"N")
  in
  let kernel_req =
    let doc = "Kernel to run (mat_mul copy vec_mul fir div_int xcorr \
               parallel_sel)." in
    Arg.(required & opt (some string) None & info [ "kernel" ] ~doc ~docv:"NAME")
  in
  let pmu_term =
    let doc =
      "Attach the performance-monitoring unit: per-CU cycle-attribution \
       buckets, bottleneck classification and a hot-PC profile (results \
       stay bit-identical)."
    in
    Arg.(value & flag & info [ "pmu" ] ~doc)
  in
  let run obs cus name size pmu backend sim_domains superopt =
    with_obs obs @@ fun () ->
    let w =
      try Ggpu_kernels.Suite.find name
      with Invalid_argument msg ->
        prerr_endline msg;
        exit 1
    in
    let size =
      w.Ggpu_kernels.Suite.round_size
        (Option.value ~default:w.Ggpu_kernels.Suite.ggpu_size size)
    in
    let config = Ggpu_fgpu.Config.with_cus Ggpu_fgpu.Config.default cus in
    let args = w.Ggpu_kernels.Suite.mk_args ~size in
    let compiled =
      Ggpu_kernels.Codegen_fgpu.compile ~superopt w.Ggpu_kernels.Suite.kernel
    in
    let report = compiled.Ggpu_kernels.Codegen_fgpu.peephole in
    if report.Ggpu_superopt.Peephole.applied <> []
       || report.Ggpu_superopt.Peephole.nops_removed > 0
    then
      Format.printf "superopt: %d rewrite(s), %d nop(s), ~%d cycles/iteration@."
        (List.fold_left
           (fun acc (_, n) -> acc + n)
           0 report.Ggpu_superopt.Peephole.applied)
        report.Ggpu_superopt.Peephole.nops_removed
        report.Ggpu_superopt.Peephole.saved_cycles;
    let collector =
      if pmu then
        Some
          (Ggpu_pmu.Pmu.create ~num_cus:cus
             ~prog_len:(Array.length compiled.Ggpu_kernels.Codegen_fgpu.code)
             ())
      else None
    in
    let result =
      Ggpu_kernels.Run_fgpu.run ~config ?pmu:collector ~backend
        ~domains:sim_domains compiled ~args
        ~global_size:(w.Ggpu_kernels.Suite.global_size ~size)
        ~local_size:(min w.Ggpu_kernels.Suite.local_size size)
        ()
    in
    let stats = result.Ggpu_kernels.Run_fgpu.stats in
    Format.printf "%s size=%d on %d CU: %a@." name size cus Ggpu_fgpu.Stats.pp
      stats;
    (match collector with
    | Some c ->
        let summary =
          Ggpu_pmu.Pmu.summarize c
            ~program:compiled.Ggpu_kernels.Codegen_fgpu.code
        in
        Format.printf "pmu (%s):@.%a@.hot PCs (stride %d, %d samples):@.%a@."
          (Ggpu_pmu.Report.classify summary)
          Ggpu_pmu.Pmu.pp_summary summary summary.Ggpu_pmu.Pmu.s_stride
          summary.Ggpu_pmu.Pmu.s_samples
          (fun fmt s -> Ggpu_pmu.Pmu.pp_hot fmt s)
          summary
    | None -> ());
    let expected = w.Ggpu_kernels.Suite.expected ~size args in
    let actual =
      Ggpu_kernels.Run_fgpu.output result w.Ggpu_kernels.Suite.output_buffer
    in
    if expected = actual then Format.printf "output verified@."
    else begin
      Format.printf "OUTPUT MISMATCH@.";
      exit 1
    end;
    Ok ()
  in
  let term =
    Term.(
      term_result ~usage:false
        (const run $ obs_term $ cus_term $ kernel_req $ size_term $ pmu_term
       $ backend_term $ sim_domains_alias_term $ superopt_term))
  in
  Cmd.v (Cmd.info "run" ~doc:"Simulate one kernel on the G-GPU") term

(* --- fi ----------------------------------------------------------------- *)

let fi_cmd =
  let kernel_req =
    let doc = "Kernel to run (mat_mul copy vec_mul fir div_int xcorr \
               parallel_sel)." in
    Arg.(required & opt (some string) None & info [ "kernel" ] ~doc ~docv:"NAME")
  in
  let target_term =
    let doc = "Target machine: ggpu (with --cus) or riscv." in
    Arg.(value & opt string "ggpu" & info [ "target" ] ~doc ~docv:"MACHINE")
  in
  let trials_term =
    let doc = "Number of injected trials." in
    Arg.(value & opt int 1000 & info [ "trials" ] ~doc ~docv:"N")
  in
  let seed_term =
    let doc = "Campaign seed; fixes the whole trial list." in
    Arg.(value & opt int 42 & info [ "seed" ] ~doc ~docv:"SEED")
  in
  let size_term =
    let doc = "Problem size in work-items (default: a per-target size \
               that keeps the campaign tractable)." in
    Arg.(value & opt (some int) None & info [ "size" ] ~doc ~docv:"N")
  in
  let domains_term =
    let doc = "Domain-pool size for the trial fan-out (1 = serial)." in
    Arg.(value & opt (some int) None & info [ "domains" ] ~doc ~docv:"D")
  in
  let expect_term =
    let doc =
      "Expected classification signature (as printed by a previous run); \
       exit 1 on drift. Used by CI."
    in
    Arg.(value & opt (some string) None & info [ "expect" ] ~doc ~docv:"SIG")
  in
  let run obs cus kernel target trials seed size domains backend expect =
    with_obs obs @@ fun () ->
    let w =
      try Ggpu_kernels.Suite.find kernel
      with Invalid_argument msg ->
        prerr_endline msg;
        exit 1
    in
    let target =
      match target with
      | "ggpu" -> Ggpu_fi.Campaign.Ggpu cus
      | "riscv" -> Ggpu_fi.Campaign.Rv32
      | other ->
          Printf.eprintf "unknown target %s (ggpu | riscv)\n" other;
          exit 1
    in
    let size =
      match size with
      | Some s -> s
      | None -> (
          match target with
          | Ggpu_fi.Campaign.Ggpu _ ->
              min 2048 w.Ggpu_kernels.Suite.ggpu_size
          | Ggpu_fi.Campaign.Rv32 -> w.Ggpu_kernels.Suite.riscv_size)
    in
    let report =
      Ggpu_fi.Campaign.run ?domains ~backend ~target ~workload:w ~size ~trials
        ~seed ()
    in
    Format.printf "%a@." Ggpu_fi.Campaign.pp_report report;
    let signature = Ggpu_fi.Campaign.signature report in
    Printf.printf "signature: %s\n" signature;
    (match expect with
    | Some expected when not (String.equal expected signature) ->
        Printf.eprintf "classification drift!\n  expected %s\n  got      %s\n"
          expected signature;
        exit 1
    | _ -> ());
    Ok ()
  in
  let term =
    Term.(
      term_result ~usage:false
        (const run $ obs_term $ cus_term $ kernel_req $ target_term
       $ trials_term $ seed_term $ size_term $ domains_term $ backend_term
       $ expect_term))
  in
  Cmd.v
    (Cmd.info "fi"
       ~doc:
         "Fault-injection campaign: single-bit upsets classified as \
          masked/SDC/DUE/hang, with per-structure AVF")
    term

(* --- bench -------------------------------------------------------------- *)

(* The (kernel x CU-count) grid on the domain pool: the CLI face of
   {!Ggpu_kernels.Suite_runner}.  Results and merged metrics are
   deterministic for any --domains; only wall times vary. *)
let bench_cmd =
  let cus_grid_term =
    let doc = "Comma-separated CU counts forming the grid." in
    Arg.(value & opt (list int) [ 1; 2; 4; 8 ] & info [ "cus" ] ~doc ~docv:"N,..")
  in
  let domains_term =
    let doc =
      "Domain-pool size for the job fan-out (1 = serial; default: the \
       runtime's recommended domain count)."
    in
    Arg.(value & opt (some int) None & info [ "domains" ] ~doc ~docv:"D")
  in
  let run obs domains cus_list backend sim_domains superopt =
    with_obs obs @@ fun () ->
    let domains =
      match domains with
      | Some d -> max 1 d
      | None -> Ggpu_par.Parallel.default_domains ()
    in
    Ggpu_obs.Trace.with_span "bench.suite"
      ~args:[ ("domains", string_of_int domains) ]
    @@ fun () ->
    Ggpu_obs.Metrics.record_gauge "bench.domains" domains;
    let jobs = Ggpu_kernels.Suite_runner.grid ~cu_counts:cus_list () in
    let t0 = Ggpu_obs.Metrics.now_ns () in
    let results, merged =
      Ggpu_kernels.Suite_runner.run ~domains ~backend ~sim_domains ~superopt
        jobs
    in
    let wall_ns = max 1 (Ggpu_obs.Metrics.now_ns () - t0) in
    Printf.printf "%-20s %8s %10s %10s %12s %6s\n" "job" "size" "cycles"
      "wf insns" "cycles/s" "ok";
    List.iter
      (fun (r : Ggpu_kernels.Suite_runner.result) ->
        let s = r.Ggpu_kernels.Suite_runner.stats in
        Printf.printf "%-20s %8d %10d %10d %12.3e %6s\n"
          (Ggpu_kernels.Suite_runner.job_name r.Ggpu_kernels.Suite_runner.job)
          r.Ggpu_kernels.Suite_runner.job.Ggpu_kernels.Suite_runner.size
          s.Ggpu_fgpu.Stats.cycles s.Ggpu_fgpu.Stats.wf_instructions
          (float_of_int s.Ggpu_fgpu.Stats.cycles
          /. (float_of_int (max 1 r.Ggpu_kernels.Suite_runner.wall_ns)
             /. 1e9))
          (if r.Ggpu_kernels.Suite_runner.correct then "yes" else "NO"))
      results;
    let total_cycles =
      List.fold_left
        (fun acc (r : Ggpu_kernels.Suite_runner.result) ->
          acc + r.Ggpu_kernels.Suite_runner.stats.Ggpu_fgpu.Stats.cycles)
        0 results
    in
    Printf.printf
      "grid: %d jobs on %d domains | %.3e simulated cycles in %.3fs wall \
       (%.3e cycles/s)\n"
      (List.length results) domains
      (float_of_int total_cycles)
      (float_of_int wall_ns /. 1e9)
      (float_of_int total_cycles /. (float_of_int wall_ns /. 1e9));
    Format.printf "merged (deterministic) metrics: %a@."
      Ggpu_obs.Metrics.pp_snapshot merged;
    let failures =
      List.filter
        (fun (r : Ggpu_kernels.Suite_runner.result) ->
          not r.Ggpu_kernels.Suite_runner.correct)
        results
    in
    if failures <> [] then begin
      Printf.eprintf "%d job(s) produced wrong output\n" (List.length failures);
      exit 1
    end;
    Ok ()
  in
  let term =
    Term.(
      term_result ~usage:false
        (const run $ obs_term $ domains_term $ cus_grid_term $ backend_term
       $ sim_domains_term $ superopt_term))
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run the kernel suite over a CU-count grid on the domain pool, \
          verifying every output against the OCaml reference")
    term

(* --- perf-report --------------------------------------------------------- *)

(* PMU-instrumented kernelxCU grid: writes PERF_REPORT.json with per-CU
   stall buckets, hot PCs and a bottleneck classification per kernel;
   optionally gates PMU overhead against an uninstrumented pass of the
   same grid and diffs cycle counts against a baseline report.  The CI
   smoke job drives all three modes. *)
let perf_report_cmd =
  let cus_grid_term =
    let doc = "Comma-separated CU counts forming the grid." in
    Arg.(value & opt (list int) [ 1; 2; 4; 8 ] & info [ "cus" ] ~doc ~docv:"N,..")
  in
  let domains_term =
    let doc = "Domain-pool size for the job fan-out (1 = serial)." in
    Arg.(value & opt (some int) None & info [ "domains" ] ~doc ~docv:"D")
  in
  let out_term =
    let doc = "Report file to write." in
    Arg.(value & opt string "PERF_REPORT.json" & info [ "out" ] ~doc ~docv:"FILE")
  in
  let baseline_term =
    let doc =
      "Baseline PERF_REPORT.json: print a per-kernel cycle diff and exit 1 \
       if any configuration regressed past --max-regress."
    in
    Arg.(value & opt (some string) None & info [ "baseline" ] ~doc ~docv:"FILE")
  in
  let max_regress_term =
    let doc = "Regression threshold for --baseline, in percent." in
    Arg.(value & opt float 5.0 & info [ "max-regress" ] ~doc ~docv:"PCT")
  in
  let max_overhead_term =
    let doc =
      "Also run the grid without the PMU and exit 1 if instrumentation \
       costs more than PCT percent of aggregate simulation throughput."
    in
    Arg.(value & opt (some float) None & info [ "max-overhead" ] ~doc ~docv:"PCT")
  in
  let check_term =
    let doc =
      "Validate an existing report (schema, classifications, \
       buckets-sum-to-cycles invariant) instead of running the grid."
    in
    Arg.(value & opt (some string) None & info [ "check" ] ~doc ~docv:"FILE")
  in
  let stride_term =
    let doc = "Hot-PC sampling period in cycles." in
    Arg.(value & opt int 64 & info [ "stride" ] ~doc ~docv:"N")
  in
  let run obs domains cus_list kernel out baseline max_regress max_overhead
      check stride backend sim_domains =
    match check with
    | Some file -> (
        match Ggpu_pmu.Report.validate_file file with
        | Ok n ->
            Printf.printf "%s: ok, %d kernel entries\n" file n;
            Ok ()
        | Error msg ->
            Printf.eprintf "%s: invalid perf report: %s\n" file msg;
            exit 1)
    | None ->
        with_obs obs @@ fun () ->
        let workloads =
          match kernel with
          | None -> Ggpu_kernels.Suite.all
          | Some name -> (
              try [ Ggpu_kernels.Suite.find name ]
              with Invalid_argument msg ->
                prerr_endline msg;
                exit 1)
        in
        let domains =
          match domains with
          | Some d -> max 1 d
          | None -> Ggpu_par.Parallel.default_domains ()
        in
        let jobs =
          Ggpu_kernels.Suite_runner.grid ~workloads ~cu_counts:cus_list ()
        in
        let job_wall results =
          List.fold_left
            (fun acc (r : Ggpu_kernels.Suite_runner.result) ->
              acc + r.Ggpu_kernels.Suite_runner.wall_ns)
            1 results
        in
        (* uninstrumented pass first (also warms the code paths), so the
           overhead gate compares like against like *)
        let bare_wall =
          match max_overhead with
          | None -> None
          | Some _ ->
              let bare, _ =
                Ggpu_kernels.Suite_runner.run ~domains ~backend ~sim_domains
                  jobs
              in
              Some (job_wall bare)
        in
        let results, _merged =
          Ggpu_kernels.Suite_runner.run ~domains ~pmu:true ~pmu_stride:stride
            ~backend ~sim_domains jobs
        in
        let entries =
          List.map
            (fun (r : Ggpu_kernels.Suite_runner.result) ->
              let j = r.Ggpu_kernels.Suite_runner.job in
              let stats = r.Ggpu_kernels.Suite_runner.stats in
              {
                Ggpu_pmu.Report.e_kernel =
                  j.Ggpu_kernels.Suite_runner.workload.Ggpu_kernels.Suite.name;
                e_cus = j.Ggpu_kernels.Suite_runner.cus;
                e_size = j.Ggpu_kernels.Suite_runner.size;
                e_correct = r.Ggpu_kernels.Suite_runner.correct;
                e_stats = Ggpu_fgpu.Stats.to_assoc stats;
                e_hit_rate = Ggpu_fgpu.Stats.hit_rate stats;
                e_summary =
                  Option.get r.Ggpu_kernels.Suite_runner.pmu;
              })
            results
        in
        Ggpu_pmu.Report.write ~path:out entries;
        Printf.printf "%-20s %10s %8s %-18s %s\n" "job" "cycles" "ok"
          "classification" "hottest pc";
        List.iter
          (fun (e : Ggpu_pmu.Report.entry) ->
            let s = e.Ggpu_pmu.Report.e_summary in
            Printf.printf "%-20s %10d %8s %-18s %s\n"
              (Printf.sprintf "%s/%dcu" e.Ggpu_pmu.Report.e_kernel
                 e.Ggpu_pmu.Report.e_cus)
              s.Ggpu_pmu.Pmu.s_cycles
              (if e.Ggpu_pmu.Report.e_correct then "yes" else "NO")
              (Ggpu_pmu.Report.classify s)
              (match s.Ggpu_pmu.Pmu.s_hot with
              | (pc, insn, _) :: _ -> Printf.sprintf "%d: %s" pc insn
              | [] -> "-"))
          entries;
        (match Ggpu_pmu.Report.validate_file out with
        | Ok n -> Printf.printf "wrote %s (%d kernel entries, validated)\n" out n
        | Error msg ->
            Printf.eprintf "%s failed self-validation: %s\n" out msg;
            exit 1);
        (match (max_overhead, bare_wall) with
        | Some limit, Some bare ->
            let pmu_wall = job_wall results in
            let pct =
              100.0 *. float_of_int (pmu_wall - bare) /. float_of_int bare
            in
            Printf.printf "PMU overhead: %+.2f%% of grid wall time (limit %.1f%%)\n"
              pct limit;
            if pct > limit then begin
              Printf.eprintf "PMU overhead %.2f%% exceeds limit %.1f%%\n" pct
                limit;
              exit 1
            end
        | _ -> ());
        (match baseline with
        | None -> ()
        | Some file -> (
            match Ggpu_pmu.Report.load file with
            | Error msg ->
                Printf.eprintf "cannot load baseline %s: %s\n" file msg;
                exit 1
            | Ok base -> (
                match
                  Ggpu_pmu.Report.diff ~baseline:base
                    ~current:(Ggpu_pmu.Report.to_json entries)
                    ~max_regress_pct:max_regress
                with
                | Error msg ->
                    Printf.eprintf "cannot diff against %s: %s\n" file msg;
                    exit 1
                | Ok rows ->
                    Format.printf "%a@." Ggpu_pmu.Report.pp_diff rows;
                    let regressed =
                      List.filter
                        (fun r -> r.Ggpu_pmu.Report.d_regressed)
                        rows
                    in
                    if regressed <> [] then begin
                      Printf.eprintf "%d configuration(s) regressed\n"
                        (List.length regressed);
                      exit 1
                    end)));
        if
          List.exists
            (fun (e : Ggpu_pmu.Report.entry) ->
              not e.Ggpu_pmu.Report.e_correct)
            entries
        then begin
          Printf.eprintf "some jobs produced wrong output\n";
          exit 1
        end;
        Ok ()
  in
  let term =
    Term.(
      term_result ~usage:false
        (const run $ obs_term $ domains_term $ cus_grid_term $ kernel_term
       $ out_term $ baseline_term $ max_regress_term $ max_overhead_term
       $ check_term $ stride_term $ backend_term $ sim_domains_term))
  in
  Cmd.v
    (Cmd.info "perf-report"
       ~doc:
         "Run the kernel suite with the PMU attached, write \
          PERF_REPORT.json (per-CU stall buckets, hot PCs, bottleneck \
          classification), and optionally gate overhead or diff against \
          a baseline")
    term

(* --- profile ------------------------------------------------------------ *)

let profile_cmd =
  let workload_term =
    let doc = "Workload to profile: dse | layout | sim | fi | table1." in
    Arg.(value & pos 0 string "dse" & info [] ~doc ~docv:"WORKLOAD")
  in
  let run obs tech cus freq backend workload =
    with_obs obs @@ fun () ->
    (* the whole point of this command is the span table *)
    Ggpu_obs.Trace.enable ();
    let spec () =
      match spec_of ~cus ~freq ~area:None ~power:None with
      | Ok s -> s
      | Error (`Msg m) ->
          prerr_endline m;
          exit 1
    in
    (match workload with
    | "dse" ->
        handle_dse_errors (fun () ->
            ignore (Flow.synthesise_timed ~tech (spec ())))
    | "layout" ->
        handle_dse_errors (fun () -> ignore (Flow.implement ~tech (spec ())))
    | "sim" ->
        let config = Ggpu_fgpu.Config.with_cus Ggpu_fgpu.Config.default cus in
        List.iter
          (fun w ->
            let size =
              w.Ggpu_kernels.Suite.round_size
                (min 4096 w.Ggpu_kernels.Suite.ggpu_size)
            in
            let compiled =
              Ggpu_kernels.Codegen_fgpu.compile w.Ggpu_kernels.Suite.kernel
            in
            ignore
              (Ggpu_kernels.Run_fgpu.run ~config ~backend compiled
                 ~args:(w.Ggpu_kernels.Suite.mk_args ~size)
                 ~global_size:(w.Ggpu_kernels.Suite.global_size ~size)
                 ~local_size:(min w.Ggpu_kernels.Suite.local_size size)
                 ()))
          Ggpu_kernels.Suite.all
    | "fi" ->
        ignore
          (Ggpu_fi.Campaign.run ~backend
             ~target:(Ggpu_fi.Campaign.Ggpu cus)
             ~workload:(Ggpu_kernels.Suite.find "copy")
             ~size:512 ~trials:200 ~seed:42 ())
    | "table1" -> ignore (Versions.table1 ~tech ())
    | other ->
        Printf.eprintf "unknown workload %s (dse|layout|sim|fi|table1)\n" other;
        exit 1);
    Format.printf "%a@." Ggpu_obs.Profile.pp_table
      (Ggpu_obs.Profile.self_times (Ggpu_obs.Trace.events ()));
    Ok ()
  in
  let term =
    Term.(
      term_result ~usage:false
        (const run $ obs_term $ tech_term $ cus_term $ freq_term
       $ backend_term $ workload_term))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a representative workload under the tracer and print the \
          per-span self-time table")
    term

(* --- trace-check -------------------------------------------------------- *)

let trace_check_cmd =
  let file_term =
    let doc = "Chrome trace-event JSON file to validate." in
    Arg.(required & pos 0 (some string) None & info [] ~doc ~docv:"FILE")
  in
  let run file =
    match Ggpu_obs.Trace.validate_file file with
    | Ok summary ->
        Format.printf "%s: ok, %a@." file Ggpu_obs.Trace.pp_summary summary;
        Ok ()
    | Error msg ->
        Printf.eprintf "%s: invalid trace: %s\n" file msg;
        exit 1
  in
  let term = Term.(term_result ~usage:false (const run $ file_term)) in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:"Validate a trace file written by --trace (used by CI)")
    term

(* --- verilog ------------------------------------------------------------ *)

let verilog_cmd =
  let out_term =
    let doc = "Output file (default: ggpu_<N>cu.v)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc ~docv:"FILE")
  in
  let run obs tech cus freq area power out =
    match spec_of ~cus ~freq ~area ~power with
    | Error e -> Error e
    | Ok spec ->
        handle_dse_errors (fun () ->
            with_obs obs @@ fun () ->
            let netlist, _map, _report = Flow.synthesise ~tech spec in
            let path =
              Option.value ~default:(Printf.sprintf "ggpu_%dcu.v" cus) out
            in
            Ggpu_hw.Verilog.write netlist ~path;
            Printf.printf "wrote %s (%d cells, %d nets)
" path
              (Ggpu_hw.Netlist.cell_count netlist)
              (Ggpu_hw.Netlist.net_count netlist);
            Ok ())
  in
  let term =
    Term.(
      term_result ~usage:false
        (const run $ obs_term $ tech_term $ cus_term $ freq_term $ area_term
       $ power_term $ out_term))
  in
  Cmd.v
    (Cmd.info "verilog"
       ~doc:"Export the optimised netlist as structural Verilog")
    term

(* --- serve / client ------------------------------------------------------ *)

let socket_term =
  let doc = "Unix-domain socket path of the planning daemon." in
  Arg.(
    value
    & opt string "/tmp/ggpu_serve.sock"
    & info [ "socket" ] ~doc ~docv:"PATH")

let serve_cmd =
  let domains_term =
    let doc =
      "Domain-pool size shared by all request batches (default: the \
       runtime's recommended domain count)."
    in
    Arg.(value & opt (some int) None & info [ "domains" ] ~doc ~docv:"D")
  in
  let cache_term =
    let doc = "Memo-cache capacity in result entries (LRU per shard)." in
    Arg.(
      value
      & opt int Ggpu_serve.Engine.default_config.Ggpu_serve.Engine.cache_capacity
      & info [ "cache-capacity" ] ~doc ~docv:"N")
  in
  let queue_term =
    let doc =
      "Pending-request bound; requests beyond it are rejected with a \
       retry-after hint (backpressure)."
    in
    Arg.(
      value
      & opt int Ggpu_serve.Engine.default_config.Ggpu_serve.Engine.queue_capacity
      & info [ "queue-capacity" ] ~doc ~docv:"N")
  in
  let recorder_term =
    let doc =
      "Flight-recorder capacity: span groups of the last N requests kept \
       for the dump control."
    in
    Arg.(value & opt int 256 & info [ "recorder" ] ~doc ~docv:"N")
  in
  let slow_ms_term =
    let doc =
      "Slow-request threshold in milliseconds: slower requests are logged \
       and pinned in the slow ring of the flight recorder."
    in
    Arg.(value & opt int 500 & info [ "slow-ms" ] ~doc ~docv:"MS")
  in
  let run obs socket domains cache_capacity queue_capacity recorder_capacity
      slow_ms backend =
    with_obs obs @@ fun () ->
    let engine_config =
      {
        Ggpu_serve.Engine.default_config with
        Ggpu_serve.Engine.cache_capacity;
        queue_capacity;
        backend;
      }
    in
    Ggpu_serve.Daemon.run ~engine_config ?domains ~recorder_capacity ~slow_ms
      ~log:prerr_endline ~socket ();
    Ok ()
  in
  let term =
    Term.(
      term_result ~usage:false
        (const run $ obs_term $ socket_term $ domains_term $ cache_term
       $ queue_term $ recorder_term $ slow_ms_term $ backend_term))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the planning daemon: a content-hash-cached, batching request \
          scheduler over a persistent domain pool, speaking \
          newline-delimited JSON on a Unix socket")
    term

(* Rebuild a histogram snapshot from a stats reply, so the CLI derives
   its latency percentiles with the same cell-exact [hist_percentile]
   every other consumer of the registry uses. *)
let latency_hist_of_stats j kind =
  let module Json = Ggpu_obs.Json in
  let ints = function
    | Some (Json.List l) ->
        Some
          (List.filter_map
             (function Json.Int i -> Some i | _ -> None)
             l)
    | _ -> None
  in
  let int j m =
    match Json.member m j with Some (Json.Int i) -> i | _ -> 0
  in
  match
    Option.bind (Json.member "metrics" j) (Json.member "histograms")
    |> Fun.flip Option.bind (Json.member ("serve.latency." ^ kind))
  with
  | None -> None
  | Some h -> (
      match (ints (Json.member "bounds" h), ints (Json.member "counts" h)) with
      | Some bounds, Some counts ->
          Some
            {
              Ggpu_obs.Metrics.bounds;
              counts;
              sum = int h "sum";
              min_v = int h "min";
              max_v = int h "max";
            }
      | _ -> None)

let print_stats_latency j =
  List.iter
    (fun kind ->
      match latency_hist_of_stats j kind with
      | Some h when Ggpu_obs.Metrics.hist_total h > 0 ->
          let p q = Ggpu_obs.Metrics.hist_percentile h q in
          Printf.printf
            "latency %-5s p50<=%dus p99<=%dus p999<=%dus (n=%d)\n" kind
            (p 0.50) (p 0.99) (p 0.999)
            (Ggpu_obs.Metrics.hist_total h)
      | _ -> ())
    [ "sim"; "synth"; "perf" ]

let client_cmd =
  let ping_term =
    let doc = "Health-check the daemon and exit." in
    Arg.(value & flag & info [ "ping" ] ~doc)
  in
  let stats_term =
    let doc = "Print the daemon's metrics snapshot (after any replay)." in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let shutdown_term =
    let doc = "Ask the daemon to drain in-flight work and exit (last)." in
    Arg.(value & flag & info [ "shutdown" ] ~doc)
  in
  let replay_term =
    let doc = "Replay N requests from the seeded workload mix." in
    Arg.(value & opt (some int) None & info [ "replay" ] ~doc ~docv:"N")
  in
  let seed_term =
    let doc = "Workload-mix seed for --replay." in
    Arg.(value & opt int 7 & info [ "seed" ] ~doc ~docv:"SEED")
  in
  let batch_term =
    let doc = "Pipelining window for --replay (requests in flight)." in
    Arg.(value & opt int 64 & info [ "batch" ] ~doc ~docv:"N")
  in
  let min_hits_term =
    let doc =
      "Exit 1 unless at least N replayed responses were served from the \
       daemon's cache. Used by CI."
    in
    Arg.(value & opt (some int) None & info [ "min-hits" ] ~doc ~docv:"N")
  in
  let kind_term =
    let doc = "Send one request: synth | sim | perf." in
    Arg.(value & opt (some string) None & info [ "kind" ] ~doc ~docv:"KIND")
  in
  let kernel_term =
    let doc = "Kernel for a single sim/perf request." in
    Arg.(value & opt string "copy" & info [ "kernel" ] ~doc ~docv:"NAME")
  in
  let size_term =
    let doc = "Problem size for a single sim/perf request." in
    Arg.(value & opt int 256 & info [ "size" ] ~doc ~docv:"N")
  in
  let tech_name_term =
    let doc = "Technology model for requests: 65nm or 28nm." in
    Arg.(value & opt string "65nm" & info [ "tech" ] ~doc ~docv:"NODE")
  in
  let deadline_term =
    let doc = "Per-request queueing deadline in milliseconds." in
    Arg.(
      value & opt (some int) None & info [ "deadline-ms" ] ~doc ~docv:"MS")
  in
  let action_term =
    let doc =
      "Optional action: $(b,dump) fetches the daemon's flight-recorder \
       trace (written to --out), $(b,scrape) prints its metrics registry \
       in text exposition format."
    in
    Arg.(value & pos 0 (some string) None & info [] ~doc ~docv:"ACTION")
  in
  let out_term =
    let doc = "Output file for the $(b,dump) action." in
    Arg.(value & opt string "trace.json" & info [ "out" ] ~doc ~docv:"FILE")
  in
  let run obs socket action out ping stats shutdown replay seed batch
      min_hits kind cus freq kernel size tech deadline_ms =
    with_obs obs @@ fun () ->
    let c =
      try Ggpu_serve.Client.connect ~socket
      with Unix.Unix_error (err, _, _) ->
        Printf.eprintf "cannot connect to %s: %s\n" socket
          (Unix.error_message err);
        exit 1
    in
    Fun.protect ~finally:(fun () -> Ggpu_serve.Client.close c) @@ fun () ->
    let failed = ref false in
    if ping then
      if Ggpu_serve.Client.ping c then print_endline "pong"
      else begin
        prerr_endline "ping failed";
        failed := true
      end;
    (match replay with
    | None -> ()
    | Some n ->
        let reqs = Ggpu_serve.Workload.mix ~tech ~seed ~n () in
        let summary = Ggpu_serve.Client.replay ~batch c reqs in
        print_endline
          (Ggpu_obs.Json.to_string (Ggpu_serve.Client.summary_json summary));
        (match min_hits with
        | Some k when summary.Ggpu_serve.Client.cached < k ->
            Printf.eprintf "only %d/%d responses were cache hits (need %d)\n"
              summary.Ggpu_serve.Client.cached summary.Ggpu_serve.Client.sent
              k;
            failed := true
        | _ -> ()));
    (match kind with
    | None -> ()
    | Some kind_s ->
        let kind =
          match kind_s with
          | "synth" -> Ggpu_serve.Proto.Synth { cus; freq_mhz = freq }
          | "sim" -> Ggpu_serve.Proto.Sim { kernel; cus; size }
          | "perf" -> Ggpu_serve.Proto.Perf { kernel; cus; size }
          | other ->
              Printf.eprintf "unknown request kind %s (synth|sim|perf)\n"
                other;
              exit 1
        in
        let req =
          Ggpu_serve.Proto.mk_request ?deadline_ms ~tech ~id:1 kind
        in
        (match Ggpu_serve.Client.call c req with
        | Ok resp ->
            print_endline (Ggpu_serve.Proto.response_to_line resp);
            (match resp.Ggpu_serve.Proto.status with
            | Ggpu_serve.Proto.Done -> ()
            | _ -> failed := true)
        | Error msg ->
            prerr_endline msg;
            failed := true));
    (match action with
    | None -> ()
    | Some "scrape" -> (
        match Ggpu_serve.Client.scrape c with
        | Ok text -> print_string text
        | Error msg ->
            prerr_endline msg;
            failed := true)
    | Some "dump" -> (
        match Ggpu_serve.Client.dump c with
        | Ok j -> (
            match Ggpu_obs.Json.member "trace" j with
            | Some doc ->
                let oc = open_out out in
                output_string oc (Ggpu_obs.Json.to_string doc);
                output_char oc '\n';
                close_out oc;
                let kept =
                  match Ggpu_obs.Json.member "kept" j with
                  | Some (Ggpu_obs.Json.Int n) -> n
                  | _ -> 0
                in
                Printf.printf "wrote %s (%d span groups)\n" out kept
            | None ->
                prerr_endline "dump reply carried no trace";
                failed := true)
        | Error msg ->
            prerr_endline msg;
            failed := true)
    | Some other ->
        Printf.eprintf "unknown action %s (dump|scrape)\n" other;
        exit 1);
    if stats then (
      match Ggpu_serve.Client.stats c with
      | Ok j ->
          print_endline (Ggpu_obs.Json.to_string j);
          print_stats_latency j
      | Error msg ->
          prerr_endline msg;
          failed := true);
    if shutdown then
      if Ggpu_serve.Client.shutdown c then print_endline "daemon stopping"
      else begin
        prerr_endline "shutdown failed";
        failed := true
      end;
    if !failed then exit 1;
    Ok ()
  in
  let term =
    Term.(
      term_result ~usage:false
        (const run $ obs_term $ socket_term $ action_term $ out_term
       $ ping_term $ stats_term $ shutdown_term $ replay_term $ seed_term
       $ batch_term $ min_hits_term $ kind_term $ cus_term $ freq_term
       $ kernel_term $ size_term $ tech_name_term $ deadline_term))
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Talk to a running planning daemon: ping, replay a seeded \
          workload, send one request, dump its flight-recorder trace, \
          scrape its metrics, print stats, or shut it down")
    term

(* --- superopt ----------------------------------------------------------- *)

let superopt_cmd =
  let module So = Ggpu_superopt in
  let budget_term =
    let doc = "Enumeration budget (candidate sequences)." in
    Arg.(value & opt int 500_000 & info [ "budget" ] ~doc ~docv:"N")
  in
  let max_len_term =
    let doc = "Maximum lhs sequence length to enumerate." in
    Arg.(value & opt int 2 & info [ "max-len" ] ~doc ~docv:"K")
  in
  let max_rules_term =
    let doc = "Cap on the emitted rule table." in
    Arg.(value & opt int 2048 & info [ "max-rules" ] ~doc ~docv:"N")
  in
  let seed_term =
    let doc = "Test-vector seed." in
    Arg.(value & opt int 42 & info [ "seed" ] ~doc ~docv:"S")
  in
  let domains_term =
    let doc = "Domain-pool size for the search fan-out." in
    Arg.(value & opt (some int) None & info [ "domains" ] ~doc ~docv:"D")
  in
  let rules_file_term =
    let doc = "Rule table file (default: the built-in mined table)." in
    Arg.(value & opt (some string) None & info [ "rules" ] ~doc ~docv:"FILE")
  in
  let load_rules = function
    | None -> So.Rules.default ()
    | Some path -> So.Rules.load_file path
  in
  let do_mine budget max_len max_rules seed domains =
    let space = { So.Search.default_space with max_len } in
    let r = So.Search.mine ~space ~budget ~max_rules ?domains ~seed () in
    Format.eprintf
      "superopt: alphabet=%d candidates=%d buckets=%d verified_pairs=%d \
       rules=%d%s@."
      r.So.Search.stats.So.Search.alphabet r.So.Search.stats.So.Search.candidates
      r.So.Search.stats.So.Search.buckets
      r.So.Search.stats.So.Search.verified_pairs
      (List.length r.So.Search.rules)
      (if r.So.Search.stats.So.Search.truncated then " (budget hit)" else "");
    r
  in
  let search_cmd =
    let run budget max_len max_rules seed domains =
      let r = do_mine budget max_len max_rules seed domains in
      List.iter
        (fun rule -> Format.printf "%s@." (So.Rule.to_string rule))
        r.So.Search.rules;
      Ok ()
    in
    let term =
      Term.(
        term_result ~usage:false
          (const run $ budget_term $ max_len_term $ max_rules_term $ seed_term
         $ domains_term))
    in
    Cmd.v
      (Cmd.info "search"
         ~doc:
           "Enumerate, fingerprint, verify and rank rewrite rules; print \
            them human-readably")
      term
  in
  let mine_cmd =
    let update_term =
      let doc =
        "Rewrite the checked-in table (lib/superopt/rules_table.ml) with \
         the mined rules."
      in
      Arg.(value & flag & info [ "update" ] ~doc)
    in
    let table_path_term =
      let doc = "Path of the generated table module for --update." in
      Arg.(
        value
        & opt string "lib/superopt/rules_table.ml"
        & info [ "table" ] ~doc ~docv:"PATH")
    in
    let out_term =
      let doc = "Write the mined rules to a text table file." in
      Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc ~docv:"FILE")
    in
    let run budget max_len max_rules seed domains update table_path out =
      let r = do_mine budget max_len max_rules seed domains in
      let rules = r.So.Search.rules in
      (match out with Some path -> So.Rules.save_file path rules | None -> ());
      if update then begin
        let oc = open_out table_path in
        output_string oc
          "(* Generated by `gpuplanner superopt mine --update`; do not edit.\n\
          \   Format: Rule.to_line — hex ISA words, `lhs => rhs ; clobbers= ; \
           saves=`. *)\n\n";
        output_string oc "let lines : string list =\n  [\n";
        List.iter
          (fun rule ->
            output_string oc (Printf.sprintf "    %S;\n" (So.Rule.to_line rule)))
          rules;
        output_string oc "  ]\n";
        close_out oc;
        Format.printf "wrote %d rule(s) to %s@." (List.length rules) table_path
      end
      else if out = None then
        List.iter (fun rule -> print_endline (So.Rule.to_line rule)) rules;
      Ok ()
    in
    let term =
      Term.(
        term_result ~usage:false
          (const run $ budget_term $ max_len_term $ max_rules_term $ seed_term
         $ domains_term $ update_term $ table_path_term $ out_term))
    in
    Cmd.v
      (Cmd.info "mine"
         ~doc:
           "Mine the rule table and serialise it (stdout, --output FILE, or \
            --update the checked-in module)")
      term
  in
  let workloads_of = function
    | None -> Ggpu_kernels.Suite.all
    | Some name -> (
        try [ Ggpu_kernels.Suite.find name ]
        with Invalid_argument msg ->
          prerr_endline msg;
          exit 1)
  in
  let apply_cmd =
    let asm_term =
      let doc = "Also print the before/after assembly." in
      Arg.(value & flag & info [ "asm" ] ~doc)
    in
    let run kernel rules_file asm =
      let rules = load_rules rules_file in
      List.iter
        (fun w ->
          let raw =
            Ggpu_kernels.Codegen_fgpu.compile ~superopt:false
              w.Ggpu_kernels.Suite.kernel
          in
          let code = raw.Ggpu_kernels.Codegen_fgpu.code in
          let opt, report = So.Peephole.optimise_program ~rules code in
          Format.printf "%-14s %d -> %d insns, %d rewrite(s), %d nop(s), ~%d \
                         cycles saved per straight-line pass@."
            w.Ggpu_kernels.Suite.name (Array.length code) (Array.length opt)
            (List.fold_left (fun acc (_, n) -> acc + n) 0
               report.So.Peephole.applied)
            report.So.Peephole.nops_removed report.So.Peephole.saved_cycles;
          List.iter
            (fun (rule, n) ->
              Format.printf "  %dx %s@." n (So.Rule.to_string rule))
            report.So.Peephole.applied;
          if asm then
            Format.printf "--- before@.%a@.--- after@.%a@."
              Ggpu_isa.Fgpu_asm.pp_program code Ggpu_isa.Fgpu_asm.pp_program opt)
        (workloads_of kernel);
      Ok ()
    in
    let term =
      Term.(
        term_result ~usage:false
          (const run $ kernel_term $ rules_file_term $ asm_term))
    in
    Cmd.v
      (Cmd.info "apply"
         ~doc:
           "Apply the rule table to suite kernels and show what fires \
            (static view; no simulation)")
      term
  in
  let report_cmd =
    let run kernel rules_file cus =
      let rules = load_rules rules_file in
      ignore rules;
      Format.printf "%-14s %10s %10s %8s %s@." "kernel" "cycles" "baseline"
        "delta" "rewrites";
      let total_base = ref 0 and total_opt = ref 0 and improved = ref 0 in
      List.iter
        (fun w ->
          let size = Ggpu_kernels.Suite_runner.default_size w in
          let cycles ~superopt =
            let compiled =
              Ggpu_kernels.Codegen_fgpu.compile ~superopt
                w.Ggpu_kernels.Suite.kernel
            in
            let config = Ggpu_fgpu.Config.with_cus Ggpu_fgpu.Config.default cus in
            let r =
              Ggpu_kernels.Run_fgpu.run ~config compiled
                ~args:(w.Ggpu_kernels.Suite.mk_args ~size)
                ~global_size:(w.Ggpu_kernels.Suite.global_size ~size)
                ~local_size:(min w.Ggpu_kernels.Suite.local_size size)
                ()
            in
            ( r.Ggpu_kernels.Run_fgpu.stats.Ggpu_fgpu.Stats.cycles,
              compiled.Ggpu_kernels.Codegen_fgpu.peephole )
          in
          let base, _ = cycles ~superopt:false in
          let opt, report = cycles ~superopt:true in
          total_base := !total_base + base;
          total_opt := !total_opt + opt;
          if opt < base then incr improved;
          Format.printf "%-14s %10d %10d %7.2f%% %d@." w.Ggpu_kernels.Suite.name
            opt base
            (100.0 *. float_of_int (base - opt) /. float_of_int (max 1 base))
            (List.fold_left (fun acc (_, n) -> acc + n) 0
               report.So.Peephole.applied
            + report.So.Peephole.nops_removed))
        (workloads_of kernel);
      Format.printf "total: %d -> %d cycles (%.2f%% saved), %d kernel(s) \
                     improved@."
        !total_base !total_opt
        (100.0
        *. float_of_int (!total_base - !total_opt)
        /. float_of_int (max 1 !total_base))
        !improved;
      Ok ()
    in
    let term =
      Term.(
        term_result ~usage:false
          (const run $ kernel_term $ rules_file_term $ cus_term))
    in
    Cmd.v
      (Cmd.info "report"
         ~doc:
           "Simulate each kernel with and without the peephole pass and \
            report the cycle reduction")
      term
  in
  Cmd.group
    (Cmd.info "superopt"
       ~doc:
         "FGPU ISA superoptimizer: mine verified rewrite rules and inspect \
          the peephole pass they feed")
    [ search_cmd; mine_cmd; apply_cmd; report_cmd ]

let () =
  let doc = "open-source generator of GPU-like ASIC accelerators" in
  let info = Cmd.info "gpuplanner" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            synth_cmd; dse_cmd; map_cmd; layout_cmd; table1_cmd; versions_cmd;
            compare_cmd;
            run_cmd; bench_cmd; perf_report_cmd; fi_cmd; profile_cmd;
            trace_check_cmd; verilog_cmd; serve_cmd; client_cmd; superopt_cmd;
          ]))
