(* G-GPU simulator tests: functional equivalence with the reference
   interpreter on all seven paper benchmarks, divergence handling,
   scaling behaviour with CU count, cache/AXI contention, and barrier
   semantics. *)

open Ggpu_kernels
open Ggpu_fgpu

let i32_array = Alcotest.(array int32)

let run_workload ?(config = Config.default) w ~size =
  let args = w.Suite.mk_args ~size in
  let compiled = Codegen_fgpu.compile w.Suite.kernel in
  let result =
    Run_fgpu.run ~config compiled ~args
      ~global_size:(w.Suite.global_size ~size)
      ~local_size:(min w.Suite.local_size size)
      ()
  in
  (args, result)

let test_gpu_matches_reference () =
  List.iter
    (fun w ->
      let size = w.Suite.round_size (min 128 w.Suite.riscv_size) in
      let args, result = run_workload w ~size in
      Alcotest.check i32_array
        (Printf.sprintf "%s gpu vs reference" w.Suite.name)
        (w.Suite.expected ~size args)
        (Run_fgpu.output result w.Suite.output_buffer))
    Suite.all

let test_gpu_multi_cu_matches_reference () =
  List.iter
    (fun cus ->
      let config = Config.with_cus Config.default cus in
      List.iter
        (fun w ->
          let size = w.Suite.round_size (min 256 w.Suite.ggpu_size) in
          let args, result = run_workload ~config w ~size in
          Alcotest.check i32_array
            (Printf.sprintf "%s gpu(%dcu) vs reference" w.Suite.name cus)
            (w.Suite.expected ~size args)
            (Run_fgpu.output result w.Suite.output_buffer))
        Suite.all)
    [ 2; 4; 8 ]

let test_more_cus_not_slower () =
  (* a parallel kernel must not slow down when CUs are added *)
  let cycles cus =
    let config = Config.with_cus Config.default cus in
    let _, result = run_workload ~config Suite.vec_mul ~size:4096 in
    result.Run_fgpu.stats.Stats.cycles
  in
  let c1 = cycles 1 and c2 = cycles 2 and c8 = cycles 8 in
  Alcotest.(check bool)
    (Printf.sprintf "2 CU faster (%d vs %d)" c2 c1)
    true (c2 < c1);
  Alcotest.(check bool)
    (Printf.sprintf "8 CU fastest (%d vs %d)" c8 c2)
    true (c8 <= c2)

let test_scaling_sublinear_for_memory_bound () =
  (* copy is memory bound: speedup from 1 to 8 CUs is limited by the
     shared cache/AXI, the effect behind the paper's Fig. 5 shape *)
  let cycles cus =
    let config = Config.with_cus Config.default cus in
    let _, result = run_workload ~config Suite.copy ~size:8192 in
    result.Run_fgpu.stats.Stats.cycles
  in
  let c1 = cycles 1 and c8 = cycles 8 in
  let speedup = float_of_int c1 /. float_of_int c8 in
  Alcotest.(check bool)
    (Printf.sprintf "memory-bound speedup %.2f below 6x" speedup)
    true (speedup < 6.0);
  Alcotest.(check bool)
    (Printf.sprintf "still some speedup %.2f" speedup)
    true (speedup > 1.05)

let test_divergence_counted () =
  (* a kernel whose branches depend on the work-item id must produce
     divergent issues *)
  let kernel =
    {
      Ast.name = "diverge";
      params = [ Ast.Buffer "out"; Ast.Scalar "n" ];
      body =
        [
          Ast.Let ("i", Ast.Global_id);
          Ast.If
            ( Ast.(var "i" <: var "n"),
              [
                Ast.If
                  ( Ast.(Binop (And, var "i", const 1) ==: const 0),
                    [ Ast.Store ("out", Ast.var "i", Ast.(var "i" *: const 2)) ],
                    [ Ast.Store ("out", Ast.var "i", Ast.(const 0 -: var "i")) ]
                  );
              ],
              [] );
        ];
    }
  in
  let n = 128 in
  let args =
    {
      Interp.buffers = [ ("out", Array.make n 0l) ];
      scalars = [ ("n", Int32.of_int n) ];
    }
  in
  let compiled = Codegen_fgpu.compile kernel in
  let result =
    Run_fgpu.run compiled ~args ~global_size:n ~local_size:64 ()
  in
  let expected =
    Array.init n (fun i ->
        if i land 1 = 0 then Int32.of_int (2 * i) else Int32.of_int (-i))
  in
  Alcotest.check i32_array "divergent kernel output" expected
    (Run_fgpu.output result "out");
  Alcotest.(check bool) "divergent issues > 0" true
    (result.Run_fgpu.stats.Stats.divergent_issues > 0)

let test_barrier_releases () =
  (* one wavefront per workgroup still passes its barrier; with several
     wavefronts all must arrive first - the run simply completing
     exercises the release logic *)
  let kernel =
    {
      Ast.name = "barrier";
      params = [ Ast.Buffer "out" ];
      body =
        [
          Ast.Let ("i", Ast.Global_id);
          Ast.Store ("out", Ast.var "i", Ast.var "i");
          Ast.Barrier;
          (* after the barrier, read a neighbour within the workgroup *)
          Ast.Let ("lid", Ast.Local_id);
          Ast.Let ("base", Ast.(var "i" -: var "lid"));
          Ast.Let
            ("peer", Ast.(var "base" +: Binop (Rem, var "lid" +: const 1, Local_size)));
          Ast.Store ("out", Ast.var "i", Ast.load "out" (Ast.var "peer"));
        ];
    }
  in
  let n = 256 in
  let args = { Interp.buffers = [ ("out", Array.make n 0l) ]; scalars = [] } in
  let compiled = Codegen_fgpu.compile kernel in
  let result = Run_fgpu.run compiled ~args ~global_size:n ~local_size:128 () in
  let out = Run_fgpu.output result "out" in
  Alcotest.(check bool) "barriers seen" true
    (result.Run_fgpu.stats.Stats.barriers > 0);
  (* each item must hold its workgroup neighbour's id *)
  let ok = ref true in
  for i = 0 to n - 1 do
    let lid = i mod 128 in
    let base = i - lid in
    let peer = base + ((lid + 1) mod 128) in
    if out.(i) <> Int32.of_int peer then ok := false
  done;
  Alcotest.(check bool) "neighbour exchange" true !ok

let test_cache_stats_consistent () =
  let _, result = run_workload Suite.copy ~size:4096 in
  let s = result.Run_fgpu.stats in
  Alcotest.(check int) "requests = hits + misses"
    s.Stats.line_requests
    (s.Stats.cache_hits + s.Stats.cache_misses);
  Alcotest.(check bool) "some misses (cold cache)" true (s.Stats.cache_misses > 0);
  Alcotest.(check bool) "axi words moved" true (s.Stats.axi_words > 0)

let test_axi_bandwidth_matters () =
  (* fewer AXI ports must not make a streaming kernel faster *)
  let cycles ports =
    let config =
      Config.validate
        {
          Config.default with
          Config.num_cus = 4;
          axi = { Config.default.Config.axi with Config.data_ports = ports };
        }
    in
    let _, result = run_workload ~config Suite.copy ~size:8192 in
    result.Run_fgpu.stats.Stats.cycles
  in
  Alcotest.(check bool) "1 port slower than 4" true (cycles 1 > cycles 4)

let test_empty_grid () =
  let compiled = Codegen_fgpu.compile Suite.copy.Suite.kernel in
  let args = Suite.copy.Suite.mk_args ~size:16 in
  let result = Run_fgpu.run compiled ~args ~global_size:0 ~local_size:64 () in
  Alcotest.(check int) "no cycles" 0 result.Run_fgpu.stats.Stats.cycles

let test_bad_config_rejected () =
  match Config.with_cus Config.default 9 with
  | _ -> Alcotest.fail "expected Bad_config"
  | exception Config.Bad_config _ -> ()

let test_workgroup_accounting () =
  let _, result = run_workload Suite.copy ~size:1024 in
  (* 1024 items / local 256 = 4 workgroups *)
  Alcotest.(check int) "workgroups" 4 result.Run_fgpu.stats.Stats.workgroups

(* Property: GPU result equals interpreter result for random sizes on a
   divergent kernel (div_int exercises the iterative divider too). *)
let prop_gpu_div_random =
  QCheck.Test.make ~name:"gpu div_int correct on random sizes" ~count:10
    QCheck.(int_range 1 500)
    (fun size ->
      let args, result = run_workload Suite.div_int ~size in
      Run_fgpu.output result "out" = Suite.div_int.Suite.expected ~size args)

let suite =
  [
    ( "fgpu",
      [
        Alcotest.test_case "gpu matches reference" `Quick
          test_gpu_matches_reference;
        Alcotest.test_case "multi-CU matches reference" `Quick
          test_gpu_multi_cu_matches_reference;
        Alcotest.test_case "more CUs not slower" `Quick test_more_cus_not_slower;
        Alcotest.test_case "memory-bound scaling sublinear" `Quick
          test_scaling_sublinear_for_memory_bound;
        Alcotest.test_case "divergence counted" `Quick test_divergence_counted;
        Alcotest.test_case "barrier releases" `Quick test_barrier_releases;
        Alcotest.test_case "cache stats consistent" `Quick
          test_cache_stats_consistent;
        Alcotest.test_case "axi bandwidth matters" `Quick
          test_axi_bandwidth_matters;
        Alcotest.test_case "empty grid" `Quick test_empty_grid;
        Alcotest.test_case "bad config rejected" `Quick test_bad_config_rejected;
        Alcotest.test_case "workgroup accounting" `Quick
          test_workgroup_accounting;
        QCheck_alcotest.to_alcotest prop_gpu_div_random;
      ] );
  ]
