test/test_hw.ml: Alcotest Cell Ggpu_hw List Macro_spec Net Netlist Op Printf QCheck QCheck_alcotest Result String Topo
