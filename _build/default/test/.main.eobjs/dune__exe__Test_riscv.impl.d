test/test_riscv.ml: Alcotest Cpu Ggpu_isa Ggpu_riscv Int32 Rv32 Rv32_asm
