test/test_planner.ml: Alcotest Dse Flow Ggpu_core Ggpu_hw Ggpu_layout Ggpu_rtlgen Ggpu_synth Ggpu_tech List Map Printf Result Spec String Tech Timing
