test/test_tech.ml: Alcotest Float Ggpu_hw Ggpu_tech List Macro_spec Memlib Metal Op QCheck QCheck_alcotest Stdcell Tech Wire
