test/main.mli:
