test/test_synth.ml: Alcotest Arch_params Area Cell Generate Ggpu_hw Ggpu_rtlgen Ggpu_synth Ggpu_tech List Macro_spec Memlib Netlist Op Power Printf QCheck QCheck_alcotest Stdcell String Tech Timing
