test/test_fgpu.ml: Alcotest Array Ast Codegen_fgpu Config Ggpu_fgpu Ggpu_kernels Int32 Interp List Printf QCheck QCheck_alcotest Run_fgpu Stats Suite
