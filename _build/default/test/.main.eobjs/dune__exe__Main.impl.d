test/main.ml: Alcotest Test_compiler Test_fgpu Test_hw Test_isa Test_kernels Test_layout Test_misc Test_planner Test_riscv Test_synth Test_tech
