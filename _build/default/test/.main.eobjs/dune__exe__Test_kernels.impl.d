test/test_kernels.ml: Alcotest Array Ast Check Codegen_fgpu Codegen_rv32 Ggpu_kernels Ggpu_riscv Int32 Interp List Lower Printf QCheck QCheck_alcotest Regalloc Run_rv32 Suite Vir
