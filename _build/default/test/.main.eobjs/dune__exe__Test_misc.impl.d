test/test_misc.ml: Alcotest Array Codegen_fgpu Compare Fgpu_asm Fgpu_isa Ggpu_core Ggpu_fgpu Ggpu_isa Ggpu_kernels Ggpu_tech Int32 Interp List Parse Printf Run_fgpu Rv32_asm Spec Suite
