test/test_isa.ml: Alcotest Array Fgpu_asm Fgpu_isa Ggpu_isa Int32 List Printf QCheck QCheck_alcotest Rv32 Rv32_asm
