(* Tests for physical synthesis: floorplan geometry, routing estimates,
   post-route timing, and the simulator's internal event heap and cache
   timing model. *)

open Ggpu_tech
open Ggpu_layout
open Ggpu_fgpu

let tech = Tech.default_65nm

let floorplan_of ~num_cus =
  let nl = Ggpu_rtlgen.Generate.generate_cus ~num_cus in
  (nl, Floorplan.build tech nl ~num_cus)

(* --- Floorplan ---------------------------------------------------------- *)

let test_partitions_inside_die () =
  List.iter
    (fun num_cus ->
      let _, fp = floorplan_of ~num_cus in
      let die = fp.Floorplan.die in
      List.iter
        (fun p ->
          let r = p.Floorplan.rect in
          let inside =
            r.Floorplan.x >= -.1e-6
            && r.Floorplan.y >= -.1e-6
            && r.Floorplan.x +. r.Floorplan.w
               <= die.Floorplan.w +. 1e-6
            && r.Floorplan.y +. r.Floorplan.h
               <= die.Floorplan.h +. 1e-6
          in
          Alcotest.(check bool)
            (Printf.sprintf "%dcu %s inside die" num_cus p.Floorplan.part_name)
            true inside)
        fp.Floorplan.partitions)
    [ 1; 2; 4; 8 ]

let test_cu_partitions_disjoint () =
  let _, fp = floorplan_of ~num_cus:8 in
  let cus =
    List.filter
      (fun p -> String.length p.Floorplan.part_name >= 2
                && String.sub p.Floorplan.part_name 0 2 = "cu")
      fp.Floorplan.partitions
  in
  Alcotest.(check int) "eight CUs" 8 (List.length cus);
  let overlap a b =
    let ra = a.Floorplan.rect and rb = b.Floorplan.rect in
    let eps = 1e-6 in
    ra.Floorplan.x +. ra.Floorplan.w > rb.Floorplan.x +. eps
    && rb.Floorplan.x +. rb.Floorplan.w > ra.Floorplan.x +. eps
    && ra.Floorplan.y +. ra.Floorplan.h > rb.Floorplan.y +. eps
    && rb.Floorplan.y +. rb.Floorplan.h > ra.Floorplan.y +. eps
  in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j then
            Alcotest.(check bool)
              (Printf.sprintf "%s vs %s disjoint" a.Floorplan.part_name
                 b.Floorplan.part_name)
              false (overlap a b))
        cus)
    cus

let test_die_grows_with_cus () =
  let area n =
    let _, fp = floorplan_of ~num_cus:n in
    Floorplan.die_area_mm2 fp
  in
  Alcotest.(check bool) "8cu > 4cu > 1cu" true
    (area 8 > area 4 && area 4 > area 1)

let test_worst_distance_grows_with_cus () =
  let d n =
    let _, fp = floorplan_of ~num_cus:n in
    Floorplan.worst_cu_gmc_distance_mm fp
  in
  Alcotest.(check bool)
    (Printf.sprintf "8cu (%.2f) > 1cu (%.2f)" (d 8) (d 1))
    true
    (d 8 > 2.0 *. d 1)

let test_distance_symmetry () =
  let _, fp = floorplan_of ~num_cus:4 in
  let ab = Floorplan.distance fp ~from_:"cu0" ~to_:"gmc" in
  let ba = Floorplan.distance fp ~from_:"gmc" ~to_:"cu0" in
  Alcotest.(check (float 1e-9)) "symmetric" ab ba

(* --- Route --------------------------------------------------------------- *)

let test_route_totals_consistent () =
  let nl, fp = floorplan_of ~num_cus:1 in
  let route = Route.estimate tech nl fp ~period_ns:2.0 ~base_macros:51 in
  let layer_sum =
    List.fold_left (fun acc (_, um) -> acc +. um) 0.0 route.Route.per_layer_um
  in
  Alcotest.(check bool)
    (Printf.sprintf "layers (%.3e) ~ total (%.3e)" layer_sum route.Route.total_um)
    true
    (abs_float (layer_sum -. route.Route.total_um) /. route.Route.total_um < 0.05);
  Alcotest.(check (float 1e-9)) "intra + inter = total"
    route.Route.total_um
    (route.Route.intra_um +. route.Route.inter_um)

let test_congestion_grows_with_pressure_and_fragmentation () =
  let base = Route.congestion_factor ~period_ns:2.0 ~macros:51 ~base_macros:51 in
  let fast = Route.congestion_factor ~period_ns:1.5 ~macros:51 ~base_macros:51 in
  let frag = Route.congestion_factor ~period_ns:2.0 ~macros:71 ~base_macros:51 in
  Alcotest.(check (float 1e-9)) "baseline is 1" 1.0 base;
  Alcotest.(check bool) "pressure" true (fast > base);
  Alcotest.(check bool) "fragmentation" true (frag > base)

let test_optimised_routes_more_wire () =
  (* the Table II phenomenon: tighter target -> much more wire *)
  let wl ~freq =
    let nl = Ggpu_rtlgen.Generate.generate_cus ~num_cus:1 in
    let _ =
      Ggpu_core.Dse.explore tech nl ~num_cus:1
        ~period_ns:(1000.0 /. float_of_int freq)
    in
    let fp = Floorplan.build tech nl ~num_cus:1 in
    (Route.estimate tech nl fp
       ~period_ns:(1000.0 /. float_of_int freq)
       ~base_macros:51)
      .Route.total_um
  in
  let relaxed = wl ~freq:500 and tight = wl ~freq:667 in
  let ratio = tight /. relaxed in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.1f in [2.5, 7]" ratio)
    true
    (ratio > 2.5 && ratio < 7.0)

(* --- Post-route timing --------------------------------------------------- *)

let test_wire_delay_quadratic () =
  let d1 = Timing_post.unbuffered_rc_ns tech ~length_mm:1.0 in
  let d2 = Timing_post.unbuffered_rc_ns tech ~length_mm:2.0 in
  Alcotest.(check (float 1e-9)) "quadratic" (4.0 *. d1) d2

let test_quantised_frequency () =
  let nl, fp = floorplan_of ~num_cus:1 in
  let t = Timing_post.analyse tech nl fp in
  let q = Timing_post.quantised_mhz t in
  Alcotest.(check bool) "multiple of 10" true
    (Float.rem q 10.0 < 1e-9);
  Alcotest.(check bool) "not above raw" true (q <= t.Timing_post.achieved_mhz)

(* --- Event heap ---------------------------------------------------------- *)

let test_event_heap_ordering () =
  let h = Event_heap.create ~dummy:(-1) in
  List.iter (fun (t, v) -> Event_heap.push h t v)
    [ (5, 50); (1, 10); (3, 30); (1, 11); (4, 40); (2, 20) ];
  let rec drain acc =
    if Event_heap.is_empty h then List.rev acc
    else drain (fst (Event_heap.pop h) :: acc)
  in
  Alcotest.(check (list int)) "sorted times" [ 1; 1; 2; 3; 4; 5 ] (drain [])

let prop_event_heap_sorted =
  QCheck.Test.make ~name:"event heap pops sorted" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 50) (int_range 0 1000))
    (fun times ->
      let h = Event_heap.create ~dummy:0 in
      List.iteri (fun i t -> Event_heap.push h t i) times;
      let rec drain acc =
        if Event_heap.is_empty h then List.rev acc
        else drain (fst (Event_heap.pop h) :: acc)
      in
      drain [] = List.sort Int.compare times)

let test_event_heap_empty_pop () =
  let h = Event_heap.create ~dummy:0 in
  match Event_heap.pop h with
  | _ -> Alcotest.fail "expected Empty"
  | exception Event_heap.Empty -> ()

(* --- Cache timing model --------------------------------------------------- *)

let mk_cache () =
  let stats = Stats.create () in
  (Cache.create Config.default ~stats, stats)

let test_cache_hit_after_miss () =
  let cache, stats = mk_cache () in
  let t1 = Cache.access cache ~now:0 ~addr:0x1000 ~write:false in
  let t2 = Cache.access cache ~now:t1 ~addr:0x1000 ~write:false in
  Alcotest.(check int) "one miss" 1 stats.Stats.cache_misses;
  Alcotest.(check int) "one hit" 1 stats.Stats.cache_hits;
  Alcotest.(check bool) "hit faster than miss" true (t2 - t1 < t1)

let test_cache_dirty_eviction_costs () =
  let cache, stats = mk_cache () in
  let line_bytes = Config.default.Config.cache.Config.line_words * 4 in
  let sets =
    Config.default.Config.cache.Config.size_bytes / line_bytes
  in
  (* write a line, then map a conflicting line to the same set *)
  let _ = Cache.access cache ~now:0 ~addr:0x0 ~write:true in
  let conflicting = sets * line_bytes in
  let _ = Cache.access cache ~now:1000 ~addr:conflicting ~write:false in
  Alcotest.(check int) "eviction recorded" 1 stats.Stats.evictions;
  (* the write-back moved a line plus the new fill *)
  Alcotest.(check int) "axi words = 3 lines (wb + 2 fills)"
    (3 * Config.default.Config.cache.Config.line_words)
    stats.Stats.axi_words

let test_cache_port_serialisation () =
  let cache, _ = mk_cache () in
  let ports = Array.length (Array.make Config.default.Config.cache.Config.ports 0) in
  (* issue 3x ports requests at the same cycle to distinct lines: later
     ones must start later *)
  let times =
    List.init (3 * ports) (fun i ->
        Cache.access cache ~now:0 ~addr:(0x4000 + (i * 64)) ~write:false)
  in
  let first = List.nth times 0 and last = List.nth times (List.length times - 1) in
  Alcotest.(check bool) "later requests finish later" true (last > first)

let suite =
  [
    ( "layout",
      [
        Alcotest.test_case "partitions inside die" `Quick
          test_partitions_inside_die;
        Alcotest.test_case "cu partitions disjoint" `Quick
          test_cu_partitions_disjoint;
        Alcotest.test_case "die grows with cus" `Quick test_die_grows_with_cus;
        Alcotest.test_case "worst distance grows" `Quick
          test_worst_distance_grows_with_cus;
        Alcotest.test_case "distance symmetry" `Quick test_distance_symmetry;
        Alcotest.test_case "route totals consistent" `Quick
          test_route_totals_consistent;
        Alcotest.test_case "congestion factors" `Quick
          test_congestion_grows_with_pressure_and_fragmentation;
        Alcotest.test_case "optimised routes more wire" `Quick
          test_optimised_routes_more_wire;
        Alcotest.test_case "wire delay quadratic" `Quick
          test_wire_delay_quadratic;
        Alcotest.test_case "quantised frequency" `Quick test_quantised_frequency;
        Alcotest.test_case "event heap ordering" `Quick test_event_heap_ordering;
        Alcotest.test_case "event heap empty pop" `Quick
          test_event_heap_empty_pop;
        Alcotest.test_case "cache hit after miss" `Quick
          test_cache_hit_after_miss;
        Alcotest.test_case "cache dirty eviction" `Quick
          test_cache_dirty_eviction_costs;
        Alcotest.test_case "cache port serialisation" `Quick
          test_cache_port_serialisation;
        QCheck_alcotest.to_alcotest prop_event_heap_sorted;
      ] );
  ]
