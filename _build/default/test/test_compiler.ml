(* Tests for the compiler front end and middle end: the textual parser,
   the VIR optimiser, and their end-to-end composition (parsed +
   optimised kernels still agree with the reference interpreter on both
   targets). *)

open Ggpu_kernels

let i32_array = Alcotest.(array int32)

(* --- Parser ------------------------------------------------------------ *)

let vec_mul_src =
  {|
  // element-wise product
  kernel vec_mul(global int* a, global int* b, global int* out, int n) {
    int i = get_global_id(0);
    if (i < n) {
      out[i] = a[i] * b[i];
    }
  }
|}

let test_parse_vec_mul () =
  let kernel = Parse.parse_one vec_mul_src in
  Alcotest.(check string) "name" "vec_mul" kernel.Ast.name;
  Alcotest.(check (list string)) "buffers" [ "a"; "b"; "out" ]
    (Ast.buffers kernel);
  Alcotest.(check (list string)) "scalars" [ "n" ] (Ast.scalars kernel)

let test_parse_matches_dsl_semantics () =
  (* the parsed vec_mul and the hand-built suite vec_mul must compute
     the same function *)
  let parsed = Parse.parse_one vec_mul_src in
  let size = 128 in
  let args1 = Suite.vec_mul.Suite.mk_args ~size in
  let args2 = Suite.vec_mul.Suite.mk_args ~size in
  Interp.run Suite.vec_mul.Suite.kernel ~args:args1 ~global_size:size
    ~local_size:64;
  Interp.run parsed ~args:args2 ~global_size:size ~local_size:64;
  Alcotest.check i32_array "same results"
    (List.assoc "out" args1.Interp.buffers)
    (List.assoc "out" args2.Interp.buffers)

let test_parse_control_flow () =
  let src =
    {|
    kernel count_down(global int* out, int n) {
      int i = get_global_id(0);
      if (i < n) {
        int acc = 0;
        for (int k = 0; k < 10; k++) {
          acc = acc + k;
        }
        int v = i;
        while (v > 0) {
          acc = acc + 1;
          v = v - 8;
        }
        out[i] = acc;
      } else {
        /* out of range: mark it */
        out[i] = 0 - 1;
      }
    }
  |}
  in
  let kernel = Parse.parse_one src in
  let n = 32 in
  let out = Array.make n 0l in
  let args =
    { Interp.buffers = [ ("out", out) ]; scalars = [ ("n", Int32.of_int n) ] }
  in
  (* reference: 45 + ceil(i/8) *)
  Interp.run kernel ~args ~global_size:n ~local_size:32;
  let expect i = Int32.of_int (45 + ((i + 7) / 8)) in
  Array.iteri
    (fun i v -> Alcotest.(check int32) (Printf.sprintf "out[%d]" i) (expect i) v)
    out

let test_parse_precedence () =
  (* 2 + 3 * 4 == 14, (2 + 3) * 4 == 20, shifts bind looser than + *)
  let src =
    {|
    kernel prec(global int* out) {
      out[0] = 2 + 3 * 4;
      out[1] = (2 + 3) * 4;
      out[2] = 1 << 2 + 1;
      out[3] = 10 - 2 - 3;
      out[4] = -5 + 1;
      out[5] = !0;
    }
  |}
  in
  let kernel = Parse.parse_one src in
  let out = Array.make 6 99l in
  let args = { Interp.buffers = [ ("out", out) ]; scalars = [] } in
  Interp.run kernel ~args ~global_size:1 ~local_size:1;
  Alcotest.check i32_array "precedence" [| 14l; 20l; 8l; 5l; -4l; 1l |] out

let expect_parse_error src =
  match Parse.parse src with
  | _ -> Alcotest.fail "expected parse error"
  | exception Parse.Parse_error _ -> ()
  | exception Check.Error _ -> ()

let test_parse_errors () =
  expect_parse_error "kernel broken(";
  expect_parse_error "kernel k() { int x = ; }";
  expect_parse_error "kernel k() { y = 1; }" (* checker rejects unbound y *);
  expect_parse_error "kernel k() { int x = get_nothing(0); }";
  expect_parse_error "kernel k() { for (int i = 0; j < 4; i++) {} }"

let test_parse_error_reports_check_violation () =
  (* the parser runs the static checker: unknown variables are rejected
     even though the syntax is fine *)
  match Parse.parse "kernel k(global int* out) { out[0] = undefined_var; }" with
  | _ -> Alcotest.fail "expected check error"
  | exception Check.Error _ -> ()

let test_parse_multiple_kernels () =
  let kernels =
    Parse.parse
      {|
      kernel a(global int* x) { x[0] = 1; }
      kernel b(global int* x) { x[0] = 2; }
    |}
  in
  Alcotest.(check (list string)) "names" [ "a"; "b" ]
    (List.map (fun k -> k.Ast.name) kernels)

(* --- Optimiser --------------------------------------------------------- *)

let count_insns program = List.length program.Vir.insns

let test_opt_constant_folding () =
  let kernel =
    Parse.parse_one
      "kernel k(global int* out) { out[0] = 2 + 3 * 4; out[1] = 100 / 0; }"
  in
  let optimised = Opt.optimise (Lower.lower kernel) in
  (* after folding there must be no Bin instructions left *)
  let bins =
    List.filter
      (function Vir.Bin _ | Vir.Cmp _ -> true | _ -> false)
      optimised.Vir.insns
  in
  Alcotest.(check int) "all arithmetic folded" 0 (List.length bins)

let test_opt_division_semantics_preserved () =
  (* folding 100/0 must produce the target semantics (-1), not crash *)
  let kernel =
    Parse.parse_one "kernel k(global int* out) { out[0] = 100 / 0; }"
  in
  let out = Array.make 1 0l in
  let args = { Interp.buffers = [ ("out", out) ]; scalars = [] } in
  Interp.run kernel ~args ~global_size:1 ~local_size:1;
  let compiled = Codegen_rv32.compile kernel in
  let result =
    Run_rv32.run compiled
      ~args:{ Interp.buffers = [ ("out", Array.make 1 0l) ]; scalars = [] }
      ~global_size:1 ~local_size:1 ()
  in
  Alcotest.(check int32) "interp" (-1l) out.(0);
  Alcotest.(check int32) "compiled+folded" (-1l) (Run_rv32.output result "out").(0)

let test_opt_shrinks_programs () =
  List.iter
    (fun w ->
      let plain = Lower.lower w.Suite.kernel in
      let optimised = Opt.optimise plain in
      Alcotest.(check bool)
        (Printf.sprintf "%s not larger (%d -> %d)" w.Suite.name
           (count_insns plain) (count_insns optimised))
        true
        (count_insns optimised <= count_insns plain))
    Suite.all

let test_opt_preserves_stores_and_control () =
  let program = Lower.lower Suite.parallel_sel.Suite.kernel in
  let optimised = Opt.optimise program in
  let count p f = List.length (List.filter f p.Vir.insns) in
  let stores = count program (function Vir.Store _ -> true | _ -> false) in
  let stores' = count optimised (function Vir.Store _ -> true | _ -> false) in
  Alcotest.(check int) "stores preserved" stores stores';
  let rets = count optimised (function Vir.Ret -> true | _ -> false) in
  Alcotest.(check bool) "ret preserved" true (rets >= 1)

(* Property: optimised code computes the same function as unoptimised,
   end to end on the GPU, for every suite kernel at a random size. *)
let prop_opt_semantics_preserved =
  QCheck.Test.make ~name:"optimiser preserves semantics (gpu)" ~count:15
    QCheck.(pair (int_range 0 6) (int_range 1 200))
    (fun (kernel_idx, size) ->
      let w = List.nth Suite.all kernel_idx in
      let size = w.Suite.round_size (max 1 size) in
      let run ~optimise =
        let args = w.Suite.mk_args ~size in
        let compiled = Codegen_fgpu.compile ~optimise w.Suite.kernel in
        let result =
          Run_fgpu.run compiled ~args
            ~global_size:(w.Suite.global_size ~size)
            ~local_size:(min w.Suite.local_size size)
            ()
        in
        Run_fgpu.output result w.Suite.output_buffer
      in
      run ~optimise:true = run ~optimise:false)

let test_opt_speeds_up_execution () =
  (* optimisation must reduce (or preserve) simulated cycles *)
  let w = Suite.mat_mul in
  let size = 256 in
  let cycles ~optimise =
    let args = w.Suite.mk_args ~size in
    let compiled = Codegen_fgpu.compile ~optimise w.Suite.kernel in
    let result =
      Run_fgpu.run compiled ~args ~global_size:size ~local_size:64 ()
    in
    result.Run_fgpu.stats.Ggpu_fgpu.Stats.cycles
  in
  Alcotest.(check bool) "not slower" true
    (cycles ~optimise:true <= cycles ~optimise:false)

(* --- Verilog export ----------------------------------------------------- *)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_verilog_export () =
  let nl = Ggpu_rtlgen.Generate.generate_cus ~num_cus:1 in
  let v = Ggpu_hw.Verilog.to_string nl in
  Alcotest.(check bool) "module header" true (contains v "module ggpu_1cu");
  Alcotest.(check bool) "macro instantiated" true (contains v "sram_2048x128_2p");
  Alcotest.(check bool) "has always blocks" true (contains v "always @(posedge clk)");
  Alcotest.(check bool) "endmodule" true (contains v "endmodule");
  (* divided memories show up as bank instances after the DSE *)
  let _ =
    Ggpu_core.Dse.explore Ggpu_tech.Tech.default_65nm nl ~num_cus:1
      ~period_ns:1.695
  in
  let v2 = Ggpu_hw.Verilog.to_string nl in
  Alcotest.(check bool) "bank macros appear" true (contains v2 "bank")

let suite =
  [
    ( "compiler",
      [
        Alcotest.test_case "parse vec_mul" `Quick test_parse_vec_mul;
        Alcotest.test_case "parse matches dsl" `Quick
          test_parse_matches_dsl_semantics;
        Alcotest.test_case "parse control flow" `Quick test_parse_control_flow;
        Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "parse runs checker" `Quick
          test_parse_error_reports_check_violation;
        Alcotest.test_case "parse multiple kernels" `Quick
          test_parse_multiple_kernels;
        Alcotest.test_case "opt constant folding" `Quick
          test_opt_constant_folding;
        Alcotest.test_case "opt division semantics" `Quick
          test_opt_division_semantics_preserved;
        Alcotest.test_case "opt shrinks programs" `Quick test_opt_shrinks_programs;
        Alcotest.test_case "opt preserves stores" `Quick
          test_opt_preserves_stores_and_control;
        Alcotest.test_case "opt not slower" `Quick test_opt_speeds_up_execution;
        Alcotest.test_case "verilog export" `Quick test_verilog_export;
        QCheck_alcotest.to_alcotest prop_opt_semantics_preserved;
      ] );
  ]
