(* Cross-cutting tests: the comparison math, simulator utilisation,
   input determinism, spec/period arithmetic, assembler sizing, and the
   workgroup-barrier reduction pattern end-to-end on the GPU. *)

open Ggpu_kernels
open Ggpu_core

let tech = Ggpu_tech.Tech.default_65nm

(* --- Compare math -------------------------------------------------------- *)

let test_speedup_formula () =
  (* synthetic row: rv 100 kcycles at size 100; ggpu 50 kcycles at size
     1600 (ratio 16): raw speedup = 100*16/50 = 32 *)
  let row =
    {
      Compare.kernel = "synthetic";
      riscv_size = 100;
      ggpu_size = 1600;
      riscv_kcycles = 100.0;
      ggpu_kcycles = [ (1, 50.0); (2, 25.0); (4, 12.5); (8, 6.25) ];
    }
  in
  let speedups = Compare.speedups ~tech [ row ] in
  match speedups with
  | [ s ] ->
      Alcotest.(check (float 1e-6)) "raw at 1 CU" 32.0 (List.assoc 1 s.Compare.raw);
      Alcotest.(check (float 1e-6)) "raw at 8 CU" 256.0 (List.assoc 8 s.Compare.raw);
      (* derated = raw / (area ratio); check it divides by a positive
         growing ratio *)
      let d1 = List.assoc 1 s.Compare.derated in
      let d8 = List.assoc 8 s.Compare.derated in
      Alcotest.(check bool) "derating shrinks values" true
        (d1 < 32.0 && d8 < 256.0);
      let ratio1 = 32.0 /. d1 and ratio8 = 256.0 /. d8 in
      Alcotest.(check bool)
        (Printf.sprintf "area ratio grows with CUs (%.1f -> %.1f)" ratio1 ratio8)
        true (ratio8 > 4.0 *. ratio1)
  | _ -> Alcotest.fail "one speedup row expected"

let test_riscv_area_sane () =
  let a = Compare.riscv_area_mm2 tech in
  (* the paper implies ~0.7 mm2 (1-CU G-GPU = 6.5x) *)
  Alcotest.(check bool)
    (Printf.sprintf "riscv area %.2f in [0.3, 1.2]" a)
    true
    (a > 0.3 && a < 1.2)

(* --- Simulator utilisation ------------------------------------------------ *)

let run_stats ?(cus = 1) w ~size =
  let config = Ggpu_fgpu.Config.with_cus Ggpu_fgpu.Config.default cus in
  let args = w.Suite.mk_args ~size in
  let compiled = Codegen_fgpu.compile w.Suite.kernel in
  let r =
    Run_fgpu.run ~config compiled ~args
      ~global_size:(w.Suite.global_size ~size)
      ~local_size:(min w.Suite.local_size size)
      ()
  in
  r.Run_fgpu.stats

let test_utilisation_bounds () =
  let stats = run_stats Suite.mat_mul ~size:1024 in
  let u = Ggpu_fgpu.Stats.utilisation stats ~num_cus:1 in
  Alcotest.(check bool) (Printf.sprintf "0 < %.2f <= 1" u) true (u > 0.0 && u <= 1.0)

let test_compute_bound_utilisation_high () =
  (* mat_mul on 1 CU keeps the vector pipeline nearly saturated *)
  let stats = run_stats Suite.mat_mul ~size:1024 in
  let u = Ggpu_fgpu.Stats.utilisation stats ~num_cus:1 in
  Alcotest.(check bool) (Printf.sprintf "utilisation %.2f > 0.7" u) true (u > 0.7)

let test_memory_bound_utilisation_drops_at_8cu () =
  (* copy at 8 CUs starves on AXI bandwidth: pipelines go idle *)
  let u1 =
    Ggpu_fgpu.Stats.utilisation (run_stats ~cus:1 Suite.copy ~size:16384) ~num_cus:1
  in
  let u8 =
    Ggpu_fgpu.Stats.utilisation (run_stats ~cus:8 Suite.copy ~size:16384) ~num_cus:8
  in
  Alcotest.(check bool)
    (Printf.sprintf "utilisation drops %.2f -> %.2f" u1 u8)
    true (u8 < u1 /. 1.5)

(* --- Determinism ---------------------------------------------------------- *)

let test_gen_array_deterministic () =
  let a = Suite.gen_array ~seed:42 ~len:100 ~modulus:1000 in
  let b = Suite.gen_array ~seed:42 ~len:100 ~modulus:1000 in
  let c = Suite.gen_array ~seed:43 ~len:100 ~modulus:1000 in
  Alcotest.(check bool) "same seed same data" true (a = b);
  Alcotest.(check bool) "different seed different data" true (a <> c);
  Array.iter
    (fun v ->
      Alcotest.(check bool) "in range" true (v >= 0l && v < 1000l))
    a

let test_simulation_deterministic () =
  let s1 = run_stats ~cus:4 Suite.fir ~size:512 in
  let s2 = run_stats ~cus:4 Suite.fir ~size:512 in
  Alcotest.(check int) "same cycles" s1.Ggpu_fgpu.Stats.cycles
    s2.Ggpu_fgpu.Stats.cycles;
  Alcotest.(check int) "same wf instrs" s1.Ggpu_fgpu.Stats.wf_instructions
    s2.Ggpu_fgpu.Stats.wf_instructions

(* --- Spec arithmetic ------------------------------------------------------- *)

let test_period_of_spec () =
  let spec = Spec.make ~num_cus:1 ~freq_mhz:500 () in
  Alcotest.(check (float 1e-9)) "500 MHz = 2 ns" 2.0 (Spec.period_ns spec);
  let spec = Spec.make ~num_cus:1 ~freq_mhz:667 () in
  Alcotest.(check bool) "667 MHz ~ 1.5 ns" true
    (abs_float (Spec.period_ns spec -. 1.4993) < 1e-3)

(* --- Assembler sizing ------------------------------------------------------ *)

let test_fgpu_item_sizes () =
  let open Ggpu_isa in
  Alcotest.(check int) "label" 0 (Fgpu_asm.item_size (Fgpu_asm.Label "x"));
  Alcotest.(check int) "narrow li" 1 (Fgpu_asm.item_size (Fgpu_asm.Li32 (1, 5l)));
  Alcotest.(check int) "wide li" 2
    (Fgpu_asm.item_size (Fgpu_asm.Li32 (1, 0x10000l)));
  Alcotest.(check int) "insn" 1 (Fgpu_asm.item_size (Fgpu_asm.I Fgpu_isa.Ret))

let test_rv32_split_hi_lo_roundtrip () =
  let open Ggpu_isa in
  List.iter
    (fun imm ->
      let hi, lo = Rv32_asm.split_hi_lo imm in
      let back = Int32.add (Int32.shift_left hi 12) lo in
      Alcotest.(check int32) (Printf.sprintf "roundtrip %ld" imm) imm back;
      Alcotest.(check bool) "lo fits I-imm" true (lo >= -2048l && lo <= 2047l))
    [ 0l; 1l; -1l; 0x7FFl; 0x800l; 0x801l; -2048l; -2049l; Int32.max_int; Int32.min_int ]

(* --- Barrier reduction pattern on the GPU ---------------------------------- *)

let test_barrier_tree_reduction () =
  (* per-workgroup tree reduction over a scratch buffer: exercises the
     barrier across several wavefronts per workgroup, with a pattern
     the sequential interpreter cannot run *)
  let local = 128 (* 2 wavefronts *) in
  let src =
    {|
    kernel wg_sum(global int* data, global int* partial, int n) {
      int i = get_global_id(0);
      int lid = get_local_id(0);
      int wg = get_group_id(0);
      int stride = get_local_size(0) / 2;
      while (stride > 0) {
        barrier();
        if (lid < stride) {
          if (i + stride < n) {
            data[i] = data[i] + data[i + stride];
          }
        }
        stride = stride / 2;
      }
      barrier();
      if (lid == 0) {
        partial[wg] = data[i];
      }
    }
  |}
  in
  let kernel = Parse.parse_one src in
  let n = 512 in
  let data = Array.init n (fun i -> Int32.of_int (i + 1)) in
  let groups = n / local in
  let args =
    {
      Interp.buffers =
        [ ("data", Array.copy data); ("partial", Array.make groups 0l) ];
      scalars = [ ("n", Int32.of_int n) ];
    }
  in
  let compiled = Codegen_fgpu.compile kernel in
  let result = Run_fgpu.run compiled ~args ~global_size:n ~local_size:local () in
  let partial = Run_fgpu.output result "partial" in
  Array.iteri
    (fun wg v ->
      let expect = ref 0l in
      for i = wg * local to ((wg + 1) * local) - 1 do
        expect := Int32.add !expect data.(i)
      done;
      Alcotest.(check int32) (Printf.sprintf "workgroup %d sum" wg) !expect v)
    partial;
  Alcotest.(check bool) "used barriers" true
    (result.Run_fgpu.stats.Ggpu_fgpu.Stats.barriers > 0)

let suite =
  [
    ( "misc",
      [
        Alcotest.test_case "speedup formula" `Quick test_speedup_formula;
        Alcotest.test_case "riscv area sane" `Quick test_riscv_area_sane;
        Alcotest.test_case "utilisation bounds" `Quick test_utilisation_bounds;
        Alcotest.test_case "compute-bound utilisation" `Quick
          test_compute_bound_utilisation_high;
        Alcotest.test_case "memory-bound utilisation drop" `Quick
          test_memory_bound_utilisation_drops_at_8cu;
        Alcotest.test_case "gen_array deterministic" `Quick
          test_gen_array_deterministic;
        Alcotest.test_case "simulation deterministic" `Quick
          test_simulation_deterministic;
        Alcotest.test_case "spec period" `Quick test_period_of_spec;
        Alcotest.test_case "fgpu item sizes" `Quick test_fgpu_item_sizes;
        Alcotest.test_case "rv32 split hi/lo" `Quick
          test_rv32_split_hi_lo_roundtrip;
        Alcotest.test_case "barrier tree reduction" `Quick
          test_barrier_tree_reduction;
      ] );
  ]
