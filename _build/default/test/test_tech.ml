(* Technology-model tests: the two structural properties the paper's
   design-space exploration relies on (delay grows with macro depth;
   dividing a macro costs area), plus metal stack and wire sanity. *)

open Ggpu_tech
open Ggpu_hw

let dual words bits = Macro_spec.make ~words ~bits ~ports:Macro_spec.Dual_port

let test_delay_grows_with_words () =
  let attrs words = Memlib.query Memlib.default_65nm (dual words 32) in
  let d w = (attrs w).Memlib.clk_to_q_ns in
  Alcotest.(check bool) "512 < 2048" true (d 512 < d 2048);
  Alcotest.(check bool) "2048 < 16384" true (d 2048 < d 16384)

let test_delay_grows_with_bits () =
  let d bits =
    (Memlib.query Memlib.default_65nm (dual 1024 bits)).Memlib.clk_to_q_ns
  in
  Alcotest.(check bool) "32 < 128" true (d 32 < d 128)

(* Two banks of M/2 x N are bigger and leakier than one M x N - the
   paper's stated cost of memory division. *)
let test_division_costs_area_and_leakage () =
  let whole = Memlib.query Memlib.default_65nm (dual 2048 32) in
  let half = Memlib.query Memlib.default_65nm (dual 1024 32) in
  Alcotest.(check bool) "area" true
    ((2.0 *. half.Memlib.area_um2) > whole.Memlib.area_um2);
  Alcotest.(check bool) "leakage" true
    ((2.0 *. half.Memlib.leak_nw) > whole.Memlib.leak_nw);
  (* but each bank must be faster than the whole *)
  Alcotest.(check bool) "delay" true
    (half.Memlib.clk_to_q_ns < whole.Memlib.clk_to_q_ns)

let test_single_port_unsupported () =
  let spec = Macro_spec.make ~words:256 ~bits:32 ~ports:Macro_spec.Single_port in
  match Memlib.query Memlib.default_65nm spec with
  | _ -> Alcotest.fail "expected Unsupported (paper future work)"
  | exception Memlib.Unsupported _ -> ()

let test_legal_splits () =
  let spec = dual 2048 32 in
  Alcotest.(check (list int))
    "word splits" [ 2; 4; 8; 16; 32; 64; 128 ]
    (Memlib.legal_word_splits spec);
  Alcotest.(check (list int)) "bit splits" [ 2; 4; 8; 16 ]
    (Memlib.legal_bit_splits spec)

let test_dual_port_costs_more () =
  let d = Memlib.query Memlib.default_65nm (dual 1024 32) in
  let m = Memlib.default_65nm in
  let s =
    Memlib.query
      { m with Memlib.supports_single_port = true }
      (Macro_spec.make ~words:1024 ~bits:32 ~ports:Macro_spec.Single_port)
  in
  Alcotest.(check bool) "area" true (d.Memlib.area_um2 > s.Memlib.area_um2);
  Alcotest.(check bool) "delay" true (d.Memlib.clk_to_q_ns > s.Memlib.clk_to_q_ns)

let test_metal_stack () =
  let stack = Metal.default_9layer in
  Alcotest.(check int) "nine layers" 9 (List.length stack.Metal.layers);
  Alcotest.(check int) "six signal layers" 6
    (List.length (Metal.signal_layers stack));
  (* M1/M8/M9 are power-only, as footnoted in the paper *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " power only") false
        (Metal.find stack name).Metal.signal)
    [ "M1"; "M8"; "M9" ];
  (* preference weights of signal layers sum to ~1 *)
  let total =
    List.fold_left
      (fun acc l -> acc +. l.Metal.preference)
      0.0
      (Metal.signal_layers stack)
  in
  Alcotest.(check bool) "preferences sum to 1" true (abs_float (total -. 1.0) < 1e-6)

let test_metal_capacity_decreases_up_the_stack () =
  let stack = Metal.default_9layer in
  let cap name = Metal.capacity_mm_per_mm2 (Metal.find stack name) in
  Alcotest.(check bool) "M2 >= M4" true (cap "M2" >= cap "M4");
  Alcotest.(check bool) "M4 >= M6" true (cap "M4" >= cap "M6")

let test_wire_delay_linear () =
  let w = Wire.default_65nm in
  let d1 = Wire.delay_ns w ~length_mm:1.0 in
  let d2 = Wire.delay_ns w ~length_mm:2.0 in
  Alcotest.(check (float 1e-9)) "linear" (2.0 *. d1) d2

let test_stdcell_delay_positive () =
  let s = Stdcell.default_65nm in
  List.iter
    (fun op ->
      Alcotest.(check bool)
        (Op.to_string op ^ " positive delay")
        true
        (Stdcell.comb_delay_ns s op ~width:32 > 0.0))
    [ Op.Add; Op.Mul; Op.Mux 4; Op.Not ]

(* Property: for any legal dual-port geometry the model returns positive,
   finite attributes. *)
let prop_memlib_positive =
  QCheck.Test.make ~name:"memlib attributes positive" ~count:200
    QCheck.(pair (int_range 4 16) (int_range 1 7))
    (fun (wexp, bexp) ->
      let words = 1 lsl wexp and bits = min 144 (1 lsl bexp) in
      QCheck.assume (bits >= Macro_spec.min_bits);
      let a = Memlib.query Memlib.default_65nm (dual words bits) in
      a.Memlib.clk_to_q_ns > 0.0
      && a.Memlib.area_um2 > 0.0
      && a.Memlib.leak_nw > 0.0
      && a.Memlib.read_energy_pj > 0.0
      && Float.is_finite a.Memlib.area_um2)

(* Property: the 28nm scaled technology is strictly faster and denser. *)
let prop_scaling_sane =
  QCheck.Test.make ~name:"28nm faster and denser than 65nm" ~count:50
    QCheck.(int_range 6 14)
    (fun wexp ->
      let spec = dual (1 lsl wexp) 32 in
      let a65 = Memlib.query Tech.default_65nm.Tech.memory spec in
      let a28 = Memlib.query Tech.scaled_28nm.Tech.memory spec in
      a28.Memlib.clk_to_q_ns < a65.Memlib.clk_to_q_ns
      && a28.Memlib.area_um2 < a65.Memlib.area_um2)

let suite =
  [
    ( "tech",
      [
        Alcotest.test_case "delay grows with words" `Quick
          test_delay_grows_with_words;
        Alcotest.test_case "delay grows with bits" `Quick
          test_delay_grows_with_bits;
        Alcotest.test_case "division costs area/leakage" `Quick
          test_division_costs_area_and_leakage;
        Alcotest.test_case "single port unsupported" `Quick
          test_single_port_unsupported;
        Alcotest.test_case "legal splits" `Quick test_legal_splits;
        Alcotest.test_case "dual port costs more" `Quick
          test_dual_port_costs_more;
        Alcotest.test_case "metal stack" `Quick test_metal_stack;
        Alcotest.test_case "metal capacity order" `Quick
          test_metal_capacity_decreases_up_the_stack;
        Alcotest.test_case "wire delay linear" `Quick test_wire_delay_linear;
        Alcotest.test_case "stdcell delays" `Quick test_stdcell_delay_positive;
        QCheck_alcotest.to_alcotest prop_memlib_positive;
        QCheck_alcotest.to_alcotest prop_scaling_sane;
      ] );
  ]
