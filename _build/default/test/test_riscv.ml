(* RV32IM simulator tests: small hand-written programs, M-extension
   corner cases, timing model sanity. *)

open Ggpu_isa
open Ggpu_riscv

let run_program ?(mem_words = 1024) items ~setup =
  let program = Rv32_asm.assemble items in
  let cpu = Cpu.create ~mem_words ~program () in
  setup cpu;
  let stats = Cpu.run cpu in
  (cpu, stats)

let test_arith_loop () =
  (* sum 1..10 into x10 *)
  let items =
    Rv32_asm.
      [
        I (Rv32.Addi (10, 0, 0l));
        I (Rv32.Addi (5, 0, 1l));
        I (Rv32.Addi (6, 0, 11l));
        Label "loop";
        I (Rv32.Add (10, 10, 5));
        I (Rv32.Addi (5, 5, 1l));
        Blt_to (5, 6, "loop");
        I Rv32.Ecall;
      ]
  in
  let cpu, _ = run_program items ~setup:(fun _ -> ()) in
  Alcotest.(check int32) "sum 1..10" 55l (Cpu.get_reg cpu 10)

let test_memory () =
  let items =
    Rv32_asm.
      [
        I (Rv32.Addi (5, 0, 0x100l));
        I (Rv32.Addi (6, 0, 42l));
        I (Rv32.Sw (6, 5, 0));
        I (Rv32.Lw (7, 5, 0));
        I (Rv32.Addi (7, 7, 1l));
        I (Rv32.Sw (7, 5, 4));
        I Rv32.Ecall;
      ]
  in
  let cpu, _ = run_program items ~setup:(fun _ -> ()) in
  Alcotest.(check int32) "store/load" 43l (Cpu.load_word cpu ~addr:0x104)

let test_div_corner_cases () =
  let check_op name op a b expect =
    let items = [ Rv32_asm.I (op 10 5 6); Rv32_asm.I Rv32.Ecall ] in
    let cpu, _ =
      run_program items ~setup:(fun cpu ->
          Cpu.set_reg cpu 5 a;
          Cpu.set_reg cpu 6 b)
    in
    Alcotest.(check int32) name expect (Cpu.get_reg cpu 10)
  in
  let div d a b = Rv32.Div (d, a, b) in
  let rem d a b = Rv32.Rem (d, a, b) in
  let divu d a b = Rv32.Divu (d, a, b) in
  let remu d a b = Rv32.Remu (d, a, b) in
  check_op "div by zero" div 17l 0l (-1l);
  check_op "rem by zero" rem 17l 0l 17l;
  check_op "div overflow" div Int32.min_int (-1l) Int32.min_int;
  check_op "rem overflow" rem Int32.min_int (-1l) 0l;
  check_op "divu by zero" divu 17l 0l (-1l);
  check_op "remu by zero" remu 17l 0l 17l;
  check_op "plain div" div (-7l) 2l (-3l);
  check_op "plain rem" rem (-7l) 2l (-1l)

let test_mulh () =
  let items = [ Rv32_asm.I (Rv32.Mulh (10, 5, 6)); Rv32_asm.I Rv32.Ecall ] in
  let cpu, _ =
    run_program items ~setup:(fun cpu ->
        Cpu.set_reg cpu 5 0x40000000l;
        Cpu.set_reg cpu 6 16l)
  in
  (* 0x40000000 * 16 = 2^34; high word = 4 *)
  Alcotest.(check int32) "mulh" 4l (Cpu.get_reg cpu 10)

let test_x0_is_zero () =
  let items =
    [ Rv32_asm.I (Rv32.Addi (0, 0, 42l)); Rv32_asm.I Rv32.Ecall ]
  in
  let cpu, _ = run_program items ~setup:(fun _ -> ()) in
  Alcotest.(check int32) "x0 writes ignored" 0l (Cpu.get_reg cpu 0)

let test_timing_div_heavier_than_add () =
  let mk op = [ Rv32_asm.I op; Rv32_asm.I Rv32.Ecall ] in
  let run items =
    let _, stats =
      run_program items ~setup:(fun cpu ->
          Cpu.set_reg cpu 5 100l;
          Cpu.set_reg cpu 6 7l)
    in
    stats.Cpu.cycles
  in
  let add_cycles = run (mk (Rv32.Add (10, 5, 6))) in
  let div_cycles = run (mk (Rv32.Div (10, 5, 6))) in
  Alcotest.(check bool) "div slower" true (div_cycles > add_cycles + 20)

let test_taken_branch_penalty () =
  (* taken branch costs more than fall-through *)
  let taken =
    Rv32_asm.
      [ Beq_to (0, 0, "skip"); I (Rv32.Addi (5, 5, 1l)); Label "skip"; I Rv32.Ecall ]
  in
  let not_taken =
    Rv32_asm.
      [ Bne_to (0, 0, "skip"); I (Rv32.Addi (5, 5, 1l)); Label "skip"; I Rv32.Ecall ]
  in
  let cycles items =
    let _, stats = run_program items ~setup:(fun _ -> ()) in
    stats.Cpu.cycles
  in
  (* taken path: branch(3) + ecall; not taken: branch(1) + addi(1) + ecall *)
  Alcotest.(check bool) "penalty" true (cycles taken > cycles not_taken - 1)

let test_trap_on_bad_access () =
  let items = [ Rv32_asm.I (Rv32.Lw (10, 5, 1)); Rv32_asm.I Rv32.Ecall ] in
  match
    run_program items ~setup:(fun cpu -> Cpu.set_reg cpu 5 0x100l)
  with
  | _ -> Alcotest.fail "expected misaligned trap"
  | exception Cpu.Trap _ -> ()

let test_out_of_fuel () =
  let items = Rv32_asm.[ Label "spin"; Jal_to (0, "spin") ] in
  match
    let program = Rv32_asm.assemble items in
    let cpu = Cpu.create ~mem_words:64 ~program () in
    Cpu.run ~fuel:1000 cpu
  with
  | _ -> Alcotest.fail "expected out-of-fuel"
  | exception Cpu.Out_of_fuel _ -> ()

let suite =
  [
    ( "riscv",
      [
        Alcotest.test_case "arith loop" `Quick test_arith_loop;
        Alcotest.test_case "memory" `Quick test_memory;
        Alcotest.test_case "div corner cases" `Quick test_div_corner_cases;
        Alcotest.test_case "mulh" `Quick test_mulh;
        Alcotest.test_case "x0 is zero" `Quick test_x0_is_zero;
        Alcotest.test_case "div timing" `Quick test_timing_div_heavier_than_add;
        Alcotest.test_case "branch penalty" `Quick test_taken_branch_penalty;
        Alcotest.test_case "trap on bad access" `Quick test_trap_on_bad_access;
        Alcotest.test_case "out of fuel" `Quick test_out_of_fuel;
      ] );
  ]
