(* Kernel-language tests: static checking, reference interpreter,
   lowering/regalloc, and RV32 end-to-end equivalence with the
   interpreter on all seven paper benchmarks. *)

open Ggpu_kernels

let i32 = Alcotest.int32
let i32_array = Alcotest.(array i32)

(* --- Check ------------------------------------------------------------ *)

let bad_kernel body params =
  { Ast.name = "bad"; params; body }

let expect_check_error kernel =
  match Check.check kernel with
  | () -> Alcotest.fail "expected check error"
  | exception Check.Error _ -> ()

let test_check_unbound () =
  expect_check_error
    (bad_kernel [ Ast.Let ("x", Ast.var "y") ] [])

let test_check_buffer_as_scalar () =
  expect_check_error
    (bad_kernel [ Ast.Let ("x", Ast.var "buf") ] [ Ast.Buffer "buf" ])

let test_check_unknown_buffer () =
  expect_check_error
    (bad_kernel [ Ast.Let ("x", Ast.load "nope" (Ast.const 0)) ] [])

let test_check_assign_param () =
  expect_check_error
    (bad_kernel [ Ast.Assign ("n", Ast.const 1) ] [ Ast.Scalar "n" ])

let test_check_assign_loop_var () =
  expect_check_error
    (bad_kernel
       [ Ast.For ("i", Ast.const 0, Ast.const 4, [ Ast.Assign ("i", Ast.const 0) ]) ]
       [])

let test_check_redefinition () =
  expect_check_error
    (bad_kernel [ Ast.Let ("x", Ast.const 0); Ast.Let ("x", Ast.const 1) ] [])

let test_check_duplicate_param () =
  expect_check_error (bad_kernel [] [ Ast.Scalar "n"; Ast.Buffer "n" ])

let test_check_accepts_suite () =
  List.iter (fun w -> Check.check w.Suite.kernel) Suite.all

(* --- Interpreter ------------------------------------------------------ *)

let test_interp_copy () =
  let w = Suite.copy in
  let size = 64 in
  let args = w.Suite.mk_args ~size in
  Interp.run w.Suite.kernel ~args ~global_size:(w.Suite.global_size ~size)
    ~local_size:w.Suite.local_size;
  let out = List.assoc w.Suite.output_buffer args.Interp.buffers in
  Alcotest.check i32_array "copy output" (w.Suite.expected ~size args) out

let test_interp_out_of_bounds () =
  let kernel =
    {
      Ast.name = "oob";
      params = [ Ast.Buffer "b" ];
      body = [ Ast.Store ("b", Ast.const 99, Ast.const 1) ];
    }
  in
  let args = { Interp.buffers = [ ("b", Array.make 4 0l) ]; scalars = [] } in
  match Interp.run kernel ~args ~global_size:1 ~local_size:1 with
  | () -> Alcotest.fail "expected out-of-bounds error"
  | exception Interp.Runtime_error _ -> ()

let test_interp_division_semantics () =
  let kernel =
    {
      Ast.name = "divsem";
      params = [ Ast.Buffer "out" ];
      body =
        [
          Ast.Store ("out", Ast.const 0, Ast.(const 17 /: const 0));
          Ast.Store ("out", Ast.const 1, Ast.(const 17 %: const 0));
          Ast.Store
            ( "out",
              Ast.const 2,
              Ast.(Binop (Div, Const Int32.min_int, const (-1))) );
        ];
    }
  in
  let out = Array.make 3 0l in
  let args = { Interp.buffers = [ ("out", out) ]; scalars = [] } in
  Interp.run kernel ~args ~global_size:1 ~local_size:1;
  Alcotest.check i32 "div by zero" (-1l) out.(0);
  Alcotest.check i32 "rem by zero" 17l out.(1);
  Alcotest.check i32 "overflow" Int32.min_int out.(2)

(* All suite workloads: the reference interpreter must agree with the
   independent OCaml implementations. *)
let test_interp_matches_reference () =
  List.iter
    (fun w ->
      let size = w.Suite.round_size (min 64 w.Suite.riscv_size) in
      let args = w.Suite.mk_args ~size in
      Interp.run w.Suite.kernel ~args
        ~global_size:(w.Suite.global_size ~size)
        ~local_size:(min w.Suite.local_size size);
      let out = List.assoc w.Suite.output_buffer args.Interp.buffers in
      Alcotest.check i32_array
        (Printf.sprintf "%s interp vs reference" w.Suite.name)
        (w.Suite.expected ~size args)
        out)
    Suite.all

(* --- Lowering / regalloc ---------------------------------------------- *)

let test_lower_shapes () =
  let program = Lower.lower Suite.mat_mul.Suite.kernel in
  (* must contain a loop: a label, a backward jump, a conditional branch *)
  let has_label = List.exists (function Vir.Label _ -> true | _ -> false) in
  let has_jump = List.exists (function Vir.Jump _ -> true | _ -> false) in
  let has_branch =
    List.exists (function Vir.Branch_if _ -> true | _ -> false)
  in
  Alcotest.(check bool) "label" true (has_label program.Vir.insns);
  Alcotest.(check bool) "jump" true (has_jump program.Vir.insns);
  Alcotest.(check bool) "branch" true (has_branch program.Vir.insns)

let test_regalloc_fits_all_kernels () =
  List.iter
    (fun w ->
      let fgpu = Codegen_fgpu.compile w.Suite.kernel in
      let rv = Codegen_rv32.compile w.Suite.kernel in
      Alcotest.(check bool)
        (w.Suite.name ^ " compiles")
        true
        (Array.length fgpu.Codegen_fgpu.code > 0
        && Array.length rv.Codegen_rv32.code > 0))
    Suite.all

let test_regalloc_pressure_error () =
  (* a kernel with more simultaneously-live variables than registers *)
  let lets =
    List.init 40 (fun i -> Ast.Let (Printf.sprintf "v%d" i, Ast.const i))
  in
  let uses =
    List.init 40 (fun i ->
        Ast.Store ("out", Ast.const i, Ast.var (Printf.sprintf "v%d" i)))
  in
  let kernel =
    { Ast.name = "pressure"; params = [ Ast.Buffer "out" ]; body = lets @ uses }
  in
  match Codegen_fgpu.compile ~optimise:false kernel with
  | _ -> Alcotest.fail "expected register pressure failure"
  | exception Regalloc.Register_pressure _ -> ()

let test_loop_variable_interval_extension () =
  (* a variable defined before a loop and used only inside it must
     survive allocation even though another variable is defined in
     between: exercising the backward-edge extension *)
  let kernel =
    {
      Ast.name = "loopext";
      params = [ Ast.Buffer "out"; Ast.Scalar "n" ];
      body =
        [
          Ast.Let ("base", Ast.var "n");
          Ast.Let ("acc", Ast.const 0);
          Ast.For
            ( "i",
              Ast.const 0,
              Ast.const 8,
              [ Ast.Assign ("acc", Ast.(var "acc" +: var "base")) ] );
          Ast.Store ("out", Ast.const 0, Ast.var "acc");
        ];
    }
  in
  let args =
    { Interp.buffers = [ ("out", Array.make 1 0l) ]; scalars = [ ("n", 5l) ] }
  in
  let compiled = Codegen_rv32.compile kernel in
  let result =
    Run_rv32.run compiled ~args ~global_size:1 ~local_size:1 ()
  in
  Alcotest.check i32 "8 * 5" 40l (Run_rv32.output result "out").(0)

(* --- RV32 end-to-end: compiled result equals interpreter result ------- *)

let run_rv32_workload w ~size =
  let args = w.Suite.mk_args ~size in
  let compiled = Codegen_rv32.compile w.Suite.kernel in
  let result =
    Run_rv32.run compiled ~args
      ~global_size:(w.Suite.global_size ~size)
      ~local_size:(min w.Suite.local_size size)
      ()
  in
  (args, result)

let test_rv32_end_to_end () =
  List.iter
    (fun w ->
      let size = w.Suite.round_size (min 64 w.Suite.riscv_size) in
      let args, result = run_rv32_workload w ~size in
      Alcotest.check i32_array
        (Printf.sprintf "%s rv32 vs reference" w.Suite.name)
        (w.Suite.expected ~size args)
        (Run_rv32.output result w.Suite.output_buffer))
    Suite.all

let test_rv32_cycles_scale_with_size () =
  let cycles size =
    let _, result = run_rv32_workload Suite.copy ~size in
    result.Run_rv32.stats.Ggpu_riscv.Cpu.cycles
  in
  let c64 = cycles 64 and c128 = cycles 128 in
  Alcotest.(check bool)
    (Printf.sprintf "cycles grow with size (%d vs %d)" c64 c128)
    true
    (c128 > c64 + (c64 / 2))

(* Property: for random sizes, compiled copy == reference. *)
let prop_rv32_copy_random_sizes =
  QCheck.Test.make ~name:"rv32 copy correct on random sizes" ~count:20
    QCheck.(int_range 1 300)
    (fun size ->
      let args, result = run_rv32_workload Suite.copy ~size in
      Run_rv32.output result "dst" = Suite.copy.Suite.expected ~size args)

let suite =
  [
    ( "kernels",
      [
        Alcotest.test_case "check unbound" `Quick test_check_unbound;
        Alcotest.test_case "check buffer as scalar" `Quick
          test_check_buffer_as_scalar;
        Alcotest.test_case "check unknown buffer" `Quick
          test_check_unknown_buffer;
        Alcotest.test_case "check assign param" `Quick test_check_assign_param;
        Alcotest.test_case "check assign loop var" `Quick
          test_check_assign_loop_var;
        Alcotest.test_case "check redefinition" `Quick test_check_redefinition;
        Alcotest.test_case "check duplicate param" `Quick
          test_check_duplicate_param;
        Alcotest.test_case "check accepts suite" `Quick test_check_accepts_suite;
        Alcotest.test_case "interp copy" `Quick test_interp_copy;
        Alcotest.test_case "interp out of bounds" `Quick
          test_interp_out_of_bounds;
        Alcotest.test_case "interp division semantics" `Quick
          test_interp_division_semantics;
        Alcotest.test_case "interp matches reference" `Quick
          test_interp_matches_reference;
        Alcotest.test_case "lower shapes" `Quick test_lower_shapes;
        Alcotest.test_case "regalloc fits suite" `Quick
          test_regalloc_fits_all_kernels;
        Alcotest.test_case "regalloc pressure error" `Quick
          test_regalloc_pressure_error;
        Alcotest.test_case "loop interval extension" `Quick
          test_loop_variable_interval_extension;
        Alcotest.test_case "rv32 end to end" `Quick test_rv32_end_to_end;
        Alcotest.test_case "rv32 cycles scale" `Quick
          test_rv32_cycles_scale_with_size;
        QCheck_alcotest.to_alcotest prop_rv32_copy_random_sizes;
      ] );
  ]
