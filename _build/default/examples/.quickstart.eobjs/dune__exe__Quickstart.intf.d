examples/quickstart.mli:
