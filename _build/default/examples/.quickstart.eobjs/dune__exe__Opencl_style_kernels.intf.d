examples/opencl_style_kernels.mli:
