examples/custom_technology.ml: Dse Flow Ggpu_core Ggpu_rtlgen Ggpu_synth Ggpu_tech List Map Memlib Printf Spec Tech
