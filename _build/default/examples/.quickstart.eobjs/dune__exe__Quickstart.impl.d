examples/quickstart.ml: Codegen_fgpu Flow Format Ggpu_core Ggpu_fgpu Ggpu_kernels Ggpu_layout Ggpu_synth Map Printf Run_fgpu Spec Suite
