examples/opencl_style_kernels.ml: Array Ast Codegen_fgpu Codegen_rv32 Ggpu_fgpu Ggpu_kernels Int32 Interp List Lower Opt Parse Printf Run_fgpu String Vir
