examples/kernel_benchmarks.mli:
