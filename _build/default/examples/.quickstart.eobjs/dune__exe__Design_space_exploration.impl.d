examples/design_space_exploration.ml: Flow Format Ggpu_core Ggpu_rtlgen Ggpu_synth Ggpu_tech Int List Map Printf Spec String
