examples/custom_technology.mli:
