examples/kernel_benchmarks.ml: Array Ast Codegen_fgpu Codegen_rv32 Ggpu_fgpu Ggpu_isa Ggpu_kernels Ggpu_riscv Int32 Interp List Printf Run_fgpu Run_rv32
