(* Design-space exploration, the designer's loop of the paper's Fig. 2:
   sweep candidate frequencies for several CU counts, implement each,
   check it against an area/power budget, and print the feasible set
   plus the map for the chosen design.

     dune exec examples/design_space_exploration.exe *)

open Ggpu_core

let () =
  let budget_area = 10.0 (* mm2 *) and budget_power = 6.0 (* W *) in
  Printf.printf
    "Searching for G-GPUs under %.0f mm2 and %.0f W (65 nm)...\n\n" budget_area
    budget_power;
  Printf.printf "%-12s %10s %10s %10s %10s  %s\n" "version" "area mm2"
    "power W" "target" "achieved" "verdict";
  let candidates =
    List.concat_map
      (fun num_cus ->
        List.map (fun freq_mhz -> (num_cus, freq_mhz)) [ 500; 590; 667 ])
      [ 1; 2; 4 ]
  in
  let feasible = ref [] in
  List.iter
    (fun (num_cus, freq_mhz) ->
      let spec =
        Spec.make ~max_area_mm2:(Some budget_area)
          ~max_power_w:(Some budget_power) ~num_cus ~freq_mhz ()
      in
      let impl = Flow.implement spec in
      let r = impl.Flow.logic_report in
      let verdict =
        match impl.Flow.spec_check with
        | Ok () ->
            feasible := (spec, impl) :: !feasible;
            "feasible"
        | Error vs ->
            String.concat "; " (List.map Spec.violation_to_string vs)
      in
      Printf.printf "%-12s %10.2f %10.2f %7d MHz %7.0f MHz  %s\n"
        (Printf.sprintf "%dCU@%dMHz" num_cus freq_mhz)
        r.Ggpu_synth.Report.total_area_mm2 r.Ggpu_synth.Report.total_w freq_mhz
        impl.Flow.achieved_mhz verdict)
    candidates;
  (* pick the fastest feasible design: most CUs, then highest frequency *)
  match
    List.sort
      (fun ((a : Spec.t), _) ((b : Spec.t), _) ->
        match Int.compare b.Spec.num_cus a.Spec.num_cus with
        | 0 -> Int.compare b.Spec.freq_mhz a.Spec.freq_mhz
        | c -> c)
      !feasible
  with
  | [] -> Printf.printf "\nNo design fits the budget.\n"
  | (spec, impl) :: _ ->
      Printf.printf "\nSelected %s. Its optimisation map:\n"
        (Spec.to_string spec);
      Format.printf "%a" Map.pp impl.Flow.map;
      Printf.printf
        "\nReplaying the map on a freshly generated netlist gives the same \
         design -\nthis is the artefact a designer would keep (the paper's \
         'dynamic spreadsheet').\n";
      let fresh =
        Ggpu_rtlgen.Generate.generate_cus ~num_cus:spec.Spec.num_cus
      in
      Map.apply fresh impl.Flow.map;
      let replayed =
        Ggpu_synth.Timing.analyse Ggpu_tech.Tech.default_65nm fresh
      in
      Printf.printf "Replayed fmax: %.0f MHz\n"
        replayed.Ggpu_synth.Timing.fmax_mhz
