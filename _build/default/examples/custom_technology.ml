(* Retargeting: the paper argues its optimisation map "is agnostic of
   the technology used" - the flow only consumes memory delays and cell
   characteristics.  This example runs the same specification through
   the default 65 nm models and a scaled 28 nm-class technology, and
   also shows how to describe a custom memory compiler.

     dune exec examples/custom_technology.exe *)

open Ggpu_core
open Ggpu_tech

let implement_with tech label spec =
  let impl = Flow.implement ~tech spec in
  let r = impl.Flow.logic_report in
  Printf.printf
    "%-14s: %6.2f mm2 | %6.2f W | %2d divisions + %2d pipelines | achieved \
     %.0f MHz\n"
    label r.Ggpu_synth.Report.total_area_mm2 r.Ggpu_synth.Report.total_w
    (Map.divisions impl.Flow.map)
    (Map.pipelines impl.Flow.map)
    impl.Flow.achieved_mhz;
  impl

let () =
  let spec = Spec.make ~num_cus:2 ~freq_mhz:667 () in
  Printf.printf "Implementing %s under different technologies:\n\n"
    (Spec.to_string spec);
  let impl65 = implement_with Tech.default_65nm "65nm (default)" spec in
  let _impl28 = implement_with Tech.scaled_28nm "28nm (scaled)" spec in

  (* a "custom" memory compiler with slower, denser macros: the planner
     must divide more aggressively to reach the same frequency *)
  let slow_memory =
    {
      Memlib.default_65nm with
      Memlib.name = "sram-65nm-dense-slow";
      delay_log2w_ns = Memlib.default_65nm.Memlib.delay_log2w_ns *. 1.25;
      bit_area_um2 = Memlib.default_65nm.Memlib.bit_area_um2 *. 0.8;
    }
  in
  let custom = { Tech.default_65nm with Tech.memory = slow_memory } in
  let impl_custom = implement_with custom "65nm dense-slow" spec in
  Printf.printf
    "\nWith slower macros the planner needs %d edits instead of %d - the \
     map adapts\nto whatever the memory compiler provides, as the paper \
     claims.\n"
    (List.length impl_custom.Flow.map.Map.edits)
    (List.length impl65.Flow.map.Map.edits);

  (* frequency ceiling comparison: highest target each technology meets *)
  let ceiling tech =
    let rec search lo hi =
      (* binary search on achievable target, 10 MHz resolution *)
      if hi - lo <= 10 then lo
      else
        let mid = (lo + hi) / 2 in
        let nl = Ggpu_rtlgen.Generate.generate_cus ~num_cus:2 in
        match
          Dse.explore tech nl ~num_cus:2
            ~period_ns:(1000.0 /. float_of_int mid)
        with
        | _ -> search mid hi
        | exception Dse.Cannot_meet _ -> search lo mid
    in
    search 400 2000
  in
  Printf.printf "\nFrequency ceiling (2 CU, after DSE): 65nm ~%d MHz, 28nm \
                 ~%d MHz\n"
    (ceiling Tech.default_65nm) (ceiling Tech.scaled_28nm)
