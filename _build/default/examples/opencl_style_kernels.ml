(* The textual front end: write kernels in OpenCL-C-flavoured source,
   parse, optimise, inspect the generated code for both targets, and run
   them - the full software story the paper attributes to FGPU's LLVM
   toolchain.

     dune exec examples/opencl_style_kernels.exe *)

open Ggpu_kernels

let source =
  {|
  // Scale-and-offset: out[i] = x[i] * scale + offset
  kernel scale_offset(global int* x, global int* out, int scale, int offset, int n) {
    int i = get_global_id(0);
    if (i < n) {
      out[i] = x[i] * scale + offset;
    }
  }

  // Histogram of byte values, one work-item per bin (gather style:
  // each bin scans the input, so no atomics are needed)
  kernel histogram(global int* data, global int* bins, int n) {
    int bin = get_global_id(0);
    if (bin < 256) {
      int count = 0;
      for (int j = 0; j < n; j++) {
        if ((data[j] & 255) == bin) {
          count = count + 1;
        }
      }
      bins[bin] = count;
    }
  }
|}

let () =
  let kernels = Parse.parse source in
  Printf.printf "parsed %d kernels: %s\n\n" (List.length kernels)
    (String.concat ", " (List.map (fun k -> k.Ast.name) kernels));

  (* scale_offset: show the optimiser working on the IR *)
  let scale_offset = List.nth kernels 0 in
  let plain = Lower.lower scale_offset in
  let optimised = Opt.optimise plain in
  Printf.printf "scale_offset IR: %d instructions, %d after optimisation\n"
    (List.length plain.Vir.insns)
    (List.length optimised.Vir.insns);
  let gp = Codegen_fgpu.compile scale_offset in
  let rv = Codegen_rv32.compile scale_offset in
  Printf.printf "G-GPU code: %d instructions; RV32 code: %d instructions\n\n"
    (Array.length gp.Codegen_fgpu.code)
    (Array.length rv.Codegen_rv32.code);

  (* run scale_offset on the GPU and check against a direct computation *)
  let n = 2048 in
  let x = Array.init n (fun i -> Int32.of_int (i - 1000)) in
  let args =
    {
      Interp.buffers = [ ("x", Array.copy x); ("out", Array.make n 0l) ];
      scalars = [ ("scale", 3l); ("offset", 7l); ("n", Int32.of_int n) ];
    }
  in
  let result = Run_fgpu.run gp ~args ~global_size:n ~local_size:256 () in
  let out = Run_fgpu.output result "out" in
  Array.iteri
    (fun i v -> assert (v = Int32.add (Int32.mul x.(i) 3l) 7l))
    out;
  Printf.printf "scale_offset: %d cycles on 1 CU, output verified\n"
    result.Run_fgpu.stats.Ggpu_fgpu.Stats.cycles;

  (* histogram: a divergent gather kernel *)
  let histogram = List.nth kernels 1 in
  let hist_gp = Codegen_fgpu.compile histogram in
  let data = Array.init 4096 (fun i -> Int32.of_int ((i * 37) land 1023)) in
  let args =
    {
      Interp.buffers =
        [ ("data", Array.copy data); ("bins", Array.make 256 0l) ];
      scalars = [ ("n", 4096l) ];
    }
  in
  let result = Run_fgpu.run hist_gp ~args ~global_size:256 ~local_size:128 () in
  let bins = Run_fgpu.output result "bins" in
  let expected = Array.make 256 0l in
  Array.iter
    (fun v ->
      let b = Int32.to_int v land 255 in
      expected.(b) <- Int32.add expected.(b) 1l)
    data;
  assert (bins = expected);
  Printf.printf
    "histogram: %d cycles, %d divergent issues (branchy inner loop), verified\n"
    result.Run_fgpu.stats.Ggpu_fgpu.Stats.cycles
    result.Run_fgpu.stats.Ggpu_fgpu.Stats.divergent_issues
