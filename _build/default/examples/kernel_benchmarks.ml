(* Programmability: write a new OpenCL-style kernel, verify it against
   the reference interpreter, and compare RISC-V vs G-GPU execution -
   the paper's central use-case for a general-purpose accelerator.

     dune exec examples/kernel_benchmarks.exe *)

open Ggpu_kernels

(* saxpy: y[i] <- a * x[i] + y[i], integer variant *)
let saxpy =
  let open Ast in
  {
    name = "saxpy";
    params = [ Buffer "x"; Buffer "y"; Scalar "a"; Scalar "n" ];
    body =
      [
        Let ("i", Global_id);
        If
          ( var "i" <: var "n",
            [
              Store
                ( "y",
                  var "i",
                  (var "a" *: load "x" (var "i")) +: load "y" (var "i") );
            ],
            [] );
      ];
  }

let () =
  let n = 16384 in
  let a = 7l in
  let x = Array.init n (fun i -> Int32.of_int (i mod 1000)) in
  let y = Array.init n (fun i -> Int32.of_int (i mod 77)) in
  let mk_args () =
    {
      Interp.buffers = [ ("x", Array.copy x); ("y", Array.copy y) ];
      scalars = [ ("a", a); ("n", Int32.of_int n) ];
    }
  in
  (* 1. reference semantics *)
  let reference = mk_args () in
  Interp.run saxpy ~args:reference ~global_size:n ~local_size:256;
  let expected = List.assoc "y" reference.Interp.buffers in

  (* 2. RISC-V *)
  let rv = Codegen_rv32.compile saxpy in
  let rv_result =
    Run_rv32.run rv ~args:(mk_args ()) ~global_size:n ~local_size:256 ()
  in
  assert (Run_rv32.output rv_result "y" = expected);
  let rv_cycles = rv_result.Run_rv32.stats.Ggpu_riscv.Cpu.cycles in
  Printf.printf "saxpy over %d elements\n" n;
  Printf.printf "  RISC-V (CV32E40P model): %9d cycles\n" rv_cycles;

  (* 3. G-GPU at 1..8 compute units *)
  let gp = Codegen_fgpu.compile saxpy in
  Printf.printf "  disassembly (%d instructions):\n"
    (Array.length gp.Codegen_fgpu.code);
  Array.iteri
    (fun i insn ->
      if i < 6 then
        Printf.printf "    %2d: %s\n" i (Ggpu_isa.Fgpu_isa.to_string insn))
    gp.Codegen_fgpu.code;
  Printf.printf "    ...\n";
  List.iter
    (fun cus ->
      let config = Ggpu_fgpu.Config.with_cus Ggpu_fgpu.Config.default cus in
      let result =
        Run_fgpu.run ~config gp ~args:(mk_args ()) ~global_size:n
          ~local_size:256 ()
      in
      assert (Run_fgpu.output result "y" = expected);
      let cycles = result.Run_fgpu.stats.Ggpu_fgpu.Stats.cycles in
      Printf.printf
        "  G-GPU %d CU:              %9d cycles  (%.1fx vs RISC-V, verified)\n"
        cus cycles
        (float_of_int rv_cycles /. float_of_int cycles))
    [ 1; 2; 4; 8 ]
