(* Area accounting.

   Memory area comes from the memory-compiler model per macro; logic
   area from gate/flip-flop counts times cell footprints, inflated by a
   placement-utilisation factor (routing, clock tree, filler cells). *)

open Ggpu_hw
open Ggpu_tech

type t = {
  total_mm2 : float;
  memory_mm2 : float;
  logic_mm2 : float;
}

let um2_to_mm2 v = v /. 1.0e6

(* Standard-cell rows are placed at ~70% utilisation in the paper's CU
   and GMC partitions; the inverse shows up as area overhead. *)
let utilisation = 0.70

let macro_area_um2 tech cell =
  match Cell.macro_spec cell with
  | Some spec ->
      (Memlib.query tech.Tech.memory spec).Memlib.area_um2
      *. float_of_int (Cell.count cell)
  | None -> 0.0

let of_netlist tech netlist =
  let memory_um2 =
    Netlist.fold_cells netlist ~init:0.0 ~f:(fun acc cell ->
        acc +. macro_area_um2 tech cell)
  in
  let cell_um2 =
    Netlist.fold_cells netlist ~init:0.0 ~f:(fun acc cell ->
        match Cell.kind cell with
        | Cell.Dff ->
            acc
            +. float_of_int (Cell.ff_bits cell)
               *. tech.Tech.stdcell.Stdcell.dff_area_um2
        | Cell.Comb _ ->
            acc
            +. float_of_int (Cell.comb_gates cell)
               *. tech.Tech.stdcell.Stdcell.gate_area_um2
        | Cell.Macro _ -> acc)
  in
  let logic_um2 = cell_um2 /. utilisation in
  {
    total_mm2 = um2_to_mm2 (memory_um2 +. logic_um2);
    memory_mm2 = um2_to_mm2 memory_um2;
    logic_mm2 = um2_to_mm2 logic_um2;
  }

(* Region-level breakdown used by the floorplanner. *)
let of_region tech netlist ~region =
  let memory_um2 = ref 0.0 and cell_um2 = ref 0.0 in
  Netlist.iter_cells netlist (fun cell ->
      if String.equal (Cell.region cell) region then
        match Cell.kind cell with
        | Cell.Macro _ -> memory_um2 := !memory_um2 +. macro_area_um2 tech cell
        | Cell.Dff ->
            cell_um2 :=
              !cell_um2
              +. float_of_int (Cell.ff_bits cell)
                 *. tech.Tech.stdcell.Stdcell.dff_area_um2
        | Cell.Comb _ ->
            cell_um2 :=
              !cell_um2
              +. float_of_int (Cell.comb_gates cell)
                 *. tech.Tech.stdcell.Stdcell.gate_area_um2);
  let logic_um2 = !cell_um2 /. utilisation in
  {
    total_mm2 = um2_to_mm2 (!memory_um2 +. logic_um2);
    memory_mm2 = um2_to_mm2 !memory_um2;
    logic_mm2 = um2_to_mm2 logic_um2;
  }

let pp fmt t =
  Format.fprintf fmt "total=%.2fmm2 memory=%.2fmm2 logic=%.2fmm2" t.total_mm2
    t.memory_mm2 t.logic_mm2
