(* Static timing analysis.

   Computes worst arrival times over the combinational graph between
   sequential elements (flip-flops and SRAM macros), then checks every
   register-to-register path against a clock period:

     launch clk-to-q  +  combinational delay  +  setup  +  skew  <= T

   Launch and setup numbers come from the technology: flip-flops from
   the standard-cell model, macros from the memory-compiler model (which
   is how macro geometry ends up on the critical path - the pivot of the
   paper's whole design-space exploration). *)

open Ggpu_hw
open Ggpu_tech

type path = {
  launch : Cell.t; (* sequential cell the path starts at *)
  capture : Cell.t; (* sequential cell the path ends at *)
  through : Cell.t list; (* combinational cells, launch-to-capture order *)
  delay_ns : float; (* total including clk-to-q, setup and skew *)
}

type report = {
  worst : path;
  max_delay_ns : float;
  fmax_mhz : float;
  endpoint_count : int;
}

exception No_paths

let launch_delay tech cell =
  match Cell.kind cell with
  | Cell.Dff -> tech.Tech.stdcell.Stdcell.dff_clk_to_q_ns
  | Cell.Macro spec -> (Memlib.query tech.Tech.memory spec).Memlib.clk_to_q_ns
  | Cell.Comb _ -> invalid_arg "launch_delay: combinational cell"

let setup_time tech cell =
  match Cell.kind cell with
  | Cell.Dff -> tech.Tech.stdcell.Stdcell.dff_setup_ns
  | Cell.Macro spec -> (Memlib.query tech.Tech.memory spec).Memlib.setup_ns
  | Cell.Comb _ -> invalid_arg "setup_time: combinational cell"

let cell_delay tech cell =
  match Cell.kind cell with
  | Cell.Comb op ->
      Stdcell.comb_delay_ns tech.Tech.stdcell op ~width:(Cell.output_width cell)
  | Cell.Dff | Cell.Macro _ -> invalid_arg "cell_delay: sequential cell"

(* Arrival time and worst predecessor for every net driven by the
   combinational subgraph.  Sequential outputs seed with clk-to-q. *)
type arrivals = {
  net_arrival : (int, float) Hashtbl.t;
  (* net id -> (driving comb cell, worst input net) *)
  net_pred : (int, Cell.t * Net.t option) Hashtbl.t;
}

let compute_arrivals tech netlist =
  let net_arrival = Hashtbl.create 1024 in
  let net_pred = Hashtbl.create 1024 in
  let arrival net =
    Option.value ~default:0.0 (Hashtbl.find_opt net_arrival (Net.id net))
  in
  (* seed: sequential outputs *)
  Netlist.iter_cells netlist (fun cell ->
      if Cell.is_sequential cell then begin
        let t = launch_delay tech cell in
        List.iter
          (fun net -> Hashtbl.replace net_arrival (Net.id net) t)
          (Cell.outputs cell)
      end);
  (* propagate in topological order *)
  List.iter
    (fun cell ->
      let worst_in =
        List.fold_left
          (fun acc net ->
            let t = arrival net in
            match acc with
            | Some (best, _) when best >= t -> acc
            | _ -> Some (t, Some net))
          None (Cell.inputs cell)
      in
      let in_time, in_net =
        match worst_in with Some (t, net) -> (t, net) | None -> (0.0, None)
      in
      let out_time = in_time +. cell_delay tech cell in
      List.iter
        (fun net ->
          Hashtbl.replace net_arrival (Net.id net) out_time;
          Hashtbl.replace net_pred (Net.id net) (cell, in_net))
        (Cell.outputs cell))
    (Topo.order netlist);
  { net_arrival; net_pred }

(* Walk predecessor pointers from an endpoint input net back to the
   launching sequential cell. *)
let trace_path netlist arrivals ~endpoint_net ~capture tech =
  let rec walk net acc =
    match Hashtbl.find_opt arrivals.net_pred (Net.id net) with
    | Some (cell, Some prev) -> walk prev (cell :: acc)
    | Some (cell, None) -> (cell :: acc, None)
    | None -> (acc, Netlist.driver_of netlist net)
  in
  let through, launch_opt = walk endpoint_net [] in
  let launch =
    match launch_opt with
    | Some cell when Cell.is_sequential cell -> Some cell
    | Some _ | None -> None
  in
  match launch with
  | None -> None (* path from a primary input; not a register path *)
  | Some launch ->
      let arrival =
        Option.value ~default:0.0
          (Hashtbl.find_opt arrivals.net_arrival (Net.id endpoint_net))
      in
      let delay_ns =
        arrival +. setup_time tech capture
        +. tech.Tech.stdcell.Stdcell.clock_skew_ns
      in
      Some { launch; capture; through; delay_ns }

(* Full analysis: worst register-to-register path. *)
let analyse tech netlist =
  let arrivals = compute_arrivals tech netlist in
  let worst = ref None in
  let endpoints = ref 0 in
  Netlist.iter_cells netlist (fun cell ->
      if Cell.is_sequential cell then
        List.iter
          (fun net ->
            incr endpoints;
            match
              trace_path netlist arrivals ~endpoint_net:net ~capture:cell tech
            with
            | None -> ()
            | Some path -> (
                match !worst with
                | Some best when best.delay_ns >= path.delay_ns -> ()
                | Some _ | None -> worst := Some path))
          (Cell.inputs cell));
  match !worst with
  | None -> raise No_paths
  | Some worst ->
      {
        worst;
        max_delay_ns = worst.delay_ns;
        fmax_mhz = 1000.0 /. worst.delay_ns;
        endpoint_count = !endpoints;
      }

let slack_ns report ~period_ns = period_ns -. report.max_delay_ns
let meets report ~period_ns = slack_ns report ~period_ns >= 0.0

let pp_path fmt path =
  Format.fprintf fmt "%s -> %s (%.3f ns, %d cells)"
    (Cell.name path.launch) (Cell.name path.capture) path.delay_ns
    (List.length path.through)
