(** Power estimation: leakage plus dynamic power at a clock frequency,
    from per-cell energies and default activity factors. *)

type t = { leakage_mw : float; dynamic_w : float; total_w : float }

val macro_activity : float
(** Accesses per cycle charged to each macro (1.0: a busy GPU). *)

val leakage_mw : Ggpu_tech.Tech.t -> Ggpu_hw.Netlist.t -> float
val energy_per_cycle_pj : Ggpu_tech.Tech.t -> Ggpu_hw.Netlist.t -> float
val of_netlist : Ggpu_tech.Tech.t -> Ggpu_hw.Netlist.t -> freq_mhz:float -> t
val pp : Format.formatter -> t -> unit
