lib/synth/power.ml: Cell Format Ggpu_hw Ggpu_tech Memlib Netlist Stdcell Tech
