lib/synth/power.mli: Format Ggpu_hw Ggpu_tech
