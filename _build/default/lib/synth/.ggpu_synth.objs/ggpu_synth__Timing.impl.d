lib/synth/timing.ml: Cell Format Ggpu_hw Ggpu_tech Hashtbl List Memlib Net Netlist Option Stdcell Tech Topo
