lib/synth/report.mli: Format Ggpu_hw Ggpu_tech
