lib/synth/area.ml: Cell Format Ggpu_hw Ggpu_tech Memlib Netlist Stdcell String Tech
