lib/synth/report.ml: Area Format Ggpu_hw List Netlist Power Printf Timing
