lib/synth/area.mli: Format Ggpu_hw Ggpu_tech
