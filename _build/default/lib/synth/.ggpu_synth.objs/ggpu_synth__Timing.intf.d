lib/synth/timing.mli: Format Ggpu_hw Ggpu_tech Hashtbl
