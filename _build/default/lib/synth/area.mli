(** Area accounting: memory area from the SRAM compiler model, logic
    area from cell footprints at the paper's 70% placement density. *)

type t = { total_mm2 : float; memory_mm2 : float; logic_mm2 : float }

val utilisation : float
(** Standard-cell placement density (0.70, as in the paper's CU and GMC
    partitions). *)

val macro_area_um2 : Ggpu_tech.Tech.t -> Ggpu_hw.Cell.t -> float
(** 0 for non-macro cells; includes the cell's replication count. *)

val of_netlist : Ggpu_tech.Tech.t -> Ggpu_hw.Netlist.t -> t
val of_region : Ggpu_tech.Tech.t -> Ggpu_hw.Netlist.t -> region:string -> t
val pp : Format.formatter -> t -> unit
