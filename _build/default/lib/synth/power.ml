(* Power estimation: leakage (frequency-independent) and dynamic power
   at a given clock, from per-cell energies and default activity
   factors.  Macros are charged one access per cycle (a busy GPU keeps
   its memories hot), flip-flops their clock-tree share every cycle. *)

open Ggpu_hw
open Ggpu_tech

type t = {
  leakage_mw : float;
  dynamic_w : float;
  total_w : float;
}

let macro_activity = 1.0

let leakage_mw tech netlist =
  let nw =
    Netlist.fold_cells netlist ~init:0.0 ~f:(fun acc cell ->
        match Cell.kind cell with
        | Cell.Dff ->
            acc
            +. float_of_int (Cell.ff_bits cell)
               *. tech.Tech.stdcell.Stdcell.dff_leak_nw
        | Cell.Comb _ ->
            acc
            +. float_of_int (Cell.comb_gates cell)
               *. tech.Tech.stdcell.Stdcell.gate_leak_nw
        | Cell.Macro spec ->
            acc
            +. (Memlib.query tech.Tech.memory spec).Memlib.leak_nw
               *. float_of_int (Cell.count cell))
  in
  nw /. 1.0e6

(* Energy per clock cycle, in picojoules. *)
let energy_per_cycle_pj tech netlist =
  Netlist.fold_cells netlist ~init:0.0 ~f:(fun acc cell ->
      match Cell.kind cell with
      | Cell.Dff ->
          acc
          +. float_of_int (Cell.ff_bits cell)
             *. tech.Tech.stdcell.Stdcell.dff_energy_fj /. 1000.0
      | Cell.Comb op ->
          acc
          +. Stdcell.comb_energy_fj tech.Tech.stdcell op
               ~width:(Cell.output_width cell)
             *. float_of_int (Cell.count cell)
             /. 1000.0
      | Cell.Macro spec ->
          acc
          +. (Memlib.query tech.Tech.memory spec).Memlib.read_energy_pj
             *. macro_activity
             *. float_of_int (Cell.count cell))

let of_netlist tech netlist ~freq_mhz =
  let leakage_mw = leakage_mw tech netlist in
  let dynamic_w =
    energy_per_cycle_pj tech netlist *. freq_mhz *. 1.0e6 /. 1.0e12
  in
  { leakage_mw; dynamic_w; total_w = dynamic_w +. (leakage_mw /. 1000.0) }

let pp fmt t =
  Format.fprintf fmt "leak=%.2fmW dyn=%.2fW total=%.2fW" t.leakage_mw
    t.dynamic_w t.total_w
