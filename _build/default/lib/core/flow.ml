(* The GPUPlanner push-button flow (the paper's Fig. 2): generate the
   RTL-level netlist, run the design-space exploration against the
   target period, perform logic synthesis reporting, then physical
   synthesis (floorplan, routing estimate, post-route timing) and the
   final specification check.  The result carries everything the
   benches need to regenerate Tables I and II and Figs. 3 and 4. *)

open Ggpu_tech
open Ggpu_synth
open Ggpu_layout

type implementation = {
  spec : Spec.t;
  netlist : Ggpu_hw.Netlist.t;
  map : Map.t;
  logic_report : Report.row;
  floorplan : Floorplan.t;
  route : Route.t;
  post_timing : Timing_post.t;
  achieved_mhz : float;
  spec_check : (unit, Spec.violation list) result;
}

(* Logic synthesis only - enough for a Table I row. *)
let synthesise ?(tech = Tech.default_65nm) (spec : Spec.t) =
  let netlist = Ggpu_rtlgen.Generate.generate_cus ~num_cus:spec.Spec.num_cus in
  let dse =
    Dse.explore tech netlist ~num_cus:spec.Spec.num_cus
      ~period_ns:(Spec.period_ns spec)
  in
  let report =
    Report.of_netlist tech netlist ~num_cus:spec.Spec.num_cus
      ~freq_mhz:spec.Spec.freq_mhz
  in
  (netlist, dse.Dse.map, report)

let base_macro_count ~num_cus =
  Ggpu_rtlgen.Arch_params.macro_count
    (Ggpu_rtlgen.Arch_params.default ~num_cus)

(* Full RTL-to-layout implementation. *)
let implement ?(tech = Tech.default_65nm) (spec : Spec.t) =
  let netlist, map, logic_report = synthesise ~tech spec in
  let floorplan = Floorplan.build tech netlist ~num_cus:spec.Spec.num_cus in
  let post_timing = Timing_post.analyse tech netlist floorplan in
  let achieved_mhz =
    Float.min (float_of_int spec.Spec.freq_mhz)
      (Timing_post.quantised_mhz post_timing)
  in
  (* the router works at the frequency the layout actually achieves *)
  let route =
    Route.estimate tech netlist floorplan ~period_ns:(1000.0 /. achieved_mhz)
      ~base_macros:(base_macro_count ~num_cus:spec.Spec.num_cus)
  in
  let spec_check =
    Spec.check spec ~area_mm2:logic_report.Report.total_area_mm2
      ~power_w:logic_report.Report.total_w ~achieved_mhz
  in
  {
    spec;
    netlist;
    map;
    logic_report;
    floorplan;
    route;
    post_timing;
    achieved_mhz;
    spec_check;
  }

let pp_implementation fmt impl =
  Format.fprintf fmt "%s: %s | achieved %.0f MHz | %s@."
    (Spec.to_string impl.spec)
    (Report.row_to_string impl.logic_report)
    impl.achieved_mhz
    (match impl.spec_check with
    | Ok () -> "meets spec"
    | Error vs ->
        String.concat "; " (List.map Spec.violation_to_string vs))
