(** Design-space exploration: the heart of GPUPlanner.

    Iterates static timing analysis against a target period, dividing
    SRAM macros while their access time dominates the period and
    inserting pipeline registers on demand otherwise — the paper's two
    strategies. Mutates the netlist in place and records every edit in
    a replayable {!Map.t}. *)

exception
  Cannot_meet of { period_ns : float; best_ns : float; detail : string }

type strategy =
  | Full  (** division + on-demand pipelining (the paper's planner) *)
  | Division_only  (** ablation: never insert pipelines *)
  | Pipeline_only  (** ablation: never divide memories *)

type result = {
  map : Map.t;
  iterations : int;
  final : Ggpu_synth.Timing.report;  (** meets the period by construction *)
}

val explore :
  ?max_iterations:int ->
  ?strategy:strategy ->
  Ggpu_tech.Tech.t ->
  Ggpu_hw.Netlist.t ->
  num_cus:int ->
  period_ns:float ->
  result
(** @raise Cannot_meet when no sequence of edits reaches the period. *)
