lib/core/dse.ml: Cell Float Format Ggpu_hw Ggpu_synth Ggpu_tech List Macro_spec Map Memlib Net Netlist Op Printf Stdcell Tech Timing
