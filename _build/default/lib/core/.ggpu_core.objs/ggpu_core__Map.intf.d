lib/core/map.mli: Format Ggpu_hw
