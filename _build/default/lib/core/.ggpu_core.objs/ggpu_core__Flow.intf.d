lib/core/flow.mli: Format Ggpu_hw Ggpu_layout Ggpu_synth Ggpu_tech Map Spec
