lib/core/versions.ml: Flow List Spec
