lib/core/dse.mli: Ggpu_hw Ggpu_synth Ggpu_tech Map
