lib/core/flow.ml: Dse Float Floorplan Format Ggpu_hw Ggpu_layout Ggpu_rtlgen Ggpu_synth Ggpu_tech List Map Report Route Spec String Tech Timing_post
