lib/core/compare.mli: Format Ggpu_kernels Ggpu_tech
