lib/core/map.ml: Format Ggpu_hw List Netlist Printf
