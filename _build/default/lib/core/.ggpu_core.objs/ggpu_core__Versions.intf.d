lib/core/versions.mli: Flow Ggpu_synth Ggpu_tech Spec
