lib/core/spec.mli:
