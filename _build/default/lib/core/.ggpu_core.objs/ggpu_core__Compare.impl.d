lib/core/compare.ml: Codegen_fgpu Codegen_rv32 Flow Format Ggpu_fgpu Ggpu_hw Ggpu_kernels Ggpu_riscv Ggpu_synth Ggpu_tech List Memlib Run_fgpu Run_rv32 Spec Stdcell Suite Tech
