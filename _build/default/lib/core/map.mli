(** The optimisation map: the ordered, replayable recipe of memory
    divisions and pipeline insertions that turns a freshly generated
    netlist into one meeting a target period — the paper's
    technology-agnostic "dynamic spreadsheet". *)

type edit =
  | Split_words of { cell_name : string; banks : int }
  | Split_bits of { cell_name : string; slices : int }
  | Pipeline of { net_name : string }

type t = {
  num_cus : int;
  target_period_ns : float;
  edits : edit list;  (** in application order *)
}

exception Replay_error of string

val edit_to_string : edit -> string

val apply_edit : Ggpu_hw.Netlist.t -> edit -> unit
(** @raise Replay_error if the named cell or net does not exist. *)

val apply : Ggpu_hw.Netlist.t -> t -> unit

val divisions : t -> int
(** Number of memory-division edits. *)

val pipelines : t -> int
(** Number of pipeline-insertion edits. *)

val pp : Format.formatter -> t -> unit
