(* The paper's version grid: 12 logic-synthesis versions (1/2/4/8 CUs x
   500/590/667 MHz, Table I) and the four extreme physical-synthesis
   versions (1CU@500, 1CU@667, 8CU@500, 8CU@667 - the last derating to
   ~600 MHz after routing, Fig. 4 / Table II). *)

let cu_counts = [ 1; 2; 4; 8 ]
let frequencies_mhz = [ 500; 590; 667 ]

let table1_specs () =
  List.concat_map
    (fun freq_mhz ->
      List.map
        (fun num_cus -> Spec.make ~num_cus ~freq_mhz ())
        cu_counts)
    frequencies_mhz

let physical_specs () =
  [
    Spec.make ~num_cus:1 ~freq_mhz:500 ();
    Spec.make ~num_cus:1 ~freq_mhz:667 ();
    Spec.make ~num_cus:8 ~freq_mhz:500 ();
    Spec.make ~num_cus:8 ~freq_mhz:667 ();
  ]

(* Table I, regenerated. *)
let table1 ?tech () =
  List.map
    (fun spec ->
      let _netlist, _map, report = Flow.synthesise ?tech spec in
      report)
    (table1_specs ())

(* The four physical implementations behind Table II and Figs. 3/4. *)
let physical ?tech () = List.map (Flow.implement ?tech) (physical_specs ())
